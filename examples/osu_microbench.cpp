// OSU-style micro-benchmark CLI — the interface the paper's artifact uses
// for evaluation (appendix C.3: `mpiexec -n 64 ./osu_allreduce -c -m
// 65536:268435456`), reimplemented over YHCCL teams.
//
//   $ ./examples/osu_microbench <collective> [-n ranks] [-s sockets]
//        [-m min:max] [-c] [-a algorithm]
//
//   collective: allreduce | reduce | reduce_scatter | bcast | allgather
//               | alltoall
//   -m min:max  message size sweep in bytes (powers of two)
//   -c          validate results against a reference reduction
//   -a          auto | ma | socket-ma | dpml-2l   (reductions only)
//
// Prints the OSU columns: size, average latency (us), min/max across
// repetitions.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/extra.hpp"
#include "yhccl/common/time.hpp"
#include "yhccl/runtime/thread_team.hpp"

using namespace yhccl;

namespace {

struct Args {
  std::string collective = "allreduce";
  int ranks = 4;
  int sockets = 2;
  std::size_t min_bytes = 16 << 10;
  std::size_t max_bytes = 16 << 20;
  bool check = false;
  coll::Algorithm algo = coll::Algorithm::automatic;
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc > 1 && argv[1][0] != '-') a.collective = argv[1];
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (s == "-n") a.ranks = std::atoi(next());
    else if (s == "-s") a.sockets = std::atoi(next());
    else if (s == "-c") a.check = true;
    else if (s == "-m") {
      const std::string range = next();
      const auto colon = range.find(':');
      a.min_bytes = std::strtoull(range.c_str(), nullptr, 10);
      a.max_bytes = colon == std::string::npos
                        ? a.min_bytes
                        : std::strtoull(range.c_str() + colon + 1, nullptr,
                                        10);
    } else if (s == "-a") {
      const std::string v = next();
      if (v == "ma") a.algo = coll::Algorithm::ma_flat;
      else if (v == "socket-ma") a.algo = coll::Algorithm::ma_socket_aware;
      else if (v == "dpml-2l") a.algo = coll::Algorithm::dpml_two_level;
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  rt::TeamConfig cfg;
  cfg.nranks = a.ranks;
  cfg.nsockets = std::min(a.sockets, a.ranks);
  rt::ThreadTeam team(cfg);
  const int p = a.ranks;

  std::printf("# YHCCL OSU-style %s benchmark (p=%d, m=%d, algo=%s%s)\n",
              a.collective.c_str(), p, cfg.nsockets,
              coll::algorithm_name(a.algo), a.check ? ", -c" : "");
  std::printf("%-12s %12s %12s %12s\n", "# Size", "Avg(us)", "Min(us)",
              "Max(us)");

  for (std::size_t bytes = a.min_bytes; bytes <= a.max_bytes; bytes *= 2) {
    const std::size_t count = std::max<std::size_t>(bytes / 8, 1);
    coll::CollOpts opts;
    opts.algorithm = a.algo;
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].assign(count, 1.0 + r);
      recv[r].assign(count * (a.collective == "allgather" ||
                                      a.collective == "alltoall"
                                  ? static_cast<std::size_t>(p)
                                  : 1),
                     0.0);
    }
    const int iters = bytes >= (4u << 20) ? 5 : 10;
    double sum = 0, mn = 1e30, mx = 0;
    bool ok = true;
    for (int it = 0; it < iters + 1; ++it) {
      team.run([&](rt::RankCtx& ctx) {
        const int r = ctx.rank();
        if (a.collective == "allreduce")
          coll::allreduce(ctx, send[r].data(), recv[r].data(), count,
                          Datatype::f64, ReduceOp::sum, opts);
        else if (a.collective == "reduce")
          coll::reduce(ctx, send[r].data(), recv[r].data(), count,
                       Datatype::f64, ReduceOp::sum, 0, opts);
        else if (a.collective == "reduce_scatter")
          coll::reduce_scatter(ctx, send[r].data(), recv[r].data(),
                               count / static_cast<std::size_t>(p),
                               Datatype::f64, ReduceOp::sum, opts);
        else if (a.collective == "bcast")
          coll::broadcast(ctx, recv[r].data(), count, Datatype::f64, 0,
                          opts);
        else if (a.collective == "allgather")
          coll::allgather(ctx, send[r].data(), recv[r].data(),
                          count / static_cast<std::size_t>(p), Datatype::f64,
                          opts);
        else if (a.collective == "alltoall")
          coll::alltoall(ctx, send[r].data(), recv[r].data(),
                         count / static_cast<std::size_t>(p), Datatype::f64,
                         opts);
        else
          raise("unknown collective: " + a.collective);
      });
      if (it == 0) continue;  // warm-up
      const double t = team.max_time() * 1e6;
      sum += t;
      mn = std::min(mn, t);
      mx = std::max(mx, t);
    }
    if (a.check && a.collective == "allreduce") {
      const double expect = p * (p + 1) / 2.0;
      for (int r = 0; r < p && ok; ++r)
        ok = recv[r][count / 2] == expect;
    }
    std::printf("%-12zu %12.2f %12.2f %12.2f%s\n", bytes, sum / iters, mn,
                mx, a.check ? (ok ? "  [OK]" : "  [FAILED]") : "");
    if (!ok) return 1;
  }
  return 0;
}
