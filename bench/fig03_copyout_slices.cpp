// Fig. 3 reproduction: the copy-out overhead of a reduction as a function
// of the slice size.  Every rank copies a large buffer from shared memory
// to its private receive buffer slice by slice with plain memmove; slices
// below the libc NT threshold (~2 MB) never use non-temporal stores, so
// small slices pay the RFO/write-allocate tax and run measurably slower.
//
// Paper: 256 MB per rank on 64 cores; scaled here (DESIGN.md §3).
// Expected shape: a step down in time once the slice reaches ~2 MB.
#include <cstring>

#include "bench_util.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = 4;  // ranks doing concurrent copy-outs
  const std::size_t per_rank =
      static_cast<std::size_t>((32u << 20) * bench_scale());
  auto& team = bench_team(p, 1);
  // One shared source region, initialized once.
  std::byte* shm = team.scratch_base();
  std::memset(shm, 0x5a, per_rank);
  std::vector<std::vector<std::uint8_t>> priv(
      p, std::vector<std::uint8_t>(per_rank));

  std::printf("Fig. 3 — sliced copy-out from shared memory (%s per rank, "
              "p=%d)\n",
              human_size(per_rank).c_str(), p);
  std::printf("%-10s %12s %12s\n", "slice", "time(us)", "GB/s");

  Session session("fig03_copyout_slices");
  for (std::size_t slice : {std::size_t{256} << 10, std::size_t{512} << 10,
                            std::size_t{1} << 20, std::size_t{2} << 20,
                            std::size_t{4} << 20}) {
    Series meta;
    meta.bench = session.name();
    meta.collective = "copyout";
    meta.algorithm = "memmove@" + human_size(slice);
    meta.bytes = per_rank;
    const Series s = measure_series(
        team, std::move(meta),
        [&](rt::RankCtx& ctx) {
          auto* dst = priv[ctx.rank()].data();
          for (std::size_t off = 0; off < per_rank; off += slice) {
            const std::size_t len = std::min(slice, per_rank - off);
            std::memmove(dst + off, shm + off, len);
          }
        },
        session.policy());
    session.add(s);
    const double gbs = s.time.median > 0
                           ? static_cast<double>(per_rank) * p /
                                 s.time.median / 1e9
                           : 0.0;
    std::printf("%-10s %12.1f %12.1f\n", human_size(slice).c_str(),
                s.time.median * 1e6, gbs);
  }
  session.write();
  return 0;
}
