file(REMOVE_RECURSE
  "CMakeFiles/amr_simulation.dir/amr_simulation.cpp.o"
  "CMakeFiles/amr_simulation.dir/amr_simulation.cpp.o.d"
  "amr_simulation"
  "amr_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
