// Unified benchmark runner for the paper-reproduction campaign.
//
// Every bench binary drives its (collective × size × algorithm) cells
// through the same measurement discipline:
//  * warm-up iterations that never enter the sample;
//  * repetition until the median's ~95% confidence interval shrinks below
//    a target relative half-width (or the rep/budget caps hit) — the
//    repeat-until-converged loop the paper's §5 campaign uses;
//  * per-rank timing aligned on an in-run barrier, so thread/process spawn
//    skew is excluded and the reported time is genuinely the slowest rank's
//    collective time;
//  * median + MAD outlier rejection (stats.hpp);
//  * one *untimed* run capturing the deterministic counters (DAV bytes,
//    per-ISA-tier kernel dispatches, barrier/flag sync ops) with no
//    harness-inserted synchronization, so the totals equal the
//    model::impl:: operation-count simulators exactly.
//
// Results accumulate in a Session and serialize to a versioned JSON report
// ("yhccl-bench/1") that bench/bench_compare.cpp merges, validates and
// diffs.  docs/benchmarking.md documents the schema and the env knobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "yhccl/bench/json.hpp"
#include "yhccl/bench/stats.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/runtime/sync_counts.hpp"
#include "yhccl/runtime/team.hpp"

namespace yhccl::bench {

/// Schema identifier stamped into every report.
inline constexpr const char* kSchemaVersion = "yhccl-bench/1";

/// Repetition policy; every field has an env override (docs/benchmarking.md).
struct RunPolicy {
  int warmup = 1;             ///< $YHCCL_BENCH_WARMUP  — discarded iterations
  int min_reps = 5;           ///< $YHCCL_BENCH_MIN_REPS
  int max_reps = 40;          ///< $YHCCL_BENCH_REPS    — hard repetition cap
  double target_rel_ci = 0.05;  ///< $YHCCL_BENCH_CI   — stop when CI tighter
  double budget_s = 0.35;     ///< $YHCCL_BENCH_BUDGET — per-cell time budget
  double outlier_k = 5.0;     ///< MAD multiplier for outlier rejection

  static RunPolicy from_env();
  Json to_json() const;
};

/// Host / topology metadata captured once per report.
struct MachineInfo {
  std::string isa;          ///< dispatched kernel tier (active_isa())
  std::string detected_isa; ///< best tier the CPU supports
  int hw_threads = 0;
  std::uint64_t llc_bytes = 0;
  std::uint64_t l2_per_core = 0;
  bool llc_inclusive = false;
  std::string cache;  ///< CacheConfig::describe()

  static MachineInfo detect();
  Json to_json() const;
};

/// The deterministic counters of one team run, summed over all ranks —
/// exactly what the model::impl::*_ops simulators predict.
struct Counters {
  copy::Dav dav;
  copy::KernelCounts kernels;
  rt::SyncCounts sync;

  bool operator==(const Counters&) const noexcept = default;
  Json to_json() const;
  static Counters from_json(const Json& j);
};

/// One measured cell: a (bench, collective, algorithm, shape, size) point.
struct Series {
  std::string bench;       ///< binary name, e.g. "fig11_allreduce"
  std::string collective;  ///< "allreduce", "reduce_scatter", ...
  std::string algorithm;   ///< arm name, e.g. "yhccl-ma"
  int ranks = 0;
  int sockets = 0;
  std::size_t bytes = 0;   ///< total message size handed to the arm
  Summary time;            ///< slowest-rank seconds per iteration
  double dab = 0;          ///< achieved DAV bandwidth, bytes/s (median)
  Counters counters;       ///< deterministic per-node operation counts
  std::string isa;         ///< dominant dispatched tier for this cell

  /// Identity of this cell inside a report (comparator join key).
  std::string key() const;
  Json to_json() const;
  static Series from_json(const Json& j);
};

/// Per-rank SPMD body of one measured iteration.
using RankFn = std::function<void(rt::RankCtx&)>;

/// Parent-side hook run between iterations (buffer re-touch, §5.5).
using IterHook = std::function<void(unsigned iter)>;

/// Timed repetition loop.  Each iteration barrier-aligns the ranks inside
/// the run, then times `fn` per rank into a shared slot; the sample is the
/// slowest rank's time.  Stops once `min_reps` samples exist and either the
/// CI target is met or the budget/rep cap hits.
Summary timed_run(rt::Team& team, const RankFn& fn, const RunPolicy& policy,
                  const IterHook& between_iters = {});

/// One untimed run with no harness-inserted synchronization; returns the
/// team-total counters (equal to the matching model::impl::*_ops result).
Counters measure_counters(rt::Team& team, const RankFn& fn);

/// Full cell measurement: counters via measure_counters, timing via
/// timed_run, achieved DAB from median time.  `meta` supplies the identity
/// fields (bench/collective/algorithm/bytes); shape comes from the team.
Series measure_series(rt::Team& team, Series meta, const RankFn& fn,
                      const RunPolicy& policy,
                      const IterHook& between_iters = {});

/// Accumulates Series and writes one versioned JSON report.
class Session {
 public:
  explicit Session(std::string name);
  Session(std::string name, RunPolicy policy);

  const std::string& name() const noexcept { return name_; }
  const RunPolicy& policy() const noexcept { return policy_; }
  void add(Series s) { series_.push_back(std::move(s)); }
  const std::vector<Series>& series() const noexcept { return series_; }

  Json to_json() const;

  /// When $YHCCL_BENCH_JSON names a directory, writes
  /// <dir>/BENCH_<name>.json and returns the path; otherwise returns "".
  /// Prints a one-line notice on write, a warning on failure.
  std::string write() const;

 private:
  std::string name_;
  RunPolicy policy_;
  MachineInfo machine_;
  std::vector<Series> series_;
};

// ---- file helpers ------------------------------------------------------------
Json load_json_file(const std::string& path, std::string* err = nullptr);
bool write_json_file(const std::string& path, const Json& j,
                     std::string* err = nullptr);

}  // namespace yhccl::bench
