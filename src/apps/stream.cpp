#include "yhccl/apps/stream.hpp"

#include <cstring>
#include <vector>

#include "yhccl/common/time.hpp"
#include "yhccl/copy/kernels.hpp"

namespace yhccl::apps::stream {

const char* copy_kind_name(CopyKind k) {
  switch (k) {
    case CopyKind::memmove_libc: return "memmove";
    case CopyKind::memmove_model: return "memmove-model";
    case CopyKind::temporal: return "t-copy";
    case CopyKind::non_temporal: return "nt-copy";
    case CopyKind::erms: return "erms";
  }
  return "?";
}

SliceCopyResult sliced_copy(void* dst, const void* src, std::size_t total,
                            std::size_t slice, CopyKind kind) {
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  Timer timer;
  for (std::size_t off = 0; off < total; off += slice) {
    const std::size_t len = std::min(slice, total - off);
    switch (kind) {
      case CopyKind::memmove_libc: std::memmove(d + off, s + off, len); break;
      case CopyKind::memmove_model:
        copy::memmove_model_copy(d + off, s + off, len);
        break;
      case CopyKind::temporal: copy::t_copy(d + off, s + off, len); break;
      case CopyKind::non_temporal: copy::nt_copy(d + off, s + off, len); break;
      case CopyKind::erms: copy::erms_copy(d + off, s + off, len); break;
    }
  }
  SliceCopyResult r;
  r.seconds = timer.elapsed();
  r.bandwidth_mbps =
      r.seconds > 0 ? 2.0 * static_cast<double>(total) / 1e6 / r.seconds : 0;
  return r;
}

SliceCopyResult run_sliced_copy(std::size_t total, std::size_t slice,
                                CopyKind kind, int repeats) {
  std::vector<std::byte> src(total), dst(total);
  std::memset(src.data(), 0x2a, total);
  std::memset(dst.data(), 0, total);  // fault in the destination
  SliceCopyResult best;
  for (int i = 0; i < repeats; ++i) {
    const auto r = sliced_copy(dst.data(), src.data(), total, slice, kind);
    if (best.seconds == 0 || r.seconds < best.seconds) best = r;
  }
  return best;
}

}  // namespace yhccl::apps::stream
