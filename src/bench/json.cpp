#include "yhccl/bench/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace yhccl::bench {

void Json::set(std::string_view key, Json v) {
  type_ = Type::object;
  for (auto& kv : obj_) {
    if (kv.first == key) {
      kv.second = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

const Json* Json::find(std::string_view key) const noexcept {
  for (const auto& kv : obj_)
    if (kv.first == key) return &kv.second;
  return nullptr;
}

const Json& Json::operator[](std::string_view key) const noexcept {
  static const Json null_json;
  const Json* j = find(key);
  return j ? *j : null_json;
}

// ---- serialization -----------------------------------------------------------

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  char buf[40];
  switch (type_) {
    case Type::null: out += "null"; break;
    case Type::boolean: out += bool_ ? "true" : "false"; break;
    case Type::integer: {
      auto [end, ec] = std::to_chars(buf, buf + sizeof buf, int_);
      (void)ec;
      out.append(buf, end);
      break;
    }
    case Type::number:
      if (std::isfinite(num_)) {
        std::snprintf(buf, sizeof buf, "%.17g", num_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    case Type::string: dump_string(out, str_); break;
    case Type::array:
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline_indent(out, indent, depth);
      out += ']';
      break;
    case Type::object:
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        dump_string(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline_indent(out, indent, depth);
      out += '}';
      break;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---- parsing -----------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const char* msg) {
    if (error.empty()) {
      error = msg;
      error += " at byte ";
      error += std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return fail("bad literal");
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) break;
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              cp <<= 4;
              if (h >= '0' && h <= '9')
                cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            // Encode BMP code point as UTF-8 (surrogates kept verbatim).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (consume('-')) {}
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0))
      ++pos;
    bool integral = true;
    if (pos < text.size() &&
        (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E')) {
      integral = false;
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
              text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
              text[pos] == '+' || text[pos] == '-'))
        ++pos;
    }
    const std::string_view tok = text.substr(start, pos - start);
    const char* tb = tok.data();
    const char* te = tok.data() + tok.size();
    if (integral) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(tb, te, v);
      if (ec == std::errc() && p == te) {
        out = Json(v);
        return true;
      }
      // Out of int64 range: fall through to double.
    }
    double d = 0;
    auto [p, ec] = std::from_chars(tb, te, d);
    if (ec != std::errc() || p != te) return fail("bad number");
    out = Json(d);
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    switch (text[pos]) {
      case 'n': out = Json(); return literal("null");
      case 't': out = Json(true); return literal("true");
      case 'f': out = Json(false); return literal("false");
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case '[': {
        ++pos;
        out = Json::array();
        skip_ws();
        if (consume(']')) return true;
        for (;;) {
          Json v;
          if (!parse_value(v, depth + 1)) return false;
          out.push_back(std::move(v));
          skip_ws();
          if (consume(']')) return true;
          if (!consume(',')) return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos;
        out = Json::object();
        skip_ws();
        if (consume('}')) return true;
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return fail("expected ':'");
          Json v;
          if (!parse_value(v, depth + 1)) return false;
          out.set(key, std::move(v));
          skip_ws();
          if (consume('}')) return true;
          if (!consume(',')) return fail("expected ',' or '}'");
        }
      }
      default: return parse_number(out);
    }
  }
};

}  // namespace

Json Json::parse(std::string_view text, std::string* err) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out, 0)) {
    if (err) *err = p.error;
    return {};
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    p.fail("trailing garbage");
    if (err) *err = p.error;
    return {};
  }
  if (err) err->clear();
  return out;
}

}  // namespace yhccl::bench
