#!/usr/bin/env bash
# One-command benchmark campaign: runs every harness-backed bench binary
# with JSON output enabled ($YHCCL_BENCH_JSON), merges the per-binary
# reports into one BENCH_collectives.json and validates it against the
# yhccl-bench/1 schema.
#
# usage: run_collectives.sh <bench-bindir> [outfile]
# knobs: YHCCL_BENCH_SCALE / _RANKS / _SOCKETS / _REPS / _CI / _BUDGET
#        (docs/benchmarking.md) — e.g. YHCCL_BENCH_SCALE=0.05 for a smoke
#        run like the CI perf leg.
set -euo pipefail

bindir=${1:?usage: run_collectives.sh <bench-bindir> [outfile]}
out=${2:-BENCH_collectives.json}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

benches=(
  fig03_copyout_slices
  tab04_stream_slice_copy
  fig09_reduce_scatter
  fig10_reduce
  fig11_allreduce
  fig12_adaptive_allreduce
  fig13_adaptive_bcast
  fig14_adaptive_allgather
  fig15_state_of_the_art
  fig16a_scalability
  fig16b_multinode
  fig17_miniamr
  fig18_cnn_training
  tab05_cma_vs_adaptive
  tab0123_dav_models
  ablation_slice_size
  ablation_switching
  ablation_sync_cost
  ablation_alltoall
  ablation_tuner
  kernel_dispatch
)

mtmp="$tmp/metrics"
mkdir -p "$mtmp"

for b in "${benches[@]}"; do
  echo "== ${b}"
  YHCCL_BENCH_JSON="$tmp" YHCCL_METRICS=on YHCCL_METRICS_DIR="$mtmp" \
    "$bindir/$b" >/dev/null
done

"$bindir/bench_compare" merge "$out" "$tmp"/BENCH_*.json
"$bindir/bench_compare" check "$out"

# Metrics leg (docs/observability.md §6): the campaign ran with the
# always-on registry enabled, so every team exported a final snapshot pair
# above.  Validate both export formats and merge the per-process JSON
# snapshots into one campaign-wide artifact next to the bench report.
metrics="${out%.json}_metrics.json"
"$bindir/metrics_check" "$mtmp"/yhccl_metrics_*.json "$mtmp"/yhccl_metrics_*.prom
"$bindir/metrics_check" merge "$metrics" "$mtmp"/yhccl_metrics_*.json
echo "metrics artifact: $metrics"

# Auto-tuner leg (docs/tuning.md): distill the campaign into a plan file
# (loadable via $YHCCL_PLAN_FILE), validate it, and gate the paired
# switch-static vs switch-tuned series from ablation_tuner — the tuned
# schedule must never be significantly slower than the static rules.
# YHCCL_TUNED_GATE=warn demotes a gate failure to a warning: on noisy
# shared runners at tiny scale a single cell's CIs can disjoint by
# chance (the same stance CI takes on timing diffs generally).
plans="${out%.json}_plans.json"
"$bindir/plan_check" warm "$out" "$plans"
"$bindir/plan_check" check "$plans"
if ! "$bindir/bench_compare" tuned "$out"; then
  if [ "${YHCCL_TUNED_GATE:-hard}" = warn ]; then
    echo "warning: tuned-vs-static gate failed (YHCCL_TUNED_GATE=warn, not fatal)" >&2
  else
    exit 1
  fi
fi
