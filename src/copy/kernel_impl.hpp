// Tier-generic kernel bodies, instantiated once per ISA tier.
//
// Each tier TU (kernels_{scalar,avx2,avx512}.cpp) is compiled with its own
// -m flags and instantiates these templates with a *TU-local* stream
// policy, so every tier gets its own auto-vectorized code and there is no
// cross-TU ODR sharing of differently-compiled bodies.  The policy
// supplies the only operations that need explicit intrinsics: streaming a
// 64-byte line and the store fence.
//
// Reduction shape: a single pass that reads all m sources once, folds them
// left-to-right in registers and stores once.  The fold is elementwise and
// sequential in k for every tier and every path (fixed-m, generic-m,
// temporal, streaming), which makes results bit-identical across tiers —
// float reduction order never depends on the vector width.
//
// Streaming stores go through a 64-byte-aligned block buffer: the block is
// computed with ordinary (auto-vectorized) code into L1-resident scratch,
// then pushed out line by line with non-temporal stores.  This costs one
// L1-hit round trip but gives NT coverage for *every* (op, dtype) combo
// with one implementation — no per-op intrinsic surface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "yhccl/copy/dispatch.hpp"

namespace yhccl::copy::kimpl {

inline constexpr std::size_t kLineBytes = 64;   // NT-store granularity
inline constexpr std::size_t kBlockBytes = 256; // elements folded per block

/// Fixed-operand fusion limit: up to this many source pointers are kept in
/// named registers with a fully unrolled fold; larger fan-ins take the
/// generic blockwise path (still a single pass over memory).
inline constexpr int kMaxFusedOperands = 8;

// ---- elementwise operators --------------------------------------------------

template <typename T> struct OpSum {
  static T apply(T a, T b) noexcept { return static_cast<T>(a + b); }
};
template <typename T> struct OpProd {
  static T apply(T a, T b) noexcept { return static_cast<T>(a * b); }
};
template <typename T> struct OpMax {
  static T apply(T a, T b) noexcept { return a > b ? a : b; }
};
template <typename T> struct OpMin {
  static T apply(T a, T b) noexcept { return a < b ? a : b; }
};
template <typename T> struct OpBand {
  static T apply(T a, T b) noexcept { return static_cast<T>(a & b); }
};
template <typename T> struct OpBor {
  static T apply(T a, T b) noexcept { return static_cast<T>(a | b); }
};

// ---- m-ary fused reduction --------------------------------------------------

template <typename T, class Op, int M>
inline T fold_at(const T* const* p, std::size_t i) noexcept {
  T acc = p[0][i];
  for (int k = 1; k < M; ++k) acc = Op::apply(acc, p[k][i]);
  return acc;
}

/// Temporal fixed-m: one auto-vectorizable loop, `out` may alias srcs[0].
template <class SP, typename T, class Op, int M>
void rom_t(T* out, const T* const* srcs, std::size_t cnt) {
  const T* p[M];
  for (int k = 0; k < M; ++k) p[k] = srcs[k];
  for (std::size_t i = 0; i < cnt; ++i) out[i] = fold_at<T, Op, M>(p, i);
}

/// Streaming fixed-m: peel until `out` hits a 64 B boundary, then fold
/// block-by-block into aligned scratch and stream it out.
template <class SP, typename T, class Op, int M>
void rom_nt(T* out, const T* const* srcs, std::size_t cnt) {
  constexpr std::size_t EB = kBlockBytes / sizeof(T);
  const T* p[M];
  for (int k = 0; k < M; ++k) p[k] = srcs[k];
  std::size_t i = 0;
  while (i < cnt &&
         (reinterpret_cast<std::uintptr_t>(out + i) & (kLineBytes - 1)) != 0) {
    out[i] = fold_at<T, Op, M>(p, i);
    ++i;
  }
  alignas(kLineBytes) T tmp[EB];
  for (; i + EB <= cnt; i += EB) {
    for (std::size_t j = 0; j < EB; ++j) tmp[j] = fold_at<T, Op, M>(p, i + j);
    for (std::size_t b = 0; b < kBlockBytes; b += kLineBytes)
      SP::stream_line(reinterpret_cast<char*>(out + i) + b,
                      reinterpret_cast<const char*>(tmp) + b);
  }
  for (; i < cnt; ++i) out[i] = fold_at<T, Op, M>(p, i);
  SP::fence();
}

/// Generic runtime-m: still one pass over memory — each block of sources
/// is folded into L1-resident scratch, then stored (or streamed) once.
template <class SP, typename T, class Op>
void rom_gen(T* out, const T* const* srcs, int m, std::size_t cnt, bool nt) {
  constexpr std::size_t EB = kBlockBytes / sizeof(T);
  const bool stream = nt && SP::kHasStream;
  std::size_t i = 0;
  if (stream) {
    while (i < cnt && (reinterpret_cast<std::uintptr_t>(out + i) &
                       (kLineBytes - 1)) != 0) {
      T acc = srcs[0][i];
      for (int k = 1; k < m; ++k) acc = Op::apply(acc, srcs[k][i]);
      out[i] = acc;
      ++i;
    }
  }
  alignas(kLineBytes) T tmp[EB];
  for (; i + EB <= cnt; i += EB) {
    const T* s0 = srcs[0];
    for (std::size_t j = 0; j < EB; ++j) tmp[j] = s0[i + j];
    for (int k = 1; k < m; ++k) {
      const T* sk = srcs[k];
      for (std::size_t j = 0; j < EB; ++j)
        tmp[j] = Op::apply(tmp[j], sk[i + j]);
    }
    if (stream) {
      for (std::size_t b = 0; b < kBlockBytes; b += kLineBytes)
        SP::stream_line(reinterpret_cast<char*>(out + i) + b,
                        reinterpret_cast<const char*>(tmp) + b);
    } else {
      std::memcpy(out + i, tmp, kBlockBytes);
    }
  }
  for (; i < cnt; ++i) {
    T acc = srcs[0][i];
    for (int k = 1; k < m; ++k) acc = Op::apply(acc, srcs[k][i]);
    out[i] = acc;
  }
  if (stream) SP::fence();
}

template <class SP, typename T, class Op, int M>
void rom_fixed(T* out, const T* const* srcs, std::size_t cnt, bool nt) {
  if (nt && SP::kHasStream)
    rom_nt<SP, T, Op, M>(out, srcs, cnt);
  else
    rom_t<SP, T, Op, M>(out, srcs, cnt);
}

template <class SP, typename T, class Op>
void rom(void* out, const void* const* srcs, int m, std::size_t cnt,
         bool nt) {
  auto* o = static_cast<T*>(out);
  const auto* const* s = reinterpret_cast<const T* const*>(srcs);
  switch (m) {
    case 2: return rom_fixed<SP, T, Op, 2>(o, s, cnt, nt);
    case 3: return rom_fixed<SP, T, Op, 3>(o, s, cnt, nt);
    case 4: return rom_fixed<SP, T, Op, 4>(o, s, cnt, nt);
    case 5: return rom_fixed<SP, T, Op, 5>(o, s, cnt, nt);
    case 6: return rom_fixed<SP, T, Op, 6>(o, s, cnt, nt);
    case 7: return rom_fixed<SP, T, Op, 7>(o, s, cnt, nt);
    case 8: return rom_fixed<SP, T, Op, 8>(o, s, cnt, nt);
    default: return rom_gen<SP, T, Op>(o, s, m, cnt, nt);
  }
}

template <class SP, typename T>
void reduce_typed(void* out, const void* const* srcs, int m, std::size_t cnt,
                  ReduceOp op, bool nt) {
  switch (op) {
    case ReduceOp::sum: return rom<SP, T, OpSum<T>>(out, srcs, m, cnt, nt);
    case ReduceOp::prod: return rom<SP, T, OpProd<T>>(out, srcs, m, cnt, nt);
    case ReduceOp::max: return rom<SP, T, OpMax<T>>(out, srcs, m, cnt, nt);
    case ReduceOp::min: return rom<SP, T, OpMin<T>>(out, srcs, m, cnt, nt);
    case ReduceOp::band:
      if constexpr (std::is_integral_v<T>)
        return rom<SP, T, OpBand<T>>(out, srcs, m, cnt, nt);
      break;  // unreachable: op_valid_for() checked at the API boundary
    case ReduceOp::bor:
      if constexpr (std::is_integral_v<T>)
        return rom<SP, T, OpBor<T>>(out, srcs, m, cnt, nt);
      break;
  }
}

template <class SP>
void reduce_entry(void* out, const void* const* srcs, int m, std::size_t n,
                  Datatype d, ReduceOp op, bool nt) {
  switch (d) {
    case Datatype::u8:
      return reduce_typed<SP, std::uint8_t>(out, srcs, m, n, op, nt);
    case Datatype::i32:
      return reduce_typed<SP, std::int32_t>(out, srcs, m, n / 4, op, nt);
    case Datatype::i64:
      return reduce_typed<SP, std::int64_t>(out, srcs, m, n / 8, op, nt);
    case Datatype::f32:
      return reduce_typed<SP, float>(out, srcs, m, n / 4, op, nt);
    case Datatype::f64:
      return reduce_typed<SP, double>(out, srcs, m, n / 8, op, nt);
  }
}

// ---- copy kernels -----------------------------------------------------------

inline constexpr std::size_t kPrefetchAhead = 256;

template <class SP>
void copy_t_entry(void* dst, const void* src, std::size_t n) {
  auto* d = static_cast<char*>(dst);
  const auto* s = static_cast<const char*>(src);
  std::size_t i = 0;
  // Fixed-size block memcpy expands inline to the widest loads/stores the
  // TU's target flags allow.
  for (; i + kBlockBytes <= n; i += kBlockBytes) {
    __builtin_prefetch(s + i + kPrefetchAhead);
    __builtin_prefetch(s + i + kPrefetchAhead + kLineBytes);
    std::memcpy(d + i, s + i, kBlockBytes);
  }
  if (i < n) std::memcpy(d + i, s + i, n - i);
}

template <class SP>
void copy_nt_entry(void* dst, const void* src, std::size_t n) {
  if constexpr (!SP::kHasStream) {
    copy_t_entry<SP>(dst, src, n);
    return;
  } else {
    auto* d = static_cast<char*>(dst);
    const auto* s = static_cast<const char*>(src);
    std::size_t i = 0;
    // Streaming stores need 64 B destination alignment: peel the head.
    const std::size_t mis =
        reinterpret_cast<std::uintptr_t>(d) & (kLineBytes - 1);
    if (mis != 0) {
      const std::size_t head = kLineBytes - mis < n ? kLineBytes - mis : n;
      std::memcpy(d, s, head);
      i = head;
    }
    for (; i + kBlockBytes <= n; i += kBlockBytes) {
      __builtin_prefetch(s + i + kPrefetchAhead, 0, 0);
      __builtin_prefetch(s + i + kPrefetchAhead + kLineBytes, 0, 0);
      for (std::size_t b = 0; b < kBlockBytes; b += kLineBytes)
        SP::stream_line(d + i + b, s + i + b);
    }
    for (; i + kLineBytes <= n; i += kLineBytes) SP::stream_line(d + i, s + i);
    if (i < n) std::memcpy(d + i, s + i, n - i);
    // Streaming stores are weakly ordered; fence before any flag publish.
    SP::fence();
  }
}

template <class SP>
KernelTable make_table(IsaTier tier) {
  return KernelTable{tier, &copy_t_entry<SP>, &copy_nt_entry<SP>,
                     &reduce_entry<SP>};
}

}  // namespace yhccl::copy::kimpl
