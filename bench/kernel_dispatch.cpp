// Kernel-dispatch benchmark: single-pass m-ary fused reduction vs the
// pairwise chain it replaced, swept over ISA tiers (scalar / AVX2 /
// AVX-512, whichever the host runs) and fan-in m.
//
// For each (tier, m, size) cell it reports wall time for
//   * fused    — one reduce_out_multi call, (m+1)*n bytes of traffic;
//   * fused-nt — the same with streaming stores;
//   * chain    — reduce_out + (m-2) reduce_inplace, 3n(m-1) bytes;
// plus the measured DAV of both shapes.  Results land in
// BENCH_kernels.json for the plotting scripts.
//
// Knobs: YHCCL_BENCH_SCALE scales the size sweep; YHCCL_ISA caps the tier
// sweep the same way it caps production dispatch.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "yhccl/common/time.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/copy/reduce_kernels.hpp"
#include "bench_util.hpp"

using yhccl::Datatype;
using yhccl::ReduceOp;
using yhccl::Timer;
namespace yc = yhccl::copy;

namespace {

constexpr int kMaxM = 8;

struct Cell {
  yc::IsaTier tier;
  int m;
  std::size_t bytes;
  double fused_s, fused_nt_s, chain_s;
  std::uint64_t fused_dav, chain_dav;
};

/// Median seconds for `fn`, rewriting the first source between iterations
/// so no arm benefits from cache-resident inputs.
template <typename Fn>
double time_median(std::vector<float>& src0, const Fn& fn,
                   double budget_s = 0.25, int min_iters = 5,
                   int max_iters = 30) {
  std::vector<double> samples;
  double spent = 0;
  for (int it = 0; it < max_iters; ++it) {
    for (std::size_t i = 0; i < src0.size(); i += 128)
      src0[i] = static_cast<float>(it + 1);
    const Timer t;
    fn();
    const double s = t.elapsed();
    if (it > 0) samples.push_back(s);  // drop warm-up
    spent += s;
    if (static_cast<int>(samples.size()) >= min_iters && spent > budget_s)
      break;
  }
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::vector<yc::IsaTier> tier_sweep() {
  std::vector<yc::IsaTier> ts;
  for (int t = 0; t <= static_cast<int>(yc::active_isa()); ++t)
    ts.push_back(static_cast<yc::IsaTier>(t));
  return ts;
}

}  // namespace

int main() {
  const double scale = yhccl::bench::bench_scale();
  std::vector<std::size_t> sizes;
  for (std::size_t s : {std::size_t{256} << 10, std::size_t{4} << 20,
                        std::size_t{16} << 20})
    sizes.push_back(static_cast<std::size_t>(s * scale) & ~std::size_t{63});
  const std::vector<int> fanins = {2, 4, 8};

  std::vector<std::vector<float>> bufs(kMaxM);
  std::vector<float> out;
  std::vector<Cell> cells;

  const auto initial = yc::active_isa();
  for (yc::IsaTier tier : tier_sweep()) {
    yc::force_isa(tier);
    for (int m : fanins) {
      for (std::size_t bytes : sizes) {
        const std::size_t cnt = bytes / sizeof(float);
        for (int k = 0; k < m; ++k)
          bufs[k].assign(cnt, static_cast<float>(k + 1));
        out.assign(cnt, 0.0f);
        std::vector<const void*> srcs;
        for (int k = 0; k < m; ++k) srcs.push_back(bufs[k].data());

        auto fused = [&](bool nt) {
          yc::reduce_out_multi(out.data(), srcs.data(), m, bytes,
                               Datatype::f32, ReduceOp::sum, nt);
        };
        auto chain = [&] {
          yc::reduce_out(out.data(), srcs[0], srcs[1], bytes, Datatype::f32,
                         ReduceOp::sum, false);
          for (int k = 2; k < m; ++k)
            yc::reduce_inplace(out.data(), srcs[k], bytes, Datatype::f32,
                               ReduceOp::sum);
        };

        Cell c;
        c.tier = tier;
        c.m = m;
        c.bytes = bytes;
        {
          yc::DavScope d;
          fused(false);
          c.fused_dav = d.delta().total();
        }
        {
          yc::DavScope d;
          chain();
          c.chain_dav = d.delta().total();
        }
        c.fused_s = time_median(bufs[0], [&] { fused(false); });
        c.fused_nt_s = time_median(bufs[0], [&] { fused(true); });
        c.chain_s = time_median(bufs[0], [&] { chain(); });
        cells.push_back(c);
      }
    }
  }
  yc::force_isa(initial);

  std::printf("%-8s %3s %8s %12s %12s %12s %8s %10s %10s\n", "tier", "m",
              "size", "fused(us)", "fused-nt(us)", "chain(us)", "speedup",
              "fusedDAV", "chainDAV");
  for (const auto& c : cells)
    std::printf("%-8s %3d %8s %12.1f %12.1f %12.1f %8.2f %10.1f %10.1f\n",
                yc::isa_name(c.tier), c.m,
                yhccl::bench::human_size(c.bytes).c_str(), c.fused_s * 1e6,
                c.fused_nt_s * 1e6, c.chain_s * 1e6,
                c.fused_s > 0 ? c.chain_s / c.fused_s : 0.0,
                c.fused_dav / 1e6, c.chain_dav / 1e6);

  FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_kernels.json\n");
    return 1;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    std::fprintf(
        f,
        "  {\"tier\": \"%s\", \"m\": %d, \"bytes\": %zu, "
        "\"fused_us\": %.2f, \"fused_nt_us\": %.2f, \"chain_us\": %.2f, "
        "\"fused_dav\": %llu, \"chain_dav\": %llu}%s\n",
        yc::isa_name(c.tier), c.m, c.bytes, c.fused_s * 1e6,
        c.fused_nt_s * 1e6, c.chain_s * 1e6,
        static_cast<unsigned long long>(c.fused_dav),
        static_cast<unsigned long long>(c.chain_dav),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_kernels.json (%zu cells)\n", cells.size());
  return 0;
}
