file(REMOVE_RECURSE
  "CMakeFiles/yhccl_coll.dir/dpml_two_level.cpp.o"
  "CMakeFiles/yhccl_coll.dir/dpml_two_level.cpp.o.d"
  "CMakeFiles/yhccl_coll.dir/extra.cpp.o"
  "CMakeFiles/yhccl_coll.dir/extra.cpp.o.d"
  "CMakeFiles/yhccl_coll.dir/ma_reduce.cpp.o"
  "CMakeFiles/yhccl_coll.dir/ma_reduce.cpp.o.d"
  "CMakeFiles/yhccl_coll.dir/pipelined.cpp.o"
  "CMakeFiles/yhccl_coll.dir/pipelined.cpp.o.d"
  "CMakeFiles/yhccl_coll.dir/profiler.cpp.o"
  "CMakeFiles/yhccl_coll.dir/profiler.cpp.o.d"
  "CMakeFiles/yhccl_coll.dir/socket_ma.cpp.o"
  "CMakeFiles/yhccl_coll.dir/socket_ma.cpp.o.d"
  "CMakeFiles/yhccl_coll.dir/switching.cpp.o"
  "CMakeFiles/yhccl_coll.dir/switching.cpp.o.d"
  "CMakeFiles/yhccl_coll.dir/trace.cpp.o"
  "CMakeFiles/yhccl_coll.dir/trace.cpp.o.d"
  "CMakeFiles/yhccl_coll.dir/vcoll.cpp.o"
  "CMakeFiles/yhccl_coll.dir/vcoll.cpp.o.d"
  "libyhccl_coll.a"
  "libyhccl_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yhccl_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
