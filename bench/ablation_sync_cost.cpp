// Ablation (ours): synchronization primitive costs underlying the paper's
// MA-vs-socket-aware trade-off (§3.3): per-round the flat MA pipeline pays
// p-1 neighbour flag waits, the socket-aware variant p/m-1 waits plus node
// barriers.  This bench measures both primitives directly at several team
// sizes, quantifying the overhead the socket-aware design amortizes.
#include <memory>

#include "bench_util.hpp"
#include "yhccl/runtime/sync.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  std::printf("Ablation — synchronization primitive cost\n");
  std::printf("%-6s %18s %18s %18s\n", "p", "central-bar(us)",
              "dissem-bar(us)", "flag-chain(us)");
  Session session("ablation_sync_cost");
  for (int p : {2, 4, 8, 16}) {
    auto& team = bench_team(p, 2);
    constexpr int kIters = 400;
    // Each cell records into the session as a "sync" series whose counters
    // (kIters * p barrier arrivals, kIters flag posts/waits per rank, ...)
    // are deterministic and regression-gated like any collective's.
    const auto cell = [&](const char* algo, const RankFn& fn) {
      Series meta;
      meta.bench = session.name();
      meta.collective = "sync";
      meta.algorithm = std::string(algo) + "-x" + std::to_string(kIters);
      meta.bytes = 0;
      const Series s =
          measure_series(team, std::move(meta), fn, session.policy());
      session.add(s);
      return s.time.median / kIters * 1e6;
    };
    // Node barrier.
    const double barrier_us = cell("central-barrier", [&](rt::RankCtx& ctx) {
      for (int i = 0; i < kIters; ++i) ctx.barrier();
    });
    // Dissemination barrier (log2 p rounds of pairwise signalling).  The
    // tokens must survive the harness's repetition loop: their epochs are
    // monotone counters matched against the state's monotone flags, so a
    // fresh token against advanced flags would never wait.
    auto dstate = std::make_unique<rt::DisseminationBarrierState>();
    rt::dissemination_init(*dstate, static_cast<std::uint32_t>(p));
    std::vector<rt::DisseminationToken> toks(p);
    const double dissem_us = cell("dissemination", [&](rt::RankCtx& ctx) {
      auto& tok = toks[static_cast<std::size_t>(ctx.rank())];
      for (int i = 0; i < kIters; ++i)
        rt::dissemination_arrive(*dstate, ctx.rank(), tok);
    });
    // Neighbour flag chain (the MA pipeline's per-step sync).
    const double chain_us = cell("flag-chain", [&](rt::RankCtx& ctx) {
      const auto seq = ctx.next_seq();
      const int right = (ctx.rank() + 1) % ctx.nranks();
      for (int k = 0; k < kIters; ++k) {
        if (k > 0) ctx.step_wait(right, rt::RankCtx::step_value(seq, k));
        ctx.step_publish(rt::RankCtx::step_value(seq, k + 1));
      }
      ctx.barrier();
    });
    std::printf("%-6d %18.2f %18.2f %18.2f\n", p, barrier_us, dissem_us,
                chain_us);
  }
  session.write();
  std::printf("\n(per large-message round, flat MA pays (p-1) flag waits; "
              "socket-aware MA pays p/m-1 waits + 2-3 barriers)\n");
  return 0;
}
