#include "yhccl/copy/cache_model.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace yhccl::copy {

namespace {

// Parse a sysfs cache size string like "512K" / "8192K" / "1M".
bool parse_size(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t v = 0;
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    v = v * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  if (i == 0) return false;
  switch (i < text.size() ? text[i] : '\0') {
    case 'K': v <<= 10; break;
    case 'M': v <<= 20; break;
    case 'G': v <<= 30; break;
    default: break;
  }
  out = v;
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path);
  if (!f) return false;
  std::getline(f, out);
  return !out.empty();
}

}  // namespace

CacheConfig CacheConfig::detect() {
  CacheConfig cfg;  // generic fallback: 8 MB non-inclusive LLC, 512 KB L2
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/";
  std::size_t best_level = 0;
  std::size_t l2 = 0, llc = 0;
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + "index" + std::to_string(idx) + "/";
    std::string level_s, size_s, type_s;
    if (!read_file(dir + "level", level_s) ||
        !read_file(dir + "size", size_s))
      continue;
    read_file(dir + "type", type_s);
    if (type_s == "Instruction") continue;
    std::size_t size = 0;
    if (!parse_size(size_s, size)) continue;
    const std::size_t level = static_cast<std::size_t>(std::stoi(level_s));
    if (level == 2) l2 = size;
    if (level >= best_level) {
      best_level = level;
      llc = size;
    }
  }
  if (llc != 0) cfg.llc_bytes = llc;
  if (l2 != 0) cfg.l2_per_core = l2;
  return cfg;
}

std::string CacheConfig::describe() const {
  std::ostringstream os;
  os << "llc=" << (llc_bytes >> 10) << "KiB ("
     << (llc_inclusive ? "inclusive" : "non-inclusive")
     << "), l2/core=" << (l2_per_core >> 10) << "KiB, line=" << cacheline
     << "B";
  return os.str();
}

}  // namespace yhccl::copy
