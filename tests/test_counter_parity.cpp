// Backend-parity and race-cleanliness of the deterministic counters.
//
// The same collective on the same geometry must produce *bit-identical*
// profiler records — calls, payload bytes, DAV loads/stores, per-tier
// kernel dispatches, barrier/flag sync ops — whether the ranks are
// threads or fork()ed processes (wall times obviously differ).  That
// equivalence is what lets the bench comparator gate on counters without
// caring which backend produced a report.  The same runs must also be
// clean under the happens-before race checker (YHCCL_CHECK=hb wiring,
// here forced programmatically).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/profiler.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using test::cached_team;
using test::fill_buffer;

namespace {

constexpr std::size_t kScratch = 24u << 20;

coll::CollOpts parity_opts() {
  coll::CollOpts o;
  o.slice_max = 4u << 10;
  return o;
}

/// Run every profiled collective wrapper once per rank and collect the
/// per-rank profiles through the team's shared heap (CollProfiler's record
/// table is trivially copyable, so a memcpy out of a fork()ed child is
/// well-defined).
std::vector<coll::CollProfiler> profile_all(rt::Team& team, int p,
                                            std::size_t count) {
  auto* out = reinterpret_cast<coll::CollProfiler*>(team.shared_alloc(
      sizeof(coll::CollProfiler) * static_cast<std::size_t>(p),
      alignof(coll::CollProfiler)));
  const auto o = parity_opts();
  team.run([&](rt::RankCtx& ctx) {
    coll::CollProfiler prof;
    std::vector<double> send(count * ctx.nranks());
    std::vector<double> recv(count * ctx.nranks());
    fill_buffer(send.data(), send.size(), Datatype::f64, ctx.rank(),
                ReduceOp::sum);
    coll::allreduce(prof, ctx, send.data(), recv.data(), count,
                    Datatype::f64, ReduceOp::sum, o);
    coll::reduce(prof, ctx, send.data(), recv.data(), count, Datatype::f64,
                 ReduceOp::sum, /*root=*/0, o);
    coll::reduce_scatter(prof, ctx, send.data(), recv.data(), count,
                         Datatype::f64, ReduceOp::sum, o);
    coll::broadcast(prof, ctx, send.data(), count, Datatype::f64, /*root=*/0,
                    o);
    coll::allgather(prof, ctx, send.data(), recv.data(), count, Datatype::f64,
                    o);
    std::memcpy(&out[ctx.rank()], &prof, sizeof(prof));
    ctx.barrier();
  });
  return {out, out + p};
}

::testing::AssertionResult records_identical(
    const coll::CollProfiler::Record& a,
    const coll::CollProfiler::Record& b) {
  if (a.calls != b.calls)
    return ::testing::AssertionFailure()
           << "calls " << a.calls << " != " << b.calls;
  if (a.payload_bytes != b.payload_bytes)
    return ::testing::AssertionFailure()
           << "payload " << a.payload_bytes << " != " << b.payload_bytes;
  if (!(a.dav == b.dav))
    return ::testing::AssertionFailure()
           << "dav " << a.dav.loads << "/" << a.dav.stores << " != "
           << b.dav.loads << "/" << b.dav.stores;
  if (!(a.kernels == b.kernels))
    return ::testing::AssertionFailure() << "kernel dispatch counts differ";
  if (a.sync.barriers != b.sync.barriers ||
      a.sync.flag_posts != b.sync.flag_posts ||
      a.sync.flag_waits != b.sync.flag_waits)
    return ::testing::AssertionFailure()
           << "sync " << a.sync.barriers << "/" << a.sync.flag_posts << "/"
           << a.sync.flag_waits << " != " << b.sync.barriers << "/"
           << b.sync.flag_posts << "/" << b.sync.flag_waits;
  return ::testing::AssertionSuccess();
}

TEST(CounterParityBackends, ProfilerRecordsBitIdenticalThreadVsFork) {
  for (auto [p, m] : {std::pair{2, 1}, {4, 2}, {3, 2}}) {
    const std::size_t count = 3003;  // ragged: not a slice multiple

    auto& tteam = cached_team(p, m, kScratch);
    const auto thread_profiles = profile_all(tteam, p, count);

    rt::TeamConfig cfg;
    cfg.nranks = p;
    cfg.nsockets = m;
    cfg.scratch_bytes = kScratch;
    cfg.shared_heap_bytes = 8u << 20;
    rt::ProcessTeam pteam(cfg);
    const auto fork_profiles = profile_all(pteam, p, count);

    for (int r = 0; r < p; ++r) {
      for (int k = 0; k < static_cast<int>(coll::CollKind::kCount_); ++k) {
        const auto kind = static_cast<coll::CollKind>(k);
        EXPECT_TRUE(records_identical(thread_profiles[r].get(kind),
                                      fork_profiles[r].get(kind)))
            << "p=" << p << " m=" << m << " rank " << r << " "
            << coll::coll_kind_name(kind);
      }
    }

    // Team totals agree too (what the bench harness snapshots).
    const auto td = tteam.total_dav(), pd = pteam.total_dav();
    EXPECT_EQ(td.loads, pd.loads) << "p=" << p << " m=" << m;
    EXPECT_EQ(td.stores, pd.stores) << "p=" << p << " m=" << m;
    EXPECT_TRUE(tteam.total_kernels() == pteam.total_kernels());
    const auto ts = tteam.total_sync(), ps = pteam.total_sync();
    EXPECT_EQ(ts.barriers, ps.barriers);
    EXPECT_EQ(ts.flag_posts, ps.flag_posts);
    EXPECT_EQ(ts.flag_waits, ps.flag_waits);
  }
}

TEST(CounterParityBackends, ProfiledRunsAreHbCleanOnBothBackends) {
  const int p = 4, m = 2;
  const std::size_t count = 2048;

  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  cfg.scratch_bytes = kScratch;
  cfg.shared_heap_bytes = 8u << 20;
  cfg.hb_check = rt::HbMode::on;

  rt::ThreadTeam tteam(cfg);
  profile_all(tteam, p, count);
  EXPECT_EQ(tteam.hb_races(), 0u) << tteam.hb_report();

  rt::ProcessTeam pteam(cfg);
  profile_all(pteam, p, count);
  EXPECT_EQ(pteam.hb_races(), 0u) << pteam.hb_report();
}

}  // namespace
