file(REMOVE_RECURSE
  "CMakeFiles/test_coll_extra.dir/test_coll_extra.cpp.o"
  "CMakeFiles/test_coll_extra.dir/test_coll_extra.cpp.o.d"
  "test_coll_extra"
  "test_coll_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
