file(REMOVE_RECURSE
  "CMakeFiles/fig12_adaptive_allreduce.dir/fig12_adaptive_allreduce.cpp.o"
  "CMakeFiles/fig12_adaptive_allreduce.dir/fig12_adaptive_allreduce.cpp.o.d"
  "fig12_adaptive_allreduce"
  "fig12_adaptive_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_adaptive_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
