# Empty dependencies file for fig03_copyout_slices.
# This may be replaced when dependencies are built.
