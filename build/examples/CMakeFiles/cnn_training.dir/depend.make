# Empty dependencies file for cnn_training.
# This may be replaced when dependencies are built.
