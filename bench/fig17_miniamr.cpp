// Fig. 17 reproduction: Mini-AMR execution time, Open MPI (two-copy ring
// collectives, the default CMA-era configuration) vs YHCCL.
//
// Part 1 runs the real proxy app on this host's rank team with both
// collective providers.  Part 2 extends to the paper's 1-64 node sweep
// with the calibrated simulator: per step, compute scales with the
// per-node block count and the control all-reduce runs hierarchically.
#include "bench_util.hpp"
#include "yhccl/apps/miniamr.hpp"
#include "yhccl/apps/stream.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/netsim/netsim.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  apps::miniamr::Config cfg;
  cfg.block_dim = 12;  // enough stencil work that compute matters
  cfg.tsteps = 8;
  cfg.refine_metric_len =
      static_cast<std::size_t>(262144 * bench_scale());  // 2 MB all-reduce

  std::printf("Fig. 17 — Mini-AMR proxy (p=%d, m=%d, %d steps, %s control "
              "all-reduce)\n",
              p, m, cfg.tsteps,
              human_size(cfg.refine_metric_len * 8).c_str());

  apps::miniamr::Stats ympi{}, ompi{};
  Session session("fig17_miniamr");
  record_once(team, session, "app-miniamr", "YHCCL",
              cfg.refine_metric_len * 8, [&](rt::RankCtx& ctx) {
                auto st = apps::miniamr::run_rank(
                    ctx, cfg,
                    [](rt::RankCtx& c, const double* in, double* out,
                       std::size_t n) {
                      coll::allreduce(c, in, out, n, Datatype::f64,
                                      ReduceOp::sum);
                    });
                if (ctx.rank() == 0) ympi = st;
              });
  record_once(team, session, "app-miniamr", "OpenMPI",
              cfg.refine_metric_len * 8, [&](rt::RankCtx& ctx) {
                auto st = apps::miniamr::run_rank(
                    ctx, cfg,
                    [](rt::RankCtx& c, const double* in, double* out,
                       std::size_t n) {
                      base::ring_allreduce(c, in, out, n, Datatype::f64,
                                           ReduceOp::sum,
                                           base::Transport::two_copy);
                    });
                if (ctx.rank() == 0) ompi = st;
              });

  std::printf("\nsingle-node measured (rank 0):\n");
  std::printf("%-10s %10s %10s %10s %8s\n", "provider", "total(s)",
              "comm(s)", "comp(s)", "blocks");
  std::printf("%-10s %10.3f %10.3f %10.3f %8d\n", "YHCCL",
              ympi.total_seconds, ympi.comm_seconds, ympi.compute_seconds,
              ympi.final_blocks);
  std::printf("%-10s %10.3f %10.3f %10.3f %8d\n", "OpenMPI",
              ompi.total_seconds, ompi.comm_seconds, ompi.compute_seconds,
              ompi.final_blocks);
  std::printf("app speedup: %.2fx (paper: 1.26-1.67x)\n",
              ompi.total_seconds / ympi.total_seconds);

  // ---- multi-node scaling via the calibrated simulator ----------------------
  const auto cal = apps::stream::run_sliced_copy(
      32u << 20, 1u << 20, apps::stream::CopyKind::temporal, 2);
  net::IntraNodeModel node;
  node.ranks_per_node = 64;
  node.sockets = 2;
  node.dab = 300e9;  // NodeA-class (see fig16b); VM value printed below
  std::printf("\n(this VM measured %.1f GB/s copy bandwidth; simulated "
              "nodes use NodeA-class %.0f GB/s)\n",
              cal.bandwidth_mbps / 1e3, node.dab / 1e9);
  const auto fabric = net::LogGP::infiniband_edr();

  // Per-step costs at paper scale: the 1-node Fig. 17 totals (22.5-37.7 s
  // over 20 steps) imply ~1.2 s of stencil work per step, and with
  // --num_refine 40000 the control all-reduce carries per-refinement block
  // arrays — hundreds of MB ("the message length is proportional to the
  // number of refines"), which is what makes the collective library matter
  // for the whole application.
  const double compute_per_step = 0.35;
  const std::size_t ar_bytes = 256u << 20;
  const int steps = 20;  // paper's --num_tsteps

  std::printf("\nweak-scaling estimate (64 ranks/node, %d steps, %s "
              "all-reduce):\n",
              steps, human_size(ar_bytes).c_str());
  std::printf("%-8s %12s %12s %10s\n", "nodes", "OpenMPI(s)", "YHCCL(s)",
              "speedup");
  for (int nodes : {1, 2, 4, 8, 16, 32, 64}) {
    const auto y = net::multinode_allreduce(net::MultiNodeAlgo::yhccl,
                                            ar_bytes, nodes, node, fabric);
    const auto o = net::multinode_allreduce(net::MultiNodeAlgo::openmpi,
                                            ar_bytes, nodes, node, fabric);
    // The paper's totals grow ~nodes^0.6 (finer refinement resolves the
    // object with more blocks per node as the run scales out); both the
    // stencil work and the refinement metric grow with the mesh.
    const double grow = std::pow(static_cast<double>(nodes), 0.61);
    const auto yg = net::multinode_allreduce(
        net::MultiNodeAlgo::yhccl,
        static_cast<std::size_t>(ar_bytes * std::min(grow, 4.0)), nodes,
        node, fabric);
    const auto og = net::multinode_allreduce(
        net::MultiNodeAlgo::openmpi,
        static_cast<std::size_t>(ar_bytes * std::min(grow, 4.0)), nodes,
        node, fabric);
    (void)y; (void)o;
    const double ty = steps * (compute_per_step * grow + yg.seconds);
    const double to = steps * (compute_per_step * grow + og.seconds);
    std::printf("%-8d %12.3f %12.3f %9.2fx\n", nodes, to, ty, to / ty);
  }
  session.write();
  return 0;
}
