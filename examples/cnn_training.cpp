// Example: data-parallel CNN training on YHCCL — the paper's second
// real-world workload (§5.6, Fig. 18).  Each rank trains a replica of
// ResNet-50 or VGG-16 on synthetic batches and aggregates gradients with
// bucketed all-reduces, Horovod style.
//
//   $ ./examples/cnn_training [nranks] [resnet50|vgg16] [iterations]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "yhccl/apps/dnn.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/runtime/thread_team.hpp"

using namespace yhccl;

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 4;
  const bool vgg = argc > 2 && std::strcmp(argv[2], "vgg16") == 0;
  const auto model = vgg ? apps::dnn::vgg16() : apps::dnn::resnet50();

  rt::TeamConfig tcfg;
  tcfg.nranks = p;
  tcfg.nsockets = p >= 4 ? 2 : 1;
  rt::ThreadTeam team(tcfg);

  apps::dnn::TrainConfig cfg;
  cfg.iterations = argc > 3 ? std::atoi(argv[3]) : 3;
  cfg.batch_per_rank = 4;
  cfg.compute_scale = 0.002;  // synthetic compute, comm-dominated like
                              // the paper's CPU cluster

  std::printf("training %s (%.1fM params, %.1f GFLOP/img) on %d ranks, "
              "%d iterations\n",
              model.name.c_str(), model.total_params() / 1e6,
              model.total_gflops(), p, cfg.iterations);

  double yhccl_ips = 0;
  for (int which = 0; which < 2; ++which) {
    apps::dnn::TrainStats st{};
    team.run([&](rt::RankCtx& ctx) {
      auto s = apps::dnn::train_rank(
          ctx, model, cfg,
          which == 0
              ? apps::dnn::GradAllreduceFn(
                    [](rt::RankCtx& c, const float* in, float* out,
                       std::size_t n) {
                      coll::allreduce(c, in, out, n, Datatype::f32,
                                      ReduceOp::sum);
                    })
              : apps::dnn::GradAllreduceFn(
                    [](rt::RankCtx& c, const float* in, float* out,
                       std::size_t n) {
                      base::ring_allreduce(c, in, out, n, Datatype::f32,
                                           ReduceOp::sum,
                                           base::Transport::two_copy);
                    }));
      if (ctx.rank() == 0) st = s;
    });
    if (which == 0) yhccl_ips = st.images_per_second;
    std::printf("%-14s %8.1f img/s  (compute %.3fs, allreduce %.3fs, "
                "grad checksum %.1f)\n",
                which == 0 ? "YHCCL:" : "two-copy ring:",
                st.images_per_second, st.compute_seconds,
                st.allreduce_seconds, st.grad_checksum);
    if (which == 1 && st.images_per_second > 0)
      std::printf("throughput gain: %.2fx (paper Fig. 18: 1.8-2.0x at "
                  "scale)\n",
                  yhccl_ips / st.images_per_second);
  }
  return 0;
}
