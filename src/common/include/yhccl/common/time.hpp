// Monotonic wall-clock helpers used by benches and the run harness.
#pragma once

#include <chrono>

namespace yhccl {

/// Seconds on a monotonic clock, as a double (ns resolution).
inline double wall_seconds() noexcept {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Simple stopwatch.
class Timer {
 public:
  Timer() : start_(wall_seconds()) {}
  double elapsed() const noexcept { return wall_seconds() - start_; }
  void reset() noexcept { start_ = wall_seconds(); }

 private:
  double start_;
};

}  // namespace yhccl
