// Live metrics viewer (docs/observability.md §6):
//
//   yhccl_top <pid>         attach to a running serve-mode team's shm
//                           mirror ("/yhccl-metrics-<pid>") and refresh
//                           in place until the team goes away;
//   yhccl_top <dir>         tail the newest yhccl_metrics_*_live.json (or
//                           final snapshot) under $YHCCL_METRICS_DIR;
//   yhccl_top <file.json>   render one exported snapshot.
//
//   --once            render a single frame and exit (CI smoke mode)
//   --interval-ms N   refresh period (default 1000)
//   --no-color        plain ASCII frames
//
// The renderer itself lives in src/metrics (render_top); this CLI owns
// only source selection, cursor control and the refresh loop.
#include <dirent.h>
#include <time.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>

#include "yhccl/bench/json.hpp"
#include "yhccl/metrics/export.hpp"
#include "yhccl/runtime/shm_region.hpp"

namespace ym = yhccl::metrics;

namespace {

struct Options {
  std::string target;
  int interval_ms = 1000;
  bool once = false;
  bool color = true;
};

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char ch : s)
    if (!std::isdigit(static_cast<unsigned char>(ch))) return false;
  return true;
}

bool is_directory(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// Newest yhccl_metrics_*.json under dir, preferring the _live pair a
/// serve-mode team keeps fresh over final numbered snapshots.
std::string newest_snapshot(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return {};
  std::string best;
  time_t best_mtime = 0;
  bool best_live = false;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("yhccl_metrics_", 0) != 0) continue;
    if (name.size() < 5 || name.compare(name.size() - 5, 5, ".json") != 0)
      continue;
    const std::string path = dir + "/" + name;
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0) continue;
    const bool live = name.find("_live.json") != std::string::npos;
    if (best.empty() || (live && !best_live) ||
        (live == best_live && st.st_mtime > best_mtime)) {
      best = path;
      best_mtime = st.st_mtime;
      best_live = live;
    }
  }
  ::closedir(d);
  return best;
}

bool load_snapshot_text(const std::string& text, ym::Snapshot* out,
                        std::string* err) {
  const yhccl::bench::Json j = yhccl::bench::Json::parse(text, err);
  if (!err->empty()) return false;
  if (!ym::validate_metrics_json(j, err)) return false;
  *out = ym::Snapshot::from_json(j);
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// One source poll: pid mirror, directory tail, or plain file.
bool poll_source(const Options& opt, const yhccl::rt::ShmRegion* mirror,
                 ym::Snapshot* snap, std::string* err) {
  std::string text;
  if (mirror != nullptr) {
    if (!ym::mirror_read(mirror->data(), mirror->size(), text)) {
      *err = "mirror empty or torn (team gone?)";
      return false;
    }
  } else if (is_directory(opt.target)) {
    const std::string path = newest_snapshot(opt.target);
    if (path.empty()) {
      *err = "no yhccl_metrics_*.json under " + opt.target;
      return false;
    }
    if (!read_file(path, &text)) {
      *err = "cannot read " + path;
      return false;
    }
  } else if (!read_file(opt.target, &text)) {
    *err = "cannot read " + opt.target;
    return false;
  }
  return load_snapshot_text(text, snap, err);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--once") {
      opt.once = true;
    } else if (a == "--no-color") {
      opt.color = false;
    } else if (a == "--interval-ms") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "yhccl_top: --interval-ms needs a value\n");
        return 2;
      }
      opt.interval_ms = std::atoi(argv[++i]);
      if (opt.interval_ms < 10) opt.interval_ms = 10;
    } else if (opt.target.empty()) {
      opt.target = a;
    } else {
      std::fprintf(stderr, "yhccl_top: unexpected argument '%s'\n",
                   a.c_str());
      return 2;
    }
  }
  if (opt.target.empty()) {
    std::fprintf(
        stderr,
        "usage: yhccl_top [--once] [--interval-ms N] [--no-color] "
        "<pid | metrics-dir | snapshot.json>\n");
    return 2;
  }

  yhccl::rt::ShmRegion mirror;
  bool use_mirror = false;
  if (all_digits(opt.target)) {
    const int pid = std::atoi(opt.target.c_str());
    try {
      mirror = yhccl::rt::ShmRegion::open_named(ym::mirror_shm_name(pid),
                                                ym::kMirrorBytes);
      use_mirror = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "yhccl_top: cannot attach to pid %d (%s) — is the team "
                   "running with YHCCL_METRICS=serve?\n",
                   pid, e.what());
      return 1;
    }
  }

  ym::Snapshot prev;
  bool have_prev = false;
  for (;;) {
    ym::Snapshot snap;
    std::string err;
    if (!poll_source(opt, use_mirror ? &mirror : nullptr, &snap, &err)) {
      std::fprintf(stderr, "yhccl_top: %s\n", err.c_str());
      return 1;
    }
    const std::string frame =
        ym::render_top(snap, have_prev ? &prev : nullptr, opt.color);
    if (opt.once) {
      std::fputs(frame.c_str(), stdout);
      return 0;
    }
    // Home + clear-to-end instead of full clears: refresh without flicker.
    std::printf("\x1b[H\x1b[J%s", frame.c_str());
    std::fflush(stdout);
    prev = snap;
    have_prev = true;
    timespec ts{opt.interval_ms / 1000,
                static_cast<long>(opt.interval_ms % 1000) * 1'000'000L};
    nanosleep(&ts, nullptr);
  }
}
