
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/process_team.cpp" "src/runtime/CMakeFiles/yhccl_runtime.dir/process_team.cpp.o" "gcc" "src/runtime/CMakeFiles/yhccl_runtime.dir/process_team.cpp.o.d"
  "/root/repo/src/runtime/remote_access.cpp" "src/runtime/CMakeFiles/yhccl_runtime.dir/remote_access.cpp.o" "gcc" "src/runtime/CMakeFiles/yhccl_runtime.dir/remote_access.cpp.o.d"
  "/root/repo/src/runtime/shm_region.cpp" "src/runtime/CMakeFiles/yhccl_runtime.dir/shm_region.cpp.o" "gcc" "src/runtime/CMakeFiles/yhccl_runtime.dir/shm_region.cpp.o.d"
  "/root/repo/src/runtime/sync.cpp" "src/runtime/CMakeFiles/yhccl_runtime.dir/sync.cpp.o" "gcc" "src/runtime/CMakeFiles/yhccl_runtime.dir/sync.cpp.o.d"
  "/root/repo/src/runtime/team.cpp" "src/runtime/CMakeFiles/yhccl_runtime.dir/team.cpp.o" "gcc" "src/runtime/CMakeFiles/yhccl_runtime.dir/team.cpp.o.d"
  "/root/repo/src/runtime/thread_team.cpp" "src/runtime/CMakeFiles/yhccl_runtime.dir/thread_team.cpp.o" "gcc" "src/runtime/CMakeFiles/yhccl_runtime.dir/thread_team.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/copy/CMakeFiles/yhccl_copy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
