# Empty compiler generated dependencies file for fig11_allreduce.
# This may be replaced when dependencies are built.
