// Adaptive non-temporal copy policy (paper §4.2, Algorithm 1).
//
// adaptive_copy() extends the copy primitive with the *collective's*
// characteristics instead of guessing from the copy size alone:
//   t — temporal hint: will the stored data be re-read soon?
//       (copy-ins feeding a reduction: yes; copy-outs to receive buffers: no)
//   W — work data size of the whole collective (send + recv + shm buffers)
//   C — cache capacity available to the collective (CacheConfig::available)
//
// NT stores are used only for non-temporal destinations of collectives whose
// working set does not fit in cache (W > C); everything else stays temporal
// so the cache can serve the next access.
#pragma once

#include <cstddef>

#include "yhccl/copy/cache_model.hpp"
#include "yhccl/copy/kernels.hpp"

namespace yhccl::copy {

/// How slice copies inside a collective pick their store type.  `adaptive`
/// is the paper's contribution; the others exist as experiment arms.
enum class CopyPolicy : int {
  adaptive,         ///< Algorithm 1: W/C + temporal-hint driven
  always_temporal,  ///< "t-copy" arm
  always_nt,        ///< "nt-copy" arm
  memmove_model,    ///< libc-style size threshold
};

constexpr const char* policy_name(CopyPolicy p) noexcept {
  switch (p) {
    case CopyPolicy::adaptive: return "adaptive";
    case CopyPolicy::always_temporal: return "t-copy";
    case CopyPolicy::always_nt: return "nt-copy";
    case CopyPolicy::memmove_model: return "memmove";
  }
  return "?";
}

/// Paper Algorithm 1.  `temporal_hint == true` means the stored data is
/// re-used soon (never stream); `work_set_bytes` is W; `cache_capacity` is C.
inline void adaptive_copy(void* dst, const void* src, std::size_t n,
                          bool temporal_hint, std::size_t cache_capacity,
                          std::size_t work_set_bytes) noexcept {
  if (temporal_hint || work_set_bytes <= cache_capacity)
    t_copy(dst, src, n);
  else
    nt_copy(dst, src, n);
}

/// Policy-dispatched slice copy used by every pipelined collective.
inline void dispatch_copy(CopyPolicy policy, void* dst, const void* src,
                          std::size_t n, bool temporal_hint,
                          std::size_t cache_capacity,
                          std::size_t work_set_bytes) noexcept {
  switch (policy) {
    case CopyPolicy::adaptive:
      adaptive_copy(dst, src, n, temporal_hint, cache_capacity,
                    work_set_bytes);
      break;
    case CopyPolicy::always_temporal:
      t_copy(dst, src, n);
      break;
    case CopyPolicy::always_nt:
      nt_copy(dst, src, n);
      break;
    case CopyPolicy::memmove_model:
      memmove_model_copy(dst, src, n);
      break;
  }
}

/// Should the *store side of a reduction result* stream?  Same rule as
/// adaptive_copy, exposed for the fused reduce kernels.
inline bool use_nt_store(CopyPolicy policy, bool temporal_hint,
                         std::size_t cache_capacity,
                         std::size_t work_set_bytes,
                         std::size_t n) noexcept {
  switch (policy) {
    case CopyPolicy::adaptive:
      return !temporal_hint && work_set_bytes > cache_capacity;
    case CopyPolicy::always_temporal:
      return false;
    case CopyPolicy::always_nt:
      return true;
    case CopyPolicy::memmove_model:
      return n >= kMemmoveNtThreshold;
  }
  return false;
}

}  // namespace yhccl::copy
