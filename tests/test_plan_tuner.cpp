// Auto-tuner plan cache (docs/tuning.md): prior fidelity to the §5.1/§5.4
// static rules, cache hit/miss accounting, cross-rank agreement under
// online exploration on both backends, persistence round-trips, warming
// from bench reports, and the zero-allocation warm path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "test_util.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/plan.hpp"
#include "yhccl/coll/profiler.hpp"
#include "yhccl/model/dav_model.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "yhccl/runtime/thread_team.hpp"

using namespace yhccl;
namespace plan = yhccl::coll::plan;
using coll::Algorithm;
using coll::CollKind;
using coll::CollOpts;

// ---- global allocation counter for the zero-alloc warm-path test ------------

static std::atomic<std::uint64_t> g_allocs{0};

// GCC flags free() on a replaced operator new's result; ours is malloc-backed.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old, had_ = true;
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_)
      ::setenv(name_, old_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  const char* name_;
  std::string old_;
  bool had_ = false;
};

rt::TeamConfig tuned_cfg(int p, int m, rt::TuneMode mode) {
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  cfg.scratch_bytes = 24u << 20;
  cfg.shared_heap_bytes = 4u << 20;
  cfg.tune = mode;
  return cfg;
}

/// Run `calls` identical allreduces, logging each rank's served plan word
/// into `words[call * nranks + rank]` (shared memory, both backends).
void run_logged_allreduce(rt::Team& team, int calls, std::size_t count,
                          std::uint64_t* words, const CollOpts& opts = {}) {
  const int p = team.nranks();
  team.run([&](rt::RankCtx& ctx) {
    std::vector<double> in(count), out(count);
    test::fill_buffer(in.data(), count, Datatype::f64, ctx.rank(),
                      ReduceOp::sum);
    for (int c = 0; c < calls; ++c) {
      coll::allreduce(ctx, in.data(), out.data(), count, Datatype::f64,
                      ReduceOp::sum, opts);
      words[static_cast<std::size_t>(c) * p + ctx.rank()] =
          plan::last_plan_word();
    }
  });
}

}  // namespace

// ---- the prior reproduces the static rules ----------------------------------

TEST(PlanPrior, MatchesStaticSwitchingRuleForEverySizeAndThreshold) {
  const rt::Topology topo(8, 2);
  const copy::CacheConfig cache = copy::CacheConfig::node_a();
  for (const std::size_t threshold :
       {std::size_t{256} << 10, std::size_t{300000}, std::size_t{1} << 20}) {
    CollOpts opts;
    opts.small_msg_threshold = threshold;
    for (const auto kind :
         {CollKind::allreduce, CollKind::reduce, CollKind::reduce_scatter}) {
      for (std::size_t base : {std::size_t{1}, std::size_t{64},
                               std::size_t{4} << 10, std::size_t{256} << 10,
                               threshold, std::size_t{1} << 20,
                               std::size_t{16} << 20}) {
        for (std::size_t bytes :
             {base, base + 1, base > 1 ? base - 1 : base}) {
          const auto key = plan::make_key(kind, bytes, Datatype::f64,
                                          ReduceOp::sum, topo, opts);
          const auto p = plan::prior_plan(key, opts, topo, cache);
          EXPECT_EQ(p.algorithm,
                    plan::choose_reduction_algorithm(topo, bytes, opts))
              << coll::coll_kind_name(kind) << " bytes=" << bytes
              << " threshold=" << threshold;
        }
      }
    }
  }
  // Single-socket and ragged topologies fall back to flat MA above the
  // threshold.
  const rt::Topology flat(6, 1), ragged(7, 2);
  CollOpts opts;
  EXPECT_EQ(plan::choose_reduction_algorithm(flat, 1u << 20, opts),
            Algorithm::ma_flat);
  EXPECT_EQ(plan::choose_reduction_algorithm(ragged, 1u << 20, opts),
            Algorithm::ma_flat);
}

TEST(PlanPrior, NtAdvisoryMatchesPaperSwitchPoint) {
  // §5.4: the allreduce work set crosses the cache capacity exactly at
  // model::nt_switch_point_allreduce.
  for (const auto& cache :
       {copy::CacheConfig::node_a(), copy::CacheConfig::node_b(),
        copy::CacheConfig::cluster_c()}) {
    for (const int p : {4, 16, 64}) {
      for (const int m : {1, 2}) {
        const std::size_t imax = CollOpts{}.slice_max;
        const std::size_t sstar = model::nt_switch_point_allreduce(
            cache.available(p), p, m, imax);
        if (sstar == 0) continue;  // everything streams on this machine
        EXPECT_FALSE(
            plan::prior_nt(CollKind::allreduce, sstar, p, m, cache, imax))
            << "p=" << p << " m=" << m;
        EXPECT_TRUE(plan::prior_nt(CollKind::allreduce, sstar + 1, p, m,
                                   cache, imax))
            << "p=" << p << " m=" << m;
      }
    }
  }
}

TEST(PlanKeyPacking, FieldsAndPlanWordsRoundTrip) {
  plan::PlanKey key;
  key.kind = CollKind::reduce_scatter;
  key.dtype = Datatype::i32;
  key.op = ReduceOp::band;
  key.bucket = 0x40 | 21;
  key.ranks = 255;
  key.sockets = 15;
  const auto k2 = plan::PlanKey::from_fields(key.packed_fields());
  EXPECT_EQ(k2.kind, key.kind);
  EXPECT_EQ(k2.dtype, key.dtype);
  EXPECT_EQ(k2.op, key.op);
  EXPECT_EQ(k2.bucket, key.bucket);
  EXPECT_EQ(k2.ranks, key.ranks);
  EXPECT_EQ(k2.sockets, key.sockets);

  plan::Plan p;
  p.algorithm = Algorithm::ma_socket_aware;
  p.nt = plan::NtChoice::stream;
  p.slice_log2 = 20;
  p.chunk_log2 = 13;
  p.nt_prior = true;
  p.source = plan::PlanSource::online;
  p.arm = 3;
  const auto w = p.pack();
  EXPECT_NE(w, 0u);
  const auto p2 = plan::Plan::unpack(w);
  EXPECT_EQ(p2.algorithm, p.algorithm);
  EXPECT_EQ(p2.nt, p.nt);
  EXPECT_EQ(p2.slice_log2, p.slice_log2);
  EXPECT_EQ(p2.chunk_log2, p.chunk_log2);
  EXPECT_EQ(p2.nt_prior, p.nt_prior);
  EXPECT_EQ(p2.source, p.source);
  EXPECT_EQ(p2.arm, p.arm);
}

// ---- cache behavior ----------------------------------------------------------

TEST(PlanCache, HitMissAccountingAndCorrectResults) {
  EnvGuard eps("YHCCL_TUNE_EPS", "0");  // no exploration: pure cache test
  rt::ThreadTeam team(tuned_cfg(4, 2, rt::TuneMode::online));
  const std::size_t count = 4096;
  auto* words = reinterpret_cast<std::uint64_t*>(
      team.shared_alloc(sizeof(std::uint64_t) * 4 * 3));
  run_logged_allreduce(team, 3, count, words);

  const auto st = plan::tune_stats(team);
  EXPECT_EQ(st.lookups, 3u);
  EXPECT_EQ(st.misses, 1u);  // first call inserts the slot
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.inserts, 1u);
  EXPECT_EQ(st.explores, 0u);

  // A different size class gets its own slot.
  run_logged_allreduce(team, 1, count * 64, words);
  EXPECT_EQ(plan::tune_stats(team).entries, 2u);

  // Tuner off: no registry, stats all zero.
  rt::ThreadTeam off(tuned_cfg(4, 2, rt::TuneMode::off));
  EXPECT_EQ(off.plan_registry(), nullptr);
  EXPECT_EQ(plan::tune_stats(off).lookups, 0u);
}

TEST(PlanCache, QueryServesPriorUntilACommitExists) {
  rt::ThreadTeam team(tuned_cfg(8, 2, rt::TuneMode::prior));
  const CollOpts opts;
  const auto small = plan::query(team, CollKind::allreduce, 4u << 10,
                                 Datatype::f64, ReduceOp::sum, opts);
  EXPECT_EQ(small.algorithm, Algorithm::dpml_two_level);
  EXPECT_EQ(small.source, plan::PlanSource::prior);
  const auto large = plan::query(team, CollKind::allreduce, 4u << 20,
                                 Datatype::f64, ReduceOp::sum, opts);
  EXPECT_EQ(large.algorithm, Algorithm::ma_socket_aware);
  const auto bcast = plan::query(team, CollKind::broadcast, 1u << 20,
                                 Datatype::f64, ReduceOp::sum, opts);
  EXPECT_EQ(bcast.algorithm, Algorithm::pipelined);
}

// ---- cross-rank agreement ----------------------------------------------------

template <typename TeamT>
static void agreement_case(rt::TuneMode mode, const char* eps) {
  EnvGuard g("YHCCL_TUNE_EPS", eps);
  const int p = 8, calls = 48;
  TeamT team(tuned_cfg(p, 2, mode));
  auto* words = reinterpret_cast<std::uint64_t*>(
      team.shared_alloc(sizeof(std::uint64_t) * p * calls));
  run_logged_allreduce(team, calls, 16384, words);
  for (int c = 0; c < calls; ++c)
    for (int r = 1; r < p; ++r)
      ASSERT_EQ(words[c * p + r], words[c * p])
          << "rank " << r << " diverged on call " << c;
}

TEST(PlanAgreement, AllRanksServeTheSamePlanWhileExploring_Threads) {
  agreement_case<rt::ThreadTeam>(rt::TuneMode::online, "0.5");
}

TEST(PlanAgreement, AllRanksServeTheSamePlanWhileExploring_Processes) {
  agreement_case<rt::ProcessTeam>(rt::TuneMode::online, "0.5");
}

TEST(PlanAgreement, ThreadAndForkBackendsExploreIdentically) {
  // With eps = 1 every call serves the explored arm, which is a pure
  // function of (key hash, tune_seq) — so the served sequence must be
  // bit-identical across backends.
  EnvGuard g("YHCCL_TUNE_EPS", "1");
  const int p = 4, calls = 24;
  std::vector<std::uint64_t> seq[2];
  int which = 0;
  for (which = 0; which < 2; ++which) {
    std::unique_ptr<rt::Team> team;
    if (which == 0)
      team = std::make_unique<rt::ThreadTeam>(
          tuned_cfg(p, 2, rt::TuneMode::online));
    else
      team = std::make_unique<rt::ProcessTeam>(
          tuned_cfg(p, 2, rt::TuneMode::online));
    auto* words = reinterpret_cast<std::uint64_t*>(
        team->shared_alloc(sizeof(std::uint64_t) * p * calls));
    run_logged_allreduce(*team, calls, 16384, words);
    for (int c = 0; c < calls; ++c) seq[which].push_back(words[c * p]);
  }
  EXPECT_EQ(seq[0], seq[1]);
  // ... and exploration actually happened (eps = 1 explores every call
  // once the slot exists, i.e. from call 2 on).
  bool explored = false;
  for (const auto w : seq[0])
    if (plan::Plan::unpack(w).arm != 0) explored = true;
  EXPECT_TRUE(explored);
}

TEST(PlanOnline, ExploredArmsStillComputeCorrectReductions) {
  EnvGuard g("YHCCL_TUNE_EPS", "1");
  rt::ThreadTeam team(tuned_cfg(6, 2, rt::TuneMode::online));
  const std::size_t count = 5000;
  team.run([&](rt::RankCtx& ctx) {
    std::vector<double> in(count), out(count);
    test::fill_buffer(in.data(), count, Datatype::f64, ctx.rank(),
                      ReduceOp::sum);
    for (int c = 0; c < 30; ++c) {
      coll::allreduce(ctx, in.data(), out.data(), count, Datatype::f64,
                      ReduceOp::sum);
      ASSERT_TRUE(test::check_reduced(out.data(), count, Datatype::f64,
                                      ctx.nranks(), ReduceOp::sum));
    }
  });
  EXPECT_GT(plan::tune_stats(team).explores, 0u);
}

// ---- explicit-algorithm handling (satellite 2) -------------------------------

TEST(PlanBypass, ExplicitAlgorithmsBypassTheTunerAndAreHonored) {
  rt::ThreadTeam team(tuned_cfg(4, 2, rt::TuneMode::online));
  team.run([&](rt::RankCtx& ctx) {
    std::vector<double> buf(1024, ctx.rank() == 0 ? 7.0 : 0.0);
    CollOpts opts;
    opts.algorithm = Algorithm::pipelined;  // explicit: allowed for bcast
    coll::broadcast(ctx, buf.data(), buf.size(), Datatype::f64, 0, opts);
    for (double v : buf) ASSERT_EQ(v, 7.0);

    std::vector<double> in(1024), out(1024);
    test::fill_buffer(in.data(), in.size(), Datatype::f64, ctx.rank(),
                      ReduceOp::sum);
    opts.algorithm = Algorithm::ma_flat;  // explicit arm for a reduction
    coll::allreduce(ctx, in.data(), out.data(), in.size(), Datatype::f64,
                    ReduceOp::sum, opts);
    ASSERT_TRUE(test::check_reduced(out.data(), out.size(), Datatype::f64,
                                    ctx.nranks(), ReduceOp::sum));
  });
  // Explicit calls never touch the cache.
  EXPECT_EQ(plan::tune_stats(team).lookups, 0u);

  // A reduction arm passed to broadcast (one CollOpts driving a mixed
  // trace replay) bypasses the tuner and runs the pipeline as before.
  team.run([&](rt::RankCtx& ctx) {
    std::vector<double> buf(64, ctx.rank() == 0 ? 3.0 : 0.0);
    CollOpts opts;
    opts.algorithm = Algorithm::ma_flat;
    coll::broadcast(ctx, buf.data(), buf.size(), Datatype::f64, 0, opts);
    for (double v : buf) ASSERT_EQ(v, 3.0);
  });
  EXPECT_EQ(plan::tune_stats(team).lookups, 0u);

  // The pipeline arm is rejected by the reductions.
  rt::ThreadTeam single(tuned_cfg(2, 1, rt::TuneMode::off));
  EXPECT_THROW(single.run([&](rt::RankCtx& ctx) {
    double in = 1, out = 0;
    CollOpts opts;
    opts.algorithm = Algorithm::pipelined;
    coll::allreduce(ctx, &in, &out, 1, Datatype::f64, ReduceOp::sum, opts);
  }),
               Error);
}

// ---- persistence -------------------------------------------------------------

namespace {

/// A minimal bench report with two arms per size for allreduce: flat MA
/// "wins" on the large size, dpml on the small one.
bench::Json fake_bench_report(int ranks, int sockets,
                              const copy::CacheConfig& cache) {
  bench::Json doc = bench::Json::object();
  doc.set("schema", "yhccl-bench/1");
  bench::Json machine = bench::Json::object();
  machine.set("llc_bytes", cache.llc_bytes);
  machine.set("l2_per_core", cache.l2_per_core);
  machine.set("llc_inclusive", cache.llc_inclusive);
  doc.set("machine", machine);
  bench::Json series = bench::Json::array();
  const auto cell = [&](const char* alg, std::size_t bytes, double median) {
    bench::Json s = bench::Json::object();
    s.set("bench", "fake");
    s.set("collective", "allreduce");
    s.set("algorithm", alg);
    s.set("ranks", ranks);
    s.set("sockets", sockets);
    s.set("bytes", bytes);
    bench::Json t = bench::Json::object();
    t.set("median_s", median);
    s.set("time", t);
    series.push_back(s);
  };
  cell("flat-MA", 4u << 20, 1e-3);    // beats the socket-aware prior
  cell("socket-MA", 4u << 20, 2e-3);
  cell("dpml-2l", 4u << 10, 1e-5);
  cell("flat-MA", 4u << 10, 9e-5);
  cell("mpi-baseline", 4u << 20, 1e-9);  // unknown arm: must be skipped
  doc.set("series", series);
  return doc;
}

}  // namespace

TEST(PlanPersistence, WarmFromBenchThenLoadOverridesThePrior) {
  const int p = 8, m = 2;
  rt::ThreadTeam team(tuned_cfg(p, m, rt::TuneMode::prior));
  const auto plans =
      plan::warm_from_bench(fake_bench_report(p, m, team.config().cache));
  plan::validate_plan_json(plans);
  ASSERT_EQ(plans["plans"].size(), 2u);

  ASSERT_EQ(plan::load_plans(team, plans), 2);
  // 4 MB allreduce: prior says socket-MA, the bench data says flat MA.
  const auto tuned = plan::query(team, CollKind::allreduce, 4u << 20,
                                 Datatype::f64, ReduceOp::sum);
  EXPECT_EQ(tuned.algorithm, Algorithm::ma_flat);
  EXPECT_EQ(tuned.source, plan::PlanSource::bench);
  // 4 KB allreduce: bench agrees with the prior (dpml).
  EXPECT_EQ(plan::query(team, CollKind::allreduce, 4u << 10, Datatype::f64,
                        ReduceOp::sum)
                .algorithm,
            Algorithm::dpml_two_level);
  // Unrelated keys still serve the prior.
  EXPECT_EQ(plan::query(team, CollKind::reduce, 4u << 20, Datatype::f64,
                        ReduceOp::sum)
                .source,
            plan::PlanSource::prior);

  // The tuned decision is what actually runs.
  auto* words =
      reinterpret_cast<std::uint64_t*>(team.shared_alloc(sizeof(std::uint64_t) * p));
  team.run([&](rt::RankCtx& ctx) {
    const std::size_t count = (4u << 20) / sizeof(double);
    std::vector<double> a(count), b(count);
    test::fill_buffer(a.data(), count, Datatype::f64, ctx.rank(),
                      ReduceOp::sum);
    coll::allreduce(ctx, a.data(), b.data(), count, Datatype::f64,
                    ReduceOp::sum);
    words[ctx.rank()] = plan::last_plan_word();
  });
  EXPECT_EQ(plan::Plan::unpack(words[0]).algorithm, Algorithm::ma_flat);
}

TEST(PlanPersistence, SaveLoadSaveIsAFixpointWithIdenticalDecisions) {
  const int p = 8, m = 2;
  rt::ThreadTeam a(tuned_cfg(p, m, rt::TuneMode::prior));
  const auto warmed =
      plan::warm_from_bench(fake_bench_report(p, m, a.config().cache));
  ASSERT_GT(plan::load_plans(a, warmed), 0);
  const auto saved = plan::save_plans(a);
  plan::validate_plan_json(saved);

  rt::ThreadTeam b(tuned_cfg(p, m, rt::TuneMode::prior));
  ASSERT_EQ(plan::load_plans(b, saved),
            static_cast<int>(saved["plans"].size()));
  const auto saved2 = plan::save_plans(b);
  EXPECT_EQ(saved.dump(2), saved2.dump(2));

  for (const std::size_t bytes : {4u << 10, 64u << 10, 1u << 20, 4u << 20}) {
    const auto pa = plan::query(a, CollKind::allreduce, bytes, Datatype::f64,
                                ReduceOp::sum);
    const auto pb = plan::query(b, CollKind::allreduce, bytes, Datatype::f64,
                                ReduceOp::sum);
    EXPECT_EQ(pa.pack(), pb.pack()) << "bytes=" << bytes;
  }

  // Plans from a different shape or machine never load.
  rt::ThreadTeam other(tuned_cfg(4, 1, rt::TuneMode::prior));
  EXPECT_EQ(plan::load_plans(other, saved), 0);
}

TEST(PlanPersistence, PlanFileEnvWarmsTheRegistryOnFirstUse) {
  const int p = 8, m = 2;
  const std::string path = ::testing::TempDir() + "yhccl_plans_test.json";
  {
    rt::ThreadTeam staging(tuned_cfg(p, m, rt::TuneMode::prior));
    const auto warmed = plan::warm_from_bench(
        fake_bench_report(p, m, staging.config().cache));
    ASSERT_GT(plan::load_plans(staging, warmed), 0);
    plan::save_plans_file(staging, path);
  }
  EnvGuard g("YHCCL_PLAN_FILE", path.c_str());
  rt::ThreadTeam team(tuned_cfg(p, m, rt::TuneMode::prior));
  auto* words =
      reinterpret_cast<std::uint64_t*>(team.shared_alloc(sizeof(std::uint64_t) * p));
  run_logged_allreduce(team, 1, (4u << 20) / sizeof(double), words);
  EXPECT_EQ(plan::Plan::unpack(words[0]).algorithm, Algorithm::ma_flat);
  EXPECT_EQ(plan::Plan::unpack(words[0]).source, plan::PlanSource::bench);
  EXPECT_GT(plan::tune_stats(team).loaded, 0u);

  // A missing file warns but serves the prior; a malformed one throws.
  EnvGuard g2("YHCCL_PLAN_FILE", "/nonexistent/plans.json");
  rt::ThreadTeam cold(tuned_cfg(p, m, rt::TuneMode::prior));
  plan::warm_now(cold);
  EXPECT_EQ(plan::tune_stats(cold).loaded, 0u);
  const auto bad = bench::Json::parse("{\"schema\": \"nope\"}");
  EXPECT_THROW(plan::validate_plan_json(bad), Error);
}

// ---- profiler feedback -------------------------------------------------------

TEST(PlanFeedback, ProfilerWaitFractionBiasesTheRegistry) {
  rt::ThreadTeam team(tuned_cfg(4, 2, rt::TuneMode::online));
  coll::CollProfiler prof;
  prof.add(CollKind::allreduce, 1024, 1.0, copy::Dav{}, {}, {},
           /*wait_seconds=*/0.9);
  plan::note_profile(team, prof);
  EXPECT_NEAR(team.plan_registry()->class_wait(
                  static_cast<int>(CollKind::allreduce)),
              0.9, 1e-12);
  EXPECT_EQ(team.plan_registry()->class_wait(
                static_cast<int>(CollKind::broadcast)),
            0.0);
}

// ---- the warm path allocates nothing -----------------------------------------

TEST(PlanHotPath, WarmRepeatCallDoesNotAllocate) {
  EnvGuard g("YHCCL_TUNE_EPS", "0");
  rt::ThreadTeam team(tuned_cfg(4, 2, rt::TuneMode::online));
  const std::size_t count = 16384;
  auto* in = reinterpret_cast<double*>(
      team.shared_alloc(sizeof(double) * count * 4));
  auto* out = reinterpret_cast<double*>(
      team.shared_alloc(sizeof(double) * count * 4));
  auto* delta = reinterpret_cast<std::uint64_t*>(
      team.shared_alloc(sizeof(std::uint64_t)));
  team.run([&](rt::RankCtx& ctx) {
    double* my_in = in + count * ctx.rank();
    double* my_out = out + count * ctx.rank();
    test::fill_buffer(my_in, count, Datatype::f64, ctx.rank(),
                      ReduceOp::sum);
    // Warm the slot (plus the registry's file handshake) first.
    for (int c = 0; c < 2; ++c)
      coll::allreduce(ctx, my_in, my_out, count, Datatype::f64,
                      ReduceOp::sum);
    ctx.barrier();
    const std::uint64_t before = g_allocs.load();
    for (int c = 0; c < 8; ++c)
      coll::allreduce(ctx, my_in, my_out, count, Datatype::f64,
                      ReduceOp::sum);
    ctx.barrier();
    if (ctx.rank() == 0) *delta = g_allocs.load() - before;
  });
  EXPECT_EQ(*delta, 0u) << "warm-path collective calls allocated";
}

// ---- recovery ----------------------------------------------------------------

TEST(PlanRecovery, RegistrySurvivesRecoverAndReKeysTheTopology) {
  EnvGuard g("YHCCL_TUNE_EPS", "0");
  rt::ThreadTeam team(tuned_cfg(4, 2, rt::TuneMode::online));
  auto* words = reinterpret_cast<std::uint64_t*>(
      team.shared_alloc(sizeof(std::uint64_t) * 4));
  run_logged_allreduce(team, 2, 4096, words);
  const auto before = plan::tune_stats(team);
  EXPECT_EQ(before.entries, 1u);
  team.recover();
  // Same membership after a thread-team recovery: the signature and the
  // cached entry both survive, so the next call is a hit.
  run_logged_allreduce(team, 1, 4096, words);
  const auto after = plan::tune_stats(team);
  EXPECT_EQ(after.entries, 1u);
  EXPECT_EQ(after.hits, before.hits + 1);
}
