#include "yhccl/apps/miniamr.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "yhccl/common/error.hpp"
#include "yhccl/common/time.hpp"

namespace yhccl::apps::miniamr {

namespace {

/// One mesh block.  Geometry is replicated on every rank (the global
/// refinement plan must be identical everywhere); field storage exists
/// only on the owning rank.
struct Block {
  int level;
  double x, y, z;   ///< center, unit domain
  double half;      ///< half edge length
  std::vector<double> field;  ///< (bd+2)^3 with halo, owners only
};

/// Stable owner assignment from the block's geometry so refinement never
/// migrates existing blocks between ranks.
int owner_of(const Block& b, int p) {
  const auto h = static_cast<std::uint64_t>(b.level) * 0x9e3779b97f4a7c15ull ^
                 static_cast<std::uint64_t>(b.x * (1 << 20)) * 0x517cc1b727220a95ull ^
                 static_cast<std::uint64_t>(b.y * (1 << 20)) * 0x2545f4914f6cdd1dull ^
                 static_cast<std::uint64_t>(b.z * (1 << 20)) * 0x27d4eb2f165667c5ull;
  return static_cast<int>(h % static_cast<std::uint64_t>(p));
}

/// The moving refinement object: a sphere sweeping across the unit cube.
struct Sphere {
  double cx, cy, cz, r;
  static Sphere at_step(int t, int tsteps) {
    const double f = tsteps <= 1 ? 0.0 : static_cast<double>(t) / (tsteps - 1);
    return {0.2 + 0.6 * f, 0.35 + 0.3 * f, 0.5, 0.18};
  }
  bool intersects(const Block& b) const {
    const double dx = std::max(std::abs(b.x - cx) - b.half, 0.0);
    const double dy = std::max(std::abs(b.y - cy) - b.half, 0.0);
    const double dz = std::max(std::abs(b.z - cz) - b.half, 0.0);
    return dx * dx + dy * dy + dz * dz <= r * r;
  }
};

void init_field(Block& b, int bd) {
  const int n = bd + 2;
  b.field.assign(static_cast<std::size_t>(n) * n * n,
                 1.0 + 0.25 * b.level);
}

/// One 7-point stencil sweep over the block interior; returns the field
/// sum (for the checksum) and leaves the smoothed values in place.
double stencil_sweep(Block& b, int bd, std::vector<double>& tmp) {
  const int n = bd + 2;
  auto idx = [n](int i, int j, int k) {
    return (static_cast<std::size_t>(i) * n + j) * n + k;
  };
  tmp.resize(b.field.size());
  double sum = 0;
  for (int i = 1; i <= bd; ++i)
    for (int j = 1; j <= bd; ++j)
      for (int k = 1; k <= bd; ++k) {
        const double v = (b.field[idx(i, j, k)] * 2.0 +
                          b.field[idx(i - 1, j, k)] +
                          b.field[idx(i + 1, j, k)] +
                          b.field[idx(i, j - 1, k)] +
                          b.field[idx(i, j + 1, k)] +
                          b.field[idx(i, j, k - 1)] +
                          b.field[idx(i, j, k + 1)]) /
                         8.0;
        tmp[idx(i, j, k)] = v;
        sum += v;
      }
  for (int i = 1; i <= bd; ++i)
    for (int j = 1; j <= bd; ++j)
      for (int k = 1; k <= bd; ++k)
        b.field[idx(i, j, k)] = tmp[idx(i, j, k)];
  return sum;
}

/// Parent cell key for sibling grouping during coarsening.
std::tuple<int, long, long, long> parent_key(const Block& b) {
  const double ps = 4 * b.half;  // parent edge
  return {b.level - 1, std::lround(std::floor(b.x / ps)),
          std::lround(std::floor(b.y / ps)),
          std::lround(std::floor(b.z / ps))};
}

}  // namespace

Stats run_rank(rt::RankCtx& ctx, const Config& cfg, const AllreduceFn& ar) {
  YHCCL_REQUIRE(cfg.block_dim >= 2 && cfg.domain_blocks >= 1,
                "bad miniamr config");
  const int p = ctx.nranks();
  const int bd = cfg.block_dim;
  Stats st;
  Timer total;

  // Root grid.
  std::vector<Block> blocks;
  const double h = 0.5 / cfg.domain_blocks;
  for (int i = 0; i < cfg.domain_blocks; ++i)
    for (int j = 0; j < cfg.domain_blocks; ++j)
      for (int k = 0; k < cfg.domain_blocks; ++k) {
        Block b{0, (2 * i + 1) * h, (2 * j + 1) * h, (2 * k + 1) * h, h, {}};
        if (owner_of(b, p) == ctx.rank()) init_field(b, bd);
        blocks.push_back(std::move(b));
      }

  std::vector<double> tmp;
  std::vector<double> metric(cfg.refine_metric_len),
      metric_out(cfg.refine_metric_len);

  for (int t = 0; t < cfg.tsteps; ++t) {
    // --- compute: stencil on owned blocks --------------------------------
    Timer tc;
    double local_sum = 0;
    for (auto& b : blocks)
      if (!b.field.empty()) {
        local_sum += stencil_sweep(b, bd, tmp);
        ++st.total_blocks_processed;
      }
    st.compute_seconds += tc.elapsed();

    // --- small control all-reduce every step ------------------------------
    Timer ts;
    double small[3] = {local_sum, static_cast<double>(blocks.size()), 1.0};
    double small_out[3];
    ar(ctx, small, small_out, 3);
    st.checksum = small_out[0];
    st.comm_seconds += ts.elapsed();

    // --- refinement episode -----------------------------------------------
    if (cfg.refine_freq > 0 && (t + 1) % cfg.refine_freq == 0) {
      const Sphere obj = Sphere::at_step(t, cfg.tsteps);
      // Large control all-reduce: the global refinement metric (length set
      // by refine_metric_len, the paper's --num_refine analogue).
      std::fill(metric.begin(), metric.end(), 0.0);
      for (std::size_t i = 0; i < blocks.size(); ++i)
        if (!blocks[i].field.empty())
          metric[i % metric.size()] += obj.intersects(blocks[i]) ? 1.0 : 0.0;
      Timer tb;
      ar(ctx, metric.data(), metric_out.data(), metric.size());
      st.comm_seconds += tb.elapsed();

      // Refine: intersecting blocks below the level cap split into 8.
      std::vector<Block> next;
      next.reserve(blocks.size());
      for (auto& b : blocks) {
        if (obj.intersects(b) && b.level < cfg.max_level) {
          const double q = b.half / 2;
          for (int dx : {-1, 1})
            for (int dy : {-1, 1})
              for (int dz : {-1, 1}) {
                Block c{b.level + 1, b.x + dx * q, b.y + dy * q,
                        b.z + dz * q, q, {}};
                if (owner_of(c, p) == ctx.rank()) init_field(c, bd);
                next.push_back(std::move(c));
              }
        } else {
          next.push_back(std::move(b));
        }
      }
      // Coarsen: full sibling groups the object has left merge back.
      std::map<std::tuple<int, long, long, long>, int> sib_count;
      for (const auto& b : next)
        if (b.level > 0 && !obj.intersects(b)) ++sib_count[parent_key(b)];
      std::vector<Block> merged;
      std::map<std::tuple<int, long, long, long>, bool> emitted;
      merged.reserve(next.size());
      for (auto& b : next) {
        const bool coarsen = b.level > 0 && !obj.intersects(b) &&
                             sib_count[parent_key(b)] == 8;
        if (!coarsen) {
          merged.push_back(std::move(b));
          continue;
        }
        auto key = parent_key(b);
        if (!emitted[key]) {
          emitted[key] = true;
          const double ps = 2 * b.half;
          Block parent{b.level - 1,
                       (std::floor(b.x / (2 * ps)) * 2 + 1) * ps,
                       (std::floor(b.y / (2 * ps)) * 2 + 1) * ps,
                       (std::floor(b.z / (2 * ps)) * 2 + 1) * ps,
                       ps,
                       {}};
          if (owner_of(parent, p) == ctx.rank()) init_field(parent, bd);
          merged.push_back(std::move(parent));
        }
      }
      blocks = std::move(merged);
    }
  }

  st.final_blocks = static_cast<int>(blocks.size());
  st.total_seconds = total.elapsed();
  return st;
}

}  // namespace yhccl::apps::miniamr
