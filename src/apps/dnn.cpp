#include "yhccl/apps/dnn.hpp"

#include <cmath>
#include <numeric>

#include "yhccl/common/error.hpp"
#include "yhccl/common/time.hpp"

namespace yhccl::apps::dnn {

std::size_t ModelSpec::total_params() const {
  std::size_t t = 0;
  for (const auto& l : layers) t += l.params;
  return t;
}

double ModelSpec::total_gflops() const {
  double t = 0;
  for (const auto& l : layers) t += l.gflops;
  return t;
}

ModelSpec resnet50() {
  // Stage-level aggregation of ResNet-50: 25.6 M parameters, ~3.9 GFLOP
  // forward per image (x3 for fwd+bwd).
  return ModelSpec{
      "ResNet-50",
      {
          {"conv1", 9'472, 0.70},
          {"layer1", 215'808, 2.00},
          {"layer2", 1'219'584, 2.60},
          {"layer3", 7'098'368, 3.50},
          {"layer4", 14'964'736, 2.40},
          {"fc", 2'049'000, 0.50},
      }};
}

ModelSpec vgg16() {
  // VGG-16: 138.4 M parameters (the huge fc layers dominate), ~15.5 GFLOP
  // forward per image.
  return ModelSpec{
      "VGG-16",
      {
          {"conv1-2", 38'720, 5.80},
          {"conv3-4", 1'622'720, 13.80},
          {"conv5-7", 5'899'776, 13.80},
          {"conv8-13", 7'635'264, 12.00},
          {"fc6", 102'764'544, 0.60},
          {"fc7", 16'781'312, 0.20},
          {"fc8", 4'097'000, 0.05},
      }};
}

namespace {

/// Calibrated busy-burn standing in for fwd/bwd compute: touches a small
/// buffer with FMA-ish work until the modelled time elapses.
void burn_compute(double seconds) {
  if (seconds <= 0) return;
  volatile double sink = 1.000001;
  const double end = wall_seconds() + seconds;
  while (wall_seconds() < end) {
    double v = sink;
    for (int i = 0; i < 2048; ++i) v = v * 1.0000001 + 1e-9;
    sink = v;
  }
}

}  // namespace

TrainStats train_rank(rt::RankCtx& ctx, const ModelSpec& model,
                      const TrainConfig& cfg, const GradAllreduceFn& ar) {
  YHCCL_REQUIRE(!model.layers.empty(), "empty model");
  const std::size_t nparams = model.total_params();
  std::vector<float> grad(nparams), reduced(nparams);
  // Deterministic pseudo-gradients; scaled down so sums stay exact in f32.
  for (std::size_t i = 0; i < nparams; ++i)
    grad[i] = static_cast<float>((i % 97) + ctx.rank()) / 64.0f;

  const double gflop_per_iter = model.total_gflops() * cfg.batch_per_rank *
                                3.0 * cfg.compute_scale;  // fwd + bwd
  const double compute_time = gflop_per_iter / cfg.rank_gflops_per_sec;
  const std::size_t bucket_elems =
      std::max<std::size_t>(cfg.bucket_bytes / sizeof(float), 1);

  TrainStats st;
  Timer total;
  for (int it = 0; it < cfg.iterations; ++it) {
    Timer tc;
    burn_compute(compute_time);
    st.compute_seconds += tc.elapsed();

    Timer ta;
    // Horovod-style bucketed gradient aggregation.
    for (std::size_t off = 0; off < nparams; off += bucket_elems) {
      const std::size_t len = std::min(bucket_elems, nparams - off);
      ar(ctx, grad.data() + off, reduced.data() + off, len);
    }
    st.allreduce_seconds += ta.elapsed();
  }
  st.seconds = total.elapsed();
  st.grad_checksum =
      std::accumulate(reduced.begin(), reduced.begin() + 1024, 0.0);
  st.images_per_second =
      st.seconds > 0 ? cfg.iterations * cfg.batch_per_rank * ctx.nranks() /
                           st.seconds
                     : 0;
  return st;
}

}  // namespace yhccl::apps::dnn
