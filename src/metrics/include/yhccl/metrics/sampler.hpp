// Periodic metrics sampler used by `YHCCL_METRICS=serve` teams.
//
// One std::thread owned by the Team parent: every interval it invokes the
// team-provided tick callback (fold gauges, run the straggler detector,
// export snapshots, republish the shm mirror).  The callback runs only
// from this thread plus one final synchronous invocation from stop(), so a
// single team-side mutex around the tick body is all the serialization the
// live readers need.  Deliberately condvar-based (not a spin) — the
// sampler must be invisible in the team's cycle budget.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace yhccl::metrics {

class Sampler {
 public:
  Sampler(int interval_ms, std::function<void()> tick)
      : interval_ms_(interval_ms < 1 ? 1 : interval_ms),
        tick_(std::move(tick)) {
    thread_ = std::thread([this] { loop(); });
  }

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Stop the thread and run one final tick so the last samples are never
  /// lost (teardown exports read the post-final-tick state).  Idempotent.
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    tick_();
  }

  ~Sampler() { stop(); }

 private:
  void loop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stopped_) {
      if (cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                       [this] { return stopped_; }))
        break;
      lk.unlock();
      tick_();
      lk.lock();
    }
  }

  const int interval_ms_;
  std::function<void()> tick_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace yhccl::metrics
