// Data-parallel CNN training proxy (paper §5.6, Fig. 18).
//
// Each rank holds a model replica and trains on synthetic batches: the
// forward/backward pass is a calibrated compute burn (the paper's Cluster C
// is compute-bound, §5.6), and the optimizer step all-reduces the gradient
// buffer — bucketed the way Horovod fuses tensors — through an injected
// collective, so YHCCL and baselines are interchangeable.
//
// Layer tables approximate ResNet-50 (25.6 M parameters) and VGG-16
// (138.4 M parameters), the two models the paper trains.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "yhccl/runtime/team.hpp"

namespace yhccl::apps::dnn {

struct Layer {
  std::string name;
  std::size_t params;  ///< trainable parameters (floats)
  double gflops;       ///< fwd+bwd work per image
};

struct ModelSpec {
  std::string name;
  std::vector<Layer> layers;
  std::size_t total_params() const;
  double total_gflops() const;
};

ModelSpec resnet50();
ModelSpec vgg16();

/// All-reduce (sum, f32) used for gradient aggregation.
using GradAllreduceFn = std::function<void(rt::RankCtx&, const float*,
                                           float*, std::size_t)>;

struct TrainConfig {
  int iterations = 4;
  int batch_per_rank = 8;
  double rank_gflops_per_sec = 8.0;  ///< synthetic compute speed
  std::size_t bucket_bytes = 16u << 20;  ///< Horovod-style fusion buckets
  double compute_scale = 1.0;  ///< shrink factor for quick runs
};

struct TrainStats {
  double seconds = 0;
  double compute_seconds = 0;
  double allreduce_seconds = 0;
  double images_per_second = 0;  ///< aggregate over the team
  double grad_checksum = 0;      ///< validates the reductions
};

/// Run `cfg.iterations` training steps SPMD on a rank.
TrainStats train_rank(rt::RankCtx& ctx, const ModelSpec& model,
                      const TrainConfig& cfg, const GradAllreduceFn& ar);

}  // namespace yhccl::apps::dnn
