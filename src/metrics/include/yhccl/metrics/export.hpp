// Metrics snapshot readers and exporters (docs/observability.md §6).
//
// Snapshot::capture lifts the live shared registry into plain values —
// acquire on each rank's window counter, relaxed on the monotone counters
// (torn cross-field reads are benign; a quiesced capture is exact).  On top
// of the snapshot sit the two export formats (the `yhccl-metrics/1` JSON
// schema and Prometheus text exposition), their validators (bench/
// metrics_check), the snapshot merger for multi-process artifacts, the
// MAD-based straggler detector, the `yhccl_top` renderer, and the seqlock
// shm mirror a live `serve` team publishes for external attach.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "yhccl/bench/json.hpp"
#include "yhccl/metrics/metrics.hpp"

namespace yhccl::metrics {

// ---- plain-value snapshot ---------------------------------------------------

struct CellSnap {
  int coll = 0;
  int alg = 0;
  int size_bucket = 0;
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ticks = 0;
  std::uint64_t hist[kLatBuckets] = {};
};

struct WindowSnap {
  std::uint64_t ordinal = 0;
  std::uint64_t arrive = 0;
  std::uint64_t depart = 0;
};

struct RankSnap {
  int rank = 0;
  std::uint64_t barriers = 0;
  std::uint64_t flag_posts = 0;
  std::uint64_t flag_waits = 0;
  std::uint64_t barrier_wait_ticks = 0;
  std::uint64_t plan_gauge[kCollSlots] = {};
  std::uint64_t runs = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t dav_loads = 0;
  std::uint64_t dav_stores = 0;
  std::vector<WindowSnap> window;  ///< oldest..newest, at most kWindowSlots
  std::vector<CellSnap> cells;     ///< non-empty cells only
};

/// TeamGauges mirror, plain values.
struct TeamSnap {
  std::uint64_t runs = 0;
  std::uint64_t epoch = 0;
  std::uint64_t active_ranks = 0;
  std::uint64_t straggler_flags = 0;
  std::uint64_t rs_faults = 0, rs_retries = 0, rs_recoveries = 0,
                rs_degrades = 0, rs_quarantines = 0, rs_corruptions = 0,
                rs_giveups = 0, rs_heals = 0;
  std::uint64_t plan_lookups = 0, plan_hits = 0, plan_misses = 0,
                plan_inserts = 0, plan_explores = 0, plan_commits = 0,
                plan_loaded = 0, plan_entries = 0, plan_quarantines = 0;
};

struct Snapshot {
  int pid = 0;
  int nranks = 0;
  double ticks_per_second = 0;
  std::uint64_t t_origin = 0;
  TeamSnap team;
  std::vector<RankSnap> ranks;
  std::vector<int> stragglers;  ///< ranks currently flagged by the detector

  /// Lift the live registry; exact when the team is quiesced, benignly
  /// torn (monotone per-counter) while ranks are running.
  static Snapshot capture(const MetricsBuffer& buf);

  /// The `yhccl-metrics/1` document (all counters exact int64; times stay
  /// in ticks + the ticks_per_second calibration, so it round-trips).
  bench::Json to_json() const;
  static Snapshot from_json(const bench::Json& j);

  /// Prometheus text exposition: per-rank counters, per-(coll,alg)
  /// latency histograms with cumulative log2 `le` edges in seconds,
  /// team/resilience/plan counters and gauges.
  std::string prometheus() const;

  /// Fold another snapshot in (multi-process artifact merge): counters and
  /// cells sum, gauges take the maximum, windows/stragglers drop (they are
  /// only meaningful within one live team).
  void merge(const Snapshot& o);
};

// ---- validators (bench/metrics_check) ---------------------------------------

/// Structural validation of a `yhccl-metrics/1` document: schema tag,
/// rank-array shape, name-table membership, bucket ranges, histogram
/// arity.  Counter *exactness* is deliberately not checked here — live
/// captures may be torn — the quiesced-parity test asserts it instead.
bool validate_metrics_json(const bench::Json& j, std::string* err = nullptr);

/// Prometheus text-format validation: HELP/TYPE grammar, every sample
/// names a declared metric of a declared type, histogram series carry
/// `le`, end at `+Inf`, and are cumulative-monotone.
bool validate_prometheus(const std::string& text, std::string* err = nullptr);

// ---- straggler detection ----------------------------------------------------

/// Rolling barrier-arrival anomaly detector.  Groups the per-rank sliding
/// windows by barrier ordinal, keeps ordinals stamped by *every* rank with
/// window data (full-team arrivals), measures each rank's mean signed
/// deviation from the per-ordinal median arrival, and flags ranks whose
/// deviation exceeds the median deviation by max(k * MAD, min_seconds).
struct StragglerReport {
  struct RankVerdict {
    int rank = 0;
    double mean_dev_seconds = 0;  ///< signed; positive = late
    bool flagged = false;
  };
  std::vector<RankVerdict> ranks;
  std::vector<int> flagged;
  int ordinals = 0;  ///< full-team barrier ordinals the verdict is based on
};
StragglerReport detect_stragglers(const Snapshot& s, double k = 4.0,
                                  double min_seconds = 2e-4);

// ---- yhccl_top renderer -----------------------------------------------------

/// One refresh frame: team header, resilience/plan counters, a per-rank
/// wait/work/skew table (rates against `prev` when given) and per-
/// (coll,alg) histogram summaries.  Pure string building — the CLI owns
/// cursor control.
std::string render_top(const Snapshot& snap, const Snapshot* prev = nullptr,
                       bool color = true);

// ---- live shm mirror (`serve` mode) -----------------------------------------
//
// The sampler republishes each JSON snapshot into a named shm segment
// ("/yhccl-metrics-<pid>") through a seqlock header, so `yhccl_top <pid>`
// attaches read-only from outside the process.  Single writer (the
// sampler); readers retry on odd/changed sequence.

inline constexpr std::size_t kMirrorBytes = std::size_t{4} << 20;

std::string mirror_shm_name(int pid);

struct MirrorHeader {
  mc::atomic<std::uint64_t> seq{0};    ///< seqlock: odd = write in progress
  mc::atomic<std::uint64_t> bytes{0};  ///< payload length
};

/// Publish `text` into the mirror segment (header + payload).  Returns
/// false (and publishes nothing) when the payload would not fit.
bool mirror_publish(void* mem, std::size_t cap,
                    const std::string& text) noexcept;

/// Seqlock-consistent read of the mirror payload; false when empty, torn
/// past the retry budget, or the segment is malformed.
bool mirror_read(const void* mem, std::size_t cap, std::string& out);

}  // namespace yhccl::metrics
