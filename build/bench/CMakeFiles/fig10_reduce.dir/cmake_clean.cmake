file(REMOVE_RECURSE
  "CMakeFiles/fig10_reduce.dir/fig10_reduce.cpp.o"
  "CMakeFiles/fig10_reduce.dir/fig10_reduce.cpp.o.d"
  "fig10_reduce"
  "fig10_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
