#include "yhccl/runtime/sync.hpp"

#include <immintrin.h>
#include <sched.h>
#include <time.h>

#include "yhccl/common/error.hpp"
#include "yhccl/common/time.hpp"

namespace yhccl::rt {

void SpinGuard::relax() {
#ifdef YHCCL_MC
  // Under a model-checking session the wait must become a scheduling point
  // instead of a busy loop: park this model rank until a watched location
  // gains a store it has not read yet (yhccl/mc/checker.hpp).
  if (mc::session_active()) {
    mc::detail::sess_spin_yield();
    return;
  }
#endif
  if (++spins_ < 64) {
    _mm_pause();
    return;
  }
  spins_ = 0;
  // Once per cycle: keep my liveness slot beating, leave together with the
  // rest of the team if anyone raised the abort word, and detect a reaped
  // sibling's death at reap latency instead of watchdog latency.
  detail::fault_heartbeat();
  fault_poll_abort();
  if (++yields_ < 256) {
    sched_yield();
    return;
  }
  // Sleep stage: the wait is ms-scale or worse — stop burning the core.
  if (!marked_) {
    marked_ = true;
    trace::stall_marker(ph_);
  }
  fault_check_dead();
  timespec ts{0, sleep_ns_};
  nanosleep(&ts, nullptr);
  if (sleep_ns_ < 1'000'000) sleep_ns_ *= 2;
  const double timeout = sync_timeout();
  if (timeout <= 0) return;
  const double now = wall_seconds();
  if (deadline_ < 0) {
    deadline_ = now + timeout;
    return;
  }
  if (now >= deadline_) fault_timeout(what_);
}

}  // namespace yhccl::rt
