#include "yhccl/coll/trace.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "yhccl/common/error.hpp"
#include "yhccl/common/time.hpp"

namespace yhccl::coll {

double CollTrace::recorded_seconds() const noexcept {
  double t = 0;
  for (const auto& e : events_) t += e.seconds;
  return t;
}

std::string CollTrace::to_csv() const {
  std::string out = "kind,count,dtype,op,root,seconds\n";
  char line[160];
  for (const auto& e : events_) {
    std::snprintf(line, sizeof line, "%s,%zu,%s,%s,%d,%.9f\n",
                  coll_kind_name(e.kind), e.count,
                  std::string(dtype_name(e.dtype)).c_str(),
                  std::string(op_name(e.op)).c_str(), e.root, e.seconds);
    out += line;
  }
  return out;
}

namespace {

constexpr const char* kCsvHeader = "kind,count,dtype,op,root,seconds";

[[noreturn]] void raise_at(std::size_t line_no, const std::string& what) {
  raise("trace csv line " + std::to_string(line_no) + ": " + what);
}

CollKind parse_kind(std::size_t ln, const std::string& s) {
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k)
    if (s == coll_kind_name(static_cast<CollKind>(k)))
      return static_cast<CollKind>(k);
  raise_at(ln, "unknown collective kind '" + s + "'");
}

Datatype parse_dtype(std::size_t ln, const std::string& s) {
  for (Datatype d : {Datatype::u8, Datatype::i32, Datatype::i64,
                     Datatype::f32, Datatype::f64})
    if (s == dtype_name(d)) return d;
  raise_at(ln, "unknown dtype '" + s + "'");
}

ReduceOp parse_op(std::size_t ln, const std::string& s) {
  for (ReduceOp o : {ReduceOp::sum, ReduceOp::prod, ReduceOp::max,
                     ReduceOp::min, ReduceOp::band, ReduceOp::bor})
    if (s == op_name(o)) return o;
  raise_at(ln, "unknown op '" + s + "'");
}

/// Strict numeric field parsers: the whole field must be consumed, with no
/// overflow, so "12x", "", "1e99999" and "-3" (for counts) all fail loudly
/// instead of silently truncating the way std::sto* / istream>> would.
std::uint64_t parse_count(std::size_t ln, const std::string& s) {
  if (s.empty() || s[0] == '-' || s[0] == '+')
    raise_at(ln, "bad count '" + s + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size())
    raise_at(ln, "bad count '" + s + "'");
  return v;
}

int parse_root(std::size_t ln, const std::string& s) {
  if (s.empty()) raise_at(ln, "bad root ''");
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size())
    raise_at(ln, "bad root '" + s + "'");
  if (v < 0 || v >= rt::kMaxRanks)
    raise_at(ln, "root " + s + " out of range [0, " +
                     std::to_string(rt::kMaxRanks) + ")");
  return static_cast<int>(v);
}

double parse_seconds(std::size_t ln, const std::string& s) {
  if (s.empty()) raise_at(ln, "bad seconds ''");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size())
    raise_at(ln, "bad seconds '" + s + "'");
  if (!(v >= 0)) raise_at(ln, "negative or NaN seconds '" + s + "'");
  return v;
}

}  // namespace

CollTrace CollTrace::from_csv(const std::string& csv) {
  CollTrace t;
  std::istringstream in(csv);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF
    if (!saw_header) {
      if (line != kCsvHeader)
        raise_at(line_no, "expected header '" + std::string(kCsvHeader) +
                              "', got '" + line + "'");
      saw_header = true;
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> f;
    std::size_t start = 0;
    for (;;) {
      const std::size_t comma = line.find(',', start);
      f.push_back(line.substr(start, comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (f.size() != 6)
      raise_at(line_no, "expected 6 fields, got " + std::to_string(f.size()));
    TraceEvent e;
    e.kind = parse_kind(line_no, f[0]);
    e.count = parse_count(line_no, f[1]);
    e.dtype = parse_dtype(line_no, f[2]);
    e.op = parse_op(line_no, f[3]);
    e.root = parse_root(line_no, f[4]);
    e.seconds = parse_seconds(line_no, f[5]);
    t.record(e);
  }
  if (!saw_header) raise("trace csv: empty input (missing header)");
  return t;
}

namespace {

template <typename Fn>
void traced(CollTrace& trace, TraceEvent e, const Fn& fn) {
  const Timer timer;
  fn();
  e.seconds = timer.elapsed();
  trace.record(e);
}

}  // namespace

void allreduce(CollTrace& trace, RankCtx& ctx, const void* send, void* recv,
               std::size_t count, Datatype d, ReduceOp op,
               const CollOpts& opts) {
  traced(trace, {CollKind::allreduce, count, d, op, 0, 0},
         [&] { allreduce(ctx, send, recv, count, d, op, opts); });
}

void reduce(CollTrace& trace, RankCtx& ctx, const void* send, void* recv,
            std::size_t count, Datatype d, ReduceOp op, int root,
            const CollOpts& opts) {
  traced(trace, {CollKind::reduce, count, d, op, root, 0},
         [&] { reduce(ctx, send, recv, count, d, op, root, opts); });
}

void reduce_scatter(CollTrace& trace, RankCtx& ctx, const void* send,
                    void* recv, std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts) {
  traced(trace, {CollKind::reduce_scatter, count, d, op, 0, 0},
         [&] { reduce_scatter(ctx, send, recv, count, d, op, opts); });
}

void broadcast(CollTrace& trace, RankCtx& ctx, void* buf, std::size_t count,
               Datatype d, int root, const CollOpts& opts) {
  traced(trace, {CollKind::broadcast, count, d, ReduceOp::sum, root, 0},
         [&] { broadcast(ctx, buf, count, d, root, opts); });
}

void allgather(CollTrace& trace, RankCtx& ctx, const void* send, void* recv,
               std::size_t count, Datatype d, const CollOpts& opts) {
  traced(trace, {CollKind::allgather, count, d, ReduceOp::sum, 0, 0},
         [&] { allgather(ctx, send, recv, count, d, opts); });
}

ReplayResult replay(RankCtx& ctx, const CollTrace& trace,
                    const CollOpts& opts) {
  // Synthetic buffers sized for the largest event; thread-local so
  // repeated replays don't churn the allocator.
  thread_local std::vector<std::uint8_t> send_buf, recv_buf;
  std::size_t max_send = 64, max_recv = 64;
  const auto p = static_cast<std::size_t>(ctx.nranks());
  for (const auto& e : trace.events()) {
    const std::size_t bytes = e.count * dtype_size(e.dtype);
    switch (e.kind) {
      case CollKind::reduce_scatter:
        max_send = std::max(max_send, bytes * p);
        max_recv = std::max(max_recv, bytes);
        break;
      case CollKind::allgather:
        max_send = std::max(max_send, bytes);
        max_recv = std::max(max_recv, bytes * p);
        break;
      default:
        max_send = std::max(max_send, bytes);
        max_recv = std::max(max_recv, bytes);
        break;
    }
  }
  if (send_buf.size() < max_send) send_buf.assign(max_send, 1);
  if (recv_buf.size() < max_recv) recv_buf.assign(max_recv, 0);

  ReplayResult r;
  const Timer timer;
  for (const auto& e : trace.events()) {
    switch (e.kind) {
      case CollKind::allreduce:
        allreduce(ctx, send_buf.data(), recv_buf.data(), e.count, e.dtype,
                  e.op, opts);
        break;
      case CollKind::reduce:
        reduce(ctx, send_buf.data(), recv_buf.data(), e.count, e.dtype,
               e.op, e.root, opts);
        break;
      case CollKind::reduce_scatter:
        reduce_scatter(ctx, send_buf.data(), recv_buf.data(), e.count,
                       e.dtype, e.op, opts);
        break;
      case CollKind::broadcast:
        broadcast(ctx, recv_buf.data(), e.count, e.dtype, e.root, opts);
        break;
      case CollKind::allgather:
        allgather(ctx, send_buf.data(), recv_buf.data(), e.count, e.dtype,
                  opts);
        break;
      default:
        raise("replay: unsupported event kind");
    }
    ++r.events;
    r.payload_bytes += e.count * dtype_size(e.dtype);
  }
  r.seconds = timer.elapsed();
  return r;
}

}  // namespace yhccl::coll
