#include "yhccl/coll/profiler.hpp"

#include <cstdio>

#include "yhccl/common/error.hpp"
#include "yhccl/common/time.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::coll {

void CollProfiler::add(CollKind k, std::size_t payload, double seconds,
                       const copy::Dav& dav, const copy::KernelCounts& kernels,
                       const rt::SyncCounts& sync,
                       double wait_seconds) noexcept {
  auto& r = records_[static_cast<int>(k)];
  ++r.calls;
  r.payload_bytes += payload;
  r.seconds += seconds;
  r.wait_seconds += wait_seconds;
  r.dav += dav;
  r.kernels += kernels;
  r.sync += sync;
}

void CollProfiler::add_skew(CollKind k, std::uint64_t barriers,
                            double skew_sum, double skew_max) noexcept {
  auto& r = records_[static_cast<int>(k)];
  r.skew_barriers += barriers;
  r.skew_sum += skew_sum;
  if (skew_max > r.skew_max) r.skew_max = skew_max;
}

const CollProfiler::Record& CollProfiler::get(CollKind k) const noexcept {
  return records_[static_cast<int>(k)];
}

CollProfiler::Record CollProfiler::total() const noexcept {
  Record t;
  for (const auto& r : records_) {
    t.calls += r.calls;
    t.payload_bytes += r.payload_bytes;
    t.seconds += r.seconds;
    t.wait_seconds += r.wait_seconds;
    t.dav += r.dav;
    t.kernels += r.kernels;
    t.sync += r.sync;
    t.skew_barriers += r.skew_barriers;
    t.skew_sum += r.skew_sum;
    if (r.skew_max > t.skew_max) t.skew_max = r.skew_max;
  }
  return t;
}

CollProfiler& CollProfiler::operator+=(const CollProfiler& o) noexcept {
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k) {
    records_[k].calls += o.records_[k].calls;
    records_[k].payload_bytes += o.records_[k].payload_bytes;
    records_[k].seconds += o.records_[k].seconds;
    records_[k].wait_seconds += o.records_[k].wait_seconds;
    records_[k].dav += o.records_[k].dav;
    records_[k].kernels += o.records_[k].kernels;
    records_[k].sync += o.records_[k].sync;
    records_[k].skew_barriers += o.records_[k].skew_barriers;
    records_[k].skew_sum += o.records_[k].skew_sum;
    if (o.records_[k].skew_max > records_[k].skew_max)
      records_[k].skew_max = o.records_[k].skew_max;
  }
  resilience_ += o.resilience_;
  return *this;
}

namespace {

bool any_resilience(const rt::ResilienceStats& s) noexcept {
  return s.faults != 0 || s.retries != 0 || s.recoveries != 0 ||
         s.degrades != 0 || s.quarantines != 0 || s.corruptions != 0 ||
         s.giveups != 0 || s.heals != 0;
}

}  // namespace

std::string CollProfiler::report() const {
  char line[224];
  std::string out;
  std::snprintf(line, sizeof line,
                "%-16s %8s %12s %10s %10s %12s %10s %8s %10s %10s\n",
                "collective", "calls", "payload(MB)", "time(s)", "wait(s)",
                "DAV(MB)", "DAB(GB/s)", "kernel", "sync-ops", "skew(us)");
  out += line;
  const auto emit = [&](const char* name, const Record& r) {
    std::snprintf(line, sizeof line,
                  "%-16s %8llu %12.1f %10.4f %10.4f %12.1f %10.2f %8s "
                  "%10llu %10.1f\n",
                  name, static_cast<unsigned long long>(r.calls),
                  r.payload_bytes / 1e6, r.seconds, r.wait_seconds,
                  r.dav.total() / 1e6, r.dab() / 1e9,
                  r.kernels.total() ? copy::isa_name(r.kernels.dominant())
                                    : "-",
                  static_cast<unsigned long long>(r.sync.total()),
                  r.skew_mean() * 1e6);
    out += line;
  };
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k) {
    const auto& r = records_[k];
    if (r.calls == 0) continue;
    emit(coll_kind_name(static_cast<CollKind>(k)), r);
  }
  emit("TOTAL", total());
  if (any_resilience(resilience_)) {
    std::snprintf(line, sizeof line,
                  "resilience: faults=%llu retries=%llu heals=%llu "
                  "degrades=%llu quarantines=%llu corruptions=%llu "
                  "giveups=%llu\n",
                  static_cast<unsigned long long>(resilience_.faults),
                  static_cast<unsigned long long>(resilience_.retries),
                  static_cast<unsigned long long>(resilience_.heals),
                  static_cast<unsigned long long>(resilience_.degrades),
                  static_cast<unsigned long long>(resilience_.quarantines),
                  static_cast<unsigned long long>(resilience_.corruptions),
                  static_cast<unsigned long long>(resilience_.giveups));
    out += line;
  }
  return out;
}

namespace {

constexpr const char* kProfilerSchema = "yhccl-profiler/1";

bench::Json record_json(const CollProfiler::Record& r) {
  auto j = bench::Json::object();
  j.set("calls", r.calls);
  j.set("payload_bytes", r.payload_bytes);
  j.set("seconds", r.seconds);
  j.set("wait_seconds", r.wait_seconds);
  j.set("work_seconds", r.work_seconds());
  auto dav = bench::Json::object();
  dav.set("loads", r.dav.loads);
  dav.set("stores", r.dav.stores);
  j.set("dav", std::move(dav));
  auto kern = bench::Json::array();
  for (int i = 0; i < copy::kNumIsaTiers; ++i)
    kern.push_back(r.kernels.calls[i]);
  j.set("kernels", std::move(kern));
  auto sync = bench::Json::object();
  sync.set("barriers", r.sync.barriers);
  sync.set("flag_posts", r.sync.flag_posts);
  sync.set("flag_waits", r.sync.flag_waits);
  j.set("sync", std::move(sync));
  auto skew = bench::Json::object();
  skew.set("barriers", r.skew_barriers);
  skew.set("sum_seconds", r.skew_sum);
  skew.set("max_seconds", r.skew_max);
  j.set("skew", std::move(skew));
  j.set("dab", r.dab());
  return j;
}

CollProfiler::Record record_from_json(const bench::Json& j) {
  YHCCL_REQUIRE(j.is_object(), "profiler record: not an object");
  CollProfiler::Record r;
  r.calls = j["calls"].as_uint();
  r.payload_bytes = j["payload_bytes"].as_uint();
  r.seconds = j["seconds"].as_double();
  r.wait_seconds = j["wait_seconds"].as_double();
  const auto& dav = j["dav"];
  r.dav.loads = dav["loads"].as_uint();
  r.dav.stores = dav["stores"].as_uint();
  const auto& kern = j["kernels"];
  YHCCL_REQUIRE(kern.is_array() &&
                    kern.size() == static_cast<std::size_t>(copy::kNumIsaTiers),
                "profiler record: kernels tier count mismatch");
  for (int i = 0; i < copy::kNumIsaTiers; ++i)
    r.kernels.calls[i] = kern.at(static_cast<std::size_t>(i)).as_uint();
  const auto& sync = j["sync"];
  r.sync.barriers = sync["barriers"].as_uint();
  r.sync.flag_posts = sync["flag_posts"].as_uint();
  r.sync.flag_waits = sync["flag_waits"].as_uint();
  const auto& skew = j["skew"];
  r.skew_barriers = skew["barriers"].as_uint();
  r.skew_sum = skew["sum_seconds"].as_double();
  r.skew_max = skew["max_seconds"].as_double();
  return r;
}

}  // namespace

bench::Json CollProfiler::report_json() const {
  auto j = bench::Json::object();
  j.set("schema", kProfilerSchema);
  auto kinds = bench::Json::object();
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k) {
    if (records_[k].calls == 0 && records_[k].skew_barriers == 0) continue;
    kinds.set(coll_kind_name(static_cast<CollKind>(k)),
              record_json(records_[k]));
  }
  j.set("kinds", std::move(kinds));
  j.set("total", record_json(total()));
  // Emitted only when any counter is nonzero, so pre-resilience reports
  // stay byte-identical (and round-trip exactly: from_json defaults to
  // all-zero when the block is absent).
  if (any_resilience(resilience_)) {
    auto res = bench::Json::object();
    res.set("faults", resilience_.faults);
    res.set("retries", resilience_.retries);
    res.set("recoveries", resilience_.recoveries);
    res.set("degrades", resilience_.degrades);
    res.set("quarantines", resilience_.quarantines);
    res.set("corruptions", resilience_.corruptions);
    res.set("giveups", resilience_.giveups);
    res.set("heals", resilience_.heals);
    j.set("resilience", std::move(res));
  }
  return j;
}

CollProfiler CollProfiler::from_json(const bench::Json& j) {
  YHCCL_REQUIRE(j.is_object(), "profiler json: not an object");
  const auto* schema = j.find("schema");
  YHCCL_REQUIRE(schema != nullptr && schema->is_string() &&
                    schema->as_string() == kProfilerSchema,
                "profiler json: unknown schema");
  CollProfiler p;
  const auto* kinds = j.find("kinds");
  YHCCL_REQUIRE(kinds != nullptr && kinds->is_object(),
                "profiler json: missing kinds");
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k) {
    const auto* rec =
        kinds->find(coll_kind_name(static_cast<CollKind>(k)));
    if (rec != nullptr)
      p.records_[k] = record_from_json(*rec);
  }
  if (const auto* res = j.find("resilience"); res != nullptr) {
    YHCCL_REQUIRE(res->is_object(), "profiler json: resilience not an object");
    p.resilience_.faults = (*res)["faults"].as_uint();
    p.resilience_.retries = (*res)["retries"].as_uint();
    p.resilience_.recoveries = (*res)["recoveries"].as_uint();
    p.resilience_.degrades = (*res)["degrades"].as_uint();
    p.resilience_.quarantines = (*res)["quarantines"].as_uint();
    p.resilience_.corruptions = (*res)["corruptions"].as_uint();
    p.resilience_.giveups = (*res)["giveups"].as_uint();
    p.resilience_.heals = (*res)["heals"].as_uint();
  }
  return p;
}

void merge_trace_skew(CollProfiler& prof,
                      const trace::SkewRollup& rollup) noexcept {
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k) {
    const auto& s = rollup.by_coll[1 + k];  // slot 0 = outside a collective
    if (s.barriers == 0) continue;
    prof.add_skew(static_cast<CollKind>(k), s.barriers, s.skew_sum,
                  s.skew_max);
  }
}

namespace {

template <typename Fn>
void profiled(CollProfiler& prof, CollKind k, std::size_t payload,
              const Fn& fn) {
  const copy::DavScope dav;
  const copy::KernelCountScope kernels;
  const rt::SyncCountScope sync;
  const trace::WaitScope waits;
  const Timer timer;
  fn();
  prof.add(k, payload, timer.elapsed(), dav.delta(), kernels.delta(),
           sync.delta(), waits.wait_seconds());
}

}  // namespace

void allreduce(CollProfiler& prof, RankCtx& ctx, const void* send,
               void* recv, std::size_t count, Datatype d, ReduceOp op,
               const CollOpts& opts) {
  profiled(prof, CollKind::allreduce, count * dtype_size(d), [&] {
    allreduce(ctx, send, recv, count, d, op, opts);
  });
}

void reduce(CollProfiler& prof, RankCtx& ctx, const void* send, void* recv,
            std::size_t count, Datatype d, ReduceOp op, int root,
            const CollOpts& opts) {
  profiled(prof, CollKind::reduce, count * dtype_size(d), [&] {
    reduce(ctx, send, recv, count, d, op, root, opts);
  });
}

void reduce_scatter(CollProfiler& prof, RankCtx& ctx, const void* send,
                    void* recv, std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts) {
  profiled(prof, CollKind::reduce_scatter,
           count * dtype_size(d) * static_cast<std::size_t>(ctx.nranks()),
           [&] { reduce_scatter(ctx, send, recv, count, d, op, opts); });
}

void broadcast(CollProfiler& prof, RankCtx& ctx, void* buf,
               std::size_t count, Datatype d, int root,
               const CollOpts& opts) {
  profiled(prof, CollKind::broadcast, count * dtype_size(d),
           [&] { broadcast(ctx, buf, count, d, root, opts); });
}

void allgather(CollProfiler& prof, RankCtx& ctx, const void* send,
               void* recv, std::size_t count, Datatype d,
               const CollOpts& opts) {
  profiled(prof, CollKind::allgather, count * dtype_size(d),
           [&] { allgather(ctx, send, recv, count, d, opts); });
}

}  // namespace yhccl::coll
