file(REMOVE_RECURSE
  "libyhccl_apps.a"
)
