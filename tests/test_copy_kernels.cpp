// Unit tests for the copy kernels (§4.1): correctness across sizes and
// alignments, DAV accounting, and the policy decision logic of Algorithm 1.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/kernels.hpp"
#include "yhccl/copy/policy.hpp"

namespace yc = yhccl::copy;

namespace {

using CopyFn = void (*)(void*, const void*, std::size_t) noexcept;

struct NamedCopy {
  const char* name;
  CopyFn fn;
};

class CopyKernel : public ::testing::TestWithParam<NamedCopy> {};

std::vector<std::uint8_t> pattern(std::size_t n, unsigned seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>((i * 131 + seed * 7 + 13) & 0xff);
  return v;
}

TEST_P(CopyKernel, CopiesExactBytesAcrossSizes) {
  const auto fn = GetParam().fn;
  for (std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{31},
        std::size_t{32}, std::size_t{33}, std::size_t{63}, std::size_t{64},
        std::size_t{127}, std::size_t{1000}, std::size_t{4096},
        std::size_t{65537}, std::size_t{1u << 20}}) {
    const auto src = pattern(n, 1);
    std::vector<std::uint8_t> dst(n + 64, 0xee);
    fn(dst.data(), src.data(), n);
    if (n != 0)  // memcmp with an empty vector's null data() is UB
      ASSERT_EQ(0, std::memcmp(dst.data(), src.data(), n)) << "n=" << n;
    // Guard bytes untouched.
    for (std::size_t i = n; i < n + 64; ++i)
      ASSERT_EQ(dst[i], 0xee) << "overrun at " << i << " (n=" << n << ")";
  }
}

TEST_P(CopyKernel, HandlesMisalignedSourceAndDestination) {
  const auto fn = GetParam().fn;
  const std::size_t n = 8191;
  const auto src = pattern(n + 64, 2);
  std::vector<std::uint8_t> dst(n + 128, 0);
  for (std::size_t soff : {0u, 1u, 7u, 33u}) {
    for (std::size_t doff : {0u, 1u, 7u, 33u}) {
      std::fill(dst.begin(), dst.end(), 0);
      fn(dst.data() + doff, src.data() + soff, n);
      ASSERT_EQ(0, std::memcmp(dst.data() + doff, src.data() + soff, n))
          << "soff=" << soff << " doff=" << doff;
    }
  }
}

TEST_P(CopyKernel, AccountsTwoBytesOfTrafficPerPayloadByte) {
  const auto fn = GetParam().fn;
  const std::size_t n = 123457;
  const auto src = pattern(n, 3);
  std::vector<std::uint8_t> dst(n);
  yc::DavScope scope;
  fn(dst.data(), src.data(), n);
  const auto d = scope.delta();
  EXPECT_EQ(d.loads, n);
  EXPECT_EQ(d.stores, n);
  EXPECT_EQ(d.total(), 2 * n);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, CopyKernel,
    ::testing::Values(NamedCopy{"t_copy", &yc::t_copy},
                      NamedCopy{"nt_copy", &yc::nt_copy},
                      NamedCopy{"scalar_copy", &yc::scalar_copy},
                      NamedCopy{"erms_copy", &yc::erms_copy}),
    [](const auto& info) { return info.param.name; });

TEST(MemmoveModel, SwitchesOnSizeThresholdOnly) {
  // Behavioural check: both regimes must copy correctly.
  for (std::size_t n : {std::size_t{1024}, yc::kMemmoveNtThreshold - 1,
                        yc::kMemmoveNtThreshold,
                        yc::kMemmoveNtThreshold + 4097}) {
    const auto src = pattern(n, 4);
    std::vector<std::uint8_t> dst(n, 0);
    yc::memmove_model_copy(dst.data(), src.data(), n);
    ASSERT_EQ(0, std::memcmp(dst.data(), src.data(), n)) << n;
  }
}

TEST(AdaptivePolicy, TemporalHintAlwaysWinsRegardlessOfWorkingSet) {
  // Algorithm 1: t == true (temporal data) never streams.
  EXPECT_FALSE(yc::use_nt_store(yc::CopyPolicy::adaptive,
                                /*temporal_hint=*/true, /*C=*/1,
                                /*W=*/1u << 30, 4096));
}

TEST(AdaptivePolicy, StreamsOnlyWhenWorkingSetExceedsCache) {
  const std::size_t C = 8u << 20;
  EXPECT_FALSE(yc::use_nt_store(yc::CopyPolicy::adaptive, false, C, C, 4096));
  EXPECT_TRUE(
      yc::use_nt_store(yc::CopyPolicy::adaptive, false, C, C + 1, 4096));
}

TEST(AdaptivePolicy, ForcedArmsIgnoreHints) {
  EXPECT_FALSE(yc::use_nt_store(yc::CopyPolicy::always_temporal, false, 0,
                                1u << 30, 1u << 20));
  EXPECT_TRUE(yc::use_nt_store(yc::CopyPolicy::always_nt, true, 1u << 30, 0,
                               64));
  // memmove arm keys on the copy size alone.
  EXPECT_FALSE(yc::use_nt_store(yc::CopyPolicy::memmove_model, false, 0,
                                1u << 30, yc::kMemmoveNtThreshold - 1));
  EXPECT_TRUE(yc::use_nt_store(yc::CopyPolicy::memmove_model, true, 1u << 30,
                               0, yc::kMemmoveNtThreshold));
}

TEST(AdaptiveCopy, CopiesCorrectlyInBothRegimes) {
  const std::size_t n = 300000;
  const auto src = pattern(n, 5);
  std::vector<std::uint8_t> dst(n, 0);
  // Cache-resident working set: temporal path.
  yc::adaptive_copy(dst.data(), src.data(), n, false, 1u << 30, 1u << 20);
  ASSERT_EQ(0, std::memcmp(dst.data(), src.data(), n));
  std::fill(dst.begin(), dst.end(), 0);
  // Oversized working set + non-temporal destination: streaming path.
  yc::adaptive_copy(dst.data(), src.data(), n, false, 1u << 20, 1u << 30);
  ASSERT_EQ(0, std::memcmp(dst.data(), src.data(), n));
}

TEST(CacheModel, AvailableCapacityFollowsInclusivity) {
  yc::CacheConfig nonincl{.llc_bytes = 64u << 20,
                          .l2_per_core = 1u << 20,
                          .llc_inclusive = false};
  EXPECT_EQ(nonincl.available(8), (64u << 20) + 8 * (1u << 20));
  yc::CacheConfig incl = nonincl;
  incl.llc_inclusive = true;
  EXPECT_EQ(incl.available(8), 64u << 20);
}

TEST(CacheModel, PaperPresetsMatchSection54) {
  // §5.4: C = 294912 KB on NodeA (p=64) and 116736 KB on NodeB (p=48).
  EXPECT_EQ(yc::CacheConfig::node_a().available(64), 294912ull << 10);
  EXPECT_EQ(yc::CacheConfig::node_b().available(48), 116736ull << 10);
}

TEST(CacheModel, DetectReturnsSaneValues) {
  const auto c = yc::CacheConfig::detect();
  EXPECT_GE(c.llc_bytes, 1u << 20);
  EXPECT_GE(c.l2_per_core, 16u << 10);
  EXPECT_EQ(c.cacheline, 64u);
}

TEST(Dav, ScopeDeltaIsolatesMeasurement) {
  std::vector<std::uint8_t> a(1024), b(1024);
  yc::t_copy(b.data(), a.data(), 1024);  // outside the scope
  yc::DavScope scope;
  yc::t_copy(b.data(), a.data(), 512);
  EXPECT_EQ(scope.delta().total(), 1024u);
}

}  // namespace
