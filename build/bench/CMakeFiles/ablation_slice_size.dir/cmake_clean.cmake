file(REMOVE_RECURSE
  "CMakeFiles/ablation_slice_size.dir/ablation_slice_size.cpp.o"
  "CMakeFiles/ablation_slice_size.dir/ablation_slice_size.cpp.o.d"
  "ablation_slice_size"
  "ablation_slice_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slice_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
