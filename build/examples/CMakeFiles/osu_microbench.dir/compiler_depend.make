# Empty compiler generated dependencies file for osu_microbench.
# This may be replaced when dependencies are built.
