# Empty dependencies file for yhccl_apps.
# This may be replaced when dependencies are built.
