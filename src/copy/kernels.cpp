#include "yhccl/copy/kernels.hpp"

#include <cstdint>
#include <cstring>

#include "yhccl/analysis/hb.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/dispatch.hpp"

namespace yhccl::copy {

// Every copy entry point reports its source/destination ranges to the
// happens-before checker before touching memory.  With the checker off
// (the default) each hook is a thread-local load and an untaken branch —
// nothing on the hot path.

void scalar_copy(void* dst, const void* src, std::size_t n) noexcept {
  if (n == 0) return;  // callers may pass null pointers for empty copies
  analysis::hb_read(src, n, "scalar_copy(src)");
  analysis::hb_write(dst, n, "scalar_copy(dst)");
  std::memcpy(dst, src, n);
  dav_add(n, n);
}

void t_copy(void* dst, const void* src, std::size_t n) noexcept {
  if (n == 0) return;
  analysis::hb_read(src, n, "t_copy(src)");
  analysis::hb_write(dst, n, "t_copy(dst)");
  const KernelTable& k = kernels();
  k.copy_t(dst, src, n);
  kernel_count_add(k.tier);
  dav_add(n, n);
}

void nt_copy(void* dst, const void* src, std::size_t n) noexcept {
  if (n == 0) return;
  analysis::hb_read(src, n, "nt_copy(src)");
  analysis::hb_write(dst, n, "nt_copy(dst)");
  const KernelTable& k = kernels();
  k.copy_nt(dst, src, n);
  kernel_count_add(k.tier);
  dav_add(n, n);
}

void erms_copy(void* dst, const void* src, std::size_t n) noexcept {
  if (n == 0) return;
  analysis::hb_read(src, n, "erms_copy(src)");
  analysis::hb_write(dst, n, "erms_copy(dst)");
#if defined(__x86_64__) || defined(__i386__)
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  std::size_t cnt = n;
  asm volatile("rep movsb" : "+D"(d), "+S"(s), "+c"(cnt) : : "memory");
#else
  std::memcpy(dst, src, n);
#endif
  dav_add(n, n);
}

void memmove_model_copy(void* dst, const void* src, std::size_t n,
                        std::size_t nt_threshold) noexcept {
  if (n >= nt_threshold)
    nt_copy(dst, src, n);
  else
    t_copy(dst, src, n);
}

}  // namespace yhccl::copy
