# Empty dependencies file for test_coll_correctness.
# This may be replaced when dependencies are built.
