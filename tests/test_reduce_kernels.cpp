// Unit tests for the reduction kernels.
//
// The kernels dispatch through a runtime-selected ISA tier (scalar / AVX2 /
// AVX-512), so every correctness property is checked under *each* tier the
// host can run, via force_isa():
//   * elementwise parity with an in-test scalar reference for every
//     (op, dtype) combination, fan-in m = 1..9 (crossing the fixed-arity /
//     generic-path boundary at m = 8), unaligned sources and destinations,
//     odd lengths, and both temporal and streaming stores;
//   * bit-identical float results across tiers and store types (the fold
//     order is fixed; vectorization only runs across the element index);
//   * single-pass DAV accounting: a fused m-ary reduction books exactly
//     (m+1)*n bytes — m*n loaded, n stored — vs the 3n(m-1) of the
//     pairwise chain it replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "yhccl/common/error.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/copy/reduce_kernels.hpp"

using yhccl::Datatype;
using yhccl::ReduceOp;
namespace yc = yhccl::copy;

namespace {

/// Forces a tier for the scope, restoring the previous one on exit.
class ScopedIsa {
 public:
  explicit ScopedIsa(yc::IsaTier t) : prev_(yc::active_isa()) {
    active_ = yc::force_isa(t);
  }
  ~ScopedIsa() { yc::force_isa(prev_); }
  yc::IsaTier active() const { return active_; }

 private:
  yc::IsaTier prev_, active_;
};

std::vector<yc::IsaTier> runnable_tiers() {
  std::vector<yc::IsaTier> ts;
  for (int t = 0; t <= static_cast<int>(yc::detected_isa()); ++t)
    ts.push_back(static_cast<yc::IsaTier>(t));
  return ts;
}

/// Deterministic operand value.  Small: overflow-free for sum at m <= 9 in
/// every dtype except u8, where both kernel and reference wrap identically.
/// Products stay in {1,2}^m.
template <typename T>
T gen(int k, std::size_t i, ReduceOp op) {
  if (op == ReduceOp::prod) return static_cast<T>(1 + ((k + i) % 2));
  return static_cast<T>(((k + 3) * 29 + static_cast<int>(i % 257) * 13) % 101);
}

template <typename T>
T ref_apply(ReduceOp op, T a, T b) {
  switch (op) {
    case ReduceOp::sum: return static_cast<T>(a + b);
    case ReduceOp::prod: return static_cast<T>(a * b);
    case ReduceOp::max: return a > b ? a : b;
    case ReduceOp::min: return a < b ? a : b;
    case ReduceOp::band:
      if constexpr (std::is_integral_v<T>) return static_cast<T>(a & b);
      break;
    case ReduceOp::bor:
      if constexpr (std::is_integral_v<T>) return static_cast<T>(a | b);
      break;
  }
  return a;
}

/// Sequential fold srcs[0] op srcs[1] op ... — the order every tier must
/// reproduce exactly.
template <typename T>
void ref_reduce(T* out, const std::vector<const T*>& srcs, int m,
                std::size_t cnt, ReduceOp op) {
  for (std::size_t i = 0; i < cnt; ++i) {
    T acc = srcs[0][i];
    for (int k = 1; k < m; ++k) acc = ref_apply(op, acc, srcs[k][i]);
    out[i] = acc;
  }
}

struct Combo {
  Datatype d;
  ReduceOp op;
};

class ReduceKernel : public ::testing::TestWithParam<Combo> {};

/// The exhaustive parity sweep: tiers x m x lengths x alignment x store
/// type, all against the scalar reference.
template <typename T>
void run_combo(ReduceOp op, Datatype d) {
  constexpr int kMaxM = 9;  // crosses the fixed-arity limit (8)
  for (yc::IsaTier tier : runnable_tiers()) {
    ScopedIsa scoped(tier);
    ASSERT_EQ(scoped.active(), tier);
    for (std::size_t cnt :
         {std::size_t{1}, std::size_t{17}, std::size_t{255},
          std::size_t{5003}}) {
      // Sources at varying element offsets from a vector-aligned base so
      // the kernels see unaligned pointers; 64B-block peel paths get both
      // aligned and misaligned heads.
      std::vector<std::vector<T>> bufs(kMaxM);
      std::vector<const T*> srcs;
      for (int k = 0; k < kMaxM; ++k) {
        const std::size_t off = static_cast<std::size_t>(k % 3);
        bufs[k].resize(cnt + off + 8);
        for (std::size_t i = 0; i < cnt; ++i)
          bufs[k][off + i] = gen<T>(k, i, op);
        srcs.push_back(bufs[k].data() + off);
      }
      for (int m = 1; m <= kMaxM; ++m) {
        std::vector<T> ref(cnt);
        ref_reduce(ref.data(), srcs, m, cnt, op);
        for (bool nt : {false, true}) {
          std::vector<T> outbuf(cnt + 9, T{});
          T* out = outbuf.data() + 1;  // misaligned destination
          std::vector<const void*> vsrcs(srcs.begin(), srcs.begin() + m);
          yc::reduce_out_multi(out, vsrcs.data(), m, cnt * sizeof(T), d, op,
                               nt);
          for (std::size_t i = 0; i < cnt; ++i)
            ASSERT_EQ(out[i], ref[i])
                << isa_name(tier) << " m=" << m << " cnt=" << cnt
                << " nt=" << nt << " i=" << i;
        }
      }
      // Two-operand entry points against the same reference (m = 2).
      if (cnt >= 2) {
        std::vector<T> ref(cnt);
        ref_reduce(ref.data(), srcs, 2, cnt, op);
        std::vector<T> out(cnt, T{});
        yc::reduce_out(out.data(), srcs[0], srcs[1], cnt * sizeof(T), d, op,
                       /*nt_store=*/true);
        for (std::size_t i = 0; i < cnt; ++i)
          ASSERT_EQ(out[i], ref[i]) << isa_name(tier) << " out-nt i=" << i;
        std::vector<T> acc(srcs[0], srcs[0] + cnt);
        yc::reduce_inplace(acc.data(), srcs[1], cnt * sizeof(T), d, op);
        for (std::size_t i = 0; i < cnt; ++i)
          ASSERT_EQ(acc[i], ref[i]) << isa_name(tier) << " inplace i=" << i;
      }
    }
  }
}

TEST_P(ReduceKernel, ParityWithScalarReferenceUnderEveryTier) {
  const auto [d, op] = GetParam();
  switch (d) {
    case Datatype::u8: run_combo<std::uint8_t>(op, d); break;
    case Datatype::i32: run_combo<std::int32_t>(op, d); break;
    case Datatype::i64: run_combo<std::int64_t>(op, d); break;
    case Datatype::f32: run_combo<float>(op, d); break;
    case Datatype::f64: run_combo<double>(op, d); break;
  }
}

std::vector<Combo> all_combos() {
  std::vector<Combo> cs;
  for (Datatype d : {Datatype::u8, Datatype::i32, Datatype::i64, Datatype::f32,
                     Datatype::f64})
    for (ReduceOp op : {ReduceOp::sum, ReduceOp::prod, ReduceOp::max,
                        ReduceOp::min, ReduceOp::band, ReduceOp::bor})
      if (op_valid_for(op, d)) cs.push_back({d, op});
  return cs;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, ReduceKernel,
                         ::testing::ValuesIn(all_combos()),
                         [](const auto& info) {
                           return std::string(dtype_name(info.param.d)) + "_" +
                                  std::string(op_name(info.param.op));
                         });

TEST(ReduceKernelTiers, FloatSumsAreBitIdenticalAcrossTiersAndStoreTypes) {
  // Mixed-magnitude values make float addition order-sensitive: if any
  // tier or store path reassociated the fold, some lane would differ.
  const std::size_t cnt = 4099;
  constexpr int m = 5;
  std::vector<std::vector<double>> bufs(m, std::vector<double>(cnt));
  for (int k = 0; k < m; ++k)
    for (std::size_t i = 0; i < cnt; ++i)
      bufs[k][i] = (1.0 + static_cast<double>((i * 7 + k) % 97)) *
                   std::pow(10.0, static_cast<double>((k * 5 + i) % 13) - 6);
  std::vector<const void*> srcs;
  for (auto& b : bufs) srcs.push_back(b.data());

  std::vector<double> first;
  for (yc::IsaTier tier : runnable_tiers()) {
    ScopedIsa scoped(tier);
    for (bool nt : {false, true}) {
      std::vector<double> out(cnt, -1.0);
      yc::reduce_out_multi(out.data(), srcs.data(), m, cnt * sizeof(double),
                           Datatype::f64, ReduceOp::sum, nt);
      if (first.empty()) {
        first = out;
      } else {
        ASSERT_EQ(0, std::memcmp(out.data(), first.data(),
                                 cnt * sizeof(double)))
            << isa_name(tier) << " nt=" << nt;
      }
    }
  }
}

TEST(ReduceKernelDav, TwoOperandIsThreeBytesPerPayloadByte) {
  const std::size_t n = 64 * 1024;
  std::vector<float> a(n / 4), b(n / 4), out(n / 4);
  yc::DavScope s1;
  yc::reduce_inplace(a.data(), b.data(), n, Datatype::f32, ReduceOp::sum);
  EXPECT_EQ(s1.delta().loads, 2 * n);
  EXPECT_EQ(s1.delta().stores, n);
  yc::DavScope s2;
  yc::reduce_out(out.data(), a.data(), b.data(), n, Datatype::f32,
                 ReduceOp::sum, true);
  EXPECT_EQ(s2.delta().total(), 3 * n);
}

TEST(ReduceKernelDav, SinglePassMultiBooksMPlus1BytesPerPayloadByte) {
  // The single-pass kernel reads each of the m sources once and stores
  // once: exactly (m+1)*n for every fan-in, including the generic m > 8
  // path and the m = 1 copy degenerate.
  const std::size_t n = 256 * 1024;
  constexpr int kMaxM = 9;
  std::vector<std::vector<float>> bufs(kMaxM,
                                       std::vector<float>(n / 4, 1.0f));
  std::vector<float> out(n / 4);
  for (int m = 1; m <= kMaxM; ++m) {
    std::vector<const void*> srcs;
    for (int k = 0; k < m; ++k) srcs.push_back(bufs[k].data());
    yc::DavScope scope;
    yc::reduce_out_multi(out.data(), srcs.data(), m, n, Datatype::f32,
                         ReduceOp::sum, false);
    EXPECT_EQ(scope.delta().loads, static_cast<std::uint64_t>(m) * n) << m;
    EXPECT_EQ(scope.delta().stores, n) << m;
    EXPECT_EQ(scope.delta().total(), static_cast<std::uint64_t>(m + 1) * n)
        << m;
  }
}

TEST(ReduceKernelDav, SinglePassBeatsPairwiseChain) {
  // The pairwise chain this kernel replaced costs 3n(m-1); at m = 4 that
  // is 9n vs the fused 5n.
  const std::size_t n = 256 * 1024;
  constexpr int m = 4;
  std::vector<std::vector<float>> bufs(m, std::vector<float>(n / 4, 1.0f));
  std::vector<float> out(n / 4);

  std::vector<const void*> srcs;
  for (auto& b : bufs) srcs.push_back(b.data());
  yc::DavScope fused;
  yc::reduce_out_multi(out.data(), srcs.data(), m, n, Datatype::f32,
                       ReduceOp::sum, false);
  const auto fused_total = fused.delta().total();

  yc::DavScope chain;
  yc::reduce_out(out.data(), bufs[0].data(), bufs[1].data(), n, Datatype::f32,
                 ReduceOp::sum, false);
  for (int k = 2; k < m; ++k)
    yc::reduce_inplace(out.data(), bufs[k].data(), n, Datatype::f32,
                       ReduceOp::sum);
  const auto chain_total = chain.delta().total();

  EXPECT_EQ(fused_total, 5 * n);
  EXPECT_EQ(chain_total, 9 * n);
  EXPECT_LT(fused_total, chain_total);
}

TEST(ReduceOutMulti, InPlaceFirstOperandIsSupported) {
  // The socket stage writes its result over srcs[0]; this must be exact
  // under every tier.
  for (yc::IsaTier tier : runnable_tiers()) {
    ScopedIsa scoped(tier);
    const std::size_t cnt = 4099;
    std::vector<float> s0(cnt, 1.0f), s1(cnt, 2.0f), s2(cnt, 4.0f);
    const void* srcs[] = {s0.data(), s1.data(), s2.data()};
    yc::reduce_out_multi(s0.data(), srcs, 3, cnt * sizeof(float),
                         Datatype::f32, ReduceOp::sum, false);
    for (std::size_t i = 0; i < cnt; ++i)
      ASSERT_EQ(s0[i], 7.0f) << isa_name(tier) << " i=" << i;
  }
}

TEST(ReduceOutMulti, SingleSourceDegeneratesToCopy) {
  std::vector<std::int32_t> src(1000, 42), out(1000, 0);
  const void* srcs[] = {src.data()};
  yc::reduce_out_multi(out.data(), srcs, 1, 4000, Datatype::i32,
                       ReduceOp::sum, true);
  EXPECT_EQ(out, src);
}

TEST(ReduceOutMulti, U8StreamingStorePathIsExact) {
  // Regression: the u8 path used to drop the nt_store flag instead of
  // routing it through the dispatch table.
  for (yc::IsaTier tier : runnable_tiers()) {
    ScopedIsa scoped(tier);
    const std::size_t cnt = 100003;
    std::vector<std::uint8_t> a(cnt), b(cnt), out(cnt, 0);
    for (std::size_t i = 0; i < cnt; ++i) {
      a[i] = static_cast<std::uint8_t>(i * 31 + 7);
      b[i] = static_cast<std::uint8_t>(i * 17 + 3);
    }
    yc::reduce_out(out.data(), a.data(), b.data(), cnt, Datatype::u8,
                   ReduceOp::max, /*nt_store=*/true);
    for (std::size_t i = 0; i < cnt; ++i)
      ASSERT_EQ(out[i], std::max(a[i], b[i])) << isa_name(tier) << " " << i;
  }
}

}  // namespace
