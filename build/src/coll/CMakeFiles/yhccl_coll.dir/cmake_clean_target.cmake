file(REMOVE_RECURSE
  "libyhccl_coll.a"
)
