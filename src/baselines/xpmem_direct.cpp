// XPMEM-style shared-address-space collectives [Hashmi et al., IPDPS'18 /
// CCGRID'19]: every rank exposes its buffers and peers reduce or copy them
// in place — a true "zero-copy" design.
//
// Two properties the paper highlights are preserved:
//  * data movement uses memmove-threshold copies (NT stores only kick in
//    when a single copy exceeds the libc threshold, which for the
//    per-block copies of all-reduce means messages above ~p * 2 MB — the
//    late crossover visible in Fig. 15);
//  * reductions read remote buffers directly (no staging), which on real
//    multi-socket machines incurs the inter-NUMA traffic the paper calls
//    out.  The virtual topology here has no NUMA penalty, so that effect
//    is modelled in the netsim/DAV analyses instead.
//
// Requires an address space shared with the peers: the thread backend (the
// XPMEM analogue), since fork()ed siblings cannot dereference each other's
// private pointers.
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/kernels.hpp"
#include "yhccl/copy/reduce_kernels.hpp"

#include <unistd.h>

namespace yhccl::base {

namespace {

constexpr int kSendSlot = 0;
constexpr int kRecvSlot = 1;

/// Resolve a peer's published buffer to a directly-loadable pointer.
const std::byte* mapped(RankCtx& ctx, int peer, int slot) {
  const auto rb = ctx.remote_buffer(peer, slot);
  YHCCL_REQUIRE(rb.pid == getpid(),
                "xpmem baselines need a shared address space "
                "(use ThreadTeam)");
  return static_cast<const std::byte*>(rb.ptr);
}

struct Blocks {
  std::size_t total, B;
  std::size_t len(int b) const {
    const std::size_t start = static_cast<std::size_t>(b) * B;
    return start >= total ? 0 : std::min(B, total - start);
  }
  std::size_t off(int b) const { return static_cast<std::size_t>(b) * B; }
};

Blocks partition(std::size_t total, int p) {
  const std::size_t B = std::max(
      round_up(ceil_div(total, static_cast<std::size_t>(p)), kCacheline),
      kCacheline);
  return Blocks{total, B};
}

/// Reduce block `b` across every rank's send buffer into `dest`.  My own
/// buffer goes first: reduce_out_multi only supports `dest` aliasing
/// srcs[0], which is exactly the in-place (send == recv) case.
void reduce_block_direct(RankCtx& ctx, const Blocks& blk, int b,
                         std::byte* dest, Datatype d, ReduceOp op) {
  const std::size_t len = blk.len(b);
  if (len == 0) return;
  const void* srcs[rt::kMaxRanks];
  srcs[0] = mapped(ctx, ctx.rank(), kSendSlot) + blk.off(b);
  int idx = 1;
  for (int a = 0; a < ctx.nranks(); ++a)
    if (a != ctx.rank()) srcs[idx++] = mapped(ctx, a, kSendSlot) + blk.off(b);
  copy::reduce_out_multi(dest, srcs, ctx.nranks(), len, d, op,
                         /*nt_store=*/false);
}

}  // namespace

void xpmem_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                          std::size_t count, Datatype d, ReduceOp op) {
  coll::detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t B = count * dtype_size(d);
  if (p == 1) {
    copy::t_copy(recv, send, B);
    return;
  }
  const Blocks blk{B * static_cast<std::size_t>(p), B};
  ctx.publish_buffer(kSendSlot, send, blk.total);
  ctx.barrier();
  reduce_block_direct(ctx, blk, ctx.rank(), static_cast<std::byte*>(recv), d,
                      op);
  ctx.barrier();  // peers may still be reading my send buffer
}

void xpmem_allreduce(RankCtx& ctx, const void* send, void* recv,
                     std::size_t count, Datatype d, ReduceOp op) {
  coll::detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t total = count * dtype_size(d);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, send, total);
    return;
  }
  const Blocks blk = partition(total, p);
  ctx.publish_buffer(kSendSlot, send, total);
  ctx.publish_buffer(kRecvSlot, recv, total);
  ctx.barrier();
  // Phase 1: each rank reduces its block straight into its receive buffer.
  reduce_block_direct(ctx, blk, ctx.rank(), rb + blk.off(ctx.rank()), d, op);
  ctx.barrier();
  // Phase 2: gather the other blocks from the owners' receive buffers with
  // memmove-style copies of s/p bytes each.
  for (int b = 0; b < p; ++b) {
    if (b == ctx.rank()) continue;
    const std::size_t len = blk.len(b);
    if (len > 0)
      copy::memmove_model_copy(rb + blk.off(b),
                               mapped(ctx, b, kRecvSlot) + blk.off(b), len);
  }
  ctx.barrier();
}

void xpmem_reduce(RankCtx& ctx, const void* send, void* recv,
                  std::size_t count, Datatype d, ReduceOp op, int root) {
  coll::detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t total = count * dtype_size(d);
  if (p == 1) {
    copy::t_copy(recv, send, total);
    return;
  }
  const Blocks blk = partition(total, p);
  ctx.publish_buffer(kSendSlot, send, total);
  if (ctx.rank() == root) ctx.publish_buffer(kRecvSlot, recv, total);
  ctx.barrier();
  // The block owners reduce straight into the root's receive buffer.
  auto* root_rb = const_cast<std::byte*>(mapped(ctx, root, kRecvSlot));
  reduce_block_direct(ctx, blk, ctx.rank(), root_rb + blk.off(ctx.rank()), d,
                      op);
  ctx.barrier();
}

void xpmem_broadcast(RankCtx& ctx, void* buf, std::size_t count, Datatype d,
                     int root) {
  if (count == 0 || ctx.nranks() == 1) return;
  const std::size_t total = count * dtype_size(d);
  if (ctx.rank() == root) ctx.publish_buffer(kSendSlot, buf, total);
  ctx.barrier();
  if (ctx.rank() != root)
    copy::memmove_model_copy(buf, mapped(ctx, root, kSendSlot), total);
  ctx.barrier();
}

void xpmem_allgather(RankCtx& ctx, const void* send, void* recv,
                     std::size_t count, Datatype d) {
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t s = count * dtype_size(d);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, send, s);
    return;
  }
  ctx.publish_buffer(kSendSlot, send, s);
  ctx.barrier();
  for (int a = 0; a < p; ++a)
    copy::memmove_model_copy(rb + static_cast<std::size_t>(a) * s,
                             a == ctx.rank()
                                 ? static_cast<const std::byte*>(send)
                                 : mapped(ctx, a, kSendSlot),
                             s);
  ctx.barrier();
}

}  // namespace yhccl::base
