# Empty compiler generated dependencies file for fig18_cnn_training.
# This may be replaced when dependencies are built.
