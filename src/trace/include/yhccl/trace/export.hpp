// Exporters for the flight-recorder rings (docs/observability.md §3-§4):
//   * Harvest      — snapshot of every ring of a quiesced team
//   * chrome_json  — Chrome trace-event JSON (chrome://tracing / Perfetto),
//                    one pid per rank, built on the exact-int64 bench writer
//   * skew         — per-barrier arrival skew (max-minus-min rank arrival)
//                    rolled up per collective kind, for CollProfiler
//   * flight_json  — last-N-events-per-rank dump with the abort site/epoch
//
// Harvesting is parent-side only: call with no run() in flight (threads
// joined / children reaped), which is exactly when Team::run has returned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "yhccl/bench/json.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::trace {

/// What the aborted run reported, for the flight dump header (plain values
/// so the trace library stays independent of the runtime's fault types).
struct FlightContext {
  std::string fault = "no fault";  ///< describe_fault() one-liner
  int rank = -1;                   ///< faulting rank (-1 unknown)
  std::uint64_t epoch = 0;         ///< team epoch the fault was raised in
};

/// Per-collective-kind barrier-skew rollup (index = coll id; 0 = outside).
struct SkewRollup {
  struct Kind {
    std::uint64_t barriers = 0;  ///< node barriers with full-team stamps
    double skew_sum = 0;         ///< sum of per-barrier max-min arrival (s)
    double skew_max = 0;         ///< worst single barrier (s)
  };
  Kind by_coll[kMaxCollIds];
};

class Harvest {
 public:
  explicit Harvest(const TraceBuffer& buf);

  int nranks() const noexcept { return nranks_; }
  /// Ring i's retained records in push order; i == nranks() is the control
  /// ring (recover events).
  const std::vector<Rec>& ring(int i) const { return rings_.at(i); }
  std::size_t total_events() const noexcept;
  /// Ticks -> microseconds relative to the buffer's creation.
  double to_us(std::uint64_t ticks) const noexcept {
    return static_cast<double>(ticks - origin_) * 1e6 * sec_per_tick_;
  }
  double seconds_per_tick() const noexcept { return sec_per_tick_; }

  /// Chrome trace-event JSON: "M" process_name metadata per rank, "X"
  /// complete events for spans, "i" instants (markers become "_stall").
  bench::Json chrome_json() const;

  /// Arrival skew of every node-scope barrier all active ranks stamped
  /// (grouped by the per-rank barrier ordinal the spans carry).
  SkewRollup skew() const;

  /// Flight-recorder dump: the last `last_n` events of every rank plus the
  /// abort site (from the dying/surviving ranks' Phase::fault records).
  bench::Json flight_json(const FlightContext& fc,
                          std::size_t last_n = 64) const;

 private:
  int nranks_;
  std::uint64_t origin_;
  double sec_per_tick_;
  std::vector<std::vector<Rec>> rings_;
};

/// Schema check for an exported Chrome trace (the `trace_check` tool and
/// the CI trace leg).  Returns false and fills `err` on the first problem.
bool validate_chrome(const bench::Json& j, std::string* err = nullptr);
/// Same for a flight dump.
bool validate_flight(const bench::Json& j, std::string* err = nullptr);

}  // namespace yhccl::trace
