// Fig. 16a reproduction: single-node all-reduce scalability — fixed
// message, rank count swept.  The paper sweeps p = 2..64 with a 128 KB MA
// slice; the MA design overtakes the alternatives beyond a few ranks
// because its copy volume grows as 5p while DPML/two-copy designs grow as
// 7p/11p and XPMEM spends 5(p-1).
#include "bench_util.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const std::size_t bytes = static_cast<std::size_t>(
      (4u << 20) * bench_scale());
  const std::size_t count = bytes / 8;
  std::printf(
      "Fig. 16a — single-node all-reduce scalability (msg=%s, 128KB slice)\n",
      human_size(bytes).c_str());
  std::printf("%-6s %12s %12s %12s %12s %12s\n", "p", "YHCCL(us)", "DPML(x)",
              "RG(x)", "OpenMPI(x)", "XPMEM(x)");

  Session session("fig16a_scalability");
  for (int p : {2, 4, 8, 16}) {
    const int m = p >= 4 ? 2 : 1;
    auto& team = bench_team(p, m);
    RankBuffers bufs(p, bytes, bytes);
    coll::CollOpts yo;
    yo.slice_max = 128u << 10;  // the paper's Fig. 16a slice
    const auto arm = [&](const char* name, const CollArm& fn) {
      return measure_arm(team, session, "allreduce", name, bufs, fn, bytes)
          .time.median;
    };

    const double yhccl = arm(
        "YHCCL", [&](rt::RankCtx& c, const void* s, void* r, std::size_t) {
          coll::socket_ma_allreduce(c, s, r, count, Datatype::f64,
                                    ReduceOp::sum, yo);
        });
    const double dpml = arm(
        "DPML", [&](rt::RankCtx& c, const void* s, void* r, std::size_t) {
          base::dpml_allreduce(c, s, r, count, Datatype::f64, ReduceOp::sum);
        });
    const double rg = arm(
        "RG", [&](rt::RankCtx& c, const void* s, void* r, std::size_t) {
          base::rg_allreduce(c, s, r, count, Datatype::f64, ReduceOp::sum);
        });
    const double ompi = arm(
        "OpenMPI", [&](rt::RankCtx& c, const void* s, void* r, std::size_t) {
          base::ring_allreduce(c, s, r, count, Datatype::f64, ReduceOp::sum,
                               base::Transport::two_copy);
        });
    const double xp = arm(
        "XPMEM", [&](rt::RankCtx& c, const void* s, void* r, std::size_t) {
          base::xpmem_allreduce(c, s, r, count, Datatype::f64,
                                ReduceOp::sum);
        });
    std::printf("%-6d %12.1f %12.2f %12.2f %12.2f %12.2f\n", p, yhccl * 1e6,
                dpml / yhccl, rg / yhccl, ompi / yhccl, xp / yhccl);
  }
  session.write();
  std::printf(
      "\nNote: p > #cores oversubscribes this 2-core host; the paper's\n"
      "expected shape is YHCCL leading from p >= 8 and XPMEM closest at\n"
      "small p (its DAV 5s(p-1) < 5sp-s only by s).\n");
  return 0;
}
