file(REMOVE_RECURSE
  "libyhccl_baselines.a"
)
