#!/usr/bin/env python3
"""Reject raw atomics in the model-checked layers (docs/analysis.md §MC).

Every synchronization primitive in src/runtime and src/trace must be
declared as yhccl::mc::atomic<T> (and fences issued via YHCCL_MC_FENCE /
mc::fence) so that -DYHCCL_MC=ON builds can interpose the model checker.
A raw std::atomic, a <atomic>/<stdatomic.h> include, or a GCC
__atomic_*/__sync_* builtin in those trees silently escapes verification,
so this lint fails the build on any of them.

When the libclang Python bindings are available the scanner lexes each
file with clang and inspects real tokens (comments and string literals
can never trip it); otherwise it falls back to a self-contained scanner
that strips comments/literals textually.  Both paths apply the same
rules, so the fallback keeps CI and bare containers honest.

Suppress a single deliberate use with a trailing `// lint-atomics: allow`.

Usage: scripts/lint_atomics.py [--root REPO] [DIR ...]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SCAN_DIRS = ["src/runtime", "src/trace", "src/metrics"]
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc", ".cxx"}
ALLOW_MARK = "lint-atomics: allow"

RULES = [
    (
        re.compile(r"\bstd\s*::\s*atomic\b"),
        "raw std::atomic (declare it as yhccl::mc::atomic<T>)",
    ),
    (
        re.compile(r"\bstd\s*::\s*atomic_\w+"),
        "raw std:: atomic free function (use mc::fence / YHCCL_MC_FENCE)",
    ),
    (
        re.compile(r"\batomic_thread_fence\b|\batomic_signal_fence\b"),
        "raw atomic fence (use mc::fence / YHCCL_MC_FENCE)",
    ),
    (
        re.compile(r"\b__atomic_\w+"),
        "GCC __atomic_* builtin bypasses the model checker",
    ),
    (
        re.compile(r"\b__sync_\w+"),
        "legacy __sync_* builtin bypasses the model checker",
    ),
    (
        re.compile(r'#\s*include\s*[<"](atomic|stdatomic\.h)[>"]'),
        "include yhccl/mc/atomic.hpp instead of the raw atomics header",
    ),
]


def strip_comments_and_literals(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    line numbers survive.  Handles // and /* */, escapes inside literals,
    and leaves the `lint-atomics: allow` marker detectable per line (the
    caller re-checks the raw line for it)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def strip_with_libclang(path: pathlib.Path) -> str | None:
    """Rebuild the file's code text from clang's token stream (no comments,
    literal payloads blanked).  Returns None when libclang is unusable."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        tu = cindex.Index.create().parse(
            str(path),
            args=["-x", "c++", "-std=c++20", "-fsyntax-only", "-w"],
            options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD,
        )
    except Exception:
        return None
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = [" " * len(l) for l in text.split("\n")]
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.kind.name in ("COMMENT", "LITERAL"):
            continue
        loc = tok.location
        if loc.file is None or loc.file.name != str(path):
            continue
        row = loc.line - 1
        col = loc.column - 1
        spelling = tok.spelling
        if row >= len(lines):
            continue
        line = lines[row]
        lines[row] = line[:col] + spelling + line[col + len(spelling):]
    return "\n".join(lines)


def scan_file(path: pathlib.Path, use_libclang: bool) -> list[str]:
    raw_lines = path.read_text(encoding="utf-8", errors="replace").split("\n")
    code = strip_with_libclang(path) if use_libclang else None
    if code is None:
        code = strip_comments_and_literals(
            "\n".join(raw_lines)
        )
    findings = []
    for lineno, line in enumerate(code.split("\n"), start=1):
        raw = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        if ALLOW_MARK in raw:
            continue
        for pattern, why in RULES:
            if pattern.search(line):
                findings.append(f"{path}:{lineno}: {why}")
                break
    return findings


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: the script's parent repo)",
    )
    ap.add_argument(
        "--no-libclang",
        action="store_true",
        help="force the self-contained scanner",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="FILE",
        help="fail unless FILE (relative to --root) is in the scanned set; "
        "guards against sync-bearing files drifting out of the lint's reach",
    )
    ap.add_argument(
        "dirs",
        nargs="*",
        default=SCAN_DIRS,
        help=f"directories to scan, relative to --root (default: {SCAN_DIRS})",
    )
    args = ap.parse_args()

    use_libclang = not args.no_libclang
    try:
        from clang import cindex  # noqa: F401
    except Exception:
        use_libclang = False

    files = []
    for d in args.dirs:
        base = args.root / d
        if not base.is_dir():
            print(f"lint_atomics: missing directory {base}", file=sys.stderr)
            return 2
        files += sorted(
            p for p in base.rglob("*") if p.suffix in EXTENSIONS
        )

    scanned = {p.resolve() for p in files}
    missing = [
        r for r in args.require if (args.root / r).resolve() not in scanned
    ]
    if missing:
        for r in missing:
            print(
                f"lint_atomics: required file {r} is not covered by the "
                f"scan (dirs: {args.dirs})",
                file=sys.stderr,
            )
        return 2

    findings = []
    for f in files:
        findings += scan_file(f, use_libclang)

    mode = "libclang" if use_libclang else "textual"
    if findings:
        for f in findings:
            print(f)
        print(
            f"lint_atomics: {len(findings)} raw atomic use(s) in the "
            f"model-checked layers ({mode} scan of {len(files)} files)",
            file=sys.stderr,
        )
        return 1
    print(
        f"lint_atomics: OK ({mode} scan, {len(files)} files, "
        f"{len(RULES)} rules)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
