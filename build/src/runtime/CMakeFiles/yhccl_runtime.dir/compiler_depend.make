# Empty compiler generated dependencies file for yhccl_runtime.
# This may be replaced when dependencies are built.
