// Example: YHCCL on fork()-backed rank *processes* — the paper's actual
// deployment model (multiple MPI processes per node).  The same SPMD code
// from quickstart runs unchanged; buffers that must be visible to the
// host for validation come from the team's shared heap.
//
//   $ ./examples/process_ranks [nranks]
#include <cstdio>
#include <cstdlib>

#include "yhccl/coll/coll.hpp"
#include "yhccl/runtime/process_team.hpp"

using namespace yhccl;

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 4;
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = p >= 4 ? 2 : 1;
  rt::ProcessTeam team(cfg);

  const std::size_t count = 1 << 18;
  // Result area in shared memory so the parent can check it after the
  // child processes exit.
  auto* result = reinterpret_cast<double*>(
      team.shared_alloc(count * sizeof(double)));

  team.run([&](rt::RankCtx& ctx) {
    // Rank-private buffers: genuinely private — these live in the child
    // process's own address space, exactly like an MPI rank.
    std::vector<double> send(count, 1.0 + ctx.rank()), recv(count);
    coll::allreduce(ctx, send.data(), recv.data(), count, Datatype::f64,
                    ReduceOp::sum);
    if (ctx.rank() == 0)
      for (std::size_t i = 0; i < count; ++i) result[i] = recv[i];
    ctx.barrier();
  });

  const double expect = p * (p + 1) / 2.0;
  std::printf("process-backed allreduce over %d forked ranks: result[7] = "
              "%.1f (expected %.1f) -> %s\n",
              p, result[7], expect, result[7] == expect ? "OK" : "WRONG");
  return result[7] == expect ? 0 : 1;
}
