// Focused tests for the synchronization primitives: the sense-reversing
// central barrier, the dissemination barrier, spin-wait helpers, and the
// monotone step-flag encoding.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "yhccl/runtime/sync.hpp"
#include "yhccl/runtime/team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::rt;

namespace {

TEST(SpinWait, GeAndEqReturnOnceSatisfied) {
  // mc::atomic (== std::atomic outside model-checking builds) because the
  // spin helpers take the interposable type.
  mc::atomic<std::uint64_t> f{0};
  std::thread t([&] {
    for (int i = 1; i <= 5; ++i) f.store(i, std::memory_order_release);
  });
  spin_wait_ge(f, 3);
  EXPECT_GE(f.load(), 3u);
  t.join();
  spin_wait_eq(f, 5);
  EXPECT_EQ(f.load(), 5u);
}

TEST(StepValue, MonotoneAcrossSequencesAndSteps) {
  EXPECT_LT(RankCtx::step_value(1, 0), RankCtx::step_value(1, 1));
  EXPECT_LT(RankCtx::step_value(1, 0xffffffffull),
            RankCtx::step_value(2, 0));
  EXPECT_LT(RankCtx::step_value(7, 123), RankCtx::step_value(8, 0));
}

class BarrierStress : public ::testing::TestWithParam<int> {};

TEST_P(BarrierStress, CentralBarrierNeverReleasesEarly) {
  const int n = GetParam();
  auto state = std::make_unique<BarrierState>();
  barrier_init(*state, static_cast<std::uint32_t>(n));
  std::atomic<int> counter{0};
  std::atomic<bool> violated{false};
  constexpr int kIters = 1500;
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r)
    threads.emplace_back([&] {
      std::uint32_t sense = 0;
      for (int i = 0; i < kIters; ++i) {
        counter.fetch_add(1);
        barrier_arrive(*state, sense);
        if (counter.load() < (i + 1) * n) violated = true;
        barrier_arrive(*state, sense);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(counter.load(), kIters * n);
}

TEST_P(BarrierStress, DisseminationBarrierNeverReleasesEarly) {
  const int n = GetParam();
  auto state = std::make_unique<DisseminationBarrierState>();
  dissemination_init(*state, static_cast<std::uint32_t>(n));
  std::atomic<int> counter{0};
  std::atomic<bool> violated{false};
  constexpr int kIters = 1500;
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r)
    threads.emplace_back([&, r] {
      DisseminationToken tok;
      for (int i = 0; i < kIters; ++i) {
        counter.fetch_add(1);
        dissemination_arrive(*state, r, tok);
        if (counter.load() < (i + 1) * n) violated = true;
        dissemination_arrive(*state, r, tok);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(counter.load(), kIters * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BarrierStress,
                         ::testing::Values(1, 2, 3, 4, 7, 8),
                         [](const auto& i) {
                           return "n" + std::to_string(i.param);
                         });

TEST(DisseminationInit, AcceptsMaxRankCountRejectsOneOver) {
  auto state = std::make_unique<DisseminationBarrierState>();
  // kMaxBarrierRanks == 256 needs exactly kMaxRounds == 9 signal rounds
  // (ceil(log2(256)) == 8 fits, but the loop bound must still hold at the
  // boundary) — the init must accept 256 and reject 257, not index past
  // flags[round][].
  EXPECT_NO_THROW(dissemination_init(*state, kMaxBarrierRanks));
  EXPECT_THROW(dissemination_init(*state, kMaxBarrierRanks + 1), Error);
  EXPECT_THROW(dissemination_init(*state, 0), Error);
}

class BarrierWinnerRejoin : public ::testing::TestWithParam<int> {};

// At power-of-two rank counts the central barrier's arrived counter hits n
// exactly and the winner resets it; a winner that re-joins immediately (no
// intervening work) must block on the *new* sense, not sail through the
// epoch it just released.  A lost winner re-join shows up as a counter
// mismatch.
TEST_P(BarrierWinnerRejoin, ImmediateReJoinAtPow2Counts) {
  const int n = GetParam();
  auto state = std::make_unique<BarrierState>();
  barrier_init(*state, static_cast<std::uint32_t>(n));
  std::atomic<int> counter{0};
  std::atomic<bool> violated{false};
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r)
    threads.emplace_back([&] {
      std::uint32_t sense = 0;
      for (int i = 0; i < kIters; ++i) {
        counter.fetch_add(1);
        // Back-to-back arrivals: whichever rank wins the first epoch
        // re-joins the next with zero delay.
        barrier_arrive(*state, sense);
        if (counter.load() < (i + 1) * n) violated = true;
        barrier_arrive(*state, sense);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(counter.load(), kIters * n);
}

INSTANTIATE_TEST_SUITE_P(Pow2, BarrierWinnerRejoin,
                         ::testing::Values(2, 4, 8), [](const auto& i) {
                           return "n" + std::to_string(i.param);
                         });

TEST(PageLocks, SerializeSamePageAllowDifferentPages) {
  PageLockTable locks;
  locks.lock(0x1000);
  // A different page must not block.
  locks.lock(0x1000 + PageLockTable::kPageBytes * 3);
  locks.unlock(0x1000 + PageLockTable::kPageBytes * 3);
  // Contention on the same page from another thread resolves on unlock.
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    locks.lock(0x1fff);  // same 4K page as 0x1000
    acquired = true;
    locks.unlock(0x1fff);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  locks.unlock(0x1000);
  t.join();
  EXPECT_TRUE(acquired.load());
}

}  // namespace
