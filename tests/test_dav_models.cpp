// Validates the analytical DAV models (Tables 1-3) against the *measured*
// traffic of the instrumented implementations — the strongest evidence the
// algorithms move exactly the bytes the paper claims.
//
// Geometry is chosen divisible (block a multiple of the slice, p | s) so
// the impl:: formulas are byte-exact; the paper:: formulas must then agree
// within their constant bookkeeping terms.
#include <gtest/gtest.h>

#include <vector>

#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/model/dav_model.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using namespace yhccl::base;
namespace md = yhccl::model;
using test::cached_team;
using test::fill_buffer;

namespace {

constexpr std::size_t kSliceMax = 16u << 10;

CollOpts exact_opts() {
  CollOpts o;
  o.slice_max = kSliceMax;
  return o;
}

/// Run `fn` SPMD and return the measured per-node DAV total.
template <typename Fn>
std::uint64_t measure(rt::ThreadTeam& team, const Fn& fn) {
  team.run(fn);
  return team.total_dav().total();
}

struct Fixture {
  int p, m;
  std::size_t count;  // per-rank block elements (f64) for scatter shapes
  std::vector<std::vector<double>> send, recv;
  std::size_t B() const { return count * 8; }
  std::size_t total() const { return B() * p; }

  Fixture(int p_, int m_, std::size_t count_) : p(p_), m(m_), count(count_) {
    send.resize(p);
    recv.resize(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count * p);
      recv[r].resize(count * p);
      fill_buffer(send[r].data(), count * p, Datatype::f64, r, ReduceOp::sum);
    }
  }
};

TEST(DavModel, MaReduceScatterIsExactlyS3pMinus1) {
  for (auto [p, m] : {std::pair{2, 1}, {4, 1}, {8, 1}}) {
    Fixture f(p, m, 8192);  // B = 64 KiB = 4 slices of 16 KiB
    auto& team = cached_team(p, m);
    const auto o = exact_opts();
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      ma_reduce_scatter(ctx, f.send[ctx.rank()].data(),
                        f.recv[ctx.rank()].data(), f.count, Datatype::f64,
                        ReduceOp::sum, o);
    });
    EXPECT_EQ(dav, md::impl::ma_reduce_scatter(f.total(), p)) << "p=" << p;
  }
}

TEST(DavModel, SocketMaReduceScatterIsExactlyS3pPlus1) {
  // The fused socket-combination stage costs (m+1)(s/p) instead of the
  // pairwise chain's 3(m-1)(s/p): the total is s(3p+1) independent of m,
  // at or below the paper's s(3p+2m-3) for every m >= 2.
  for (auto [p, m] : {std::pair{4, 2}, {8, 2}, {8, 4}}) {
    Fixture f(p, m, 8192);
    auto& team = cached_team(p, m);
    const auto o = exact_opts();
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      socket_ma_reduce_scatter(ctx, f.send[ctx.rank()].data(),
                               f.recv[ctx.rank()].data(), f.count,
                               Datatype::f64, ReduceOp::sum, o);
    });
    EXPECT_EQ(dav, md::impl::socket_ma_reduce_scatter(f.total(), p, m))
        << "p=" << p << " m=" << m;
    EXPECT_LE(dav, md::paper::socket_ma_reduce_scatter(f.total(), p, m))
        << "p=" << p << " m=" << m;
  }
}

TEST(DavModel, MaAllreduceIsExactlyS5pMinus1) {
  for (int p : {2, 4, 8}) {
    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
      fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
    }
    auto& team = cached_team(p, 1);
    const auto o = exact_opts();
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      ma_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                   count, Datatype::f64, ReduceOp::sum, o);
    });
    EXPECT_EQ(dav, md::impl::ma_allreduce(count * 8, p)) << "p=" << p;
  }
}

TEST(DavModel, SocketMaAllreduceMatchesTable2) {
  for (auto [p, m] : {std::pair{4, 2}, {8, 2}, {8, 4}}) {
    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
      fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
    }
    auto& team = cached_team(p, m);
    const auto o = exact_opts();
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      socket_ma_allreduce(ctx, send[ctx.rank()].data(),
                          recv[ctx.rank()].data(), count, Datatype::f64,
                          ReduceOp::sum, o);
    });
    EXPECT_EQ(dav, md::impl::socket_ma_allreduce(count * 8, p, m));
    // Paper's Table 2 assumes a pairwise socket-combination chain
    // (s(5p+2m-3)); the fused kernel lands at s(5p+1), <= for m >= 2.
    EXPECT_LE(dav, md::paper::socket_ma_allreduce(count * 8, p, m));
  }
}

TEST(DavModel, MaReduceMatchesTable3) {
  for (int p : {2, 4, 8}) {
    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
      fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
    }
    auto& team = cached_team(p, 1);
    const auto o = exact_opts();
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      ma_reduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(), count,
                Datatype::f64, ReduceOp::sum, /*root=*/0, o);
    });
    EXPECT_EQ(dav, md::impl::ma_reduce(count * 8, p));
    EXPECT_EQ(dav, md::paper::ma_reduce(count * 8, p));
  }
}

TEST(DavModel, DpmlAllreduceMatchesFusedModelAndBeatsPaperTable) {
  for (int p : {2, 4, 8}) {
    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
      fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
    }
    auto& team = cached_team(p, 1);
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      dpml_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                     count, Datatype::f64, ReduceOp::sum);
    });
    const std::size_t s = count * 8;
    EXPECT_EQ(dav, md::impl::dpml_allreduce(s, p));
    // Paper's table says s(7p-1) (pairwise staged reduction + extra copy);
    // direct delivery plus the fused p-ary stage lands at s(5p+1).
    EXPECT_LE(dav, md::paper::dpml_allreduce(s, p));
  }
}

TEST(DavModel, RingMatchesTable1And2ExactlyWithSingleCopy) {
  for (int p : {2, 4, 8}) {
    Fixture f(p, 1, 8192);
    auto& team = cached_team(p, 1);
    const auto rs = measure(team, [&](rt::RankCtx& ctx) {
      ring_reduce_scatter(ctx, f.send[ctx.rank()].data(),
                          f.recv[ctx.rank()].data(), f.count, Datatype::f64,
                          ReduceOp::sum, Transport::single_copy);
    });
    EXPECT_EQ(rs, md::paper::ring_reduce_scatter(f.total(), p)) << p;

    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
    }
    const auto ar = measure(team, [&](rt::RankCtx& ctx) {
      ring_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                     count, Datatype::f64, ReduceOp::sum,
                     Transport::single_copy);
    });
    EXPECT_EQ(ar, md::paper::ring_allreduce(count * 8, p)) << p;
  }
}

TEST(DavModel, TwoCopyRingPaysTheEagerPenalty) {
  const int p = 4;
  Fixture f(p, 1, 8192);
  auto& team = cached_team(p, 1);
  const auto rs = measure(team, [&](rt::RankCtx& ctx) {
    ring_reduce_scatter(ctx, f.send[ctx.rank()].data(),
                        f.recv[ctx.rank()].data(), f.count, Datatype::f64,
                        ReduceOp::sum, Transport::two_copy);
  });
  EXPECT_EQ(rs, md::impl::ring_reduce_scatter_two_copy(f.total(), p));
}

TEST(DavModel, XpmemAllreduceMatchesHashmisModel) {
  for (int p : {2, 4, 8}) {
    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
    }
    auto& team = cached_team(p, 1);
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      xpmem_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                      count, Datatype::f64, ReduceOp::sum);
    });
    EXPECT_EQ(dav, md::impl::xpmem_allreduce(count * 8, p)) << p;
    // Hashmi's model (5s(p-1)) assumed a pairwise reduction loop; the
    // fused p-ary direct reduction moves s(3p-1).
    EXPECT_LE(dav, md::paper::xpmem_allreduce(count * 8, p)) << p;
  }
}

TEST(DavModel, PipelinedBroadcastAndAllgather) {
  const int p = 4;
  const std::size_t count = 65536;
  auto& team = cached_team(p, 1);
  std::vector<std::vector<double>> buf(p), recv(p);
  for (int r = 0; r < p; ++r) {
    buf[r].resize(count);
    recv[r].resize(count * p);
  }
  const auto o = exact_opts();
  const auto bc = measure(team, [&](rt::RankCtx& ctx) {
    pipelined_broadcast(ctx, buf[ctx.rank()].data(), count, Datatype::f64, 0,
                        o);
  });
  EXPECT_EQ(bc, md::impl::pipelined_broadcast(count * 8, p));
  const auto ag = measure(team, [&](rt::RankCtx& ctx) {
    pipelined_allgather(ctx, buf[ctx.rank()].data(), recv[ctx.rank()].data(),
                        count, Datatype::f64, o);
  });
  EXPECT_EQ(ag, md::impl::pipelined_allgather(count * 8, p));
}

TEST(DavModel, YhcclBeatsEveryTable1CompetitorFromP4) {
  const std::size_t s = 64u << 20;
  for (int p : {4, 8, 16, 32, 64}) {
    const int m = 2;
    const auto mine = md::paper::socket_ma_reduce_scatter(s, p, m);
    EXPECT_LT(mine, md::paper::ring_reduce_scatter(s, p)) << p;
    EXPECT_LT(mine, md::paper::dpml_reduce_scatter(s, p)) << p;
    EXPECT_LT(mine, md::paper::rabenseifner_reduce_scatter(s, p)) << p;
    // The ~40% saving over DPML the paper quotes (§2.2, §3.3).
    const double saving =
        1.0 - static_cast<double>(mine) /
                  static_cast<double>(md::paper::dpml_reduce_scatter(s, p));
    EXPECT_GT(saving, 0.3) << p;
  }
}

TEST(DavModel, NtSwitchPointReproducesSection54Numbers) {
  // The paper's worked §5.4 numbers plug the flat shm term p*Imax into the
  // numerator: NodeA (C=294912 KB, p=64, Imax=256 KB) -> 2176 KB, NodeB
  // (C=116736 KB, p=48, Imax=128 KB) -> 1152 KB.
  const auto node_a = copy::CacheConfig::node_a();
  EXPECT_EQ(md::nt_switch_point(node_a.available(64), 64,
                                64 * (256u << 10)),
            2176u << 10);
  const auto node_b = copy::CacheConfig::node_b();
  EXPECT_EQ(md::nt_switch_point(node_b.available(48), 48,
                                48 * (128u << 10)),
            1152u << 10);
  // The socket-aware working-set formula (W = 2sp + m*p*Imax) gives a
  // slightly earlier switch.
  EXPECT_LT(md::nt_switch_point_allreduce(node_a.available(64), 64, 2,
                                          256u << 10),
            2176u << 10);
}

TEST(DavModel, RgSeriesIsMonotoneInBranchAndBounded) {
  const std::size_t s = 1u << 20;
  for (int p : {8, 64}) {
    const auto k2 = md::paper::rg_allreduce(s, p, 2);
    const auto k4 = md::paper::rg_allreduce(s, p, 4);
    EXPECT_GT(k2, 2 * static_cast<std::uint64_t>(s));
    EXPECT_GT(k4, k2);  // wider trees copy more per level
    // RG moves more data than MA for any p >= 4 (paper's comparison).
    EXPECT_GT(k2, md::paper::ma_allreduce(s, p) / 2);
  }
}

TEST(DavModel, TimeFromDav) {
  EXPECT_DOUBLE_EQ(md::time_from_dav(1'000'000'000, 2e9), 0.5);
  EXPECT_DOUBLE_EQ(md::time_from_dav(123, 0), 0.0);
}

}  // namespace
