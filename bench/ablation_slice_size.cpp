// Ablation (ours): sensitivity of the MA all-reduce to the maximum slice
// size Imax.  The paper tunes Imax = 256 KB on NodeA / 128 KB on NodeB
// (§5.3): slices must be small enough that the p*I shared buffer stays
// cache-resident, but large enough to amortize the per-round
// synchronization.  Expect a U-shape with a flat optimum in the tens to
// hundreds of KB.
#include "bench_util.hpp"
#include "yhccl/coll/coll.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  const std::size_t bytes =
      static_cast<std::size_t>((8u << 20) * bench_scale());
  const std::size_t count = bytes / 8;
  RankBuffers bufs(p, bytes, bytes);

  std::printf("Ablation — MA all-reduce slice size (msg=%s, p=%d, m=%d)\n",
              human_size(bytes).c_str(), p, m);
  std::printf("%-10s %12s %12s\n", "Imax", "flat-MA(us)", "socket-MA(us)");
  Session session("ablation_slice_size");
  for (std::size_t imax = 4u << 10; imax <= 2u << 20; imax *= 2) {
    coll::CollOpts o;
    o.slice_max = imax;
    const double flat =
        measure_arm(
            team, session, "allreduce", "flat-MA@" + human_size(imax), bufs,
            [&](rt::RankCtx& c, const void* s, void* r, std::size_t) {
              coll::ma_allreduce(c, s, r, count, Datatype::f64,
                                 ReduceOp::sum, o);
            },
            bytes)
            .time.median;
    const double sock =
        measure_arm(
            team, session, "allreduce", "socket-MA@" + human_size(imax),
            bufs,
            [&](rt::RankCtx& c, const void* s, void* r, std::size_t) {
              coll::socket_ma_allreduce(c, s, r, count, Datatype::f64,
                                        ReduceOp::sum, o);
            },
            bytes)
            .time.median;
    std::printf("%-10s %12.1f %12.1f\n", human_size(imax).c_str(),
                flat * 1e6, sock * 1e6);
  }
  session.write();
  return 0;
}
