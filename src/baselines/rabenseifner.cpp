// Rabenseifner's algorithm [Thakur, Rabenseifner & Gropp 2005]:
// recursive-halving reduce-scatter followed by recursive-doubling
// allgather.  Logarithmic step count — the strongest send/recv baseline
// for small and medium messages (paper Figs. 9/11).
//
// Reduce-scatter requires a power-of-two rank count (the benchmarks use
// one); all-reduce handles any p with the standard fold: ranks beyond the
// largest power of two first combine into a partner, and receive the
// result back at the end.
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/kernels.hpp"
#include "yhccl/copy/reduce_kernels.hpp"

namespace yhccl::base {

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int floor_pow2(int v) {
  int r = 1;
  while (r * 2 <= v) r *= 2;
  return r;
}

struct Blocks {
  std::size_t total, B;
  std::size_t len(int b) const {
    const std::size_t start = static_cast<std::size_t>(b) * B;
    return start >= total ? 0 : std::min(B, total - start);
  }
  std::size_t off(int b) const { return static_cast<std::size_t>(b) * B; }
  /// Bytes covered by block range [lo, hi).
  std::size_t range_len(int lo, int hi) const {
    const std::size_t start = off(lo);
    if (start >= total) return 0;
    return std::min(off(hi), total) - start;
  }
};

/// Recursive-halving reduce-scatter over `pof2` virtual ranks.  `w` holds
/// this rank's working copy (total bytes) and ends with the completed
/// block `vr`.  `real` maps virtual to real rank ids.
template <typename RealFn>
void halving_rs(RankCtx& ctx, std::byte* w, std::byte* tmp, const Blocks& blk,
                int vr, int pof2, Datatype d, ReduceOp op, Transport t,
                const RealFn& real) {
  int lo = 0, hi = pof2;
  for (int dist = pof2 / 2; dist >= 1; dist /= 2) {
    const int partner = real(vr ^ dist);
    const int mid = lo + (hi - lo) / 2;
    int keep_lo, keep_hi, send_lo, send_hi;
    if (vr & dist) {  // my block lives in the upper half
      keep_lo = mid; keep_hi = hi; send_lo = lo; send_hi = mid;
    } else {
      keep_lo = lo; keep_hi = mid; send_lo = mid; send_hi = hi;
    }
    const std::size_t sn = blk.range_len(send_lo, send_hi);
    const std::size_t rn = blk.range_len(keep_lo, keep_hi);
    if (t == Transport::two_copy)
      ctx.sendrecv(partner, w + blk.off(send_lo), sn, partner, tmp, rn);
    else
      ctx.sendrecv_zc(partner, w + blk.off(send_lo), sn, partner, tmp, rn);
    if (rn > 0)
      copy::reduce_inplace(w + blk.off(keep_lo), tmp, rn, d, op);
    lo = keep_lo;
    hi = keep_hi;
  }
}

/// Recursive-doubling allgather of the completed blocks (inverse of the
/// halving pattern, so regions stay contiguous).
template <typename RealFn>
void doubling_ag(RankCtx& ctx, std::byte* w, const Blocks& blk, int vr,
                 int pof2, Transport t, const RealFn& real) {
  int lo = vr, hi = vr + 1;
  for (int dist = 1; dist < pof2; dist *= 2) {
    const int partner = real(vr ^ dist);
    int plo, phi;  // partner's current region mirrors mine across `dist`
    if (vr & dist) {
      plo = lo - dist;
      phi = lo;
    } else {
      plo = hi;
      phi = hi + dist;
    }
    const std::size_t sn = blk.range_len(lo, hi);
    const std::size_t rn = blk.range_len(plo, phi);
    if (t == Transport::two_copy)
      ctx.sendrecv(partner, w + blk.off(lo), sn, partner, w + blk.off(plo),
                   rn);
    else
      ctx.sendrecv_zc(partner, w + blk.off(lo), sn, partner,
                      w + blk.off(plo), rn);
    lo = std::min(lo, plo);
    hi = std::max(hi, phi);
  }
}

}  // namespace

void rabenseifner_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                                 std::size_t count, Datatype d, ReduceOp op,
                                 Transport t) {
  coll::detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t B = count * dtype_size(d);
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, B);
    return;
  }
  YHCCL_REQUIRE(is_pow2(p),
                "rabenseifner_reduce_scatter needs a power-of-two team");
  const std::size_t total = B * static_cast<std::size_t>(p);
  std::byte* w = tls_buffer(total + total / 2);
  std::byte* tmp = w + total;
  copy::t_copy(w, sb, total);  // private working copy
  const Blocks blk{total, B};
  halving_rs(ctx, w, tmp, blk, ctx.rank(), p, d, op, t,
             [](int v) { return v; });
  copy::t_copy(rb, w + blk.off(ctx.rank()), B);
}

void rabenseifner_allreduce(RankCtx& ctx, const void* send, void* recv,
                            std::size_t count, Datatype d, ReduceOp op,
                            Transport t) {
  coll::detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const int r = ctx.rank();
  const std::size_t total = count * dtype_size(d);
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, total);
    return;
  }
  const int pof2 = floor_pow2(p);
  const int rem = p - pof2;
  std::byte* tmp = tls_buffer(total);
  copy::t_copy(rb, sb, total);  // work in place in the receive buffer

  // Fold: the first 2*rem ranks pair up; evens hand their contribution to
  // the odd partner and sit out of the core exchange.
  int vr;  // virtual rank inside the pof2 group, or -1 if folded out
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      ctx.send(r + 1, rb, total);
      vr = -1;
    } else {
      ctx.recv(r - 1, tmp, total);
      copy::reduce_inplace(rb, tmp, total, d, op);
      vr = r / 2;
    }
  } else {
    vr = r - rem;
  }
  auto real = [&](int v) { return v < rem ? 2 * v + 1 : v + rem; };

  if (vr >= 0) {
    const std::size_t B = std::max(
        round_up(ceil_div(total, static_cast<std::size_t>(pof2)), kCacheline),
        kCacheline);
    const Blocks blk{total, B};
    halving_rs(ctx, rb, tmp, blk, vr, pof2, d, op, t, real);
    doubling_ag(ctx, rb, blk, vr, pof2, t, real);
  }
  // Unfold: odd partners return the finished result.
  if (r < 2 * rem) {
    if (r % 2 == 1)
      ctx.send(r - 1, rb, total);
    else
      ctx.recv(r + 1, rb, total);
  }
}

}  // namespace yhccl::base
