# Empty dependencies file for fig13_adaptive_bcast.
# This may be replaced when dependencies are built.
