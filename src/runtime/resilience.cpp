#include "yhccl/runtime/resilience.hpp"

#include <time.h>

#include <cerrno>
#include <cstdlib>

#include "yhccl/common/error.hpp"

namespace yhccl::rt {

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const char* why) {
  raise("YHCCL_RESILIENCE spec '" + spec + "': " + why +
        " (grammar: retries=N[:backoff=MS][:cap=MS][:seed=S][:degrade=K]"
        "[:quarantine=E])");
}

/// splitmix64 — the one-word PRNG the tuner's plan_mix64 also uses; good
/// enough jitter and trivially reproducible from (seed, attempt).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ResiliencePolicy ResiliencePolicy::parse(const std::string& spec) {
  ResiliencePolicy p;
  p.max_retries = 0;
  bool saw_retries = false;
  std::size_t pos = 0;
  while (pos != std::string::npos && pos < spec.size()) {
    const auto eq = spec.find('=', pos);
    if (eq == std::string::npos) bad_spec(spec, "option without '='");
    const std::string key = spec.substr(pos, eq - pos);
    const auto val_end = spec.find(':', eq + 1);
    const std::string val = spec.substr(
        eq + 1, val_end == std::string::npos ? std::string::npos
                                             : val_end - (eq + 1));
    char* end = nullptr;
    errno = 0;
    const double num = std::strtod(val.c_str(), &end);
    if (val.empty() || end == nullptr || *end != '\0' || errno != 0)
      bad_spec(spec, "option value is not a number");
    if (key == "retries") {
      if (num < 0) bad_spec(spec, "retries must be >= 0");
      p.max_retries = static_cast<int>(num);
      saw_retries = true;
    } else if (key == "backoff") {
      if (num < 0) bad_spec(spec, "backoff must be >= 0");
      p.backoff_ms = num;
    } else if (key == "cap") {
      if (num < 0) bad_spec(spec, "cap must be >= 0");
      p.backoff_cap_ms = num;
    } else if (key == "seed") {
      p.seed = static_cast<std::uint64_t>(num);
    } else if (key == "degrade") {
      if (num < 1) bad_spec(spec, "degrade must be >= 1");
      p.degrade_after = static_cast<int>(num);
    } else if (key == "quarantine") {
      if (num < 1) bad_spec(spec, "quarantine must be >= 1");
      p.quarantine_epochs = static_cast<std::uint64_t>(num);
    } else {
      bad_spec(spec, "unknown option key");
    }
    pos = val_end == std::string::npos ? std::string::npos : val_end + 1;
  }
  if (!saw_retries) bad_spec(spec, "missing retries=N");
  return p;
}

ResiliencePolicy ResiliencePolicy::from_env() {
  const char* e = std::getenv("YHCCL_RESILIENCE");
  if (e == nullptr || *e == '\0') {
    ResiliencePolicy p;
    p.max_retries = 0;
    return p;
  }
  return parse(e);
}

ResiliencePolicy ResiliencePolicy::resolved() const {
  if (max_retries >= 0) return *this;
  ResiliencePolicy env = from_env();
  // Explicit non-default knobs on the config side win over the env's
  // defaults; only the retry count itself was deferred.
  ResiliencePolicy p = *this;
  p.max_retries = env.max_retries;
  if (env.max_retries > 0) {
    p.backoff_ms = env.backoff_ms;
    p.backoff_cap_ms = env.backoff_cap_ms;
    p.seed = env.seed;
    p.degrade_after = env.degrade_after;
    p.quarantine_epochs = env.quarantine_epochs;
  }
  return p;
}

double resilience_backoff_ms(const ResiliencePolicy& p, int attempt) noexcept {
  if (p.backoff_ms <= 0) return 0;
  double ms = p.backoff_ms;
  for (int i = 0; i < attempt && ms < p.backoff_cap_ms; ++i) ms *= 2;
  if (ms > p.backoff_cap_ms) ms = p.backoff_cap_ms;
  const std::uint64_t r =
      mix64(p.seed ^ static_cast<std::uint64_t>(attempt));
  const double u =
      static_cast<double>(r >> 11) / static_cast<double>(1ull << 53);
  return ms * (0.5 + 0.5 * u);
}

void resilience_backoff_sleep(const ResiliencePolicy& p,
                              int attempt) noexcept {
  const double ms = resilience_backoff_ms(p, attempt);
  if (ms <= 0) return;
  const auto ns = static_cast<long long>(ms * 1e6);
  timespec ts{static_cast<time_t>(ns / 1'000'000'000),
              static_cast<long>(ns % 1'000'000'000)};
  nanosleep(&ts, nullptr);
}

}  // namespace yhccl::rt
