file(REMOVE_RECURSE
  "CMakeFiles/test_stress_mixed.dir/test_stress_mixed.cpp.o"
  "CMakeFiles/test_stress_mixed.dir/test_stress_mixed.cpp.o.d"
  "test_stress_mixed"
  "test_stress_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
