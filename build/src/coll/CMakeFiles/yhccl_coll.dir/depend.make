# Empty dependencies file for yhccl_coll.
# This may be replaced when dependencies are built.
