// YHCCL public collective API (the paper's contribution).
//
// Generic entry points (allreduce, reduce, reduce_scatter, broadcast,
// allgather) pick an algorithm per the paper's switching rules (§5.1):
// two-level DPML for small messages, socket-aware movement-avoiding (MA)
// reduction otherwise, flat MA when the topology has one socket.  Every
// slice copy goes through the adaptive non-temporal policy (§4) unless the
// caller forces a policy arm for experiments.
//
// Buffer semantics follow MPI:
//   reduce_scatter — `send` holds nranks*count elements; rank i receives
//                    the reduced block i (count elements) in `recv`.
//   allreduce      — `send`/`recv` hold count elements on every rank.
//   reduce         — like allreduce but only `root` receives (recv may be
//                    null elsewhere).
//   broadcast      — `buf` holds count elements; root's contents end up in
//                    every rank's buf.
//   allgather      — `send` holds count elements; `recv` (nranks*count)
//                    receives every rank's block in rank order.
//
// All ranks of a team must call each collective with matching arguments
// (same count/dtype/op/root/options), in the same order.
#pragma once

#include <cstddef>

#include "yhccl/common/types.hpp"
#include "yhccl/copy/policy.hpp"
#include "yhccl/runtime/team.hpp"

namespace yhccl::coll {

using rt::RankCtx;

enum class Algorithm : int {
  automatic,        ///< paper §5.1 switching rules (tuner-eligible)
  ma_flat,          ///< movement-avoiding reduction, single level (§3.3)
  ma_socket_aware,  ///< two-level socket-aware MA (§3.3, Fig. 7)
  dpml_two_level,   ///< hierarchical parallel reduction for small messages
  pipelined,        ///< sliced pipeline (broadcast/allgather only, §3.4)
};

constexpr const char* algorithm_name(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::automatic: return "auto";
    case Algorithm::ma_flat: return "ma";
    case Algorithm::ma_socket_aware: return "socket-ma";
    case Algorithm::dpml_two_level: return "dpml-2l";
    case Algorithm::pipelined: return "pipelined";
  }
  return "?";
}

struct CollOpts {
  copy::CopyPolicy policy = copy::CopyPolicy::adaptive;
  Algorithm algorithm = Algorithm::automatic;
  std::size_t slice_max = 256u << 10;  ///< Imax (256 KB on NodeA, §5.3)
  std::size_t slice_min = kCacheline;  ///< Imin = cache line (§5.1)
  /// Below this message size the reduction collectives switch to the
  /// two-level DPML algorithm (§5.1: "e.g. s <= 256 KB").
  std::size_t small_msg_threshold = 256u << 10;
  /// Per-round chunk (bytes of each ownership block) for the DPML-style
  /// parallel reduction; the paper tunes this to small values (8 KB on
  /// NodeA, §5.3).  Clamped to the available scratch automatically.
  std::size_t dpml_chunk = 32u << 10;
  /// Force the DPML algorithm to ignore the socket hierarchy (this is the
  /// paper's original single-level DPML baseline [13]).
  bool dpml_flat = false;
};

// ---- generic, algorithm-switching entry points ----------------------------

void reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                    std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts = {});
void allreduce(RankCtx& ctx, const void* send, void* recv, std::size_t count,
               Datatype d, ReduceOp op, const CollOpts& opts = {});
void reduce(RankCtx& ctx, const void* send, void* recv, std::size_t count,
            Datatype d, ReduceOp op, int root, const CollOpts& opts = {});
void broadcast(RankCtx& ctx, void* buf, std::size_t count, Datatype d,
               int root, const CollOpts& opts = {});
void allgather(RankCtx& ctx, const void* send, void* recv, std::size_t count,
               Datatype d, const CollOpts& opts = {});

/// The switching rule itself (exposed for tests/benches).
Algorithm choose_reduction_algorithm(const RankCtx& ctx,
                                     std::size_t msg_bytes,
                                     const CollOpts& opts);

// ---- explicit algorithm arms (benchmarks compare these directly) ----------

void ma_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                       std::size_t count, Datatype d, ReduceOp op,
                       const CollOpts& opts = {});
void ma_allreduce(RankCtx& ctx, const void* send, void* recv,
                  std::size_t count, Datatype d, ReduceOp op,
                  const CollOpts& opts = {});
void ma_reduce(RankCtx& ctx, const void* send, void* recv, std::size_t count,
               Datatype d, ReduceOp op, int root, const CollOpts& opts = {});

void socket_ma_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                              std::size_t count, Datatype d, ReduceOp op,
                              const CollOpts& opts = {});
void socket_ma_allreduce(RankCtx& ctx, const void* send, void* recv,
                         std::size_t count, Datatype d, ReduceOp op,
                         const CollOpts& opts = {});
void socket_ma_reduce(RankCtx& ctx, const void* send, void* recv,
                      std::size_t count, Datatype d, ReduceOp op, int root,
                      const CollOpts& opts = {});

void dpml_two_level_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                                   std::size_t count, Datatype d, ReduceOp op,
                                   const CollOpts& opts = {});
void dpml_two_level_allreduce(RankCtx& ctx, const void* send, void* recv,
                              std::size_t count, Datatype d, ReduceOp op,
                              const CollOpts& opts = {});
void dpml_two_level_reduce(RankCtx& ctx, const void* send, void* recv,
                           std::size_t count, Datatype d, ReduceOp op,
                           int root, const CollOpts& opts = {});

void pipelined_broadcast(RankCtx& ctx, void* buf, std::size_t count,
                         Datatype d, int root, const CollOpts& opts = {});
void pipelined_allgather(RankCtx& ctx, const void* send, void* recv,
                         std::size_t count, Datatype d,
                         const CollOpts& opts = {});

}  // namespace yhccl::coll
