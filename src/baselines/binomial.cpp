// Binomial-tree broadcast and reduce over point-to-point messages — the
// classic MPICH algorithms for small messages (log2(p) rounds).  These
// complete the baseline set: pipelined/shared-memory designs win large
// messages on bandwidth, binomial trees win small ones on latency.
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/kernels.hpp"
#include "yhccl/copy/reduce_kernels.hpp"

namespace yhccl::base {

namespace {

void send_t(RankCtx& ctx, int dst, const void* p, std::size_t n,
            Transport t) {
  if (t == Transport::two_copy)
    ctx.send(dst, p, n);
  else
    ctx.send_zc(dst, p, n);
}

void recv_t(RankCtx& ctx, int src, void* p, std::size_t n, Transport t) {
  if (t == Transport::two_copy)
    ctx.recv(src, p, n);
  else
    ctx.recv_zc(src, p, n);
}

}  // namespace

void binomial_broadcast(RankCtx& ctx, void* buf, std::size_t count,
                        Datatype d, int root, Transport t) {
  if (count == 0 || ctx.nranks() == 1) return;
  const int p = ctx.nranks();
  const std::size_t n = count * dtype_size(d);
  const int vr = (ctx.rank() - root + p) % p;

  // Receive phase: the lowest set bit of my virtual rank names the round
  // in which my parent (vr with that bit cleared) sends to me.
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      recv_t(ctx, (vr - mask + root) % p, buf, n, t);
      break;
    }
    mask <<= 1;
  }
  // Forward phase: peel the mask back down, sending to each child.
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) send_t(ctx, (vr + mask + root) % p, buf, n, t);
    mask >>= 1;
  }
}

void binomial_reduce(RankCtx& ctx, const void* send, void* recv,
                     std::size_t count, Datatype d, ReduceOp op, int root,
                     Transport t) {
  coll::detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t n = count * dtype_size(d);
  if (p == 1) {
    copy::t_copy(recv, send, n);
    return;
  }
  const int vr = (ctx.rank() - root + p) % p;
  // Accumulate in the root's receive buffer; other ranks use private
  // working storage.
  std::byte* acc = vr == 0 ? static_cast<std::byte*>(recv)
                           : tls_buffer(2 * n);
  std::byte* tmp = vr == 0 ? tls_buffer(n) : acc + n;
  copy::t_copy(acc, send, n);

  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vr & mask) == 0) {
      const int child = vr | mask;
      if (child < p) {
        recv_t(ctx, (child + root) % p, tmp, n, t);
        copy::reduce_inplace(acc, tmp, n, d, op);
      }
    } else {
      send_t(ctx, ((vr & ~mask) + root) % p, acc, n, t);
      break;
    }
  }
}

}  // namespace yhccl::base
