file(REMOVE_RECURSE
  "CMakeFiles/test_vcoll.dir/test_vcoll.cpp.o"
  "CMakeFiles/test_vcoll.dir/test_vcoll.cpp.o.d"
  "test_vcoll"
  "test_vcoll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcoll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
