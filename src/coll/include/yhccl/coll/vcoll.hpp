// Variable-count ("v") collectives: MPI_Allgatherv / MPI_Reduce_scatter /
// MPI_Scatterv / MPI_Gatherv equivalents.  Real applications (AMR codes,
// graph partitioners) almost always need these — per-rank contributions
// are uneven — and they stress the slicing machinery with ragged,
// possibly zero-length blocks.
//
// `counts` is an nranks-sized array of per-rank element counts, identical
// on every rank.  Displacements are implicit (packed in rank order), like
// the common MPI usage with prefix-sum displs.
//
// reduce_scatterv uses a variable-block movement-avoiding schedule: the
// same copy-minimal slice rotation as §3.2, with ownership blocks of
// different sizes — rank r's reduction tree still copies exactly one
// slice per round into shared memory.
#pragma once

#include "yhccl/coll/coll.hpp"

namespace yhccl::coll {

/// recv must hold sum(counts) elements on every rank; rank r contributes
/// `counts[r]` elements from send.
void allgatherv(RankCtx& ctx, const void* send, void* recv,
                const std::size_t* counts, Datatype d,
                const CollOpts& opts = {});

/// send holds sum(counts) elements on every rank; rank r receives the
/// reduction of its `counts[r]`-element block in recv.
void reduce_scatterv(RankCtx& ctx, const void* send, void* recv,
                     const std::size_t* counts, Datatype d, ReduceOp op,
                     const CollOpts& opts = {});

/// Root's send holds sum(counts) elements; rank r receives counts[r].
void scatterv(RankCtx& ctx, const void* send, void* recv,
              const std::size_t* counts, Datatype d, int root,
              const CollOpts& opts = {});

/// Rank r contributes counts[r] elements; root's recv holds sum(counts).
void gatherv(RankCtx& ctx, const void* send, void* recv,
             const std::size_t* counts, Datatype d, int root,
             const CollOpts& opts = {});

}  // namespace yhccl::coll
