#include "yhccl/runtime/thread_team.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace yhccl::rt {

void ThreadTeam::run_ranks(const std::function<void(int)>& wrapped) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks()));
  std::exception_ptr first_error;
  std::mutex error_mu;

  for (int r = 0; r < nranks(); ++r) {
    threads.emplace_back([&, r] {
      try {
        wrapped(r);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace yhccl::rt
