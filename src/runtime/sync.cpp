#include "yhccl/runtime/sync.hpp"

#include <immintrin.h>
#include <sched.h>

#include "yhccl/common/error.hpp"
#include "yhccl/common/time.hpp"

namespace yhccl::rt {

namespace detail {

void cpu_relax_and_maybe_yield(unsigned& spins) noexcept {
  // A short pause-loop burst keeps latency low when the partner runs on
  // another core; yielding afterwards keeps oversubscribed teams live.
  if (++spins < 64) {
    _mm_pause();
    return;
  }
  spins = 0;
  sched_yield();
}

}  // namespace detail

void SpinGuard::relax() {
  if (++spins_ < 64) {
    _mm_pause();
    return;
  }
  spins_ = 0;
  sched_yield();
  // The watchdog check is amortized: wall-clock reads only every 256
  // yields, so the fast path stays cheap.
  if (++yields_ < 256) return;
  yields_ = 0;
  const double timeout = sync_timeout();
  if (timeout <= 0) return;
  const double now = wall_seconds();
  if (deadline_ < 0) {
    deadline_ = now + timeout;
    return;
  }
  if (now >= deadline_)
    raise(std::string(what_) +
          " exceeded the sync timeout — a peer rank is dead or the "
          "collective call sequence diverged");
}

}  // namespace yhccl::rt
