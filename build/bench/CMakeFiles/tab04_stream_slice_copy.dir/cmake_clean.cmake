file(REMOVE_RECURSE
  "CMakeFiles/tab04_stream_slice_copy.dir/tab04_stream_slice_copy.cpp.o"
  "CMakeFiles/tab04_stream_slice_copy.dir/tab04_stream_slice_copy.cpp.o.d"
  "tab04_stream_slice_copy"
  "tab04_stream_slice_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_stream_slice_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
