# Empty compiler generated dependencies file for tab04_stream_slice_copy.
# This may be replaced when dependencies are built.
