#include "yhccl/runtime/team.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <numeric>

#include "yhccl/analysis/hb.hpp"
#include "yhccl/common/error.hpp"
#include "yhccl/common/fs.hpp"
#include "yhccl/common/time.hpp"
#include "yhccl/copy/kernels.hpp"
#include "yhccl/trace/export.hpp"

namespace yhccl::rt {

namespace {
constexpr std::size_t kPageAlign = 4096;

/// Satellite route into the watchdog: TeamConfig wins, then
/// $YHCCL_SYNC_TIMEOUT (strictly validated), else leave the process-wide
/// setting alone.
void apply_sync_timeout(const TeamConfig& cfg) {
  if (cfg.sync_timeout >= 0) {
    set_sync_timeout(cfg.sync_timeout);
    return;
  }
  const char* e = std::getenv("YHCCL_SYNC_TIMEOUT");
  if (e == nullptr || *e == '\0') return;
  char* end = nullptr;
  errno = 0;
  const double seconds = std::strtod(e, &end);
  YHCCL_REQUIRE(end != nullptr && *end == '\0' && errno == 0,
                "YHCCL_SYNC_TIMEOUT is not a number (seconds)");
  set_sync_timeout(seconds);
}

bool want_hb_checker(const TeamConfig& cfg) {
  switch (cfg.hb_check) {
    case HbMode::off: return false;
    case HbMode::on: return true;
    case HbMode::env: return analysis::hb_env_enabled();
  }
  return false;
}

/// Installs the checker context for the duration of one rank function and
/// raises if that run recorded new happens-before violations.
class HbRunScope {
 public:
  HbRunScope(analysis::HbChecker* chk, int rank) noexcept : chk_(chk) {
    if (chk_ != nullptr) {
      races_before_ = chk_->races();
      analysis::hb_set_context(chk_, rank);
    }
  }
  ~HbRunScope() { analysis::hb_set_context(nullptr, 0); }
  HbRunScope(const HbRunScope&) = delete;
  HbRunScope& operator=(const HbRunScope&) = delete;

  /// Call on the success path only (failing ranks already throw).
  void check() const {
    if (chk_ != nullptr && chk_->races() > races_before_)
      raise("hb checker: " + chk_->first_report());
  }

 private:
  analysis::HbChecker* chk_;
  std::uint64_t races_before_ = 0;
};

}  // namespace

Team::Team(TeamConfig cfg) : cfg_(cfg), topo_(cfg.nranks, cfg.nsockets) {
  YHCCL_REQUIRE(cfg_.nranks >= 1 && cfg_.nranks <= kMaxRanks,
                "nranks out of range");
  YHCCL_REQUIRE(cfg_.nsockets >= 1 && cfg_.nsockets <= kMaxSockets,
                "nsockets out of range");
  YHCCL_REQUIRE(cfg_.chunk_bytes >= 256, "pt2pt chunk too small");
  apply_sync_timeout(cfg_);
  fault_plan_ = FaultPlan::from_env();
  resilience_ = cfg_.resilience.resolved();
  nranks_ = cfg_.nranks;
  active_.resize(static_cast<std::size_t>(nranks_));
  std::iota(active_.begin(), active_.end(), 0);

  // All layout arithmetic below is overflow-checked: these sizes multiply
  // user-controlled knobs, and a silent wrap would map a too-small region
  // that every later bounds check trusts.
  const std::size_t p = static_cast<std::size_t>(cfg_.nranks);
  const std::size_t nchan = checked_mul(p, p, "channel count");
  const std::size_t chan_data =
      checked_mul(FifoChannel::kSlots, cfg_.chunk_bytes, "channel data");

  bool with_hb = want_hb_checker(cfg_);
  if (with_hb && cfg_.nranks > analysis::HbChecker::kMaxHbRanks) {
    std::fprintf(stderr,
                 "[yhccl hb] warning: team of %d ranks exceeds the "
                 "checker's %d-rank model; running unchecked\n",
                 cfg_.nranks, analysis::HbChecker::kMaxHbRanks);
    with_hb = false;
  }
  // The checker shadows the two regions collective data flows through:
  // the scratch arena (slice buffers) and the persistent shared heap.
  const std::size_t hb_cells =
      analysis::HbChecker::ncells_for(cfg_.scratch_bytes) +
      analysis::HbChecker::ncells_for(cfg_.shared_heap_bytes);
  const std::size_t hb_bytes =
      with_hb ? analysis::HbChecker::required_bytes(hb_cells) : 0;

  // Phase tracer: rings live in the same shared mapping so fork()ed ranks'
  // records survive their exit and the parent harvests them after reaping.
  trace_mode_ = trace::resolve_mode(cfg_.trace);
  const std::uint32_t trace_slots =
      trace_mode_ == trace::Mode::off ? 0 : trace::slots_from_env();
  const std::size_t trace_bytes =
      trace_mode_ == trace::Mode::off
          ? 0
          : trace::TraceBuffer::required_bytes(cfg_.nranks, trace_slots);

  // Auto-tuner plan cache: one shared table per team so every rank of both
  // backends resolves collectives to the same cached plan (docs/tuning.md).
  tune_mode_ = resolve_tune_mode(cfg_.tune);
  plan_sig_ = rt::plan_signature(topo_, cfg_.cache);
  const std::size_t plan_bytes =
      tune_mode_ == TuneMode::off ? 0
                                  : PlanRegistry::required_bytes(kPlanSlots);

  // Always-on metrics registry: per-rank counter/histogram slots in the
  // shared mapping, live-readable by the serve-mode sampler and yhccl_top
  // (docs/observability.md §6).  Off by default — no section is mapped.
  metrics_mode_ = metrics::resolve_mode(cfg_.metrics);
  const std::size_t metrics_bytes =
      metrics_mode_ == metrics::Mode::off
          ? 0
          : metrics::MetricsBuffer::required_bytes(cfg_.nranks);

  const auto section = [](std::size_t off, std::size_t bytes) {
    return checked_round_up(checked_add(off, bytes, "section size"),
                            kPageAlign, "section alignment");
  };
  std::size_t off = section(0, sizeof(TeamShared));
  off_channels_ = off;
  off = section(off, checked_mul(nchan, sizeof(FifoChannel), "channels"));
  off_chan_data_ = off;
  off = section(off, checked_mul(nchan, chan_data, "channel arenas"));
  off_heap_ = off;
  off = section(off, cfg_.shared_heap_bytes);
  off_scratch_ = off;
  off = section(off, cfg_.scratch_bytes);
  off_hb_ = off;
  off = section(off, hb_bytes);
  off_trace_ = off;
  off = section(off, trace_bytes);
  off_plans_ = off;
  off = section(off, plan_bytes);
  off_metrics_ = off;
  off = section(off, metrics_bytes);

  region_ = ShmRegion::create_anonymous(off);
  shared_ = new (region_.data()) TeamShared();
  barrier_init(shared_->node_barrier, static_cast<std::uint32_t>(p));
  for (int s = 0; s < cfg_.nsockets; ++s)
    barrier_init(shared_->socket_barrier[s],
                 static_cast<std::uint32_t>(topo_.socket_size(s)));
  auto* chans = reinterpret_cast<FifoChannel*>(region_.data() + off_channels_);
  for (std::size_t c = 0; c < nchan; ++c) new (chans + c) FifoChannel();

  if (with_hb) {
    hb_ = analysis::HbChecker::create(region_.data() + off_hb_, hb_bytes,
                                      cfg_.nranks, hb_cells);
    hb_->add_region(region_.data() + off_scratch_, cfg_.scratch_bytes,
                    "coll-scratch");
    hb_->add_region(region_.data() + off_heap_, cfg_.shared_heap_bytes,
                    "shared-heap");
  }
  if (trace_mode_ != trace::Mode::off)
    trace_ = trace::TraceBuffer::create(region_.data() + off_trace_,
                                        trace_bytes, cfg_.nranks, trace_slots,
                                        trace_mode_);
  if (plan_bytes != 0)
    plans_ = PlanRegistry::create(region_.data() + off_plans_, plan_bytes,
                                  kPlanSlots, tune_eps_mille_from_env());
  if (metrics_bytes != 0) {
    metrics_ = metrics::MetricsBuffer::create(region_.data() + off_metrics_,
                                              metrics_bytes, cfg_.nranks,
                                              metrics_mode_);
    metrics_fold_team();
  }

  stamp_sections();

  // Register the corrupt@<section> injection targets: pointers at the
  // *validated* control words of each shared section, so a flipped byte
  // always lands on state some integrity check covers (fault.hpp).
  const auto add_target = [this](const char* name, void* base,
                                 std::size_t bytes) {
    if (n_corrupt_targets_ >= kMaxCorruptTargets) return;
    corrupt_targets_[n_corrupt_targets_++] =
        CorruptTarget{name, static_cast<unsigned char*>(base), bytes};
  };
  add_target("arena", shared_->sections, sizeof(shared_->sections));
  if (plans_ != nullptr)
    add_target("plans", &plans_->slot(0).plan, sizeof(std::uint64_t));
  add_target("fifo", &channel(0, cfg_.nranks > 1 ? 1 : 0).head,
             sizeof(std::uint64_t));

  // serve mode: live shm mirror for external yhccl_top attach, plus the
  // sampler thread that exports snapshots and runs the straggler sweep.
  if (metrics_ != nullptr && metrics_mode_ == metrics::Mode::serve) {
    try {
      mirror_ = ShmRegion::create_named(metrics::mirror_shm_name(getpid()),
                                        metrics::kMirrorBytes);
    } catch (...) {
      // A second serve-mode team in this process: the first team owns the
      // per-pid mirror name; this one still samples and exports files.
    }
    sampler_ = std::make_unique<metrics::Sampler>(
        metrics::interval_ms_from_env(), [this] { metrics_tick(); });
  }
}

Team::~Team() {
  // The sampler stops first (its final synchronous tick refreshes the live
  // export once more), then the parent folds its stats and leaves a final
  // numbered snapshot behind when $YHCCL_METRICS_DIR is set.
  if (sampler_ != nullptr) sampler_->stop();
  sampler_.reset();
  if (metrics_ != nullptr) {
    try {
      metrics_fold_team();
      metrics_export(/*live=*/false);
    } catch (...) {
      // Destructor: exports are best-effort, never a crash on teardown.
    }
  }

  // Convenience export: with $YHCCL_TRACE_DIR set, every traced team leaves
  // a Chrome-trace JSON behind without the app calling the exporter itself.
  if (trace_ == nullptr) return;
  const char* dir = trace::trace_dir();
  if (dir == nullptr) return;
  try {
    trace::Harvest h(*trace_);
    if (h.total_events() == 0) return;
    if (!ensure_dir_warn_once(dir, "YHCCL_TRACE_DIR", trace_dir_warned_))
      return;
    const std::string path = std::string(dir) + "/yhccl_trace_" +
                             std::to_string(getpid()) + ".json";
    std::ofstream out(path);
    if (out) out << h.chrome_json().dump(1) << '\n';
  } catch (...) {
    // Destructor: a full trace is best-effort, never a crash on teardown.
  }
}

void Team::flight_dump() {
  if (trace_ == nullptr || flight_dumped_) return;
  const FaultInfo f = last_fault();
  if (f.kind == FaultKind::none) return;
  flight_dumped_ = true;
  try {
    trace::Harvest h(*trace_);
    trace::FlightContext fc;
    fc.fault = describe_fault(f);
    fc.rank = f.rank;
    fc.epoch = f.epoch;
    const bench::Json j = h.flight_json(fc);
    const char* dir = trace::trace_dir();
    if (dir != nullptr &&
        !ensure_dir_warn_once(dir, "YHCCL_TRACE_DIR", trace_dir_warned_))
      dir = nullptr;  // fall through to the stderr dump below
    if (dir != nullptr) {
      const std::string path = std::string(dir) + "/yhccl_flight_" +
                               std::to_string(getpid()) + ".json";
      std::ofstream out(path);
      if (out) out << j.dump(1) << '\n';
      std::fprintf(stderr, "[yhccl trace] flight-recorder dump: %s\n",
                   path.c_str());
    } else {
      std::fprintf(stderr,
                   "[yhccl trace] flight-recorder dump (set YHCCL_TRACE_DIR "
                   "to write a file):\n%s\n",
                   j.dump(1).c_str());
    }
  } catch (...) {
    // Fault path: the dump must never mask the collective's own error.
  }
}

FifoChannel& Team::channel(int src, int dst) noexcept {
  auto* chans = reinterpret_cast<FifoChannel*>(region_.data() + off_channels_);
  return chans[static_cast<std::size_t>(src) * cfg_.nranks + dst];
}

std::byte* Team::channel_data(int src, int dst) noexcept {
  const std::size_t stride = FifoChannel::kSlots * cfg_.chunk_bytes;
  return region_.data() + off_chan_data_ +
         (static_cast<std::size_t>(src) * cfg_.nranks + dst) * stride;
}

std::byte* Team::shared_alloc(std::size_t bytes, std::size_t align) {
  YHCCL_REQUIRE(align != 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
  auto& cur = shared_->heap_cursor;
  std::uint64_t old = cur.load(std::memory_order_relaxed);
  std::uint64_t base;
  do {
    base = (old + align - 1) & ~(static_cast<std::uint64_t>(align) - 1);
    YHCCL_REQUIRE(checked_add(base, bytes, "shared heap reservation") <=
                      cfg_.shared_heap_bytes,
                  "shared heap exhausted");
  } while (!cur.compare_exchange_weak(old, base + bytes,
                                      std::memory_order_relaxed));
  return region_.data() + off_heap_ + base;
}

void Team::run(const std::function<void(RankCtx&)>& fn) {
  if (!resilience_.enabled()) {
    // Legacy fail-fast path, untouched: tests pin it allocation- and
    // barrier-identical to the pre-resilience run().
    run_once(fn);
    return;
  }
  degraded_ = false;
  for (int attempt = 0;; ++attempt) {
    try {
      run_once(fn);
      if (attempt > 0) ++rstats_.heals;
      if (plans_ != nullptr) fail_streak_ = 0;
      degraded_ = false;
      return;
    } catch (const Error& e) {
      // Only classified faults are retryable: an invariant/syscall error
      // (kind none) means a bug, not a fault — hand it straight back.
      if (e.fault_kind() == FaultKind::none) throw;
      ++rstats_.faults;
      const std::uint64_t bad_plan =
          plans_ != nullptr ? plans_->inflight() : 0;
      if (attempt >= resilience_.max_retries) {
        ++rstats_.giveups;
        throw;
      }
      recover();  // repairing integrity sweep + shared-state rebuild
      ++rstats_.recoveries;
      ++rstats_.retries;
      note_failed_plan(bad_plan);
      if (attempt + 1 >= resilience_.degrade_after && !degraded_) {
        degraded_ = true;
        ++rstats_.degrades;
        control_instant(trace::Phase::degrade, team_epoch());
      }
      control_instant(trace::Phase::retry,
                      static_cast<std::uint64_t>(attempt + 1));
      metrics_fold_team();
      resilience_backoff_sleep(resilience_, attempt);
    }
  }
}

void Team::run_once(const std::function<void(RankCtx&)>& fn) {
  // Pre-run reset, on the caller thread while the team is quiesced: an
  // abort word or tombstones left by a previous failed run describe *that*
  // run's fault (kept readable via last_fault() until here) and must not
  // instantly re-abort this one — each run() gets fresh ranks anyway.
  auto& fs = shared_->fault;
  fs.abort_word.store(0, std::memory_order_relaxed);
  for (int r = 0; r < cfg_.nranks; ++r) {
    fs.hb[r].left.store(0, std::memory_order_relaxed);
    fs.hb[r].dead.store(0, std::memory_order_relaxed);
  }
  const std::uint64_t epoch =
      fs.team_epoch.load(std::memory_order_acquire);
  const std::uint64_t rseq = ++run_seq_;
  flight_dumped_ = false;  // a fresh run may fault afresh
  try {
    run_ranks([&, epoch, rseq](int rank) {
      RankCtx ctx(*this, rank);
      FaultRunScope fault_scope(shared_->fault, fault_plan_, rank, nranks_,
                                epoch, forked_ranks(), corrupt_targets_,
                                n_corrupt_targets_);
      HbRunScope hb_scope(hb_, rank);
      // The rank's trace ring is indexed by *original* rank id so harvests
      // line up across recoveries that shrank the membership.
      trace::TraceRunScope trace_scope(
          trace_, active_[static_cast<std::size_t>(rank)]);
      metrics::RunScope metrics_scope(
          metrics_, active_[static_cast<std::size_t>(rank)], rseq);
      copy::dav_reset();
      copy::kernel_counts_reset();
      sync_counts_reset();
      const double t0 = wall_seconds();
      fn(ctx);
      const double t1 = wall_seconds();
      shared_->dav_out[rank] = copy::dav_read();
      shared_->time_out[rank] = t1 - t0;
      shared_->kernels_out[rank] = copy::kernel_counts_read();
      shared_->sync_out[rank] = sync_counts_read();
      // Surface races as a per-rank failure: the ThreadTeam rethrows it, the
      // ProcessTeam turns it into a non-zero child exit.
      hb_scope.check();
    });
  } catch (...) {
    // Coherent abort: every surviving rank has unwound, the rings are
    // quiesced — the flight recorder captures what everyone was doing.
    if (trace_mode_ == trace::Mode::flight) flight_dump();
    throw;
  }
  // Parent-side fold while the team is quiesced: per-rank run aggregates
  // (forked ranks' counter writes died with the child; the shared *_out
  // mailboxes are the surviving record) and the team-wide gauges.
  if (metrics_ != nullptr) {
    for (int r = 0; r < nranks_; ++r) {
      auto& slot = metrics_->rank(active_[static_cast<std::size_t>(r)]);
      metrics::bump(slot.runs);
      metrics::bump(slot.wall_ns,
                    static_cast<std::uint64_t>(shared_->time_out[r] * 1e9));
      metrics::bump(slot.dav_loads, shared_->dav_out[r].loads);
      metrics::bump(slot.dav_stores, shared_->dav_out[r].stores);
    }
    metrics::bump(metrics_->team().runs);
    metrics_fold_team();
  }
}

FaultInfo Team::recover() {
  // run() is synchronous, so reaching here means every surviving rank has
  // quiesced: threads are joined and child processes reaped.  No rank holds
  // a lock or sits in a spin loop — shared state can be rebuilt in place.
  auto& fs = shared_->fault;
  const FaultInfo info = last_fault();

  // The flight recorder fires before the rebuild wipes the abort word (a
  // no-op when run() already dumped this fault, or when nothing aborted).
  if (trace_mode_ == trace::Mode::flight) flight_dump();

  // Repairing integrity sweep *before* the rebuild: corrupted plan slots
  // are wiped (the rebuild below does not touch the plan cache) and damage
  // is counted while the evidence still exists.
  const IntegrityReport integrity = verify_integrity(/*repair=*/true);
  rstats_.corruptions += integrity.findings.size();

  // Membership: drop ranks whose *process* died (reap bookkeeping).  A
  // thread-backed rank's death is only a modelling device — the thread is
  // joined and a fresh one can take its place — so thread teams always
  // recover to full membership.
  if (forked_ranks()) {
    std::vector<int> survivors;
    for (int r = 0; r < nranks_; ++r)
      if (fs.hb[r].dead.load(std::memory_order_acquire) == 0)
        survivors.push_back(active_[static_cast<std::size_t>(r)]);
    YHCCL_REQUIRE(!survivors.empty(), "recover: no surviving ranks");
    active_ = std::move(survivors);
    nranks_ = static_cast<int>(active_.size());
  }
  const int nsockets = std::min(cfg_.nsockets, nranks_);
  topo_ = Topology(nranks_, nsockets);
  // Cached plans persist across recovery (slot updates are single-word
  // atomics, so an abort cannot tear them); the refreshed signature keys
  // the shrunken topology into its own plan space, so plans cached for the
  // old shape simply stop matching.
  plan_sig_ = rt::plan_signature(topo_, cfg_.cache);

  // Re-initialize every piece of shared synchronization state the aborted
  // collective may have left torn.
  barrier_init(shared_->node_barrier, static_cast<std::uint32_t>(nranks_));
  for (int s = 0; s < kMaxSockets; ++s)
    barrier_init(shared_->socket_barrier[s],
                 s < nsockets
                     ? static_cast<std::uint32_t>(topo_.socket_size(s))
                     : 0);
  for (int r = 0; r < kMaxRanks; ++r) {
    shared_->step[r].v.store(0, std::memory_order_relaxed);
    shared_->flag[r].v.store(0, std::memory_order_relaxed);
    shared_->persist[r] = TeamShared::Persist{};
    shared_->dav_out[r] = copy::Dav{};
    shared_->time_out[r] = 0;
    shared_->kernels_out[r] = copy::KernelCounts{};
    shared_->sync_out[r] = SyncCounts{};
    for (int s = 0; s < kRegistrySlots; ++s) {
      auto& w = shared_->registry[r][s];
      w.ptr.store(nullptr, std::memory_order_relaxed);
      w.bytes.store(0, std::memory_order_relaxed);
      w.pid.store(0, std::memory_order_relaxed);
      w.seq.store(0, std::memory_order_relaxed);
    }
  }
  const std::size_t nchan = static_cast<std::size_t>(cfg_.nranks) *
                            static_cast<std::size_t>(cfg_.nranks);
  auto* chans = reinterpret_cast<FifoChannel*>(region_.data() + off_channels_);
  for (std::size_t c = 0; c < nchan; ++c) {
    chans[c].~FifoChannel();
    new (chans + c) FifoChannel();  // drops orphaned rendezvous descriptors
  }
  shared_->page_locks.reset();  // releases locks held by the dead rank

  // Liveness slots and the abort word restart clean.
  for (int r = 0; r < kMaxFaultRanks; ++r) {
    auto& slot = fs.hb[r];
    slot.beat.store(0, std::memory_order_relaxed);
    slot.seq.store(0, std::memory_order_relaxed);
    slot.epoch.store(0, std::memory_order_relaxed);
    slot.pid.store(0, std::memory_order_relaxed);
    slot.left.store(0, std::memory_order_relaxed);
    slot.dead.store(0, std::memory_order_relaxed);
  }
  fs.abort_word.store(0, std::memory_order_relaxed);

  // The race checker must see the re-initialization as a global
  // synchronization point: everything before recovery happens-before
  // everything after (including the dead rank's last writes).
  if (hb_ != nullptr) hb_->on_recover();

  // New epoch: a stale rank resumed from before recovery hits the epoch
  // fence in fault_point instead of tearing the rebuilt state.
  const std::uint64_t new_epoch =
      fs.team_epoch.fetch_add(1, std::memory_order_acq_rel) + 1;

  // Recovery epochs land on the parent-side control ring (no rank context
  // is installed here, so the instant is pushed by hand).
  control_instant(trace::Phase::recover, new_epoch);
  metrics_fold_team();  // epoch and (possibly shrunken) membership gauges
  flight_dumped_ = false;  // the next epoch's fault deserves its own dump

  // Re-stamp the section directory under the new epoch: the epoch-tagged
  // checksums from before recovery stop validating, so tampering that
  // happened under the old epoch cannot be replayed into the new one.
  stamp_sections();
  return info;
}

void Team::stamp_sections() {
  const std::uint64_t epoch = team_epoch();
  const std::size_t ends[kMaxSections] = {
      off_channels_, off_chan_data_, off_heap_,    off_scratch_, off_hb_,
      off_trace_,    off_plans_,     off_metrics_, region_.size()};
  std::size_t start = 0;
  shared_->nsections = kMaxSections;
  for (int i = 0; i < kMaxSections; ++i) {
    SectionHeader& h = shared_->sections[i];
    h.off = start;
    h.bytes = ends[i] - start;
    h.canary = kSectionCanary ^ h.off;
    h.epoch = epoch;
    h.sum = section_sum(h);
    start = ends[i];
  }
}

void Team::note_failed_plan(std::uint64_t hash) {
  if (plans_ == nullptr || hash == 0) {
    fail_streak_ = 0;
    return;
  }
  if (hash == fail_hash_) {
    ++fail_streak_;
  } else {
    fail_hash_ = hash;
    fail_streak_ = 1;
  }
  // Two consecutive faults on the same key: stop re-selecting its cached
  // plan.  until_epoch is measured from the *post-recovery* epoch, so the
  // quarantine outlives the recovery that just happened.
  if (fail_streak_ >= 2) {
    if (plans_->quarantine(hash,
                           team_epoch() + resilience_.quarantine_epochs))
      ++rstats_.quarantines;
    fail_streak_ = 0;
  }
}

void Team::control_instant(trace::Phase phase, std::uint64_t arg) {
  if (trace_ == nullptr) return;
  // The control ring is single-writer by protocol; the parent's retry /
  // recover / degrade instants and the sampler thread's straggler instants
  // both land on it, so pushes serialize on the metrics mutex.
  std::lock_guard<std::mutex> lk(metrics_mu_);
  const std::uint64_t t = trace::trace_now();
  trace_->push(trace_->control_ring(),
               trace::Rec{t, t, arg, static_cast<std::uint8_t>(phase), 0, 0,
                          trace::kFlagInstant, 0});
}

void Team::metrics_fold_team() {
  // Parent-side only, at quiesced points (end of run_once, the retry loop,
  // recover(), teardown): rstats_ / plans_ / the membership are parent
  // state, so the sampler thread reads them only through these gauges.
  if (metrics_ == nullptr) return;
  auto& tg = metrics_->team();
  const auto st = [](mc::atomic<std::uint64_t>& g, std::uint64_t v) {
    g.store(v, std::memory_order_relaxed);
  };
  st(tg.epoch, team_epoch());
  st(tg.active_ranks, static_cast<std::uint64_t>(nranks_));
  st(tg.rs_faults, rstats_.faults);
  st(tg.rs_retries, rstats_.retries);
  st(tg.rs_recoveries, rstats_.recoveries);
  st(tg.rs_degrades, rstats_.degrades);
  st(tg.rs_quarantines, rstats_.quarantines);
  st(tg.rs_corruptions, rstats_.corruptions);
  st(tg.rs_giveups, rstats_.giveups);
  st(tg.rs_heals, rstats_.heals);
  if (plans_ != nullptr) {
    const PlanRegistryStats ps = plans_->stats();
    st(tg.plan_lookups, ps.lookups);
    st(tg.plan_hits, ps.hits);
    st(tg.plan_misses, ps.misses);
    st(tg.plan_inserts, ps.inserts);
    st(tg.plan_explores, ps.explores);
    st(tg.plan_commits, ps.commits);
    st(tg.plan_loaded, ps.loaded);
    st(tg.plan_entries, ps.entries);
    st(tg.plan_quarantines, ps.quarantines);
  }
}

metrics::StragglerReport Team::straggler_check() {
  metrics::StragglerReport rep;
  if (metrics_ == nullptr) return rep;
  const metrics::Snapshot snap = metrics::Snapshot::capture(*metrics_);
  rep = metrics::detect_stragglers(snap);
  // Level-triggered detector, edge-triggered accounting: only ranks that
  // were not already flagged on the previous sweep produce a new flag
  // count, flight-recorder instant and tuner nudge.
  std::vector<int> fresh;
  {
    std::lock_guard<std::mutex> lk(metrics_mu_);
    for (int r : rep.flagged)
      if (std::find(last_stragglers_.begin(), last_stragglers_.end(), r) ==
          last_stragglers_.end())
        fresh.push_back(r);
    last_stragglers_ = rep.flagged;
  }
  for (int r : fresh) {
    metrics::bump(metrics_->team().straggler_flags);
    control_instant(trace::Phase::straggler, static_cast<std::uint64_t>(r));
  }
  if (!fresh.empty() && plans_ != nullptr) {
    // A flagged straggler means the team is wait-bound right now: feed a
    // saturated wait fraction into the tuner's per-class profile for every
    // collective kind this team actually ran (note_profile's channel).
    bool ran[metrics::kCollSlots] = {};
    for (const auto& rs : snap.ranks)
      for (const auto& cell : rs.cells)
        if (cell.coll > 0 && cell.coll < metrics::kCollSlots)
          ran[cell.coll] = true;
    for (int id = 1; id < metrics::kCollSlots; ++id)
      if (ran[id]) plans_->fold_class_wait(id - 1, 1.0);
  }
  return rep;
}

void Team::metrics_tick() {
  try {
    straggler_check();
    metrics_export(/*live=*/true);
  } catch (...) {
    // Sampler thread: a failed sweep or export never takes the team down.
  }
}

void Team::metrics_export(bool live) {
  if (metrics_ == nullptr) return;
  metrics::Snapshot snap = metrics::Snapshot::capture(*metrics_);
  {
    std::lock_guard<std::mutex> lk(metrics_mu_);
    snap.stragglers = last_stragglers_;
  }
  const std::string json = snap.to_json().dump(1);
  if (mirror_.valid())
    metrics::mirror_publish(mirror_.data(), mirror_.size(), json);
  const char* dir = metrics::metrics_dir();
  if (dir == nullptr) return;
  if (!ensure_dir_warn_once(dir, "YHCCL_METRICS_DIR", metrics_dir_warned_))
    return;
  std::string stem =
      std::string(dir) + "/yhccl_metrics_" + std::to_string(getpid());
  if (live) {
    stem += "_live";
  } else {
    // Numbered per process, not per team, so two teams tearing down never
    // overwrite each other's final snapshot.
    static mc::atomic<int> ordinal{0};
    stem += "_" + std::to_string(ordinal.fetch_add(1));
  }
  const auto write_one = [&stem](const char* ext, const std::string& text) {
    const std::string path = stem + ext;
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp);
      if (!out) return;
      out << text << '\n';
    }
    // Atomic swap: a live reader tailing the _live pair never sees a
    // half-written file.
    std::rename(tmp.c_str(), path.c_str());
  };
  write_one(".json", json);
  write_one(".prom", snap.prometheus());
}

Team::IntegrityReport Team::verify_integrity(bool repair) {
  IntegrityReport rep;
  const auto note = [&rep](std::string what) {
    rep.findings.push_back(std::move(what));
  };

  // --- arena section directory ----------------------------------------------
  const std::uint64_t epoch = team_epoch();
  const std::uint64_t n = shared_->nsections;
  if (n == 0 || n > static_cast<std::uint64_t>(kMaxSections)) {
    note("section directory: count " + std::to_string(n) + " out of range");
  } else {
    for (std::uint64_t i = 0; i < n; ++i) {
      const SectionHeader& h = shared_->sections[i];
      ++rep.sections_checked;
      const std::string who = "section " + std::to_string(i);
      if (h.canary != (kSectionCanary ^ h.off))
        note(who + ": canary mismatch");
      else if (h.sum != section_sum(h))
        note(who + ": checksum mismatch");
      else if (h.epoch > epoch)
        note(who + ": stamped under future epoch " + std::to_string(h.epoch));
      else if (h.off % kPageAlign != 0 && h.off != 0)
        note(who + ": unaligned offset");
      else if (h.off > region_.size() ||
               h.bytes > region_.size() - h.off)
        note(who + ": exceeds the mapping");
    }
  }

  // --- plan slots -----------------------------------------------------------
  if (plans_ != nullptr) {
    for (std::uint32_t i = 0; i < plans_->capacity(); ++i) {
      PlanSlot& s = plans_->slot(i);
      ++rep.plan_slots_checked;
      const std::uint64_t h = s.hash.load(std::memory_order_acquire);
      const std::uint64_t f = s.fields.load(std::memory_order_relaxed);
      const std::uint64_t w = s.plan.load(std::memory_order_relaxed);
      const std::string who = "plan slot " + std::to_string(i);
      bool bad = false;
      if (h == 0) {
        if (f != 0 || w != 0) {
          note(who + ": residue in an empty slot");
          bad = true;
        }
      } else {
        if (!plan_fields_sane(f)) {
          note(who + ": reserved key-field bits set");
          bad = true;
        }
        if (!plan_word_sane(w)) {
          note(who + ": plan word failed structural validation");
          bad = true;
        }
      }
      if (bad && repair) {
        // Wipe the slot: readers fall back to the analytic prior, and the
        // probe hole at worst hides later slots of the same window (they
        // regenerate on the next resolve).
        s.plan.store(0, std::memory_order_relaxed);
        s.fields.store(0, std::memory_order_relaxed);
        s.quar.store(0, std::memory_order_relaxed);
        s.hits.store(0, std::memory_order_relaxed);
        s.wait_ewma.store(0, std::memory_order_relaxed);
        for (int a = 0; a < kPlanMaxArms; ++a) {
          s.arm_ewma[a].store(0, std::memory_order_relaxed);
          s.arm_n[a].store(0, std::memory_order_relaxed);
        }
        s.hash.store(0, std::memory_order_release);
      }
    }
  }

  // --- FIFO / rendezvous descriptors ----------------------------------------
  const std::size_t nchan = static_cast<std::size_t>(cfg_.nranks) *
                            static_cast<std::size_t>(cfg_.nranks);
  auto* chans = reinterpret_cast<FifoChannel*>(region_.data() + off_channels_);
  for (std::size_t c = 0; c < nchan; ++c) {
    FifoChannel& ch = chans[c];
    ++rep.channels_checked;
    const std::uint64_t head = ch.head.load(std::memory_order_relaxed);
    const std::uint64_t tail = ch.tail.load(std::memory_order_relaxed);
    const std::uint64_t posted = ch.rndv_posted.load(std::memory_order_relaxed);
    const std::uint64_t done = ch.rndv_done.load(std::memory_order_relaxed);
    const std::string who = "fifo channel " + std::to_string(c);
    bool bad = false;
    if (head > tail || tail - head > FifoChannel::kSlots) {
      note(who + ": head/tail counters out of bounds");
      bad = true;
    }
    for (std::uint64_t s = 0; s < FifoChannel::kSlots; ++s) {
      if (ch.meta[s].bytes > cfg_.chunk_bytes) {
        note(who + ": slot descriptor exceeds the chunk arena");
        bad = true;
        break;
      }
    }
    if (done > posted) {
      note(who + ": rendezvous retired more descriptors than posted");
      bad = true;
    }
    if (bad && repair) {
      ch.~FifoChannel();
      new (&ch) FifoChannel();
    }
  }

  if (repair && !rep.findings.empty()) stamp_sections();
  return rep;
}

std::uint64_t Team::hb_races() const { return hb_ != nullptr ? hb_->races() : 0; }

std::string Team::hb_report() const {
  return hb_ != nullptr ? hb_->first_report() : std::string();
}

copy::Dav Team::total_dav() const {
  copy::Dav total;
  for (int r = 0; r < nranks_; ++r) total += shared_->dav_out[r];
  return total;
}

copy::KernelCounts Team::total_kernels() const {
  copy::KernelCounts total;
  for (int r = 0; r < nranks_; ++r) total += shared_->kernels_out[r];
  return total;
}

SyncCounts Team::total_sync() const {
  SyncCounts total;
  for (int r = 0; r < nranks_; ++r) total += shared_->sync_out[r];
  return total;
}

double Team::max_time() const {
  double m = 0;
  for (int r = 0; r < nranks_; ++r)
    m = std::max(m, shared_->time_out[r]);
  return m;
}

// ---------------------------------------------------------------------------
// RankCtx
// ---------------------------------------------------------------------------

RankCtx::RankCtx(Team& team, int rank)
    : team_(&team),
      rank_(rank),
      nranks_(team.nranks()),
      persist_(&team.shared().persist[rank]) {
  YHCCL_REQUIRE(rank >= 0 && rank < nranks_, "rank out of range");
}

void RankCtx::barrier() {
  barrier_arrive(team_->shared().node_barrier, persist_->node_sense,
                 /*trace_scope=*/0);
}

void RankCtx::socket_barrier() {
  barrier_arrive(team_->shared().socket_barrier[socket()],
                 persist_->sock_sense,
                 static_cast<std::uint8_t>(1 + socket()));
}

std::uint64_t RankCtx::next_seq() {
  const std::uint64_t s = ++persist_->coll_seq;
  // Published so a watchdog expiry elsewhere can tell a diverged call
  // sequence from a stalled rank (fault.hpp classification).
  team_->shared().fault.hb[rank_].seq.store(s, std::memory_order_relaxed);
  return s;
}

void RankCtx::step_publish(std::uint64_t v) {
  fault_point("flag");
  sync_count_flag_post();
  metrics::note_flag_post();
  flag_publish(team_->shared().step[rank_], v);
  trace::instant(trace::Phase::flag_post, v);
}

void RankCtx::step_wait(int peer, std::uint64_t v) {
  fault_point("flag");
  sync_count_flag_wait();
  metrics::note_flag_wait();
  trace::Span sp(trace::Phase::flag_wait, v);
  spin_wait_ge(team_->shared().step[peer].v, v);
}

void RankCtx::publish_buffer(int slot, const void* p, std::size_t bytes) {
  YHCCL_REQUIRE(slot >= 0 && slot < kRegistrySlots, "registry slot");
  // Single-writer seqlock (see RemoteWindow): only this rank writes its own
  // registry row, so the unsynchronized seq read-modify-write is safe.
  window_publish(team_->shared().registry[rank_][slot], p, bytes, getpid());
}

RemoteBuf RankCtx::remote_buffer(int peer, int slot) const {
  YHCCL_REQUIRE(slot >= 0 && slot < kRegistrySlots, "registry slot");
  return window_read(team_->shared().registry[peer][slot]);
}

// ---------------------------------------------------------------------------
// pt2pt: eager two-copy FIFO
// ---------------------------------------------------------------------------

void RankCtx::send(int dst, const void* p, std::size_t n, int tag) {
  fault_point("fifo");
  YHCCL_REQUIRE(dst >= 0 && dst < nranks_ && dst != rank_, "bad send peer");
  trace::Span sp(trace::Phase::fifo, n);
  auto& ch = team_->channel(rank_, dst);
  std::byte* data = team_->channel_data(rank_, dst);
  const std::size_t chunk = config().chunk_bytes;
  const auto* src = static_cast<const std::byte*>(p);
  std::size_t off = 0;
  do {
    const std::size_t len = std::min(chunk, n - off);
    fifo_push_chunk(ch, data, chunk, src + off, len, tag);
    off += len;
  } while (off < n);
}

void RankCtx::recv(int src, void* p, std::size_t n, int tag) {
  fault_point("fifo");
  YHCCL_REQUIRE(src >= 0 && src < nranks_ && src != rank_, "bad recv peer");
  trace::Span sp(trace::Phase::fifo, n);
  auto& ch = team_->channel(src, rank_);
  std::byte* data = team_->channel_data(src, rank_);
  const std::size_t chunk = config().chunk_bytes;
  auto* dst = static_cast<std::byte*>(p);
  std::size_t off = 0;
  do {
    off += fifo_pop_chunk(ch, data, chunk, dst + off, n - off, tag);
  } while (off < n);
}

void RankCtx::sendrecv(int dst, const void* sbuf, std::size_t sn, int src,
                       void* rbuf, std::size_t rn, int tag) {
  fault_point("fifo");
  trace::Span span(trace::Phase::fifo, sn + rn);
  auto& out = team_->channel(rank_, dst);
  auto& in = team_->channel(src, rank_);
  std::byte* out_data = team_->channel_data(rank_, dst);
  std::byte* in_data = team_->channel_data(src, rank_);
  const std::size_t chunk = config().chunk_bytes;
  const auto* sp = static_cast<const std::byte*>(sbuf);
  auto* rp = static_cast<std::byte*>(rbuf);
  // At least one chunk per direction even for empty messages, matching the
  // chunk counts the peer's send()/recv()/sendrecv() will produce.
  const std::size_t schunks = sn == 0 ? 1 : ceil_div(sn, chunk);
  const std::size_t rchunks = rn == 0 ? 1 : ceil_div(rn, chunk);
  std::size_t sent = 0, received = 0;
  std::size_t soff = 0, roff = 0;
  SpinGuard guard("sendrecv progress", trace::Phase::fifo);
  while (sent < schunks || received < rchunks) {
    bool progressed = false;
    if (sent < schunks) {
      const std::size_t len = std::min(chunk, sn - soff);
      if (fifo_try_push_chunk(out, out_data, chunk, sp + soff, len, tag)) {
        soff += len;
        ++sent;
        progressed = true;
      }
    }
    if (received < rchunks) {
      std::size_t len = 0;
      if (fifo_try_pop_chunk(in, in_data, chunk, rp + roff, rn - roff, tag,
                             &len)) {
        roff += len;
        ++received;
        progressed = true;
      }
    }
    if (!progressed) guard.relax();
  }
}

void RankCtx::sendrecv_zc(int dst, const void* sbuf, std::size_t sn, int src,
                          void* rbuf, std::size_t rn, RemoteMode mode) {
  fault_point("rndv");
  auto& out = team_->channel(rank_, dst);
  const std::uint64_t s = rndv_post(out, sbuf, sn, getpid());
  recv_zc(src, rbuf, rn, mode);  // has its own rndv span for the pull side
  trace::Span sp(trace::Phase::rndv, sn);
  rndv_wait_drained(out, s);
}

// ---------------------------------------------------------------------------
// pt2pt: rendezvous single-copy
// ---------------------------------------------------------------------------

void RankCtx::send_zc(int dst, const void* p, std::size_t n) {
  fault_point("rndv");
  auto& ch = team_->channel(rank_, dst);
  const std::uint64_t s = rndv_post(ch, p, n, getpid());
  trace::Span sp(trace::Phase::rndv, n);
  rndv_wait_drained(ch, s);
}

void RankCtx::recv_zc(int src, void* p, std::size_t n, RemoteMode mode) {
  fault_point("rndv");
  rndv_pull(team_->channel(src, rank_), p, n, mode);
}

}  // namespace yhccl::rt
