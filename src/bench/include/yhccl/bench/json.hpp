// Minimal JSON value type for the benchmark harness: parse + serialize,
// nothing else.  Two properties matter here and rule out hand-waving with
// doubles: integers round-trip exactly up to int64 (the comparator gates on
// *exact* equality of DAV/kernel/sync counters, so 2^53-adjacent byte
// counts must not be laundered through a double), and object keys keep
// insertion order so emitted reports diff cleanly run-to-run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace yhccl::bench {

class Json {
 public:
  enum class Type { null, boolean, integer, number, string, array, object };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::boolean), bool_(b) {}  // NOLINT
  Json(std::int64_t i) : type_(Type::integer), int_(i) {}  // NOLINT
  Json(std::uint64_t u)  // NOLINT(google-explicit-constructor)
      : type_(Type::integer), int_(static_cast<std::int64_t>(u)) {}
  Json(int i) : type_(Type::integer), int_(i) {}  // NOLINT
  Json(double d) : type_(Type::number), num_(d) {}  // NOLINT
  Json(std::string s) : type_(Type::string), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::string), str_(s) {}  // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::object;
    return j;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::null; }
  bool is_bool() const noexcept { return type_ == Type::boolean; }
  bool is_integer() const noexcept { return type_ == Type::integer; }
  bool is_number() const noexcept {
    return type_ == Type::number || type_ == Type::integer;
  }
  bool is_string() const noexcept { return type_ == Type::string; }
  bool is_array() const noexcept { return type_ == Type::array; }
  bool is_object() const noexcept { return type_ == Type::object; }

  bool as_bool() const noexcept { return bool_; }
  /// Exact for Type::integer; truncates for Type::number.
  std::int64_t as_int() const noexcept {
    return type_ == Type::integer ? int_ : static_cast<std::int64_t>(num_);
  }
  std::uint64_t as_uint() const noexcept {
    return static_cast<std::uint64_t>(as_int());
  }
  double as_double() const noexcept {
    return type_ == Type::integer ? static_cast<double>(int_) : num_;
  }
  const std::string& as_string() const noexcept { return str_; }

  // ---- array access ----------------------------------------------------------
  std::size_t size() const noexcept {
    return is_array() ? arr_.size() : (is_object() ? obj_.size() : 0);
  }
  const Json& at(std::size_t i) const { return arr_.at(i); }
  void push_back(Json v) {
    type_ = Type::array;
    arr_.push_back(std::move(v));
  }
  const std::vector<Json>& items() const noexcept { return arr_; }

  // ---- object access ---------------------------------------------------------
  /// Insert-or-overwrite; keeps first-insertion key order.
  void set(std::string_view key, Json v);
  /// nullptr when missing or not an object.
  const Json* find(std::string_view key) const noexcept;
  /// Null-Json reference when missing (never throws).
  const Json& operator[](std::string_view key) const noexcept;
  const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return obj_;
  }

  /// Serialize; indent > 0 pretty-prints, 0 emits a single line.
  std::string dump(int indent = 0) const;

  /// Parse `text`.  On failure returns null Json and, when `err` is given,
  /// a one-line diagnostic with byte offset.
  static Json parse(std::string_view text, std::string* err = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace yhccl::bench
