// AVX-512 kernel tier.  Compiled with -mavx512f -mavx512bw (BW for the
// byte/word integer ops of the u8 kernels); one full cacheline per
// streaming store.  Never called unless cpuid reports AVX-512F+BW (see
// isa.cpp).
#include <immintrin.h>

#include "kernel_impl.hpp"

namespace yhccl::copy {

namespace {

struct Avx512Stream {
  static constexpr bool kHasStream = true;
  static void stream_line(void* dst, const void* src) noexcept {
    _mm512_stream_si512(static_cast<__m512i*>(dst),
                        _mm512_loadu_si512(src));
  }
  static void fence() noexcept { _mm_sfence(); }
};

}  // namespace

const KernelTable& avx512_table() noexcept {
  static const KernelTable t =
      kimpl::make_table<Avx512Stream>(IsaTier::avx512);
  return t;
}

}  // namespace yhccl::copy
