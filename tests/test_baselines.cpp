// Correctness sweeps for the baseline algorithms (Ring, Rabenseifner,
// DPML, RG tree, XPMEM-direct) across team shapes, transports, message
// sizes and roots — the same reference checks the YHCCL collectives pass.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "yhccl/baselines/baselines.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::base;
using test::cached_team;
using test::check_reduced;
using test::fill_buffer;

namespace {

const std::size_t kCounts[] = {1, 17, 1024, 50000};

struct RingCase {
  int p;
  std::size_t count;
  Transport t;
  std::string name() const {
    return "p" + std::to_string(p) + "_n" + std::to_string(count) +
           (t == Transport::two_copy ? "_twocopy" : "_singlecopy");
  }
};

std::vector<RingCase> ring_cases() {
  std::vector<RingCase> cs;
  for (int p : {1, 2, 3, 4, 7, 8})
    for (std::size_t n : kCounts)
      for (Transport t : {Transport::two_copy, Transport::single_copy})
        cs.push_back({p, n, t});
  return cs;
}

class RingSweep : public ::testing::TestWithParam<RingCase> {};

TEST_P(RingSweep, ReduceScatter) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, 1);
  std::vector<std::vector<double>> send(c.p), recv(c.p);
  for (int r = 0; r < c.p; ++r) {
    send[r].resize(c.count * c.p);
    recv[r].assign(c.count, -1);
    fill_buffer(send[r].data(), c.count * c.p, Datatype::f64, r,
                ReduceOp::sum);
  }
  team.run([&](rt::RankCtx& ctx) {
    ring_reduce_scatter(ctx, send[ctx.rank()].data(),
                        recv[ctx.rank()].data(), c.count, Datatype::f64,
                        ReduceOp::sum, c.t);
  });
  for (int r = 0; r < c.p; ++r)
    EXPECT_TRUE(check_reduced(recv[r].data(), c.count, Datatype::f64, c.p,
                              ReduceOp::sum, c.count * r))
        << "rank " << r;
}

TEST_P(RingSweep, Allreduce) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, 1);
  std::vector<std::vector<float>> send(c.p), recv(c.p);
  for (int r = 0; r < c.p; ++r) {
    send[r].resize(c.count);
    recv[r].assign(c.count, -1);
    fill_buffer(send[r].data(), c.count, Datatype::f32, r, ReduceOp::sum);
  }
  team.run([&](rt::RankCtx& ctx) {
    ring_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                   c.count, Datatype::f32, ReduceOp::sum, c.t);
  });
  for (int r = 0; r < c.p; ++r)
    EXPECT_TRUE(check_reduced(recv[r].data(), c.count, Datatype::f32, c.p,
                              ReduceOp::sum))
        << "rank " << r;
}

TEST_P(RingSweep, Allgather) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, 1);
  std::vector<std::vector<std::int32_t>> send(c.p), recv(c.p);
  for (int r = 0; r < c.p; ++r) {
    send[r].resize(c.count);
    recv[r].assign(c.count * c.p, -1);
    fill_buffer(send[r].data(), c.count, Datatype::i32, r, ReduceOp::sum);
  }
  team.run([&](rt::RankCtx& ctx) {
    ring_allgather(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                   c.count, Datatype::i32, c.t);
  });
  for (int r = 0; r < c.p; ++r)
    for (int a = 0; a < c.p; ++a)
      ASSERT_EQ(0, std::memcmp(recv[r].data() + a * c.count, send[a].data(),
                               c.count * 4))
          << "rank " << r << " block " << a;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RingSweep, ::testing::ValuesIn(ring_cases()),
                         [](const auto& i) { return i.param.name(); });

// ---- Rabenseifner -----------------------------------------------------------

class RabSweep : public ::testing::TestWithParam<RingCase> {};

TEST_P(RabSweep, ReduceScatterPow2) {
  const auto c = GetParam();
  if ((c.p & (c.p - 1)) != 0) GTEST_SKIP() << "needs power-of-two p";
  auto& team = cached_team(c.p, 1);
  std::vector<std::vector<double>> send(c.p), recv(c.p);
  for (int r = 0; r < c.p; ++r) {
    send[r].resize(c.count * c.p);
    recv[r].assign(c.count, -1);
    fill_buffer(send[r].data(), c.count * c.p, Datatype::f64, r,
                ReduceOp::sum);
  }
  team.run([&](rt::RankCtx& ctx) {
    rabenseifner_reduce_scatter(ctx, send[ctx.rank()].data(),
                                recv[ctx.rank()].data(), c.count,
                                Datatype::f64, ReduceOp::sum, c.t);
  });
  for (int r = 0; r < c.p; ++r)
    EXPECT_TRUE(check_reduced(recv[r].data(), c.count, Datatype::f64, c.p,
                              ReduceOp::sum, c.count * r))
        << "rank " << r;
}

TEST_P(RabSweep, AllreduceAnyP) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, 1);
  std::vector<std::vector<double>> send(c.p), recv(c.p);
  for (int r = 0; r < c.p; ++r) {
    send[r].resize(c.count);
    recv[r].assign(c.count, -1);
    fill_buffer(send[r].data(), c.count, Datatype::f64, r, ReduceOp::sum);
  }
  team.run([&](rt::RankCtx& ctx) {
    rabenseifner_allreduce(ctx, send[ctx.rank()].data(),
                           recv[ctx.rank()].data(), c.count, Datatype::f64,
                           ReduceOp::sum, c.t);
  });
  for (int r = 0; r < c.p; ++r)
    EXPECT_TRUE(check_reduced(recv[r].data(), c.count, Datatype::f64, c.p,
                              ReduceOp::sum))
        << "rank " << r;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RabSweep, ::testing::ValuesIn(ring_cases()),
                         [](const auto& i) { return i.param.name(); });

// ---- DPML / RG / XPMEM -------------------------------------------------------

struct ShapeCase {
  int p, m;
  std::size_t count;
  std::string name() const {
    return "p" + std::to_string(p) + "m" + std::to_string(m) + "_n" +
           std::to_string(count);
  }
};

std::vector<ShapeCase> shape_cases() {
  std::vector<ShapeCase> cs;
  for (auto [p, m] : {std::pair{1, 1}, {2, 1}, {4, 2}, {6, 2}, {8, 4}})
    for (std::size_t n : kCounts) cs.push_back({p, m, n});
  return cs;
}

class OtherBaselines : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(OtherBaselines, DpmlAllreduce) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, c.m);
  std::vector<std::vector<double>> send(c.p), recv(c.p);
  for (int r = 0; r < c.p; ++r) {
    send[r].resize(c.count);
    recv[r].assign(c.count, -1);
    fill_buffer(send[r].data(), c.count, Datatype::f64, r, ReduceOp::sum);
  }
  team.run([&](rt::RankCtx& ctx) {
    dpml_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                   c.count, Datatype::f64, ReduceOp::sum);
  });
  for (int r = 0; r < c.p; ++r)
    EXPECT_TRUE(check_reduced(recv[r].data(), c.count, Datatype::f64, c.p,
                              ReduceOp::sum));
}

TEST_P(OtherBaselines, RgReduceEveryRootAndBranch) {
  const auto c = GetParam();
  if (c.count > 1024 && c.p > 4) GTEST_SKIP() << "cap large-case roots";
  auto& team = cached_team(c.p, c.m);
  std::vector<std::vector<float>> send(c.p), recv(c.p);
  for (int r = 0; r < c.p; ++r) {
    send[r].resize(c.count);
    recv[r].assign(c.count, -1);
    fill_buffer(send[r].data(), c.count, Datatype::f32, r, ReduceOp::sum);
  }
  for (int branch : {1, 2, 3}) {
    for (int root = 0; root < c.p; ++root) {
      RgOpts o;
      o.branch = branch;
      o.slice = 4096;
      team.run([&](rt::RankCtx& ctx) {
        rg_reduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                  c.count, Datatype::f32, ReduceOp::sum, root, o);
      });
      EXPECT_TRUE(check_reduced(recv[root].data(), c.count, Datatype::f32,
                                c.p, ReduceOp::sum))
          << "root " << root << " k " << branch;
    }
  }
}

TEST_P(OtherBaselines, RgAllreduce) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, c.m);
  std::vector<std::vector<float>> send(c.p), recv(c.p);
  for (int r = 0; r < c.p; ++r) {
    send[r].resize(c.count);
    recv[r].assign(c.count, -1);
    fill_buffer(send[r].data(), c.count, Datatype::f32, r, ReduceOp::sum);
  }
  team.run([&](rt::RankCtx& ctx) {
    rg_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                 c.count, Datatype::f32, ReduceOp::sum);
  });
  for (int r = 0; r < c.p; ++r)
    EXPECT_TRUE(check_reduced(recv[r].data(), c.count, Datatype::f32, c.p,
                              ReduceOp::sum))
        << "rank " << r;
}

TEST_P(OtherBaselines, XpmemAllFive) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, c.m);
  const int p = c.p;
  // all-reduce
  {
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(c.count);
      recv[r].assign(c.count, -1);
      fill_buffer(send[r].data(), c.count, Datatype::f64, r, ReduceOp::sum);
    }
    team.run([&](rt::RankCtx& ctx) {
      xpmem_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                      c.count, Datatype::f64, ReduceOp::sum);
    });
    for (int r = 0; r < p; ++r)
      EXPECT_TRUE(check_reduced(recv[r].data(), c.count, Datatype::f64, p,
                                ReduceOp::sum));
  }
  // reduce-scatter
  {
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(c.count * p);
      recv[r].assign(c.count, -1);
      fill_buffer(send[r].data(), c.count * p, Datatype::f64, r,
                  ReduceOp::sum);
    }
    team.run([&](rt::RankCtx& ctx) {
      xpmem_reduce_scatter(ctx, send[ctx.rank()].data(),
                           recv[ctx.rank()].data(), c.count, Datatype::f64,
                           ReduceOp::sum);
    });
    for (int r = 0; r < p; ++r)
      EXPECT_TRUE(check_reduced(recv[r].data(), c.count, Datatype::f64, p,
                                ReduceOp::sum, c.count * r));
  }
  // reduce to root 0 + broadcast + allgather
  {
    std::vector<std::vector<double>> send(p), recv(p), gat(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(c.count);
      recv[r].assign(c.count, -1);
      gat[r].assign(c.count * p, -1);
      fill_buffer(send[r].data(), c.count, Datatype::f64, r, ReduceOp::sum);
    }
    team.run([&](rt::RankCtx& ctx) {
      xpmem_reduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                   c.count, Datatype::f64, ReduceOp::sum, 0);
      xpmem_broadcast(ctx, recv[ctx.rank()].data(), c.count, Datatype::f64,
                      0);
      xpmem_allgather(ctx, send[ctx.rank()].data(), gat[ctx.rank()].data(),
                      c.count, Datatype::f64);
    });
    for (int r = 0; r < p; ++r)  // reduce result broadcast to every rank
      EXPECT_TRUE(check_reduced(recv[r].data(), c.count, Datatype::f64, p,
                                ReduceOp::sum));
    for (int r = 0; r < p; ++r)
      for (int a = 0; a < p; ++a)
        ASSERT_EQ(0, std::memcmp(gat[r].data() + a * c.count,
                                 send[a].data(), c.count * 8));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OtherBaselines,
                         ::testing::ValuesIn(shape_cases()),
                         [](const auto& i) { return i.param.name(); });

}  // namespace
