// Remote (cross-rank) buffer access: the XPMEM / CMA stand-ins.
//
// The paper compares against two kernel-assisted single-copy mechanisms:
//  * XPMEM — a rank maps peers' address spaces and loads remote data
//    directly.  With thread-backed ranks this is exactly a pointer read, so
//    the thread backend gives faithful XPMEM semantics for free.
//  * CMA (process_vm_readv) — the kernel copies page-by-page, never uses
//    non-temporal stores, and contends on page locks when many readers hit
//    the same source pages (paper Table 5).  We reproduce those three
//    properties: page-granular t_copy, no NT stores, and an optional shared
//    page-lock table that serializes concurrent readers of the same page.
//
// With fork()-backed ranks the real process_vm_readv syscall is used when
// the kernel permits it (CAP_SYS_PTRACE / same-uid rules apply).
#pragma once

#include <cstddef>
#include <cstdint>

#include "yhccl/common/types.hpp"
#include "yhccl/mc/atomic.hpp"

namespace yhccl::rt {

/// Descriptor of a peer rank's (possibly private) buffer.
struct RemoteBuf {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
  int pid = 0;  ///< owning process (== getpid() for thread-backed teams)
};

/// Registry entry living in team shared memory: a single-writer seqlock
/// (Boehm, "Can seqlocks get along with programming language memory
/// models?").  Only the owning rank ever writes its entry; concurrent
/// readers take a consistent snapshot without blocking the writer:
///
///   writer: seq = odd (relaxed)          readers: s1 = seq (acquire)
///           fence(release)                        retry while s1 is odd
///           fields    (relaxed)                   read fields (relaxed)
///           seq = even (release)                  fence(acquire)
///                                                 retry unless seq == s1
///
/// The begin-store + release fence order the odd marker before the field
/// stores, so a reader that observes any new field value must also observe
/// an odd or advanced seq and retry; the final release store publishes the
/// fields to any reader whose first load returns the new even value.  The
/// previous revision had no odd/even protocol at all — a reader could
/// return a half-updated descriptor (caught by the hb checker audit).
struct RemoteWindow {
  mc::atomic<std::uint64_t> seq{0};  ///< odd ⇔ write in progress
  mc::atomic<const void*> ptr{nullptr};
  mc::atomic<std::size_t> bytes{0};
  mc::atomic<int> pid{0};
};

/// Writer half of the seqlock (owning rank only): publish a new descriptor.
void window_publish(RemoteWindow& w, const void* p, std::size_t bytes,
                    int pid) noexcept;

/// Reader half: spin for a consistent snapshot of the descriptor.
RemoteBuf window_read(const RemoteWindow& w);

enum class RemoteMode {
  direct,        ///< XPMEM-style: load remote memory straight through
  cma_pagewise,  ///< CMA-style: page-granular copy, temporal stores only
};

/// Emulates kernel page-lock contention for the CMA path: readers take a
/// spinlock hashed from the *source* page before copying each page.
class PageLockTable {
 public:
  static constexpr std::size_t kLocks = 512;
  static constexpr std::size_t kPageBytes = 4096;

  void lock(std::uintptr_t src_page);
  void unlock(std::uintptr_t src_page) noexcept;

  /// Force-release every lock.  Only safe on a quiesced team — used by
  /// Team::recover() to free locks a dead rank took to its grave.
  void reset() noexcept;

 private:
  struct alignas(kCacheline) Lock {
    mc::atomic<std::uint32_t> v{0};
  };
  Lock locks_[kLocks];
};

/// Can this process read a forked sibling's memory with process_vm_readv?
/// (Yama ptrace_scope or seccomp may forbid it.)
bool cma_available();

/// Read `n` bytes at `offset` inside `src` into `dst`.
///  * direct: one temporal copy (cross-process only if same pid or CMA OK)
///  * cma_pagewise: 4 KiB-page loop; takes `locks` per page when provided
void remote_read(void* dst, const RemoteBuf& src, std::size_t offset,
                 std::size_t n, RemoteMode mode,
                 PageLockTable* locks = nullptr);

}  // namespace yhccl::rt
