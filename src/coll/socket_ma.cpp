// Socket-aware two-level movement-avoiding reduction (paper §3.3, Fig. 7).
//
// Stage 1: each socket independently runs an MA reduction of the round's
//   data over its n = p/m local ranks (socket slice size I' = m*I, i.e. m
//   consecutive ownership blocks per socket slice), accumulating into a
//   per-socket shared buffer.  Only neighbour synchronization inside the
//   socket: p/m - 1 syncs instead of p - 1.
// Stage 2: rank r combines its final slice r across the m socket buffers
//   with one single-pass m-ary fused reduction and delivers it.  One node
//   barrier.
//
// DAV: s*(3p - m) + s*(m + 1) = s*(3p + 1), independent of m — below the
// paper's s*(3p + 2m - 3), which assumed a pairwise stage-2 chain; the
// fewer-synchronizations trade (Table 1 discussion) still applies.
//
// Falls back to the flat MA algorithm when the topology has one socket or
// the ranks do not divide evenly across sockets.
#include <cstdint>

#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/copy/policy.hpp"
#include "yhccl/copy/reduce_kernels.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::coll {

namespace {

using detail::BlockSlicing;

bool socket_layout_usable(const RankCtx& ctx) {
  auto& t = const_cast<RankCtx&>(ctx).team().topo();
  return t.nsockets() > 1 && t.nranks() % t.nsockets() == 0 &&
         t.nranks() / t.nsockets() >= 1;
}

enum class FinalDest : int { recv_block, shm };

struct SocketPlan {
  int p, m, n;        // ranks, sockets, ranks-per-socket
  int sock, q, base;  // my socket, local index, socket base rank
  std::byte* sock_shm(std::byte* scratch, int x, std::size_t I) const {
    return scratch + static_cast<std::size_t>(x) *
                         (static_cast<std::size_t>(p) * I);
  }
};

SocketPlan make_plan(RankCtx& ctx) {
  SocketPlan pl;
  pl.p = ctx.nranks();
  pl.m = ctx.nsockets();
  pl.n = pl.p / pl.m;
  pl.sock = ctx.socket();
  pl.q = ctx.socket_rank();
  pl.base = ctx.socket_base();
  return pl;
}

/// Stage 1 of round t: intra-socket MA accumulation into sock_shm[sock].
/// Socket slice u covers ownership blocks [u*m, (u+1)*m).
void stage1(RankCtx& ctx, const SocketPlan& pl, const std::byte* send,
            std::byte* my_sock_shm, const BlockSlicing& S, std::size_t t,
            Datatype d, ReduceOp op, const CollOpts& opts, std::size_t C,
            std::size_t W, std::uint64_t seq) {
  const int local_right = pl.base + (pl.q + 1) % pl.n;
  for (int j = 0; j < pl.n; ++j) {
    // Abort/injection check once per intra-socket slice step.
    rt::fault_point("slice");
    const int u = (pl.q + 1 + j) % pl.n;
    const std::uint64_t k = t * static_cast<std::size_t>(pl.n) +
                            static_cast<std::size_t>(j);
    if (k > 0 && pl.n > 1)
      ctx.step_wait(local_right, rt::RankCtx::step_value(seq, k));
    for (int b = u * pl.m; b < (u + 1) * pl.m; ++b) {
      const auto lb = static_cast<std::size_t>(b);
      const std::size_t len = S.len(lb, t);
      if (len == 0) continue;
      std::byte* slot = my_sock_shm + lb * S.slice;
      const std::byte* src = send + S.off(lb, t);
      if (j == 0) {
        trace::Span sp(trace::Phase::copy_in, len);
        if (sp.active())
          sp.set_variant(trace::copy_variant(
              copy::use_nt_store(opts.policy, true, C, W, len),
              static_cast<int>(copy::active_isa())));
        copy::dispatch_copy(opts.policy, slot, src, len,
                            /*temporal_hint=*/true, C, W);
      } else {
        trace::Span sp(trace::Phase::reduce, len);
        if (sp.active())
          sp.set_variant(trace::copy_variant(
              false, static_cast<int>(copy::active_isa())));
        copy::reduce_inplace(slot, src, len, d, op);
      }
    }
    ctx.step_publish(rt::RankCtx::step_value(seq, k + 1));
  }
}

/// Stage 2 of round t: combine slice `rank` across the m socket buffers.
void stage2(RankCtx& ctx, const SocketPlan& pl, std::byte* scratch,
            std::byte* dest, const BlockSlicing& S,
            Datatype d, ReduceOp op, bool nt, std::size_t len) {
  if (len == 0) return;
  const void* srcs[rt::kMaxSockets];
  const auto r = static_cast<std::size_t>(ctx.rank());
  for (int x = 0; x < pl.m; ++x)
    srcs[x] = pl.sock_shm(scratch, x, S.slice) + r * S.slice;
  trace::Span sp(trace::Phase::reduce, len);
  if (sp.active())
    sp.set_variant(
        trace::copy_variant(nt, static_cast<int>(copy::active_isa())));
  copy::reduce_out_multi(dest, srcs, pl.m, len, d, op, nt);
}

void socket_ma_core(RankCtx& ctx, const std::byte* send, std::byte* recv,
                    const BlockSlicing& S, Datatype d, ReduceOp op,
                    const CollOpts& opts, std::size_t W, FinalDest fd,
                    int root /* <0: scatter/allreduce copy-out semantics */,
                    bool copy_out_all) {
  const auto pl = make_plan(ctx);
  detail::ScratchCarver carve(ctx);
  std::byte* scratch = carve.take(static_cast<std::size_t>(pl.m) *
                                  static_cast<std::size_t>(pl.p) * S.slice);
  std::byte* my_sock_shm = pl.sock_shm(scratch, pl.sock, S.slice);
  std::byte* node_shm = pl.sock_shm(scratch, 0, S.slice);
  const std::size_t C = ctx.cache().available(pl.p);
  const std::uint64_t seq = ctx.next_seq();
  const auto r = static_cast<std::size_t>(ctx.rank());

  for (std::size_t t = 0; t < S.nrounds; ++t) {
    stage1(ctx, pl, send, my_sock_shm, S, t, d, op, opts, C, W, seq);
    ctx.barrier();  // every socket's stage-1 accumulation complete

    rt::fault_point("slice");
    const std::size_t len = S.len(r, t);
    if (fd == FinalDest::recv_block) {
      const bool nt =
          copy::use_nt_store(opts.policy, /*temporal_hint=*/false, C, W, len);
      stage2(ctx, pl, scratch, recv + S.off_in_block(t), S, d, op, nt, len);
    } else {
      // Result gathered into socket-0's buffer (read again right away).
      stage2(ctx, pl, scratch, node_shm + r * S.slice, S, d, op,
             /*nt=*/false, len);
    }
    ctx.barrier();  // stage-2 reads of all sockets' buffers complete

    if (fd == FinalDest::shm) {
      const bool root_only = root >= 0;
      if (copy_out_all || (root_only && ctx.rank() == root)) {
        trace::Span sp(trace::Phase::copy_out);
        if (sp.active())
          sp.set_variant(trace::copy_variant(
              copy::use_nt_store(opts.policy, false, C, W, S.slice),
              static_cast<int>(copy::active_isa())));
        for (int b = 0; b < pl.p; ++b) {
          const auto lb = static_cast<std::size_t>(b);
          const std::size_t blen = S.len(lb, t);
          if (blen > 0) {
            sp.add_bytes(blen);
            copy::dispatch_copy(opts.policy, recv + S.off(lb, t),
                                node_shm + lb * S.slice, blen,
                                /*temporal_hint=*/false, C, W);
          }
        }
      }
      ctx.barrier();  // copy-out done before the next round overwrites
    }
  }
}

}  // namespace

void socket_ma_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                              std::size_t count, Datatype d, ReduceOp op,
                              const CollOpts& opts) {
  // Outermost scope: a fallback to the flat arm nests inside it, so the
  // trace still attributes the call to the socket-aware algorithm choice.
  trace::CollScope coll_scope(
      detail::trace_coll_id(CollKind::reduce_scatter),
      count * dtype_size(d) * static_cast<std::size_t>(ctx.nranks()),
      detail::trace_alg_id(Algorithm::ma_socket_aware));
  if (!socket_layout_usable(ctx))
    return ma_reduce_scatter(ctx, send, recv, count, d, op, opts);
  detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t B = count * dtype_size(d);
  if (p == 1) {
    copy::t_copy(recv, send, B);
    return;
  }
  const std::size_t total = B * static_cast<std::size_t>(p);
  const auto S = BlockSlicing::with_block(total, B, opts);
  const std::size_t W = detail::WorkSet::reduce_scatter(total, p, S.slice);
  socket_ma_core(ctx, static_cast<const std::byte*>(send),
                 static_cast<std::byte*>(recv), S, d, op, opts, W,
                 FinalDest::recv_block, /*root=*/-1, /*copy_out_all=*/false);
}

void socket_ma_allreduce(RankCtx& ctx, const void* send, void* recv,
                         std::size_t count, Datatype d, ReduceOp op,
                         const CollOpts& opts) {
  trace::CollScope coll_scope(
      detail::trace_coll_id(CollKind::allreduce), count * dtype_size(d),
      detail::trace_alg_id(Algorithm::ma_socket_aware));
  if (!socket_layout_usable(ctx))
    return ma_allreduce(ctx, send, recv, count, d, op, opts);
  detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t total = count * dtype_size(d);
  if (p == 1) {
    copy::t_copy(recv, send, total);
    return;
  }
  const auto S = BlockSlicing::partitioned(total, p, opts);
  const std::size_t W =
      detail::WorkSet::allreduce(total, p, ctx.nsockets(), S.slice);
  socket_ma_core(ctx, static_cast<const std::byte*>(send),
                 static_cast<std::byte*>(recv), S, d, op, opts, W,
                 FinalDest::shm, /*root=*/-1, /*copy_out_all=*/true);
}

void socket_ma_reduce(RankCtx& ctx, const void* send, void* recv,
                      std::size_t count, Datatype d, ReduceOp op, int root,
                      const CollOpts& opts) {
  trace::CollScope coll_scope(
      detail::trace_coll_id(CollKind::reduce), count * dtype_size(d),
      detail::trace_alg_id(Algorithm::ma_socket_aware));
  if (!socket_layout_usable(ctx))
    return ma_reduce(ctx, send, recv, count, d, op, root, opts);
  detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t total = count * dtype_size(d);
  if (p == 1) {
    copy::t_copy(recv, send, total);
    return;
  }
  const auto S = BlockSlicing::partitioned(total, p, opts);
  const std::size_t W =
      detail::WorkSet::reduce(total, p, ctx.nsockets(), S.slice);
  socket_ma_core(ctx, static_cast<const std::byte*>(send),
                 static_cast<std::byte*>(recv), S, d, op, opts, W,
                 FinalDest::shm, root, /*copy_out_all=*/false);
}

}  // namespace yhccl::coll
