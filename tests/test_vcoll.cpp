// Tests for the variable-count collectives: randomized uneven counts
// (including zero-length contributions and single-rank-dominant layouts),
// equivalence with the uniform collectives when counts are equal, and the
// variable-block movement-avoiding reduce-scatter against a reference.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "yhccl/coll/vcoll.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::cached_team;

namespace {

std::vector<std::size_t> random_counts(int p, unsigned seed,
                                       std::size_t cap = 30000) {
  std::mt19937 rng(seed);
  std::vector<std::size_t> c(p);
  for (auto& x : c) {
    switch (rng() % 4) {
      case 0: x = 0; break;                    // empty contribution
      case 1: x = 1 + rng() % 7; break;        // tiny
      case 2: x = 1 + rng() % 1000; break;     // medium
      default: x = 1 + rng() % cap; break;     // large
    }
  }
  if (std::accumulate(c.begin(), c.end(), std::size_t{0}) == 0) c[0] = 17;
  return c;
}

class VCollSweep
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>> {};

TEST_P(VCollSweep, AllgathervCollectsRaggedBlocks) {
  const auto [p, m, seed] = GetParam();
  auto& team = cached_team(p, m);
  const auto counts = random_counts(p, seed);
  const std::size_t total =
      std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  std::vector<std::vector<double>> send(p), recv(p);
  for (int r = 0; r < p; ++r) {
    send[r].resize(std::max<std::size_t>(counts[r], 1));
    for (std::size_t i = 0; i < counts[r]; ++i)
      send[r][i] = r * 100000.0 + static_cast<double>(i % 9973);
    recv[r].assign(total, -1);
  }
  team.run([&](rt::RankCtx& ctx) {
    allgatherv(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
               counts.data(), Datatype::f64);
  });
  for (int r = 0; r < p; ++r) {
    std::size_t off = 0;
    for (int a = 0; a < p; ++a) {
      ASSERT_EQ(0, std::memcmp(recv[r].data() + off, send[a].data(),
                               counts[a] * 8))
          << "rank " << r << " block " << a;
      off += counts[a];
    }
  }
}

TEST_P(VCollSweep, ReduceScattervDeliversRaggedReductions) {
  const auto [p, m, seed] = GetParam();
  auto& team = cached_team(p, m);
  const auto counts = random_counts(p, seed + 1000);
  const std::size_t total =
      std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  std::vector<std::vector<double>> send(p), recv(p);
  for (int r = 0; r < p; ++r) {
    send[r].resize(total);
    for (std::size_t i = 0; i < total; ++i)
      send[r][i] = (r + 1) * 1.0 + static_cast<double>(i % 977);
    recv[r].assign(std::max<std::size_t>(counts[r], 1), -1);
  }
  CollOpts o;
  o.slice_max = 4u << 10;  // force several ragged rounds
  team.run([&](rt::RankCtx& ctx) {
    reduce_scatterv(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                    counts.data(), Datatype::f64, ReduceOp::sum, o);
  });
  std::size_t off = 0;
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < counts[r]; ++i) {
      double expect = 0;
      for (int a = 0; a < p; ++a)
        expect += (a + 1) * 1.0 + static_cast<double>((off + i) % 977);
      ASSERT_DOUBLE_EQ(recv[r][i], expect)
          << "rank " << r << " elem " << i;
    }
    off += counts[r];
  }
}

TEST_P(VCollSweep, ScattervAndGathervRoundTrip) {
  const auto [p, m, seed] = GetParam();
  auto& team = cached_team(p, m);
  const auto counts = random_counts(p, seed + 2000);
  const std::size_t total =
      std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  const int root = static_cast<int>(seed) % p;
  std::vector<double> rootbuf(total), gathered(total, -1);
  for (std::size_t i = 0; i < total; ++i)
    rootbuf[i] = static_cast<double>(i * 7 % 100003);
  std::vector<std::vector<double>> mine(p);
  for (int r = 0; r < p; ++r)
    mine[r].assign(std::max<std::size_t>(counts[r], 1), -1);
  team.run([&](rt::RankCtx& ctx) {
    const int r = ctx.rank();
    scatterv(ctx, r == root ? rootbuf.data() : nullptr, mine[r].data(),
             counts.data(), Datatype::f64, root);
    gatherv(ctx, mine[r].data(), r == root ? gathered.data() : nullptr,
            counts.data(), Datatype::f64, root);
  });
  // scatterv ∘ gatherv must be the identity on the root buffer.
  EXPECT_EQ(0, std::memcmp(gathered.data(), rootbuf.data(), total * 8));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VCollSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(1, 2),
                       ::testing::Values(11u, 22u, 33u)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "m" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(VColl, EqualCountsMatchUniformAllgather) {
  const int p = 4;
  auto& team = cached_team(p, 2);
  const std::size_t n = 5000;
  std::vector<std::size_t> counts(p, n);
  std::vector<std::vector<float>> send(p), va(p), ua(p);
  for (int r = 0; r < p; ++r) {
    send[r].resize(n);
    test::fill_buffer(send[r].data(), n, Datatype::f32, r, ReduceOp::sum);
    va[r].assign(n * p, -1);
    ua[r].assign(n * p, -2);
  }
  team.run([&](rt::RankCtx& ctx) {
    allgatherv(ctx, send[ctx.rank()].data(), va[ctx.rank()].data(),
               counts.data(), Datatype::f32);
    allgather(ctx, send[ctx.rank()].data(), ua[ctx.rank()].data(), n,
              Datatype::f32);
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(va[r], ua[r]);
}

TEST(VColl, AllZeroButOneRank) {
  const int p = 4;
  auto& team = cached_team(p, 2);
  std::vector<std::size_t> counts = {0, 0, 12345, 0};
  std::vector<double> contrib(12345, 3.25);
  std::vector<std::vector<double>> recv(p, std::vector<double>(12345, -1));
  team.run([&](rt::RankCtx& ctx) {
    allgatherv(ctx, ctx.rank() == 2 ? contrib.data() : nullptr,
               recv[ctx.rank()].data(), counts.data(), Datatype::f64);
  });
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < 12345; i += 1111)
      ASSERT_EQ(recv[r][i], 3.25) << "rank " << r;
}

}  // namespace
