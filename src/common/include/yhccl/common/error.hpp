// Error handling used across YHCCL: a single exception type plus
// check macros for invariants and syscalls.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace yhccl {

/// Why a collective failed, as classified by the fault subsystem
/// (docs/robustness.md).  `none` covers ordinary invariant/syscall errors.
enum class FaultKind : std::uint8_t {
  none = 0,
  peer_dead,      ///< a rank's process died or it left the SPMD function
  peer_diverged,  ///< a rank is alive but in a different collective sequence
  timeout,        ///< a rank stalled (or the cause could not be determined)
  corruption,     ///< shared control state failed an integrity check
};

constexpr const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::none: return "none";
    case FaultKind::peer_dead: return "peer-dead";
    case FaultKind::peer_diverged: return "peer-diverged";
    case FaultKind::timeout: return "timeout";
    case FaultKind::corruption: return "corruption";
  }
  return "?";
}

/// All YHCCL failures surface as this exception.  Failures detected by the
/// fault subsystem additionally carry a category, the faulting rank and the
/// team epoch the fault was raised in — every survivor of one aborted
/// collective reports the same triple.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  Error(const std::string& what, FaultKind kind, int rank, std::uint64_t epoch)
      : std::runtime_error(what), kind_(kind), rank_(rank), epoch_(epoch) {}

  FaultKind fault_kind() const noexcept { return kind_; }
  /// Faulting rank (-1 when unknown / not a fault).
  int fault_rank() const noexcept { return rank_; }
  /// Team epoch the fault was raised in (0 when not a fault).
  std::uint64_t fault_epoch() const noexcept { return epoch_; }

 private:
  FaultKind kind_ = FaultKind::none;
  int rank_ = -1;
  std::uint64_t epoch_ = 0;
};

[[noreturn]] inline void raise(const std::string& msg) { throw Error(msg); }

[[noreturn]] inline void raise_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace yhccl

/// Invariant check that stays on in release builds (collective protocols are
/// too easy to silently corrupt for asserts to be compiled out).
#define YHCCL_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::yhccl::raise(std::string("requirement failed: ") +     \
                                (msg) + " [" #cond "] at " __FILE__ ":" + \
                                std::to_string(__LINE__));                \
  } while (0)

#define YHCCL_CHECK_SYS(expr, what) \
  do {                              \
    if ((expr) < 0) ::yhccl::raise_errno(what); \
  } while (0)
