// Kernel-dispatch benchmark: single-pass m-ary fused reduction vs the
// pairwise chain it replaced, swept over ISA tiers (scalar / AVX2 /
// AVX-512, whichever the host runs) and fan-in m.
//
// For each (tier, m, size) cell it reports wall time for
//   * fused    — one reduce_out_multi call, (m+1)*n bytes of traffic;
//   * fused-nt — the same with streaming stores;
//   * chain    — reduce_out + (m-2) reduce_inplace, 3n(m-1) bytes;
// plus the measured DAV and kernel-dispatch counts of both shapes.
// Series land in the harness Session (BENCH_kernel_dispatch.json under
// $YHCCL_BENCH_JSON) for the comparator and plotting scripts.
//
// Knobs: YHCCL_BENCH_SCALE scales the size sweep; YHCCL_ISA caps the tier
// sweep the same way it caps production dispatch.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "yhccl/common/time.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/copy/reduce_kernels.hpp"
#include "bench_util.hpp"

using yhccl::Datatype;
using yhccl::ReduceOp;
using yhccl::Timer;
namespace yc = yhccl::copy;
namespace yb = yhccl::bench;

namespace {

constexpr int kMaxM = 8;

/// Kernel benches are single-threaded: sample `fn` under the RunPolicy
/// repetition/CI/budget discipline directly (no team, no barrier), rewriting
/// the first source between iterations so no arm benefits from
/// cache-resident inputs.
template <typename Fn>
yb::Summary time_kernel(std::vector<float>& src0, const Fn& fn,
                        const yb::RunPolicy& policy) {
  std::vector<double> samples;
  double spent = 0;
  const int total = policy.warmup + policy.max_reps;
  for (int it = 0; it < total; ++it) {
    for (std::size_t i = 0; i < src0.size(); i += 128)
      src0[i] = static_cast<float>(it + 1);
    const Timer t;
    fn();
    const double s = t.elapsed();
    if (it >= policy.warmup) samples.push_back(s);
    spent += s;
    if (static_cast<int>(samples.size()) >= policy.min_reps) {
      const auto sum = yb::summarize(samples, policy.outlier_k);
      if (sum.rel_ci() <= policy.target_rel_ci || spent > policy.budget_s)
        return sum;
    }
  }
  return yb::summarize(samples, policy.outlier_k);
}

std::vector<yc::IsaTier> tier_sweep() {
  std::vector<yc::IsaTier> ts;
  for (int t = 0; t <= static_cast<int>(yc::active_isa()); ++t)
    ts.push_back(static_cast<yc::IsaTier>(t));
  return ts;
}

}  // namespace

int main() {
  const double scale = yhccl::bench::bench_scale();
  std::vector<std::size_t> sizes;
  for (std::size_t s : {std::size_t{256} << 10, std::size_t{4} << 20,
                        std::size_t{16} << 20})
    sizes.push_back(static_cast<std::size_t>(s * scale) & ~std::size_t{63});
  const std::vector<int> fanins = {2, 4, 8};

  std::vector<std::vector<float>> bufs(kMaxM);
  std::vector<float> out;

  yb::Session session("kernel_dispatch");

  // One Series per (tier, m, size, shape): single-threaded kernel cells,
  // so ranks = sockets = 1 and sync counters stay zero.
  const auto record = [&](yc::IsaTier tier, int m, std::size_t bytes,
                          const std::string& shape, yb::Summary time,
                          yc::Dav dav, yc::KernelCounts kc) {
    yb::Series se;
    se.bench = session.name();
    se.collective = "kernel";
    // The tier is part of the identity here (the sweep forces each tier in
    // turn), so it goes into the algorithm name, not just the isa field.
    se.algorithm = std::string(yc::isa_name(tier)) + "/" + shape +
                   "@m=" + std::to_string(m);
    se.ranks = 1;
    se.sockets = 1;
    se.bytes = bytes;
    se.time = time;
    se.dab = time.median > 0
                 ? static_cast<double>(dav.total()) / time.median
                 : 0.0;
    se.counters.dav = dav;
    se.counters.kernels = kc;
    se.isa = yc::isa_name(tier);
    session.add(se);
    return se;
  };

  std::printf("%-8s %3s %8s %12s %12s %12s %8s %10s %10s\n", "tier", "m",
              "size", "fused(us)", "fused-nt(us)", "chain(us)", "speedup",
              "fusedDAV", "chainDAV");

  const auto initial = yc::active_isa();
  for (yc::IsaTier tier : tier_sweep()) {
    yc::force_isa(tier);
    for (int m : fanins) {
      for (std::size_t bytes : sizes) {
        const std::size_t cnt = bytes / sizeof(float);
        for (int k = 0; k < m; ++k)
          bufs[k].assign(cnt, static_cast<float>(k + 1));
        out.assign(cnt, 0.0f);
        std::vector<const void*> srcs;
        for (int k = 0; k < m; ++k) srcs.push_back(bufs[k].data());

        auto fused = [&](bool nt) {
          yc::reduce_out_multi(out.data(), srcs.data(), m, bytes,
                               Datatype::f32, ReduceOp::sum, nt);
        };
        auto chain = [&] {
          yc::reduce_out(out.data(), srcs[0], srcs[1], bytes, Datatype::f32,
                         ReduceOp::sum, false);
          for (int k = 2; k < m; ++k)
            yc::reduce_inplace(out.data(), srcs[k], bytes, Datatype::f32,
                               ReduceOp::sum);
        };

        yc::Dav fused_dav, chain_dav;
        yc::KernelCounts fused_kc, chain_kc;
        {
          yc::DavScope d;
          yc::KernelCountScope kcs;
          fused(false);
          fused_dav = d.delta();
          fused_kc = kcs.delta();
        }
        {
          yc::DavScope d;
          yc::KernelCountScope kcs;
          chain();
          chain_dav = d.delta();
          chain_kc = kcs.delta();
        }
        const auto policy = session.policy();
        const auto tf = time_kernel(bufs[0], [&] { fused(false); }, policy);
        const auto tn = time_kernel(bufs[0], [&] { fused(true); }, policy);
        const auto tc = time_kernel(bufs[0], [&] { chain(); }, policy);
        record(tier, m, bytes, "fused", tf, fused_dav, fused_kc);
        record(tier, m, bytes, "fused-nt", tn, fused_dav, fused_kc);
        record(tier, m, bytes, "chain", tc, chain_dav, chain_kc);

        std::printf(
            "%-8s %3d %8s %12.1f %12.1f %12.1f %8.2f %10.1f %10.1f\n",
            yc::isa_name(tier), m,
            yhccl::bench::human_size(bytes).c_str(), tf.median * 1e6,
            tn.median * 1e6, tc.median * 1e6,
            tf.median > 0 ? tc.median / tf.median : 0.0,
            static_cast<double>(fused_dav.total()) / 1e6,
            static_cast<double>(chain_dav.total()) / 1e6);
      }
    }
  }
  yc::force_isa(initial);

  session.write();
  return 0;
}
