# Empty compiler generated dependencies file for test_coll_extra.
# This may be replaced when dependencies are built.
