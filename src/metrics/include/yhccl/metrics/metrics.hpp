// Always-on shared-memory metrics registry (docs/observability.md §6).
//
// One `[metrics]` section of the team's MAP_SHARED mapping holds a per-rank
// slot of counters, gauges and log2-bucketed latency histograms keyed by
// (collective, algorithm, size bucket).  The hot-path discipline mirrors
// the phase tracer (trace.hpp):
//   * every hook is a thread-local load + one predictable branch when the
//     team runs with metrics off (the default) — no section is mapped, no
//     counter exists, the schedule is bit-identical;
//   * when on, updates are relaxed *single-writer* stores into the rank's
//     own cacheline-padded slot: no RMW, no reads of other ranks' state,
//     zero allocation, wait-free — cheap enough to leave on in production;
//   * everything is mc::atomic, so the atomics lint and the -DYHCCL_MC
//     model checker cover this layer like the rest of src/runtime.
//
// Unlike the tracer (a bounded flight recorder of *events*), this layer is
// a live *aggregate* view: cumulative counters a sampler thread or an
// external `yhccl_top` can read while the team is running.  Readers take
// relaxed snapshots — monotone counters make torn cross-field reads
// benign — and the barrier-arrival sliding window is published with the
// same release-counter protocol as the trace rings.
//
// Activation: TeamConfig::metrics, defaulting to $YHCCL_METRICS
// (off | on | serve); `serve` additionally starts the parent-side sampler
// (sampler.hpp) that exports snapshots and runs the straggler detector.
#pragma once

#include <cstddef>
#include <cstdint>

#include "yhccl/common/error.hpp"
#include "yhccl/common/types.hpp"
#include "yhccl/mc/atomic.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::metrics {

inline constexpr const char* kMetricsSchema = "yhccl-metrics/1";

/// Metrics activation level (TeamConfig::metrics / $YHCCL_METRICS).
enum class Mode : std::uint8_t {
  env,    ///< resolve from $YHCCL_METRICS at team construction (default off)
  off,    ///< no section mapped; every hook is a dead branch
  on,     ///< live registry; final snapshot export via $YHCCL_METRICS_DIR
  serve,  ///< `on` + sampler thread: periodic export, live shm mirror,
          ///< straggler detection (docs/observability.md §6)
};

/// Parse $YHCCL_METRICS (unset/empty -> off; anything else unknown raises).
Mode mode_from_env();
/// TeamConfig::metrics resolution: Mode::env defers to mode_from_env().
Mode resolve_mode(Mode cfg);
const char* mode_name(Mode m) noexcept;
/// $YHCCL_METRICS_DIR, or nullptr when unset/empty.
const char* metrics_dir() noexcept;
/// $YHCCL_METRICS_INTERVAL_MS clamped to [10, 600000]; default 1000.
int interval_ms_from_env();

// ---- registry geometry ------------------------------------------------------

/// Collective-kind ids: 0 = outside/unknown, 1 + coll::CollKind otherwise —
/// the same convention as trace::coll_id_name (test_metrics pins them).
inline constexpr int kCollSlots = 6;
/// Algorithm ids: 0 = unknown, 1 + coll::Algorithm otherwise.
inline constexpr int kAlgSlots = 6;
/// log2 size classes over payload bytes (covers 0 .. >8 GiB).
inline constexpr int kSizeBuckets = 34;
/// log2 latency histogram buckets over TSC ticks.
inline constexpr int kLatBuckets = 32;
/// Barrier-arrival sliding-window capacity per rank (power of two).
inline constexpr int kWindowSlots = 128;
inline constexpr int kCellCount = kCollSlots * kAlgSlots * kSizeBuckets;

const char* coll_slot_name(int id) noexcept;
const char* alg_slot_name(int id) noexcept;

/// log2 bucketing shared by the latency histograms and the size classes:
/// bucket 0 holds exactly {0}; bucket b >= 1 covers [2^(b-1), 2^b); the
/// last bucket absorbs everything above 2^(cap-2) (incl. UINT64_MAX).
constexpr int log2_bucket(std::uint64_t v, int cap) noexcept {
  if (v == 0) return 0;
  int b = 1;
  while (v > 1 && b < cap - 1) {
    v >>= 1;
    ++b;
  }
  return b;
}
constexpr int lat_bucket(std::uint64_t ticks) noexcept {
  return log2_bucket(ticks, kLatBuckets);
}
constexpr int size_bucket(std::uint64_t bytes) noexcept {
  return log2_bucket(bytes, kSizeBuckets);
}
/// Exclusive upper bound of bucket `b` (UINT64_MAX for the last bucket).
constexpr std::uint64_t bucket_limit(int b, int cap) noexcept {
  if (b <= 0) return 1;
  if (b >= cap - 1) return ~0ull;
  return 1ull << b;
}

/// Packed per-collective plan gauge (note_plan): what the tuner served
/// last.  bit 63 = valid, byte 0 = algorithm id, byte 1 = arm, byte 2 =
/// PlanSource, byte 3 = plan-key size bucket.
constexpr std::uint64_t plan_gauge_pack(int alg_id, int arm, int source,
                                        int bucket) noexcept {
  return (1ull << 63) |
         (static_cast<std::uint64_t>(bucket & 0xff) << 24) |
         (static_cast<std::uint64_t>(source & 0xff) << 16) |
         (static_cast<std::uint64_t>(arm & 0xff) << 8) |
         static_cast<std::uint64_t>(alg_id & 0xff);
}
constexpr bool gauge_valid(std::uint64_t g) noexcept { return (g >> 63) != 0; }
constexpr int gauge_alg(std::uint64_t g) noexcept {
  return static_cast<int>(g & 0xff);
}
constexpr int gauge_arm(std::uint64_t g) noexcept {
  return static_cast<int>((g >> 8) & 0xff);
}
constexpr int gauge_source(std::uint64_t g) noexcept {
  return static_cast<int>((g >> 16) & 0xff);
}
constexpr int gauge_bucket(std::uint64_t g) noexcept {
  return static_cast<int>((g >> 24) & 0xff);
}

// ---- shared-memory layout ---------------------------------------------------

/// Single-writer relaxed bump: load + store, no RMW.  Only the owning rank
/// (or the quiesced parent) writes a given counter, so this is exact — and
/// it is the entire hot-path write cost of the metrics layer.
inline void bump(mc::atomic<std::uint64_t>& c, std::uint64_t d = 1) noexcept {
  c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
}

/// One (collective, algorithm, size-bucket) accounting cell.
struct Cell {
  mc::atomic<std::uint64_t> calls{0};
  mc::atomic<std::uint64_t> bytes{0};
  mc::atomic<std::uint64_t> ticks{0};  ///< summed call latency (trace_now)
  mc::atomic<std::uint64_t> hist[kLatBuckets]{};  ///< log2 latency histogram
};

/// One barrier arrival..depart stamp.  All-atomic so a live sampler read
/// during wraparound is a benign stale value, never a data race.
struct WindowEntry {
  mc::atomic<std::uint64_t> ordinal{0};  ///< (run_seq << 24) | barrier ordinal
  mc::atomic<std::uint64_t> arrive{0};
  mc::atomic<std::uint64_t> depart{0};
};

/// Per-rank metrics slot.  Rank-written fields use relaxed single-writer
/// stores from the hot path; the `runs`/`wall_ns`/`dav_*` cumulatives are
/// folded in by the parent after each run() while the team is quiesced.
struct alignas(kCacheline) RankSlot {
  mc::atomic<std::uint64_t> barriers{0};
  mc::atomic<std::uint64_t> flag_posts{0};
  mc::atomic<std::uint64_t> flag_waits{0};
  mc::atomic<std::uint64_t> barrier_wait_ticks{0};  ///< arrive..depart sums
  mc::atomic<std::uint64_t> plan_gauge[kCollSlots]{};  ///< last served plan
  mc::atomic<std::uint64_t> runs{0};
  mc::atomic<std::uint64_t> wall_ns{0};
  mc::atomic<std::uint64_t> dav_loads{0};
  mc::atomic<std::uint64_t> dav_stores{0};
  /// Node-barrier arrival window: slots published by a release store of
  /// `window_next` (the trace-ring protocol; readers acquire the counter).
  mc::atomic<std::uint64_t> window_next{0};
  WindowEntry window[kWindowSlots];
  Cell cells[kCellCount];
};

/// Team-wide gauges, written only by the parent (under the team's metrics
/// mutex): run counts, membership, and the folded ResilienceStats /
/// PlanRegistryStats so exporters read everything from this one section.
struct alignas(kCacheline) TeamGauges {
  mc::atomic<std::uint64_t> runs{0};
  mc::atomic<std::uint64_t> epoch{0};
  mc::atomic<std::uint64_t> active_ranks{0};
  mc::atomic<std::uint64_t> straggler_flags{0};
  // ResilienceStats mirror (docs/robustness.md).
  mc::atomic<std::uint64_t> rs_faults{0};
  mc::atomic<std::uint64_t> rs_retries{0};
  mc::atomic<std::uint64_t> rs_recoveries{0};
  mc::atomic<std::uint64_t> rs_degrades{0};
  mc::atomic<std::uint64_t> rs_quarantines{0};
  mc::atomic<std::uint64_t> rs_corruptions{0};
  mc::atomic<std::uint64_t> rs_giveups{0};
  mc::atomic<std::uint64_t> rs_heals{0};
  // PlanRegistryStats mirror (docs/tuning.md).
  mc::atomic<std::uint64_t> plan_lookups{0};
  mc::atomic<std::uint64_t> plan_hits{0};
  mc::atomic<std::uint64_t> plan_misses{0};
  mc::atomic<std::uint64_t> plan_inserts{0};
  mc::atomic<std::uint64_t> plan_explores{0};
  mc::atomic<std::uint64_t> plan_commits{0};
  mc::atomic<std::uint64_t> plan_loaded{0};
  mc::atomic<std::uint64_t> plan_entries{0};
  mc::atomic<std::uint64_t> plan_quarantines{0};
};

/// The per-team metrics registry, placement-constructed over the `[metrics]`
/// section of the shared mapping (mirrors TraceBuffer / PlanRegistry):
///   [MetricsBuffer header][TeamGauges][RankSlot 0]...[RankSlot p-1]
/// Trivially destructible: the mapping just goes away.
class MetricsBuffer {
 public:
  static std::size_t required_bytes(int nranks);
  static MetricsBuffer* create(void* mem, std::size_t bytes, int nranks,
                               Mode mode);

  MetricsBuffer(const MetricsBuffer&) = delete;
  MetricsBuffer& operator=(const MetricsBuffer&) = delete;

  int nranks() const noexcept { return nranks_; }
  Mode mode() const noexcept { return mode_; }
  /// Timestamp origin: trace_now() at create; every stamp is later.
  std::uint64_t t_origin() const noexcept { return tsc0_; }
  /// Ticks-per-second calibration (the TraceBuffer scheme: derived lazily
  /// from (trace_now, wall) pairs and cached in this shared header, so
  /// every reader — either side of a fork() — converts identically).
  double ticks_per_second() const noexcept;

  TeamGauges& team() const noexcept {
    return *reinterpret_cast<TeamGauges*>(base());
  }
  RankSlot& rank(int r) const noexcept { return slots()[r]; }

  static constexpr int cell_index(int coll, int alg, int szb) noexcept {
    const int c = coll < 0 ? 0 : (coll >= kCollSlots ? kCollSlots - 1 : coll);
    const int a = alg < 0 ? 0 : (alg >= kAlgSlots ? kAlgSlots - 1 : alg);
    const int b = szb < 0 ? 0 : (szb >= kSizeBuckets ? kSizeBuckets - 1 : szb);
    return (c * kAlgSlots + a) * kSizeBuckets + b;
  }
  Cell& cell(int r, int coll, int alg, int szb) const noexcept {
    return rank(r).cells[cell_index(coll, alg, szb)];
  }

 private:
  MetricsBuffer() = default;

  std::byte* base() const noexcept {
    return const_cast<std::byte*>(reinterpret_cast<const std::byte*>(this)) +
           round_up(sizeof(MetricsBuffer), kCacheline);
  }
  RankSlot* slots() const noexcept {
    return reinterpret_cast<RankSlot*>(base() +
                                       round_up(sizeof(TeamGauges),
                                                alignof(RankSlot)));
  }

  int nranks_ = 0;
  Mode mode_ = Mode::off;
  std::uint64_t tsc0_ = 0;  ///< trace_now() at create
  double wall0_ = 0;        ///< wall_seconds() at create
  mutable mc::atomic<std::uint64_t> hz_bits_{0};  ///< cached calibration
};

// ---- hot-path hooks ---------------------------------------------------------

namespace detail {
/// Per-thread (post-fork: per-process) metrics context installed by
/// Team::run_once (mirrors trace::TraceCtx).  Null buf ⇒ every hook is a
/// single dead branch.
struct MetricsCtx {
  MetricsBuffer* buf = nullptr;
  int rank = 0;                      ///< my slot index (original rank id)
  std::uint64_t run_seq = 0;         ///< team-wide run() ordinal
  std::uint64_t node_barriers = 0;   ///< node barriers entered this run
};
inline thread_local MetricsCtx tl_metrics;
}  // namespace detail

/// True when this thread is currently metering (one TL load).
inline bool active() noexcept { return detail::tl_metrics.buf != nullptr; }

/// RAII context installer used by Team::run_once (mirrors TraceRunScope).
class RunScope {
 public:
  RunScope(MetricsBuffer* buf, int rank, std::uint64_t run_seq) noexcept {
    auto& c = detail::tl_metrics;
    c.buf = buf;
    c.rank = rank;
    c.run_seq = run_seq;
    c.node_barriers = 0;
  }
  ~RunScope() { detail::tl_metrics = detail::MetricsCtx{}; }
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;
};

inline void note_flag_post() noexcept {
  auto& c = detail::tl_metrics;
  if (c.buf == nullptr) return;
  bump(c.buf->rank(c.rank).flag_posts);
}

inline void note_flag_wait() noexcept {
  auto& c = detail::tl_metrics;
  if (c.buf == nullptr) return;
  bump(c.buf->rank(c.rank).flag_waits);
}

/// The tuner's per-collective serving gauge (plan_engine.cpp).
inline void note_plan(int coll_id, std::uint64_t gauge) noexcept {
  auto& c = detail::tl_metrics;
  if (c.buf == nullptr) return;
  const int id =
      coll_id < 0 ? 0 : (coll_id >= kCollSlots ? kCollSlots - 1 : coll_id);
  c.buf->rank(c.rank).plan_gauge[id].store(gauge, std::memory_order_relaxed);
}

/// Barrier arrive..depart accounting, placed inside barrier_arrive /
/// dissemination_arrive next to the trace span.  Every scope counts into
/// `barriers` / `barrier_wait_ticks`; node-scope arrivals additionally land
/// in the sliding window the straggler detector groups by ordinal (socket
/// barriers have per-socket participant sets, so their skew is not
/// team-comparable and stays out of the window).
class BarrierScope {
 public:
  explicit BarrierScope(std::uint8_t trace_scope) noexcept
      : buf_(detail::tl_metrics.buf), node_(trace_scope == 0) {
    if (buf_ == nullptr) return;
    t0_ = trace::trace_now();
  }
  BarrierScope(const BarrierScope&) = delete;
  BarrierScope& operator=(const BarrierScope&) = delete;
  ~BarrierScope() {
    if (buf_ == nullptr) return;
    auto& c = detail::tl_metrics;
    RankSlot& s = buf_->rank(c.rank);
    const std::uint64_t t1 = trace::trace_now();
    bump(s.barriers);
    bump(s.barrier_wait_ticks, t1 - t0_);
    if (!node_) return;
    // Ordinals mix the team-wide run ordinal with the per-run barrier count
    // so arrivals group correctly across run() calls (the per-run counter
    // restarts, the timestamps do not).
    const std::uint64_t ord =
        (c.run_seq << 24) | (++c.node_barriers & 0xffffffull);
    const std::uint64_t n = s.window_next.load(std::memory_order_relaxed);
    WindowEntry& w = s.window[n & (kWindowSlots - 1)];
    w.ordinal.store(ord, std::memory_order_relaxed);
    w.arrive.store(t0_, std::memory_order_relaxed);
    w.depart.store(t1, std::memory_order_relaxed);
    // The trace-ring publish protocol (and its WeakPoint): slot stores
    // ordered before a release store of the counter; readers acquire it.
    s.window_next.store(n + 1, YHCCL_MC_ORDER(ring_push_release,
                                              std::memory_order_release));
  }

 private:
  MetricsBuffer* buf_;
  std::uint64_t t0_ = 0;
  bool node_;
};

/// Whole-collective sample from the switching layer: one cell update per
/// generic entry — calls, payload bytes, latency sum and one histogram
/// increment (so sum(hist) == calls holds exactly on a quiesced team).
class CollSample {
 public:
  CollSample(int coll_id, std::uint64_t payload_bytes) noexcept
      : buf_(detail::tl_metrics.buf), bytes_(payload_bytes), coll_(coll_id) {
    if (buf_ == nullptr) return;
    t0_ = trace::trace_now();
  }
  CollSample(const CollSample&) = delete;
  CollSample& operator=(const CollSample&) = delete;
  /// The dispatched algorithm (1 + coll::Algorithm), once the switch
  /// decided; cheap enough to set unconditionally.
  void set_alg(int alg_id) noexcept { alg_ = alg_id; }
  ~CollSample() {
    if (buf_ == nullptr) return;
    auto& c = detail::tl_metrics;
    const std::uint64_t dt = trace::trace_now() - t0_;
    Cell& cell = buf_->cell(c.rank, coll_, alg_,
                            size_bucket(bytes_));
    bump(cell.hist[lat_bucket(dt)]);
    bump(cell.ticks, dt);
    bump(cell.bytes, bytes_);
    bump(cell.calls);
  }

 private:
  MetricsBuffer* buf_;
  std::uint64_t t0_ = 0;
  std::uint64_t bytes_;
  int coll_;
  int alg_ = 0;
};

}  // namespace yhccl::metrics
