// Data-access-volume (DAV) instrumentation.
//
// The paper's analysis (Tables 1-3) counts bytes loaded and stored by the
// copy and reduction kernels: a copy moves 2 bytes per payload byte (one
// load + one store), a two-operand reduction moves 3.  Every kernel in
// src/copy increments these thread-local counters so tests can check the
// implementation against the analytical models *exactly*.
#pragma once

#include <cstdint>

namespace yhccl::copy {

struct Dav {
  std::uint64_t loads = 0;   ///< bytes read from memory
  std::uint64_t stores = 0;  ///< bytes written to memory

  std::uint64_t total() const noexcept { return loads + stores; }

  Dav operator-(const Dav& o) const noexcept {
    return Dav{loads - o.loads, stores - o.stores};
  }
  Dav& operator+=(const Dav& o) noexcept {
    loads += o.loads;
    stores += o.stores;
    return *this;
  }
  bool operator==(const Dav&) const noexcept = default;
};

namespace detail {
inline thread_local Dav g_dav;
}

/// Account `l` loaded and `s` stored bytes to the calling thread.
inline void dav_add(std::uint64_t l, std::uint64_t s) noexcept {
  detail::g_dav.loads += l;
  detail::g_dav.stores += s;
}

inline Dav dav_read() noexcept { return detail::g_dav; }
inline void dav_reset() noexcept { detail::g_dav = Dav{}; }

/// RAII delta measurement:  DavScope d; ...; d.delta().total()
class DavScope {
 public:
  DavScope() : start_(dav_read()) {}
  Dav delta() const noexcept { return dav_read() - start_; }

 private:
  Dav start_;
};

}  // namespace yhccl::copy
