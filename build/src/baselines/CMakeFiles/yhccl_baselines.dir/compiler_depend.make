# Empty compiler generated dependencies file for yhccl_baselines.
# This may be replaced when dependencies are built.
