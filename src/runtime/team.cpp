#include "yhccl/runtime/team.hpp"

#include <unistd.h>

#include <algorithm>
#include <new>

#include "yhccl/common/error.hpp"
#include "yhccl/common/time.hpp"
#include "yhccl/copy/kernels.hpp"

namespace yhccl::rt {

namespace {
constexpr std::size_t kPageAlign = 4096;
}

Team::Team(TeamConfig cfg) : cfg_(cfg), topo_(cfg.nranks, cfg.nsockets) {
  YHCCL_REQUIRE(cfg_.nranks >= 1 && cfg_.nranks <= kMaxRanks,
                "nranks out of range");
  YHCCL_REQUIRE(cfg_.nsockets >= 1 && cfg_.nsockets <= kMaxSockets,
                "nsockets out of range");
  YHCCL_REQUIRE(cfg_.chunk_bytes >= 256, "pt2pt chunk too small");

  const std::size_t p = static_cast<std::size_t>(cfg_.nranks);
  const std::size_t nchan = p * p;
  const std::size_t chan_data = FifoChannel::kSlots * cfg_.chunk_bytes;

  std::size_t off = round_up(sizeof(TeamShared), kPageAlign);
  off_channels_ = off;
  off = round_up(off + nchan * sizeof(FifoChannel), kPageAlign);
  off_chan_data_ = off;
  off = round_up(off + nchan * chan_data, kPageAlign);
  off_heap_ = off;
  off = round_up(off + cfg_.shared_heap_bytes, kPageAlign);
  off_scratch_ = off;
  off = round_up(off + cfg_.scratch_bytes, kPageAlign);

  region_ = ShmRegion::create_anonymous(off);
  shared_ = new (region_.data()) TeamShared();
  barrier_init(shared_->node_barrier, static_cast<std::uint32_t>(p));
  for (int s = 0; s < cfg_.nsockets; ++s)
    barrier_init(shared_->socket_barrier[s],
                 static_cast<std::uint32_t>(topo_.socket_size(s)));
  auto* chans = reinterpret_cast<FifoChannel*>(region_.data() + off_channels_);
  for (std::size_t c = 0; c < nchan; ++c) new (chans + c) FifoChannel();
}

FifoChannel& Team::channel(int src, int dst) noexcept {
  auto* chans = reinterpret_cast<FifoChannel*>(region_.data() + off_channels_);
  return chans[static_cast<std::size_t>(src) * cfg_.nranks + dst];
}

std::byte* Team::channel_data(int src, int dst) noexcept {
  const std::size_t stride = FifoChannel::kSlots * cfg_.chunk_bytes;
  return region_.data() + off_chan_data_ +
         (static_cast<std::size_t>(src) * cfg_.nranks + dst) * stride;
}

std::byte* Team::shared_alloc(std::size_t bytes, std::size_t align) {
  YHCCL_REQUIRE(align != 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
  auto& cur = shared_->heap_cursor;
  std::uint64_t old = cur.load(std::memory_order_relaxed);
  std::uint64_t base;
  do {
    base = (old + align - 1) & ~(static_cast<std::uint64_t>(align) - 1);
    YHCCL_REQUIRE(base + bytes <= cfg_.shared_heap_bytes,
                  "shared heap exhausted");
  } while (!cur.compare_exchange_weak(old, base + bytes,
                                      std::memory_order_relaxed));
  return region_.data() + off_heap_ + base;
}

void Team::run(const std::function<void(RankCtx&)>& fn) {
  run_ranks([&](int rank) {
    RankCtx ctx(*this, rank);
    copy::dav_reset();
    const double t0 = wall_seconds();
    fn(ctx);
    const double t1 = wall_seconds();
    shared_->dav_out[rank] = copy::dav_read();
    shared_->time_out[rank] = t1 - t0;
  });
}

copy::Dav Team::total_dav() const {
  copy::Dav total;
  for (int r = 0; r < cfg_.nranks; ++r) total += shared_->dav_out[r];
  return total;
}

double Team::max_time() const {
  double m = 0;
  for (int r = 0; r < cfg_.nranks; ++r)
    m = std::max(m, shared_->time_out[r]);
  return m;
}

// ---------------------------------------------------------------------------
// RankCtx
// ---------------------------------------------------------------------------

RankCtx::RankCtx(Team& team, int rank)
    : team_(&team),
      rank_(rank),
      nranks_(team.nranks()),
      persist_(&team.shared().persist[rank]) {
  YHCCL_REQUIRE(rank >= 0 && rank < nranks_, "rank out of range");
}

void RankCtx::barrier() {
  barrier_arrive(team_->shared().node_barrier, persist_->node_sense);
}

void RankCtx::socket_barrier() {
  barrier_arrive(team_->shared().socket_barrier[socket()],
                 persist_->sock_sense);
}

std::uint64_t RankCtx::next_seq() { return ++persist_->coll_seq; }

void RankCtx::step_publish(std::uint64_t v) noexcept {
  team_->shared().step[rank_].v.store(v, std::memory_order_release);
}

void RankCtx::step_wait(int peer, std::uint64_t v) {
  spin_wait_ge(team_->shared().step[peer].v, v);
}

void RankCtx::publish_buffer(int slot, const void* p, std::size_t bytes) {
  YHCCL_REQUIRE(slot >= 0 && slot < kRegistrySlots, "registry slot");
  auto& w = team_->shared().registry[rank_][slot];
  w.ptr = p;
  w.bytes = bytes;
  w.pid = getpid();
  w.seq.fetch_add(1, std::memory_order_release);
}

RemoteBuf RankCtx::remote_buffer(int peer, int slot) const {
  YHCCL_REQUIRE(slot >= 0 && slot < kRegistrySlots, "registry slot");
  const auto& w = team_->shared().registry[peer][slot];
  (void)w.seq.load(std::memory_order_acquire);
  return RemoteBuf{w.ptr, w.bytes, w.pid};
}

// ---------------------------------------------------------------------------
// pt2pt: eager two-copy FIFO
// ---------------------------------------------------------------------------

void RankCtx::send(int dst, const void* p, std::size_t n, int tag) {
  YHCCL_REQUIRE(dst >= 0 && dst < nranks_ && dst != rank_, "bad send peer");
  auto& ch = team_->channel(rank_, dst);
  std::byte* data = team_->channel_data(rank_, dst);
  const std::size_t chunk = config().chunk_bytes;
  const auto* src = static_cast<const std::byte*>(p);
  std::size_t off = 0;
  do {
    const std::uint64_t t = ch.tail.load(std::memory_order_relaxed);
    SpinGuard guard("pt2pt send slot wait");
    while (t - ch.head.load(std::memory_order_acquire) >= FifoChannel::kSlots)
      guard.relax();
    const auto slot = static_cast<std::size_t>(t % FifoChannel::kSlots);
    const std::size_t len = std::min(chunk, n - off);
    if (len > 0) copy::t_copy(data + slot * chunk, src + off, len);
    ch.meta[slot] = {static_cast<std::uint32_t>(len), tag};
    ch.tail.store(t + 1, std::memory_order_release);
    off += len;
  } while (off < n);
}

void RankCtx::recv(int src, void* p, std::size_t n, int tag) {
  YHCCL_REQUIRE(src >= 0 && src < nranks_ && src != rank_, "bad recv peer");
  auto& ch = team_->channel(src, rank_);
  std::byte* data = team_->channel_data(src, rank_);
  const std::size_t chunk = config().chunk_bytes;
  auto* dst = static_cast<std::byte*>(p);
  std::size_t off = 0;
  do {
    const std::uint64_t h = ch.head.load(std::memory_order_relaxed);
    spin_wait_ge(ch.tail, h + 1);
    const auto slot = static_cast<std::size_t>(h % FifoChannel::kSlots);
    const auto [len, mtag] = ch.meta[slot];
    YHCCL_REQUIRE(mtag == tag, "pt2pt tag mismatch");
    YHCCL_REQUIRE(off + len <= n, "pt2pt recv overflow");
    if (len > 0) copy::t_copy(dst + off, data + slot * chunk, len);
    ch.head.store(h + 1, std::memory_order_release);
    off += len;
  } while (off < n);
}

void RankCtx::sendrecv(int dst, const void* sbuf, std::size_t sn, int src,
                       void* rbuf, std::size_t rn, int tag) {
  auto& out = team_->channel(rank_, dst);
  auto& in = team_->channel(src, rank_);
  std::byte* out_data = team_->channel_data(rank_, dst);
  std::byte* in_data = team_->channel_data(src, rank_);
  const std::size_t chunk = config().chunk_bytes;
  const auto* sp = static_cast<const std::byte*>(sbuf);
  auto* rp = static_cast<std::byte*>(rbuf);
  // At least one chunk per direction even for empty messages, matching the
  // chunk counts the peer's send()/recv()/sendrecv() will produce.
  const std::size_t schunks = sn == 0 ? 1 : ceil_div(sn, chunk);
  const std::size_t rchunks = rn == 0 ? 1 : ceil_div(rn, chunk);
  std::size_t sent = 0, received = 0;
  std::size_t soff = 0, roff = 0;
  SpinGuard guard("sendrecv progress");
  while (sent < schunks || received < rchunks) {
    bool progressed = false;
    if (sent < schunks) {
      const std::uint64_t t = out.tail.load(std::memory_order_relaxed);
      if (t - out.head.load(std::memory_order_acquire) <
          FifoChannel::kSlots) {
        const auto slot = static_cast<std::size_t>(t % FifoChannel::kSlots);
        const std::size_t len = std::min(chunk, sn - soff);
        if (len > 0) copy::t_copy(out_data + slot * chunk, sp + soff, len);
        out.meta[slot] = {static_cast<std::uint32_t>(len), tag};
        out.tail.store(t + 1, std::memory_order_release);
        soff += len;
        ++sent;
        progressed = true;
      }
    }
    if (received < rchunks) {
      const std::uint64_t h = in.head.load(std::memory_order_relaxed);
      if (in.tail.load(std::memory_order_acquire) > h) {
        const auto slot = static_cast<std::size_t>(h % FifoChannel::kSlots);
        const auto [len, mtag] = in.meta[slot];
        YHCCL_REQUIRE(mtag == tag, "sendrecv tag mismatch");
        YHCCL_REQUIRE(roff + len <= rn, "sendrecv recv overflow");
        if (len > 0) copy::t_copy(rp + roff, in_data + slot * chunk, len);
        in.head.store(h + 1, std::memory_order_release);
        roff += len;
        ++received;
        progressed = true;
      }
    }
    if (!progressed) guard.relax();
  }
}

void RankCtx::sendrecv_zc(int dst, const void* sbuf, std::size_t sn, int src,
                          void* rbuf, std::size_t rn, RemoteMode mode) {
  auto& out = team_->channel(rank_, dst);
  const std::uint64_t s = out.rndv_posted.load(std::memory_order_relaxed) + 1;
  out.rndv_ptr = sbuf;
  out.rndv_bytes = sn;
  out.rndv_pid = getpid();
  out.rndv_posted.store(s, std::memory_order_release);
  recv_zc(src, rbuf, rn, mode);
  spin_wait_ge(out.rndv_done, s);
}

// ---------------------------------------------------------------------------
// pt2pt: rendezvous single-copy
// ---------------------------------------------------------------------------

void RankCtx::send_zc(int dst, const void* p, std::size_t n) {
  auto& ch = team_->channel(rank_, dst);
  const std::uint64_t s = ch.rndv_posted.load(std::memory_order_relaxed) + 1;
  ch.rndv_ptr = p;
  ch.rndv_bytes = n;
  ch.rndv_pid = getpid();
  ch.rndv_posted.store(s, std::memory_order_release);
  spin_wait_ge(ch.rndv_done, s);
}

void RankCtx::recv_zc(int src, void* p, std::size_t n, RemoteMode mode) {
  auto& ch = team_->channel(src, rank_);
  const std::uint64_t s = ch.rndv_done.load(std::memory_order_relaxed) + 1;
  spin_wait_ge(ch.rndv_posted, s);
  YHCCL_REQUIRE(ch.rndv_bytes == n, "rendezvous size mismatch");
  RemoteBuf rb{ch.rndv_ptr, ch.rndv_bytes, ch.rndv_pid};
  if (n > 0) remote_read(p, rb, 0, n, mode, nullptr);
  ch.rndv_done.store(s, std::memory_order_release);
}

}  // namespace yhccl::rt
