// Rank teams: the shared-memory "mini-MPI" the collectives run on.
//
// A Team owns one shared mapping laid out as
//   [TeamShared control block][pt2pt channels][shared heap][coll scratch]
// and executes SPMD functions over `nranks` ranks.  Two backends exist:
//   ThreadTeam  — ranks are threads (deterministic, XPMEM-faithful)
//   ProcessTeam — ranks are fork()ed processes (the paper's true setting)
// Collective code only ever touches the shared mapping plus rank-private
// buffers, so the same implementation runs unchanged on both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "yhccl/analysis/hb.hpp"
#include "yhccl/common/types.hpp"
#include "yhccl/copy/cache_model.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/metrics/export.hpp"
#include "yhccl/metrics/metrics.hpp"
#include "yhccl/metrics/sampler.hpp"
#include "yhccl/runtime/channel.hpp"
#include "yhccl/runtime/fault.hpp"
#include "yhccl/runtime/plan_registry.hpp"
#include "yhccl/runtime/remote_access.hpp"
#include "yhccl/runtime/resilience.hpp"
#include "yhccl/runtime/shm_region.hpp"
#include "yhccl/runtime/sync.hpp"
#include "yhccl/runtime/topology.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::rt {

inline constexpr int kMaxRanks = 256;
inline constexpr int kMaxSockets = 16;
inline constexpr int kRegistrySlots = 4;

// The barriers in sync.hpp and the fault subsystem size their per-rank
// arrays independently (header cycle); a team must never exceed either.
static_assert(kMaxRanks <= static_cast<int>(kMaxBarrierRanks),
              "barrier flag arrays cannot serve kMaxRanks participants");
static_assert(kMaxRanks <= kMaxFaultRanks,
              "fault liveness slots cannot serve kMaxRanks participants");

/// Whether a team runs the happens-before race checker (analysis/hb.hpp).
enum class HbMode : std::uint8_t {
  env,  ///< enabled iff YHCCL_CHECK contains "hb" (read at construction)
  off,
  on,
};

struct TeamConfig {
  int nranks = 4;
  int nsockets = 1;
  copy::CacheConfig cache = copy::CacheConfig::detect();
  std::size_t scratch_bytes = 64u << 20;     ///< collective scratch (shm)
  std::size_t shared_heap_bytes = 48u << 20; ///< persistent user shm heap
  std::size_t chunk_bytes = 16u << 10;       ///< pt2pt eager chunk size
  HbMode hb_check = HbMode::env;             ///< race-checker activation
  /// Watchdog applied via rt::set_sync_timeout at construction: > 0 seconds,
  /// 0 disables, < 0 keeps the process-wide setting (or $YHCCL_SYNC_TIMEOUT
  /// when set).  Note the timeout is process-wide, not per-team.
  double sync_timeout = -1.0;
  /// Phase tracer activation (docs/observability.md); `env` defers to
  /// $YHCCL_TRACE at construction.
  trace::Mode trace = trace::Mode::env;
  /// Auto-tuner plan cache (docs/tuning.md); `env` defers to $YHCCL_TUNE
  /// at construction (unset -> prior, which reproduces the static §5.1
  /// switching rules from the analytic prior).
  TuneMode tune = TuneMode::env;
  /// Automatic retry/fallback on classified faults (docs/robustness.md).
  /// The default defers to $YHCCL_RESILIENCE (unset: 0 retries — run() is
  /// byte-for-byte the legacy rethrow-immediately path).
  ResiliencePolicy resilience;
  /// Always-on metrics registry (docs/observability.md §6); `env` defers
  /// to $YHCCL_METRICS at construction (unset -> off: no section mapped,
  /// every hook a dead branch).
  metrics::Mode metrics = metrics::Mode::env;
};

/// Integrity header for one section of the team's shared mapping.  Written
/// parent-side while the team is quiesced (construction, recovery) and
/// audited by Team::verify_integrity(): the canary catches wild writes, the
/// epoch-tagged checksum catches bit flips in the header itself.
struct SectionHeader {
  std::uint64_t canary = 0;  ///< kSectionCanary ^ off
  std::uint64_t off = 0;     ///< section offset into the mapping
  std::uint64_t bytes = 0;   ///< section length
  std::uint64_t epoch = 0;   ///< team epoch this header was stamped at
  std::uint64_t sum = 0;     ///< checksum over the four fields above
};

inline constexpr std::uint64_t kSectionCanary = 0x5948434353454354ull;
inline constexpr int kMaxSections = 9;

/// Epoch-tagged header checksum (splitmix64 chain over the fields).
constexpr std::uint64_t section_sum(const SectionHeader& h) noexcept {
  std::uint64_t s = plan_mix64(h.canary);
  s = plan_mix64(s ^ h.off);
  s = plan_mix64(s ^ h.bytes);
  s = plan_mix64(s ^ h.epoch);
  return s != 0 ? s : 1;
}

/// Control block at the start of the shared mapping.
struct TeamShared {
  BarrierState node_barrier;
  BarrierState socket_barrier[kMaxSockets];
  PaddedFlag step[kMaxRanks];  ///< per-rank pipeline progress counters
  PaddedFlag flag[kMaxRanks];  ///< generic per-rank flags
  RemoteWindow registry[kMaxRanks][kRegistrySlots];
  copy::Dav dav_out[kMaxRanks]{};  ///< per-rank DAV of the last run()
  double time_out[kMaxRanks]{};    ///< per-rank wall time of the last run()
  copy::KernelCounts kernels_out[kMaxRanks]{};  ///< per-rank ISA-tier calls
  SyncCounts sync_out[kMaxRanks]{};             ///< per-rank sync-op counts
  alignas(kCacheline) mc::atomic<std::uint64_t> heap_cursor{0};
  struct alignas(kCacheline) Persist {
    std::uint64_t coll_seq = 0;
    std::uint64_t tune_seq = 0;  ///< tuner resolve counter (docs/tuning.md)
    std::uint32_t node_sense = 0;
    std::uint32_t sock_sense = 0;
  };
  Persist persist[kMaxRanks];
  PageLockTable page_locks;  ///< shared lock table for the CMA emulation
  FaultState fault;          ///< abort word + liveness slots (fault.hpp)
  /// Arena section directory (integrity sweep).  Plain data: stamped
  /// parent-side while the team is quiesced, read by verify_integrity().
  SectionHeader sections[kMaxSections];
  std::uint64_t nsections = 0;
};

class RankCtx;

class Team {
 public:
  explicit Team(TeamConfig cfg);
  virtual ~Team();
  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Execute `fn` SPMD over all ranks; returns when every rank finished.
  /// Per-rank DAV counters and wall times are captured automatically.
  ///
  /// With a resilience policy attached (TeamConfig::resilience or
  /// $YHCCL_RESILIENCE), a classified fault is handled in place: the team
  /// recovers (integrity-swept + repaired), backs off deterministically and
  /// re-issues `fn`, degrading to conservative collective plans and
  /// quarantining a repeatedly-failing cached plan along the way.  Under
  /// the default 0-retry policy this is byte-for-byte the legacy
  /// fail-fast path.
  void run(const std::function<void(RankCtx&)>& fn);

  const TeamConfig& config() const noexcept { return cfg_; }
  const Topology& topo() const noexcept { return topo_; }
  /// Current (active) membership; shrinks when recover() excludes dead
  /// ranks on a process-backed team.
  int nranks() const noexcept { return nranks_; }

  // ---- fault detection & recovery (docs/robustness.md) ---------------------
  /// Recover the team after a failed run(): re-initializes every piece of
  /// shared synchronization state (barriers, progress flags, FIFO channels,
  /// rendezvous descriptors, buffer registry, page locks), clears the abort
  /// word, bumps the team epoch so stale in-flight writes from the faulting
  /// rank are fenced out, and — for process-backed teams — excludes ranks
  /// whose process died (thread-backed ranks always rejoin, restoring full
  /// membership).  Shared-heap allocations survive.  Must be called from the
  /// parent with no run() in flight (run() is synchronous, so any return —
  /// normal or thrown — leaves the team quiesced).  Returns the fault the
  /// team is recovering from (kind none when no abort was raised).
  FaultInfo recover();

  /// The abort raised by the last failed run (kind none if none).
  FaultInfo last_fault() const noexcept {
    return FaultState::unpack(
        shared_->fault.abort_word.load(std::memory_order_acquire));
  }
  /// Current team epoch (bumped by every recover()).
  std::uint64_t team_epoch() const noexcept {
    return shared_->fault.team_epoch.load(std::memory_order_acquire);
  }
  /// Original rank id of current logical rank `r` (identity until a
  /// process-team recovery shrinks the membership).
  int global_rank(int r) const { return active_.at(static_cast<std::size_t>(r)); }
  /// Programmatic route to the YHCCL_FAULT injection layer (tests).
  void set_fault_plan(const FaultPlan& plan) { fault_plan_ = plan; }
  const FaultPlan& fault_plan() const noexcept { return fault_plan_; }

  // ---- resilient execution (docs/robustness.md §resume) --------------------
  /// The policy run() retries under (resolved against $YHCCL_RESILIENCE at
  /// construction) and the counters its retry engine maintained so far.
  const ResiliencePolicy& resilience_policy() const noexcept {
    return resilience_;
  }
  void set_resilience_policy(const ResiliencePolicy& p) {
    resilience_ = p.resolved();
  }
  const ResilienceStats& resilience_stats() const noexcept { return rstats_; }
  /// True while re-issues run in the degraded algorithm lane (conservative
  /// plans, no exploration).  Reset on the next successful run().
  bool degraded() const noexcept { return degraded_; }
  void set_degraded(bool d) noexcept { degraded_ = d; }

  /// What verify_integrity() found in one sweep of the shared mapping.
  struct IntegrityReport {
    std::uint64_t sections_checked = 0;
    std::uint64_t plan_slots_checked = 0;
    std::uint64_t channels_checked = 0;
    std::vector<std::string> findings;
    bool ok() const noexcept { return findings.empty(); }
  };

  /// Audit the shared mapping's control state: section-directory canaries
  /// and epoch-tagged checksums, plan-slot structural invariants, FIFO and
  /// rendezvous descriptor sanity.  With `repair`, found damage is fixed in
  /// place (headers re-stamped, bad plan slots wiped, channels re-inited).
  /// Parent-side, team quiesced.  recover() runs a repairing sweep first.
  IntegrityReport verify_integrity(bool repair = false);

  /// Bump-allocate persistent shared memory (test/app IO buffers).  Valid
  /// in all ranks of both backends; never freed until the Team dies.
  std::byte* shared_alloc(std::size_t bytes, std::size_t align = kCacheline);

  copy::Dav last_dav(int rank) const { return shared_->dav_out[rank]; }
  double last_time(int rank) const { return shared_->time_out[rank]; }
  copy::KernelCounts last_kernels(int rank) const {
    return shared_->kernels_out[rank];
  }
  SyncCounts last_sync(int rank) const { return shared_->sync_out[rank]; }
  /// Sum of all ranks' DAV for the last run() — the per-node DAV of the
  /// paper's tables.
  copy::Dav total_dav() const;
  /// Sum of all ranks' kernel-dispatch counts for the last run().
  copy::KernelCounts total_kernels() const;
  /// Sum of all ranks' sync-op counts for the last run().
  SyncCounts total_sync() const;
  /// Max of the per-rank wall times (collectives finish at the slowest rank).
  double max_time() const;

  // ---- phase tracer (YHCCL_TRACE, docs/observability.md) -------------------
  /// Non-null when this team traces (mode spans or flight).  The rings live
  /// in the shared mapping, so the parent of a ProcessTeam can harvest them
  /// after the children exited.
  trace::TraceBuffer* trace_buffer() noexcept { return trace_; }
  const trace::TraceBuffer* trace_buffer() const noexcept { return trace_; }
  trace::Mode trace_mode() const noexcept { return trace_mode_; }

  // ---- auto-tuner plan cache (YHCCL_TUNE, docs/tuning.md) ------------------
  /// Non-null when the tuner is active (mode prior or online).  Lives in
  /// the shared mapping: every rank of both backends sees the same table,
  /// and cached plans survive across run() calls.
  PlanRegistry* plan_registry() noexcept { return plans_; }
  const PlanRegistry* plan_registry() const noexcept { return plans_; }
  TuneMode tune_mode() const noexcept { return tune_mode_; }
  /// Identity cached plans are valid for (topology layout + cache model);
  /// recomputed when recovery shrinks the membership, so stale plans from
  /// the old shape simply stop matching.
  std::uint64_t plan_signature() const noexcept { return plan_sig_; }

  // ---- always-on metrics (YHCCL_METRICS, docs/observability.md §6) ---------
  /// Non-null when this team meters (mode on or serve).  Lives in the
  /// shared mapping: identical for thread- and fork()-backed ranks, and
  /// the parent (or the serve-mode sampler) reads it live.
  metrics::MetricsBuffer* metrics_buffer() noexcept { return metrics_; }
  const metrics::MetricsBuffer* metrics_buffer() const noexcept {
    return metrics_;
  }
  metrics::Mode metrics_mode() const noexcept { return metrics_mode_; }
  /// Run the straggler detector over the current barrier-arrival windows:
  /// newly flagged ranks bump the straggler gauge, land a Phase::straggler
  /// instant on the control ring, and push wait pressure into the tuner's
  /// per-kind feedback channels (the note_profile route).  Called by the
  /// serve-mode sampler every tick; callable directly by tests/tools.
  /// Empty report when metrics are off.
  metrics::StragglerReport straggler_check();

  // ---- happens-before race checker (YHCCL_CHECK=hb) -----------------------
  /// Non-null when this team runs with the vector-clock checker.
  analysis::HbChecker* hb_checker() noexcept { return hb_; }
  /// Races recorded so far (0 when the checker is off).  Works from the
  /// parent of a ProcessTeam too: the counter lives in the shared mapping.
  std::uint64_t hb_races() const;
  /// First race report, empty if none.
  std::string hb_report() const;

  // -- internals used by RankCtx and the collectives ------------------------
  TeamShared& shared() noexcept { return *shared_; }
  std::byte* scratch_base() noexcept { return region_.data() + off_scratch_; }
  std::size_t scratch_bytes() const noexcept { return cfg_.scratch_bytes; }
  FifoChannel& channel(int src, int dst) noexcept;
  std::byte* channel_data(int src, int dst) noexcept;

 protected:
  /// Backend hook: execute `wrapped(rank)` once per rank, concurrently.
  virtual void run_ranks(const std::function<void(int)>& wrapped) = 0;
  /// Ranks are fork()ed processes (enables pid probing and rank exclusion).
  virtual bool forked_ranks() const noexcept { return false; }

  TeamConfig cfg_;
  int nranks_ = 0;           ///< active membership (≤ cfg_.nranks)
  std::vector<int> active_;  ///< logical rank -> original rank id
  FaultPlan fault_plan_;     ///< parsed from $YHCCL_FAULT at construction
  ResiliencePolicy resilience_;  ///< resolved retry policy
  ResilienceStats rstats_;       ///< parent-side retry/degrade counters
  bool degraded_ = false;        ///< serve conservative plans (both backends
                                 ///< see this: threads share it, forked ranks
                                 ///< inherit it at fork time)
  std::uint64_t fail_hash_ = 0;  ///< plan key of the last faulting attempt
  int fail_streak_ = 0;          ///< consecutive faults on that key
  CorruptTarget corrupt_targets_[kMaxCorruptTargets];
  int n_corrupt_targets_ = 0;
  Topology topo_;
  ShmRegion region_;
  std::size_t off_channels_ = 0;
  std::size_t off_chan_data_ = 0;
  std::size_t off_heap_ = 0;
  std::size_t off_scratch_ = 0;
  std::size_t off_hb_ = 0;
  std::size_t off_trace_ = 0;
  std::size_t off_plans_ = 0;
  std::size_t off_metrics_ = 0;
  TeamShared* shared_ = nullptr;
  analysis::HbChecker* hb_ = nullptr;
  trace::TraceBuffer* trace_ = nullptr;
  trace::Mode trace_mode_ = trace::Mode::off;
  PlanRegistry* plans_ = nullptr;
  TuneMode tune_mode_ = TuneMode::off;
  std::uint64_t plan_sig_ = 0;
  bool flight_dumped_ = false;  ///< one flight dump per fault, not per retry
  metrics::MetricsBuffer* metrics_ = nullptr;
  metrics::Mode metrics_mode_ = metrics::Mode::off;

 private:
  /// Write the flight-recorder dump for the abort currently recorded in the
  /// team's fault word (flight mode only; no-op when already dumped).
  void flight_dump();
  /// One attempt of run(): the pre-resilience body, byte for byte.
  void run_once(const std::function<void(RankCtx&)>& fn);
  /// (Re-)write the arena section directory for the current team epoch.
  void stamp_sections();
  /// Retry-engine bookkeeping: track the consecutive-fault streak on the
  /// in-flight plan key and quarantine it once the streak repeats.
  void note_failed_plan(std::uint64_t hash);
  /// Copy the parent-owned aggregates (ResilienceStats, PlanRegistryStats,
  /// epoch, membership) into the shared TeamGauges.  Parent-side, at
  /// quiesced points only — the sampler thread never calls this.
  void metrics_fold_team();
  /// One serve-mode sampler tick: straggler sweep + snapshot export to
  /// $YHCCL_METRICS_DIR (atomic rename) + shm-mirror republish.
  void metrics_tick();
  /// Write yhccl_metrics_<pid>_<n>.{json,prom} into $YHCCL_METRICS_DIR
  /// (`live=true` writes the _live pair via tmp+rename instead).
  void metrics_export(bool live);
  /// Push an instant onto the parent-written control ring.  The sampler
  /// thread shares this ring with run()/recover(), so every push funnels
  /// through here under metrics_mu_ (the ring protocol is single-writer).
  void control_instant(trace::Phase phase, std::uint64_t arg);

  std::uint64_t run_seq_ = 0;  ///< run() ordinal (metrics window grouping)
  std::unique_ptr<metrics::Sampler> sampler_;  ///< serve mode only
  ShmRegion mirror_;           ///< named live-snapshot mirror (serve mode)
  std::mutex metrics_mu_;      ///< serializes control-ring writers
  std::vector<int> last_stragglers_;  ///< dedupe: currently-flagged ranks
  bool trace_dir_warned_ = false;
  bool metrics_dir_warned_ = false;
};

/// Per-rank handle passed to SPMD functions; everything a collective needs.
class RankCtx {
 public:
  RankCtx(Team& team, int rank);

  int rank() const noexcept { return rank_; }
  int nranks() const noexcept { return nranks_; }
  Team& team() noexcept { return *team_; }
  const Team& team() const noexcept { return *team_; }
  const TeamConfig& config() const noexcept { return team_->config(); }
  const copy::CacheConfig& cache() const noexcept {
    return team_->config().cache;
  }

  // Topology shortcuts.
  int nsockets() const noexcept { return team_->topo().nsockets(); }
  int socket() const noexcept { return team_->topo().socket_of(rank_); }
  int socket_rank() const noexcept { return team_->topo().socket_rank(rank_); }
  int socket_size() const noexcept {
    return team_->topo().socket_size(socket());
  }
  int socket_base() const noexcept { return team_->topo().socket_base(socket()); }

  std::byte* scratch() noexcept { return team_->scratch_base(); }
  std::size_t scratch_bytes() const noexcept { return team_->scratch_bytes(); }

  // ---- synchronization ----------------------------------------------------
  void barrier();
  void socket_barrier();

  /// Leave promptly (throwing the team-wide fault) if a peer raised the
  /// abort word.  Collectives call this at slice granularity so compute
  /// phases between synchronizations abort within milliseconds too.
  void check_abort() { fault_poll_abort(); }

  /// Per-call sequence number; identical across ranks because collectives
  /// are invoked in the same order everywhere (MPI semantics).
  std::uint64_t next_seq();

  /// Tuner resolve counter, same cross-rank-identical property as
  /// next_seq(); the online explore schedule hashes it so every rank takes
  /// the same exploration step without communicating (docs/tuning.md).
  std::uint64_t next_tune_seq() { return ++persist_->tune_seq; }

  /// Publish my pipeline progress (release) / wait on a peer's (acquire).
  /// Values must be strictly increasing within a team epoch; collectives
  /// encode them with step_value(seq, local_step).
  void step_publish(std::uint64_t v);
  void step_wait(int peer, std::uint64_t v);

  /// Monotone encoding of (collective sequence, step-within-collective).
  static constexpr std::uint64_t step_value(std::uint64_t seq,
                                            std::uint64_t step) noexcept {
    return (seq << 32) + step;
  }

  mc::atomic<std::uint64_t>& flag(int rank) noexcept {
    return team_->shared().flag[rank].v;
  }

  // ---- remote buffer registry (XPMEM/CMA) ---------------------------------
  void publish_buffer(int slot, const void* p, std::size_t bytes);
  RemoteBuf remote_buffer(int peer, int slot) const;
  PageLockTable& page_locks() noexcept { return team_->shared().page_locks; }

  // ---- point-to-point ------------------------------------------------------
  /// Eager two-copy send/recv through a shared-memory FIFO (the classic
  /// MPI intra-node path: copy-in by sender, copy-out by receiver).
  void send(int dst, const void* p, std::size_t n, int tag = 0);
  void recv(int src, void* p, std::size_t n, int tag = 0);

  /// Rendezvous single-copy transfer (kernel-assisted model: the receiver
  /// pulls straight from the sender's buffer).
  void send_zc(int dst, const void* p, std::size_t n);
  void recv_zc(int src, void* p, std::size_t n,
               RemoteMode mode = RemoteMode::direct);

  /// Simultaneous exchange (MPI_Sendrecv).  Interleaves chunk production
  /// and consumption so rings and recursive-halving exchanges cannot
  /// deadlock on FIFO capacity.
  void sendrecv(int dst, const void* sbuf, std::size_t sn, int src,
                void* rbuf, std::size_t rn, int tag = 0);

  /// Rendezvous variant: posts my descriptor, pulls from `src`, then waits
  /// for my own buffer to be drained.
  void sendrecv_zc(int dst, const void* sbuf, std::size_t sn, int src,
                   void* rbuf, std::size_t rn,
                   RemoteMode mode = RemoteMode::direct);

 private:
  Team* team_;
  int rank_;
  int nranks_;
  TeamShared::Persist* persist_;
};

}  // namespace yhccl::rt
