file(REMOVE_RECURSE
  "libyhccl_model.a"
)
