# Empty dependencies file for ablation_sync_cost.
# This may be replaced when dependencies are built.
