// Fig. 12 reproduction: socket-aware MA all-reduce under the four copy
// policies — adaptive (YHCCL), always-temporal (t-copy), always-NT
// (nt-copy) and the libc memmove size-threshold model.
//
// Expected shape: t-copy matches adaptive on small messages (everything
// fits in cache), nt-copy matches it on huge ones, and only the adaptive
// policy tracks the better of the two across the whole sweep, switching
// near the §5.4 model's predicted point s = (C - shm) / 2p.
#include "bench_util.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/model/dav_model.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  const auto sizes = default_sizes(64u << 10, 32u << 20);
  const std::size_t hi = sizes.back();
  auto count_of = [](std::size_t b) {
    return std::max<std::size_t>(b / 8, 1);
  };

  auto arm = [&](copy::CopyPolicy pol) {
    return [count_of, pol](rt::RankCtx& c, const void* s, void* r,
                           std::size_t b) {
      coll::CollOpts o;
      o.policy = pol;
      coll::socket_ma_allreduce(c, s, r, count_of(b), Datatype::f64,
                                ReduceOp::sum, o);
    };
  };

  const std::vector<std::pair<std::string, CollArm>> arms = {
      {"YHCCL", arm(copy::CopyPolicy::adaptive)},
      {"t-copy", arm(copy::CopyPolicy::always_temporal)},
      {"nt-copy", arm(copy::CopyPolicy::always_nt)},
      {"memmove", arm(copy::CopyPolicy::memmove_model)},
  };

  const auto& cache = team.config().cache;
  std::printf("Fig. 12 — adaptive-copy all-reduce (p=%d, m=%d)\n", p, m);
  std::printf("cache: %s\n", cache.describe().c_str());
  std::printf("model switch point (W = 2sp + m*p*Imax > C): s > %s\n",
              human_size(model::nt_switch_point_allreduce(
                             cache.available(p), p, m, 256u << 10))
                  .c_str());
  Session session("fig12_adaptive_allreduce");
  sweep(team, "all-reduce copy-policy sweep (relative to adaptive)", arms,
        sizes, hi, hi, &session, "allreduce")
      .print();
  session.write();
  return 0;
}
