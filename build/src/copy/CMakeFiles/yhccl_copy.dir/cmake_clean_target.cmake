file(REMOVE_RECURSE
  "libyhccl_copy.a"
)
