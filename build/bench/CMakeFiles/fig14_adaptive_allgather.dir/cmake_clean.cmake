file(REMOVE_RECURSE
  "CMakeFiles/fig14_adaptive_allgather.dir/fig14_adaptive_allgather.cpp.o"
  "CMakeFiles/fig14_adaptive_allgather.dir/fig14_adaptive_allgather.cpp.o.d"
  "fig14_adaptive_allgather"
  "fig14_adaptive_allgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_adaptive_allgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
