// Logical node topology: how the team's ranks map onto sockets.
//
// On the reproduction host the socket structure is *virtual* (the paper's
// machines have 2 physical sockets); the socket-aware algorithms only need
// a consistent block partition of the ranks, which this provides.
#pragma once

#include "yhccl/common/error.hpp"

namespace yhccl::rt {

class Topology {
 public:
  Topology() = default;
  Topology(int nranks, int nsockets) : nranks_(nranks), nsockets_(nsockets) {
    YHCCL_REQUIRE(nranks >= 1, "team needs at least one rank");
    YHCCL_REQUIRE(nsockets >= 1 && nsockets <= nranks,
                  "1 <= nsockets <= nranks");
  }

  int nranks() const noexcept { return nranks_; }
  int nsockets() const noexcept { return nsockets_; }

  /// Ranks are block-partitioned: socket s owns [base(s), base(s)+size(s)).
  /// The first (nranks % nsockets) sockets get one extra rank.
  int socket_size(int s) const noexcept {
    const int base = nranks_ / nsockets_;
    return base + (s < nranks_ % nsockets_ ? 1 : 0);
  }

  int socket_base(int s) const noexcept {
    const int q = nranks_ / nsockets_, r = nranks_ % nsockets_;
    return s * q + (s < r ? s : r);
  }

  int socket_of(int rank) const noexcept {
    const int q = nranks_ / nsockets_, r = nranks_ % nsockets_;
    const int cut = r * (q + 1);  // ranks below cut live in "big" sockets
    return rank < cut ? rank / (q + 1) : r + (rank - cut) / q;
  }

  /// Index of `rank` within its socket.
  int socket_rank(int rank) const noexcept {
    return rank - socket_base(socket_of(rank));
  }

  /// Stable identity of this rank-to-socket layout (FNV-1a over the block
  /// partition).  Two topologies with the same signature behave identically
  /// for every socket-aware algorithm; the auto-tuner keys cached plans on
  /// it so persisted plans never leak across layouts (docs/tuning.md).
  std::uint64_t signature() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto fold = [&h](std::uint64_t v) {
      h = (h ^ v) * 0x100000001b3ull;
    };
    fold(static_cast<std::uint64_t>(nranks_));
    fold(static_cast<std::uint64_t>(nsockets_));
    for (int s = 0; s < nsockets_; ++s)
      fold(static_cast<std::uint64_t>(socket_size(s)));
    return h;
  }

 private:
  int nranks_ = 1;
  int nsockets_ = 1;
};

}  // namespace yhccl::rt
