// Mini-AMR proxy (paper §5.6, Fig. 17): a 3D 7-point stencil on a block-
// structured adaptively refined mesh, in the style of the ECP Mantevo
// miniAMR proxy app.
//
// A spherical "object" sweeps through the domain; blocks it intersects are
// refined (split into 8 children, one level deeper), blocks it leaves are
// coarsened.  Every refinement step the ranks agree on the global
// refinement plan with a large all-reduce whose length is proportional to
// the number of refinement candidates — which is why the paper can tune
// the all-reduce size with --num_refine, and why an all-reduce-optimized
// collective library speeds the whole app up.
//
// The collective used for the control exchanges is injected, so the proxy
// runs unmodified on YHCCL or any baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "yhccl/runtime/team.hpp"

namespace yhccl::apps::miniamr {

struct Config {
  int block_dim = 8;         ///< cells per block edge (block_dim^3 cells)
  int domain_blocks = 4;     ///< root grid: domain_blocks^3 level-0 blocks
  int max_level = 2;         ///< refinement depth limit
  int tsteps = 8;            ///< time steps
  int refine_freq = 2;       ///< refine every N steps
  std::size_t refine_metric_len = 65536;  ///< doubles in the control
                                          ///< all-reduce (the paper's
                                          ///< --num_refine knob)
};

/// All-reduce (sum, f64) the proxy uses for its control exchanges.
using AllreduceFn = std::function<void(rt::RankCtx&, const double*, double*,
                                       std::size_t)>;

struct Stats {
  double total_seconds = 0;
  double compute_seconds = 0;  ///< stencil
  double comm_seconds = 0;     ///< control all-reduces
  std::int64_t total_blocks_processed = 0;
  int final_blocks = 0;
  double checksum = 0;  ///< global field sum (for cross-run validation)
};

/// Run the proxy SPMD on a rank of `team`.  All ranks must call it with
/// the same config; the returned stats are rank-local except `checksum`
/// and `final_blocks`, which are globally agreed.
Stats run_rank(rt::RankCtx& ctx, const Config& cfg, const AllreduceFn& ar);

}  // namespace yhccl::apps::miniamr
