
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/dpml_two_level.cpp" "src/coll/CMakeFiles/yhccl_coll.dir/dpml_two_level.cpp.o" "gcc" "src/coll/CMakeFiles/yhccl_coll.dir/dpml_two_level.cpp.o.d"
  "/root/repo/src/coll/extra.cpp" "src/coll/CMakeFiles/yhccl_coll.dir/extra.cpp.o" "gcc" "src/coll/CMakeFiles/yhccl_coll.dir/extra.cpp.o.d"
  "/root/repo/src/coll/ma_reduce.cpp" "src/coll/CMakeFiles/yhccl_coll.dir/ma_reduce.cpp.o" "gcc" "src/coll/CMakeFiles/yhccl_coll.dir/ma_reduce.cpp.o.d"
  "/root/repo/src/coll/pipelined.cpp" "src/coll/CMakeFiles/yhccl_coll.dir/pipelined.cpp.o" "gcc" "src/coll/CMakeFiles/yhccl_coll.dir/pipelined.cpp.o.d"
  "/root/repo/src/coll/profiler.cpp" "src/coll/CMakeFiles/yhccl_coll.dir/profiler.cpp.o" "gcc" "src/coll/CMakeFiles/yhccl_coll.dir/profiler.cpp.o.d"
  "/root/repo/src/coll/socket_ma.cpp" "src/coll/CMakeFiles/yhccl_coll.dir/socket_ma.cpp.o" "gcc" "src/coll/CMakeFiles/yhccl_coll.dir/socket_ma.cpp.o.d"
  "/root/repo/src/coll/switching.cpp" "src/coll/CMakeFiles/yhccl_coll.dir/switching.cpp.o" "gcc" "src/coll/CMakeFiles/yhccl_coll.dir/switching.cpp.o.d"
  "/root/repo/src/coll/trace.cpp" "src/coll/CMakeFiles/yhccl_coll.dir/trace.cpp.o" "gcc" "src/coll/CMakeFiles/yhccl_coll.dir/trace.cpp.o.d"
  "/root/repo/src/coll/vcoll.cpp" "src/coll/CMakeFiles/yhccl_coll.dir/vcoll.cpp.o" "gcc" "src/coll/CMakeFiles/yhccl_coll.dir/vcoll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/yhccl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/copy/CMakeFiles/yhccl_copy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
