// Resilient execution (docs/robustness.md §resume): the policy-driven retry
// engine inside Team::run(), the shared-state integrity verification it leans
// on, and the quarantine path that pins repeatedly-faulting cached plans out
// of rotation.  Also the satellite guarantees: the 0-retry policy is the
// legacy fail-fast path (no extra allocations, no auto-recover), overflow-
// checked shared-section size computations raise yhccl::Error instead of
// wrapping, and repeated die->recover cycles converge without leaking file
// descriptors or mappings.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/wait.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "test_util.hpp"
#include "yhccl/analysis/hb.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/plan.hpp"
#include "yhccl/runtime/plan_registry.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "yhccl/runtime/resilience.hpp"
#include "yhccl/runtime/thread_team.hpp"
#include "yhccl/trace/trace.hpp"

using namespace yhccl;
using coll::CollOpts;

// ---- global allocation counter for the zero-alloc wrapped-path test ---------

static std::atomic<std::uint64_t> g_allocs{0};

// GCC flags free() on a replaced operator new's result; ours is malloc-backed.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old, had_ = true;
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_)
      ::setenv(name_, old_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  const char* name_;
  std::string old_;
  bool had_ = false;
};

enum class Backend { threads, procs };

std::unique_ptr<rt::Team> make_team(Backend b, int p, int m,
                                    const rt::ResiliencePolicy& pol = {},
                                    rt::TuneMode tune = rt::TuneMode::env) {
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  cfg.scratch_bytes = 16u << 20;
  cfg.shared_heap_bytes = 16u << 20;
  cfg.sync_timeout = 20.0;  // safety net only; detection must be faster
  cfg.tune = tune;
  cfg.resilience = pol;
  if (b == Backend::procs) return std::make_unique<rt::ProcessTeam>(cfg);
  return std::make_unique<rt::ThreadTeam>(cfg);
}

rt::ResiliencePolicy policy(const std::string& spec) {
  return rt::ResiliencePolicy::parse(spec);
}

double* alloc_f64(rt::Team& team, std::size_t n) {
  return reinterpret_cast<double*>(team.shared_alloc(n * sizeof(double)));
}

/// Per-rank allreduce buffers in the shared heap (parent-fillable on both
/// backends, reusable across retried runs without re-allocating the heap).
struct Bufs {
  std::vector<double*> in, out;
  std::size_t n = 0;
};

Bufs make_bufs(rt::Team& team, int p, std::size_t n) {
  Bufs b;
  b.n = n;
  b.in.resize(static_cast<std::size_t>(p));
  b.out.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    b.in[r] = alloc_f64(team, n);
    b.out[r] = alloc_f64(team, n);
    test::fill_buffer(b.in[r], n, Datatype::f64, r, ReduceOp::sum);
  }
  return b;
}

/// One tuned allreduce over the team's current membership, verified against
/// the sequential reference.
void run_allreduce_checked(rt::Team& team, Bufs& b,
                           const CollOpts& opts = {}) {
  team.run([&](rt::RankCtx& ctx) {
    coll::allreduce(ctx, b.in[ctx.rank()], b.out[ctx.rank()], b.n,
                    Datatype::f64, ReduceOp::sum, opts);
  });
  for (int r = 0; r < team.nranks(); ++r)
    EXPECT_TRUE(test::check_reduced(b.out[r], b.n, Datatype::f64,
                                    team.nranks(), ReduceOp::sum))
        << "allreduce r" << r;
}

/// The single nonzero plan-cache entry (tests arrange for exactly one).
rt::PlanSlot* only_plan_slot(rt::Team& team) {
  rt::PlanRegistry* reg = team.plan_registry();
  if (reg == nullptr) return nullptr;
  rt::PlanSlot* found = nullptr;
  for (std::uint32_t i = 0; i < reg->capacity(); ++i) {
    if (reg->slot(i).hash.load(std::memory_order_acquire) == 0) continue;
    if (found != nullptr) return nullptr;  // ambiguous
    found = &reg->slot(i);
  }
  return found;
}

int count_open_fds() {
  DIR* d = opendir("/proc/self/fd");
  if (d == nullptr) return -1;
  int n = 0;
  while (readdir(d) != nullptr) ++n;
  closedir(d);
  return n;
}

int count_mappings() {
  std::FILE* f = std::fopen("/proc/self/maps", "r");
  if (f == nullptr) return -1;
  int n = 0, c;
  while ((c = std::fgetc(f)) != EOF)
    if (c == '\n') ++n;
  std::fclose(f);
  return n;
}

class NoZombies : public ::testing::Test {
 protected:
  void TearDown() override {
    int status = 0;
    const pid_t z = waitpid(-1, &status, WNOHANG);
    EXPECT_TRUE(z == 0 || (z < 0 && errno == ECHILD))
        << "leaked child process " << z;
  }
};

}  // namespace

// ---- YHCCL_RESILIENCE grammar ------------------------------------------------

TEST(ResiliencePolicyParse, FullSpecRoundTrip) {
  const auto p = rt::ResiliencePolicy::parse(
      "retries=3:backoff=1.5:cap=50:seed=42:degrade=1:quarantine=4");
  EXPECT_EQ(p.max_retries, 3);
  EXPECT_DOUBLE_EQ(p.backoff_ms, 1.5);
  EXPECT_DOUBLE_EQ(p.backoff_cap_ms, 50.0);
  EXPECT_EQ(p.seed, 42u);
  EXPECT_EQ(p.degrade_after, 1);
  EXPECT_EQ(p.quarantine_epochs, 4u);
  EXPECT_TRUE(p.enabled());

  const auto q = rt::ResiliencePolicy::parse("retries=0");
  EXPECT_FALSE(q.enabled());
  EXPECT_DOUBLE_EQ(q.backoff_ms, 2.0);  // unmentioned knobs keep defaults
}

TEST(ResiliencePolicyParse, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "retries", "retries=", "retries=x", "backoff=3",
        "retries=-1", "retries=2:frobnicate=1", "retries=2:degrade=0",
        "retries=2:quarantine=0", "retries=2:backoff=-1"}) {
    EXPECT_THROW(rt::ResiliencePolicy::parse(bad), Error) << "'" << bad << "'";
  }
}

TEST(ResiliencePolicyParse, EnvResolutionAndConfigPrecedence) {
  {
    EnvGuard g("YHCCL_RESILIENCE", "retries=2:backoff=0.5:seed=7");
    const auto env = rt::ResiliencePolicy::from_env();
    EXPECT_EQ(env.max_retries, 2);
    EXPECT_DOUBLE_EQ(env.backoff_ms, 0.5);
    EXPECT_EQ(env.seed, 7u);

    // The default (deferring) policy adopts the env wholesale.
    const auto def = rt::ResiliencePolicy{}.resolved();
    EXPECT_EQ(def.max_retries, 2);
    EXPECT_EQ(def.seed, 7u);

    // An explicit config-side retry count wins over the environment.
    auto cfg = rt::ResiliencePolicy::parse("retries=1:seed=9");
    const auto r = cfg.resolved();
    EXPECT_EQ(r.max_retries, 1);
    EXPECT_EQ(r.seed, 9u);
  }
  {
    EnvGuard g("YHCCL_RESILIENCE", nullptr);
    const auto def = rt::ResiliencePolicy{}.resolved();
    EXPECT_EQ(def.max_retries, 0);
    EXPECT_FALSE(def.enabled());
  }
}

TEST(ResiliencePolicyParse, TeamResolvesPolicyAtConstruction) {
  EnvGuard g("YHCCL_RESILIENCE", "retries=2:backoff=0");
  auto team = make_team(Backend::threads, 2, 1);
  EXPECT_EQ(team->resilience_policy().max_retries, 2);
  EXPECT_TRUE(team->resilience_policy().enabled());
}

// ---- backoff schedule --------------------------------------------------------

TEST(ResilienceBackoff, DeterministicBoundedJitter) {
  auto p = policy("retries=5:backoff=2:cap=16:seed=11");
  double prev_cap_hit = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double a = rt::resilience_backoff_ms(p, attempt);
    const double b = rt::resilience_backoff_ms(p, attempt);
    EXPECT_DOUBLE_EQ(a, b) << "same (seed, attempt) must replay identically";
    const double nominal = std::min(16.0, 2.0 * double(1 << attempt));
    EXPECT_GE(a, nominal * 0.5) << "attempt " << attempt;
    EXPECT_LE(a, nominal) << "attempt " << attempt;
    prev_cap_hit = a;
  }
  EXPECT_LE(prev_cap_hit, 16.0);

  auto q = p;
  q.seed = 12;
  bool differs = false;
  for (int attempt = 0; attempt < 8; ++attempt)
    differs |= rt::resilience_backoff_ms(p, attempt) !=
               rt::resilience_backoff_ms(q, attempt);
  EXPECT_TRUE(differs) << "different seeds must jitter differently";

  auto z = policy("retries=1:backoff=0");
  EXPECT_DOUBLE_EQ(rt::resilience_backoff_ms(z, 0), 0.0);
  EXPECT_DOUBLE_EQ(rt::resilience_backoff_ms(z, 7), 0.0);
}

// ---- satellite: the 0-retry policy is the legacy fail-fast path --------------

TEST_F(NoZombies, ZeroRetryPolicyFailsFastWithoutAutoRecover) {
  EnvGuard g("YHCCL_RESILIENCE", nullptr);
  for (const Backend b : {Backend::threads, Backend::procs}) {
    auto team = make_team(b, 4, 2);
    ASSERT_FALSE(team->resilience_policy().enabled());
    Bufs bufs = make_bufs(*team, 4, 2048);
    team->set_fault_plan(rt::FaultPlan::parse("die@barrier:rank=2:iter=0"));
    const std::uint64_t epoch0 = team->team_epoch();
    try {
      team->run([](rt::RankCtx& ctx) { ctx.barrier(); });
      ADD_FAILURE() << "expected an abort";
    } catch (const Error& e) {
      EXPECT_EQ(e.fault_kind(), FaultKind::peer_dead);
      EXPECT_EQ(e.fault_rank(), 2);
    }
    // Fail-fast: no automatic recovery happened and no counter moved.
    EXPECT_EQ(team->team_epoch(), epoch0);
    const auto& st = team->resilience_stats();
    EXPECT_EQ(st.faults, 0u);
    EXPECT_EQ(st.retries, 0u);
    EXPECT_EQ(st.recoveries, 0u);
    EXPECT_EQ(st.giveups, 0u);
    // The manual contract still works.
    team->set_fault_plan(rt::FaultPlan{});
    EXPECT_EQ(team->recover().kind, FaultKind::peer_dead);
    run_allreduce_checked(*team, bufs);
  }
}

TEST(ResilienceZeroAlloc, WrappedRunAddsNoAllocationsOnTheFaultFreePath) {
  EnvGuard g("YHCCL_TUNE_EPS", "0");
  EnvGuard r("YHCCL_RESILIENCE", nullptr);
  auto team = make_team(Backend::threads, 4, 2, {}, rt::TuneMode::online);
  Bufs bufs = make_bufs(*team, 4, 16384);
  const std::function<void(rt::RankCtx&)> fn = [&](rt::RankCtx& ctx) {
    coll::allreduce(ctx, bufs.in[ctx.rank()], bufs.out[ctx.rank()], bufs.n,
                    Datatype::f64, ReduceOp::sum);
  };
  for (int i = 0; i < 3; ++i) team->run(fn);  // warm plan cache + allocator
  const auto measure = [&] {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    team->run(fn);
    return g_allocs.load(std::memory_order_relaxed) - before;
  };
  const std::uint64_t legacy_a = measure();
  const std::uint64_t legacy_b = measure();
  ASSERT_EQ(legacy_a, legacy_b) << "legacy run() is not allocation-steady";
  team->set_resilience_policy(policy("retries=3:backoff=0"));
  ASSERT_TRUE(team->resilience_policy().enabled());
  for (int i = 0; i < 2; ++i) team->run(fn);
  EXPECT_EQ(measure(), legacy_a)
      << "the resilient wrapper allocated on the fault-free path";
  EXPECT_EQ(measure(), legacy_a);
}

// ---- automatic retry: transient faults self-heal -----------------------------

TEST_F(NoZombies, TransientDeathSelfHealsOnBothBackends) {
  for (const Backend b : {Backend::threads, Backend::procs}) {
    auto team = make_team(b, 4, 2, policy("retries=2:backoff=0"));
    Bufs bufs = make_bufs(*team, 4, 2048);
    const std::uint64_t epoch0 = team->team_epoch();
    // once=1: the victim dies on the first attempt only — a transient fault.
    team->set_fault_plan(
        rt::FaultPlan::parse("die@barrier:rank=2:iter=0:once=1"));
    team->run([&](rt::RankCtx& ctx) {
      ctx.barrier();
      coll::allreduce(ctx, bufs.in[ctx.rank()], bufs.out[ctx.rank()], bufs.n,
                      Datatype::f64, ReduceOp::sum);
    });
    team->set_fault_plan(rt::FaultPlan{});
    const int p = team->nranks();
    EXPECT_EQ(p, b == Backend::procs ? 3 : 4);  // procs exclude the dead rank
    for (int r = 0; r < p; ++r)
      EXPECT_TRUE(test::check_reduced(bufs.out[r], bufs.n, Datatype::f64, p,
                                      ReduceOp::sum))
          << "healed allreduce r" << r;
    const auto& st = team->resilience_stats();
    EXPECT_EQ(st.faults, 1u);
    EXPECT_EQ(st.retries, 1u);
    EXPECT_EQ(st.recoveries, 1u);
    EXPECT_EQ(st.heals, 1u);
    EXPECT_EQ(st.giveups, 0u);
    EXPECT_FALSE(team->degraded()) << "success must leave the degraded lane";
    EXPECT_EQ(team->team_epoch(), epoch0 + 1);
  }
}

TEST(ResilienceRetry, PersistentFaultGivesUpAfterTheBudget) {
  auto team = make_team(Backend::threads, 4, 2, policy("retries=1:backoff=0"));
  Bufs bufs = make_bufs(*team, 4, 2048);
  // No once gate: the victim re-dies on every attempt.
  team->set_fault_plan(rt::FaultPlan::parse("die@barrier:rank=1:iter=0"));
  EXPECT_THROW(team->run([](rt::RankCtx& ctx) { ctx.barrier(); }), Error);
  const auto& st = team->resilience_stats();
  EXPECT_EQ(st.faults, 2u);      // initial attempt + the one retry
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.recoveries, 1u);
  EXPECT_EQ(st.giveups, 1u);
  EXPECT_EQ(st.heals, 0u);
  // The team is still recoverable by hand after the give-up.
  team->set_fault_plan(rt::FaultPlan{});
  team->recover();
  run_allreduce_checked(*team, bufs);
}

TEST(ResilienceRetry, NonFaultErrorsAreNotRetried) {
  auto team = make_team(Backend::threads, 2, 1, policy("retries=3:backoff=0"));
  int calls = 0;
  try {
    team->run([&](rt::RankCtx& ctx) {
      if (ctx.rank() == 0) ++calls;
      ctx.barrier();
      raise("plain invariant failure, not a classified fault");
    });
    ADD_FAILURE() << "expected the error to propagate";
  } catch (const Error& e) {
    EXPECT_EQ(e.fault_kind(), FaultKind::none);
  }
  EXPECT_EQ(calls, 1) << "a kind-none error must not be re-issued";
  EXPECT_EQ(team->resilience_stats().retries, 0u);
}

// ---- quarantine: a repeatedly-faulting plan leaves the rotation --------------

TEST(ResilienceQuarantine, RepeatedFaultQuarantinesThePlanForItsEpochs) {
  EnvGuard g("YHCCL_TUNE_EPS", "0");
  auto team =
      make_team(Backend::threads, 4, 2,
                policy("retries=3:backoff=0:quarantine=4"),
                rt::TuneMode::online);
  ASSERT_NE(team->plan_registry(), nullptr);
  const std::uint64_t e0 = team->team_epoch();
  // 1 MiB of doubles keeps the large-message (socket-aware MA) lane, whose
  // slice loops pass the "slice" fault site; iter=1 lands mid stage 1.
  const std::size_t n = 1u << 17;
  CollOpts opts;
  Bufs bufs = make_bufs(*team, 4, n);
  team->set_fault_plan(rt::FaultPlan::parse("die@slice:rank=1:iter=1"));
  EXPECT_THROW(run_allreduce_checked(*team, bufs, opts), Error);
  team->set_fault_plan(rt::FaultPlan{});

  const auto& st = team->resilience_stats();
  EXPECT_EQ(st.faults, 4u);        // attempts 0..3 all faulted
  EXPECT_EQ(st.retries, 3u);
  EXPECT_EQ(st.recoveries, 3u);
  EXPECT_EQ(st.giveups, 1u);
  EXPECT_EQ(st.quarantines, 1u);   // streak of 2 on the same key
  EXPECT_EQ(st.degrades, 1u);      // degrade_after=2 entered the slow lane
  EXPECT_EQ(team->team_epoch(), e0 + 3);

  // The quarantine mark is live: plan word buried, mark set past the
  // current epoch (claimed after the 2nd recovery, so until e0+2+4).
  rt::PlanSlot* slot = only_plan_slot(*team);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->plan.load(std::memory_order_acquire), 0u);
  EXPECT_EQ(slot->quar.load(std::memory_order_acquire), e0 + 6);
  EXPECT_TRUE(rt::PlanRegistry::quarantined(*slot, team->team_epoch()));

  // Clean up the aborted run, then plant a valid committed word in the
  // quarantined slot (what a warmed or online-refined cache would hold).
  // While the quarantine epoch lasts, the engine must serve the analytic
  // prior and never this word — that is "never re-selected".
  team->recover();  // e0+4, still quarantined
  ASSERT_TRUE(rt::PlanRegistry::quarantined(*slot, team->team_epoch()));
  namespace plan = coll::plan;
  const auto key = plan::make_key(coll::CollKind::allreduce,
                                  n * sizeof(double), Datatype::f64,
                                  ReduceOp::sum, team->topo(), opts);
  plan::Plan planted =
      plan::prior_plan(key, opts, team->topo(), team->config().cache);
  planted.source = plan::PlanSource::online;  // distinct from a prior serve
  const std::uint64_t planted_word = planted.pack();
  slot->plan.store(planted_word, std::memory_order_release);

  auto* served = reinterpret_cast<std::uint64_t*>(
      team->shared_alloc(sizeof(std::uint64_t) * 4));
  const auto run_logged = [&] {
    team->run([&](rt::RankCtx& ctx) {
      coll::allreduce(ctx, bufs.in[ctx.rank()], bufs.out[ctx.rank()], bufs.n,
                      Datatype::f64, ReduceOp::sum, opts);
      served[ctx.rank()] = plan::last_plan_word();
    });
  };
  run_logged();
  for (int r = 0; r < 4; ++r)
    EXPECT_NE(served[r], planted_word)
        << "rank " << r << " re-selected a quarantined plan";

  // Two more epochs and the mark expires; the cached word is honored again.
  team->recover();
  team->recover();  // e0+6 == until -> no longer quarantined
  EXPECT_FALSE(rt::PlanRegistry::quarantined(*slot, team->team_epoch()));
  run_logged();
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(served[r], planted_word)
        << "rank " << r << " must serve the cache once the mark expired";
}

// ---- integrity verification: every shared section ----------------------------

TEST_F(NoZombies, InjectedCorruptionIsDetectedInEverySharedSection) {
  for (const Backend b : {Backend::threads, Backend::procs}) {
    for (const char* site : {"arena", "fifo", "plans"}) {
      auto team = make_team(b, 4, 2, {}, rt::TuneMode::online);
      const std::string spec =
          std::string("corrupt@") + site + ":rank=0:iter=0";
      team->set_fault_plan(rt::FaultPlan::parse(spec));
      // A barrier-only run: the injection lands, the run itself completes
      // (nothing reads the tampered word yet).
      team->run([](rt::RankCtx& ctx) { ctx.barrier(); });
      team->set_fault_plan(rt::FaultPlan{});

      auto rep = team->verify_integrity(/*repair=*/false);
      EXPECT_FALSE(rep.ok()) << spec << ": sweep missed the tamper";
      EXPECT_GT(rep.sections_checked, 0u);

      // The repairing sweep fixes it in place; the team stays usable.
      auto fixed = team->verify_integrity(/*repair=*/true);
      EXPECT_FALSE(fixed.ok()) << spec;
      EXPECT_TRUE(team->verify_integrity(false).ok())
          << spec << ": repair did not converge";
      Bufs bufs = make_bufs(*team, 4, 2048);
      run_allreduce_checked(*team, bufs);
    }
  }
}

TEST(ResilienceCorruption, TamperedPlanWordAbortsClassifiedAndSelfHeals) {
  EnvGuard g("YHCCL_TUNE_EPS", "0");
  auto team = make_team(Backend::threads, 4, 2,
                        policy("retries=2:backoff=0"), rt::TuneMode::online);
  Bufs bufs = make_bufs(*team, 4, 16384);
  run_allreduce_checked(*team, bufs);  // the online lane claims a slot
  rt::PlanSlot* slot = only_plan_slot(*team);
  ASSERT_NE(slot, nullptr);
  ASSERT_NE(slot->hash.load(std::memory_order_acquire), 0u);

  // A word with data bits but no valid bit can only come from corruption:
  // the read-side structural gate must classify it, and the retry engine's
  // repairing sweep must heal the run without caller involvement.
  slot->plan.store(0x2u, std::memory_order_release);
  run_allreduce_checked(*team, bufs);
  const auto& st = team->resilience_stats();
  EXPECT_EQ(st.faults, 1u);
  EXPECT_GE(st.corruptions, 1u) << "the sweep must count the wiped slot";
  EXPECT_EQ(st.heals, 1u);

  // With retries disabled the same tamper is a coherent classified error.
  team->set_resilience_policy(policy("retries=0"));
  slot = only_plan_slot(*team);
  if (slot != nullptr && slot->hash.load(std::memory_order_acquire) != 0) {
    slot->plan.store(0x2u, std::memory_order_release);
    try {
      run_allreduce_checked(*team, bufs);
      ADD_FAILURE() << "expected a corruption abort";
    } catch (const Error& e) {
      EXPECT_EQ(e.fault_kind(), FaultKind::corruption);
    }
    team->recover();
    run_allreduce_checked(*team, bufs);
  }
}

TEST(ResilienceCorruption, TamperedFifoCountersAbortClassifiedAndSelfHeal) {
  auto team = make_team(Backend::threads, 2, 1, policy("retries=2:backoff=0"));
  auto* msg = alloc_f64(*team, 256);
  auto* got = alloc_f64(*team, 256);
  test::fill_buffer(msg, 256, Datatype::f64, 7, ReduceOp::sum);
  const auto pt2pt = [&](rt::RankCtx& ctx) {
    if (ctx.rank() == 0)
      ctx.send(1, msg, 256 * sizeof(double));
    else
      ctx.recv(0, got, 256 * sizeof(double));
  };
  team->run(pt2pt);
  EXPECT_EQ(std::memcmp(msg, got, 256 * sizeof(double)), 0);

  // Drive the producer counter outside [tail, tail + kSlots]: every later
  // FIFO operation must trip the read-side sandwich check, classify the run
  // as corrupted, and the retry engine must rebuild the channel and re-run.
  auto& ch = team->channel(0, 1);
  const std::uint64_t tail = ch.tail.load(std::memory_order_acquire);
  ch.head.store(tail + 100, std::memory_order_release);
  std::memset(got, 0, 256 * sizeof(double));
  team->run(pt2pt);
  EXPECT_EQ(std::memcmp(msg, got, 256 * sizeof(double)), 0)
      << "the healed re-run must deliver the payload";
  const auto& st = team->resilience_stats();
  EXPECT_EQ(st.faults, 1u);
  EXPECT_EQ(st.heals, 1u);
  EXPECT_GE(st.corruptions, 1u);
}

// ---- satellite: repeated recovery converges without leaks --------------------

TEST_F(NoZombies, RepeatedDeathRecoveryCyclesConvergeWithoutLeaks) {
  auto team = make_team(Backend::procs, 6, 1);
  Bufs bufs = make_bufs(*team, 6, 2048);

  const auto cycle = [&](int expect_survivors) {
    const int victim = team->nranks() - 1;
    team->set_fault_plan(rt::FaultPlan::parse(
        "die@barrier:rank=" + std::to_string(victim) + ":iter=0"));
    const std::uint64_t epoch0 = team->team_epoch();
    EXPECT_THROW(team->run([](rt::RankCtx& ctx) { ctx.barrier(); }), Error);
    const rt::FaultInfo info = team->recover();
    EXPECT_EQ(info.kind, FaultKind::peer_dead);
    EXPECT_EQ(info.rank, victim);
    EXPECT_EQ(team->team_epoch(), epoch0 + 1) << "epoch must be monotonic";
    EXPECT_EQ(team->nranks(), expect_survivors)
        << "membership must shrink by exactly the dead rank";
    team->set_fault_plan(rt::FaultPlan{});
  };

  cycle(5);  // warm-up: allocator pools and lazy glibc state settle here
  const int fds0 = count_open_fds();
  const int maps0 = count_mappings();
  ASSERT_GT(fds0, 0);
  ASSERT_GT(maps0, 0);

  for (int expect = 4; expect >= 2; --expect) {
    cycle(expect);
    EXPECT_EQ(count_open_fds(), fds0)
        << "recover() leaked a file descriptor";
    // Monotonic membership: each cycle kills the highest surviving original
    // rank, so the mapping must stay the identity prefix — an excluded rank
    // id never reappears.
    for (int r = 0; r < team->nranks(); ++r)
      EXPECT_EQ(team->global_rank(r), r);
  }
  ASSERT_EQ(team->nranks(), 2);
  const int maps1 = count_mappings();
  EXPECT_LE(maps1, maps0 + 1) << "recover() leaked mappings";

  // The shrunken team still computes correct collectives.
  run_allreduce_checked(*team, bufs);
  EXPECT_GE(team->team_epoch(), 4u);
}

// ---- satellite: overflow-checked shared-section sizing -----------------------

TEST(OverflowChecks, CheckedArithmeticBoundaries) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(checked_add(2, 3, "t"), 5u);
  EXPECT_EQ(checked_add(kMax - 1, 1, "t"), kMax);
  EXPECT_THROW(checked_add(kMax, 1, "t"), Error);
  EXPECT_EQ(checked_mul(6, 7, "t"), 42u);
  EXPECT_EQ(checked_mul(kMax, 1, "t"), kMax);
  EXPECT_EQ(checked_mul(0, kMax, "t"), 0u);
  EXPECT_THROW(checked_mul(kMax / 2 + 1, 2, "t"), Error);
  EXPECT_EQ(checked_round_up(1, 4096, "t"), 4096u);
  EXPECT_EQ(checked_round_up(4096, 4096, "t"), 4096u);
  EXPECT_THROW(checked_round_up(kMax - 1, 4096, "t"), Error);
}

TEST(OverflowChecks, SharedSectionSizersRaiseInsteadOfWrapping) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  // Sane inputs still size exactly.
  EXPECT_GT(trace::TraceBuffer::required_bytes(4, 4096), 0u);
  EXPECT_GT(analysis::HbChecker::required_bytes(1024), 0u);
  EXPECT_GT(rt::PlanRegistry::required_bytes(64), 0u);
  // Absurd inputs raise a typed error instead of wrapping into a tiny
  // (and then overrun) arena.
  EXPECT_THROW(trace::TraceBuffer::required_bytes(
                   std::numeric_limits<int>::max(), 0xffffffffu),
               Error);
  EXPECT_THROW(analysis::HbChecker::required_bytes(kMax / 2), Error);
}

TEST(OverflowChecks, AbsurdTeamConfigRaisesTypedError) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  for (const bool huge_heap : {true, false}) {
    rt::TeamConfig cfg;
    cfg.nranks = 2;
    cfg.nsockets = 1;
    if (huge_heap)
      cfg.shared_heap_bytes = kMax;
    else
      cfg.scratch_bytes = kMax - 4096;
    EXPECT_THROW(rt::ThreadTeam{cfg}, Error)
        << (huge_heap ? "heap" : "scratch");
  }
}

TEST(OverflowChecks, SharedAllocRefusesOverflowingReservation) {
  auto team = make_team(Backend::threads, 2, 1);
  EXPECT_THROW(
      team->shared_alloc(std::numeric_limits<std::size_t>::max() - 64),
      Error);
  EXPECT_NE(team->shared_alloc(64), nullptr);  // the heap itself still works
}

// ---- a deterministic mini chaos sweep (the full campaign lives in bench) ----

TEST_F(NoZombies, MiniChaosSweepNeverProducesSilentWrongAnswers) {
  EnvGuard g("YHCCL_TUNE_EPS", "0");
  std::uint64_t x = 0x9e3779b97f4a7c15ull;  // fixed seed: deterministic sweep
  const auto next = [&x] {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  const char* actions[] = {"die@barrier", "die@slice", "stall@barrier:ms=2",
                           "corrupt@arena", "corrupt@fifo", "corrupt@plans"};
  for (int i = 0; i < 10; ++i) {
    const Backend b = (next() & 1) != 0 ? Backend::procs : Backend::threads;
    auto team = make_team(b, 4, 2, policy("retries=2:backoff=0"),
                          rt::TuneMode::online);
    Bufs bufs = make_bufs(*team, 4, 1u << 14);
    const std::string spec = std::string(actions[next() % 6]) +
                             ":rank=" + std::to_string(next() % 4) +
                             ":iter=" + std::to_string(next() % 3) +
                             ":once=1";
    team->set_fault_plan(rt::FaultPlan::parse(spec));
    try {
      run_allreduce_checked(*team, bufs);  // checks bit-correctness inside
    } catch (const Error& e) {
      EXPECT_NE(e.fault_kind(), FaultKind::none) << spec;
      team->set_fault_plan(rt::FaultPlan{});
      team->recover();
    }
    team->set_fault_plan(rt::FaultPlan{});
    run_allreduce_checked(*team, bufs);  // the team always self-heals
  }
}
