file(REMOVE_RECURSE
  "CMakeFiles/yhccl_runtime.dir/process_team.cpp.o"
  "CMakeFiles/yhccl_runtime.dir/process_team.cpp.o.d"
  "CMakeFiles/yhccl_runtime.dir/remote_access.cpp.o"
  "CMakeFiles/yhccl_runtime.dir/remote_access.cpp.o.d"
  "CMakeFiles/yhccl_runtime.dir/shm_region.cpp.o"
  "CMakeFiles/yhccl_runtime.dir/shm_region.cpp.o.d"
  "CMakeFiles/yhccl_runtime.dir/sync.cpp.o"
  "CMakeFiles/yhccl_runtime.dir/sync.cpp.o.d"
  "CMakeFiles/yhccl_runtime.dir/team.cpp.o"
  "CMakeFiles/yhccl_runtime.dir/team.cpp.o.d"
  "CMakeFiles/yhccl_runtime.dir/thread_team.cpp.o"
  "CMakeFiles/yhccl_runtime.dir/thread_team.cpp.o.d"
  "libyhccl_runtime.a"
  "libyhccl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yhccl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
