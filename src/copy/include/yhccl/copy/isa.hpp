// Runtime ISA tier selection for the copy/reduction kernels.
//
// The kernel layer is compiled three times — scalar, AVX2 and AVX-512 —
// and the best tier the host supports is picked once at startup via cpuid
// (see dispatch.hpp for the table the tiers populate).  The environment
// variable YHCCL_ISA=scalar|avx2|avx512 caps the selection (never raises
// it above what the CPU supports), which is how the benches sweep tiers
// and how CI exercises the portable scalar path on any runner.
//
// All kernels are bit-identical across tiers: vectorization is across the
// element index only, so the elementwise fold order (srcs[0] op srcs[1]
// op ...) never changes with the vector width.
#pragma once

#include <cstdint>

namespace yhccl::copy {

enum class IsaTier : int { scalar = 0, avx2 = 1, avx512 = 2 };

inline constexpr int kNumIsaTiers = 3;

constexpr const char* isa_name(IsaTier t) noexcept {
  switch (t) {
    case IsaTier::scalar: return "scalar";
    case IsaTier::avx2: return "avx2";
    case IsaTier::avx512: return "avx512";
  }
  return "?";
}

/// Best tier this binary can run on this host (cpuid, cached after the
/// first call).  Independent of any override.
IsaTier detected_isa() noexcept;

/// Tier the kernel table currently dispatches to: detected_isa() capped by
/// YHCCL_ISA (parsed once) and by any force_isa() call.
IsaTier active_isa() noexcept;

/// Force a tier (tests / benches).  Requests above detected_isa() are
/// clamped; returns the tier actually activated.  Not thread-safe against
/// concurrent kernel calls — switch tiers only between SPMD regions.
IsaTier force_isa(IsaTier t) noexcept;

/// Parse "scalar" / "avx2" / "avx512"; returns false on unknown input.
bool isa_from_string(const char* s, IsaTier& out) noexcept;

// ---- per-tier kernel-call counters ------------------------------------------
// Thread-local tally of dispatched kernel calls per tier, so the profiler
// can record which tier actually ran inside a collective.

struct KernelCounts {
  std::uint64_t calls[kNumIsaTiers] = {};

  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (auto c : calls) t += c;
    return t;
  }
  KernelCounts operator-(const KernelCounts& o) const noexcept {
    KernelCounts r;
    for (int i = 0; i < kNumIsaTiers; ++i) r.calls[i] = calls[i] - o.calls[i];
    return r;
  }
  KernelCounts& operator+=(const KernelCounts& o) noexcept {
    for (int i = 0; i < kNumIsaTiers; ++i) calls[i] += o.calls[i];
    return *this;
  }
  /// Tier with the most calls (scalar when empty) — the "which kernel ran"
  /// answer for a profile record.
  IsaTier dominant() const noexcept {
    int best = 0;
    for (int i = 1; i < kNumIsaTiers; ++i)
      if (calls[i] > calls[best]) best = i;
    return static_cast<IsaTier>(best);
  }
  bool operator==(const KernelCounts&) const noexcept = default;
};

namespace detail {
inline thread_local KernelCounts g_kernel_counts;
}

inline void kernel_count_add(IsaTier t) noexcept {
  ++detail::g_kernel_counts.calls[static_cast<int>(t)];
}
inline KernelCounts kernel_counts_read() noexcept {
  return detail::g_kernel_counts;
}
inline void kernel_counts_reset() noexcept {
  detail::g_kernel_counts = KernelCounts{};
}

/// RAII delta measurement, mirroring DavScope.
class KernelCountScope {
 public:
  KernelCountScope() : start_(kernel_counts_read()) {}
  KernelCounts delta() const noexcept {
    return kernel_counts_read() - start_;
  }

 private:
  KernelCounts start_;
};

}  // namespace yhccl::copy
