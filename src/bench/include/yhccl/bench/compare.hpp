// Statistical regression gating over "yhccl-bench/1" reports.
//
// Two gate classes, matching the two kinds of measurement the harness
// records:
//  * timings are noisy → a series only counts as improved/regressed when
//    the two ~95% confidence intervals for the median do NOT overlap
//    (overlap ⇒ unchanged, the conservative verdict);
//  * the deterministic counters (DAV bytes, per-tier kernel dispatches,
//    barrier/flag sync ops) are exactly reproducible → any difference at
//    all is a counter_mismatch, which fails the gate regardless of timing.
//
// bench/bench_compare.cpp is the CLI over these routines; the CI
// perf-smoke leg uses its `check` mode against the model::impl:: formulas.
#pragma once

#include <string>
#include <vector>

#include "yhccl/bench/json.hpp"

namespace yhccl::bench {

enum class Verdict {
  unchanged,         ///< CIs overlap, counters identical
  improved,          ///< candidate CI entirely below baseline CI
  regressed,         ///< candidate CI entirely above baseline CI
  counter_mismatch,  ///< any deterministic counter differs (hard failure)
  added,             ///< series only in the candidate report
  removed,           ///< series only in the baseline report
};

const char* verdict_name(Verdict v) noexcept;

struct SeriesDiff {
  std::string key;  ///< Series::key() join key
  Verdict verdict = Verdict::unchanged;
  double base_median = 0;  ///< seconds (0 for added)
  double cand_median = 0;  ///< seconds (0 for removed)
  double ratio = 0;        ///< cand/base median (0 when base is 0)
  std::vector<std::string> counter_diffs;  ///< "name: base != cand" lines
};

struct CompareResult {
  std::vector<SeriesDiff> diffs;
  int unchanged = 0;
  int improved = 0;
  int regressed = 0;
  int counter_mismatches = 0;
  int added = 0;
  int removed = 0;

  /// The gate: no regressions and no counter drift.
  bool clean() const noexcept {
    return regressed == 0 && counter_mismatches == 0;
  }
  /// Human-readable verdict table + summary line.
  std::string report(bool verbose = false) const;
};

/// Structural validation against schema yhccl-bench/1.  Appends one
/// message per defect; returns errors.empty().
bool validate_report(const Json& report, std::vector<std::string>& errors);

/// Join two reports on Series::key() and classify every series.
CompareResult compare_reports(const Json& baseline, const Json& candidate);

/// The auto-tuner gate (docs/tuning.md): within ONE report, pair every
/// `static_arm` series with the `tuned_arm` series of the same (bench,
/// collective, ranks, sockets, bytes) cell and classify the pair by CI
/// overlap alone — a tuned plan may legitimately dispatch a different
/// algorithm, so counters are not compared.  clean() ⇔ the tuned schedule
/// is never significantly slower than the static §5.1 rules.
CompareResult compare_tuned(const Json& report,
                            const std::string& static_arm = "switch-static",
                            const std::string& tuned_arm = "switch-tuned");

/// Concatenate the series of several reports into one named report
/// (machine/policy metadata from the first part).  Duplicate series keys
/// are recorded in `err` (first offender) and the duplicate is dropped.
Json merge_reports(const std::vector<Json>& parts, const std::string& name,
                   std::string* err = nullptr);

}  // namespace yhccl::bench
