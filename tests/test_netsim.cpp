// Tests for the cluster network simulator: resource serialization, LogGP
// arithmetic, the multi-node composition invariants the paper's Fig. 16b
// relies on (multi-lane rings win large messages, trees win small ones),
// and scaling monotonicity.
#include <gtest/gtest.h>

#include "yhccl/netsim/netsim.hpp"

using namespace yhccl::net;

namespace {

TEST(Resource, SerializesOverlappingRequests) {
  Resource r;
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.acquire(0.5, 1.0), 2.0);  // queued behind the first
  EXPECT_DOUBLE_EQ(r.acquire(5.0, 1.0), 6.0);  // idle gap respected
}

TEST(LogGPModel, MessageTimeDecomposes) {
  LogGP net;
  const double t1 = net.message_time(0);
  const double t2 = net.message_time(1'000'000);
  EXPECT_GT(t1, 0);
  EXPECT_NEAR(t2 - t1, 1e6 * net.G, 1e-12);
}

TEST(InterNodeRing, ZeroOnTrivialInputs) {
  LogGP net;
  EXPECT_EQ(ring_allreduce_internode(1, 1 << 20, net, 8), 0);
  EXPECT_EQ(ring_allreduce_internode(8, 0, net, 8), 0);
}

TEST(InterNodeRing, MoreLanesSaturateTheFabricBetter) {
  LogGP net;
  const std::size_t s = 64u << 20;
  const double lane1 = ring_allreduce_internode(8, s, net, 1);
  const double lane8 = ring_allreduce_internode(8, s, net, 8);
  EXPECT_GT(lane1, 0);
  // On a serialized NIC the win comes from latency/gap hiding, not raw
  // bandwidth, so expect a modest but real improvement.
  EXPECT_LT(lane8, lane1);
}

TEST(InterNodeRing, TimeGrowsWithNodesAndBytes) {
  LogGP net;
  const double a = ring_allreduce_internode(4, 8u << 20, net, 4);
  const double b = ring_allreduce_internode(8, 8u << 20, net, 4);
  const double c = ring_allreduce_internode(8, 32u << 20, net, 4);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(InterNodeTree, LogarithmicRounds) {
  LogGP net;
  const double n2 = tree_allreduce_internode(2, 1 << 20, net);
  const double n16 = tree_allreduce_internode(16, 1 << 20, net);
  EXPECT_NEAR(n16 / n2, 4.0, 1e-9);  // log2(16)/log2(2)
}

TEST(IntraModel, MaBeatsTwoCopyRingOnLargeMessages) {
  IntraNodeModel node;
  node.ranks_per_node = 64;
  node.sockets = 2;
  const std::size_t s = 64u << 20;
  EXPECT_LT(node.ma_allreduce(s), node.two_copy_ring_allreduce(s));
  EXPECT_LT(node.ma_allreduce(s), node.dpml_allreduce(s));
}

TEST(MultiNode, YhcclWinsLargeMessagesTreeWinsSmall) {
  IntraNodeModel node;
  node.ranks_per_node = 64;
  node.sockets = 2;
  LogGP net;
  const int nnodes = 16;
  // Large message (64 MB): the paper's Fig. 16b regime where YHCCL has a
  // 1.4-8.8x edge.
  {
    const std::size_t s = 64u << 20;
    const auto y = multinode_allreduce(MultiNodeAlgo::yhccl, s, nnodes, node,
                                       net);
    const auto o = multinode_allreduce(MultiNodeAlgo::openmpi, s, nnodes,
                                       node, net);
    EXPECT_LT(y.seconds, o.seconds);
    const auto t = multinode_allreduce(MultiNodeAlgo::tree_hcoll, s, nnodes,
                                       node, net);
    EXPECT_LT(y.seconds, t.seconds);
  }
  // Small message (16 KB): tree-based implementations take the lead.
  {
    const std::size_t s = 16u << 10;
    const auto y = multinode_allreduce(MultiNodeAlgo::yhccl, s, nnodes, node,
                                       net);
    const auto t = multinode_allreduce(MultiNodeAlgo::tree_hcoll, s, nnodes,
                                       node, net);
    EXPECT_LT(t.seconds, y.seconds);
  }
}

TEST(MultiNode, ComponentsAddUp) {
  IntraNodeModel node;
  LogGP net;
  const auto r = multinode_allreduce(MultiNodeAlgo::yhccl, 8u << 20, 8, node,
                                     net);
  EXPECT_DOUBLE_EQ(r.seconds, r.intra_seconds + r.inter_seconds);
  EXPECT_GT(r.intra_seconds, 0);
  EXPECT_GT(r.inter_seconds, 0);
}

TEST(MultiNode, SingleNodeHasNoInterTime) {
  IntraNodeModel node;
  LogGP net;
  const auto r = multinode_allreduce(MultiNodeAlgo::yhccl, 8u << 20, 1, node,
                                     net);
  EXPECT_EQ(r.inter_seconds, 0);
}

}  // namespace
