# Empty dependencies file for amr_simulation.
# This may be replaced when dependencies are built.
