// Tests for the intra-collective phase tracer (src/trace): ring semantics,
// span nesting across every collective arm, thread-vs-process harvest
// parity, flight-recorder dumps on injected rank death, barrier-skew
// rollup into the profiler, and the off-mode zero-impact guarantee.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "yhccl/bench/harness.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/coll/profiler.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "yhccl/runtime/thread_team.hpp"
#include "yhccl/trace/export.hpp"
#include "yhccl/trace/trace.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::fill_buffer;

namespace {

enum class Backend { threads, procs };

std::unique_ptr<rt::Team> make_team(Backend b, int p, int m,
                                    trace::Mode mode) {
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  cfg.scratch_bytes = 8u << 20;
  cfg.shared_heap_bytes = 8u << 20;
  cfg.trace = mode;
  cfg.sync_timeout = 20.0;
  if (b == Backend::procs) return std::make_unique<rt::ProcessTeam>(cfg);
  return std::make_unique<rt::ThreadTeam>(cfg);
}

/// The deterministic schedule both backend-parity runs execute.
void run_schedule(rt::RankCtx& ctx) {
  const std::size_t n = 2048;
  std::vector<double> send(n), recv(n * static_cast<std::size_t>(4));
  fill_buffer(send.data(), n, Datatype::f64, ctx.rank(), ReduceOp::sum);
  CollOpts ma;
  ma.algorithm = Algorithm::ma_flat;
  allreduce(ctx, send.data(), recv.data(), n, Datatype::f64, ReduceOp::sum,
            ma);
  CollOpts dpml;
  dpml.algorithm = Algorithm::dpml_two_level;
  reduce_scatter(ctx, send.data(), recv.data(),
                 n / static_cast<std::size_t>(ctx.nranks()), Datatype::f64,
                 ReduceOp::sum, dpml);
  reduce(ctx, send.data(), recv.data(), n, Datatype::f64, ReduceOp::sum, 0);
  broadcast(ctx, recv.data(), n, Datatype::f64, 0);
  allgather(ctx, send.data(), recv.data(), n / 4, Datatype::f64);
}

constexpr int kScheduleColls = 5;

TEST(PhaseTrace, CollIdNamesMirrorProfilerKinds) {
  EXPECT_STREQ(trace::coll_id_name(0), "");  // outside any collective
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k) {
    const auto kind = static_cast<CollKind>(k);
    EXPECT_STREQ(trace::coll_id_name(coll::detail::trace_coll_id(kind)),
                 coll_kind_name(kind));
  }
}

TEST(PhaseTrace, OffModeAllocatesNoRingsAndKeepsCountersExact) {
  auto off = make_team(Backend::threads, 4, 2, trace::Mode::off);
  auto on = make_team(Backend::threads, 4, 2, trace::Mode::spans);
  EXPECT_EQ(off->trace_buffer(), nullptr);
  EXPECT_EQ(off->trace_mode(), trace::Mode::off);
  ASSERT_NE(on->trace_buffer(), nullptr);
  EXPECT_EQ(on->trace_mode(), trace::Mode::spans);

  // Tracing must not perturb the deterministic counter model: the same
  // schedule produces byte-for-byte identical DAV/kernel/sync counts.
  const auto c_off = bench::measure_counters(*off, run_schedule);
  const auto c_on = bench::measure_counters(*on, run_schedule);
  EXPECT_EQ(c_off, c_on);
  EXPECT_GT(c_off.dav.total(), 0u);
}

TEST(PhaseTrace, RingWraparoundKeepsNewestRecords) {
  const int nranks = 2;
  const std::uint32_t slots = 64;
  const std::size_t bytes = trace::TraceBuffer::required_bytes(nranks, slots);
  void* mem = ::operator new(bytes, std::align_val_t{64});
  auto* buf =
      trace::TraceBuffer::create(mem, bytes, nranks, slots, trace::Mode::spans);
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->nranks(), nranks);
  EXPECT_EQ(buf->nrings(), nranks + 1);
  EXPECT_EQ(buf->slots(), slots);

  const std::uint64_t pushes = 1000;
  for (std::uint64_t i = 0; i < pushes; ++i)
    buf->push(0, trace::Rec{i + 1, i + 2, /*arg=*/i,
                            static_cast<std::uint8_t>(trace::Phase::reduce),
                            0, 0, 0, 0});
  EXPECT_EQ(buf->count(0), pushes);
  EXPECT_EQ(buf->first_kept(0), pushes - slots);
  for (std::uint64_t i = buf->first_kept(0); i < buf->count(0); ++i) {
    const trace::Rec r = buf->read(0, i);
    EXPECT_EQ(r.arg, i);  // newest `slots` records survive, in order
    EXPECT_EQ(r.seq, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(buf->count(1), 0u);  // other rings untouched
  EXPECT_EQ(buf->count(buf->control_ring()), 0u);
  EXPECT_GT(buf->ticks_per_second(), 0.0);
  ::operator delete(mem, std::align_val_t{64});
}

TEST(PhaseTrace, SpanNestingBalancedAndChromeExportValid) {
  auto team = make_team(Backend::threads, 4, 2, trace::Mode::spans);
  team->run(run_schedule);

  ASSERT_NE(team->trace_buffer(), nullptr);
  trace::Harvest h(*team->trace_buffer());
  EXPECT_EQ(h.nranks(), 4);
  EXPECT_GT(h.total_events(), 0u);
  for (int r = 0; r < 4; ++r) {
    int coll_spans = 0;
    bool saw_copy_in = false, saw_reduce = false, saw_barrier = false;
    for (const trace::Rec& rec : h.ring(r)) {
      ASSERT_LT(rec.phase, static_cast<std::uint8_t>(trace::Phase::kCount_));
      if (rec.flags & trace::kFlagMarker) continue;
      EXPECT_GE(rec.t1, rec.t0) << "rank " << r;
      EXPECT_GE(rec.t0, team->trace_buffer()->t_origin());
      const auto ph = static_cast<trace::Phase>(rec.phase);
      if (ph == trace::Phase::coll) {
        ++coll_spans;
        EXPECT_NE(rec.coll, 0) << "coll span without a collective id";
      }
      saw_copy_in = saw_copy_in || ph == trace::Phase::copy_in;
      saw_reduce = saw_reduce || ph == trace::Phase::reduce;
      saw_barrier = saw_barrier || ph == trace::Phase::barrier;
    }
    // One balanced whole-collective span per schedule entry: nesting depth
    // returned to zero each time on every backend path (incl. fallbacks).
    EXPECT_EQ(coll_spans, kScheduleColls) << "rank " << r;
    EXPECT_TRUE(saw_copy_in) << "rank " << r;
    EXPECT_TRUE(saw_reduce) << "rank " << r;
    EXPECT_TRUE(saw_barrier) << "rank " << r;
  }

  const bench::Json cj = h.chrome_json();
  std::string err;
  EXPECT_TRUE(trace::validate_chrome(cj, &err)) << err;
  // One process_name metadata row per rank plus the parent control row.
  int meta_rows = 0;
  const bench::Json& events = cj["traceEvents"];
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events.at(i)["ph"].as_string() == "M") ++meta_rows;
  EXPECT_EQ(meta_rows, 5);

  // Garbage never validates.
  EXPECT_FALSE(trace::validate_chrome(bench::Json::object(), &err));
  EXPECT_FALSE(trace::validate_flight(bench::Json::object(), &err));
}

using DetRec = std::tuple<std::uint8_t, std::uint8_t, std::uint64_t>;

/// The schedule's movement phases (copy/reduce/coll) are deterministic for
/// a fixed (schedule, p, m, opts): extract them for cross-backend parity.
std::vector<DetRec> deterministic_seq(const trace::Harvest& h, int rank) {
  std::vector<DetRec> out;
  for (const trace::Rec& rec : h.ring(rank)) {
    const auto ph = static_cast<trace::Phase>(rec.phase);
    if (ph == trace::Phase::coll || ph == trace::Phase::copy_in ||
        ph == trace::Phase::copy_out || ph == trace::Phase::reduce)
      out.emplace_back(rec.phase, rec.coll, rec.arg);
  }
  return out;
}

TEST(PhaseTrace, ProcessHarvestMatchesThreadHarvest) {
  auto threads = make_team(Backend::threads, 4, 2, trace::Mode::spans);
  auto procs = make_team(Backend::procs, 4, 2, trace::Mode::spans);
  threads->run(run_schedule);
  procs->run(run_schedule);

  ASSERT_NE(threads->trace_buffer(), nullptr);
  ASSERT_NE(procs->trace_buffer(), nullptr);
  trace::Harvest ht(*threads->trace_buffer());
  trace::Harvest hp(*procs->trace_buffer());
  ASSERT_EQ(ht.nranks(), hp.nranks());
  for (int r = 0; r < ht.nranks(); ++r) {
    const auto t = deterministic_seq(ht, r);
    const auto p = deterministic_seq(hp, r);
    ASSERT_FALSE(t.empty()) << "rank " << r;
    // Children _exit instead of returning: the fork()-backed rings must
    // still hold the full record sequence after the parent reaps them.
    EXPECT_EQ(t, p) << "rank " << r;
  }
}

TEST(PhaseTrace, FlightDumpOnInjectedDeathAtBarrier) {
  for (Backend b : {Backend::threads, Backend::procs}) {
    char tmpl[] = "/tmp/yhccl_trace_test_XXXXXX";
    char* dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    ASSERT_EQ(setenv("YHCCL_TRACE_DIR", dir, 1), 0);

    {
      auto team = make_team(b, 4, 2, trace::Mode::flight);
      const std::uint64_t epoch0 = team->team_epoch();
      team->set_fault_plan(rt::FaultPlan::parse("die@barrier:rank=2:iter=0"));
      bool aborted = false;
      try {
        team->run([&](rt::RankCtx& ctx) {
          std::vector<double> s(1024, 1), r(1024);
          coll::allreduce(ctx, s.data(), r.data(), 1024, Datatype::f64,
                          ReduceOp::sum);
        });
      } catch (const Error& e) {
        aborted = true;
        EXPECT_EQ(e.fault_kind(), FaultKind::peer_dead);
        EXPECT_EQ(e.fault_rank(), 2);
      }
      ASSERT_TRUE(aborted);

      const std::string path = std::string(dir) + "/yhccl_flight_" +
                               std::to_string(getpid()) + ".json";
      std::ifstream in(path);
      ASSERT_TRUE(in.good()) << "missing flight dump " << path;
      std::stringstream ss;
      ss << in.rdbuf();
      std::string perr;
      const bench::Json fj = bench::Json::parse(ss.str(), &perr);
      ASSERT_TRUE(perr.empty()) << perr;
      std::string err;
      EXPECT_TRUE(trace::validate_flight(fj, &err)) << err;
      EXPECT_EQ(fj["site"].as_string(), "barrier");
      EXPECT_EQ(fj["rank"].as_int(), 2);
      EXPECT_EQ(fj["epoch"].as_uint(), epoch0);
      EXPECT_NE(fj["fault"].as_string().find("rank 2"), std::string::npos)
          << fj["fault"].as_string();

      // Every rank's last events made it into the dump — including the
      // dying rank, whose ring survives in the shared mapping.
      const bench::Json& ranks = fj["ranks"];
      ASSERT_EQ(ranks.size(), 4u);
      EXPECT_TRUE(fj["team"].is_array());  // parent control ring
      bool victim_has_fault_event = false;
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        const bench::Json& entry = ranks.at(i);
        EXPECT_GT(entry["events"].size(), 0u)
            << "rank " << entry["rank"].as_int() << " dumped no events";
        if (entry["rank"].as_int() == 2)
          for (std::size_t e = 0; e < entry["events"].size(); ++e)
            victim_has_fault_event =
                victim_has_fault_event ||
                entry["events"].at(e)["phase"].as_string() == "fault";
      }
      EXPECT_TRUE(victim_has_fault_event)
          << "dying rank's injected-death instant missing";
    }
    unsetenv("YHCCL_TRACE_DIR");
  }
}

TEST(PhaseTrace, SkewRollupAndWaitAttributionReachProfiler) {
  auto team = make_team(Backend::threads, 4, 2, trace::Mode::spans);
  std::vector<CollProfiler> prof(4);
  team->run([&](rt::RankCtx& ctx) {
    const std::size_t n = 4096;
    std::vector<double> s(n, 1), r(n);
    CollOpts ma;
    ma.algorithm = Algorithm::ma_flat;
    for (int it = 0; it < 3; ++it)
      allreduce(prof[ctx.rank()], ctx, s.data(), r.data(), n, Datatype::f64,
                ReduceOp::sum, ma);
  });

  // Wait/work split: with tracing on, the profiled wrapper attributes the
  // barrier/flag spin time; work + wait partitions the wall time.
  for (int r = 0; r < 4; ++r) {
    const auto& rec = prof[r].get(CollKind::allreduce);
    EXPECT_GT(rec.wait_seconds, 0.0) << "rank " << r;
    EXPECT_LE(rec.work_seconds(), rec.seconds) << "rank " << r;
  }

  trace::Harvest h(*team->trace_buffer());
  const trace::SkewRollup rollup = h.skew();
  CollProfiler merged = prof[0];
  merge_trace_skew(merged, rollup);
  const auto& rec = merged.get(CollKind::allreduce);
  EXPECT_GT(rec.skew_barriers, 0u);
  EXPECT_GE(rec.skew_max, rec.skew_mean());
  EXPECT_GE(rec.skew_mean(), 0.0);

  const bench::Json j = merged.report_json();
  const bench::Json& jr = j["kinds"]["allreduce"];
  EXPECT_EQ(jr["skew"]["barriers"].as_uint(), rec.skew_barriers);
  EXPECT_GT(jr["wait_seconds"].as_double(), 0.0);
}

}  // namespace
