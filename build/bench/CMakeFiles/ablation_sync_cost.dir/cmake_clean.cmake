file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_cost.dir/ablation_sync_cost.cpp.o"
  "CMakeFiles/ablation_sync_cost.dir/ablation_sync_cost.cpp.o.d"
  "ablation_sync_cost"
  "ablation_sync_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
