// Unit tests for the unified benchmark harness (src/bench): the robust
// statistics kernels, the exact-integer JSON round-trip, the report
// validator/merger, the comparator verdicts, and one tiny end-to-end
// measure_series whose counters must equal the md::impl:: simulator —
// the same gate the CI perf-smoke leg applies.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "yhccl/bench/compare.hpp"
#include "yhccl/bench/harness.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/model/dav_model.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::bench;
namespace md = yhccl::model;
using test::cached_team;
using test::fill_buffer;

namespace {

// ---- statistics -------------------------------------------------------------

TEST(BenchStats, MedianOddEvenEmpty) {
  EXPECT_DOUBLE_EQ(median_of({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
  EXPECT_DOUBLE_EQ(median_of({7}), 7.0);
}

TEST(BenchStats, MadIsRobustToOneOutlier) {
  const std::vector<double> v = {10, 10.1, 9.9, 10.05, 9.95, 1000};
  const double med = median_of(v);
  EXPECT_NEAR(med, 10.025, 1e-9);
  EXPECT_LT(mad_of(v, med), 0.2);  // the outlier cannot inflate the MAD
}

TEST(BenchStats, RejectOutliersDropsInjectedSpikes) {
  // Synthetic distribution: tight cluster + two injected timing spikes
  // (the paper's "some other process stole the core" samples).
  std::vector<double> v;
  for (int i = 0; i < 20; ++i) v.push_back(1.0 + 0.001 * i);
  v.push_back(50.0);
  v.push_back(80.0);
  const auto kept = reject_outliers(v, 5.0);
  EXPECT_EQ(kept.size(), 20u);
  for (double x : kept) EXPECT_LT(x, 2.0);
}

TEST(BenchStats, RejectOutliersNeverDropsMoreThanHalf) {
  // Bimodal run: both modes are data, not noise.
  std::vector<double> v;
  for (int i = 0; i < 10; ++i) v.push_back(1.0);
  for (int i = 0; i < 10; ++i) v.push_back(100.0);
  EXPECT_GE(reject_outliers(v, 5.0).size(), v.size() / 2);
}

TEST(BenchStats, ZeroMadRejectsOnlyExactMismatches) {
  std::vector<double> v(10, 3.0);
  v.push_back(3.5);
  const auto kept = reject_outliers(v, 5.0);
  EXPECT_EQ(kept.size(), 10u);
  for (double x : kept) EXPECT_DOUBLE_EQ(x, 3.0);
}

TEST(BenchStats, TinySamplesPassThroughUntouched) {
  const std::vector<double> v = {1.0, 100.0, 1.5};
  EXPECT_EQ(reject_outliers(v, 5.0).size(), v.size());
}

TEST(BenchStats, CiRanksWidenWithConfidenceAndClamp) {
  std::size_t lo = 0, hi = 0;
  median_ci_ranks(3, lo, hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 2u);  // tiny n degenerates to the whole sample
  median_ci_ranks(100, lo, hi);
  EXPECT_GT(lo, 35u);
  EXPECT_LT(hi, 65u);
  EXPECT_LT(lo, hi);
}

TEST(BenchStats, SummarizeConvergesTightSample) {
  std::vector<double> v;
  for (int i = 0; i < 30; ++i) v.push_back(1.0 + 1e-4 * (i % 5));
  const auto s = summarize(v);
  EXPECT_EQ(s.reps, 30u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_NEAR(s.median, 1.0002, 1e-3);
  EXPECT_LE(s.ci_low, s.median);
  EXPECT_GE(s.ci_high, s.median);
  EXPECT_LT(s.rel_ci(), 0.01);
  EXPECT_LE(s.min, s.max);
}

TEST(BenchStats, SummarizeCountsRejected) {
  std::vector<double> v(20, 2.0);
  v.push_back(500.0);
  const auto s = summarize(v);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

// ---- JSON -------------------------------------------------------------------

TEST(BenchJson, Int64RoundTripIsExact) {
  // Counter gating is exact equality; 2^53-adjacent values must not be
  // laundered through a double.
  const std::int64_t big = (std::int64_t{1} << 62) + 1;
  Json obj = Json::object();
  obj.set("v", big);
  const Json back = Json::parse(obj.dump());
  ASSERT_TRUE(back.find("v"));
  EXPECT_TRUE(back["v"].is_integer());
  EXPECT_EQ(back["v"].as_int(), big);
}

TEST(BenchJson, RoundTripPreservesTypesAndKeyOrder) {
  Json obj = Json::object();
  obj.set("z_first", 1);
  obj.set("a_second", "text with \"quotes\" and \n control");
  obj.set("m_third", 0.5);
  Json arr = Json::array();
  arr.push_back(true);
  arr.push_back(nullptr);
  arr.push_back(-7);
  obj.set("arr", arr);
  std::string err;
  const Json back = Json::parse(obj.dump(2), &err);
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(back.members().size(), 4u);
  EXPECT_EQ(back.members()[0].first, "z_first");  // insertion order kept
  EXPECT_EQ(back.members()[1].first, "a_second");
  EXPECT_EQ(back["a_second"].as_string(), "text with \"quotes\" and \n control");
  EXPECT_DOUBLE_EQ(back["m_third"].as_double(), 0.5);
  ASSERT_EQ(back["arr"].size(), 3u);
  EXPECT_TRUE(back["arr"].at(0).as_bool());
  EXPECT_TRUE(back["arr"].at(1).is_null());
  EXPECT_EQ(back["arr"].at(2).as_int(), -7);
}

TEST(BenchJson, ParseErrorsAreReported) {
  std::string err;
  EXPECT_TRUE(Json::parse("{\"a\": }", &err).is_null());
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_TRUE(Json::parse("[1, 2] trailing", &err).is_null());
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_TRUE(Json::parse("", &err).is_null());
  EXPECT_FALSE(err.empty());
}

TEST(BenchJson, MissingKeyLookupsAreSafe) {
  const Json obj = Json::object();
  EXPECT_EQ(obj.find("nope"), nullptr);
  EXPECT_TRUE(obj["nope"].is_null());
}

// ---- Series / report round-trip ---------------------------------------------

Series sample_series(const std::string& algo, double median,
                     std::uint64_t loads) {
  Series s;
  s.bench = "unit";
  s.collective = "allreduce";
  s.algorithm = algo;
  s.ranks = 4;
  s.sockets = 2;
  s.bytes = 1 << 20;
  s.time.reps = 9;
  s.time.median = median;
  s.time.mean = median;
  s.time.min = median * 0.98;
  s.time.max = median * 1.02;
  s.time.ci_low = median * 0.99;
  s.time.ci_high = median * 1.01;
  s.dab = 1e9;
  s.counters.dav.loads = loads;
  s.counters.dav.stores = loads / 2;
  s.counters.kernels.calls[1] = 12;
  s.counters.sync.barriers = 8;
  s.isa = "avx2";
  return s;
}

Json report_of(const std::vector<Series>& series) {
  Json j = Json::object();
  j.set("schema", kSchemaVersion);
  j.set("name", "unit");
  j.set("machine", MachineInfo::detect().to_json());
  j.set("policy", RunPolicy{}.to_json());
  Json arr = Json::array();
  for (const auto& s : series) arr.push_back(s.to_json());
  j.set("series", arr);
  return j;
}

TEST(BenchReport, SeriesRoundTrip) {
  const Series s = sample_series("ma", 1e-3, 123456789);
  const Series back = Series::from_json(Json::parse(s.to_json().dump()));
  EXPECT_EQ(back.key(), s.key());
  EXPECT_EQ(back.ranks, 4);
  EXPECT_EQ(back.sockets, 2);
  EXPECT_EQ(back.bytes, std::size_t{1} << 20);
  EXPECT_DOUBLE_EQ(back.time.median, 1e-3);
  EXPECT_TRUE(back.counters == s.counters);
  EXPECT_EQ(back.isa, "avx2");
}

TEST(BenchReport, ValidatorAcceptsGoodRejectsBad) {
  std::vector<std::string> errors;
  EXPECT_TRUE(validate_report(report_of({sample_series("ma", 1e-3, 100)}),
                              errors))
      << (errors.empty() ? "" : errors.front());

  // Wrong schema string.
  Json bad = report_of({});
  bad.set("schema", "yhccl-bench/999");
  errors.clear();
  EXPECT_FALSE(validate_report(bad, errors));
  EXPECT_FALSE(errors.empty());

  // Negative counter: deterministic counts are unsigned by construction.
  Series neg = sample_series("ma", 1e-3, 100);
  Json jneg = report_of({neg});
  errors.clear();
  Json series_arr = Json::array();
  Json one = neg.to_json();
  Json counters = *one.find("counters");
  counters.set("dav_loads", -5);
  one.set("counters", counters);
  series_arr.push_back(one);
  jneg.set("series", series_arr);
  EXPECT_FALSE(validate_report(jneg, errors));

  // Duplicate series key.
  errors.clear();
  EXPECT_FALSE(validate_report(report_of({sample_series("ma", 1e-3, 1),
                                          sample_series("ma", 2e-3, 1)}),
                               errors));
}

TEST(BenchReport, MergeConcatenatesAndFlagsDuplicates) {
  std::string err;
  const Json merged =
      merge_reports({report_of({sample_series("a", 1e-3, 1)}),
                     report_of({sample_series("b", 2e-3, 2)})},
                    "merged", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ((*merged.find("series")).size(), 2u);
  EXPECT_EQ(merged["name"].as_string(), "merged");

  const Json dup =
      merge_reports({report_of({sample_series("a", 1e-3, 1)}),
                     report_of({sample_series("a", 9e-3, 9)})},
                    "dup", &err);
  EXPECT_FALSE(err.empty());
  EXPECT_EQ((*dup.find("series")).size(), 1u);  // first wins, dup dropped
}

// ---- comparator verdicts -----------------------------------------------------

TEST(BenchCompare, VerdictFixtures) {
  const Series base = sample_series("ma", 1.0e-3, 100);

  // Overlapping CIs -> unchanged.
  Series same = base;
  same.time.median = 1.005e-3;
  same.time.ci_low = 0.995e-3;
  same.time.ci_high = 1.015e-3;
  // Candidate CI entirely below baseline CI -> improved.
  Series faster = base;
  faster.algorithm = "fast";
  faster.time.median = 0.5e-3;
  faster.time.ci_low = 0.49e-3;
  faster.time.ci_high = 0.51e-3;
  // Candidate CI entirely above -> regressed.
  Series slower = base;
  slower.algorithm = "slow";
  slower.time.median = 2.0e-3;
  slower.time.ci_low = 1.98e-3;
  slower.time.ci_high = 2.02e-3;
  // Identical timing but a counter moved -> counter_mismatch.
  Series drift = base;
  drift.algorithm = "drift";
  drift.counters.dav.loads += 1;

  Series fast_base = faster;
  fast_base.time = base.time;
  Series slow_base = slower;
  slow_base.time = base.time;
  Series drift_base = drift;
  drift_base.counters = base.counters;
  Series removed = base;
  removed.algorithm = "removed";
  Series added = base;
  added.algorithm = "added";

  const Json b = report_of({base, fast_base, slow_base, drift_base, removed});
  const Json c = report_of({same, faster, slower, drift, added});
  const CompareResult r = compare_reports(b, c);
  EXPECT_EQ(r.unchanged, 1);
  EXPECT_EQ(r.improved, 1);
  EXPECT_EQ(r.regressed, 1);
  EXPECT_EQ(r.counter_mismatches, 1);
  EXPECT_EQ(r.added, 1);
  EXPECT_EQ(r.removed, 1);
  EXPECT_FALSE(r.clean());
  const std::string rep = r.report(/*verbose=*/true);
  EXPECT_NE(rep.find("counter-mismatch"), std::string::npos);
  EXPECT_NE(rep.find("dav_loads"), std::string::npos);

  // Self-diff is clean and all-unchanged.
  const CompareResult self = compare_reports(b, b);
  EXPECT_TRUE(self.clean());
  EXPECT_EQ(self.unchanged, static_cast<int>(b["series"].size()));
  EXPECT_EQ(self.improved + self.regressed + self.counter_mismatches +
                self.added + self.removed,
            0);
}

TEST(BenchCompare, CounterMismatchBeatsTimingVerdict) {
  // Even a clear timing *improvement* is a hard failure when counters
  // drift: the candidate did different work, not the same work faster.
  Series base = sample_series("ma", 1.0e-3, 100);
  Series cand = base;
  cand.time.median = 0.1e-3;
  cand.time.ci_low = 0.09e-3;
  cand.time.ci_high = 0.11e-3;
  cand.counters.sync.flag_waits = 77;
  const CompareResult r = compare_reports(report_of({base}), report_of({cand}));
  EXPECT_EQ(r.counter_mismatches, 1);
  EXPECT_EQ(r.improved, 0);
  EXPECT_FALSE(r.clean());
}

// ---- end-to-end perf smoke ---------------------------------------------------

md::impl::OpCounts expected_ma_allreduce(std::size_t bytes, int p, int m,
                                         const coll::CollOpts& o,
                                         std::size_t scratch) {
  md::impl::OpGeometry g;
  g.p = p;
  g.m = m;
  g.slice_max = o.slice_max;
  g.slice_min = o.slice_min;
  g.dpml_chunk = o.dpml_chunk;
  g.scratch_bytes = scratch;
  return md::impl::ma_allreduce_ops(bytes, g);
}

RankFn ma_allreduce_fn(const coll::CollOpts& o, std::size_t count) {
  return [o, count](rt::RankCtx& ctx) {
    std::vector<double> send(count), recv(count);
    fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                ReduceOp::sum);
    coll::ma_allreduce(ctx, send.data(), recv.data(), count, Datatype::f64,
                       ReduceOp::sum, o);
  };
}

TEST(BenchHarnessE2E, MeasureSeriesGatesOnModelCountersThreadTeam) {
  const int p = 4, m = 2;
  const std::size_t count = 6000, scratch = 24u << 20;
  auto& team = cached_team(p, m, scratch);
  coll::CollOpts o;
  o.slice_max = 4u << 10;

  RunPolicy policy;
  policy.warmup = 1;
  policy.min_reps = 3;
  policy.max_reps = 5;
  policy.budget_s = 0.2;

  Series meta;
  meta.bench = "smoke";
  meta.collective = "allreduce";
  meta.algorithm = "flat-MA";
  meta.bytes = count * 8;
  const Series s =
      measure_series(team, std::move(meta), ma_allreduce_fn(o, count), policy);

  EXPECT_GE(s.time.reps, 3u);
  EXPECT_GT(s.time.median, 0.0);
  EXPECT_GT(s.dab, 0.0);
  EXPECT_EQ(s.ranks, p);
  EXPECT_EQ(s.sockets, m);
  EXPECT_FALSE(s.isa.empty());

  const auto want = expected_ma_allreduce(count * 8, p, m, o, scratch);
  EXPECT_EQ(s.counters.dav.loads, want.loads);
  EXPECT_EQ(s.counters.dav.stores, want.stores);
  EXPECT_EQ(s.counters.kernels.total(), want.kernel_calls);
  EXPECT_EQ(s.counters.sync.barriers, want.barriers);
  EXPECT_EQ(s.counters.sync.flag_posts, want.flag_posts);
  EXPECT_EQ(s.counters.sync.flag_waits, want.flag_waits);

  // The series embeds into a valid self-diffable report.
  const Json rep = report_of({s});
  std::vector<std::string> errors;
  EXPECT_TRUE(validate_report(rep, errors))
      << (errors.empty() ? "" : errors.front());
  EXPECT_TRUE(compare_reports(rep, rep).clean());
}

TEST(BenchHarnessE2E, MeasureCountersMatchesModelProcessTeam) {
  const int p = 3, m = 2;  // ragged socket split on the fork() backend
  const std::size_t count = 5000, scratch = 24u << 20;
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  cfg.scratch_bytes = scratch;
  cfg.shared_heap_bytes = 4u << 20;
  rt::ProcessTeam team(cfg);
  coll::CollOpts o;
  o.slice_max = 4u << 10;

  const Counters c = measure_counters(team, ma_allreduce_fn(o, count));
  const auto want = expected_ma_allreduce(count * 8, p, m, o, scratch);
  EXPECT_EQ(c.dav.loads, want.loads);
  EXPECT_EQ(c.dav.stores, want.stores);
  EXPECT_EQ(c.kernels.total(), want.kernel_calls);
  EXPECT_EQ(c.sync.barriers, want.barriers);
  EXPECT_EQ(c.sync.flag_posts, want.flag_posts);
  EXPECT_EQ(c.sync.flag_waits, want.flag_waits);
}

}  // namespace
