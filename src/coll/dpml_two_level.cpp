// DPML-style data-partitioned parallel reduction, with YHCCL's two-level
// (socket-aware) hierarchy (paper §5.1).
//
// Per round, every rank copies its share of the round into a private
// staging region of shared memory (this full copy-in is exactly the
// redundancy the MA algorithms eliminate — kept faithful here because this
// algorithm is both the small-message fast path and, in flat mode, the
// paper's DPML baseline [13]).  Then:
//   stage 1 (two-level only): each socket's members reduce the staged
//     buffers of their socket into the socket leader's staging region,
//     partitioned by ownership block.
//   stage 2: the owner of each block reduces it across the socket leaders
//     (flat mode: across all p staging regions) and delivers it.
//
// The only synchronization is a handful of node barriers per round — no
// per-step neighbour flags — which is why it wins for small messages where
// the MA pipeline's p-1 synchronizations dominate.
#include <cstdint>

#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/copy/policy.hpp"
#include "yhccl/copy/reduce_kernels.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::coll {

namespace {

using detail::BlockSlicing;

enum class Deliver : int { scatter, all, root_only };

struct Groups {
  int m;  ///< number of groups (sockets, or p singletons in flat mode)
  int base[rt::kMaxRanks];
  int size[rt::kMaxRanks];
  int my_group, my_index;
};

Groups make_groups(RankCtx& ctx, bool flat) {
  Groups g{};
  if (flat || ctx.nsockets() == 1) {
    g.m = ctx.nranks();
    for (int i = 0; i < g.m; ++i) {
      g.base[i] = i;
      g.size[i] = 1;
    }
    g.my_group = ctx.rank();
    g.my_index = 0;
  } else {
    const auto& topo = ctx.team().topo();
    g.m = topo.nsockets();
    for (int s = 0; s < g.m; ++s) {
      g.base[s] = topo.socket_base(s);
      g.size[s] = topo.socket_size(s);
    }
    g.my_group = ctx.socket();
    g.my_index = ctx.socket_rank();
  }
  return g;
}

void dpml_core(RankCtx& ctx, const std::byte* send, std::byte* recv,
               const BlockSlicing& S, Datatype d, ReduceOp op,
               const CollOpts& opts, Deliver deliver, int root) {
  const int p = ctx.nranks();
  const auto r = static_cast<std::size_t>(ctx.rank());
  const Groups g = make_groups(ctx, opts.dpml_flat);
  const std::size_t I = S.slice;
  const std::size_t RB = static_cast<std::size_t>(p) * I;  // staged per rank

  detail::ScratchCarver carve(ctx);
  // p staging regions of RB bytes + one node-result region.
  std::byte* staging = carve.take(static_cast<std::size_t>(p) * RB);
  std::byte* node_res = carve.take(RB);
  auto stage_of = [&](int rank) { return staging + rank * RB; };

  const std::size_t C = ctx.cache().available(p);
  const std::size_t W =
      detail::WorkSet::allreduce(S.total, p, g.m, I);  // conservative

  for (std::size_t t = 0; t < S.nrounds; ++t) {
    // Copy-in: my sub-slice of every block, gathered into my staging.
    {
      trace::Span sp(trace::Phase::copy_in);
      if (sp.active())
        sp.set_variant(trace::copy_variant(
            copy::use_nt_store(opts.policy, true, C, W, I),
            static_cast<int>(copy::active_isa())));
      for (int b = 0; b < p; ++b) {
        const auto lb = static_cast<std::size_t>(b);
        const std::size_t len = S.len(lb, t);
        if (len > 0) {
          sp.add_bytes(len);
          copy::dispatch_copy(opts.policy, stage_of(ctx.rank()) + lb * I,
                              send + S.off(lb, t), len,
                              /*temporal_hint=*/true, C, W);
        }
      }
    }
    ctx.barrier();

    // Stage 1: intra-group reduction into the group leader's staging.
    // The closing barrier must be team-uniform: with heterogeneous socket
    // sizes (e.g. 3 ranks over 2 sockets) a singleton group does no stage-1
    // work but still has to match its peers' barrier, or every later
    // barrier pairs off-by-one and the team deadlocks.
    bool any_multi = false;
    for (int s = 0; s < g.m; ++s) any_multi = any_multi || g.size[s] > 1;
    const int n = g.size[g.my_group];
    if (n > 1) {
      trace::Span sp(trace::Phase::reduce);
      if (sp.active())
        sp.set_variant(trace::copy_variant(
            false, static_cast<int>(copy::active_isa())));
      const int lo = g.my_index * p / n;
      const int hi = (g.my_index + 1) * p / n;
      for (int b = lo; b < hi; ++b) {
        const auto lb = static_cast<std::size_t>(b);
        const std::size_t len = S.len(lb, t);
        if (len == 0) continue;
        sp.add_bytes(len);
        const void* srcs[rt::kMaxRanks];
        for (int i = 0; i < n; ++i)
          srcs[i] = stage_of(g.base[g.my_group] + i) + lb * I;
        copy::reduce_out_multi(stage_of(g.base[g.my_group]) + lb * I, srcs,
                               n, len, d, op, /*nt_store=*/false);
      }
    }
    if (any_multi) ctx.barrier();

    // Stage 2: block owners combine the group leaders' partials.
    const std::size_t len_r = S.len(r, t);
    if (len_r > 0) {
      const void* srcs[rt::kMaxRanks];
      for (int x = 0; x < g.m; ++x)
        srcs[x] = stage_of(g.base[x]) + r * I;
      if (deliver == Deliver::scatter) {
        const bool nt = copy::use_nt_store(opts.policy, /*temporal_hint=*/false,
                                           C, W, len_r);
        trace::Span sp(trace::Phase::reduce, len_r);
        if (sp.active())
          sp.set_variant(trace::copy_variant(
              nt, static_cast<int>(copy::active_isa())));
        copy::reduce_out_multi(recv + S.off_in_block(t), srcs, g.m, len_r, d,
                               op, nt);
      } else {
        trace::Span sp(trace::Phase::reduce, len_r);
        if (sp.active())
          sp.set_variant(trace::copy_variant(
              false, static_cast<int>(copy::active_isa())));
        copy::reduce_out_multi(node_res + r * I, srcs, g.m, len_r, d, op,
                               /*nt_store=*/false);
      }
    }
    ctx.barrier();

    // Copy-out for allreduce / reduce.
    if (deliver != Deliver::scatter) {
      if (deliver == Deliver::all ||
          (deliver == Deliver::root_only && ctx.rank() == root)) {
        trace::Span sp(trace::Phase::copy_out);
        if (sp.active())
          sp.set_variant(trace::copy_variant(
              copy::use_nt_store(opts.policy, false, C, W, I),
              static_cast<int>(copy::active_isa())));
        for (int b = 0; b < p; ++b) {
          const auto lb = static_cast<std::size_t>(b);
          const std::size_t len = S.len(lb, t);
          if (len > 0) {
            sp.add_bytes(len);
            copy::dispatch_copy(opts.policy, recv + S.off(lb, t),
                                node_res + lb * I, len,
                                /*temporal_hint=*/false, C, W);
          }
        }
      }
      ctx.barrier();
    }
  }
}

/// Clamp the per-round chunk so (p+1) staging regions of p*I fit scratch.
BlockSlicing dpml_slicing(RankCtx& ctx, std::size_t total,
                          std::size_t block_bytes, const CollOpts& opts) {
  const auto p = static_cast<std::size_t>(ctx.nranks());
  CollOpts o = opts;
  const std::size_t cap = ctx.scratch_bytes() / ((p + 1) * p + 2);
  o.slice_max = std::clamp<std::size_t>(opts.dpml_chunk, kCacheline,
                                        std::max(cap, kCacheline));
  YHCCL_REQUIRE(o.slice_max >= kCacheline,
                "scratch too small for DPML staging");
  return BlockSlicing::with_block(total, block_bytes, o);
}

}  // namespace

void dpml_two_level_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                                   std::size_t count, Datatype d, ReduceOp op,
                                   const CollOpts& opts) {
  detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t B = count * dtype_size(d);
  trace::CollScope coll_scope(
      detail::trace_coll_id(CollKind::reduce_scatter),
      B * static_cast<std::size_t>(p),
      detail::trace_alg_id(Algorithm::dpml_two_level));
  if (p == 1) {
    copy::t_copy(recv, send, B);
    return;
  }
  const std::size_t total = B * static_cast<std::size_t>(p);
  const auto S = dpml_slicing(ctx, total, B, opts);
  dpml_core(ctx, static_cast<const std::byte*>(send),
            static_cast<std::byte*>(recv), S, d, op, opts, Deliver::scatter,
            -1);
}

void dpml_two_level_allreduce(RankCtx& ctx, const void* send, void* recv,
                              std::size_t count, Datatype d, ReduceOp op,
                              const CollOpts& opts) {
  detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t total = count * dtype_size(d);
  trace::CollScope coll_scope(
      detail::trace_coll_id(CollKind::allreduce), total,
      detail::trace_alg_id(Algorithm::dpml_two_level));
  if (p == 1) {
    copy::t_copy(recv, send, total);
    return;
  }
  const std::size_t B = round_up(
      ceil_div(total, static_cast<std::size_t>(p)), kCacheline);
  const auto S = dpml_slicing(ctx, total, std::max(B, kCacheline), opts);
  dpml_core(ctx, static_cast<const std::byte*>(send),
            static_cast<std::byte*>(recv), S, d, op, opts, Deliver::all, -1);
}

void dpml_two_level_reduce(RankCtx& ctx, const void* send, void* recv,
                           std::size_t count, Datatype d, ReduceOp op,
                           int root, const CollOpts& opts) {
  detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t total = count * dtype_size(d);
  trace::CollScope coll_scope(
      detail::trace_coll_id(CollKind::reduce), total,
      detail::trace_alg_id(Algorithm::dpml_two_level));
  if (p == 1) {
    copy::t_copy(recv, send, total);
    return;
  }
  const std::size_t B = round_up(
      ceil_div(total, static_cast<std::size_t>(p)), kCacheline);
  const auto S = dpml_slicing(ctx, total, std::max(B, kCacheline), opts);
  dpml_core(ctx, static_cast<const std::byte*>(send),
            static_cast<std::byte*>(recv), S, d, op, opts,
            Deliver::root_only, root);
}

}  // namespace yhccl::coll
