// The model-checking engine behind yhccl::mc (see checker.hpp and
// docs/analysis.md §MC for the user-facing story).
//
// Execution model
// ---------------
// Each model rank is a ucontext fiber on one OS thread.  A fiber runs real
// runtime code until it reaches a *gate*: an intercepted mc::atomic
// load/store/RMW/CAS, or a SpinGuard yield.  At a gate it parks its pending
// operation and swaps to the scheduler, which picks the next (thread,
// reads-from) choice, applies the operation's semantic effect against the
// explored history, and resumes the fiber with the result.
//
// Memory model (the subset the runtime uses)
// ------------------------------------------
// Per-location modification order == execution order of its stores; a load
// may read any store not yet overwritten by something happens-before it
// (write-read coherence) and no older than what its thread already read
// (read-read coherence).  Happens-before is tracked with vector clocks:
// release stores publish the writer's clock, acquire loads join it; relaxed
// stores publish the clock of the writer's last release fence; relaxed
// loads bank the message for a later acquire fence; RMWs always read the
// newest store and extend its release sequence (msg chaining).  seq_cst is
// modeled as acq_rel — the protocols never rely on the single total order.
// A failed CAS reads the newest store.  Spurious CAS failures are not
// modeled.
//
// Spin loops
// ----------
// SpinGuard::relax() yields to the scheduler in MC builds.  A parked
// spinner watches the locations it loaded since its previous yield and is
// runnable only when one of them has a store it has not read yet; when
// re-run it must read something newer (bounded fairness — models that a
// real spin loop eventually observes every store).  A spinner whose watch
// set can never advance while all peers are done is reported as a deadlock
// (lost wakeup).
//
// Plain-memory race detection rides on the analysis::hb_read/hb_write
// instrumentation already present in the copy/reduce kernels and sync
// paths: overlapping accesses from different ranks, at least one write,
// not ordered by the model's happens-before, are a violation.
#ifdef YHCCL_MC

#include "yhccl/mc/checker.hpp"

#include <ucontext.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace yhccl::mc {

namespace {

constexpr int kMaxT = 4;
constexpr std::size_t kStackBytes = 256 * 1024;

// Thrown by mc::require to unwind the violating fiber; the violation is
// recorded before the throw.
struct McAbort : std::exception {
  const char* what() const noexcept override { return "mc violation"; }
};

inline bool is_acq(std::memory_order o) noexcept {
  return o == std::memory_order_acquire || o == std::memory_order_consume ||
         o == std::memory_order_acq_rel || o == std::memory_order_seq_cst;
}
inline bool is_rel(std::memory_order o) noexcept {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}
inline std::uint64_t mask_width(std::uint64_t v, unsigned size) noexcept {
  return size >= 8 ? v : (v & ((std::uint64_t{1} << (8 * size)) - 1));
}

struct VC {
  std::uint32_t c[kMaxT] = {0, 0, 0, 0};
  void join(const VC& o) noexcept {
    for (int i = 0; i < kMaxT; ++i)
      if (o.c[i] > c[i]) c[i] = o.c[i];
  }
};

struct StoreRec {
  std::uint64_t bits = 0;
  int tid = -1;               // -1: the location's initial value
  std::uint32_t selfclk = 0;  // writer's own clock component at this store
  VC msg;                     // what an acquire read of this store joins
};

struct Loc {
  std::vector<StoreRec> hist;  // modification order; hist[0] = initial
};

enum class OpKind : std::uint8_t { load, store, rmw, cas, spin };

struct Pending {
  OpKind kind = OpKind::spin;
  void* addr = nullptr;
  std::uint64_t a = 0;    // store value / rmw delta / cas expected
  std::uint64_t b = 0;    // cas desired
  std::uint64_t cur = 0;  // underlying bits at the gate (initial capture)
  unsigned size = 8;
  std::memory_order mo = std::memory_order_seq_cst;
  std::memory_order mo2 = std::memory_order_seq_cst;  // cas failure order
};

struct Access {  // plain-memory access, for race detection
  std::uintptr_t lo = 0, hi = 0;
  int tid = 0;
  bool write = false;
  const char* site = nullptr;
  std::uint32_t selfclk = 0;
};

// One node of the DFS spine.  The spine persists across executions: the
// prefix up to the last changed choice is replayed, everything deeper is
// re-discovered.
struct StepRec {
  int tid = 0;
  int rf = 0;       // reads-from choice: index among candidates, 0 = oldest
  int rf_next = 1;  // next rf alternative to try at this node
  int ncand = 1;    // candidate count (loads; recomputed each execution)
  OpKind kind = OpKind::spin;
  bool writeish = false;
  void* addr = nullptr;
  std::uint32_t selftc = 0;  // thread's trace-clock component at this step
  unsigned enabled = 0;      // enabled threads at the pre-state
  unsigned sleep = 0;        // sleep set at the pre-state
  unsigned done = 0;         // thread choices fully explored here
  unsigned backtrack = 0;    // DPOR-requested thread choices
};

struct ThreadSt {
  ucontext_t ctx{};
  std::unique_ptr<char[]> stack;
  bool finished = false;
  bool has_pending = false;
  bool at_spin = false;
  Pending pend;
  std::uint64_t result = 0;
  bool cas_ok = false;
  VC vc;           // happens-before clock
  VC fence_rel;    // clock at the last release fence
  VC acq_pending;  // joined msgs of relaxed loads (consumed by acquire fence)
  VC tvc;          // DPOR trace clock (dependence order)
  std::map<void*, std::uint32_t> last_read;  // coherence floor per location
  std::vector<void*> reads_window;  // locations loaded since last yield
  std::vector<void*> watch;         // spin watch set (set when parking)
  // Oldest store index loaded per location since the last yield: if any
  // entry lags that location's latest store at park time, re-running the
  // iteration can produce a different result with no new stores.
  std::map<void*, std::uint32_t> window_min_read;
  bool spin_retry = false;  // parked iteration can differ on re-run

  void reset_run() {
    finished = has_pending = at_spin = false;
    spin_retry = false;
    window_min_read.clear();
    pend = Pending{};
    result = 0;
    cas_ok = false;
    vc = fence_rel = acq_pending = tvc = VC{};
    last_read.clear();
    reads_window.clear();
    watch.clear();
  }
};

enum class ExecEnd { done, violated, sleep_pruned, truncated, invalid };

struct Session {
  const Spec* spec = nullptr;
  Options opt;
  const ReplayEnv* env = nullptr;
  bool intercepting = false;
  int cur_tid = -1;  // fiber currently running; -1 = scheduler
  int nt = 2;
  ucontext_t sched_ctx{};
  ThreadSt th[kMaxT];
  std::map<void*, Loc> locs;
  struct LocTc {
    VC all, w;
  };
  std::map<void*, LocTc> loctc;  // per-location DPOR trace clocks
  std::vector<Access> accesses;
  std::vector<StepRec> stack;  // DFS spine
  std::size_t exec_len = 0;    // steps executed this run
  unsigned cur_sleep = 0;
  int spawn_tid = 0;  // tid handed to the next fiber entry (avoids
                      // makecontext's int-vararg function-pointer cast)
  bool violated = false;
  long steps_this = 0;
  Result res;
};

thread_local Session* g_sess = nullptr;

// Address labels for readable violation messages.
std::map<std::uintptr_t, std::pair<std::size_t, std::string>>& labels() {
  static std::map<std::uintptr_t, std::pair<std::size_t, std::string>> m;
  return m;
}

std::string label_for(const void* p) {
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  auto& m = labels();
  auto it = m.upper_bound(a);
  if (it != m.begin()) {
    --it;
    if (a < it->first + it->second.first) {
      const std::uintptr_t off = a - it->first;
      if (off == 0) return it->second.second;
      std::ostringstream os;
      os << it->second.second << "+" << off;
      return os.str();
    }
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%p", p);
  return buf;
}

std::string schedule_string(const Session& s) {
  std::ostringstream os;
  for (std::size_t i = 0; i < s.exec_len; ++i) {
    const StepRec& e = s.stack[i];
    if (i) os << '.';
    os << 't' << e.tid;
    if (e.kind == OpKind::load && (e.ncand > 1 || e.rf > 0))
      os << ':' << e.rf;
  }
  return os.str();
}

void record_violation(Session* s, const char* kind, const std::string& msg) {
  if (s->violated) return;  // first violation per execution
  s->violated = true;
  s->res.violations.push_back(Violation{kind, msg, schedule_string(*s)});
}

bool in_passthrough(const Session* s, const void* p) noexcept {
  if (!s->env || !s->env->passthrough) return false;
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  const auto lo = reinterpret_cast<std::uintptr_t>(s->env->passthrough);
  return a >= lo && a < lo + s->env->passthrough_bytes;
}

void fiber_tramp() {
  Session* s = g_sess;
  const int tid = s->spawn_tid;
  try {
    s->spec->body(tid);
  } catch (const McAbort&) {
    // recorded by mc::require
  } catch (const std::exception& e) {
    record_violation(s, "exception", e.what());
  } catch (...) {
    record_violation(s, "exception", "unknown exception in model rank");
  }
  ThreadSt& t = s->th[tid];
  t.finished = true;
  t.has_pending = false;
  t.at_spin = false;
  // uc_link returns control to the scheduler.
}

void resume(Session* s, int tid) {
  s->cur_tid = tid;
  if (s->env && s->env->on_resume) s->env->on_resume(tid);
  swapcontext(&s->sched_ctx, &s->th[tid].ctx);
  s->cur_tid = -1;
  if (s->env && s->env->on_resume) s->env->on_resume(-1);
}

Loc& get_loc(Session* s, const Pending& p) {
  auto it = s->locs.find(p.addr);
  if (it == s->locs.end()) {
    Loc l;
    StoreRec init;
    init.bits = mask_width(p.cur, p.size);
    l.hist.push_back(init);
    it = s->locs.emplace(p.addr, std::move(l)).first;
  }
  return it->second;
}

bool spin_runnable(const Session* s, const ThreadSt& t) {
  if (t.watch.empty()) return true;
  // The parked iteration observed at least one non-latest store, so its
  // coherence floors advanced: re-running it can produce a different result
  // with no help from other threads (a seqlock reader whose recheck outran
  // its header read retries against current values, not future stores).
  if (t.spin_retry) return true;
  for (void* a : t.watch) {
    auto it = s->locs.find(a);
    if (it == s->locs.end()) continue;
    const auto latest = static_cast<std::uint32_t>(it->second.hist.size() - 1);
    const auto lr = t.last_read.count(a) ? t.last_read.at(a) : 0u;
    if (latest > lr) return true;
  }
  return false;
}

unsigned enabled_mask(const Session* s) {
  unsigned m = 0;
  for (int i = 0; i < s->nt; ++i) {
    const ThreadSt& t = s->th[i];
    if (t.finished) continue;
    if (t.at_spin) {
      if (spin_runnable(s, t)) m |= 1u << i;
    } else if (t.has_pending) {
      m |= 1u << i;
    }
  }
  return m;
}

// DPOR: the freshly executed step conflicts with the most recent earlier
// step on the same location from another thread; if that step is not
// dependence-ordered before us, request its thread (or, if it is not
// enabled there, every enabled thread) as an alternative at that node.
void dpor_backtrack(Session* s, std::size_t k, int tid, void* addr,
                    bool writeish, const VC& pre_tvc) {
  if (addr == nullptr) return;
  for (std::size_t j = k; j-- > 0;) {
    StepRec& si = s->stack[j];
    if (si.addr != addr || si.tid == tid) continue;
    if (!(si.writeish || writeish)) continue;
    if (si.selftc > pre_tvc.c[si.tid]) {
      const unsigned b = 1u << tid;
      if (si.enabled & b)
        si.backtrack |= b;
      else
        si.backtrack |= si.enabled;
    }
    break;  // only the most recent conflicting step
  }
}

// Apply the semantic effect of the chosen step against the history.
void exec_step(Session* s, StepRec& e, std::size_t k) {
  const int tid = e.tid;
  ThreadSt& t = s->th[tid];
  ++s->steps_this;

  if (t.at_spin) {
    e.kind = OpKind::spin;
    e.addr = nullptr;
    e.ncand = 1;
    e.writeish = false;
    t.at_spin = false;   // watch stays active until the next yield
    t.spin_retry = false;  // the retry this flag justified is now running
    return;
  }

  const Pending p = t.pend;
  e.kind = p.kind;
  e.addr = p.addr;
  Loc& loc = get_loc(s, p);
  const VC pre_tvc = t.tvc;

  switch (p.kind) {
    case OpKind::load: {
      const auto latest = static_cast<std::uint32_t>(loc.hist.size() - 1);
      // Write-read coherence floor: newest store already happens-before us.
      std::uint32_t hbf = 0;
      for (std::uint32_t m = latest; m > 0; --m) {
        const StoreRec& sr = loc.hist[m];
        if (sr.tid < 0 || sr.selfclk <= t.vc.c[sr.tid]) {
          hbf = m;
          break;
        }
      }
      const std::uint32_t lr =
          t.last_read.count(p.addr) ? t.last_read[p.addr] : 0u;
      std::uint32_t floor = std::max(hbf, lr);
      // Spin fairness: a watched location with unread stores must advance.
      const bool watched =
          std::find(t.watch.begin(), t.watch.end(), p.addr) != t.watch.end();
      if (watched && latest > lr) floor = std::max(floor, lr + 1);
      e.ncand = static_cast<int>(latest - floor + 1);
      const std::uint32_t idx =
          floor + static_cast<std::uint32_t>(
                      std::min(e.rf, e.ncand - 1));
      const StoreRec& sr = loc.hist[idx];
      t.result = sr.bits;
      t.last_read[p.addr] = std::max(lr, idx);
      const auto [wit, fresh] = t.window_min_read.emplace(p.addr, idx);
      if (!fresh) wit->second = std::min(wit->second, idx);
      if (is_acq(p.mo))
        t.vc.join(sr.msg);
      else
        t.acq_pending.join(sr.msg);
      ++t.vc.c[tid];
      e.writeish = false;
      t.reads_window.push_back(p.addr);
      t.tvc.join(s->loctc[p.addr].w);
      break;
    }
    case OpKind::store: {
      ++t.vc.c[tid];
      StoreRec sr;
      sr.bits = mask_width(p.a, p.size);
      sr.tid = tid;
      sr.selfclk = t.vc.c[tid];
      sr.msg = is_rel(p.mo) ? t.vc : t.fence_rel;
      loc.hist.push_back(sr);
      e.writeish = true;
      t.tvc.join(s->loctc[p.addr].all);
      break;
    }
    case OpKind::rmw: {
      const StoreRec prev = loc.hist.back();
      t.result = prev.bits;
      t.last_read[p.addr] = static_cast<std::uint32_t>(loc.hist.size() - 1);
      if (is_acq(p.mo))
        t.vc.join(prev.msg);
      else
        t.acq_pending.join(prev.msg);
      ++t.vc.c[tid];
      StoreRec sr;
      sr.bits = mask_width(prev.bits + p.a, p.size);
      sr.tid = tid;
      sr.selfclk = t.vc.c[tid];
      sr.msg = prev.msg;  // RMWs continue the release sequence
      sr.msg.join(is_rel(p.mo) ? t.vc : t.fence_rel);
      loc.hist.push_back(sr);
      e.writeish = true;
      t.reads_window.push_back(p.addr);
      t.tvc.join(s->loctc[p.addr].all);
      break;
    }
    case OpKind::cas: {
      const StoreRec prev = loc.hist.back();
      t.last_read[p.addr] = static_cast<std::uint32_t>(loc.hist.size() - 1);
      t.result = prev.bits;
      if (prev.bits == mask_width(p.a, p.size)) {
        t.cas_ok = true;
        if (is_acq(p.mo))
          t.vc.join(prev.msg);
        else
          t.acq_pending.join(prev.msg);
        ++t.vc.c[tid];
        StoreRec sr;
        sr.bits = mask_width(p.b, p.size);
        sr.tid = tid;
        sr.selfclk = t.vc.c[tid];
        sr.msg = prev.msg;
        sr.msg.join(is_rel(p.mo) ? t.vc : t.fence_rel);
        loc.hist.push_back(sr);
        e.writeish = true;
        t.tvc.join(s->loctc[p.addr].all);
      } else {
        t.cas_ok = false;
        if (is_acq(p.mo2))
          t.vc.join(prev.msg);
        else
          t.acq_pending.join(prev.msg);
        ++t.vc.c[tid];
        e.writeish = false;
        t.tvc.join(s->loctc[p.addr].w);
      }
      t.reads_window.push_back(p.addr);
      break;
    }
    case OpKind::spin:
      break;  // handled above
  }

  ++t.tvc.c[tid];
  e.selftc = t.tvc.c[tid];
  s->loctc[p.addr].all.join(t.tvc);
  if (e.writeish) s->loctc[p.addr].w.join(t.tvc);
  dpor_backtrack(s, k, tid, p.addr, e.writeish, pre_tvc);
}

// Sleep-set maintenance: a slept thread stays asleep across a step it is
// independent of; a dependent step wakes it.
unsigned filter_sleep(const Session* s, unsigned sleepers, const StepRec& e) {
  if (e.addr == nullptr) return sleepers;  // spin grants touch nothing
  unsigned keep = 0;
  for (int q = 0; q < s->nt; ++q) {
    if (!(sleepers & (1u << q))) continue;
    const ThreadSt& t = s->th[q];
    bool dep = false;
    if (!t.finished) {
      if (t.at_spin) {
        dep = e.writeish &&
              std::find(t.watch.begin(), t.watch.end(), e.addr) !=
                  t.watch.end();
      } else if (t.has_pending && t.pend.addr == e.addr) {
        const bool qw = t.pend.kind == OpKind::store ||
                        t.pend.kind == OpKind::rmw ||
                        t.pend.kind == OpKind::cas;
        dep = qw || e.writeish;
      }
    }
    if (!dep) keep |= 1u << q;
  }
  return keep;
}

std::string describe_stuck(const Session* s) {
  std::ostringstream os;
  os << "deadlock:";
  for (int i = 0; i < s->nt; ++i) {
    const ThreadSt& t = s->th[i];
    if (t.finished) continue;
    os << " t" << i;
    if (t.at_spin) {
      os << " spinning on {";
      for (std::size_t j = 0; j < t.watch.size(); ++j)
        os << (j ? ", " : "") << label_for(t.watch[j]);
      os << "}";
    } else if (t.has_pending) {
      os << " pending op on " << label_for(t.pend.addr);
    } else {
      os << " blocked";
    }
    os << ";";
  }
  return os.str();
}

ExecEnd run_execution(Session* s, std::size_t forced_n) {
  s->locs.clear();
  s->loctc.clear();
  s->accesses.clear();
  s->cur_sleep = 0;
  s->exec_len = 0;
  s->violated = false;
  s->steps_this = 0;
  for (int i = 0; i < s->nt; ++i) s->th[i].reset_run();

  s->intercepting = false;
  if (s->spec->reset) s->spec->reset();
  s->intercepting = true;

  // Create and prime the fibers: run each to its first gate so pending
  // operations are known before the first scheduling choice.
  for (int i = 0; i < s->nt; ++i) {
    ThreadSt& t = s->th[i];
    if (!t.stack) t.stack.reset(new char[kStackBytes]);
    getcontext(&t.ctx);
    t.ctx.uc_stack.ss_sp = t.stack.get();
    t.ctx.uc_stack.ss_size = kStackBytes;
    t.ctx.uc_link = &s->sched_ctx;
    makecontext(&t.ctx, fiber_tramp, 0);
    s->spawn_tid = i;
    resume(s, i);
    if (s->violated) {
      s->intercepting = false;
      return ExecEnd::violated;
    }
  }

  std::size_t k = 0;
  while (true) {
    const unsigned en = enabled_mask(s);
    if (en == 0) {
      bool all_done = true;
      for (int i = 0; i < s->nt; ++i) all_done &= s->th[i].finished;
      if (all_done) break;
      record_violation(s, "deadlock", describe_stuck(s));
      s->intercepting = false;
      return ExecEnd::violated;
    }

    int tid;
    StepRec* e;
    if (k < forced_n) {
      e = &s->stack[k];
      if (!(en & (1u << e->tid))) {
        std::ostringstream os;
        os << "schedule step " << k << " picks t" << e->tid
           << " which is not runnable";
        record_violation(s, "invalid-schedule", os.str());
        s->intercepting = false;
        return ExecEnd::invalid;
      }
      e->enabled = en;
      tid = e->tid;
      exec_step(s, *e, k);
      s->cur_sleep =
          filter_sleep(s, (e->sleep | e->done) & ~(1u << tid), *e);
    } else {
      const unsigned choice = en & ~s->cur_sleep;
      if (choice == 0) {
        s->intercepting = false;
        return ExecEnd::sleep_pruned;
      }
      tid = __builtin_ctz(choice);
      s->stack.push_back(StepRec{});
      e = &s->stack.back();
      e->tid = tid;
      e->enabled = en;
      e->sleep = s->cur_sleep;
      exec_step(s, *e, k);
      s->cur_sleep = filter_sleep(s, e->sleep & ~(1u << tid), *e);
    }
    ++k;
    s->exec_len = k;  // set before resuming: violations cite this step
    resume(s, tid);
    if (s->violated) {
      s->intercepting = false;
      return ExecEnd::violated;
    }
    if (s->steps_this > s->opt.max_steps) {
      s->intercepting = false;
      return ExecEnd::truncated;
    }
  }

  s->intercepting = false;
  if (s->spec->check_final) {
    try {
      s->spec->check_final();
    } catch (const McAbort&) {
      return ExecEnd::violated;
    } catch (const std::exception& ex) {
      record_violation(s, "exception", ex.what());
      return ExecEnd::violated;
    }
  }
  return s->violated ? ExecEnd::violated : ExecEnd::done;
}

int clamp_threads(int n) { return n < 2 ? 2 : (n > kMaxT ? kMaxT : n); }

}  // namespace

Options Options::from_env() {
  Options o;
  if (const char* e = std::getenv("YHCCL_MC_MAX_EXECS")) {
    const long v = std::atol(e);
    if (v > 0) o.max_execs = v;
  }
  if (const char* e = std::getenv("YHCCL_MC_BUDGET")) {
    const double v = std::atof(e);
    if (v > 0) o.max_seconds = v;
  }
  return o;
}

Result explore(const Spec& spec, const Options& opt) {
  Session s;
  s.spec = &spec;
  s.opt = opt;
  s.nt = clamp_threads(spec.nthreads);
  Session* prev = g_sess;
  g_sess = &s;
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  bool exhausted = false;
  while (true) {
    const ExecEnd end = run_execution(&s, s.stack.size());
    ++s.res.execs;
    s.res.steps += s.steps_this;
    if (end == ExecEnd::truncated) ++s.res.truncated;
    if ((end == ExecEnd::violated || end == ExecEnd::invalid) &&
        opt.stop_at_first)
      break;

    // Backtrack: deepest node with an untried (rf or thread) alternative.
    bool more = false;
    while (!s.stack.empty()) {
      StepRec& e = s.stack.back();
      if (e.kind == OpKind::load && e.rf_next < e.ncand) {
        e.rf = e.rf_next++;
        more = true;
        break;
      }
      e.done |= 1u << e.tid;
      const unsigned cand = e.backtrack & e.enabled & ~e.done & ~e.sleep;
      if (cand) {
        e.tid = __builtin_ctz(cand);
        e.rf = 0;
        e.rf_next = 1;
        e.ncand = 1;
        more = true;
        break;
      }
      s.stack.pop_back();
    }
    if (!more) {
      exhausted = true;
      break;
    }
    if (s.res.execs >= opt.max_execs || elapsed() > opt.max_seconds) break;
  }

  s.res.complete = exhausted && s.res.truncated == 0;
  s.res.seconds = elapsed();
  g_sess = prev;
  return s.res;
}

Result replay(const Spec& spec, const std::string& schedule,
              const Options& opt, const ReplayEnv* env) {
  Session s;
  s.spec = &spec;
  s.opt = opt;
  s.nt = clamp_threads(spec.nthreads);
  s.env = env;

  // Parse "t0.t1:2.t0" (separators: '.', ',' or whitespace; 't' optional).
  std::string tok;
  std::vector<StepRec> forced;
  auto flush = [&] {
    if (tok.empty()) return;
    const char* c = tok.c_str();
    if (*c == 't' || *c == 'T') ++c;
    StepRec e;
    e.tid = std::atoi(c);
    if (const char* colon = std::strchr(c, ':')) e.rf = std::atoi(colon + 1);
    e.rf_next = e.rf + 1;
    forced.push_back(e);
    tok.clear();
  };
  for (const char ch : schedule) {
    if (ch == '.' || ch == ',' || ch == ' ' || ch == '\n' || ch == '\t')
      flush();
    else
      tok.push_back(ch);
  }
  flush();
  s.stack = std::move(forced);

  const auto t0 = std::chrono::steady_clock::now();
  Session* prev = g_sess;
  g_sess = &s;
  run_execution(&s, s.stack.size());
  g_sess = prev;
  s.res.execs = 1;
  s.res.steps = s.steps_this;
  s.res.complete = true;
  s.res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return s.res;
}

void require(bool ok, const char* msg) {
  if (ok) return;
  Session* s = g_sess;
  if (!s) throw std::runtime_error(msg);
  record_violation(s, "assert", msg);
  throw McAbort{};
}

void spin_pause() {
  if (g_sess && g_sess->intercepting && g_sess->cur_tid >= 0)
    detail::sess_spin_yield();
}

void set_label(const void* addr, std::size_t bytes, std::string name) {
  labels()[reinterpret_cast<std::uintptr_t>(addr)] = {bytes,
                                                      std::move(name)};
}

void clear_labels() { labels().clear(); }

namespace detail {

bool session_active() noexcept {
  const Session* s = g_sess;
  return s != nullptr && s->intercepting && s->cur_tid >= 0;
}

namespace {

// Park the calling fiber's operation and hand control to the scheduler;
// returns once the scheduler has applied the operation.
std::uint64_t gate(Session* s, const Pending& p) {
  ThreadSt& t = s->th[s->cur_tid];
  t.pend = p;
  t.has_pending = true;
  swapcontext(&t.ctx, &s->sched_ctx);
  t.has_pending = false;
  return t.result;
}

}  // namespace

std::uint64_t sess_load(const void* addr, std::uint64_t cur, unsigned size,
                        std::memory_order o) {
  Session* s = g_sess;
  if (in_passthrough(s, addr)) return cur;
  Pending p;
  p.kind = OpKind::load;
  p.addr = const_cast<void*>(addr);
  p.cur = cur;
  p.size = size;
  p.mo = o;
  return gate(s, p);
}

void sess_store(void* addr, std::uint64_t cur, std::uint64_t val,
                unsigned size, std::memory_order o) {
  Session* s = g_sess;
  if (in_passthrough(s, addr)) return;
  Pending p;
  p.kind = OpKind::store;
  p.addr = addr;
  p.a = val;
  p.cur = cur;
  p.size = size;
  p.mo = o;
  gate(s, p);
}

std::uint64_t sess_rmw_add(void* addr, std::uint64_t cur, std::uint64_t delta,
                           unsigned size, std::memory_order o) {
  Session* s = g_sess;
  if (in_passthrough(s, addr)) return cur;
  Pending p;
  p.kind = OpKind::rmw;
  p.addr = addr;
  p.a = delta;
  p.cur = cur;
  p.size = size;
  p.mo = o;
  return gate(s, p);
}

bool sess_cas(void* addr, std::uint64_t cur, std::uint64_t* expected,
              std::uint64_t desired, unsigned size, std::memory_order ok,
              std::memory_order fail) {
  Session* s = g_sess;
  if (in_passthrough(s, addr)) {
    if (cur == *expected) return true;
    *expected = cur;
    return false;
  }
  Pending p;
  p.kind = OpKind::cas;
  p.addr = addr;
  p.a = *expected;
  p.b = desired;
  p.cur = cur;
  p.size = size;
  p.mo = ok;
  p.mo2 = fail;
  const std::uint64_t seen = gate(s, p);
  if (s->th[s->cur_tid].cas_ok) return true;
  *expected = seen;
  return false;
}

void sess_fence(std::memory_order o) {
  Session* s = g_sess;
  ThreadSt& t = s->th[s->cur_tid];
  // Fences only shuffle thread-local clocks — not a scheduling point.
  if (is_rel(o)) t.fence_rel = t.vc;
  if (is_acq(o)) t.vc.join(t.acq_pending);
}

void sess_spin_yield() {
  Session* s = g_sess;
  ThreadSt& t = s->th[s->cur_tid];
  t.at_spin = true;
  t.spin_retry = false;
  for (const auto& [a, mi] : t.window_min_read) {
    const auto it = s->locs.find(a);
    if (it == s->locs.end()) continue;
    if (static_cast<std::uint32_t>(it->second.hist.size() - 1) > mi) {
      t.spin_retry = true;
      break;
    }
  }
  t.window_min_read.clear();
  t.watch = std::move(t.reads_window);
  t.reads_window.clear();
  swapcontext(&t.ctx, &s->sched_ctx);
}

void sess_data(const void* p, std::size_t n, bool write,
               const char* site) noexcept {
  Session* s = g_sess;
  if (!s || s->cur_tid < 0 || n == 0 || s->violated) return;
  if (in_passthrough(s, p)) return;
  const int tid = s->cur_tid;
  ThreadSt& t = s->th[tid];
  ++t.vc.c[tid];
  const auto lo = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t hi = lo + n;
  for (const Access& a : s->accesses) {
    if (a.tid == tid) continue;
    if (!(write || a.write)) continue;
    if (a.hi <= lo || hi <= a.lo) continue;
    if (a.selfclk <= t.vc.c[a.tid]) continue;  // ordered before us
    std::ostringstream os;
    os << "data race on " << label_for(p) << ": "
       << (a.write ? "write" : "read") << " at " << (a.site ? a.site : "?")
       << " (t" << a.tid << ") vs " << (write ? "write" : "read") << " at "
       << (site ? site : "?") << " (t" << tid << ")";
    record_violation(s, "race", os.str());
    return;
  }
  for (Access& a : s->accesses) {
    if (a.tid == tid && a.lo == lo && a.hi == hi && a.write == write) {
      a.selfclk = t.vc.c[tid];
      a.site = site;
      return;
    }
  }
  Access a;
  a.lo = lo;
  a.hi = hi;
  a.tid = tid;
  a.write = write;
  a.site = site;
  a.selfclk = t.vc.c[tid];
  s->accesses.push_back(a);
}

std::memory_order sess_order(WeakPoint p, std::memory_order o) noexcept {
  const Session* s = g_sess;
  if (s && s->opt.mutation == p) return std::memory_order_relaxed;
  return o;
}

}  // namespace detail

}  // namespace yhccl::mc

#endif  // YHCCL_MC
