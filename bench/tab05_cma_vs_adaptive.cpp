// Table 5 reproduction: CMA-style kernel copies vs adaptive-copy for two
// patterns (paper: 32 MB per message):
//   one-to-all — every rank pulls rank 0's buffer (the CMA path contends
//                on the source page locks, §5.6);
//   ring       — rank i pulls from rank (i+1) % p (disjoint pages).
// The CMA model copies page-by-page with temporal stores (the kernel
// never streams); adaptive-copy streams the big destination writes.
// Paper result: 4.35x (one-to-all) and 1.58x (ring) in favour of
// adaptive-copy.
#include "bench_util.hpp"
#include "yhccl/copy/policy.hpp"
#include "yhccl/runtime/remote_access.hpp"

using namespace yhccl;
using namespace yhccl::bench;

namespace {

enum class Pattern { one_to_all, ring };

double run_pattern(rt::ThreadTeam& team, Session& session, Pattern pat,
                   bool cma, std::size_t bytes) {
  const int p = team.nranks();
  std::vector<std::vector<std::uint8_t>> src(
      p, std::vector<std::uint8_t>(bytes, 1));
  std::vector<std::vector<std::uint8_t>> dst(
      p, std::vector<std::uint8_t>(bytes, 0));
  const std::size_t C = team.config().cache.available(p);
  Series meta;
  meta.bench = session.name();
  meta.collective = "pt2pt-pull";
  meta.algorithm = std::string(cma ? "cma" : "adaptive") +
                   (pat == Pattern::one_to_all ? "/one-to-all" : "/ring");
  meta.bytes = bytes;
  const Series s = measure_series(
      team, std::move(meta),
      [&](rt::RankCtx& ctx) {
        ctx.publish_buffer(0, src[ctx.rank()].data(), bytes);
        ctx.barrier();
        const int peer =
            pat == Pattern::one_to_all ? 0 : (ctx.rank() + 1) % p;
        const auto rb = ctx.remote_buffer(peer, 0);
        if (cma) {
          rt::remote_read(dst[ctx.rank()].data(), rb, 0, bytes,
                          rt::RemoteMode::cma_pagewise, &ctx.page_locks());
        } else {
          // adaptive-copy: W = p * (src + dst) working set.
          copy::adaptive_copy(dst[ctx.rank()].data(), rb.ptr, bytes,
                              /*temporal_hint=*/false, C, 2 * bytes * p);
        }
        ctx.barrier();
      },
      session.policy());
  session.add(s);
  return s.time.median;
}

}  // namespace

int main() {
  const int p = bench_ranks();
  auto& team = bench_team(p, 1);
  const std::size_t bytes =
      static_cast<std::size_t>((16u << 20) * bench_scale());

  std::printf("Table 5 — CMA copy vs adaptive-copy (%s per rank, p=%d)\n",
              human_size(bytes).c_str(), p);
  std::printf("%-28s %12s %14s %10s\n", "pattern", "CMA(s)",
              "adaptive(s)", "speedup");
  Session session("tab05_cma_vs_adaptive");
  for (auto pat : {Pattern::one_to_all, Pattern::ring}) {
    const double c = run_pattern(team, session, pat, /*cma=*/true, bytes);
    const double a = run_pattern(team, session, pat, /*cma=*/false, bytes);
    std::printf("%-28s %12.4f %14.4f %9.2fx\n",
                pat == Pattern::one_to_all ? "one-to-all: rank0 -> all"
                                           : "ring: rank i -> i+1",
                c, a, c / a);
  }
  std::printf("(paper: 4.35x one-to-all, 1.58x ring)\n");
  session.write();
  return 0;
}
