#include "yhccl/bench/compare.hpp"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "yhccl/bench/harness.hpp"

namespace yhccl::bench {

const char* verdict_name(Verdict v) noexcept {
  switch (v) {
    case Verdict::unchanged: return "unchanged";
    case Verdict::improved: return "improved";
    case Verdict::regressed: return "regressed";
    case Verdict::counter_mismatch: return "counter-mismatch";
    case Verdict::added: return "added";
    case Verdict::removed: return "removed";
  }
  return "?";
}

// ---- validation --------------------------------------------------------------

namespace {

void require(bool ok, const std::string& msg,
             std::vector<std::string>& errors) {
  if (!ok) errors.push_back(msg);
}

constexpr const char* kCounterFields[] = {
    "dav_loads",  "dav_stores", "kernels_scalar", "kernels_avx2",
    "kernels_avx512", "barriers",   "flag_posts",     "flag_waits",
};

constexpr const char* kTimeFields[] = {
    "reps",  "rejected", "median_s",  "mad_s",      "mean_s",
    "min_s", "max_s",    "ci_low_s",  "ci_high_s",
};

void validate_series(const Json& s, const std::string& where,
                     std::vector<std::string>& errors) {
  require(s.is_object(), where + ": not an object", errors);
  if (!s.is_object()) return;
  for (const char* f : {"bench", "collective", "algorithm", "isa"})
    require(s[f].is_string(), where + ": missing string field '" + f + "'",
            errors);
  for (const char* f : {"ranks", "sockets", "bytes"})
    require(s[f].is_integer() && s[f].as_int() >= 0,
            where + ": field '" + f + "' must be a non-negative integer",
            errors);
  require(s["dab_bytes_per_s"].is_number(),
          where + ": missing numeric field 'dab_bytes_per_s'", errors);
  const Json& t = s["time"];
  require(t.is_object(), where + ": missing 'time' object", errors);
  if (t.is_object())
    for (const char* f : kTimeFields)
      require(t[f].is_number(),
              where + ": time field '" + f + "' must be numeric", errors);
  const Json& c = s["counters"];
  require(c.is_object(), where + ": missing 'counters' object", errors);
  if (c.is_object())
    for (const char* f : kCounterFields)
      require(c[f].is_integer() && c[f].as_int() >= 0,
              where + ": counter '" + f +
                  "' must be a non-negative integer (exact, not a double)",
              errors);
}

}  // namespace

bool validate_report(const Json& report, std::vector<std::string>& errors) {
  const std::size_t before = errors.size();
  require(report.is_object(), "report: not a JSON object", errors);
  if (!report.is_object()) return false;
  require(report["schema"].is_string() &&
              report["schema"].as_string() == kSchemaVersion,
          std::string("report: schema must be \"") + kSchemaVersion + '"',
          errors);
  require(report["name"].is_string(), "report: missing string field 'name'",
          errors);
  require(report["machine"].is_object(), "report: missing 'machine' object",
          errors);
  require(report["policy"].is_object(), "report: missing 'policy' object",
          errors);
  const Json& series = report["series"];
  require(series.is_array(), "report: missing 'series' array", errors);
  if (series.is_array()) {
    std::set<std::string> keys;
    for (std::size_t i = 0; i < series.size(); ++i) {
      const std::string where = "series[" + std::to_string(i) + "]";
      validate_series(series.at(i), where, errors);
      if (series.at(i).is_object()) {
        const std::string key = Series::from_json(series.at(i)).key();
        require(keys.insert(key).second, where + ": duplicate key " + key,
                errors);
      }
    }
  }
  return errors.size() == before;
}

// ---- comparison --------------------------------------------------------------

namespace {

std::map<std::string, Series> index_series(const Json& report) {
  std::map<std::string, Series> out;
  const Json& arr = report["series"];
  for (std::size_t i = 0; i < arr.size(); ++i) {
    Series s = Series::from_json(arr.at(i));
    out.emplace(s.key(), std::move(s));
  }
  return out;
}

void diff_counters(const Counters& base, const Counters& cand,
                   std::vector<std::string>& out) {
  const auto one = [&out](const char* name, std::uint64_t b,
                          std::uint64_t c) {
    if (b == c) return;
    std::ostringstream os;
    os << name << ": " << b << " != " << c;
    out.push_back(os.str());
  };
  one("dav_loads", base.dav.loads, cand.dav.loads);
  one("dav_stores", base.dav.stores, cand.dav.stores);
  for (int t = 0; t < copy::kNumIsaTiers; ++t)
    one(copy::isa_name(static_cast<copy::IsaTier>(t)), base.kernels.calls[t],
        cand.kernels.calls[t]);
  one("barriers", base.sync.barriers, cand.sync.barriers);
  one("flag_posts", base.sync.flag_posts, cand.sync.flag_posts);
  one("flag_waits", base.sync.flag_waits, cand.sync.flag_waits);
}

void count_verdict(CompareResult& r, Verdict v) {
  switch (v) {
    case Verdict::unchanged: ++r.unchanged; break;
    case Verdict::improved: ++r.improved; break;
    case Verdict::regressed: ++r.regressed; break;
    case Verdict::counter_mismatch: ++r.counter_mismatches; break;
    case Verdict::added: ++r.added; break;
    case Verdict::removed: ++r.removed; break;
  }
}

}  // namespace

CompareResult compare_reports(const Json& baseline, const Json& candidate) {
  CompareResult result;
  const auto base = index_series(baseline);
  const auto cand = index_series(candidate);

  for (const auto& [key, b] : base) {
    SeriesDiff d;
    d.key = key;
    d.base_median = b.time.median;
    const auto it = cand.find(key);
    if (it == cand.end()) {
      d.verdict = Verdict::removed;
    } else {
      const Series& c = it->second;
      d.cand_median = c.time.median;
      d.ratio = b.time.median > 0 ? c.time.median / b.time.median : 0;
      diff_counters(b.counters, c.counters, d.counter_diffs);
      if (!d.counter_diffs.empty()) {
        d.verdict = Verdict::counter_mismatch;
      } else if (c.time.ci_high < b.time.ci_low) {
        d.verdict = Verdict::improved;
      } else if (c.time.ci_low > b.time.ci_high) {
        d.verdict = Verdict::regressed;
      } else {
        d.verdict = Verdict::unchanged;
      }
    }
    count_verdict(result, d.verdict);
    result.diffs.push_back(std::move(d));
  }
  for (const auto& [key, c] : cand) {
    if (base.count(key)) continue;
    SeriesDiff d;
    d.key = key;
    d.verdict = Verdict::added;
    d.cand_median = c.time.median;
    count_verdict(result, d.verdict);
    result.diffs.push_back(std::move(d));
  }
  return result;
}

CompareResult compare_tuned(const Json& report, const std::string& static_arm,
                            const std::string& tuned_arm) {
  CompareResult result;
  // Pair key: the series join key minus the algorithm column.
  const auto cell_key = [](const Series& s) {
    return s.bench + '|' + s.collective + '|' + std::to_string(s.ranks) +
           'r' + std::to_string(s.sockets) + 's' + std::to_string(s.bytes) +
           'B';
  };
  std::map<std::string, Series> statics, tuned;
  const Json& arr = report["series"];
  for (std::size_t i = 0; i < arr.size(); ++i) {
    Series s = Series::from_json(arr.at(i));
    if (s.algorithm == static_arm)
      statics.emplace(cell_key(s), std::move(s));
    else if (s.algorithm == tuned_arm)
      tuned.emplace(cell_key(s), std::move(s));
  }
  for (const auto& [key, b] : statics) {
    SeriesDiff d;
    d.key = key;
    d.base_median = b.time.median;
    const auto it = tuned.find(key);
    if (it == tuned.end()) {
      d.verdict = Verdict::removed;  // static cell with no tuned partner
    } else {
      const Series& c = it->second;
      d.cand_median = c.time.median;
      d.ratio = b.time.median > 0 ? c.time.median / b.time.median : 0;
      if (c.time.ci_high < b.time.ci_low)
        d.verdict = Verdict::improved;
      else if (c.time.ci_low > b.time.ci_high)
        d.verdict = Verdict::regressed;
      else
        d.verdict = Verdict::unchanged;
    }
    count_verdict(result, d.verdict);
    result.diffs.push_back(std::move(d));
  }
  for (const auto& [key, c] : tuned) {
    if (statics.count(key)) continue;
    SeriesDiff d;
    d.key = key;
    d.verdict = Verdict::added;
    d.cand_median = c.time.median;
    count_verdict(result, d.verdict);
    result.diffs.push_back(std::move(d));
  }
  return result;
}

std::string CompareResult::report(bool verbose) const {
  std::string out;
  char line[256];
  for (const auto& d : diffs) {
    const bool interesting = d.verdict != Verdict::unchanged;
    if (!interesting && !verbose) continue;
    std::snprintf(line, sizeof line, "%-17s %-56s %9.1fus %9.1fus %6.2fx\n",
                  verdict_name(d.verdict), d.key.c_str(), d.base_median * 1e6,
                  d.cand_median * 1e6, d.ratio);
    out += line;
    for (const auto& cd : d.counter_diffs) {
      out += "                    ";
      out += cd;
      out += '\n';
    }
  }
  std::snprintf(line, sizeof line,
                "%d series: %d unchanged, %d improved, %d regressed, "
                "%d counter-mismatch, %d added, %d removed\n",
                static_cast<int>(diffs.size()), unchanged, improved,
                regressed, counter_mismatches, added, removed);
  out += line;
  return out;
}

// ---- merging -----------------------------------------------------------------

Json merge_reports(const std::vector<Json>& parts, const std::string& name,
                   std::string* err) {
  if (err) err->clear();
  Json out = Json::object();
  out.set("schema", kSchemaVersion);
  out.set("name", name);
  if (!parts.empty()) {
    out.set("machine", parts.front()["machine"]);
    out.set("policy", parts.front()["policy"]);
  } else {
    out.set("machine", Json::object());
    out.set("policy", Json::object());
  }
  Json arr = Json::array();
  std::set<std::string> keys;
  for (const auto& part : parts) {
    const Json& series = part["series"];
    for (std::size_t i = 0; i < series.size(); ++i) {
      const std::string key = Series::from_json(series.at(i)).key();
      if (!keys.insert(key).second) {
        if (err && err->empty()) *err = "duplicate series key: " + key;
        continue;
      }
      arr.push_back(series.at(i));
    }
  }
  out.set("series", std::move(arr));
  return out;
}

}  // namespace yhccl::bench
