// Fundamental value types shared by every YHCCL subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "yhccl/common/error.hpp"

namespace yhccl {

inline constexpr std::size_t kCacheline = 64;

/// Element types supported by the reduction and copy kernels.
enum class Datatype : std::uint8_t { u8, i32, i64, f32, f64 };

/// Reduction operators (MPI_SUM and friends).
enum class ReduceOp : std::uint8_t { sum, prod, max, min, band, bor };

constexpr std::size_t dtype_size(Datatype d) noexcept {
  switch (d) {
    case Datatype::u8: return 1;
    case Datatype::i32: return 4;
    case Datatype::i64: return 8;
    case Datatype::f32: return 4;
    case Datatype::f64: return 8;
  }
  return 0;
}

constexpr std::string_view dtype_name(Datatype d) noexcept {
  switch (d) {
    case Datatype::u8: return "u8";
    case Datatype::i32: return "i32";
    case Datatype::i64: return "i64";
    case Datatype::f32: return "f32";
    case Datatype::f64: return "f64";
  }
  return "?";
}

constexpr std::string_view op_name(ReduceOp o) noexcept {
  switch (o) {
    case ReduceOp::sum: return "sum";
    case ReduceOp::prod: return "prod";
    case ReduceOp::max: return "max";
    case ReduceOp::min: return "min";
    case ReduceOp::band: return "band";
    case ReduceOp::bor: return "bor";
  }
  return "?";
}

/// Is `op` defined for `d`?  Bitwise ops require integer types.
constexpr bool op_valid_for(ReduceOp o, Datatype d) noexcept {
  if (o == ReduceOp::band || o == ReduceOp::bor)
    return d == Datatype::u8 || d == Datatype::i32 || d == Datatype::i64;
  return true;
}

/// Round `v` up to a multiple of `a` (a power of two not required).
constexpr std::size_t round_up(std::size_t v, std::size_t a) noexcept {
  return a == 0 ? v : ((v + a - 1) / a) * a;
}

constexpr std::size_t ceil_div(std::size_t v, std::size_t d) noexcept {
  return d == 0 ? 0 : (v + d - 1) / d;
}

// ---- overflow-checked size arithmetic --------------------------------------
// Shared-section layouts are computed from user-controlled knobs (rank
// counts, chunk/scratch sizes); a silent wrap there maps a too-small region
// and every later bounds check lies.  These helpers are the only sanctioned
// way to combine such sizes: they raise instead of wrapping.

[[noreturn]] inline void raise_overflow(const char* what) {
  raise(std::string("size arithmetic overflow: ") + what);
}

inline std::size_t checked_add(std::size_t a, std::size_t b,
                               const char* what = "size addition") {
  std::size_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) raise_overflow(what);
  return r;
}

inline std::size_t checked_mul(std::size_t a, std::size_t b,
                               const char* what = "size multiplication") {
  std::size_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) raise_overflow(what);
  return r;
}

/// round_up that raises instead of wrapping past SIZE_MAX.
inline std::size_t checked_round_up(std::size_t v, std::size_t a,
                                    const char* what = "size round-up") {
  if (a == 0) return v;
  const std::size_t bumped = checked_add(v, a - 1, what);
  return (bumped / a) * a;
}

}  // namespace yhccl
