file(REMOVE_RECURSE
  "CMakeFiles/fig13_adaptive_bcast.dir/fig13_adaptive_bcast.cpp.o"
  "CMakeFiles/fig13_adaptive_bcast.dir/fig13_adaptive_bcast.cpp.o.d"
  "fig13_adaptive_bcast"
  "fig13_adaptive_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_adaptive_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
