// Shared-memory synchronization primitives.
//
// Everything here lives *inside the team's shared mapping* so it works for
// both thread-backed and fork()-backed rank teams.  The paper's algorithms
// synchronize with per-rank atomic progress flags between neighbouring
// pipeline steps (§3.3) plus node/socket barriers between phases.
//
// Waits use a staged backoff — pause bursts, then sched_yield(), then short
// sleeps — so a stalled peer does not burn whole cores while the watchdog
// counts down, and the reproduction host's oversubscribed teams stay live.
#pragma once

#include <cstdint>

#include "yhccl/analysis/hb.hpp"
#include "yhccl/common/error.hpp"
#include "yhccl/common/types.hpp"
#include "yhccl/mc/atomic.hpp"
#include "yhccl/metrics/metrics.hpp"
#include "yhccl/runtime/fault.hpp"
#include "yhccl/runtime/sync_counts.hpp"
#include "yhccl/runtime/sync_timeout.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::rt {

/// One cacheline-padded atomic counter per rank; avoids false sharing on
/// the flag array (§5.1: "avoid the cache line's false sharing").
/// mc::atomic == std::atomic in normal builds; under -DYHCCL_MC the model
/// checker intercepts it (yhccl/mc/atomic.hpp).
struct alignas(kCacheline) PaddedFlag {
  mc::atomic<std::uint64_t> v{0};
};
static_assert(sizeof(PaddedFlag) == kCacheline);

/// Staged-backoff helper shared by every spin loop:
///   1. 64 `pause` iterations per cycle (µs-scale partner latency),
///   2. sched_yield() for the next ~256 cycles (oversubscribed teams),
///   3. short sleeps doubling 64 µs → 1 ms (long waits stop burning cores).
/// Each cycle polls the team's abort word (coherent abort propagation) and
/// the peers' death tombstones, bumps this rank's heartbeat, and — unlike a
/// bare spin — enforces the process-wide sync timeout: the expiry is
/// classified against the team's liveness slots (PeerDead / PeerDiverged /
/// Timeout, see fault.hpp) and raised as a yhccl::Error instead of a hang.
class SpinGuard {
 public:
  explicit SpinGuard(const char* what = "synchronization wait",
                     trace::Phase ph = trace::Phase::flag_wait) noexcept
      : what_(what), ph_(ph) {}

  /// One backoff step; throws yhccl::Error on team abort or watchdog expiry.
  void relax();

 private:
  const char* what_;
  trace::Phase ph_;      // stall-marker tag once the wait enters stage 3
  bool marked_ = false;  // one marker per guard, not per sleep
  unsigned spins_ = 0;
  unsigned yields_ = 0;
  long sleep_ns_ = 64'000;  // doubles to 1 ms once in the sleep stage
  double deadline_ = -1.0;  // computed lazily on the first sleep
};

/// Spin until `f >= target` (acquire).
inline void spin_wait_ge(const mc::atomic<std::uint64_t>& f,
                         std::uint64_t target,
                         trace::Phase ph = trace::Phase::flag_wait) {
  SpinGuard guard("progress-flag wait", ph);
  while (f.load(YHCCL_MC_ORDER(spin_acquire, std::memory_order_acquire)) <
         target)
    guard.relax();
  analysis::hb_acquire(&f);
}

/// Spin until `f == target` (acquire).
inline void spin_wait_eq(const mc::atomic<std::uint64_t>& f,
                         std::uint64_t target,
                         trace::Phase ph = trace::Phase::flag_wait) {
  SpinGuard guard("progress-flag wait", ph);
  while (f.load(YHCCL_MC_ORDER(spin_acquire, std::memory_order_acquire)) !=
         target)
    guard.relax();
  analysis::hb_acquire(&f);
}

/// Publish a monotone progress value into a flag (the producer half of
/// spin_wait_ge/_eq).  Extracted so the progress-flag protocol is a named,
/// model-checkable unit rather than an inline store at each call site.
inline void flag_publish(PaddedFlag& f, std::uint64_t v) noexcept {
  analysis::hb_release(&f.v);
  f.v.store(v,
            YHCCL_MC_ORDER(step_publish_release, std::memory_order_release));
}

/// Sense-reversing central barrier.  Construct in shared memory; each
/// participant keeps its own sense token (see RankCtx).
struct BarrierState {
  alignas(kCacheline) mc::atomic<std::uint32_t> arrived{0};
  alignas(kCacheline) mc::atomic<std::uint32_t> sense{0};
  std::uint32_t nparticipants = 0;
};

inline void barrier_init(BarrierState& b, std::uint32_t n) noexcept {
  b.arrived.store(0, std::memory_order_relaxed);
  b.sense.store(0, std::memory_order_relaxed);
  b.nparticipants = n;
}

/// Arrive and wait.  `local_sense` must be a per-participant variable that
/// starts at 0 and is only ever passed to this barrier.  `trace_scope` tags
/// the span: 0 = node barrier, 1 + s = barrier of socket s.
inline void barrier_arrive(BarrierState& b, std::uint32_t& local_sense,
                           std::uint8_t trace_scope = 0) {
  fault_point("barrier");
  sync_count_barrier();
  // The span's t0 is this rank's arrival; the harvester groups same-ordinal
  // arrivals across ranks (SPMD barrier sequence) into max-minus-min skew.
  trace::Span sp(trace::Phase::barrier, detail::g_sync_counts.barriers,
                 trace_scope);
  // Metrics arrival stamp *after* the fault point, so an injected
  // stall@barrier shows up as a late arrival the straggler detector sees.
  metrics::BarrierScope ms(trace_scope);
  local_sense ^= 1u;
  // HB model: the acq_rel RMW joins this rank with every earlier arriver
  // (release sequence on `arrived`); the winner thus carries the join of
  // all participants into `sense`, which every waiter acquires.  The model
  // release must precede the real fetch_add (so whoever observes the count
  // also finds the clock), and the winner re-acquires after observing the
  // full count to pick up ranks whose model release ran after its own.
  analysis::hb_acq_rel(&b.arrived);
  if (b.arrived.fetch_add(1, YHCCL_MC_ORDER(barrier_join_rmw,
                                            std::memory_order_acq_rel)) +
          1 ==
      b.nparticipants) {
    analysis::hb_acquire(&b.arrived);
    b.arrived.store(0, std::memory_order_relaxed);
    analysis::hb_release(&b.sense);
    b.sense.store(local_sense, YHCCL_MC_ORDER(barrier_sense_release,
                                              std::memory_order_release));
  } else {
    SpinGuard guard("barrier wait");
    while (b.sense.load(YHCCL_MC_ORDER(
               spin_acquire, std::memory_order_acquire)) != local_sense)
      guard.relax();
    analysis::hb_acquire(&b.sense);
  }
}

/// Dissemination barrier: ceil(log2 n) rounds of pairwise signalling, no
/// central counter — scales better than the sense-reversing barrier at
/// high rank counts (the synchronization cost the socket-aware MA design
/// amortizes, §3.3).  State lives in shared memory; each participant keeps
/// a private round-trip counter in its token.
/// Most ranks any barrier (central or dissemination) can serve.  Kept in
/// this header (rather than using rt::kMaxRanks from team.hpp) to avoid a
/// header cycle; team.hpp static_asserts the two stay compatible.
inline constexpr std::uint32_t kMaxBarrierRanks = 256;

struct DisseminationBarrierState {
  static constexpr int kMaxRounds = 9;
  /// flags[round][rank]: monotone counters.
  PaddedFlag flags[kMaxRounds][kMaxBarrierRanks];
  std::uint32_t nparticipants = 0;
};

// ceil(log2 n) rounds must fit: every participant count up to
// kMaxBarrierRanks needs at most kMaxRounds pairwise-signal rounds.
static_assert((1u << DisseminationBarrierState::kMaxRounds) >=
                  kMaxBarrierRanks,
              "dissemination round count does not cover kMaxBarrierRanks");

struct DisseminationToken {
  std::uint64_t epoch = 0;
};

inline void dissemination_init(DisseminationBarrierState& b,
                               std::uint32_t n) {
  // n > kMaxBarrierRanks would pass silently here and overflow
  // flags[round][kMaxBarrierRanks] during arrive — reject up front.
  YHCCL_REQUIRE(n >= 1 && n <= kMaxBarrierRanks,
                "dissemination barrier participant count out of range");
  b.nparticipants = n;
}

inline void dissemination_arrive(DisseminationBarrierState& b, int rank,
                                 DisseminationToken& tok,
                                 std::uint8_t trace_scope = 0) {
  fault_point("barrier");
  sync_count_barrier();
  trace::Span sp(trace::Phase::barrier, detail::g_sync_counts.barriers,
                 trace_scope);
  metrics::BarrierScope ms(trace_scope);
  const auto n = b.nparticipants;
  ++tok.epoch;
  int round = 0;
  for (std::uint32_t dist = 1; dist < n; dist *= 2, ++round) {
    const auto peer = (static_cast<std::uint32_t>(rank) + dist) % n;
    // acq_rel RMW: releases my clock into the peer's flag (the acquire
    // side happens in spin_wait_ge below / on the peer).
    analysis::hb_acq_rel(&b.flags[round][peer].v);
    b.flags[round][peer].v.fetch_add(
        1, YHCCL_MC_ORDER(dissem_signal_rmw, std::memory_order_acq_rel));
    spin_wait_ge(b.flags[round][rank].v, tok.epoch, trace::Phase::barrier);
  }
}

}  // namespace yhccl::rt
