// mc::atomic — the model-checkable atomic indirection (docs/analysis.md §MC).
//
// Every atomic that participates in a cross-rank protocol in src/runtime and
// src/trace is declared as yhccl::mc::atomic<T> instead of std::atomic<T>
// (scripts/lint_atomics.py enforces this).  The indirection costs nothing:
//
//  * Normal builds: mc::atomic<T> IS std::atomic<T> (a type alias), mc::fence
//    is std::atomic_thread_fence, and the YHCCL_MC_ORDER/YHCCL_MC_FENCE
//    macros evaluate to their memory-order argument.  Zero overhead, zero
//    codegen difference.
//
//  * -DYHCCL_MC=ON builds: mc::atomic<T> wraps std::atomic<T> and, while a
//    model-checking session is running on this thread (mc::explore /
//    mc::replay, see yhccl/mc/checker.hpp), routes every load/store/RMW/CAS
//    through the cooperative scheduler so the explorer controls both the
//    interleaving and the reads-from choice.  Outside a session the wrapper
//    is a pass-through to the underlying std::atomic, so regular tests run
//    unchanged in an MC build.
//
// The YHCCL_MC_ORDER(point, order) macro names the protocol-critical memory
// orders the checker can *mutate*: under a seeded weakening (WeakPoint) the
// named order is demoted to relaxed, and the checker must catch the
// resulting protocol violation.  The real call sites stay the single source
// of truth — mutations are applied to the production code path, not to a
// model of it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace yhccl::mc {

/// Seeded-weakening points: every memory order the mutation table can
/// demote to relaxed.  One enumerator per protocol-critical order/fence in
/// src/runtime + src/trace (the checker's mutation table in
/// src/analysis/mc/protocols.cpp must catch each one).
enum class WeakPoint : std::uint8_t {
  none = 0,
  barrier_join_rmw,       ///< central barrier: arrived.fetch_add(acq_rel)
  barrier_sense_release,  ///< central barrier: winner's sense store(release)
  dissem_signal_rmw,      ///< dissemination: flag fetch_add(acq_rel)
  spin_acquire,           ///< spin_wait_ge/eq: flag load(acquire)
  step_publish_release,   ///< progress flag publish store(release)
  seqlock_writer_fence,   ///< RemoteWindow publish: release fence
  seqlock_commit_release, ///< RemoteWindow publish: final seq store(release)
  seqlock_reader_fence,   ///< RemoteWindow snapshot: acquire fence
  fifo_tail_release,      ///< FIFO push: tail store(release)
  fifo_head_release,      ///< FIFO pop: head store(release)
  rndv_post_release,      ///< rendezvous post: rndv_posted store(release)
  rndv_done_release,      ///< rendezvous drain: rndv_done store(release)
  pagelock_acquire,       ///< page lock: CAS success order (acquire)
  pagelock_release,       ///< page unlock: store(release)
  ring_push_release,      ///< trace ring push: counter store(release)
  plan_claim_release,     ///< plan registry: claiming hash CAS (acq_rel)
  quar_publish_release,   ///< plan quarantine: mark CAS (acq_rel)
  kCount_,
};

inline const char* weak_point_name(WeakPoint p) noexcept {
  switch (p) {
    case WeakPoint::none: return "none";
    case WeakPoint::barrier_join_rmw: return "barrier_join_rmw";
    case WeakPoint::barrier_sense_release: return "barrier_sense_release";
    case WeakPoint::dissem_signal_rmw: return "dissem_signal_rmw";
    case WeakPoint::spin_acquire: return "spin_acquire";
    case WeakPoint::step_publish_release: return "step_publish_release";
    case WeakPoint::seqlock_writer_fence: return "seqlock_writer_fence";
    case WeakPoint::seqlock_commit_release: return "seqlock_commit_release";
    case WeakPoint::seqlock_reader_fence: return "seqlock_reader_fence";
    case WeakPoint::fifo_tail_release: return "fifo_tail_release";
    case WeakPoint::fifo_head_release: return "fifo_head_release";
    case WeakPoint::rndv_post_release: return "rndv_post_release";
    case WeakPoint::rndv_done_release: return "rndv_done_release";
    case WeakPoint::pagelock_acquire: return "pagelock_acquire";
    case WeakPoint::pagelock_release: return "pagelock_release";
    case WeakPoint::ring_push_release: return "ring_push_release";
    case WeakPoint::plan_claim_release: return "plan_claim_release";
    case WeakPoint::quar_publish_release: return "quar_publish_release";
    case WeakPoint::kCount_: break;
  }
  return "?";
}

#ifndef YHCCL_MC

// ---------------------------------------------------------------------------
// Normal build: pure aliases; the indirection vanishes at compile time.
// ---------------------------------------------------------------------------

template <class T>
using atomic = std::atomic<T>;

inline void fence(std::memory_order o) noexcept {
  std::atomic_thread_fence(o);
}

inline constexpr bool enabled = false;
inline bool session_active() noexcept { return false; }

#define YHCCL_MC_ORDER(point, ...) (__VA_ARGS__)
#define YHCCL_MC_FENCE(point, ...) ::std::atomic_thread_fence(__VA_ARGS__)

#else  // YHCCL_MC

// ---------------------------------------------------------------------------
// Model-checking build: interpose when a session runs on this thread.
// ---------------------------------------------------------------------------

inline constexpr bool enabled = true;

namespace detail {

/// True while mc::explore / mc::replay executes model ranks on this thread.
bool session_active() noexcept;

// Session hooks, implemented by the engine (src/analysis/mc/checker.cpp).
// Values travel as zero-extended 64-bit patterns; `size` is sizeof(T) for
// width-correct RMW arithmetic.  `cur` is the underlying value *before* the
// operation — the engine captures it as the location's initial value on
// first touch.
std::uint64_t sess_load(const void* addr, std::uint64_t cur, unsigned size,
                        std::memory_order o);
void sess_store(void* addr, std::uint64_t cur, std::uint64_t val,
                unsigned size, std::memory_order o);
std::uint64_t sess_rmw_add(void* addr, std::uint64_t cur, std::uint64_t delta,
                           unsigned size, std::memory_order o);
bool sess_cas(void* addr, std::uint64_t cur, std::uint64_t* expected,
              std::uint64_t desired, unsigned size, std::memory_order ok,
              std::memory_order fail);
void sess_fence(std::memory_order o);
void sess_spin_yield();
void sess_data(const void* p, std::size_t n, bool write,
               const char* site) noexcept;
std::memory_order sess_order(WeakPoint p, std::memory_order o) noexcept;

template <class T>
std::uint64_t to_bits(T x) noexcept {
  std::uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(T));
  return b;
}

template <class T>
T from_bits(std::uint64_t b) noexcept {
  T x;
  std::memcpy(&x, &b, sizeof(T));
  return x;
}

}  // namespace detail

inline bool session_active() noexcept { return detail::session_active(); }

inline void fence(std::memory_order o) noexcept {
  if (!detail::session_active()) {
    std::atomic_thread_fence(o);
    return;
  }
  detail::sess_fence(o);
}

/// Interposing atomic.  Layout-compatible with std::atomic<T> (one member),
/// so shared-mapping structs keep their size in both build flavours.  The
/// underlying std::atomic always holds the newest modification-order value,
/// which keeps pass-through readers (and the post-execution final checks)
/// coherent with the explored history.
template <class T>
class atomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "mc::atomic models word-sized trivially copyable types");

 public:
  atomic() noexcept : v_{} {}
  atomic(T x) noexcept : v_(x) {}  // NOLINT(google-explicit-constructor)
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order o = std::memory_order_seq_cst) const noexcept {
    if (!detail::session_active()) return v_.load(o);
    return detail::from_bits<T>(detail::sess_load(
        this, detail::to_bits(v_.load(std::memory_order_relaxed)),
        sizeof(T), o));
  }

  void store(T x, std::memory_order o = std::memory_order_seq_cst) noexcept {
    if (!detail::session_active()) {
      v_.store(x, o);
      return;
    }
    detail::sess_store(this,
                       detail::to_bits(v_.load(std::memory_order_relaxed)),
                       detail::to_bits(x), sizeof(T), o);
    v_.store(x, std::memory_order_relaxed);
  }

  template <class U = T,
            std::enable_if_t<std::is_integral_v<U>, int> = 0>
  T fetch_add(T d, std::memory_order o = std::memory_order_seq_cst) noexcept {
    if (!detail::session_active()) return v_.fetch_add(d, o);
    const std::uint64_t old = detail::sess_rmw_add(
        this, detail::to_bits(v_.load(std::memory_order_relaxed)),
        detail::to_bits(d), sizeof(T), o);
    const T old_t = detail::from_bits<T>(old);
    v_.store(static_cast<T>(old_t + d), std::memory_order_relaxed);
    return old_t;
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order ok,
                               std::memory_order fail) noexcept {
    if (!detail::session_active())
      return v_.compare_exchange_strong(expected, desired, ok, fail);
    std::uint64_t e = detail::to_bits(expected);
    const bool won = detail::sess_cas(
        this, detail::to_bits(v_.load(std::memory_order_relaxed)), &e,
        detail::to_bits(desired), sizeof(T), ok, fail);
    if (won)
      v_.store(desired, std::memory_order_relaxed);
    else
      expected = detail::from_bits<T>(e);
    return won;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order o =
                                   std::memory_order_seq_cst) noexcept {
    return compare_exchange_strong(expected, desired, o, cas_fail_order(o));
  }

  /// The model has no spurious failures: weak == strong (sound — a spurious
  /// failure only re-runs a retry loop over an unchanged state).
  bool compare_exchange_weak(T& expected, T desired, std::memory_order ok,
                             std::memory_order fail) noexcept {
    return compare_exchange_strong(expected, desired, ok, fail);
  }
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order o =
                                 std::memory_order_seq_cst) noexcept {
    return compare_exchange_strong(expected, desired, o, cas_fail_order(o));
  }

 private:
  static constexpr std::memory_order cas_fail_order(
      std::memory_order o) noexcept {
    switch (o) {
      case std::memory_order_acq_rel: return std::memory_order_acquire;
      case std::memory_order_release: return std::memory_order_relaxed;
      default: return o;
    }
  }

  std::atomic<T> v_;
};

static_assert(sizeof(atomic<std::uint64_t>) == sizeof(std::atomic<std::uint64_t>));

#define YHCCL_MC_ORDER(point, ...)                                    \
  (::yhccl::mc::detail::sess_order(::yhccl::mc::WeakPoint::point,     \
                                   (__VA_ARGS__)))
#define YHCCL_MC_FENCE(point, ...)                                    \
  ::yhccl::mc::fence(::yhccl::mc::detail::sess_order(                 \
      ::yhccl::mc::WeakPoint::point, (__VA_ARGS__)))

#endif  // YHCCL_MC

}  // namespace yhccl::mc
