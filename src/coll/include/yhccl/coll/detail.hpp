// Internal helpers shared by the collective implementations.
#pragma once

#include <algorithm>
#include <cstddef>

#include "yhccl/common/error.hpp"
#include "yhccl/common/types.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/profiler.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::coll::detail {

/// Collective-kind id stamped into trace records (trace::Rec::coll):
/// 1 + CollKind, because 0 means "outside any collective".
constexpr std::uint8_t trace_coll_id(CollKind k) noexcept {
  static_assert(static_cast<int>(CollKind::kCount_) + 1 <=
                    trace::kMaxCollIds,
                "trace coll-id byte cannot hold every CollKind");
  return static_cast<std::uint8_t>(1 + static_cast<int>(k));
}

/// Algorithm id for the trace's coll-span variant byte.
constexpr std::uint8_t trace_alg_id(Algorithm a) noexcept {
  return static_cast<std::uint8_t>(a);
}

/// Blocked slice geometry for the sliced-reduction problem (§3.1).
///
/// The message is split into `parts` ownership *blocks* of (nominal) B
/// bytes; block l belongs to logical slice group G_l.  Large blocks are
/// processed in rounds: round t covers sub-range [t*I, t*I+I) of *every*
/// block, so the shared buffer only ever holds parts*I bytes and stays
/// cache-resident (§3.3: "performs reduce-scatter multiple times to keep
/// the data slice sufficiently small to be cached").
///
/// I = clamp(B, Imin, Imax) rounded up to a cache line, which is a
/// multiple of every supported element size (§5.1).
struct BlockSlicing {
  std::size_t total = 0;  ///< message bytes
  std::size_t block = 0;  ///< B: nominal block size (last may be ragged)
  std::size_t slice = 0;  ///< I: bytes of one block processed per round
  std::size_t nrounds = 0;

  /// For reduce-scatter the block size is fixed by the API (count*esize);
  /// for allreduce/reduce we pick B = ceil(total/parts) cacheline-aligned.
  static BlockSlicing with_block(std::size_t total_bytes,
                                 std::size_t block_bytes,
                                 const CollOpts& opts) {
    BlockSlicing s;
    s.total = total_bytes;
    s.block = block_bytes;
    const std::size_t imax =
        std::max(round_up(opts.slice_max, kCacheline), kCacheline);
    const std::size_t imin = std::max(opts.slice_min, kCacheline);
    s.slice = std::clamp(
        round_up(std::max<std::size_t>(block_bytes, 1), kCacheline), imin,
        imax);
    s.nrounds = std::max<std::size_t>(ceil_div(block_bytes, s.slice), 1);
    return s;
  }

  static BlockSlicing partitioned(std::size_t total_bytes, int parts,
                                  const CollOpts& opts) {
    const std::size_t b = round_up(
        ceil_div(total_bytes, static_cast<std::size_t>(parts)), kCacheline);
    return with_block(total_bytes, std::max<std::size_t>(b, kCacheline),
                      opts);
  }

  /// Actual bytes of block `l` (ragged tail aware).
  std::size_t block_len(std::size_t l) const noexcept {
    const std::size_t start = l * block;
    return start >= total ? 0 : std::min(block, total - start);
  }

  /// Bytes of block l's round-t sub-slice.
  std::size_t len(std::size_t l, std::size_t t) const noexcept {
    const std::size_t bl = block_len(l);
    const std::size_t start = t * slice;
    return start >= bl ? 0 : std::min(slice, bl - start);
  }

  /// Offset of block l's round-t sub-slice within the whole message.
  std::size_t off(std::size_t l, std::size_t t) const noexcept {
    return l * block + t * slice;
  }

  /// Offset within block (== offset in a per-rank receive buffer).
  std::size_t off_in_block(std::size_t t) const noexcept { return t * slice; }
};

/// Paper work-data-size (W) formulas, §4.3.  `s` is the message size in
/// bytes, `p` ranks, `m` sockets, `I` the slice size.
struct WorkSet {
  static std::size_t reduce_scatter(std::size_t s, int p, std::size_t I) {
    return s * static_cast<std::size_t>(p) + s +
           static_cast<std::size_t>(p) * I;
  }
  static std::size_t allreduce(std::size_t s, int p, int m, std::size_t I) {
    return 2 * s * static_cast<std::size_t>(p) +
           static_cast<std::size_t>(m) * static_cast<std::size_t>(p) * I;
  }
  static std::size_t reduce(std::size_t s, int p, int m, std::size_t I) {
    return s * static_cast<std::size_t>(p) + s +
           static_cast<std::size_t>(m) * static_cast<std::size_t>(p) * I;
  }
  static std::size_t broadcast(std::size_t s, int p, std::size_t I) {
    return s * static_cast<std::size_t>(p) + 2 * I;
  }
  static std::size_t allgather(std::size_t s, int p, std::size_t I) {
    const auto pp = static_cast<std::size_t>(p);
    return s * pp + s * pp * pp + 2 * pp * I;
  }
};

/// Validate buffers/args shared by every reduction collective.
inline void check_reduction_args(RankCtx& ctx, const void* send,
                                 std::size_t count, Datatype d, ReduceOp op) {
  YHCCL_REQUIRE(op_valid_for(op, d), "reduce op invalid for datatype");
  YHCCL_REQUIRE(send != nullptr || count == 0, "null send buffer");
  (void)ctx;
}

/// Scratch carve-out with bounds checking; all ranks compute identical
/// offsets so the same address results everywhere.
class ScratchCarver {
 public:
  explicit ScratchCarver(RankCtx& ctx)
      : base_(ctx.scratch()), cap_(ctx.scratch_bytes()) {}

  std::byte* take(std::size_t bytes) {
    const std::size_t off = round_up(used_, kCacheline);
    YHCCL_REQUIRE(off + bytes <= cap_,
                  "collective scratch exhausted; raise "
                  "TeamConfig::scratch_bytes or lower slice_max");
    used_ = off + bytes;
    return base_ + off;
  }

 private:
  std::byte* base_;
  std::size_t cap_;
  std::size_t used_ = 0;
};

}  // namespace yhccl::coll::detail
