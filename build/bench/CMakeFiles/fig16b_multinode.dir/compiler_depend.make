# Empty compiler generated dependencies file for fig16b_multinode.
# This may be replaced when dependencies are built.
