// Failure-injection tests: a dead or diverged peer rank must surface as a
// yhccl::Error on the surviving ranks via the sync watchdog — never as a
// silent hang.  These tests shrink the process-wide timeout, kill one
// participant in various protocol positions, and verify every survivor
// throws and the team remains usable afterwards.
#include <gtest/gtest.h>

#include <vector>

#include "yhccl/coll/coll.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "yhccl/runtime/sync_timeout.hpp"
#include "yhccl/runtime/thread_team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;

namespace {

// Fresh teams per test: deserted barriers and abandoned collectives leave
// torn synchronization state behind, which must not leak into other tests
// through a shared team cache.
rt::ThreadTeam fresh_team(int p, int m) {
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  cfg.scratch_bytes = 8u << 20;
  cfg.shared_heap_bytes = 1u << 20;
  return rt::ThreadTeam(cfg);
}

TEST(SyncTimeout, DefaultIsEnabledAndOverridable) {
  EXPECT_GT(rt::sync_timeout(), 0.0);
  {
    rt::ScopedSyncTimeout scoped(1.5);
    EXPECT_DOUBLE_EQ(rt::sync_timeout(), 1.5);
  }
  EXPECT_NE(rt::sync_timeout(), 1.5);
}

TEST(FailureInjection, DesertedBarrierThrowsOnSurvivors) {
  rt::ScopedSyncTimeout scoped(0.4);
  auto team = fresh_team(4, 2);
  EXPECT_THROW(team.run([&](rt::RankCtx& ctx) {
                 if (ctx.rank() == 2) return;  // deserter skips the barrier
                 ctx.barrier();
               }),
               Error);
  // A deserted barrier leaves torn arrival state — recovery means tearing
  // the team down (as an MPI job would abort), not reusing the barrier.
  // Mechanisms with monotone state (progress flags, pt2pt) still work:
  team.run([&](rt::RankCtx& ctx) {
    const auto seq = ctx.next_seq();
    ctx.step_publish(rt::RankCtx::step_value(seq, 1));
    ctx.step_wait((ctx.rank() + 1) % ctx.nranks(),
                  rt::RankCtx::step_value(seq, 1));
  });
}

TEST(FailureInjection, DeadNeighbourInFlagChainThrows) {
  rt::ScopedSyncTimeout scoped(0.4);
  auto team = fresh_team(3, 1);
  EXPECT_THROW(
      team.run([&](rt::RankCtx& ctx) {
        const auto seq = ctx.next_seq();
        if (ctx.rank() == 1) return;  // never publishes
        ctx.step_wait(1, rt::RankCtx::step_value(seq, 1));
      }),
      Error);
}

TEST(FailureInjection, AbandonedCollectiveThrowsNotHangs) {
  rt::ScopedSyncTimeout scoped(0.5);
  auto team = fresh_team(4, 2);
  const std::size_t n = 100000;
  std::vector<std::vector<double>> send(4, std::vector<double>(n, 1.0)),
      recv(4, std::vector<double>(n));
  EXPECT_THROW(team.run([&](rt::RankCtx& ctx) {
                 if (ctx.rank() == 3) return;  // dies before the collective
                 ma_allreduce(ctx, send[ctx.rank()].data(),
                              recv[ctx.rank()].data(), n, Datatype::f64,
                              ReduceOp::sum);
               }),
               Error);
}

TEST(FailureInjection, StarvedPt2PtReceiverThrows) {
  rt::ScopedSyncTimeout scoped(0.4);
  auto team = fresh_team(2, 1);
  std::vector<std::uint8_t> buf(1024);
  EXPECT_THROW(team.run([&](rt::RankCtx& ctx) {
                 if (ctx.rank() == 1) ctx.recv(0, buf.data(), buf.size());
                 // rank 0 never sends
               }),
               Error);
}

TEST(FailureInjection, DeadChildProcessSurfacesThroughWaitpid) {
  rt::ScopedSyncTimeout scoped(0.6);
  rt::TeamConfig cfg;
  cfg.nranks = 3;
  cfg.scratch_bytes = 1 << 20;
  cfg.shared_heap_bytes = 1 << 20;
  rt::ProcessTeam team(cfg);
  // Rank 1 exits mid-protocol; the others time out (child exit code 1),
  // and the parent reports the failed ranks.
  EXPECT_THROW(team.run([&](rt::RankCtx& ctx) {
                 if (ctx.rank() == 1) _exit(0);  // simulated crash... with
                 // status 0 the parent still counts survivors' timeouts
                 ctx.barrier();
               }),
               Error);
}

}  // namespace
