// Intra-collective phase tracing: a shared-memory flight recorder.
//
// One fixed-size single-writer ring buffer per rank lives inside the team's
// MAP_SHARED mapping (plus one "control" ring the parent writes while the
// team is quiesced), so the tracer works identically for thread-backed and
// fork()-backed rank teams: children's records survive their _exit and the
// parent harvests every ring after join/waitpid.
//
// The hot path is wait-free and cheap by construction:
//   * a Span's constructor is one thread-local load + one predictable branch
//     when tracing is off (the common case), plus one TSC read when on;
//   * completing a span is one plain 32-byte store into the writer's own
//     ring slot followed by a release store of the ring counter — no RMW,
//     no loads of other ranks' state, never blocks;
//   * rings are strictly single-writer (one per rank), so wraparound simply
//     overwrites the writer's own oldest record: the ring always holds the
//     newest `slots` events, which is exactly what a flight recorder wants.
//
// Activation: TeamConfig::trace, defaulting to $YHCCL_TRACE
// (off | spans | flight).  `flight` records like `spans` and additionally
// dumps the last events of every rank when a run aborts (docs/observability.md).
#pragma once

#include <cstdint>

#include "yhccl/analysis/hb.hpp"
#include "yhccl/common/error.hpp"
#include "yhccl/common/types.hpp"
#include "yhccl/mc/atomic.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#else
#include <time.h>
#endif

namespace yhccl::trace {

/// Tracing activation level (TeamConfig::trace / $YHCCL_TRACE).
enum class Mode : std::uint8_t {
  env,     ///< resolve from $YHCCL_TRACE at team construction (default off)
  off,     ///< no rings allocated; every hook is a dead branch
  spans,   ///< record phase spans; export on demand / via $YHCCL_TRACE_DIR
  flight,  ///< spans + flight-recorder dump on coherent abort / recover()
};

/// Parse $YHCCL_TRACE (unset/empty -> off; anything else unknown raises).
Mode mode_from_env();
/// TeamConfig::trace resolution: Mode::env defers to mode_from_env().
Mode resolve_mode(Mode cfg);
/// Ring capacity in events per rank: $YHCCL_TRACE_EVENTS rounded up to a
/// power of two and clamped to [64, 2^20]; default 4096.
std::uint32_t slots_from_env();
/// $YHCCL_TRACE_DIR, or nullptr when unset/empty (exports stay in-memory).
const char* trace_dir() noexcept;

/// The span taxonomy (docs/observability.md §2).  One byte in the record.
enum class Phase : std::uint8_t {
  coll,       ///< whole collective call (one per generic/arm entry)
  copy_in,    ///< slice copy into shared memory (bytes, t/nt path, ISA)
  copy_out,   ///< slice copy out of shared memory into the receive buffer
  reduce,     ///< reduce round / fused final reduce (bytes, ISA tier)
  barrier,    ///< barrier arrive..depart (duration == my barrier wait)
  flag_wait,  ///< progress-flag wait (step_wait)
  flag_post,  ///< progress-flag publish (instant)
  fifo,       ///< eager FIFO send/recv/sendrecv (incl. slot spin-waits)
  rndv,       ///< rendezvous post/pull/drain spin-waits
  pagelock,   ///< page-lock acquisition (CMA emulation)
  fault,      ///< instant: abort observed / death injected (variant = site)
  recover,    ///< instant: Team::recover() epoch bump (control ring)
  retry,      ///< instant: resilient run() re-issue (control ring)
  degrade,    ///< instant: retry entered the degraded plan lane
  straggler,  ///< instant: metrics straggler detector flagged a rank
  kCount_,
};

constexpr int kNumPhases = static_cast<int>(Phase::kCount_);
const char* phase_name(Phase p) noexcept;

/// Phases whose span duration is attributable synchronization wait (the
/// wait/work split CollProfiler reports).  copy/reduce spans are work;
/// fifo/rndv spans include copies, but on this runtime's channels the copy
/// cost is tiny against the progress waits they wrap, so they count as wait.
constexpr bool is_wait_phase(Phase p) noexcept {
  switch (p) {
    case Phase::barrier:
    case Phase::flag_wait:
    case Phase::fifo:
    case Phase::rndv:
    case Phase::pagelock: return true;
    default: return false;
  }
}

/// Collective-kind ids stamped into records: 0 = outside any collective,
/// 1 + coll::CollKind otherwise.  The name table mirrors coll_kind_name
/// (trace sits below yhccl_coll; test_phase_trace pins the two together).
inline constexpr int kMaxCollIds = 8;
const char* coll_id_name(std::uint8_t id) noexcept;

/// Where a fault was raised/injected (variant byte of Phase::fault records).
enum class Site : std::uint8_t {
  unknown = 0,
  barrier,
  flag,
  fifo,
  rndv,
  pagelock,
  slice,
  pipeline,
  liveness,
  kCount_,
};
const char* site_name(Site s) noexcept;
/// Best-effort mapping of a fault_point site / SpinGuard description
/// ("barrier", "barrier wait", "liveness scan", ...) onto a Site.
Site site_from_string(const char* s) noexcept;

/// Record flags.
inline constexpr std::uint8_t kFlagInstant = 1;  ///< point event (t1 == t0)
inline constexpr std::uint8_t kFlagMarker = 2;   ///< in-flight stall marker (t1 == 0)

/// One ring slot: a completed span, an instant, or an in-flight marker.
/// 32 bytes so a ring slot never straddles more cachelines than it must.
struct Rec {
  std::uint64_t t0 = 0;      ///< span begin (trace_now ticks)
  std::uint64_t t1 = 0;      ///< span end; == t0 for instants, 0 for markers
  std::uint64_t arg = 0;     ///< bytes / flag value / barrier ordinal / epoch
  std::uint8_t phase = 0;    ///< Phase
  std::uint8_t coll = 0;     ///< collective-kind id (0 outside a collective)
  std::uint8_t variant = 0;  ///< nt|isa bits, barrier scope, Site, alg id
  std::uint8_t flags = 0;    ///< kFlagInstant / kFlagMarker
  std::uint32_t seq = 0;     ///< per-ring record ordinal (assigned by push)
};
static_assert(sizeof(Rec) == 32, "ring slots must stay 32 bytes");

/// Cheap monotonic timestamp: the TSC on x86 (invariant on every CPU this
/// targets; cross-rank comparable on one node), CLOCK_MONOTONIC elsewhere.
inline std::uint64_t trace_now() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#endif
}

/// Variant byte for copy/reduce spans: bit 0 = non-temporal store path,
/// bits 1-2 = ISA tier (copy::IsaTier; passed as int to keep trace a leaf).
constexpr std::uint8_t copy_variant(bool nt, int isa_tier) noexcept {
  return static_cast<std::uint8_t>((nt ? 1u : 0u) |
                                   (static_cast<unsigned>(isa_tier) << 1));
}

/// The per-rank flight-recorder rings, placement-constructed over raw bytes
/// of the team's shared mapping (mirrors analysis::HbChecker).  Layout:
///   [TraceBuffer header][ring 0][ring 1]...[ring nranks]
/// where ring i is [cacheline: atomic next][slots * Rec] and ring `nranks`
/// is the parent-side control ring (recover events; written only while the
/// team is quiesced).  Trivially destructible: the mapping just goes away.
class TraceBuffer {
 public:
  /// Throws yhccl::Error when the ring arena would overflow std::size_t.
  static std::size_t required_bytes(int nranks, std::uint32_t slots);
  /// `slots` must be a power of two (slots_from_env guarantees it).
  static TraceBuffer* create(void* mem, std::size_t bytes, int nranks,
                             std::uint32_t slots, Mode mode);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  int nranks() const noexcept { return nranks_; }
  int nrings() const noexcept { return nranks_ + 1; }
  int control_ring() const noexcept { return nranks_; }
  std::uint32_t slots() const noexcept { return slots_; }
  Mode mode() const noexcept { return mode_; }
  /// Timestamp origin: trace_now() at create; every record is later.
  std::uint64_t t_origin() const noexcept { return tsc0_; }

  /// Append one record (single writer per ring; wait-free).  The release
  /// store of the counter publishes the slot; the hb hook documents the
  /// write-then-harvest edge for the race checker (no-op unless installed).
  void push(int ring, Rec rec) noexcept {
    auto& next = *ring_next(ring);
    const std::uint64_t n = next.load(std::memory_order_relaxed);
    rec.seq = static_cast<std::uint32_t>(n);
    analysis::hb_write(&ring_slot(ring, n & mask_), sizeof(Rec),
                       "trace ring slot");
    ring_slot(ring, n & mask_) = rec;
    analysis::hb_release(&next);
    next.store(n + 1, YHCCL_MC_ORDER(ring_push_release,
                                     std::memory_order_release));
  }

  /// Records ever pushed to `ring` (acquire: pairs with push's release; the
  /// harvesting parent additionally orders via thread-join / waitpid).
  std::uint64_t count(int ring) const noexcept {
    return ring_next(ring)->load(std::memory_order_acquire);
  }
  /// First retained ordinal: wraparound keeps the newest `slots` records.
  std::uint64_t first_kept(int ring) const noexcept {
    const std::uint64_t n = count(ring);
    return n > slots_ ? n - slots_ : 0;
  }
  /// Read record ordinal `i` of `ring`; valid for i in [first_kept, count).
  Rec read(int ring, std::uint64_t i) const noexcept {
    analysis::hb_read(&ring_slot(ring, i & mask_), sizeof(Rec),
                      "trace ring slot");
    return ring_slot(ring, i & mask_);
  }

  /// Ticks-per-second calibration for converting record timestamps; derived
  /// from (trace_now, wall-clock) pairs at create vs. first use and cached
  /// in the shared header, so harvests on either side of a fork() agree.
  double ticks_per_second() const noexcept;

 private:
  TraceBuffer() = default;

  mc::atomic<std::uint64_t>* ring_next(int ring) const noexcept {
    return reinterpret_cast<mc::atomic<std::uint64_t>*>(base() +
                                                        ring * stride_);
  }
  Rec& ring_slot(int ring, std::uint64_t slot) const noexcept {
    return *reinterpret_cast<Rec*>(base() + ring * stride_ + kCacheline +
                                   slot * sizeof(Rec));
  }
  std::byte* base() const noexcept {
    return const_cast<std::byte*>(
               reinterpret_cast<const std::byte*>(this)) +
           round_up(sizeof(TraceBuffer), kCacheline);
  }

  int nranks_ = 0;
  std::uint32_t slots_ = 0;
  std::uint64_t mask_ = 0;
  std::size_t stride_ = 0;
  Mode mode_ = Mode::off;
  std::uint64_t tsc0_ = 0;   ///< trace_now() at create
  double wall0_ = 0;         ///< wall_seconds() at create
  mutable mc::atomic<std::uint64_t> hz_bits_{0};  ///< cached calibration
};

namespace detail {
/// Wait ticks accumulated by wait-phase spans since the rank was installed;
/// CollProfiler's WaitScope reads deltas of this.
struct WaitTicks {
  std::uint64_t t[kNumPhases] = {};
  std::uint64_t total() const noexcept {
    std::uint64_t s = 0;
    for (int p = 0; p < kNumPhases; ++p)
      if (is_wait_phase(static_cast<Phase>(p))) s += t[p];
    return s;
  }
};

/// Per-thread (post-fork: per-process) tracer context installed by
/// Team::run.  Null buf ⇒ every span/instant is a single dead branch.
struct TraceCtx {
  TraceBuffer* buf = nullptr;
  int ring = 0;           ///< my ring index (== rank)
  std::uint8_t coll = 0;  ///< current collective-kind id (0 = none)
  std::uint8_t depth = 0; ///< CollScope nesting (fallback arms re-enter)
  WaitTicks waits;
};
inline thread_local TraceCtx tl_trace;
}  // namespace detail

/// True when this thread is currently recording (cheap: one TL load).
inline bool active() noexcept { return detail::tl_trace.buf != nullptr; }

/// RAII phase span: timestamp on construction, one ring store on
/// destruction.  Copy/reduce call sites set the variant only when active()
/// so the off path never pays for ISA/NT classification.
class Span {
 public:
  explicit Span(Phase ph, std::uint64_t arg = 0,
                std::uint8_t variant = 0) noexcept
      : buf_(detail::tl_trace.buf), arg_(arg), ph_(ph), var_(variant) {
    if (buf_ == nullptr) return;
    t0_ = trace_now();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (buf_ == nullptr) return;
    auto& c = detail::tl_trace;
    const std::uint64_t t1 = trace_now();
    if (is_wait_phase(ph_)) c.waits.t[static_cast<int>(ph_)] += t1 - t0_;
    buf_->push(c.ring, Rec{t0_, t1, arg_, static_cast<std::uint8_t>(ph_),
                           c.coll, var_, 0, 0});
  }

  bool active() const noexcept { return buf_ != nullptr; }
  void add_bytes(std::uint64_t n) noexcept { arg_ += n; }
  void set_variant(std::uint8_t v) noexcept { var_ = v; }

 private:
  TraceBuffer* buf_;
  std::uint64_t t0_ = 0;
  std::uint64_t arg_;
  Phase ph_;
  std::uint8_t var_;
};

/// Point event (flag publish, abort site, recover).
inline void instant(Phase ph, std::uint64_t arg = 0,
                    std::uint8_t variant = 0) noexcept {
  auto& c = detail::tl_trace;
  if (c.buf == nullptr) return;
  const std::uint64_t t = trace_now();
  c.buf->push(c.ring, Rec{t, t, arg, static_cast<std::uint8_t>(ph), c.coll,
                          variant, kFlagInstant, 0});
}

/// In-flight stall marker, emitted by SpinGuard once a wait escalates to the
/// sleep stage: a rank wedged inside a span never completes it, and without
/// this the flight dump of the *stuck* rank would end before the stall.
inline void stall_marker(Phase ph) noexcept {
  auto& c = detail::tl_trace;
  if (c.buf == nullptr) return;
  c.buf->push(c.ring, Rec{trace_now(), 0, 0, static_cast<std::uint8_t>(ph),
                          c.coll, 0, kFlagMarker, 0});
}

/// Whole-collective scope; stamps the current coll-kind id into every record
/// pushed inside it.  Re-entrant: a fallback arm (socket-MA -> flat MA)
/// nests, and only the outermost scope emits the Phase::coll record.
class CollScope {
 public:
  CollScope(std::uint8_t coll_id, std::uint64_t payload,
            std::uint8_t alg = 0) noexcept {
    auto& c = detail::tl_trace;
    if (c.buf == nullptr) return;
    counted_ = true;
    if (c.depth++ > 0) return;
    buf_ = c.buf;
    c.coll = coll_id;
    arg_ = payload;
    var_ = alg;
    t0_ = trace_now();
  }
  CollScope(const CollScope&) = delete;
  CollScope& operator=(const CollScope&) = delete;
  ~CollScope() {
    if (!counted_) return;
    auto& c = detail::tl_trace;
    --c.depth;
    if (buf_ == nullptr) return;
    const std::uint64_t t1 = trace_now();
    buf_->push(c.ring, Rec{t0_, t1, arg_,
                           static_cast<std::uint8_t>(Phase::coll), c.coll,
                           var_, 0, 0});
    c.coll = 0;
  }

 private:
  TraceBuffer* buf_ = nullptr;
  std::uint64_t t0_ = 0;
  std::uint64_t arg_ = 0;
  std::uint8_t var_ = 0;
  bool counted_ = false;
};

/// RAII context installer used by Team::run (mirrors FaultRunScope /
/// HbRunScope).  Null buf keeps the context empty: every hook no-ops.
class TraceRunScope {
 public:
  TraceRunScope(TraceBuffer* buf, int ring) noexcept {
    auto& c = detail::tl_trace;
    c.buf = buf;
    c.ring = ring;
    c.coll = 0;
    c.depth = 0;
    c.waits = detail::WaitTicks{};
  }
  ~TraceRunScope() { detail::tl_trace = detail::TraceCtx{}; }
  TraceRunScope(const TraceRunScope&) = delete;
  TraceRunScope& operator=(const TraceRunScope&) = delete;
};

/// Delta of this thread's accumulated wait ticks, as seconds — how the
/// profiler splits a collective's wall time into wait vs. work.  Zero when
/// tracing is off (the profiler then reports no wait attribution).
class WaitScope {
 public:
  WaitScope() noexcept : start_(detail::tl_trace.waits.total()) {}
  double wait_seconds() const noexcept;

 private:
  std::uint64_t start_;
};

}  // namespace yhccl::trace
