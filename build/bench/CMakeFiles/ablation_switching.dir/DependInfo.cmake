
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_switching.cpp" "bench/CMakeFiles/ablation_switching.dir/ablation_switching.cpp.o" "gcc" "bench/CMakeFiles/ablation_switching.dir/ablation_switching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/yhccl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/yhccl_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/yhccl_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/yhccl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/yhccl_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/yhccl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/copy/CMakeFiles/yhccl_copy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
