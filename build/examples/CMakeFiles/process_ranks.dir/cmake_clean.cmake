file(REMOVE_RECURSE
  "CMakeFiles/process_ranks.dir/process_ranks.cpp.o"
  "CMakeFiles/process_ranks.dir/process_ranks.cpp.o.d"
  "process_ranks"
  "process_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
