// Reduction kernels used by every reduction collective.
//
// Three shapes, matching the paper's operations (Fig. 6):
//   A += B            reduce_inplace   — accumulate src into dst (temporal)
//   C  = A (+) B      reduce_out       — fused two-operand reduction
//   C  = B0 (+) ... (+) Bm-1
//                     reduce_out_multi — fused single-pass m-ary reduction:
//                     all m source slices are read once, folded in
//                     registers and stored once.
//
// All three route through the runtime ISA kernel table (dispatch.hpp):
// scalar / AVX2 / AVX-512 tiers, each with temporal and streaming store
// variants for every (op, dtype) combination.  Results are bit-identical
// across tiers and store types — the elementwise fold order is fixed.
//
// Buffers are raw bytes; `n` is a byte count that must be a multiple of
// the element size.  DAV accounting is uniform: a reduction of m operands
// books (m+1)·n bytes — m·n loaded, n stored.  (m = 2 for reduce_inplace
// and reduce_out, i.e. the familiar 3 bytes per payload byte.)
#pragma once

#include <cstddef>

#include "yhccl/common/types.hpp"

namespace yhccl::copy {

/// dst[i] = dst[i] op src[i]
void reduce_inplace(void* dst, const void* src, std::size_t n, Datatype d,
                    ReduceOp op) noexcept;

/// out[i] = a[i] op b[i]; streams the stores when nt_store is set.
void reduce_out(void* out, const void* a, const void* b, std::size_t n,
                Datatype d, ReduceOp op, bool nt_store) noexcept;

/// out[i] = op over m buffers:  srcs[0][i] op srcs[1][i] op ...  (m >= 1),
/// in one pass: (m+1)·n bytes of traffic instead of a pairwise chain's
/// ~3n·(m-1).  `out` may alias srcs[0] exactly (and no other source).
/// Used wherever a rank combines several partials at once: the socket-
/// combination stage of the socket-aware MA reduction, DPML's partitioned
/// stages, the RG tree's child fold and the XPMEM direct reduction.
void reduce_out_multi(void* out, const void* const* srcs, int m,
                      std::size_t n, Datatype d, ReduceOp op,
                      bool nt_store);

}  // namespace yhccl::copy
