# Empty dependencies file for fig10_reduce.
# This may be replaced when dependencies are built.
