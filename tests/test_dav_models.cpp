// Validates the analytical DAV models (Tables 1-3) against the *measured*
// traffic of the instrumented implementations — the strongest evidence the
// algorithms move exactly the bytes the paper claims.
//
// Geometry is chosen divisible (block a multiple of the slice, p | s) so
// the impl:: formulas are byte-exact; the paper:: formulas must then agree
// within their constant bookkeeping terms.
#include <gtest/gtest.h>

#include <vector>

#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/model/dav_model.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using namespace yhccl::base;
namespace md = yhccl::model;
using test::cached_team;
using test::fill_buffer;

namespace {

constexpr std::size_t kSliceMax = 16u << 10;

CollOpts exact_opts() {
  CollOpts o;
  o.slice_max = kSliceMax;
  return o;
}

/// Run `fn` SPMD and return the measured per-node DAV total.
template <typename Fn>
std::uint64_t measure(rt::ThreadTeam& team, const Fn& fn) {
  team.run(fn);
  return team.total_dav().total();
}

struct Fixture {
  int p, m;
  std::size_t count;  // per-rank block elements (f64) for scatter shapes
  std::vector<std::vector<double>> send, recv;
  std::size_t B() const { return count * 8; }
  std::size_t total() const { return B() * p; }

  Fixture(int p_, int m_, std::size_t count_) : p(p_), m(m_), count(count_) {
    send.resize(p);
    recv.resize(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count * p);
      recv[r].resize(count * p);
      fill_buffer(send[r].data(), count * p, Datatype::f64, r, ReduceOp::sum);
    }
  }
};

TEST(DavModel, MaReduceScatterIsExactlyS3pMinus1) {
  for (auto [p, m] : {std::pair{2, 1}, {4, 1}, {8, 1}}) {
    Fixture f(p, m, 8192);  // B = 64 KiB = 4 slices of 16 KiB
    auto& team = cached_team(p, m);
    const auto o = exact_opts();
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      ma_reduce_scatter(ctx, f.send[ctx.rank()].data(),
                        f.recv[ctx.rank()].data(), f.count, Datatype::f64,
                        ReduceOp::sum, o);
    });
    EXPECT_EQ(dav, md::impl::ma_reduce_scatter(f.total(), p)) << "p=" << p;
  }
}

TEST(DavModel, SocketMaReduceScatterIsExactlyS3pPlus1) {
  // The fused socket-combination stage costs (m+1)(s/p) instead of the
  // pairwise chain's 3(m-1)(s/p): the total is s(3p+1) independent of m,
  // at or below the paper's s(3p+2m-3) for every m >= 2.
  for (auto [p, m] : {std::pair{4, 2}, {8, 2}, {8, 4}}) {
    Fixture f(p, m, 8192);
    auto& team = cached_team(p, m);
    const auto o = exact_opts();
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      socket_ma_reduce_scatter(ctx, f.send[ctx.rank()].data(),
                               f.recv[ctx.rank()].data(), f.count,
                               Datatype::f64, ReduceOp::sum, o);
    });
    EXPECT_EQ(dav, md::impl::socket_ma_reduce_scatter(f.total(), p, m))
        << "p=" << p << " m=" << m;
    EXPECT_LE(dav, md::paper::socket_ma_reduce_scatter(f.total(), p, m))
        << "p=" << p << " m=" << m;
  }
}

TEST(DavModel, MaAllreduceIsExactlyS5pMinus1) {
  for (int p : {2, 4, 8}) {
    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
      fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
    }
    auto& team = cached_team(p, 1);
    const auto o = exact_opts();
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      ma_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                   count, Datatype::f64, ReduceOp::sum, o);
    });
    EXPECT_EQ(dav, md::impl::ma_allreduce(count * 8, p)) << "p=" << p;
  }
}

TEST(DavModel, SocketMaAllreduceMatchesTable2) {
  for (auto [p, m] : {std::pair{4, 2}, {8, 2}, {8, 4}}) {
    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
      fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
    }
    auto& team = cached_team(p, m);
    const auto o = exact_opts();
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      socket_ma_allreduce(ctx, send[ctx.rank()].data(),
                          recv[ctx.rank()].data(), count, Datatype::f64,
                          ReduceOp::sum, o);
    });
    EXPECT_EQ(dav, md::impl::socket_ma_allreduce(count * 8, p, m));
    // Paper's Table 2 assumes a pairwise socket-combination chain
    // (s(5p+2m-3)); the fused kernel lands at s(5p+1), <= for m >= 2.
    EXPECT_LE(dav, md::paper::socket_ma_allreduce(count * 8, p, m));
  }
}

TEST(DavModel, MaReduceMatchesTable3) {
  for (int p : {2, 4, 8}) {
    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
      fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
    }
    auto& team = cached_team(p, 1);
    const auto o = exact_opts();
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      ma_reduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(), count,
                Datatype::f64, ReduceOp::sum, /*root=*/0, o);
    });
    EXPECT_EQ(dav, md::impl::ma_reduce(count * 8, p));
    EXPECT_EQ(dav, md::paper::ma_reduce(count * 8, p));
  }
}

TEST(DavModel, DpmlAllreduceMatchesFusedModelAndBeatsPaperTable) {
  for (int p : {2, 4, 8}) {
    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
      fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
    }
    auto& team = cached_team(p, 1);
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      dpml_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                     count, Datatype::f64, ReduceOp::sum);
    });
    const std::size_t s = count * 8;
    EXPECT_EQ(dav, md::impl::dpml_allreduce(s, p));
    // Paper's table says s(7p-1) (pairwise staged reduction + extra copy);
    // direct delivery plus the fused p-ary stage lands at s(5p+1).
    EXPECT_LE(dav, md::paper::dpml_allreduce(s, p));
  }
}

TEST(DavModel, RingMatchesTable1And2ExactlyWithSingleCopy) {
  for (int p : {2, 4, 8}) {
    Fixture f(p, 1, 8192);
    auto& team = cached_team(p, 1);
    const auto rs = measure(team, [&](rt::RankCtx& ctx) {
      ring_reduce_scatter(ctx, f.send[ctx.rank()].data(),
                          f.recv[ctx.rank()].data(), f.count, Datatype::f64,
                          ReduceOp::sum, Transport::single_copy);
    });
    EXPECT_EQ(rs, md::paper::ring_reduce_scatter(f.total(), p)) << p;

    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
    }
    const auto ar = measure(team, [&](rt::RankCtx& ctx) {
      ring_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                     count, Datatype::f64, ReduceOp::sum,
                     Transport::single_copy);
    });
    EXPECT_EQ(ar, md::paper::ring_allreduce(count * 8, p)) << p;
  }
}

TEST(DavModel, TwoCopyRingPaysTheEagerPenalty) {
  const int p = 4;
  Fixture f(p, 1, 8192);
  auto& team = cached_team(p, 1);
  const auto rs = measure(team, [&](rt::RankCtx& ctx) {
    ring_reduce_scatter(ctx, f.send[ctx.rank()].data(),
                        f.recv[ctx.rank()].data(), f.count, Datatype::f64,
                        ReduceOp::sum, Transport::two_copy);
  });
  EXPECT_EQ(rs, md::impl::ring_reduce_scatter_two_copy(f.total(), p));
}

TEST(DavModel, XpmemAllreduceMatchesHashmisModel) {
  for (int p : {2, 4, 8}) {
    const std::size_t count = 8192 * static_cast<std::size_t>(p);
    std::vector<std::vector<double>> send(p), recv(p);
    for (int r = 0; r < p; ++r) {
      send[r].resize(count);
      recv[r].resize(count);
    }
    auto& team = cached_team(p, 1);
    const auto dav = measure(team, [&](rt::RankCtx& ctx) {
      xpmem_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                      count, Datatype::f64, ReduceOp::sum);
    });
    EXPECT_EQ(dav, md::impl::xpmem_allreduce(count * 8, p)) << p;
    // Hashmi's model (5s(p-1)) assumed a pairwise reduction loop; the
    // fused p-ary direct reduction moves s(3p-1).
    EXPECT_LE(dav, md::paper::xpmem_allreduce(count * 8, p)) << p;
  }
}

TEST(DavModel, PipelinedBroadcastAndAllgather) {
  const int p = 4;
  const std::size_t count = 65536;
  auto& team = cached_team(p, 1);
  std::vector<std::vector<double>> buf(p), recv(p);
  for (int r = 0; r < p; ++r) {
    buf[r].resize(count);
    recv[r].resize(count * p);
  }
  const auto o = exact_opts();
  const auto bc = measure(team, [&](rt::RankCtx& ctx) {
    pipelined_broadcast(ctx, buf[ctx.rank()].data(), count, Datatype::f64, 0,
                        o);
  });
  EXPECT_EQ(bc, md::impl::pipelined_broadcast(count * 8, p));
  const auto ag = measure(team, [&](rt::RankCtx& ctx) {
    pipelined_allgather(ctx, buf[ctx.rank()].data(), recv[ctx.rank()].data(),
                        count, Datatype::f64, o);
  });
  EXPECT_EQ(ag, md::impl::pipelined_allgather(count * 8, p));
}

TEST(DavModel, YhcclBeatsEveryTable1CompetitorFromP4) {
  const std::size_t s = 64u << 20;
  for (int p : {4, 8, 16, 32, 64}) {
    const int m = 2;
    const auto mine = md::paper::socket_ma_reduce_scatter(s, p, m);
    EXPECT_LT(mine, md::paper::ring_reduce_scatter(s, p)) << p;
    EXPECT_LT(mine, md::paper::dpml_reduce_scatter(s, p)) << p;
    EXPECT_LT(mine, md::paper::rabenseifner_reduce_scatter(s, p)) << p;
    // The ~40% saving over DPML the paper quotes (§2.2, §3.3).
    const double saving =
        1.0 - static_cast<double>(mine) /
                  static_cast<double>(md::paper::dpml_reduce_scatter(s, p));
    EXPECT_GT(saving, 0.3) << p;
  }
}

TEST(DavModel, NtSwitchPointReproducesSection54Numbers) {
  // The paper's worked §5.4 numbers plug the flat shm term p*Imax into the
  // numerator: NodeA (C=294912 KB, p=64, Imax=256 KB) -> 2176 KB, NodeB
  // (C=116736 KB, p=48, Imax=128 KB) -> 1152 KB.
  const auto node_a = copy::CacheConfig::node_a();
  EXPECT_EQ(md::nt_switch_point(node_a.available(64), 64,
                                64 * (256u << 10)),
            2176u << 10);
  const auto node_b = copy::CacheConfig::node_b();
  EXPECT_EQ(md::nt_switch_point(node_b.available(48), 48,
                                48 * (128u << 10)),
            1152u << 10);
  // The socket-aware working-set formula (W = 2sp + m*p*Imax) gives a
  // slightly earlier switch.
  EXPECT_LT(md::nt_switch_point_allreduce(node_a.available(64), 64, 2,
                                          256u << 10),
            2176u << 10);
}

TEST(DavModel, RgSeriesIsMonotoneInBranchAndBounded) {
  const std::size_t s = 1u << 20;
  for (int p : {8, 64}) {
    const auto k2 = md::paper::rg_allreduce(s, p, 2);
    const auto k4 = md::paper::rg_allreduce(s, p, 4);
    EXPECT_GT(k2, 2 * static_cast<std::uint64_t>(s));
    EXPECT_GT(k4, k2);  // wider trees copy more per level
    // RG moves more data than MA for any p >= 4 (paper's comparison).
    EXPECT_GT(k2, md::paper::ma_allreduce(s, p) / 2);
  }
}

TEST(DavModel, TimeFromDav) {
  EXPECT_DOUBLE_EQ(md::time_from_dav(1'000'000'000, 2e9), 0.5);
  EXPECT_DOUBLE_EQ(md::time_from_dav(123, 0), 0.0);
}

// ---- operation-count parity matrix ------------------------------------------
// Every collective arm × team shape × (divisible and ragged) message size,
// on both the thread and the fork() backend: the measured deterministic
// counters — DAV loads/stores, kernel dispatches, barrier arrivals and
// progress-flag posts/waits — must equal the md::impl::*_ops simulators
// EXACTLY.  This is the seed matrix for the bench comparator's counter
// gate (docs/benchmarking.md): if an implementation's loop structure
// drifts, this is the test that names the counter that moved.

using OpCounts = md::impl::OpCounts;
using OpGeometry = md::impl::OpGeometry;

constexpr std::size_t kParityScratch = 24u << 20;

OpCounts measured_counts(rt::Team& team) {
  OpCounts c;
  const auto d = team.total_dav();
  c.loads = d.loads;
  c.stores = d.stores;
  c.kernel_calls = team.total_kernels().total();
  const auto s = team.total_sync();
  c.barriers = s.barriers;
  c.flag_posts = s.flag_posts;
  c.flag_waits = s.flag_waits;
  return c;
}

::testing::AssertionResult counts_equal(const OpCounts& got,
                                        const OpCounts& want) {
  if (got == want) return ::testing::AssertionSuccess();
  auto line = [](const char* name, std::uint64_t g, std::uint64_t w) {
    return g == w ? std::string{}
                  : std::string("\n  ") + name + ": measured " +
                        std::to_string(g) + " != model " + std::to_string(w);
  };
  return ::testing::AssertionFailure()
         << line("loads", got.loads, want.loads)
         << line("stores", got.stores, want.stores)
         << line("kernel_calls", got.kernel_calls, want.kernel_calls)
         << line("barriers", got.barriers, want.barriers)
         << line("flag_posts", got.flag_posts, want.flag_posts)
         << line("flag_waits", got.flag_waits, want.flag_waits);
}

/// One parity arm: how to run the implementation and which simulator
/// predicts it.  `count` is the per-rank block for scatter-shaped input
/// (model s = p·count·esize) and the whole vector otherwise (s = count·esize).
struct ParityArm {
  const char* name;
  bool scatter_shaped;
  OpCounts (*model)(std::size_t, const OpGeometry&);
  void (*run)(rt::RankCtx&, std::size_t count, const CollOpts&);
  bool thread_only = false;  ///< xpmem needs a shared address space
};

const ParityArm kParityArms[] = {
    {"ma_reduce_scatter", true, md::impl::ma_reduce_scatter_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> send(count * ctx.nranks()), recv(count);
       fill_buffer(send.data(), send.size(), Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       ma_reduce_scatter(ctx, send.data(), recv.data(), count, Datatype::f64,
                         ReduceOp::sum, o);
     }},
    {"socket_ma_reduce_scatter", true,
     md::impl::socket_ma_reduce_scatter_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> send(count * ctx.nranks()), recv(count);
       fill_buffer(send.data(), send.size(), Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       socket_ma_reduce_scatter(ctx, send.data(), recv.data(), count,
                                Datatype::f64, ReduceOp::sum, o);
     }},
    {"dpml_reduce_scatter", true, md::impl::dpml_reduce_scatter_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> send(count * ctx.nranks()), recv(count);
       fill_buffer(send.data(), send.size(), Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       dpml_two_level_reduce_scatter(ctx, send.data(), recv.data(), count,
                                     Datatype::f64, ReduceOp::sum, o);
     }},
    {"ma_allreduce", false, md::impl::ma_allreduce_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> send(count), recv(count);
       fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       ma_allreduce(ctx, send.data(), recv.data(), count, Datatype::f64,
                    ReduceOp::sum, o);
     }},
    {"socket_ma_allreduce", false, md::impl::socket_ma_allreduce_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> send(count), recv(count);
       fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       socket_ma_allreduce(ctx, send.data(), recv.data(), count,
                           Datatype::f64, ReduceOp::sum, o);
     }},
    {"dpml_allreduce", false, md::impl::dpml_allreduce_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> send(count), recv(count);
       fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       dpml_two_level_allreduce(ctx, send.data(), recv.data(), count,
                                Datatype::f64, ReduceOp::sum, o);
     }},
    {"ma_reduce", false, md::impl::ma_reduce_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> send(count), recv(count);
       fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       ma_reduce(ctx, send.data(), recv.data(), count, Datatype::f64,
                 ReduceOp::sum, /*root=*/0, o);
     }},
    {"socket_ma_reduce", false, md::impl::socket_ma_reduce_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> send(count), recv(count);
       fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       socket_ma_reduce(ctx, send.data(), recv.data(), count, Datatype::f64,
                        ReduceOp::sum, /*root=*/0, o);
     }},
    {"dpml_reduce", false, md::impl::dpml_reduce_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> send(count), recv(count);
       fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       dpml_two_level_reduce(ctx, send.data(), recv.data(), count,
                             Datatype::f64, ReduceOp::sum, /*root=*/0, o);
     }},
    {"pipelined_broadcast", false, md::impl::pipelined_broadcast_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> buf(count);
       fill_buffer(buf.data(), count, Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       pipelined_broadcast(ctx, buf.data(), count, Datatype::f64,
                           /*root=*/0, o);
     }},
    {"pipelined_allgather", false, md::impl::pipelined_allgather_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts& o) {
       std::vector<double> send(count), recv(count * ctx.nranks());
       fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       pipelined_allgather(ctx, send.data(), recv.data(), count,
                           Datatype::f64, o);
     }},
    {"xpmem_allreduce", false, md::impl::xpmem_allreduce_ops,
     [](rt::RankCtx& ctx, std::size_t count, const CollOpts&) {
       std::vector<double> send(count), recv(count);
       fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                   ReduceOp::sum);
       xpmem_allreduce(ctx, send.data(), recv.data(), count, Datatype::f64,
                       ReduceOp::sum);
     },
     /*thread_only=*/true},
};

/// Shapes: flat even/odd, even p over even sockets, and the ragged p=3
/// over m=2 split where one socket has 2 ranks and the other 1.
constexpr std::pair<int, int> kParityShapes[] = {
    {2, 1}, {3, 1}, {4, 2}, {3, 2}};

/// Element counts: slice-divisible, ragged tail, and sub-slice tiny.
constexpr std::size_t kParityCounts[] = {4096, 3003, 17};

void run_parity_matrix(rt::Team& team, int p, int m,
                       bool is_thread_team = true) {
  CollOpts o;
  o.slice_max = 4u << 10;
  OpGeometry g;
  g.p = p;
  g.m = m;
  g.slice_max = o.slice_max;
  g.slice_min = o.slice_min;
  g.dpml_chunk = o.dpml_chunk;
  g.scratch_bytes = kParityScratch;
  g.dpml_flat = o.dpml_flat;
  for (const auto& arm : kParityArms) {
    if (arm.thread_only && !is_thread_team) continue;
    for (std::size_t count : kParityCounts) {
      team.run([&](rt::RankCtx& ctx) { arm.run(ctx, count, o); });
      const std::size_t s =
          count * 8 * (arm.scatter_shaped ? static_cast<std::size_t>(p) : 1);
      EXPECT_TRUE(counts_equal(measured_counts(team), arm.model(s, g)))
          << arm.name << " p=" << p << " m=" << m << " count=" << count;
    }
  }
}

TEST(CounterParity, MatrixOnThreadTeams) {
  for (auto [p, m] : kParityShapes) {
    run_parity_matrix(cached_team(p, m, kParityScratch), p, m);
  }
}

TEST(CounterParity, MatrixOnProcessTeams) {
  for (auto [p, m] : kParityShapes) {
    rt::TeamConfig cfg;
    cfg.nranks = p;
    cfg.nsockets = m;
    cfg.scratch_bytes = kParityScratch;
    cfg.shared_heap_bytes = 4u << 20;
    rt::ProcessTeam team(cfg);
    run_parity_matrix(team, p, m, /*is_thread_team=*/false);
  }
}

}  // namespace
