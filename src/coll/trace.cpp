#include "yhccl/coll/trace.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

#include "yhccl/common/error.hpp"
#include "yhccl/common/time.hpp"

namespace yhccl::coll {

double CollTrace::recorded_seconds() const noexcept {
  double t = 0;
  for (const auto& e : events_) t += e.seconds;
  return t;
}

std::string CollTrace::to_csv() const {
  std::string out = "kind,count,dtype,op,root,seconds\n";
  char line[160];
  for (const auto& e : events_) {
    std::snprintf(line, sizeof line, "%s,%zu,%s,%s,%d,%.9f\n",
                  coll_kind_name(e.kind), e.count,
                  std::string(dtype_name(e.dtype)).c_str(),
                  std::string(op_name(e.op)).c_str(), e.root, e.seconds);
    out += line;
  }
  return out;
}

namespace {

CollKind parse_kind(const std::string& s) {
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k)
    if (s == coll_kind_name(static_cast<CollKind>(k)))
      return static_cast<CollKind>(k);
  raise("unknown collective kind in trace: " + s);
}

Datatype parse_dtype(const std::string& s) {
  for (Datatype d : {Datatype::u8, Datatype::i32, Datatype::i64,
                     Datatype::f32, Datatype::f64})
    if (s == dtype_name(d)) return d;
  raise("unknown dtype in trace: " + s);
}

ReduceOp parse_op(const std::string& s) {
  for (ReduceOp o : {ReduceOp::sum, ReduceOp::prod, ReduceOp::max,
                     ReduceOp::min, ReduceOp::band, ReduceOp::bor})
    if (s == op_name(o)) return o;
  raise("unknown op in trace: " + s);
}

}  // namespace

CollTrace CollTrace::from_csv(const std::string& csv) {
  CollTrace t;
  std::istringstream in(csv);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {  // header
      first = false;
      continue;
    }
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind, count, dtype, op, root, seconds;
    std::getline(ls, kind, ',');
    std::getline(ls, count, ',');
    std::getline(ls, dtype, ',');
    std::getline(ls, op, ',');
    std::getline(ls, root, ',');
    std::getline(ls, seconds, ',');
    TraceEvent e;
    e.kind = parse_kind(kind);
    e.count = std::stoull(count);
    e.dtype = parse_dtype(dtype);
    e.op = parse_op(op);
    e.root = std::stoi(root);
    e.seconds = std::stod(seconds);
    t.record(e);
  }
  return t;
}

namespace {

template <typename Fn>
void traced(CollTrace& trace, TraceEvent e, const Fn& fn) {
  const Timer timer;
  fn();
  e.seconds = timer.elapsed();
  trace.record(e);
}

}  // namespace

void allreduce(CollTrace& trace, RankCtx& ctx, const void* send, void* recv,
               std::size_t count, Datatype d, ReduceOp op,
               const CollOpts& opts) {
  traced(trace, {CollKind::allreduce, count, d, op, 0, 0},
         [&] { allreduce(ctx, send, recv, count, d, op, opts); });
}

void reduce(CollTrace& trace, RankCtx& ctx, const void* send, void* recv,
            std::size_t count, Datatype d, ReduceOp op, int root,
            const CollOpts& opts) {
  traced(trace, {CollKind::reduce, count, d, op, root, 0},
         [&] { reduce(ctx, send, recv, count, d, op, root, opts); });
}

void reduce_scatter(CollTrace& trace, RankCtx& ctx, const void* send,
                    void* recv, std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts) {
  traced(trace, {CollKind::reduce_scatter, count, d, op, 0, 0},
         [&] { reduce_scatter(ctx, send, recv, count, d, op, opts); });
}

void broadcast(CollTrace& trace, RankCtx& ctx, void* buf, std::size_t count,
               Datatype d, int root, const CollOpts& opts) {
  traced(trace, {CollKind::broadcast, count, d, ReduceOp::sum, root, 0},
         [&] { broadcast(ctx, buf, count, d, root, opts); });
}

void allgather(CollTrace& trace, RankCtx& ctx, const void* send, void* recv,
               std::size_t count, Datatype d, const CollOpts& opts) {
  traced(trace, {CollKind::allgather, count, d, ReduceOp::sum, 0, 0},
         [&] { allgather(ctx, send, recv, count, d, opts); });
}

ReplayResult replay(RankCtx& ctx, const CollTrace& trace,
                    const CollOpts& opts) {
  // Synthetic buffers sized for the largest event; thread-local so
  // repeated replays don't churn the allocator.
  thread_local std::vector<std::uint8_t> send_buf, recv_buf;
  std::size_t max_send = 64, max_recv = 64;
  const auto p = static_cast<std::size_t>(ctx.nranks());
  for (const auto& e : trace.events()) {
    const std::size_t bytes = e.count * dtype_size(e.dtype);
    switch (e.kind) {
      case CollKind::reduce_scatter:
        max_send = std::max(max_send, bytes * p);
        max_recv = std::max(max_recv, bytes);
        break;
      case CollKind::allgather:
        max_send = std::max(max_send, bytes);
        max_recv = std::max(max_recv, bytes * p);
        break;
      default:
        max_send = std::max(max_send, bytes);
        max_recv = std::max(max_recv, bytes);
        break;
    }
  }
  if (send_buf.size() < max_send) send_buf.assign(max_send, 1);
  if (recv_buf.size() < max_recv) recv_buf.assign(max_recv, 0);

  ReplayResult r;
  const Timer timer;
  for (const auto& e : trace.events()) {
    switch (e.kind) {
      case CollKind::allreduce:
        allreduce(ctx, send_buf.data(), recv_buf.data(), e.count, e.dtype,
                  e.op, opts);
        break;
      case CollKind::reduce:
        reduce(ctx, send_buf.data(), recv_buf.data(), e.count, e.dtype,
               e.op, e.root, opts);
        break;
      case CollKind::reduce_scatter:
        reduce_scatter(ctx, send_buf.data(), recv_buf.data(), e.count,
                       e.dtype, e.op, opts);
        break;
      case CollKind::broadcast:
        broadcast(ctx, recv_buf.data(), e.count, e.dtype, e.root, opts);
        break;
      case CollKind::allgather:
        allgather(ctx, send_buf.data(), recv_buf.data(), e.count, e.dtype,
                  opts);
        break;
      default:
        raise("replay: unsupported event kind");
    }
    ++r.events;
    r.payload_bytes += e.count * dtype_size(e.dtype);
  }
  r.seconds = timer.elapsed();
  return r;
}

}  // namespace yhccl::coll
