// Tests for the always-on metrics registry (src/metrics): log2 bucket
// edges, buffer/hook semantics, thread-vs-fork snapshot parity, the
// off-mode zero-overhead guarantee (counter exactness + allocation
// parity), exporter schema round-trips and validators, the MAD straggler
// detector against an injected stall@barrier schedule, serve-mode sampler
// files + shm mirror, and the trace-dir mkdir fix that rides along.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "yhccl/bench/harness.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/metrics/export.hpp"
#include "yhccl/metrics/metrics.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "yhccl/runtime/shm_region.hpp"
#include "yhccl/runtime/thread_team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::fill_buffer;

// ---- allocation counter (the zero-overhead assertion) -----------------------

static std::atomic<std::uint64_t> g_allocs{0};

#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
// GCC flags free() on a replaced operator new's result; ours is malloc-backed.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

namespace ym = yhccl::metrics;

enum class Backend { threads, procs };

std::unique_ptr<rt::Team> make_team(Backend b, int p, int m, ym::Mode mode,
                                    trace::Mode tmode = trace::Mode::off) {
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  cfg.scratch_bytes = 8u << 20;
  cfg.shared_heap_bytes = 8u << 20;
  cfg.metrics = mode;
  cfg.trace = tmode;
  cfg.sync_timeout = 20.0;
  if (b == Backend::procs) return std::make_unique<rt::ProcessTeam>(cfg);
  return std::make_unique<rt::ThreadTeam>(cfg);
}

/// Deterministic mixed schedule (one call per collective kind).
void run_schedule(rt::RankCtx& ctx) {
  const std::size_t n = 2048;
  std::vector<double> send(n), recv(n * static_cast<std::size_t>(4));
  fill_buffer(send.data(), n, Datatype::f64, ctx.rank(), ReduceOp::sum);
  allreduce(ctx, send.data(), recv.data(), n, Datatype::f64, ReduceOp::sum);
  reduce_scatter(ctx, send.data(), recv.data(),
                 n / static_cast<std::size_t>(ctx.nranks()), Datatype::f64,
                 ReduceOp::sum);
  reduce(ctx, send.data(), recv.data(), n, Datatype::f64, ReduceOp::sum, 0);
  broadcast(ctx, recv.data(), n, Datatype::f64, 0);
  allgather(ctx, send.data(), recv.data(), n / 4, Datatype::f64);
}

struct ScopedEnv {
  ScopedEnv(const char* k, const char* v) : key(k) {
    const char* old = std::getenv(k);
    had = old != nullptr;
    if (had) saved = old;
    if (v != nullptr)
      ::setenv(k, v, 1);
    else
      ::unsetenv(k);
  }
  ~ScopedEnv() {
    if (had)
      ::setenv(key.c_str(), saved.c_str(), 1);
    else
      ::unsetenv(key.c_str());
  }
  std::string key, saved;
  bool had = false;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> dir_entries(const std::string& dir,
                                     const std::string& suffix) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
      out.push_back(dir + "/" + name);
  }
  ::closedir(d);
  return out;
}

std::string fresh_tmpdir(const char* tag) {
  std::string dir = "/tmp/yhccl_metrics_test_" + std::string(tag) + "_" +
                    std::to_string(::getpid());
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
  return dir;
}

// ---- bucket edges -----------------------------------------------------------

TEST(MetricsBuckets, Log2EdgesZeroAndMax) {
  // Bucket 0 holds exactly {0}; bucket b >= 1 covers [2^(b-1), 2^b).
  EXPECT_EQ(ym::log2_bucket(0, ym::kLatBuckets), 0);
  EXPECT_EQ(ym::log2_bucket(1, ym::kLatBuckets), 1);
  for (int k = 1; k <= 40; ++k) {
    const std::uint64_t pow2 = 1ull << k;
    const int cap = ym::kSizeBuckets;
    const int at = ym::log2_bucket(pow2, cap);
    const int below = ym::log2_bucket(pow2 - 1, cap);
    EXPECT_EQ(at, std::min(k + 1, cap - 1)) << "2^" << k;
    EXPECT_EQ(below, std::min(k, cap - 1)) << "2^" << k << " - 1";
  }
  // The last bucket absorbs the whole upper tail, including UINT64_MAX.
  EXPECT_EQ(ym::log2_bucket(~0ull, ym::kLatBuckets), ym::kLatBuckets - 1);
  EXPECT_EQ(ym::log2_bucket(~0ull, ym::kSizeBuckets), ym::kSizeBuckets - 1);

  // bucket_limit is the exclusive upper bound: every value lands strictly
  // below its bucket's limit and at/above the previous one.
  for (int b = 0; b < ym::kLatBuckets - 1; ++b)
    EXPECT_EQ(ym::bucket_limit(b, ym::kLatBuckets), b == 0 ? 1ull : 1ull << b);
  EXPECT_EQ(ym::bucket_limit(ym::kLatBuckets - 1, ym::kLatBuckets), ~0ull);
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1023ull, 1024ull, ~0ull}) {
    const int b = ym::log2_bucket(v, ym::kLatBuckets);
    EXPECT_LE(v, ym::bucket_limit(b, ym::kLatBuckets));
    if (v != ~0ull) EXPECT_LT(v, ym::bucket_limit(b, ym::kLatBuckets));
    if (b > 0) EXPECT_GE(v, ym::bucket_limit(b - 1, ym::kLatBuckets));
  }
}

TEST(MetricsBuckets, PlanGaugePackRoundTrips) {
  const std::uint64_t g = ym::plan_gauge_pack(3, 2, 1, 12);
  EXPECT_TRUE(ym::gauge_valid(g));
  EXPECT_EQ(ym::gauge_alg(g), 3);
  EXPECT_EQ(ym::gauge_arm(g), 2);
  EXPECT_EQ(ym::gauge_source(g), 1);
  EXPECT_EQ(ym::gauge_bucket(g), 12);
  EXPECT_FALSE(ym::gauge_valid(0));
}

// ---- buffer + hooks ---------------------------------------------------------

TEST(MetricsBuffer, HooksAccountIntoOwnSlot) {
  const int nranks = 2;
  const std::size_t bytes = ym::MetricsBuffer::required_bytes(nranks);
  void* mem = ::operator new(bytes, std::align_val_t{64});
  auto* buf = ym::MetricsBuffer::create(mem, bytes, nranks, ym::Mode::on);
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->nranks(), nranks);
  EXPECT_FALSE(ym::active());
  {
    ym::RunScope rs(buf, 1, /*run_seq=*/7);
    EXPECT_TRUE(ym::active());
    ym::note_flag_post();
    ym::note_flag_post();
    ym::note_flag_wait();
    ym::note_plan(1, ym::plan_gauge_pack(2, 0, 0, 5));
    {
      ym::CollSample cs(1, 4096);
      cs.set_alg(2);
    }
    { ym::BarrierScope bs(/*trace_scope=*/0); }
    { ym::BarrierScope bs(/*trace_scope=*/1); }  // socket: no window entry
  }
  EXPECT_FALSE(ym::active());

  const ym::Snapshot s = ym::Snapshot::capture(*buf);
  EXPECT_EQ(s.nranks, nranks);
  ASSERT_EQ(s.ranks.size(), 2u);
  const ym::RankSnap& r0 = s.ranks[0];
  const ym::RankSnap& r1 = s.ranks[1];
  // Rank 0 never ran: its slot is untouched (single-writer isolation).
  EXPECT_EQ(r0.flag_posts, 0u);
  EXPECT_EQ(r0.barriers, 0u);
  EXPECT_TRUE(r0.cells.empty());
  EXPECT_EQ(r1.flag_posts, 2u);
  EXPECT_EQ(r1.flag_waits, 1u);
  EXPECT_EQ(r1.barriers, 2u);
  EXPECT_TRUE(ym::gauge_valid(r1.plan_gauge[1]));
  EXPECT_EQ(ym::gauge_alg(r1.plan_gauge[1]), 2);
  // One collective sample: cell identity and hist/calls consistency.
  ASSERT_EQ(r1.cells.size(), 1u);
  EXPECT_EQ(r1.cells[0].coll, 1);
  EXPECT_EQ(r1.cells[0].alg, 2);
  EXPECT_EQ(r1.cells[0].size_bucket, ym::size_bucket(4096));
  EXPECT_EQ(r1.cells[0].calls, 1u);
  EXPECT_EQ(r1.cells[0].bytes, 4096u);
  std::uint64_t hist_sum = 0;
  for (std::uint64_t h : r1.cells[0].hist) hist_sum += h;
  EXPECT_EQ(hist_sum, r1.cells[0].calls);
  // Only the node barrier lands in the straggler window; the ordinal mixes
  // the run ordinal with the per-run count.
  ASSERT_EQ(r1.window.size(), 1u);
  EXPECT_EQ(r1.window[0].ordinal, (7ull << 24) | 1u);
  EXPECT_GE(r1.window[0].depart, r1.window[0].arrive);
  EXPECT_GT(buf->ticks_per_second(), 0.0);
  ::operator delete(mem, std::align_val_t{64});
}

TEST(MetricsEnv, ModeAndIntervalParsing) {
  {
    ScopedEnv e("YHCCL_METRICS", nullptr);
    EXPECT_EQ(ym::mode_from_env(), ym::Mode::off);
  }
  {
    ScopedEnv e("YHCCL_METRICS", "on");
    EXPECT_EQ(ym::mode_from_env(), ym::Mode::on);
  }
  {
    ScopedEnv e("YHCCL_METRICS", "serve");
    EXPECT_EQ(ym::mode_from_env(), ym::Mode::serve);
  }
  {
    ScopedEnv e("YHCCL_METRICS", "bogus");
    EXPECT_THROW(ym::mode_from_env(), Error);
  }
  {
    ScopedEnv e("YHCCL_METRICS_INTERVAL_MS", nullptr);
    EXPECT_EQ(ym::interval_ms_from_env(), 1000);
  }
  {
    ScopedEnv e("YHCCL_METRICS_INTERVAL_MS", "5");
    EXPECT_EQ(ym::interval_ms_from_env(), 10);  // clamped
  }
  {
    ScopedEnv e("YHCCL_METRICS_INTERVAL_MS", "abc");
    EXPECT_THROW(ym::interval_ms_from_env(), Error);
  }
}

// ---- off-mode zero overhead -------------------------------------------------

TEST(MetricsOffMode, NoSectionExactCountersNoExtraAllocations) {
  auto off = make_team(Backend::threads, 4, 2, ym::Mode::off);
  auto on = make_team(Backend::threads, 4, 2, ym::Mode::on);
  EXPECT_EQ(off->metrics_buffer(), nullptr);
  EXPECT_EQ(off->metrics_mode(), ym::Mode::off);
  ASSERT_NE(on->metrics_buffer(), nullptr);
  EXPECT_EQ(on->metrics_mode(), ym::Mode::on);

  // Metering must not perturb the deterministic counter model: the same
  // schedule produces byte-for-byte identical DAV/kernel/sync counts.
  const auto c_off = bench::measure_counters(*off, run_schedule);
  const auto c_on = bench::measure_counters(*on, run_schedule);
  EXPECT_EQ(c_off, c_on);
  EXPECT_GT(c_off.dav.total(), 0u);

  // Zero-allocation warm path: metering a run allocates exactly as much as
  // not metering it (the hooks are relaxed stores into the shared mapping).
  const auto run_allocs = [](rt::Team& team) {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    team.run(run_schedule);
    return g_allocs.load(std::memory_order_relaxed) - before;
  };
  run_allocs(*off);  // warm both teams once (lazy statics, plan warm-up)
  run_allocs(*on);
  EXPECT_EQ(run_allocs(*off), run_allocs(*on));
}

// ---- thread vs fork parity --------------------------------------------------

TEST(MetricsParity, ThreadAndProcessBackendsAgree) {
  auto tt = make_team(Backend::threads, 4, 2, ym::Mode::on);
  auto pt = make_team(Backend::procs, 4, 2, ym::Mode::on);
  tt->run(run_schedule);
  pt->run(run_schedule);
  ASSERT_NE(tt->metrics_buffer(), nullptr);
  ASSERT_NE(pt->metrics_buffer(), nullptr);
  const ym::Snapshot a = ym::Snapshot::capture(*tt->metrics_buffer());
  const ym::Snapshot b = ym::Snapshot::capture(*pt->metrics_buffer());
  EXPECT_EQ(a.team.runs, 1u);
  EXPECT_EQ(b.team.runs, 1u);
  EXPECT_EQ(a.team.active_ranks, 4u);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const ym::RankSnap& x = a.ranks[r];
    const ym::RankSnap& y = b.ranks[r];
    // Counter-deterministic fields: identical across backends (children's
    // slot writes survive in the shared mapping; dav folds from the
    // parent-side mailboxes either way).  Ticks/windows are timing.
    EXPECT_EQ(x.barriers, y.barriers) << "rank " << r;
    EXPECT_EQ(x.flag_posts, y.flag_posts) << "rank " << r;
    EXPECT_EQ(x.flag_waits, y.flag_waits) << "rank " << r;
    EXPECT_EQ(x.runs, 1u);
    EXPECT_EQ(y.runs, 1u);
    EXPECT_EQ(x.dav_loads, y.dav_loads) << "rank " << r;
    EXPECT_EQ(x.dav_stores, y.dav_stores) << "rank " << r;
    ASSERT_EQ(x.cells.size(), y.cells.size()) << "rank " << r;
    EXPECT_GT(x.barriers, 0u);
    EXPECT_FALSE(x.cells.empty());
    for (std::size_t c = 0; c < x.cells.size(); ++c) {
      EXPECT_EQ(x.cells[c].coll, y.cells[c].coll);
      EXPECT_EQ(x.cells[c].alg, y.cells[c].alg);
      EXPECT_EQ(x.cells[c].size_bucket, y.cells[c].size_bucket);
      EXPECT_EQ(x.cells[c].calls, y.cells[c].calls);
      EXPECT_EQ(x.cells[c].bytes, y.cells[c].bytes);
    }
    // Each schedule entry landed one sample; hist mass equals calls.
    std::uint64_t calls = 0, hist = 0;
    for (const auto& cell : x.cells) {
      calls += cell.calls;
      for (std::uint64_t h : cell.hist) hist += h;
    }
    EXPECT_EQ(calls, 5u) << "rank " << r;
    EXPECT_EQ(hist, calls) << "rank " << r;
    // The default prior tuner served every kind: the gauges are populated.
    EXPECT_TRUE(ym::gauge_valid(x.plan_gauge[1])) << "rank " << r;
  }
}

// ---- exporters and validators -----------------------------------------------

TEST(MetricsExport, JsonRoundTripAndValidators) {
  auto team = make_team(Backend::threads, 4, 2, ym::Mode::on);
  team->run(run_schedule);
  const ym::Snapshot s = ym::Snapshot::capture(*team->metrics_buffer());

  std::string err;
  const bench::Json j = s.to_json();
  EXPECT_TRUE(ym::validate_metrics_json(j, &err)) << err;
  EXPECT_EQ(j["schema"].as_string(), ym::kMetricsSchema);

  // from_json(to_json(s)) is the identity on the document.
  const ym::Snapshot back = ym::Snapshot::from_json(j);
  EXPECT_EQ(back.to_json().dump(), j.dump());

  const std::string prom = s.prometheus();
  EXPECT_TRUE(ym::validate_prometheus(prom, &err)) << err;
  EXPECT_NE(prom.find("yhccl_coll_latency_seconds_bucket"), std::string::npos);
  EXPECT_NE(prom.find("yhccl_sync_barriers_total"), std::string::npos);

  // Garbage never validates.
  EXPECT_FALSE(ym::validate_metrics_json(bench::Json::object(), &err));
  std::string wrong_tag = j.dump();
  const std::size_t tag_at = wrong_tag.find(ym::kMetricsSchema);
  ASSERT_NE(tag_at, std::string::npos);
  wrong_tag.replace(tag_at, std::strlen(ym::kMetricsSchema),
                    "yhccl-metrics/9");
  EXPECT_FALSE(
      ym::validate_metrics_json(bench::Json::parse(wrong_tag), &err));
  EXPECT_FALSE(ym::validate_prometheus("yhccl_undeclared 1\n", &err));
  EXPECT_FALSE(
      ym::validate_prometheus("# TYPE x counter\nx nope\n", &err));
  EXPECT_FALSE(ym::validate_prometheus("# TYPE x teapot\n", &err));

  // Merge: counters double, gauges stay (max), result still validates.
  ym::Snapshot merged = s;
  merged.merge(s);
  EXPECT_EQ(merged.team.runs, 2 * s.team.runs);
  EXPECT_EQ(merged.team.epoch, s.team.epoch);
  EXPECT_EQ(merged.ranks[0].barriers, 2 * s.ranks[0].barriers);
  EXPECT_TRUE(ym::validate_metrics_json(merged.to_json(), &err)) << err;

  // The renderer produces a non-trivial frame for a live snapshot.
  const std::string frame = ym::render_top(s, nullptr, /*color=*/false);
  EXPECT_NE(frame.find("rank"), std::string::npos);
  EXPECT_NE(frame.find("allreduce"), std::string::npos);
}

TEST(MetricsExport, MirrorSeqlockRoundTrips) {
  std::vector<unsigned char> seg(1 << 16, 0);
  const std::string payload = "{\"hello\": 1}";
  EXPECT_TRUE(ym::mirror_publish(seg.data(), seg.size(), payload));
  std::string out;
  EXPECT_TRUE(ym::mirror_read(seg.data(), seg.size(), out));
  EXPECT_EQ(out, payload);
  // Oversized payloads are refused, the previous content stays readable.
  const std::string huge(seg.size(), 'x');
  EXPECT_FALSE(ym::mirror_publish(seg.data(), seg.size(), huge));
  EXPECT_TRUE(ym::mirror_read(seg.data(), seg.size(), out));
  EXPECT_EQ(out, payload);
}

// ---- straggler detection ----------------------------------------------------

TEST(MetricsStraggler, DetectorFlagsInjectedStall) {
  auto team = make_team(Backend::threads, 4, 2, ym::Mode::on,
                        trace::Mode::spans);
  // Rank 2 stalls 80 ms at its 4th barrier arrival; everyone else arrives
  // on time.  The deterministic schedule gives the detector 8 full-team
  // ordinals to group.
  team->set_fault_plan(rt::FaultPlan::parse("stall@barrier:rank=2:ms=80:iter=3"));
  team->run([](rt::RankCtx& ctx) {
    for (int i = 0; i < 8; ++i) ctx.barrier();
  });

  const ym::StragglerReport rep = team->straggler_check();
  EXPECT_GE(rep.ordinals, 4);
  ASSERT_EQ(rep.flagged.size(), 1u) << "exactly the stalled rank";
  EXPECT_EQ(rep.flagged[0], 2);
  double dev2 = 0;
  for (const auto& v : rep.ranks)
    if (v.rank == 2) dev2 = v.mean_dev_seconds;
  EXPECT_GT(dev2, 2e-4);  // well past the detector floor

  // The flag is counted once and lands as a flight-recorder instant.
  const ym::Snapshot s = ym::Snapshot::capture(*team->metrics_buffer());
  EXPECT_EQ(s.team.straggler_flags, 1u);
  team->straggler_check();  // level-triggered detector, edge-triggered count
  const ym::Snapshot s2 = ym::Snapshot::capture(*team->metrics_buffer());
  EXPECT_EQ(s2.team.straggler_flags, 1u);

  auto* tb = team->trace_buffer();
  ASSERT_NE(tb, nullptr);
  bool saw_instant = false;
  const int ring = tb->control_ring();
  for (std::uint64_t i = tb->first_kept(ring); i < tb->count(ring); ++i) {
    const trace::Rec r = tb->read(ring, i);
    if (r.phase == static_cast<std::uint8_t>(trace::Phase::straggler) &&
        r.arg == 2)
      saw_instant = true;
  }
  EXPECT_TRUE(saw_instant);
}

TEST(MetricsStraggler, QuietTeamFlagsNobody) {
  auto team = make_team(Backend::threads, 4, 2, ym::Mode::on);
  team->run([](rt::RankCtx& ctx) {
    for (int i = 0; i < 8; ++i) ctx.barrier();
  });
  const ym::StragglerReport rep = team->straggler_check();
  EXPECT_TRUE(rep.flagged.empty());
  const ym::Snapshot s = ym::Snapshot::capture(*team->metrics_buffer());
  EXPECT_EQ(s.team.straggler_flags, 0u);
}

// ---- serve mode: sampler files + live mirror --------------------------------

TEST(MetricsServe, SamplerExportsAndMirrorAttach) {
  const std::string dir = fresh_tmpdir("serve");
  ScopedEnv e1("YHCCL_METRICS_DIR", dir.c_str());
  ScopedEnv e2("YHCCL_METRICS_INTERVAL_MS", "50");
  {
    auto team = make_team(Backend::threads, 4, 2, ym::Mode::serve);
    team->run(run_schedule);
    // Let the sampler tick at least once with data in the registry.
    timespec ts{0, 150 * 1'000'000L};
    nanosleep(&ts, nullptr);

    // External attach: the shm mirror serves a validating snapshot.
    auto mirror = rt::ShmRegion::open_named(ym::mirror_shm_name(::getpid()),
                                            ym::kMirrorBytes);
    std::string text, err;
    ASSERT_TRUE(ym::mirror_read(mirror.data(), mirror.size(), text));
    const bench::Json j = bench::Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_TRUE(ym::validate_metrics_json(j, &err)) << err;
    const ym::Snapshot live = ym::Snapshot::from_json(j);
    EXPECT_EQ(live.nranks, 4);
    EXPECT_FALSE(ym::render_top(live).empty());

    // The live file pair refreshes in place.
    std::string jerr;
    const bench::Json lj = bench::load_json_file(
        dir + "/yhccl_metrics_" + std::to_string(::getpid()) + "_live.json",
        &jerr);
    ASSERT_TRUE(jerr.empty()) << jerr;
    EXPECT_TRUE(ym::validate_metrics_json(lj, &err)) << err;
  }
  // Teardown leaves a final numbered snapshot + exposition pair behind.
  bool have_final_json = false, have_final_prom = false;
  std::string err;
  for (const std::string& p : dir_entries(dir, ".json"))
    if (p.find("_live") == std::string::npos) {
      have_final_json = true;
      EXPECT_TRUE(ym::validate_metrics_json(bench::load_json_file(p), &err))
          << p << ": " << err;
    }
  for (const std::string& p : dir_entries(dir, ".prom"))
    if (p.find("_live") == std::string::npos) {
      have_final_prom = true;
      EXPECT_TRUE(ym::validate_prometheus(slurp(p), &err)) << p << ": " << err;
    }
  EXPECT_TRUE(have_final_json);
  EXPECT_TRUE(have_final_prom);
}

// ---- trace-dir mkdir fix (satellite) ----------------------------------------

TEST(TraceDirExport, MissingDirectoryIsCreated) {
  const std::string dir = fresh_tmpdir("trace") + "/nested/deeper";
  ScopedEnv e("YHCCL_TRACE_DIR", dir.c_str());
  {
    auto team = make_team(Backend::threads, 2, 1, ym::Mode::off,
                          trace::Mode::spans);
    team->run([](rt::RankCtx& ctx) { ctx.barrier(); });
  }
  // Pre-fix the chrome export was silently dropped; now the directory is
  // created on demand and the harvest lands.
  const std::string path =
      dir + "/yhccl_trace_" + std::to_string(::getpid()) + ".json";
  struct stat st {};
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
}

}  // namespace
