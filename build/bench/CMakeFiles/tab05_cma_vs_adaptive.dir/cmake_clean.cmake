file(REMOVE_RECURSE
  "CMakeFiles/tab05_cma_vs_adaptive.dir/tab05_cma_vs_adaptive.cpp.o"
  "CMakeFiles/tab05_cma_vs_adaptive.dir/tab05_cma_vs_adaptive.cpp.o.d"
  "tab05_cma_vs_adaptive"
  "tab05_cma_vs_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_cma_vs_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
