file(REMOVE_RECURSE
  "CMakeFiles/test_coll_correctness.dir/test_coll_correctness.cpp.o"
  "CMakeFiles/test_coll_correctness.dir/test_coll_correctness.cpp.o.d"
  "test_coll_correctness"
  "test_coll_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
