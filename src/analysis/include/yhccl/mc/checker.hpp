// Stateless model checker for the sync layer (docs/analysis.md §MC).
//
// mc::explore() runs a small protocol Spec — 2..4 model ranks as ucontext
// fibers on one OS thread — and exhaustively enumerates
//
//   * scheduling choices: which rank performs its next pending atomic op,
//     pruned with dynamic partial-order reduction + sleep sets, and
//   * reads-from choices: which modification-order predecessor each atomic
//     load observes, among the candidates the C++ memory model permits for
//     the relaxed/acquire/release orders the code actually uses.
//
// Violations (harness mc::require failures, plain-memory data races,
// deadlocks / lost wakeups, uncaught exceptions) carry a replayable
// schedule string; mc::replay() re-executes one schedule deterministically,
// optionally with the flight recorder attached (see
// src/analysis/mc/protocols.cpp::counterexample_flight).
//
// Only meaningful in -DYHCCL_MC=ON builds; the header is empty otherwise.
#pragma once

#ifdef YHCCL_MC

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "yhccl/mc/atomic.hpp"

namespace yhccl::mc {

struct Options {
  long max_execs = 200000;     ///< executions before giving up (incomplete)
  long max_steps = 20000;      ///< per-execution step cap (runaway guard)
  double max_seconds = 30.0;   ///< wall-clock exploration budget
  WeakPoint mutation = WeakPoint::none;  ///< seeded weakening to apply
  bool stop_at_first = true;   ///< stop exploring at the first violation

  /// CI knobs: $YHCCL_MC_MAX_EXECS, $YHCCL_MC_BUDGET (seconds).
  static Options from_env();
};

struct Violation {
  std::string kind;      ///< "assert" | "race" | "deadlock" | "exception"
  std::string message;
  std::string schedule;  ///< replayable: pass to mc::replay()
};

struct Result {
  bool complete = false;  ///< state space exhausted within budget
  long execs = 0;         ///< executions explored
  long steps = 0;         ///< total scheduling steps
  long truncated = 0;     ///< executions cut off by max_steps
  double seconds = 0.0;
  std::vector<Violation> violations;

  bool clean() const noexcept { return complete && violations.empty(); }
  bool caught() const noexcept { return !violations.empty(); }
};

/// A checkable protocol instance.  reset() reinitialises the shared state
/// (runs outside the session: plain execution), body(rank) is the per-rank
/// protocol, check_final() runs after every rank finished.  Bodies use the
/// production sync primitives directly; assertions use mc::require.
struct Spec {
  int nthreads = 2;
  std::function<void()> reset;
  std::function<void(int)> body;
  std::function<void()> check_final;
};

/// Replay environment: exempts an address range from interception (the
/// flight-recorder ring lives there) and observes fiber switches (tid, or
/// -1 when control returns to the scheduler) so the caller can swap
/// thread-local trace contexts per model rank.
struct ReplayEnv {
  const void* passthrough = nullptr;
  std::size_t passthrough_bytes = 0;
  std::function<void(int)> on_resume;
};

/// Exhaustive DPOR + sleep-set + reads-from exploration.
Result explore(const Spec& spec, const Options& opt = {});

/// Deterministically re-execute one schedule string.
Result replay(const Spec& spec, const std::string& schedule,
              const Options& opt = {}, const ReplayEnv* env = nullptr);

/// Harness assertion: records a violation with the current schedule and
/// aborts the executing fiber.  Usable from Spec bodies and check_final.
void require(bool ok, const char* msg);

/// Cooperative yield for harness-level spin loops (rt::SpinGuard already
/// yields via its model-checker early-out; this is for bare loops).
void spin_pause();

/// Pretty names for addresses in violation messages ("sense", "tail", ...).
void set_label(const void* addr, std::size_t bytes, std::string name);
void clear_labels();

}  // namespace yhccl::mc

#endif  // YHCCL_MC
