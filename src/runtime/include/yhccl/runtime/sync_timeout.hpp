// Watchdog for the spin loops: collectives synchronize with flags and
// barriers, so a dead or deadlocked peer rank would hang every other rank
// forever.  All spin loops in the runtime consult a process-wide timeout
// (default 120 s) and raise yhccl::Error when it expires — failures
// surface as exceptions instead of silent hangs, which also makes
// failure-injection testable.
#pragma once

#include "yhccl/mc/atomic.hpp"

namespace yhccl::rt {

namespace detail {
inline mc::atomic<double> g_sync_timeout{120.0};
}

/// Set the process-wide synchronization timeout in seconds
/// (<= 0 disables the watchdog).  Applies to barriers, progress-flag
/// waits and pt2pt FIFO waits.
inline void set_sync_timeout(double seconds) noexcept {
  detail::g_sync_timeout.store(seconds, std::memory_order_relaxed);
}

inline double sync_timeout() noexcept {
  return detail::g_sync_timeout.load(std::memory_order_relaxed);
}

/// RAII override, used by tests.
class ScopedSyncTimeout {
 public:
  explicit ScopedSyncTimeout(double seconds) : prev_(sync_timeout()) {
    set_sync_timeout(seconds);
  }
  ~ScopedSyncTimeout() { set_sync_timeout(prev_); }
  ScopedSyncTimeout(const ScopedSyncTimeout&) = delete;
  ScopedSyncTimeout& operator=(const ScopedSyncTimeout&) = delete;

 private:
  double prev_;
};

}  // namespace yhccl::rt
