// Quickstart: spin up a shared-memory rank team and run YHCCL collectives.
//
//   $ ./examples/quickstart [nranks] [nsockets]
//
// Demonstrates the public API end to end: team creation, the SPMD run
// region, the algorithm-switching all-reduce, an explicit algorithm arm,
// and the per-node DAV instrumentation that backs the paper's Tables 1-3.
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "yhccl/coll/coll.hpp"
#include "yhccl/model/dav_model.hpp"
#include "yhccl/runtime/thread_team.hpp"

using namespace yhccl;

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 4;
  const int m = argc > 2 ? std::atoi(argv[2]) : 2;

  // 1. Create a team: p ranks over m (virtual) sockets sharing one memory
  //    window.  ThreadTeam backs ranks with threads; ProcessTeam (same
  //    API) forks real processes.
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  rt::ThreadTeam team(cfg);
  std::printf("team: %d ranks, %d sockets, cache %s\n", p, m,
              cfg.cache.describe().c_str());

  // 2. Each rank owns private buffers, exactly like an MPI process.
  const std::size_t count = 1 << 20;  // 8 MB of doubles
  std::vector<std::vector<double>> send(p), recv(p);
  for (int r = 0; r < p; ++r) {
    send[r].assign(count, 1.0 + r);
    recv[r].assign(count, 0.0);
  }

  // 3. SPMD region: every rank calls the collective, like MPI_Allreduce.
  //    coll::allreduce picks the paper's algorithm automatically
  //    (two-level DPML for small messages, socket-aware movement-avoiding
  //    reduction for large ones) and adapts non-temporal stores to the
  //    working-set size.
  team.run([&](rt::RankCtx& ctx) {
    coll::allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                    count, Datatype::f64, ReduceOp::sum);
  });

  const double expect = p * (p + 1) / 2.0;
  std::printf("allreduce: recv[0][42] = %.1f (expected %.1f)\n",
              recv[0][42], expect);

  // 4. Forcing a specific arm and copy policy (useful for experiments).
  coll::CollOpts opts;
  opts.algorithm = coll::Algorithm::ma_flat;
  opts.policy = copy::CopyPolicy::always_temporal;
  team.run([&](rt::RankCtx& ctx) {
    coll::allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                    count, Datatype::f64, ReduceOp::sum, opts);
  });

  // 5. Every copy/reduce kernel is DAV-instrumented: compare the measured
  //    per-node traffic of that run against the paper's Table 2 formula.
  const auto measured = team.total_dav().total();
  const auto model = model::impl::ma_allreduce(count * 8, p);
  std::printf("flat-MA allreduce DAV: measured %.1f MB, model %.1f MB (%s)\n",
              measured / 1e6, model / 1e6,
              measured == model ? "exact" : "differs: ragged geometry");

  // 6. The other collectives share the same shapes.
  std::vector<std::vector<double>> gathered(
      p, std::vector<double>(count * static_cast<std::size_t>(p)));
  team.run([&](rt::RankCtx& ctx) {
    const int r = ctx.rank();
    coll::broadcast(ctx, recv[r].data(), count, Datatype::f64, /*root=*/0);
    coll::reduce_scatter(ctx, send[r].data(), recv[r].data(),
                         count / static_cast<std::size_t>(p), Datatype::f64,
                         ReduceOp::sum);
    coll::allgather(ctx, send[r].data(), gathered[r].data(),
                    count / static_cast<std::size_t>(p), Datatype::f64);
  });
  std::printf("broadcast/reduce-scatter/allgather: done, gathered[%d][0] = "
              "%.1f\n",
              p - 1, gathered[p - 1][0]);
  return 0;
}
