// Table 4 reproduction: sliced-copy bandwidth of memmove vs t-copy vs
// nt-copy (STREAM COPY convention: 2 bytes of traffic per payload byte).
//
// Paper (NodeA, 16 GB array): nt-copy ~236 GB/s vs t-copy ~152 GB/s at
// 512 KB/1 MB slices (~50% better), and memmove catching up only at 2 MB
// slices where its internal threshold flips to NT stores.  Absolute
// numbers here reflect this VM; the *ordering* is the reproduction target.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "yhccl/apps/stream.hpp"

using namespace yhccl;
using namespace yhccl::apps::stream;
namespace yb = yhccl::bench;

namespace {

const char* kind_name(CopyKind k) {
  switch (k) {
    case CopyKind::memmove_libc: return "memmove";
    case CopyKind::memmove_model: return "memmove-model";
    case CopyKind::temporal: return "t-copy";
    case CopyKind::non_temporal: return "nt-copy";
    case CopyKind::erms: return "erms";
  }
  return "?";
}

}  // namespace

int main() {
  const std::size_t total = static_cast<std::size_t>(
      (256u << 20) * yb::bench_scale());
  yb::Session session("tab04_stream_slice_copy");
  const auto& policy = session.policy();

  std::printf("Table 4 — sliced STREAM copy, %s array\n",
              yb::human_size(total).c_str());
  std::printf("%-10s %10s %12s %12s\n", "kind", "slice", "time(ms)",
              "GB/s");

  for (CopyKind kind : {CopyKind::memmove_libc, CopyKind::temporal,
                        CopyKind::non_temporal, CopyKind::erms}) {
    for (std::size_t slice : {std::size_t{512} << 10, std::size_t{1} << 20,
                              std::size_t{2} << 20}) {
      // Single-threaded copy cells: sample run_sliced_copy directly under
      // the RunPolicy repetition/CI/budget discipline.
      std::vector<double> samples;
      double spent = 0;
      const int iters = policy.warmup + policy.max_reps;
      for (int it = 0; it < iters; ++it) {
        const auto r = run_sliced_copy(total, slice, kind, 1);
        if (it >= policy.warmup) samples.push_back(r.seconds);
        spent += r.seconds;
        if (static_cast<int>(samples.size()) >= policy.min_reps) {
          const auto sum = yb::summarize(samples, policy.outlier_k);
          if (sum.rel_ci() <= policy.target_rel_ci ||
              spent > policy.budget_s)
            break;
        }
      }
      const auto sum = yb::summarize(samples, policy.outlier_k);

      yb::Series se;
      se.bench = session.name();
      se.collective = "stream-copy";
      se.algorithm = std::string(kind_name(kind)) + "@" +
                     yb::human_size(slice);
      se.ranks = 1;
      se.sockets = 1;
      se.bytes = total;
      se.time = sum;
      // STREAM convention: 2 bytes of traffic per payload byte.
      se.dab = sum.median > 0
                   ? 2.0 * static_cast<double>(total) / sum.median
                   : 0.0;
      se.isa = "-";
      session.add(se);

      std::printf("%-10s %10s %12.2f %12.1f\n", kind_name(kind),
                  yb::human_size(slice).c_str(), sum.median * 1e3,
                  se.dab / 1e9);
    }
  }
  session.write();
  return 0;
}
