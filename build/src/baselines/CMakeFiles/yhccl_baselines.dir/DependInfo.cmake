
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/binomial.cpp" "src/baselines/CMakeFiles/yhccl_baselines.dir/binomial.cpp.o" "gcc" "src/baselines/CMakeFiles/yhccl_baselines.dir/binomial.cpp.o.d"
  "/root/repo/src/baselines/dpml.cpp" "src/baselines/CMakeFiles/yhccl_baselines.dir/dpml.cpp.o" "gcc" "src/baselines/CMakeFiles/yhccl_baselines.dir/dpml.cpp.o.d"
  "/root/repo/src/baselines/rabenseifner.cpp" "src/baselines/CMakeFiles/yhccl_baselines.dir/rabenseifner.cpp.o" "gcc" "src/baselines/CMakeFiles/yhccl_baselines.dir/rabenseifner.cpp.o.d"
  "/root/repo/src/baselines/rg_tree.cpp" "src/baselines/CMakeFiles/yhccl_baselines.dir/rg_tree.cpp.o" "gcc" "src/baselines/CMakeFiles/yhccl_baselines.dir/rg_tree.cpp.o.d"
  "/root/repo/src/baselines/ring.cpp" "src/baselines/CMakeFiles/yhccl_baselines.dir/ring.cpp.o" "gcc" "src/baselines/CMakeFiles/yhccl_baselines.dir/ring.cpp.o.d"
  "/root/repo/src/baselines/xpmem_direct.cpp" "src/baselines/CMakeFiles/yhccl_baselines.dir/xpmem_direct.cpp.o" "gcc" "src/baselines/CMakeFiles/yhccl_baselines.dir/xpmem_direct.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coll/CMakeFiles/yhccl_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/yhccl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/copy/CMakeFiles/yhccl_copy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
