// Correctness sweeps for every YHCCL collective and algorithm arm, across
// rank counts, socket layouts, message sizes (including ragged tails and
// single elements), datatypes, reduce ops, and copy policies.  Results are
// compared against a sequential reference reduction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "yhccl/coll/coll.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::cached_team;
using test::check_reduced;
using test::fill_buffer;

namespace {

struct TeamShape {
  int p, m;
};

// {3, 2} puts a singleton socket next to a multi-rank one: a rank with no
// intra-socket peers must still match the team-uniform barriers of the
// socket-aware arms (regression: DPML stage-1 barrier deadlock).
const TeamShape kShapes[] = {{1, 1}, {2, 1}, {3, 1}, {4, 1}, {4, 2},
                             {6, 2}, {8, 2}, {8, 4}, {5, 2}, {3, 2}};

const std::size_t kCounts[] = {1, 5, 64, 1023, 4096, 100000};

struct RedCase {
  Algorithm alg;
  TeamShape shape;
  std::size_t count;
  Datatype d;
  ReduceOp op;
  std::string name() const {
    std::string s = std::string(algorithm_name(alg)) + "_p" +
                    std::to_string(shape.p) + "m" + std::to_string(shape.m) +
                    "_n" + std::to_string(count) + "_" +
                    std::string(dtype_name(d)) + "_" +
                    std::string(op_name(op));
    for (char& c : s) {
      if (c == '-') c = '_';
    }
    return s;
  }
};

std::vector<RedCase> reduction_cases() {
  const std::pair<Datatype, ReduceOp> dtops[] = {
      {Datatype::f32, ReduceOp::sum}, {Datatype::f64, ReduceOp::sum},
      {Datatype::i32, ReduceOp::sum}, {Datatype::i64, ReduceOp::max},
      {Datatype::i32, ReduceOp::min}, {Datatype::u8, ReduceOp::bor},
      {Datatype::i32, ReduceOp::band}, {Datatype::f64, ReduceOp::prod}};
  std::vector<RedCase> cases;
  for (Algorithm alg : {Algorithm::automatic, Algorithm::ma_flat,
                        Algorithm::ma_socket_aware, Algorithm::dpml_two_level})
    for (const auto& shape : kShapes)
      for (std::size_t count : kCounts)
        for (const auto& [d, op] : dtops) {
          // Keep the sweep affordable: the full dtype/op matrix only at one
          // representative size per shape; f64 sum everywhere.
          if (count != 4096 && !(d == Datatype::f64 && op == ReduceOp::sum) &&
              !(d == Datatype::f32 && op == ReduceOp::sum))
            continue;
          cases.push_back({alg, shape, count, d, op});
        }
  return cases;
}

class ReductionSweep : public ::testing::TestWithParam<RedCase> {};

CollOpts opts_for(const RedCase& c) {
  CollOpts o;
  o.algorithm = c.alg;
  o.slice_max = 16u << 10;  // small Imax => several rounds at larger counts
  return o;
}

TEST_P(ReductionSweep, Allreduce) {
  const auto c = GetParam();
  auto& team = cached_team(c.shape.p, c.shape.m);
  const std::size_t e = dtype_size(c.d);
  std::vector<std::vector<std::uint8_t>> send(c.shape.p),
      recv(c.shape.p);
  for (int r = 0; r < c.shape.p; ++r) {
    send[r].resize(c.count * e);
    recv[r].assign(c.count * e, 0xcd);
    fill_buffer(send[r].data(), c.count, c.d, r, c.op);
  }
  const auto o = opts_for(c);
  team.run([&](RankCtx& ctx) {
    allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(), c.count,
              c.d, c.op, o);
  });
  for (int r = 0; r < c.shape.p; ++r)
    EXPECT_TRUE(
        check_reduced(recv[r].data(), c.count, c.d, c.shape.p, c.op))
        << "rank " << r;
}

TEST_P(ReductionSweep, ReduceScatter) {
  const auto c = GetParam();
  auto& team = cached_team(c.shape.p, c.shape.m);
  const std::size_t e = dtype_size(c.d);
  const int p = c.shape.p;
  // `count` is the per-rank block size for reduce-scatter.
  std::vector<std::vector<std::uint8_t>> send(p), recv(p);
  for (int r = 0; r < p; ++r) {
    send[r].resize(c.count * e * p);
    recv[r].assign(c.count * e, 0xcd);
    fill_buffer(send[r].data(), c.count * p, c.d, r, c.op);
  }
  const auto o = opts_for(c);
  team.run([&](RankCtx& ctx) {
    reduce_scatter(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                   c.count, c.d, c.op, o);
  });
  for (int r = 0; r < p; ++r)
    EXPECT_TRUE(check_reduced(recv[r].data(), c.count, c.d, p, c.op,
                              /*index_offset=*/c.count * r))
        << "rank " << r;
}

TEST_P(ReductionSweep, ReduceToEveryRoot) {
  const auto c = GetParam();
  if (c.count > 4096) GTEST_SKIP() << "root sweep capped at medium sizes";
  auto& team = cached_team(c.shape.p, c.shape.m);
  const std::size_t e = dtype_size(c.d);
  const int p = c.shape.p;
  std::vector<std::vector<std::uint8_t>> send(p), recv(p);
  for (int r = 0; r < p; ++r) {
    send[r].resize(c.count * e);
    recv[r].assign(c.count * e, 0xcd);
    fill_buffer(send[r].data(), c.count, c.d, r, c.op);
  }
  const auto o = opts_for(c);
  for (int root = 0; root < p; ++root) {
    for (int r = 0; r < p; ++r) std::fill(recv[r].begin(), recv[r].end(), 0xcd);
    team.run([&](RankCtx& ctx) {
      reduce(ctx, send[ctx.rank()].data(),
             ctx.rank() == root ? recv[ctx.rank()].data() : nullptr, c.count,
             c.d, c.op, root, o);
    });
    EXPECT_TRUE(check_reduced(recv[root].data(), c.count, c.d, p, c.op))
        << "root " << root;
    // Non-roots untouched.
    for (int r = 0; r < p; ++r) {
      if (r != root) {
        EXPECT_EQ(recv[r][0], 0xcd) << "rank " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReductionSweep,
                         ::testing::ValuesIn(reduction_cases()),
                         [](const auto& info) { return info.param.name(); });

// ---- broadcast / allgather sweeps -----------------------------------------

struct MoveCase {
  TeamShape shape;
  std::size_t count;
  Datatype d;
  copy::CopyPolicy policy;
  std::string name() const {
    return std::string("p") + std::to_string(shape.p) + "m" +
           std::to_string(shape.m) + "_n" + std::to_string(count) + "_" +
           std::string(dtype_name(d)) + "_" +
           (policy == copy::CopyPolicy::adaptive
                ? "adaptive"
                : policy == copy::CopyPolicy::always_nt ? "nt" : "t");
  }
};

std::vector<MoveCase> move_cases() {
  std::vector<MoveCase> cases;
  for (const auto& shape : kShapes)
    for (std::size_t count : kCounts)
      for (auto pol : {copy::CopyPolicy::adaptive,
                       copy::CopyPolicy::always_nt,
                       copy::CopyPolicy::always_temporal}) {
        if (pol != copy::CopyPolicy::adaptive && count != 100000) continue;
        cases.push_back({shape, count, Datatype::f32, pol});
      }
  return cases;
}

class MovementSweep : public ::testing::TestWithParam<MoveCase> {};

TEST_P(MovementSweep, BroadcastFromEveryRoot) {
  const auto c = GetParam();
  auto& team = cached_team(c.shape.p, c.shape.m);
  const std::size_t e = dtype_size(c.d);
  const int p = c.shape.p;
  CollOpts o;
  o.policy = c.policy;
  o.slice_max = 16u << 10;
  std::vector<std::vector<std::uint8_t>> buf(p);
  const int roots_to_try = c.count == 4096 ? p : 1;
  for (int root = 0; root < roots_to_try; ++root) {
    for (int r = 0; r < p; ++r) {
      buf[r].assign(c.count * e, 0);
      fill_buffer(buf[r].data(), c.count, c.d, r == root ? 99 : r,
                  ReduceOp::sum);
    }
    team.run([&](RankCtx& ctx) {
      broadcast(ctx, buf[ctx.rank()].data(), c.count, c.d, root, o);
    });
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(buf[r], buf[root]) << "rank " << r << " root " << root;
  }
}

TEST_P(MovementSweep, AllgatherCollectsRankOrder) {
  const auto c = GetParam();
  auto& team = cached_team(c.shape.p, c.shape.m);
  const std::size_t e = dtype_size(c.d);
  const int p = c.shape.p;
  CollOpts o;
  o.policy = c.policy;
  o.slice_max = 16u << 10;
  std::vector<std::vector<std::uint8_t>> send(p), recv(p);
  for (int r = 0; r < p; ++r) {
    send[r].resize(c.count * e);
    recv[r].assign(c.count * e * p, 0);
    fill_buffer(send[r].data(), c.count, c.d, r, ReduceOp::sum);
  }
  team.run([&](RankCtx& ctx) {
    allgather(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(), c.count,
              c.d, o);
  });
  for (int r = 0; r < p; ++r)
    for (int a = 0; a < p; ++a)
      EXPECT_EQ(0, std::memcmp(recv[r].data() + a * c.count * e,
                               send[a].data(), c.count * e))
          << "rank " << r << " block " << a;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MovementSweep,
                         ::testing::ValuesIn(move_cases()),
                         [](const auto& info) { return info.param.name(); });

// ---- semantics edge cases ---------------------------------------------------

TEST(CollEdge, ZeroCountIsANoOp) {
  auto& team = cached_team(4, 2);
  team.run([&](RankCtx& ctx) {
    allreduce(ctx, nullptr, nullptr, 0, Datatype::f64, ReduceOp::sum);
    reduce_scatter(ctx, nullptr, nullptr, 0, Datatype::f64, ReduceOp::sum);
    broadcast(ctx, nullptr, 0, Datatype::f64, 0);
    allgather(ctx, nullptr, nullptr, 0, Datatype::f64);
    ctx.barrier();
  });
}

TEST(CollEdge, InvalidOpDatatypeComboIsRejected) {
  auto& team = cached_team(2, 1);
  EXPECT_THROW(team.run([&](RankCtx& ctx) {
                 float x = 0, y = 0;
                 allreduce(ctx, &x, &y, 1, Datatype::f32, ReduceOp::band);
               }),
               Error);
}

TEST(CollEdge, BackToBackCollectivesReuseScratchSafely) {
  auto& team = cached_team(4, 2);
  const std::size_t n = 50000;
  std::vector<std::vector<double>> send(4, std::vector<double>(n)),
      recv(4, std::vector<double>(n));
  for (int r = 0; r < 4; ++r) fill_buffer(send[r].data(), n, Datatype::f64, r, ReduceOp::sum);
  CollOpts o;
  o.slice_max = 8u << 10;
  team.run([&](RankCtx& ctx) {
    for (int it = 0; it < 20; ++it) {
      ma_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(), n,
                   Datatype::f64, ReduceOp::sum, o);
      socket_ma_allreduce(ctx, send[ctx.rank()].data(),
                          recv[ctx.rank()].data(), n, Datatype::f64,
                          ReduceOp::sum, o);
    }
  });
  for (int r = 0; r < 4; ++r)
    EXPECT_TRUE(check_reduced(recv[r].data(), n, Datatype::f64, 4,
                              ReduceOp::sum));
}

TEST(CollEdge, SwitchingRespectsThresholdAndTopology) {
  auto& team2 = cached_team(4, 2);
  team2.run([&](RankCtx& ctx) {
    CollOpts o;
    if (choose_reduction_algorithm(ctx, 1024, o) !=
        Algorithm::dpml_two_level)
      throw Error("small message should pick dpml_two_level");
    if (choose_reduction_algorithm(ctx, 10u << 20, o) !=
        Algorithm::ma_socket_aware)
      throw Error("large message on 2 sockets should pick socket-MA");
    o.algorithm = Algorithm::ma_flat;
    if (choose_reduction_algorithm(ctx, 10, o) != Algorithm::ma_flat)
      throw Error("forced algorithm must be honoured");
  });
  auto& team1 = cached_team(4, 1);
  team1.run([&](RankCtx& ctx) {
    CollOpts o;
    if (choose_reduction_algorithm(ctx, 10u << 20, o) != Algorithm::ma_flat)
      throw Error("single socket should pick flat MA");
  });
}

TEST(CollEdge, DpmlFlatModeMatchesReference) {
  auto& team = cached_team(6, 2);
  const std::size_t n = 30000;
  std::vector<std::vector<float>> send(6, std::vector<float>(n)),
      recv(6, std::vector<float>(n));
  for (int r = 0; r < 6; ++r)
    fill_buffer(send[r].data(), n, Datatype::f32, r, ReduceOp::sum);
  CollOpts o;
  o.dpml_flat = true;  // the paper's original single-level DPML baseline
  team.run([&](RankCtx& ctx) {
    dpml_two_level_allreduce(ctx, send[ctx.rank()].data(),
                             recv[ctx.rank()].data(), n, Datatype::f32,
                             ReduceOp::sum, o);
  });
  for (int r = 0; r < 6; ++r)
    EXPECT_TRUE(
        check_reduced(recv[r].data(), n, Datatype::f32, 6, ReduceOp::sum));
}

}  // namespace
