// CLI over the yhccl-bench/1 report tooling (src/bench/compare.cpp):
//
//   bench_compare check <report.json>
//       validate a report against the schema; exit 1 on any defect.
//   bench_compare merge <out.json> <in.json...>
//       concatenate per-binary reports into one (the BENCH_collectives.json
//       step of bench/run_collectives.sh); duplicate keys are fatal.
//   bench_compare diff <baseline.json> <candidate.json> [--verbose]
//       statistical + counter comparison; exit 1 unless the gate is clean
//       (no regressions, no counter drift).
//   bench_compare tuned <report.json> [--verbose]
//       auto-tuner gate: pair "switch-static" vs "switch-tuned" series
//       within one report (bench/ablation_tuner emits them); exit 1 when
//       any tuned cell is significantly slower than its static partner.
#include <cstdio>
#include <string>
#include <vector>

#include "yhccl/bench/compare.hpp"
#include "yhccl/bench/harness.hpp"

namespace yb = yhccl::bench;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare check <report.json>\n"
               "       bench_compare merge <out.json> <in.json...>\n"
               "       bench_compare diff <base.json> <cand.json> "
               "[--verbose]\n"
               "       bench_compare tuned <report.json> [--verbose]\n");
  return 2;
}

yb::Json load_or_die(const std::string& path, bool* ok) {
  std::string err;
  yb::Json j = yb::load_json_file(path, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 err.c_str());
    *ok = false;
  }
  return j;
}

int do_check(const std::string& path) {
  bool ok = true;
  const yb::Json j = load_or_die(path, &ok);
  if (!ok) return 1;
  std::vector<std::string> errors;
  if (yb::validate_report(j, errors)) {
    std::printf("%s: valid %s report, %zu series\n", path.c_str(),
                yb::kSchemaVersion,
                j.find("series") ? j.find("series")->size() : 0);
    return 0;
  }
  for (const auto& e : errors)
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
  return 1;
}

int do_merge(const std::string& out, const std::vector<std::string>& ins) {
  std::vector<yb::Json> parts;
  bool ok = true;
  for (const auto& path : ins) {
    yb::Json j = load_or_die(path, &ok);
    if (!ok) return 1;
    std::vector<std::string> errors;
    if (!yb::validate_report(j, errors)) {
      for (const auto& e : errors)
        std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
      return 1;
    }
    parts.push_back(std::move(j));
  }
  std::string err;
  const yb::Json merged = yb::merge_reports(parts, "collectives", &err);
  if (!err.empty()) {
    std::fprintf(stderr, "bench_compare merge: %s\n", err.c_str());
    return 1;
  }
  if (!yb::write_json_file(out, merged, &err)) {
    std::fprintf(stderr, "bench_compare merge: %s\n", err.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu series from %zu reports)\n", out.c_str(),
              merged.find("series") ? merged.find("series")->size() : 0,
              parts.size());
  return 0;
}

int do_diff(const std::string& base, const std::string& cand,
            bool verbose) {
  bool ok = true;
  const yb::Json b = load_or_die(base, &ok);
  const yb::Json c = load_or_die(cand, &ok);
  if (!ok) return 1;
  const auto validate = [](const std::string& path, const yb::Json& j) {
    std::vector<std::string> errors;
    if (yb::validate_report(j, errors)) return true;
    for (const auto& e : errors)
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
    return false;
  };
  if (!validate(base, b) || !validate(cand, c)) return 1;
  const yb::CompareResult r = yb::compare_reports(b, c);
  std::fputs(r.report(verbose).c_str(), stdout);
  return r.clean() ? 0 : 1;
}

int do_tuned(const std::string& path, bool verbose) {
  bool ok = true;
  const yb::Json j = load_or_die(path, &ok);
  if (!ok) return 1;
  std::vector<std::string> errors;
  if (!yb::validate_report(j, errors)) {
    for (const auto& e : errors)
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
    return 1;
  }
  const yb::CompareResult r = yb::compare_tuned(j);
  if (r.diffs.empty()) {
    std::fprintf(stderr,
                 "bench_compare tuned: %s has no switch-static/"
                 "switch-tuned series pairs\n",
                 path.c_str());
    return 1;
  }
  std::fputs(r.report(verbose).c_str(), stdout);
  return r.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string& mode = args[0];
  if (mode == "check" && args.size() == 2) return do_check(args[1]);
  if (mode == "merge" && args.size() >= 3)
    return do_merge(args[1], {args.begin() + 2, args.end()});
  if (mode == "diff" && (args.size() == 3 || args.size() == 4)) {
    const bool verbose = args.size() == 4 && args[3] == "--verbose";
    if (args.size() == 4 && !verbose) return usage();
    return do_diff(args[1], args[2], verbose);
  }
  if (mode == "tuned" && (args.size() == 2 || args.size() == 3)) {
    const bool verbose = args.size() == 3 && args[2] == "--verbose";
    if (args.size() == 3 && !verbose) return usage();
    return do_tuned(args[1], verbose);
  }
  return usage();
}
