// Failure-injection tests: a dead, diverged, or wedged peer rank must
// surface as a yhccl::Error on every surviving rank — never as a silent
// hang — and all survivors must report the *same* classified fault (kind,
// faulting rank, team epoch) via the shared abort word.
//
// Deterministic faults are injected through the YHCCL_FAULT layer
// (rt::FaultPlan / Team::set_fault_plan) instead of hand-rolled early
// returns; the legacy desertion tests remain as coverage for faults the
// injector does not model (a rank that simply leaves the SPMD function).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <vector>

#include "yhccl/coll/coll.hpp"
#include "yhccl/common/time.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "yhccl/runtime/sync_timeout.hpp"
#include "yhccl/runtime/thread_team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;

namespace {

// Fresh teams per test: aborted collectives leave torn synchronization
// state behind, which must not leak into other tests through a cache.
rt::ThreadTeam fresh_team(int p, int m) {
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  cfg.scratch_bytes = 8u << 20;
  cfg.shared_heap_bytes = 1u << 20;
  return rt::ThreadTeam(cfg);
}

// Every test must leave zero child processes behind: run() reaps all rank
// processes it forks, so a zombie here means the backend leaked one.
class FailureInjection : public ::testing::Test {
 protected:
  void TearDown() override {
    int status = 0;
    const pid_t z = waitpid(-1, &status, WNOHANG);
    EXPECT_TRUE(z == 0 || (z < 0 && errno == ECHILD))
        << "leaked child process " << z;
  }
};

TEST(SyncTimeout, DefaultIsEnabledAndOverridable) {
  EXPECT_GT(rt::sync_timeout(), 0.0);
  {
    rt::ScopedSyncTimeout scoped(1.5);
    EXPECT_DOUBLE_EQ(rt::sync_timeout(), 1.5);
  }
  EXPECT_NE(rt::sync_timeout(), 1.5);
}

TEST(SyncTimeout, EnvVariableAppliesAtTeamConstruction) {
  const double saved = rt::sync_timeout();
  ASSERT_EQ(setenv("YHCCL_SYNC_TIMEOUT", "7.5", 1), 0);
  { auto team = fresh_team(2, 1); }
  EXPECT_DOUBLE_EQ(rt::sync_timeout(), 7.5);
  unsetenv("YHCCL_SYNC_TIMEOUT");
  rt::set_sync_timeout(saved);
}

TEST(SyncTimeout, ConfigRouteWinsOverEnvironment) {
  const double saved = rt::sync_timeout();
  ASSERT_EQ(setenv("YHCCL_SYNC_TIMEOUT", "9.0", 1), 0);
  {
    rt::TeamConfig cfg;
    cfg.nranks = 2;
    cfg.scratch_bytes = 1u << 20;
    cfg.shared_heap_bytes = 1u << 20;
    cfg.sync_timeout = 3.25;
    rt::ThreadTeam team(cfg);
    EXPECT_DOUBLE_EQ(rt::sync_timeout(), 3.25);
  }
  unsetenv("YHCCL_SYNC_TIMEOUT");
  rt::set_sync_timeout(saved);
}

TEST(FaultPlanGrammar, ParsesFullSpecs) {
  const auto p = rt::FaultPlan::parse("die@barrier:rank=2:iter=3");
  EXPECT_EQ(p.action, rt::FaultPlan::Action::die);
  EXPECT_EQ(p.site, "barrier");
  EXPECT_EQ(p.rank, 2);
  EXPECT_EQ(p.iter, 3u);
  EXPECT_TRUE(p.active());

  const auto q = rt::FaultPlan::parse("stall@flag:rank=1:ms=50");
  EXPECT_EQ(q.action, rt::FaultPlan::Action::stall);
  EXPECT_EQ(q.site, "flag");
  EXPECT_EQ(q.rank, 1);
  EXPECT_DOUBLE_EQ(q.stall_ms, 50.0);

  const auto any = rt::FaultPlan::parse("die@slice");
  EXPECT_EQ(any.rank, -1);  // any rank
  EXPECT_EQ(any.iter, 0u);  // first hit

  EXPECT_FALSE(rt::FaultPlan{}.active());
}

TEST(FaultPlanGrammar, RejectsMalformedSpecs) {
  EXPECT_THROW(rt::FaultPlan::parse("die"), Error);
  EXPECT_THROW(rt::FaultPlan::parse("vanish@barrier"), Error);
  EXPECT_THROW(rt::FaultPlan::parse("die@"), Error);
  EXPECT_THROW(rt::FaultPlan::parse("die@barrier:rank"), Error);
  EXPECT_THROW(rt::FaultPlan::parse("die@barrier:rank=x"), Error);
  EXPECT_THROW(rt::FaultPlan::parse("die@barrier:bogus=1"), Error);
}

// ---- classification of un-injected faults (rank leaves the SPMD fn) --------

TEST_F(FailureInjection, DesertedBarrierThrowsOnSurvivors) {
  rt::ScopedSyncTimeout scoped(0.4);
  auto team = fresh_team(4, 2);
  try {
    team.run([&](rt::RankCtx& ctx) {
      if (ctx.rank() == 2) return;  // deserter skips the barrier
      ctx.barrier();
    });
    FAIL() << "survivors must not pass a deserted barrier";
  } catch (const Error& e) {
    EXPECT_EQ(e.fault_kind(), FaultKind::peer_dead);
    EXPECT_EQ(e.fault_rank(), 2);
    EXPECT_EQ(e.fault_epoch(), team.team_epoch());
  }
  // The next run() resets the per-run fault state (abort word, tombstones),
  // so mechanisms with monotone state (progress flags, pt2pt) still work:
  team.run([&](rt::RankCtx& ctx) {
    const auto seq = ctx.next_seq();
    ctx.step_publish(rt::RankCtx::step_value(seq, 1));
    ctx.step_wait((ctx.rank() + 1) % ctx.nranks(),
                  rt::RankCtx::step_value(seq, 1));
  });
}

TEST_F(FailureInjection, DeadNeighbourInFlagChainThrows) {
  rt::ScopedSyncTimeout scoped(0.4);
  auto team = fresh_team(3, 1);
  try {
    team.run([&](rt::RankCtx& ctx) {
      const auto seq = ctx.next_seq();
      if (ctx.rank() == 1) return;  // never publishes
      ctx.step_wait(1, rt::RankCtx::step_value(seq, 1));
    });
    FAIL() << "expected an abort";
  } catch (const Error& e) {
    EXPECT_EQ(e.fault_kind(), FaultKind::peer_dead);
    EXPECT_EQ(e.fault_rank(), 1);
  }
}

TEST_F(FailureInjection, AbandonedCollectiveThrowsNotHangs) {
  rt::ScopedSyncTimeout scoped(0.5);
  auto team = fresh_team(4, 2);
  const std::size_t n = 100000;
  std::vector<std::vector<double>> send(4, std::vector<double>(n, 1.0)),
      recv(4, std::vector<double>(n));
  EXPECT_THROW(team.run([&](rt::RankCtx& ctx) {
                 if (ctx.rank() == 3) return;  // dies before the collective
                 ma_allreduce(ctx, send[ctx.rank()].data(),
                              recv[ctx.rank()].data(), n, Datatype::f64,
                              ReduceOp::sum);
               }),
               Error);
}

TEST_F(FailureInjection, StarvedPt2PtReceiverThrows) {
  rt::ScopedSyncTimeout scoped(0.4);
  auto team = fresh_team(2, 1);
  std::vector<std::uint8_t> buf(1024);
  EXPECT_THROW(team.run([&](rt::RankCtx& ctx) {
                 if (ctx.rank() == 1) ctx.recv(0, buf.data(), buf.size());
                 // rank 0 never sends
               }),
               Error);
}

TEST_F(FailureInjection, DeadChildProcessSurfacesThroughWaitpid) {
  rt::ScopedSyncTimeout scoped(0.6);
  rt::TeamConfig cfg;
  cfg.nranks = 3;
  cfg.scratch_bytes = 1 << 20;
  cfg.shared_heap_bytes = 1 << 20;
  rt::ProcessTeam team(cfg);
  // Rank 1 exits cleanly (status 0) mid-protocol: the reap bookkeeping sees
  // nothing abnormal, but the survivors' watchdog pid-probes the vanished
  // process and classifies the expiry as its death.
  try {
    team.run([&](rt::RankCtx& ctx) {
      if (ctx.rank() == 1) _exit(0);
      ctx.barrier();
    });
    FAIL() << "expected an abort";
  } catch (const Error& e) {
    EXPECT_EQ(e.fault_kind(), FaultKind::peer_dead);
    EXPECT_EQ(e.fault_rank(), 1);
  }
}

// ---- injected faults (YHCCL_FAULT layer) -----------------------------------

TEST_F(FailureInjection, InjectedThreadDeathAbortsAllSurvivorsCoherently) {
  // Watchdog far above the asserted latency: detection must come from the
  // abort word raised at the death, not from each rank's own expiry.
  rt::ScopedSyncTimeout scoped(30.0);
  auto team = fresh_team(4, 2);
  team.set_fault_plan(rt::FaultPlan::parse("die@barrier:rank=2:iter=0"));

  std::atomic<int> caught{0};
  FaultKind kinds[4] = {};
  int ranks[4] = {-1, -1, -1, -1};
  std::uint64_t epochs[4] = {};
  double when[4] = {};
  const double t0 = wall_seconds();
  try {
    team.run([&](rt::RankCtx& ctx) {
      try {
        ctx.barrier();
        ctx.barrier();
      } catch (const Error& e) {
        const int r = ctx.rank();
        kinds[r] = e.fault_kind();
        ranks[r] = e.fault_rank();
        epochs[r] = e.fault_epoch();
        when[r] = wall_seconds();
        caught.fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected an abort";
  } catch (const Error& e) {
    EXPECT_EQ(e.fault_kind(), FaultKind::peer_dead);
    EXPECT_EQ(e.fault_rank(), 2);
    EXPECT_EQ(e.fault_epoch(), 1u);
  }
  const double elapsed = wall_seconds() - t0;
  EXPECT_EQ(caught.load(), 3);
  EXPECT_LT(elapsed, 5.0) << "survivors waited out the watchdog";
  double lo = 1e300, hi = 0;
  for (int r : {0, 1, 3}) {
    EXPECT_EQ(kinds[r], FaultKind::peer_dead) << "rank " << r;
    EXPECT_EQ(ranks[r], 2) << "rank " << r;
    EXPECT_EQ(epochs[r], 1u) << "rank " << r;
    lo = std::min(lo, when[r]);
    hi = std::max(hi, when[r]);
  }
  EXPECT_LT(hi - lo, 1.0) << "survivors did not leave together";
}

TEST_F(FailureInjection, InjectedProcessDeathDetectedAtReapLatency) {
  rt::ScopedSyncTimeout scoped(30.0);
  rt::TeamConfig cfg;
  cfg.nranks = 4;
  cfg.nsockets = 2;
  cfg.scratch_bytes = 4u << 20;
  cfg.shared_heap_bytes = 1u << 20;
  rt::ProcessTeam team(cfg);
  team.set_fault_plan(rt::FaultPlan::parse("die@barrier:rank=1:iter=0"));
  const double t0 = wall_seconds();
  try {
    team.run([](rt::RankCtx& ctx) {
      ctx.barrier();
      ctx.barrier();
    });
    FAIL() << "expected an abort";
  } catch (const Error& e) {
    EXPECT_EQ(e.fault_kind(), FaultKind::peer_dead);
    EXPECT_EQ(e.fault_rank(), 1);
    EXPECT_EQ(e.fault_epoch(), 1u);
  }
  // Reap-latency detection: the parent's WNOHANG loop tombstones the dead
  // rank and raises the abort within milliseconds of the _exit.
  EXPECT_LT(wall_seconds() - t0, 5.0);
}

TEST_F(FailureInjection, BoundedStallOnlyDelaysTheCollective) {
  rt::ScopedSyncTimeout scoped(10.0);
  auto team = fresh_team(4, 2);
  team.set_fault_plan(rt::FaultPlan::parse("stall@flag:rank=1:ms=50"));
  const std::size_t n = 4096;
  std::vector<std::vector<double>> send(4, std::vector<double>(n)),
      recv(4, std::vector<double>(n));
  for (int r = 0; r < 4; ++r)
    test::fill_buffer(send[r].data(), n, Datatype::f64, r, ReduceOp::sum);
  team.run([&](rt::RankCtx& ctx) {
    ma_allreduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(), n,
                 Datatype::f64, ReduceOp::sum);
  });
  for (int r = 0; r < 4; ++r)
    EXPECT_TRUE(test::check_reduced(recv[r].data(), n, Datatype::f64, 4,
                                    ReduceOp::sum));
}

TEST_F(FailureInjection, UnboundedStallClassifiedAsTimeoutOnStalledRank) {
  rt::ScopedSyncTimeout scoped(0.5);
  auto team = fresh_team(3, 1);
  team.set_fault_plan(rt::FaultPlan::parse("stall@barrier:rank=1"));
  try {
    team.run([](rt::RankCtx& ctx) { ctx.barrier(); });
    FAIL() << "expected an abort";
  } catch (const Error& e) {
    EXPECT_EQ(e.fault_kind(), FaultKind::timeout);
    EXPECT_EQ(e.fault_rank(), 1);  // frozen heartbeat blames the wedged rank
  }
}

}  // namespace
