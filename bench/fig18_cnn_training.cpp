// Fig. 18 reproduction: distributed CNN training throughput (ResNet-50
// and VGG-16), Open MPI vs YHCCL.
//
// Part 1 trains the real data-parallel proxy on this host's team with both
// collective providers (compute scaled down so gradients dominate like on
// the paper's Cluster C CPUs).  Part 2 scales 1-256 nodes with the
// calibrated simulator, reporting img/s — the paper's ~1.8-2.0x
// improvement shows up as a constant gap on the log-log curve because the
// all-reduce is mostly overlapped/fixed-cost per iteration.
#include "bench_util.hpp"
#include "yhccl/apps/dnn.hpp"
#include "yhccl/apps/stream.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/netsim/netsim.hpp"

using namespace yhccl;
using namespace yhccl::bench;

namespace {

apps::dnn::GradAllreduceFn yhccl_ar() {
  return [](rt::RankCtx& c, const float* in, float* out, std::size_t n) {
    coll::allreduce(c, in, out, n, Datatype::f32, ReduceOp::sum);
  };
}

apps::dnn::GradAllreduceFn ompi_ar() {
  return [](rt::RankCtx& c, const float* in, float* out, std::size_t n) {
    base::ring_allreduce(c, in, out, n, Datatype::f32, ReduceOp::sum,
                         base::Transport::two_copy);
  };
}

}  // namespace

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  apps::dnn::TrainConfig cfg;
  cfg.iterations = 3;
  cfg.batch_per_rank = 4;
  cfg.compute_scale = 0.002;  // comm-dominated, like the paper's CPUs

  std::printf("Fig. 18 — data-parallel CNN training (p=%d, m=%d)\n", p, m);
  std::printf("%-10s %-10s %12s %12s %10s\n", "model", "provider", "img/s",
              "allreduce(s)", "speedup");

  Session session("fig18_cnn_training");
  double base_imgs = 0;
  for (const auto& model : {apps::dnn::resnet50(), apps::dnn::vgg16()}) {
    for (int which = 0; which < 2; ++which) {
      apps::dnn::TrainStats st{};
      const auto ar = which == 0 ? yhccl_ar() : ompi_ar();
      record_once(team, session, "app-cnn-" + model.name,
                  which == 0 ? "YHCCL" : "OpenMPI",
                  model.total_params() * 4, [&](rt::RankCtx& ctx) {
                    auto s = apps::dnn::train_rank(ctx, model, cfg, ar);
                    if (ctx.rank() == 0) st = s;
                  });
      if (which == 0) base_imgs = st.images_per_second;
      std::printf("%-10s %-10s %12.1f %12.3f %9.2fx\n", model.name.c_str(),
                  which == 0 ? "YHCCL" : "OpenMPI", st.images_per_second,
                  st.allreduce_seconds,
                  which == 0 ? 1.0 : base_imgs / st.images_per_second);
    }
  }

  // ---- 1-256 node scaling via the calibrated simulator ----------------------
  const auto cal = apps::stream::run_sliced_copy(
      32u << 20, 1u << 20, apps::stream::CopyKind::temporal, 2);
  net::IntraNodeModel node;
  node.ranks_per_node = 24;  // Cluster C: 2x 12-core E5-2692v2
  node.sockets = 2;
  node.dab = 80e9;  // ClusterC-class DDR3 (VM measurement printed above)
  std::printf("(this VM measured %.1f GB/s; simulated ClusterC nodes use "
              "%.0f GB/s)\n",
              cal.bandwidth_mbps / 1e3, node.dab / 1e9);
  const auto fabric = net::LogGP::infiniband_fdr();

  // §5.6: on Cluster C "the computation dominates the end-to-end
  // execution time" and the win comes from "hiding communication with
  // computation for inter-node all-reduce" — YHCCL's hierarchical design
  // lets Horovod overlap aggregation with backprop; the baseline
  // configuration's flat all-reduce serializes behind it.  We model
  // exactly that: YHCCL overlaps its (hierarchical, simulated) all-reduce
  // with compute; the baseline pays compute + an unoverlapped aggregation
  // whose cost approaches the compute time at scale, fitting the paper's
  // observed ~1.9x asymptote.
  std::printf("\nscaling estimate (24 ranks/node, batch 32/rank):\n");
  std::printf("%-8s | %12s %12s %8s | %12s %12s %8s\n", "nodes",
              "R50-OMPI", "R50-YHCCL", "gain", "VGG-OMPI", "VGG-YHCCL",
              "gain");
  for (int nodes : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    auto imgs = [&](const apps::dnn::ModelSpec& mspec, bool yhccl) {
      const double compute =
          mspec.total_gflops() * 32 * 3.0 / 20.0;  // 20 GFLOP/s per rank
      const std::size_t grad_bytes = mspec.total_params() * 4;
      const auto r = net::multinode_allreduce(
          yhccl ? net::MultiNodeAlgo::yhccl : net::MultiNodeAlgo::openmpi,
          grad_bytes, nodes, node, fabric);
      const double unoverlapped_frac =
          yhccl ? 0.05 : 0.9 * (1.0 - 1.0 / nodes);
      const double iter =
          std::max(compute, r.seconds) + unoverlapped_frac * compute;
      return 32.0 * node.ranks_per_node * nodes / iter;
    };
    const auto r50 = apps::dnn::resnet50();
    const auto vgg = apps::dnn::vgg16();
    const double a = imgs(r50, false), b = imgs(r50, true);
    const double c = imgs(vgg, false), d = imgs(vgg, true);
    std::printf("%-8d | %12.0f %12.0f %7.2fx | %12.0f %12.0f %7.2fx\n",
                nodes, a, b, b / a, c, d, d / c);
  }
  session.write();
  return 0;
}
