#include "yhccl/copy/kernels.hpp"

#include <immintrin.h>

#include <cstdint>
#include <cstring>

#include "yhccl/copy/dav.hpp"

namespace yhccl::copy {

namespace {

constexpr std::size_t kVec = 32;             // AVX2 vector width
constexpr std::size_t kPrefetchAhead = 256;  // bytes of lookahead

inline void copy_small(std::uint8_t* d, const std::uint8_t* s,
                       std::size_t n) noexcept {
  std::memcpy(d, s, n);
}

}  // namespace

void scalar_copy(void* dst, const void* src, std::size_t n) noexcept {
  std::memcpy(dst, src, n);
  dav_add(n, n);
}

void t_copy(void* dst, const void* src, std::size_t n) noexcept {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  std::size_t i = 0;
  // Main loop: 4 vectors (128 B) per iteration with software prefetch.
  for (; i + 4 * kVec <= n; i += 4 * kVec) {
    _mm_prefetch(reinterpret_cast<const char*>(s + i + kPrefetchAhead),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(s + i + kPrefetchAhead + 64),
                 _MM_HINT_T0);
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + kVec));
    const __m256i v2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 2 * kVec));
    const __m256i v3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 3 * kVec));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i + kVec), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i + 2 * kVec), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i + 3 * kVec), v3);
  }
  if (i < n) copy_small(d + i, s + i, n - i);
  dav_add(n, n);
}

void nt_copy(void* dst, const void* src, std::size_t n) noexcept {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  std::size_t i = 0;

  // Streaming stores require 32-byte-aligned destinations: peel the head.
  const std::size_t mis = reinterpret_cast<std::uintptr_t>(d) & (kVec - 1);
  if (mis != 0) {
    const std::size_t head = kVec - mis < n ? kVec - mis : n;
    copy_small(d, s, head);
    i = head;
  }
  for (; i + 4 * kVec <= n; i += 4 * kVec) {
    _mm_prefetch(reinterpret_cast<const char*>(s + i + kPrefetchAhead),
                 _MM_HINT_NTA);
    _mm_prefetch(reinterpret_cast<const char*>(s + i + kPrefetchAhead + 64),
                 _MM_HINT_NTA);
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + kVec));
    const __m256i v2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 2 * kVec));
    const __m256i v3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 3 * kVec));
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + i), v0);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + i + kVec), v1);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + i + 2 * kVec), v2);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + i + 3 * kVec), v3);
  }
  for (; i + kVec <= n; i += kVec) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + i), v);
  }
  if (i < n) copy_small(d + i, s + i, n - i);
  // Streaming stores are weakly ordered; fence before any flag publish.
  _mm_sfence();
  dav_add(n, n);
}

void erms_copy(void* dst, const void* src, std::size_t n) noexcept {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  std::size_t cnt = n;
  asm volatile("rep movsb" : "+D"(d), "+S"(s), "+c"(cnt) : : "memory");
  dav_add(n, n);
}

void memmove_model_copy(void* dst, const void* src, std::size_t n,
                        std::size_t nt_threshold) noexcept {
  if (n >= nt_threshold)
    nt_copy(dst, src, n);
  else
    t_copy(dst, src, n);
}

}  // namespace yhccl::copy
