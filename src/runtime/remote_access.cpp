#include "yhccl/runtime/remote_access.hpp"

#include <sys/uio.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#include "yhccl/analysis/hb.hpp"
#include "yhccl/common/error.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/kernels.hpp"
#include "yhccl/runtime/sync.hpp"

namespace yhccl::rt {

void PageLockTable::lock(std::uintptr_t src_page) {
  fault_point("pagelock");
  trace::Span sp(trace::Phase::pagelock, src_page / kPageBytes);
  auto& l = locks_[(src_page / kPageBytes) % kLocks].v;
  SpinGuard guard("page-lock wait", trace::Phase::pagelock);
  for (;;) {
    std::uint32_t expect = 0;
    if (l.compare_exchange_weak(
            expect, 1,
            YHCCL_MC_ORDER(pagelock_acquire, std::memory_order_acquire),
            std::memory_order_relaxed)) {
      analysis::hb_acquire(&l);
      return;
    }
    guard.relax();
  }
}

void PageLockTable::unlock(std::uintptr_t src_page) noexcept {
  auto& l = locks_[(src_page / kPageBytes) % kLocks].v;
  analysis::hb_release(&l);
  l.store(0, YHCCL_MC_ORDER(pagelock_release, std::memory_order_release));
}

void window_publish(RemoteWindow& w, const void* p, std::size_t bytes,
                    int pid) noexcept {
  // Single-writer seqlock, Boehm-style (see RemoteWindow's doc comment):
  // odd marker → release fence → fields → even release store.
  const std::uint64_t s0 = w.seq.load(std::memory_order_relaxed);
  w.seq.store(s0 + 1, std::memory_order_relaxed);
  YHCCL_MC_FENCE(seqlock_writer_fence, std::memory_order_release);
  w.ptr.store(p, std::memory_order_relaxed);
  w.bytes.store(bytes, std::memory_order_relaxed);
  w.pid.store(pid, std::memory_order_relaxed);
  analysis::hb_release(&w.seq);
  w.seq.store(s0 + 2, YHCCL_MC_ORDER(seqlock_commit_release,
                                     std::memory_order_release));
}

RemoteBuf window_read(const RemoteWindow& w) {
  SpinGuard guard("remote-buffer seqlock read", trace::Phase::rndv);
  for (;;) {
    const std::uint64_t s1 = w.seq.load(std::memory_order_acquire);
    if ((s1 & 1) == 0) {
      RemoteBuf rb{w.ptr.load(std::memory_order_relaxed),
                   w.bytes.load(std::memory_order_relaxed),
                   w.pid.load(std::memory_order_relaxed)};
      YHCCL_MC_FENCE(seqlock_reader_fence, std::memory_order_acquire);
      if (w.seq.load(std::memory_order_relaxed) == s1) {
        analysis::hb_acquire(&w.seq);
        return rb;
      }
    }
    guard.relax();
  }
}

void PageLockTable::reset() noexcept {
  for (auto& l : locks_) l.v.store(0, std::memory_order_relaxed);
}

namespace {

void cross_process_read(void* dst, int pid, const void* src, std::size_t n) {
  // Shared-mapping addresses are identical in every rank process, so the
  // checker can validate the remote side of the syscall copy too.
  analysis::hb_read(src, n, "process_vm_readv(src)");
  analysis::hb_write(dst, n, "process_vm_readv(dst)");
  iovec local{dst, n};
  iovec remote{const_cast<void*>(src), n};
  const ssize_t got = process_vm_readv(pid, &local, 1, &remote, 1, 0);
  if (got < 0 || static_cast<std::size_t>(got) != n)
    raise_errno("process_vm_readv");
  copy::dav_add(n, n);
}

}  // namespace

bool cma_available() {
  // Probe by reading our own memory through the syscall; a kernel that
  // lacks or forbids it fails even for self.
  char probe = 42, out = 0;
  iovec local{&out, 1};
  iovec remote{&probe, 1};
  return process_vm_readv(getpid(), &local, 1, &remote, 1, 0) == 1 &&
         out == 42;
}

void remote_read(void* dst, const RemoteBuf& src, std::size_t offset,
                 std::size_t n, RemoteMode mode, PageLockTable* locks) {
  YHCCL_REQUIRE(offset + n <= src.bytes, "remote_read out of range");
  const auto* base = static_cast<const std::uint8_t*>(src.ptr) + offset;
  const bool same_process = src.pid == getpid();

  if (mode == RemoteMode::direct) {
    if (same_process)
      copy::t_copy(dst, base, n);
    else
      cross_process_read(dst, src.pid, base, n);
    return;
  }

  // CMA emulation: page-granular, temporal stores, optional page locks.
  constexpr std::size_t kPage = PageLockTable::kPageBytes;
  auto* d = static_cast<std::uint8_t*>(dst);
  std::size_t done = 0;
  while (done < n) {
    const auto page_addr = reinterpret_cast<std::uintptr_t>(base + done);
    const std::size_t in_page = kPage - (page_addr & (kPage - 1));
    const std::size_t len = in_page < n - done ? in_page : n - done;
    if (locks != nullptr) locks->lock(page_addr);
    if (same_process)
      copy::t_copy(d + done, base + done, len);
    else
      cross_process_read(d + done, src.pid, base + done, len);
    if (locks != nullptr) locks->unlock(page_addr);
    done += len;
  }
}

}  // namespace yhccl::rt
