#include "yhccl/coll/profiler.hpp"

#include <cstdio>

#include "yhccl/common/time.hpp"

namespace yhccl::coll {

void CollProfiler::add(CollKind k, std::size_t payload, double seconds,
                       const copy::Dav& dav, const copy::KernelCounts& kernels,
                       const rt::SyncCounts& sync) noexcept {
  auto& r = records_[static_cast<int>(k)];
  ++r.calls;
  r.payload_bytes += payload;
  r.seconds += seconds;
  r.dav += dav;
  r.kernels += kernels;
  r.sync += sync;
}

const CollProfiler::Record& CollProfiler::get(CollKind k) const noexcept {
  return records_[static_cast<int>(k)];
}

CollProfiler::Record CollProfiler::total() const noexcept {
  Record t;
  for (const auto& r : records_) {
    t.calls += r.calls;
    t.payload_bytes += r.payload_bytes;
    t.seconds += r.seconds;
    t.dav += r.dav;
    t.kernels += r.kernels;
    t.sync += r.sync;
  }
  return t;
}

CollProfiler& CollProfiler::operator+=(const CollProfiler& o) noexcept {
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k) {
    records_[k].calls += o.records_[k].calls;
    records_[k].payload_bytes += o.records_[k].payload_bytes;
    records_[k].seconds += o.records_[k].seconds;
    records_[k].dav += o.records_[k].dav;
    records_[k].kernels += o.records_[k].kernels;
    records_[k].sync += o.records_[k].sync;
  }
  return *this;
}

std::string CollProfiler::report() const {
  char line[192];
  std::string out;
  std::snprintf(line, sizeof line,
                "%-16s %8s %12s %10s %12s %10s %8s %10s\n", "collective",
                "calls", "payload(MB)", "time(s)", "DAV(MB)", "DAB(GB/s)",
                "kernel", "sync-ops");
  out += line;
  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k) {
    const auto& r = records_[k];
    if (r.calls == 0) continue;
    std::snprintf(line, sizeof line,
                  "%-16s %8llu %12.1f %10.4f %12.1f %10.2f %8s %10llu\n",
                  coll_kind_name(static_cast<CollKind>(k)),
                  static_cast<unsigned long long>(r.calls),
                  r.payload_bytes / 1e6, r.seconds, r.dav.total() / 1e6,
                  r.dab() / 1e9,
                  r.kernels.total() ? copy::isa_name(r.kernels.dominant())
                                    : "-",
                  static_cast<unsigned long long>(r.sync.total()));
    out += line;
  }
  const auto t = total();
  std::snprintf(line, sizeof line,
                "%-16s %8llu %12.1f %10.4f %12.1f %10.2f %8s %10llu\n",
                "TOTAL", static_cast<unsigned long long>(t.calls),
                t.payload_bytes / 1e6, t.seconds, t.dav.total() / 1e6,
                t.dab() / 1e9,
                t.kernels.total() ? copy::isa_name(t.kernels.dominant())
                                  : "-",
                static_cast<unsigned long long>(t.sync.total()));
  out += line;
  return out;
}

namespace {

template <typename Fn>
void profiled(CollProfiler& prof, CollKind k, std::size_t payload,
              const Fn& fn) {
  const copy::DavScope dav;
  const copy::KernelCountScope kernels;
  const rt::SyncCountScope sync;
  const Timer timer;
  fn();
  prof.add(k, payload, timer.elapsed(), dav.delta(), kernels.delta(),
           sync.delta());
}

}  // namespace

void allreduce(CollProfiler& prof, RankCtx& ctx, const void* send,
               void* recv, std::size_t count, Datatype d, ReduceOp op,
               const CollOpts& opts) {
  profiled(prof, CollKind::allreduce, count * dtype_size(d), [&] {
    allreduce(ctx, send, recv, count, d, op, opts);
  });
}

void reduce(CollProfiler& prof, RankCtx& ctx, const void* send, void* recv,
            std::size_t count, Datatype d, ReduceOp op, int root,
            const CollOpts& opts) {
  profiled(prof, CollKind::reduce, count * dtype_size(d), [&] {
    reduce(ctx, send, recv, count, d, op, root, opts);
  });
}

void reduce_scatter(CollProfiler& prof, RankCtx& ctx, const void* send,
                    void* recv, std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts) {
  profiled(prof, CollKind::reduce_scatter,
           count * dtype_size(d) * static_cast<std::size_t>(ctx.nranks()),
           [&] { reduce_scatter(ctx, send, recv, count, d, op, opts); });
}

void broadcast(CollProfiler& prof, RankCtx& ctx, void* buf,
               std::size_t count, Datatype d, int root,
               const CollOpts& opts) {
  profiled(prof, CollKind::broadcast, count * dtype_size(d),
           [&] { broadcast(ctx, buf, count, d, root, opts); });
}

void allgather(CollProfiler& prof, RankCtx& ctx, const void* send,
               void* recv, std::size_t count, Datatype d,
               const CollOpts& opts) {
  profiled(prof, CollKind::allgather, count * dtype_size(d),
           [&] { allgather(ctx, send, recv, count, d, opts); });
}

}  // namespace yhccl::coll
