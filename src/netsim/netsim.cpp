#include "yhccl/netsim/netsim.hpp"

#include <algorithm>
#include <cmath>

#include "yhccl/common/types.hpp"
#include "yhccl/model/dav_model.hpp"

namespace yhccl::net {

namespace {

double log2ceil(int v) {
  double l = 0;
  int n = 1;
  while (n < v) {
    n *= 2;
    l += 1;
  }
  return l;
}

}  // namespace

// ---------------------------------------------------------------------------
// Intra-node model: DAV / DAB + synchronization episodes
// ---------------------------------------------------------------------------

double IntraNodeModel::ma_reduce_scatter(std::size_t s) const {
  const int p = ranks_per_node, m = sockets;
  const double dav = static_cast<double>(
      model::impl::socket_ma_reduce_scatter(s, p, m));
  const double rounds = std::max(
      1.0, std::ceil(static_cast<double>(s) / p / slice_max));
  // Per round: (p/m - 1) neighbour waits + 2 node barriers.
  const double barrier = sync_cost * log2ceil(p + 1);
  const double syncs = rounds * ((p / std::max(m, 1) - 1) * sync_cost +
                                 2 * barrier);
  return dav / dab + syncs;
}

double IntraNodeModel::ma_allgather(std::size_t s) const {
  const int p = ranks_per_node;
  const double dav =
      static_cast<double>(model::impl::pipelined_allgather(s / p, p));
  const double slices = std::max(
      1.0, std::ceil(static_cast<double>(s) / p / slice_max));
  return dav / dab + slices * sync_cost * log2ceil(p + 1);
}

double IntraNodeModel::ma_allreduce(std::size_t s) const {
  const int p = ranks_per_node, m = sockets;
  const double dav =
      static_cast<double>(model::impl::socket_ma_allreduce(s, p, m));
  const double rounds = std::max(
      1.0, std::ceil(static_cast<double>(s) / p / slice_max));
  const double barrier = sync_cost * log2ceil(p + 1);
  return dav / dab + rounds * ((p / std::max(m, 1) - 1) * sync_cost +
                               3 * barrier);
}

double IntraNodeModel::two_copy_ring_allreduce(std::size_t s) const {
  const int p = ranks_per_node;
  const double dav =
      static_cast<double>(model::impl::ring_allreduce_two_copy(s, p));
  return dav / dab + 2.0 * (p - 1) * sync_cost;
}

double IntraNodeModel::dpml_allreduce(std::size_t s) const {
  const int p = ranks_per_node;
  const double dav = static_cast<double>(model::impl::dpml_allreduce(s, p));
  const double rounds = std::max(
      1.0, std::ceil(static_cast<double>(s) / p / (32u << 10)));
  return dav / dab + rounds * 4 * sync_cost * log2ceil(p + 1);
}

// ---------------------------------------------------------------------------
// Inter-node simulations
// ---------------------------------------------------------------------------

double ring_allreduce_internode(int nnodes, std::size_t bytes_per_node,
                                const LogGP& net, int lanes) {
  if (nnodes <= 1 || bytes_per_node == 0) return 0;
  lanes = std::max(1, lanes);
  const std::size_t lane_bytes =
      ceil_div(bytes_per_node, static_cast<std::size_t>(lanes));
  const std::size_t chunk =
      std::max<std::size_t>(ceil_div(lane_bytes, nnodes), 1);

  // Per-node serialized NIC (each direction); all lanes contend on it.
  std::vector<Resource> tx(nnodes), rx(nnodes);
  // ready[n][l]: time lane l on node n may start its next step.
  std::vector<std::vector<double>> ready(
      nnodes, std::vector<double>(static_cast<std::size_t>(lanes), 0.0));

  const int steps = 2 * (nnodes - 1);  // reduce-scatter + allgather phases
  for (int k = 0; k < steps; ++k) {
    std::vector<std::vector<double>> done = ready;
    for (int l = 0; l < lanes; ++l) {
      for (int n = 0; n < nnodes; ++n) {
        const int dst = (n + 1) % nnodes;
        const double wire = static_cast<double>(chunk) * net.G;
        const double tx_done = tx[n].acquire(ready[n][l] + net.o, wire);
        // The stream occupies the receiver NIC for the same duration,
        // shifted by the wire latency.
        const double rx_done = rx[dst].acquire(tx_done + net.L - wire, wire);
        const double arrive =
            std::max(rx_done, tx_done + net.L) + net.o + net.g;
        // Receiver may proceed once the chunk arrived; sender once its NIC
        // freed up again.
        done[dst][l] = std::max(done[dst][l], arrive);
        done[n][l] = std::max(done[n][l], tx_done + net.g);
      }
    }
    ready = std::move(done);
  }
  double finish = 0;
  for (const auto& node : ready)
    for (double t : node) finish = std::max(finish, t);
  return finish;
}

double tree_allreduce_internode(int nnodes, std::size_t bytes,
                                const LogGP& net) {
  if (nnodes <= 1 || bytes == 0) return 0;
  // Recursive doubling: ceil(log2 N) rounds of full-size pairwise
  // exchanges (reduction cost folded into the per-byte term).
  return log2ceil(nnodes) * net.message_time(bytes);
}

// ---------------------------------------------------------------------------
// Hierarchical composition
// ---------------------------------------------------------------------------

MultiNodeResult multinode_allreduce(MultiNodeAlgo algo, std::size_t s,
                                    int nnodes, const IntraNodeModel& node,
                                    const LogGP& net, int lanes) {
  MultiNodeResult r{0, 0, 0};
  switch (algo) {
    case MultiNodeAlgo::yhccl:
      // Paper §5.5: proposed reduce-scatter within the node, ring
      // all-reduce across nodes with many processes driving the fabric,
      // then all-gather within the node.
      r.intra_seconds = node.ma_reduce_scatter(s) + node.ma_allgather(s);
      r.inter_seconds = ring_allreduce_internode(
          nnodes, s, net, std::min(lanes, node.ranks_per_node));
      break;
    case MultiNodeAlgo::openmpi:
      // Two-copy intra-node ring + a single leader driving the fabric.
      r.intra_seconds = node.two_copy_ring_allreduce(s);
      r.inter_seconds = ring_allreduce_internode(nnodes, s, net, 1);
      break;
    case MultiNodeAlgo::tree_hcoll:
      // Hierarchical tree: intra reduce, recursive-doubling leaders,
      // intra broadcast.  Strong for small messages (log latency).
      r.intra_seconds =
          node.dpml_allreduce(s) / 2 +
          static_cast<double>(model::impl::pipelined_broadcast(
              s, node.ranks_per_node)) /
              node.dab;
      r.inter_seconds = tree_allreduce_internode(nnodes, s, net);
      break;
  }
  r.seconds = r.intra_seconds + r.inter_seconds;
  return r;
}

const char* multinode_algo_name(MultiNodeAlgo a) {
  switch (a) {
    case MultiNodeAlgo::yhccl: return "YHCCL";
    case MultiNodeAlgo::openmpi: return "OpenMPI-ring";
    case MultiNodeAlgo::tree_hcoll: return "Tree-hcoll";
  }
  return "?";
}

}  // namespace yhccl::net
