#include "yhccl/runtime/process_team.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "yhccl/common/error.hpp"
#include "yhccl/common/time.hpp"
#include "yhccl/runtime/sync_timeout.hpp"

namespace yhccl::rt {

namespace {

void sleep_us(long us) noexcept {
  timespec ts{us / 1'000'000, (us % 1'000'000) * 1'000};
  nanosleep(&ts, nullptr);
}

}  // namespace

void ProcessTeam::run_ranks(const std::function<void(int)>& wrapped) {
  auto& fs = shared().fault;
  const std::uint64_t epoch = fs.team_epoch.load(std::memory_order_acquire);

  std::vector<pid_t> children(static_cast<std::size_t>(nranks()), -1);
  for (int r = 0; r < nranks(); ++r) {
    const pid_t pid = fork();
    YHCCL_CHECK_SYS(pid, "fork");
    if (pid == 0) {
      int code = 0;
      try {
        wrapped(r);
      } catch (const FaultInjectedDeath&) {
        // `die` injection on a forked rank _exits at the injection point and
        // never unwinds this far; keep the crash semantics if it ever does.
        std::fflush(nullptr);
        _exit(kDieExitCode);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[yhccl rank %d pid %d] %s\n", r, getpid(),
                     e.what());
        code = 1;
      } catch (...) {
        std::fprintf(stderr, "[yhccl rank %d] unknown exception\n", r);
        code = 1;
      }
      // _exit: skip atexit/static destructors we share with the parent.
      std::fflush(nullptr);
      _exit(code);
    }
    children[static_cast<std::size_t>(r)] = pid;
  }

  // Reap with WNOHANG so a sibling's death lands in the shared liveness
  // slots (and the abort word) at reap latency — survivors then leave their
  // spin loops within milliseconds instead of waiting out the watchdog.
  int alive = nranks();
  int deaths = 0;
  int failures = 0;
  double kill_deadline = -1.0;
  while (alive > 0) {
    bool reaped_any = false;
    for (int r = 0; r < nranks(); ++r) {
      pid_t& pid = children[static_cast<std::size_t>(r)];
      if (pid <= 0) continue;
      int status = 0;
      const pid_t got = waitpid(pid, &status, WNOHANG);
      if (got == 0) continue;
      YHCCL_CHECK_SYS(got, "waitpid");
      reaped_any = true;
      pid = -1;
      --alive;
      const bool died =
          WIFSIGNALED(status) ||
          (WIFEXITED(status) && WEXITSTATUS(status) == kDieExitCode);
      if (died) {
        ++deaths;
        // Tombstone first (so classification sees it), then raise the team
        // abort on the dead rank's behalf: survivors poll the word on every
        // backoff cycle and exit almost immediately.
        fs.hb[r].dead.store(1, std::memory_order_release);
        fs.hb[r].left.store(1, std::memory_order_release);
        std::uint64_t expect = 0;
        fs.abort_word.compare_exchange_strong(
            expect,
            FaultState::pack(FaultInfo{FaultKind::peer_dead, r, epoch}),
            std::memory_order_acq_rel, std::memory_order_acquire);
      } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        ++failures;
      }
    }
    if (alive == 0) break;
    if (!reaped_any) sleep_us(200);

    // Grace kill: once the team abort is up every survivor exits within
    // milliseconds, so a rank still running long past that is wedged
    // outside our spin loops.  SIGKILL it so run() terminates.
    const std::uint64_t w = fs.abort_word.load(std::memory_order_acquire);
    const bool aborted = w != 0 && FaultState::unpack(w).epoch == epoch;
    if (!aborted && deaths == 0) continue;
    const double now = wall_seconds();
    if (kill_deadline < 0) {
      const double t = sync_timeout();
      kill_deadline = now + (t > 0 ? t + 2.0 : 2.0);
    } else if (now >= kill_deadline) {
      for (int r = 0; r < nranks(); ++r) {
        const pid_t pid = children[static_cast<std::size_t>(r)];
        if (pid > 0) kill(pid, SIGKILL);
      }
    }
  }

  if (deaths == 0 && failures == 0) return;
  const std::string tally = std::to_string(deaths) + " of " +
                            std::to_string(nranks()) +
                            " rank processes died, " +
                            std::to_string(failures) + " exited with errors";
  const std::uint64_t w = fs.abort_word.load(std::memory_order_acquire);
  if (w != 0) {
    const FaultInfo f = FaultState::unpack(w);
    if (f.epoch == epoch)
      throw Error("ProcessTeam: " + describe_fault(f) + " (" + tally + ")",
                  f.kind, f.rank, f.epoch);
  }
  raise("ProcessTeam: " + tally);
}

}  // namespace yhccl::rt
