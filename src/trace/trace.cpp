#include "yhccl/trace/trace.hpp"

#include <time.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "yhccl/common/time.hpp"

namespace yhccl::trace {

// ---------------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------------

Mode mode_from_env() {
  const char* e = std::getenv("YHCCL_TRACE");
  if (e == nullptr || *e == '\0' || std::strcmp(e, "off") == 0)
    return Mode::off;
  if (std::strcmp(e, "spans") == 0) return Mode::spans;
  if (std::strcmp(e, "flight") == 0) return Mode::flight;
  raise(std::string("YHCCL_TRACE='") + e +
        "' is not one of off|spans|flight");
}

Mode resolve_mode(Mode cfg) {
  return cfg == Mode::env ? mode_from_env() : cfg;
}

std::uint32_t slots_from_env() {
  constexpr std::uint32_t kDefault = 4096;
  constexpr std::uint32_t kMin = 64;
  constexpr std::uint32_t kMax = 1u << 20;
  const char* e = std::getenv("YHCCL_TRACE_EVENTS");
  if (e == nullptr || *e == '\0') return kDefault;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(e, &end, 10);
  YHCCL_REQUIRE(end != nullptr && end != e && *end == '\0' && errno == 0,
                "YHCCL_TRACE_EVENTS is not a positive integer");
  std::uint32_t n = static_cast<std::uint32_t>(
      v < kMin ? kMin : (v > kMax ? kMax : v));
  // Round up to a power of two so ring indexing is a mask, not a modulo.
  std::uint32_t pow2 = kMin;
  while (pow2 < n) pow2 <<= 1;
  return pow2;
}

const char* trace_dir() noexcept {
  const char* e = std::getenv("YHCCL_TRACE_DIR");
  return (e != nullptr && *e != '\0') ? e : nullptr;
}

// ---------------------------------------------------------------------------
// Name tables
// ---------------------------------------------------------------------------

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::coll: return "coll";
    case Phase::copy_in: return "copy_in";
    case Phase::copy_out: return "copy_out";
    case Phase::reduce: return "reduce";
    case Phase::barrier: return "barrier";
    case Phase::flag_wait: return "flag_wait";
    case Phase::flag_post: return "flag_post";
    case Phase::fifo: return "fifo";
    case Phase::rndv: return "rndv";
    case Phase::pagelock: return "pagelock";
    case Phase::fault: return "fault";
    case Phase::recover: return "recover";
    case Phase::retry: return "retry";
    case Phase::degrade: return "degrade";
    case Phase::straggler: return "straggler";
    default: return "?";
  }
}

const char* coll_id_name(std::uint8_t id) noexcept {
  // 1 + coll::CollKind; test_phase_trace pins this to coll_kind_name.
  switch (id) {
    case 0: return "";
    case 1: return "allreduce";
    case 2: return "reduce";
    case 3: return "reduce_scatter";
    case 4: return "broadcast";
    case 5: return "allgather";
    default: return "?";
  }
}

const char* site_name(Site s) noexcept {
  switch (s) {
    case Site::unknown: return "unknown";
    case Site::barrier: return "barrier";
    case Site::flag: return "flag";
    case Site::fifo: return "fifo";
    case Site::rndv: return "rndv";
    case Site::pagelock: return "pagelock";
    case Site::slice: return "slice";
    case Site::pipeline: return "pipeline";
    case Site::liveness: return "liveness";
    default: return "?";
  }
}

Site site_from_string(const char* s) noexcept {
  if (s == nullptr) return Site::unknown;
  // Substring match so both fault_point sites ("barrier") and SpinGuard
  // descriptions ("barrier wait", "pt2pt send slot wait") map correctly.
  if (std::strstr(s, "barrier") != nullptr) return Site::barrier;
  if (std::strstr(s, "flag") != nullptr) return Site::flag;
  if (std::strstr(s, "fifo") != nullptr ||
      std::strstr(s, "pt2pt") != nullptr ||
      std::strstr(s, "sendrecv") != nullptr)
    return Site::fifo;
  if (std::strstr(s, "rndv") != nullptr ||
      std::strstr(s, "rendezvous") != nullptr ||
      std::strstr(s, "seqlock") != nullptr)
    return Site::rndv;
  if (std::strstr(s, "pagelock") != nullptr ||
      std::strstr(s, "page-lock") != nullptr)
    return Site::pagelock;
  if (std::strstr(s, "pipeline") != nullptr) return Site::pipeline;
  if (std::strstr(s, "slice") != nullptr) return Site::slice;
  if (std::strstr(s, "liveness") != nullptr) return Site::liveness;
  return Site::unknown;
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

std::size_t TraceBuffer::required_bytes(int nranks, std::uint32_t slots) {
  // slots and nranks are caller-controlled: checked so an absurd request
  // raises instead of silently sizing a too-small arena.
  const std::size_t stride = checked_add(
      kCacheline,
      checked_mul(static_cast<std::size_t>(slots), sizeof(Rec),
                  "trace ring capacity"),
      "trace ring stride");
  return checked_add(
      round_up(sizeof(TraceBuffer), kCacheline),
      checked_mul(static_cast<std::size_t>(nranks + 1), stride,
                  "trace ring count"),
      "trace arena");
}

TraceBuffer* TraceBuffer::create(void* mem, std::size_t bytes, int nranks,
                                 std::uint32_t slots, Mode mode) {
  YHCCL_REQUIRE(nranks >= 1, "trace: nranks out of range");
  YHCCL_REQUIRE(slots >= 2 && (slots & (slots - 1)) == 0,
                "trace: ring capacity must be a power of two");
  YHCCL_REQUIRE(bytes >= required_bytes(nranks, slots),
                "trace: region too small for the rings");
  auto* buf = new (mem) TraceBuffer();
  buf->nranks_ = nranks;
  buf->slots_ = slots;
  buf->mask_ = slots - 1;
  buf->stride_ = kCacheline + static_cast<std::size_t>(slots) * sizeof(Rec);
  buf->mode_ = mode;
  for (int r = 0; r < buf->nrings(); ++r)
    new (buf->ring_next(r)) mc::atomic<std::uint64_t>(0);
  buf->wall0_ = wall_seconds();
  buf->tsc0_ = trace_now();
  return buf;
}

double TraceBuffer::ticks_per_second() const noexcept {
  std::uint64_t bits = hz_bits_.load(std::memory_order_acquire);
  if (bits != 0) {
    double hz;
    std::memcpy(&hz, &bits, sizeof hz);
    return hz;
  }
  // Calibrate against the wall clock over the interval since create; pad
  // with a short busy sample when a harvest runs immediately after
  // construction (unit tests) so the ratio is not noise.
  double wall1 = wall_seconds();
  std::uint64_t tsc1 = trace_now();
  while (wall1 - wall0_ < 2e-3) {
    timespec ts{0, 200'000};
    nanosleep(&ts, nullptr);
    wall1 = wall_seconds();
    tsc1 = trace_now();
  }
  double hz = static_cast<double>(tsc1 - tsc0_) / (wall1 - wall0_);
  if (!(hz > 0)) hz = 1e9;  // defensive: never divide by zero downstream
  std::memcpy(&bits, &hz, sizeof bits);
  std::uint64_t expect = 0;
  // First calibrator wins; concurrent harvesters adopt its value so every
  // export of this buffer converts ticks identically (incl. across fork()).
  if (!hz_bits_.compare_exchange_strong(expect, bits,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    std::memcpy(&hz, &expect, sizeof hz);
  }
  return hz;
}

double WaitScope::wait_seconds() const noexcept {
  auto& c = detail::tl_trace;
  if (c.buf == nullptr) return 0;
  const std::uint64_t ticks = c.waits.total() - start_;
  return static_cast<double>(ticks) / c.buf->ticks_per_second();
}

}  // namespace yhccl::trace
