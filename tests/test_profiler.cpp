// Tests for the collective profiler (the paper's PMPI tool analogue):
// attribution per collective kind, payload accounting, DAV capture that
// matches the Tables 1-3 models, merging, and report formatting.
#include <gtest/gtest.h>

#include <vector>

#include "yhccl/coll/profiler.hpp"
#include "yhccl/model/dav_model.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::cached_team;
using test::fill_buffer;

namespace {

TEST(Profiler, AttributesCallsAndPayloadPerKind) {
  const int p = 4;
  auto& team = cached_team(p, 2);
  const std::size_t count = 10000;
  std::vector<std::vector<double>> send(p, std::vector<double>(count)),
      recv(p, std::vector<double>(count * p));
  std::vector<CollProfiler> prof(p);
  team.run([&](rt::RankCtx& ctx) {
    const int r = ctx.rank();
    auto& pr = prof[r];
    allreduce(pr, ctx, send[r].data(), recv[r].data(), count, Datatype::f64,
              ReduceOp::sum);
    allreduce(pr, ctx, send[r].data(), recv[r].data(), count, Datatype::f64,
              ReduceOp::sum);
    broadcast(pr, ctx, recv[r].data(), count, Datatype::f64, 0);
    allgather(pr, ctx, send[r].data(), recv[r].data(), count / p,
              Datatype::f64);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(prof[r].get(CollKind::allreduce).calls, 2u);
    EXPECT_EQ(prof[r].get(CollKind::allreduce).payload_bytes,
              2 * count * 8);
    EXPECT_EQ(prof[r].get(CollKind::broadcast).calls, 1u);
    EXPECT_EQ(prof[r].get(CollKind::allgather).calls, 1u);
    EXPECT_EQ(prof[r].get(CollKind::reduce).calls, 0u);
    EXPECT_GT(prof[r].get(CollKind::allreduce).seconds, 0.0);
    EXPECT_EQ(prof[r].total().calls, 4u);
  }
}

TEST(Profiler, MergedDavMatchesTable2Model) {
  const int p = 4;
  auto& team = cached_team(p, 1);
  const std::size_t count = 8192 * p;  // divisible geometry -> exact model
  std::vector<std::vector<double>> send(p, std::vector<double>(count)),
      recv(p, std::vector<double>(count));
  for (int r = 0; r < p; ++r)
    fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
  std::vector<CollProfiler> prof(p);
  CollOpts o;
  o.algorithm = Algorithm::ma_flat;
  o.slice_max = 16u << 10;
  team.run([&](rt::RankCtx& ctx) {
    allreduce(prof[ctx.rank()], ctx, send[ctx.rank()].data(),
              recv[ctx.rank()].data(), count, Datatype::f64, ReduceOp::sum,
              o);
  });
  CollProfiler node;
  for (auto& pr : prof) node += pr;
  EXPECT_EQ(node.get(CollKind::allreduce).dav.total(),
            model::impl::ma_allreduce(count * 8, p));
  EXPECT_GT(node.get(CollKind::allreduce).dab(), 0.0);
}

TEST(Profiler, ReportListsActiveKindsAndTotal) {
  CollProfiler prof;
  prof.add(CollKind::allreduce, 1 << 20, 0.5, copy::Dav{1000, 500});
  prof.add(CollKind::reduce_scatter, 2 << 20, 0.25, copy::Dav{400, 200});
  const auto rep = prof.report();
  EXPECT_NE(rep.find("allreduce"), std::string::npos);
  EXPECT_NE(rep.find("reduce_scatter"), std::string::npos);
  EXPECT_EQ(rep.find("broadcast"), std::string::npos);  // inactive: hidden
  EXPECT_NE(rep.find("TOTAL"), std::string::npos);
}

TEST(Profiler, RecordsDispatchedKernelTier) {
  const int p = 4;
  auto& team = cached_team(p, 1);
  const std::size_t count = 8192 * p;
  std::vector<std::vector<double>> send(p, std::vector<double>(count)),
      recv(p, std::vector<double>(count));
  for (int r = 0; r < p; ++r)
    fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
  std::vector<CollProfiler> prof(p);
  team.run([&](rt::RankCtx& ctx) {
    allreduce(prof[ctx.rank()], ctx, send[ctx.rank()].data(),
              recv[ctx.rank()].data(), count, Datatype::f64, ReduceOp::sum);
  });
  CollProfiler node;
  for (auto& pr : prof) node += pr;
  const auto& r = node.get(CollKind::allreduce);
  EXPECT_GT(r.kernels.total(), 0u);
  EXPECT_EQ(r.kernels.dominant(), copy::active_isa());
  EXPECT_NE(node.report().find(copy::isa_name(copy::active_isa())),
            std::string::npos);
}

TEST(Profiler, ResetClearsEverything) {
  CollProfiler prof;
  prof.add(CollKind::broadcast, 123, 1.0, copy::Dav{9, 9});
  prof.reset();
  EXPECT_EQ(prof.total().calls, 0u);
  EXPECT_EQ(prof.total().dav.total(), 0u);
}

}  // namespace
