// Thread-backed rank team.
//
// Each run() spawns one thread per rank.  Because all ranks share an
// address space, "remote" buffer access is a plain load — which makes this
// backend an exact stand-in for XPMEM-mapped address spaces, and the
// default for tests and benchmarks.
#pragma once

#include "yhccl/runtime/team.hpp"

namespace yhccl::rt {

class ThreadTeam final : public Team {
 public:
  explicit ThreadTeam(TeamConfig cfg) : Team(cfg) {}

 protected:
  void run_ranks(const std::function<void(int)>& wrapped) override;
};

}  // namespace yhccl::rt
