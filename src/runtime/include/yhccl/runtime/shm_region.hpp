// RAII shared-memory mappings.
//
// Two flavours:
//  * anonymous MAP_SHARED mappings — inherited across fork(), which is how
//    ProcessTeam shares its workspace with identical addresses in every
//    rank (no shm_open rendezvous needed);
//  * named POSIX shm objects (shm_open) — provided for completeness and for
//    tests that exercise the OS shared-memory path the paper describes.
#pragma once

#include <cstddef>
#include <string>

namespace yhccl::rt {

class ShmRegion {
 public:
  ShmRegion() = default;
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;
  ShmRegion(ShmRegion&& o) noexcept;
  ShmRegion& operator=(ShmRegion&& o) noexcept;
  ~ShmRegion();

  /// Anonymous shared mapping, zero-initialized, survives fork().
  static ShmRegion create_anonymous(std::size_t bytes);

  /// Named POSIX shm object (O_CREAT | O_EXCL); unlinked on destruction.
  static ShmRegion create_named(const std::string& name, std::size_t bytes);

  /// Map an existing named object created by another process.
  static ShmRegion open_named(const std::string& name, std::size_t bytes);

  std::byte* data() noexcept { return static_cast<std::byte*>(addr_); }
  const std::byte* data() const noexcept {
    return static_cast<const std::byte*>(addr_);
  }
  std::size_t size() const noexcept { return bytes_; }
  bool valid() const noexcept { return addr_ != nullptr; }
  const std::string& name() const noexcept { return name_; }

 private:
  void* addr_ = nullptr;
  std::size_t bytes_ = 0;
  std::string name_;  // empty for anonymous regions
  bool owner_ = false;
};

}  // namespace yhccl::rt
