file(REMOVE_RECURSE
  "libyhccl_netsim.a"
)
