// Synchronization-operation instrumentation.
//
// The paper's §3.3 cost analysis weighs the MA pipeline's p-1 per-step
// neighbour flags against DPML's handful of barriers; this header counts
// those operations the same way dav.hpp counts bytes, so tests and the
// bench comparator can gate on them *exactly* (they are deterministic for
// a given (collective, p, s, geometry), unlike wall time).
//
// Counted at the call sites that express algorithmic intent:
//   barriers    — barrier_arrive / dissemination_arrive entries
//   flag_posts  — RankCtx::step_publish
//   flag_waits  — RankCtx::step_wait
// spin_wait_ge/eq are deliberately *not* counted: step_wait would double,
// and FIFO/rendezvous internals retry a data-dependent number of times.
#pragma once

#include <cstdint>

namespace yhccl::rt {

struct SyncCounts {
  std::uint64_t barriers = 0;    ///< barrier arrivals (central + dissemination)
  std::uint64_t flag_posts = 0;  ///< pipeline progress-flag publishes
  std::uint64_t flag_waits = 0;  ///< pipeline progress-flag waits

  std::uint64_t total() const noexcept {
    return barriers + flag_posts + flag_waits;
  }

  SyncCounts operator-(const SyncCounts& o) const noexcept {
    return SyncCounts{barriers - o.barriers, flag_posts - o.flag_posts,
                      flag_waits - o.flag_waits};
  }
  SyncCounts& operator+=(const SyncCounts& o) noexcept {
    barriers += o.barriers;
    flag_posts += o.flag_posts;
    flag_waits += o.flag_waits;
    return *this;
  }
  bool operator==(const SyncCounts&) const noexcept = default;
};

namespace detail {
inline thread_local SyncCounts g_sync_counts;
}

inline void sync_count_barrier() noexcept {
  ++detail::g_sync_counts.barriers;
}
inline void sync_count_flag_post() noexcept {
  ++detail::g_sync_counts.flag_posts;
}
inline void sync_count_flag_wait() noexcept {
  ++detail::g_sync_counts.flag_waits;
}

inline SyncCounts sync_counts_read() noexcept {
  return detail::g_sync_counts;
}
inline void sync_counts_reset() noexcept {
  detail::g_sync_counts = SyncCounts{};
}

/// RAII delta measurement:  SyncCountScope s; ...; s.delta().barriers
class SyncCountScope {
 public:
  SyncCountScope() : start_(sync_counts_read()) {}
  SyncCounts delta() const noexcept { return sync_counts_read() - start_; }

 private:
  SyncCounts start_;
};

}  // namespace yhccl::rt
