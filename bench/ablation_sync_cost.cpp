// Ablation (ours): synchronization primitive costs underlying the paper's
// MA-vs-socket-aware trade-off (§3.3): per-round the flat MA pipeline pays
// p-1 neighbour flag waits, the socket-aware variant p/m-1 waits plus node
// barriers.  This bench measures both primitives directly at several team
// sizes, quantifying the overhead the socket-aware design amortizes.
#include <memory>

#include "bench_util.hpp"
#include "yhccl/runtime/sync.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  std::printf("Ablation — synchronization primitive cost\n");
  std::printf("%-6s %18s %18s %18s\n", "p", "central-bar(us)",
              "dissem-bar(us)", "flag-chain(us)");
  for (int p : {2, 4, 8, 16}) {
    auto& team = bench_team(p, 2);
    constexpr int kIters = 400;
    // Node barrier.
    team.run([&](rt::RankCtx& ctx) {
      for (int i = 0; i < kIters; ++i) ctx.barrier();
    });
    const double barrier_us = team.max_time() / kIters * 1e6;
    // Dissemination barrier (log2 p rounds of pairwise signalling).
    auto dstate = std::make_unique<rt::DisseminationBarrierState>();
    rt::dissemination_init(*dstate, static_cast<std::uint32_t>(p));
    team.run([&](rt::RankCtx& ctx) {
      rt::DisseminationToken tok;
      for (int i = 0; i < kIters; ++i)
        rt::dissemination_arrive(*dstate, ctx.rank(), tok);
    });
    const double dissem_us = team.max_time() / kIters * 1e6;
    // Neighbour flag chain (the MA pipeline's per-step sync).
    team.run([&](rt::RankCtx& ctx) {
      const auto seq = ctx.next_seq();
      const int right = (ctx.rank() + 1) % ctx.nranks();
      for (int k = 0; k < kIters; ++k) {
        if (k > 0) ctx.step_wait(right, rt::RankCtx::step_value(seq, k));
        ctx.step_publish(rt::RankCtx::step_value(seq, k + 1));
      }
      ctx.barrier();
    });
    const double chain_us = team.max_time() / kIters * 1e6;
    std::printf("%-6d %18.2f %18.2f %18.2f\n", p, barrier_us, dissem_us,
                chain_us);
  }
  std::printf("\n(per large-message round, flat MA pays (p-1) flag waits; "
              "socket-aware MA pays p/m-1 waits + 2-3 barriers)\n");
  return 0;
}
