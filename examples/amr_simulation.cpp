// Example: the Mini-AMR proxy on a YHCCL rank team — the paper's first
// real-world workload (§5.6).  A sphere sweeps through a 3D mesh; blocks
// refine and coarsen around it, and every refinement episode the ranks
// agree on the plan with a large all-reduce.
//
//   $ ./examples/amr_simulation [nranks] [tsteps] [metric_len]
//
// Runs the same simulation twice — once on YHCCL's collectives, once on a
// classic two-copy ring (the Open MPI model) — and reports the speedup,
// verifying both runs agree bit-for-bit on the physics.
#include <cstdio>
#include <cstdlib>

#include "yhccl/apps/miniamr.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/runtime/thread_team.hpp"

using namespace yhccl;

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 4;
  rt::TeamConfig tcfg;
  tcfg.nranks = p;
  tcfg.nsockets = p >= 4 ? 2 : 1;
  rt::ThreadTeam team(tcfg);

  apps::miniamr::Config cfg;
  cfg.tsteps = argc > 2 ? std::atoi(argv[2]) : 10;
  cfg.refine_metric_len =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 524288;

  std::printf("Mini-AMR proxy: %d ranks, %d steps, control all-reduce of "
              "%zu doubles\n",
              p, cfg.tsteps, cfg.refine_metric_len);

  apps::miniamr::Stats yh{}, om{};
  team.run([&](rt::RankCtx& ctx) {
    auto st = apps::miniamr::run_rank(
        ctx, cfg,
        [](rt::RankCtx& c, const double* in, double* out, std::size_t n) {
          coll::allreduce(c, in, out, n, Datatype::f64, ReduceOp::sum);
        });
    if (ctx.rank() == 0) yh = st;
  });
  team.run([&](rt::RankCtx& ctx) {
    auto st = apps::miniamr::run_rank(
        ctx, cfg,
        [](rt::RankCtx& c, const double* in, double* out, std::size_t n) {
          base::ring_allreduce(c, in, out, n, Datatype::f64, ReduceOp::sum,
                               base::Transport::two_copy);
        });
    if (ctx.rank() == 0) om = st;
  });

  std::printf("\n%-18s %10s %10s %10s %8s\n", "collectives", "total(s)",
              "compute(s)", "comm(s)", "blocks");
  std::printf("%-18s %10.3f %10.3f %10.3f %8d\n", "YHCCL",
              yh.total_seconds, yh.compute_seconds, yh.comm_seconds,
              yh.final_blocks);
  std::printf("%-18s %10.3f %10.3f %10.3f %8d\n", "two-copy ring",
              om.total_seconds, om.compute_seconds, om.comm_seconds,
              om.final_blocks);
  std::printf("\nphysics agreement: checksum %s (%.6f)\n",
              yh.checksum == om.checksum ? "IDENTICAL" : "DIFFERS",
              yh.checksum);
  std::printf("application speedup: %.2fx (paper Fig. 17: 1.26-1.67x)\n",
              om.total_seconds / yh.total_seconds);
  return yh.checksum == om.checksum ? 0 : 1;
}
