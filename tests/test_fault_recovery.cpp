// Collective state recovery: after an injected rank death at every protocol
// position (pre-barrier, mid reduce-scatter slice loop, mid pipeline stage),
// Team::recover() must return the *same* team object to a usable state —
// barriers, progress flags, FIFO channels, rendezvous descriptors, and page
// locks re-initialized, the team epoch bumped — and the full collective
// matrix must then pass on both backends.  Process-backed teams shrink to
// the surviving ranks; thread-backed teams restore full membership.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cerrno>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "yhccl/coll/coll.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "yhccl/runtime/sync_timeout.hpp"
#include "yhccl/runtime/thread_team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;

namespace {

enum class Backend { threads, procs };

std::unique_ptr<rt::Team> make_team(Backend b, int p, int m,
                                    rt::HbMode hb = rt::HbMode::env) {
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  cfg.scratch_bytes = 8u << 20;
  cfg.shared_heap_bytes = 8u << 20;
  cfg.hb_check = hb;
  cfg.sync_timeout = 20.0;  // safety net only; detection must be faster
  if (b == Backend::procs) return std::make_unique<rt::ProcessTeam>(cfg);
  return std::make_unique<rt::ThreadTeam>(cfg);
}

double* alloc_f64(rt::Team& team, std::size_t n) {
  return reinterpret_cast<double*>(team.shared_alloc(n * sizeof(double)));
}

/// Inject `spec`, run `work` (must abort naming `victim`), then recover.
void kill_and_recover(rt::Team& team, const std::string& spec, int victim,
                      const std::function<void(rt::RankCtx&)>& work) {
  team.set_fault_plan(rt::FaultPlan::parse(spec));
  const std::uint64_t epoch0 = team.team_epoch();
  try {
    team.run(work);
    ADD_FAILURE() << spec << ": expected an abort";
  } catch (const Error& e) {
    EXPECT_EQ(e.fault_kind(), FaultKind::peer_dead) << spec;
    EXPECT_EQ(e.fault_rank(), victim) << spec;
    EXPECT_EQ(e.fault_epoch(), epoch0) << spec;
  }
  const rt::FaultInfo info = team.recover();
  EXPECT_EQ(info.kind, FaultKind::peer_dead) << spec;
  EXPECT_EQ(info.rank, victim) << spec;
  EXPECT_EQ(team.team_epoch(), epoch0 + 1) << spec;
  team.set_fault_plan(rt::FaultPlan{});
}

/// Full collective matrix over the team's *current* membership, verified
/// against the sequential reference.  Buffers live in the shared heap so
/// the parent of a process team can fill and check them.
void run_matrix(rt::Team& team) {
  const int p = team.nranks();
  const std::size_t n = 2048;
  const auto d = Datatype::f64;
  const auto op = ReduceOp::sum;
  CollOpts opts;

  // Allreduce (socket-aware; falls back to flat when p % sockets != 0).
  std::vector<double*> sb(p), rb(p);
  for (int r = 0; r < p; ++r) {
    sb[r] = alloc_f64(team, n);
    rb[r] = alloc_f64(team, n);
    test::fill_buffer(sb[r], n, d, r, op);
  }
  team.run([&](rt::RankCtx& ctx) {
    socket_ma_allreduce(ctx, sb[ctx.rank()], rb[ctx.rank()], n, d, op, opts);
  });
  for (int r = 0; r < p; ++r)
    EXPECT_TRUE(test::check_reduced(rb[r], n, d, p, op)) << "allreduce r" << r;

  // Reduce-scatter.
  std::vector<double*> ssb(p), srb(p);
  for (int r = 0; r < p; ++r) {
    ssb[r] = alloc_f64(team, n * static_cast<std::size_t>(p));
    srb[r] = alloc_f64(team, n);
    test::fill_buffer(ssb[r], n * static_cast<std::size_t>(p), d, r, op);
  }
  team.run([&](rt::RankCtx& ctx) {
    ma_reduce_scatter(ctx, ssb[ctx.rank()], srb[ctx.rank()], n, d, op, opts);
  });
  for (int r = 0; r < p; ++r)
    EXPECT_TRUE(test::check_reduced(srb[r], n, d, p, op,
                                    static_cast<std::size_t>(r) * n))
        << "reduce_scatter r" << r;

  // Pipelined broadcast (root pattern must land everywhere).
  std::vector<double*> bb(p);
  for (int r = 0; r < p; ++r) {
    bb[r] = alloc_f64(team, n);
    std::memset(bb[r], 0, n * sizeof(double));
  }
  test::fill_buffer(bb[0], n, d, /*rank=*/42, op);
  team.run([&](rt::RankCtx& ctx) {
    pipelined_broadcast(ctx, bb[ctx.rank()], n, d, /*root=*/0, opts);
  });
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(bb[r][i], static_cast<double>(test::gen_value(42, i, op)))
          << "broadcast r" << r << " i" << i;

  // Pipelined allgather.
  std::vector<double*> gs(p), gr(p);
  for (int r = 0; r < p; ++r) {
    gs[r] = alloc_f64(team, n);
    gr[r] = alloc_f64(team, n * static_cast<std::size_t>(p));
    test::fill_buffer(gs[r], n, d, r, op);
  }
  team.run([&](rt::RankCtx& ctx) {
    pipelined_allgather(ctx, gs[ctx.rank()], gr[ctx.rank()], n, d, opts);
  });
  for (int r = 0; r < p; ++r)
    for (int b = 0; b < p; ++b)
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(gr[r][static_cast<std::size_t>(b) * n + i],
                  static_cast<double>(test::gen_value(b, i, op)))
            << "allgather r" << r << " block " << b << " i" << i;
}

void expect_membership_after_recovery(rt::Team& team, Backend b, int victim) {
  if (b == Backend::procs) {
    // The dead rank is excluded; survivors stay dense 0..nranks-1 and
    // global_rank maps them back to their original ids.
    EXPECT_EQ(team.nranks(), 3);
    int seen_victim = 0;
    for (int r = 0; r < team.nranks(); ++r)
      if (team.global_rank(r) == victim) ++seen_victim;
    EXPECT_EQ(seen_victim, 0);
  } else {
    EXPECT_EQ(team.nranks(), 4);  // thread ranks always rejoin
  }
}

class FaultRecovery : public ::testing::TestWithParam<Backend> {
 protected:
  void TearDown() override {
    int status = 0;
    const pid_t z = waitpid(-1, &status, WNOHANG);
    EXPECT_TRUE(z == 0 || (z < 0 && errno == ECHILD))
        << "leaked child process " << z;
  }
};

TEST_P(FaultRecovery, DieAtBarrierEntry) {
  auto team = make_team(GetParam(), 4, 2);
  kill_and_recover(*team, "die@barrier:rank=2:iter=0", 2,
                   [](rt::RankCtx& ctx) {
                     ctx.barrier();
                     ctx.barrier();
                   });
  expect_membership_after_recovery(*team, GetParam(), 2);
  run_matrix(*team);
}

TEST_P(FaultRecovery, DieMidReduceScatterSliceLoop) {
  auto team = make_team(GetParam(), 4, 2);
  const std::size_t n = 2048;
  std::vector<double*> sb(4), rb(4);
  for (int r = 0; r < 4; ++r) {
    sb[r] = alloc_f64(*team, n * 4);
    rb[r] = alloc_f64(*team, n);
    test::fill_buffer(sb[r], n * 4, Datatype::f64, r, ReduceOp::sum);
  }
  // iter=3: the 4th slice step of the first round — mid ownership rotation,
  // with peers blocked on the victim's progress flag.
  kill_and_recover(*team, "die@slice:rank=1:iter=3", 1,
                   [&](rt::RankCtx& ctx) {
                     ma_reduce_scatter(ctx, sb[ctx.rank()], rb[ctx.rank()], n,
                                       Datatype::f64, ReduceOp::sum,
                                       CollOpts{});
                   });
  expect_membership_after_recovery(*team, GetParam(), 1);
  run_matrix(*team);
}

TEST_P(FaultRecovery, DieMidPipelineStage) {
  auto team = make_team(GetParam(), 4, 2);
  const std::size_t n = 4096;
  CollOpts opts;
  opts.slice_max = 4096;  // 32 KiB of doubles -> 8 pipeline stages
  std::vector<double*> bb(4);
  for (int r = 0; r < 4; ++r) {
    bb[r] = alloc_f64(*team, n);
    test::fill_buffer(bb[r], n, Datatype::f64, r, ReduceOp::sum);
  }
  kill_and_recover(*team, "die@pipeline:rank=1:iter=1", 1,
                   [&](rt::RankCtx& ctx) {
                     pipelined_broadcast(ctx, bb[ctx.rank()], n, Datatype::f64,
                                         /*root=*/0, opts);
                   });
  expect_membership_after_recovery(*team, GetParam(), 1);
  run_matrix(*team);
}

INSTANTIATE_TEST_SUITE_P(Backends, FaultRecovery,
                         ::testing::Values(Backend::threads, Backend::procs),
                         [](const auto& info) {
                           return info.param == Backend::threads ? "threads"
                                                                 : "procs";
                         });

// One leg under the happens-before checker: the recovery edges inserted by
// HbChecker::on_recover() must keep pre-recovery shadow state from raising
// false races against the re-run.
TEST(FaultRecoveryHb, RecoveryEdgesKeepCheckerQuiet) {
  auto team = make_team(Backend::threads, 4, 2, rt::HbMode::on);
  ASSERT_NE(team->hb_checker(), nullptr);
  const std::size_t n = 2048;
  std::vector<double*> sb(4), rb(4);
  for (int r = 0; r < 4; ++r) {
    sb[r] = alloc_f64(*team, n);
    rb[r] = alloc_f64(*team, n);
    test::fill_buffer(sb[r], n, Datatype::f64, r, ReduceOp::sum);
  }
  kill_and_recover(*team, "die@slice:rank=1:iter=3", 1,
                   [&](rt::RankCtx& ctx) {
                     ma_allreduce(ctx, sb[ctx.rank()], rb[ctx.rank()], n,
                                  Datatype::f64, ReduceOp::sum, CollOpts{});
                   });
  run_matrix(*team);
  EXPECT_EQ(team->hb_races(), 0u) << team->hb_report();
}

}  // namespace
