// The per-call tuner engine: resolve a plan at collective entry, feed the
// measured time back at exit (docs/tuning.md).
//
// Hot path (warm cache, prior mode): one hash, one bounded probe, one
// acquire load, zero allocation, zero barriers.  Online mode adds exactly
// two barriers per call (leading in resolve, trailing in finish); their
// release/acquire edges are what make rank 0's refinement race-free.
#include "yhccl/coll/plan.hpp"
#include "yhccl/common/time.hpp"
#include "yhccl/metrics/metrics.hpp"
#include "yhccl/runtime/fault.hpp"

namespace yhccl::coll::plan {

namespace {

thread_local std::uint64_t tl_last_plan = 0;

}  // namespace

std::uint64_t last_plan_word() noexcept { return tl_last_plan; }

TunedCall::TunedCall(rt::RankCtx& ctx, CollKind kind, std::size_t msg_bytes,
                     Datatype d, ReduceOp op, const CollOpts& opts)
    : opts_(opts), base_opts_(opts) {
  rt::Team& team = ctx.team();
  auto* reg = team.plan_registry();
  if (reg == nullptr || msg_bytes == 0 ||
      opts.algorithm != Algorithm::automatic)
    return;  // bypass: the caller runs the legacy static path

  // One-time $YHCCL_PLAN_FILE handshake; a warm registry costs one load.
  warm_now(team);

  key_ = make_key(kind, msg_bytes, d, op, team.topo(), opts);
  const std::uint64_t hash =
      key_.hash(team.plan_signature(), opts_signature(opts));
  online_ = team.tune_mode() == rt::TuneMode::online;

  rt::PlanSlot* slot = nullptr;
  if (online_) {
    // Leading barrier: rank 0 publishes refined plan words strictly after
    // the previous call's trailing barrier, so arriving here guarantees
    // every rank reads the same committed word below.
    ctx.barrier();
    slot = reg->acquire(hash, key_.packed_fields());
  } else {
    // prior mode: the registry is read-only (analytic prior + loaded
    // plans); no insertions, no barriers, no cross-rank protocol needed.
    slot = reg->find(hash);
  }

  // Resilience gates (docs/robustness.md §resume).  Both flags are set
  // parent-side before run_ranks, so every rank — thread- or fork-backed —
  // reads the same values and the cross-rank agreement invariant holds.
  degraded_ = team.degraded();
  quarantined_ = slot != nullptr &&
                 rt::PlanRegistry::quarantined(*slot, team.team_epoch());
  if (ctx.rank() == 0) reg->note_inflight(hash);

  std::uint64_t word =
      slot != nullptr ? slot->plan.load(std::memory_order_acquire) : 0;
  // Read-side integrity: a committed word must satisfy the structural
  // contract (valid bit + clear reserved bits); a torn or corrupted word
  // must never steer the schedule — every rank would unpack garbage and
  // the team would diverge.  Raise a coherent corruption abort instead.
  if (!rt::plan_word_sane(word))
    rt::fault_raise_corruption("plan cache: stored plan word failed "
                               "structural validation");
  // Degraded lane / quarantine: ignore the cached word and serve the
  // deterministic analytic prior.
  if (degraded_ || quarantined_) word = 0;
  if (word != 0)
    plan_ = Plan::unpack(word);
  else
    plan_ = prior_plan(key_, base_opts_, team.topo(), ctx.cache());
  narms_ = arm_count(key_, base_opts_, team.topo());

  if (online_ && slot != nullptr && narms_ > 1 && !degraded_ &&
      !quarantined_) {
    // Epsilon-greedy exploration.  The schedule is a pure function of
    // (key hash, shared tune_seq), so every rank flips the same coin and
    // picks the same arm with no communication.  tune_seq advances
    // identically everywhere because collectives are called in the same
    // order on every rank (MPI semantics).
    const std::uint64_t seq = ctx.next_tune_seq();
    std::uint32_t eps = reg->eps_mille();
    const auto wait = reg->class_wait(static_cast<int>(kind));
    if (wait > 0.5) eps = eps * 2 > 1000 ? 1000 : eps * 2;
    const std::uint64_t mix =
        rt::plan_mix64(hash ^ seq * 0x9e3779b97f4a7c15ull);
    if (mix % 1000 < eps) {
      const int arm = static_cast<int>(
          (mix >> 32) % static_cast<std::uint64_t>(narms_));
      plan_ = arm_plan(arm, key_, base_opts_, team.topo(), ctx.cache());
      if (ctx.rank() == 0) reg->note_explore();
    }
  }

  if (ctx.rank() == 0) {
    // Only rank 0 bumps the slot counter, so "first lookup ever" (the
    // cache miss) is deterministic even when another rank won the
    // slot-claiming CAS.
    const bool hit =
        slot != nullptr &&
        slot->hits.fetch_add(1, std::memory_order_relaxed) > 0;
    reg->note_lookup(hit);
  }

  plan_.apply(opts_);
  slot_ = slot;
  active_ = true;
  finished_ = false;
  if (online_) t0_ = wall_seconds();
  tl_last_plan = plan_.pack();
  // Serving gauge: what the tuner handed this collective kind last (the
  // yhccl_top "plan" column); ids follow the trace name-table convention.
  metrics::note_plan(
      1 + static_cast<int>(key_.kind),
      metrics::plan_gauge_pack(1 + static_cast<int>(plan_.algorithm),
                               plan_.arm, static_cast<int>(plan_.source),
                               key_.bucket));
}

void TunedCall::finish(rt::RankCtx& ctx) {
  if (!active_ || finished_) return;
  finished_ = true;
  // Success path: clear the in-flight attribution the retry engine would
  // have charged this key with had the collective aborted.
  if (ctx.rank() == 0) ctx.team().plan_registry()->note_inflight(0);
  if (!online_) return;
  const double dt = wall_seconds() - t0_;
  // Trailing barrier: every rank's plan-word read for *this* call happened
  // before this point, so rank 0 may rewrite the word without racing a
  // reader.  The next reader is behind the next call's leading barrier,
  // which rank 0 only reaches after the store below.
  ctx.barrier();
  if (ctx.rank() != 0 || slot_ == nullptr) return;
  // Quarantined/degraded calls ran the prior, not their arm: folding their
  // time into the arm statistics (or re-committing a word) would defeat
  // the quarantine.  The key re-enters refinement when the mark expires.
  if (quarantined_ || degraded_) return;

  slot_->update_arm(plan_.arm, dt);

  // Refinement: commit the best-measured arm once it has at least two
  // samples and beats the incumbent by > 3% (hysteresis against noise).
  const std::uint64_t word = slot_->plan.load(std::memory_order_relaxed);
  const int cur = word != 0 ? Plan::unpack(word).arm : 0;
  int best = -1;
  double best_t = 0;
  for (int a = 0; a < narms_; ++a) {
    if (slot_->arm_n[a].load(std::memory_order_relaxed) == 0) continue;
    const double t = slot_->ewma_seconds(a);
    if (best < 0 || t < best_t) {
      best = a;
      best_t = t;
    }
  }
  if (best < 0 || best == cur) return;
  if (slot_->arm_n[best].load(std::memory_order_relaxed) < 2) return;
  if (slot_->arm_n[cur].load(std::memory_order_relaxed) == 0) return;
  if (best_t >= 0.97 * slot_->ewma_seconds(cur)) return;

  Plan p = arm_plan(best, key_, base_opts_, ctx.team().topo(), ctx.cache());
  p.source = PlanSource::online;
  slot_->plan.store(p.pack(), std::memory_order_release);
  ctx.team().plan_registry()->note_commit();
}

Plan query(const rt::Team& team, CollKind kind, std::size_t msg_bytes,
           Datatype d, ReduceOp op, const CollOpts& opts) {
  const PlanKey key = make_key(kind, msg_bytes, d, op, team.topo(), opts);
  if (const auto* reg = team.plan_registry()) {
    const auto* slot =
        reg->find(key.hash(team.plan_signature(), opts_signature(opts)));
    if (slot != nullptr) {
      const std::uint64_t w = slot->plan.load(std::memory_order_acquire);
      if (!rt::plan_word_sane(w))
        rt::fault_raise_corruption("plan cache: stored plan word failed "
                                   "structural validation");
      if (w != 0 && !rt::PlanRegistry::quarantined(*slot, team.team_epoch()))
        return Plan::unpack(w);
    }
  }
  return prior_plan(key, opts, team.topo(), team.config().cache);
}

rt::PlanRegistryStats tune_stats(const rt::Team& team) {
  const auto* reg = team.plan_registry();
  return reg != nullptr ? reg->stats() : rt::PlanRegistryStats{};
}

}  // namespace yhccl::coll::plan
