// Runtime ISA tier detection and kernel-table selection.
//
// Selection order, resolved once on first use:
//   1. cpuid (__builtin_cpu_supports) picks the best tier the host runs;
//   2. the build clamps to the tiers actually compiled in (a toolchain
//      without AVX-512 support still produces a working binary);
//   3. YHCCL_ISA=scalar|avx2|avx512 caps — never raises — the result, so a
//      forced tier is always safe to execute.
// force_isa() applies the same clamping for tests and benches.
#include "yhccl/copy/isa.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "yhccl/copy/dispatch.hpp"

namespace yhccl::copy {

// Defined in the per-tier TUs; see CMakeLists for which are compiled in.
const KernelTable& scalar_table() noexcept;
#if YHCCL_HAVE_AVX2_TU
const KernelTable& avx2_table() noexcept;
#endif
#if YHCCL_HAVE_AVX512_TU
const KernelTable& avx512_table() noexcept;
#endif

namespace {

IsaTier best_built(IsaTier t) noexcept {
#if !YHCCL_HAVE_AVX512_TU
  if (t == IsaTier::avx512) t = IsaTier::avx2;
#endif
#if !YHCCL_HAVE_AVX2_TU
  if (t == IsaTier::avx2) t = IsaTier::scalar;
#endif
  return t;
}

IsaTier detect() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw"))
    return best_built(IsaTier::avx512);
  if (__builtin_cpu_supports("avx2")) return best_built(IsaTier::avx2);
#endif
  return IsaTier::scalar;
}

const KernelTable& table_for(IsaTier t) noexcept {
  switch (best_built(t)) {
#if YHCCL_HAVE_AVX512_TU
    case IsaTier::avx512: return avx512_table();
#endif
#if YHCCL_HAVE_AVX2_TU
    case IsaTier::avx2: return avx2_table();
#endif
    default: return scalar_table();
  }
}

/// Initial tier: detection capped by the YHCCL_ISA environment override.
IsaTier initial_isa() noexcept {
  IsaTier t = detect();
  const char* e = std::getenv("YHCCL_ISA");
  if (e != nullptr && *e != '\0') {
    IsaTier req;
    if (!isa_from_string(e, req)) {
      std::fprintf(stderr,
                   "yhccl: ignoring unknown YHCCL_ISA=%s "
                   "(expected scalar|avx2|avx512)\n",
                   e);
    } else if (static_cast<int>(req) < static_cast<int>(t)) {
      t = req;  // caps only: requesting above the host's support is unsafe
    }
  }
  return t;
}

std::atomic<const KernelTable*>& active_table() noexcept {
  static std::atomic<const KernelTable*> tbl{&table_for(initial_isa())};
  return tbl;
}

}  // namespace

IsaTier detected_isa() noexcept {
  static const IsaTier t = detect();
  return t;
}

IsaTier active_isa() noexcept {
  return active_table().load(std::memory_order_acquire)->tier;
}

IsaTier force_isa(IsaTier t) noexcept {
  if (static_cast<int>(t) > static_cast<int>(detected_isa()))
    t = detected_isa();
  const KernelTable& tbl = table_for(t);
  active_table().store(&tbl, std::memory_order_release);
  return tbl.tier;
}

bool isa_from_string(const char* s, IsaTier& out) noexcept {
  if (s == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0) out = IsaTier::scalar;
  else if (std::strcmp(s, "avx2") == 0) out = IsaTier::avx2;
  else if (std::strcmp(s, "avx512") == 0) out = IsaTier::avx512;
  else return false;
  return true;
}

const KernelTable& kernels() noexcept {
  return *active_table().load(std::memory_order_acquire);
}

const KernelTable& kernel_table(IsaTier t) noexcept { return table_for(t); }

}  // namespace yhccl::copy
