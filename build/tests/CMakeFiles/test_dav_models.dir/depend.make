# Empty dependencies file for test_dav_models.
# This may be replaced when dependencies are built.
