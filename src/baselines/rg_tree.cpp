// RG [Jain et al., SC'18] — the pipelined k-ary tree reduction on shared
// memory used by Intel MPI's intra-node collectives (paper Fig. 1a).
//
// Every rank owns a double-buffered I-sized slot in shared memory.  Per
// slice, leaves copy their sendbuf slice into their slot; interior nodes
// wait for their children's slots, reduce children + own contribution into
// their slot (the root delivers into its receive buffer).  Copy-ins by the
// children are exactly the redundant movement MA avoids: every non-root
// byte crosses shared memory.
//
// Flow control: a node may overwrite its slot for slice t (same buffer as
// slice t-2) only after its parent has consumed slice t-2, signalled with
// the per-rank progress flags.
#include <cstdint>

#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/kernels.hpp"
#include "yhccl/copy/reduce_kernels.hpp"

namespace yhccl::base {

namespace {

struct TreePos {
  int parent = -1;           // real rank of parent (-1 for root)
  int children[16];          // real ranks
  int nchildren = 0;
};

/// Heap-ordered k-ary tree on virtual ids v = (rank - root) mod p.
TreePos tree_position(int rank, int root, int p, int k) {
  TreePos t;
  const int v = (rank - root + p) % p;
  if (v != 0) t.parent = ((v - 1) / k + root) % p;
  for (int i = 0; i < k; ++i) {
    const int c = v * k + 1 + i;
    if (c < p && t.nchildren < 16) t.children[t.nchildren++] = (c + root) % p;
  }
  return t;
}

}  // namespace

void rg_reduce(RankCtx& ctx, const void* send, void* recv, std::size_t count,
               Datatype d, ReduceOp op, int root, const RgOpts& opts) {
  coll::detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t s = count * dtype_size(d);
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, s);
    return;
  }
  YHCCL_REQUIRE(opts.branch >= 1 && opts.branch <= 16, "rg branch degree");
  const std::size_t I =
      std::max(round_up(std::min(opts.slice, std::max(s, std::size_t{1})),
                        kCacheline),
               kCacheline);
  const std::size_t nsl = ceil_div(s, I);
  coll::detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(2 * static_cast<std::size_t>(p) * I);
  auto slot = [&](int rank, std::size_t t) {
    return shm + (static_cast<std::size_t>(rank) * 2 + t % 2) * I;
  };
  const TreePos pos = tree_position(ctx.rank(), root, p, opts.branch);
  const std::uint64_t seq = ctx.next_seq();
  auto sv = [&](std::uint64_t step) { return rt::RankCtx::step_value(seq, step); };

  for (std::size_t t = 0; t < nsl; ++t) {
    const std::size_t len = std::min(I, s - t * I);
    // Flow control: slice t reuses the slice t-2 buffer; the parent must
    // have consumed slice t-2 (its flag reaches t-1) before we overwrite.
    if (pos.parent >= 0 && t >= 2) ctx.step_wait(pos.parent, sv(t - 1));
    if (pos.nchildren == 0) {
      copy::t_copy(slot(ctx.rank(), t), sb + t * I, len);
    } else {
      for (int c = 0; c < pos.nchildren; ++c)
        ctx.step_wait(pos.children[c], sv(t + 1));
      const void* srcs[18];
      srcs[0] = sb + t * I;
      for (int c = 0; c < pos.nchildren; ++c)
        srcs[c + 1] = slot(pos.children[c], t);
      std::byte* dest =
          pos.parent < 0 ? rb + t * I : slot(ctx.rank(), t);
      copy::reduce_out_multi(dest, srcs, pos.nchildren + 1, len, d, op,
                             /*nt_store=*/false);
    }
    ctx.step_publish(sv(t + 1));
  }
  ctx.barrier();  // slots may be reused by the next collective
}

void rg_allreduce(RankCtx& ctx, const void* send, void* recv,
                  std::size_t count, Datatype d, ReduceOp op,
                  const RgOpts& opts) {
  // Tree reduce to rank 0 followed by the classic pipelined shared-memory
  // broadcast with memmove-style copies (the configuration the paper
  // attributes to the RG framework).
  rg_reduce(ctx, send, recv, count, d, op, /*root=*/0, opts);
  CollOpts bopts;
  bopts.policy = copy::CopyPolicy::memmove_model;
  bopts.slice_max = opts.slice;
  coll::pipelined_broadcast(ctx, recv, count, d, /*root=*/0, bopts);
}

}  // namespace yhccl::base
