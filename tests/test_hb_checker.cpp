// The happens-before checker must (a) flag seeded true races in both
// thread- and fork-backed teams, (b) stay silent on every properly
// synchronized protocol, including all production collectives, and (c)
// enforce the new barrier/seqlock hardening in the runtime.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "yhccl/analysis/hb.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/common/error.hpp"
#include "yhccl/copy/kernels.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "yhccl/runtime/thread_team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using test::check_reduced;
using test::fill_buffer;

namespace {

rt::TeamConfig checked_cfg(int p, int m = 1) {
  rt::TeamConfig cfg;
  cfg.nranks = p;
  cfg.nsockets = m;
  cfg.scratch_bytes = 4u << 20;  // small scratch → cacheline shadow cells
  cfg.shared_heap_bytes = 4u << 20;
  cfg.hb_check = rt::HbMode::on;
  return cfg;
}

/// Rank 0 writes a scratch slice, then "publishes" through a relaxed flag
/// store with no release edge; rank 1 waits on the flag and reads the
/// slice.  Data-race-free executions exist timing-wise, but no
/// happens-before edge orders the accesses — the checker must flag it in
/// every interleaving.
void missing_release_body(rt::RankCtx& ctx) {
  std::byte* slice = ctx.scratch();
  std::byte local[256];
  if (ctx.rank() == 0) {
    std::memset(local, 7, sizeof(local));
    copy::t_copy(slice, local, sizeof(local));
    ctx.flag(0).store(1, std::memory_order_relaxed);  // BUG: no release
  } else if (ctx.rank() == 1) {
    rt::spin_wait_ge(ctx.flag(0), 1);  // acquires nothing: flag never released
    copy::t_copy(local, slice, sizeof(local));
  }
}

/// Rank 1 reads the slice with no synchronization at all while rank 0
/// writes it — the "slice read before the peer's flag publish" bug.
void read_before_publish_body(rt::RankCtx& ctx) {
  std::byte* slice = ctx.scratch();
  std::byte local[256];
  if (ctx.rank() == 0) {
    std::memset(local, 9, sizeof(local));
    copy::t_copy(slice, local, sizeof(local));
    ctx.step_publish(rt::RankCtx::step_value(1, 1));
  } else if (ctx.rank() == 1) {
    copy::t_copy(local, slice, sizeof(local));  // BUG: no step_wait first
  }
}

}  // namespace

TEST(HbChecker, MissingReleaseFlaggedThreadTeam) {
  rt::ThreadTeam team(checked_cfg(2));
  EXPECT_THROW(team.run(missing_release_body), Error);
  EXPECT_GT(team.hb_races(), 0u);
  const std::string report = team.hb_report();
  EXPECT_NE(report.find("t_copy"), std::string::npos) << report;
  EXPECT_NE(report.find("coll-scratch"), std::string::npos) << report;
}

TEST(HbChecker, MissingReleaseFlaggedProcessTeam) {
  rt::ProcessTeam team(checked_cfg(2));
  EXPECT_THROW(team.run(missing_release_body), Error);
  // The race counter lives in the shared mapping: visible from the parent
  // even though the racing ranks were fork()ed children.
  EXPECT_GT(team.hb_races(), 0u);
  EXPECT_FALSE(team.hb_report().empty());
}

TEST(HbChecker, ReadBeforePublishFlaggedThreadTeam) {
  rt::ThreadTeam team(checked_cfg(2));
  EXPECT_THROW(team.run(read_before_publish_body), Error);
  EXPECT_GT(team.hb_races(), 0u);
}

TEST(HbChecker, ReadBeforePublishFlaggedProcessTeam) {
  rt::ProcessTeam team(checked_cfg(2));
  EXPECT_THROW(team.run(read_before_publish_body), Error);
  EXPECT_GT(team.hb_races(), 0u);
}

TEST(HbChecker, ProperFlagProtocolRunsClean) {
  rt::ThreadTeam team(checked_cfg(2));
  team.run([](rt::RankCtx& ctx) {
    std::byte* slice = ctx.scratch();
    std::byte local[256];
    if (ctx.rank() == 0) {
      std::memset(local, 7, sizeof(local));
      copy::t_copy(slice, local, sizeof(local));
      ctx.step_publish(rt::RankCtx::step_value(1, 1));
    } else if (ctx.rank() == 1) {
      ctx.step_wait(0, rt::RankCtx::step_value(1, 1));
      copy::t_copy(local, slice, sizeof(local));
    }
    ctx.barrier();
    // Reuse in the opposite direction, ordered by the barrier.
    if (ctx.rank() == 1) copy::t_copy(slice, local, sizeof(local));
  });
  EXPECT_EQ(team.hb_races(), 0u);
}

TEST(HbChecker, BarrierEdgesCoverAllRanks) {
  // Every rank writes its own slice, barriers, then reads every *other*
  // rank's slice: only the transitive all-to-all barrier edge makes this
  // clean, so it exercises the winner-rejoin modelling of barrier_arrive.
  const int p = 6;
  rt::ThreadTeam team(checked_cfg(p, 2));
  team.run([p](rt::RankCtx& ctx) {
    std::byte* base = ctx.scratch();
    std::byte local[128];
    std::memset(local, ctx.rank() + 1, sizeof(local));
    copy::t_copy(base + ctx.rank() * 128, local, sizeof(local));
    ctx.barrier();
    for (int r = 0; r < p; ++r)
      if (r != ctx.rank()) copy::t_copy(local, base + r * 128, sizeof(local));
  });
  EXPECT_EQ(team.hb_races(), 0u);
}

TEST(HbChecker, AllCollectivesRunCleanThreadTeam) {
  rt::ThreadTeam team(checked_cfg(4, 2));
  const std::size_t count = 20000;
  std::vector<double> send(count), recv(count);
  for (auto alg : {coll::Algorithm::ma_flat, coll::Algorithm::ma_socket_aware,
                   coll::Algorithm::dpml_two_level}) {
    coll::CollOpts o;
    o.algorithm = alg;
    o.slice_max = 8u << 10;
    team.run([&](rt::RankCtx& ctx) {
      std::vector<double> s(count), r(count);
      fill_buffer(s.data(), count, Datatype::f64, ctx.rank(), ReduceOp::sum);
      coll::allreduce(ctx, s.data(), r.data(), count, Datatype::f64,
                      ReduceOp::sum, o);
      if (ctx.rank() == 0) std::memcpy(recv.data(), r.data(), count * 8);
    });
    EXPECT_EQ(team.hb_races(), 0u) << algorithm_name(alg) << ": "
                                   << team.hb_report();
    EXPECT_TRUE(check_reduced(recv.data(), count, Datatype::f64, 4,
                              ReduceOp::sum))
        << algorithm_name(alg);
  }
  // The remaining collective shapes, generic entry points.
  team.run([&](rt::RankCtx& ctx) {
    const std::size_t c = 5000;
    std::vector<float> s(c * 4), r(c * 4);
    fill_buffer(s.data(), c * 4, Datatype::f32, ctx.rank(), ReduceOp::max);
    coll::reduce_scatter(ctx, s.data(), r.data(), c, Datatype::f32,
                         ReduceOp::max);
    coll::reduce(ctx, s.data(), r.data(), c, Datatype::f32, ReduceOp::max, 0);
    coll::broadcast(ctx, s.data(), c, Datatype::f32, 0);
    coll::allgather(ctx, s.data(), r.data(), c / 4, Datatype::f32);
  });
  EXPECT_EQ(team.hb_races(), 0u) << team.hb_report();
}

TEST(HbChecker, AllCollectivesRunCleanProcessTeam) {
  rt::ProcessTeam team(checked_cfg(4, 2));
  const std::size_t count = 15000;
  auto* out = reinterpret_cast<double*>(team.shared_alloc(count * 8));
  team.run([&](rt::RankCtx& ctx) {
    std::vector<double> s(count), r(count);
    fill_buffer(s.data(), count, Datatype::f64, ctx.rank(), ReduceOp::sum);
    coll::allreduce(ctx, s.data(), r.data(), count, Datatype::f64,
                    ReduceOp::sum);
    coll::broadcast(ctx, r.data(), count, Datatype::f64, 0);
    if (ctx.rank() == 0) std::memcpy(out, r.data(), count * 8);
    ctx.barrier();
  });
  EXPECT_EQ(team.hb_races(), 0u) << team.hb_report();
  EXPECT_TRUE(check_reduced(out, count, Datatype::f64, 4, ReduceOp::sum));
}

TEST(HbChecker, Pt2PtAndRendezvousRunClean) {
  for (int backend = 0; backend < 2; ++backend) {
    std::unique_ptr<rt::Team> team;
    if (backend == 0)
      team = std::make_unique<rt::ThreadTeam>(checked_cfg(2));
    else
      team = std::make_unique<rt::ProcessTeam>(checked_cfg(2));
    team->run([](rt::RankCtx& ctx) {
      std::vector<std::uint64_t> buf(8192, ctx.rank() + 1u);
      std::vector<std::uint64_t> in(8192);
      if (ctx.rank() == 0) {
        ctx.send(1, buf.data(), buf.size() * 8, 5);
        ctx.recv(1, in.data(), in.size() * 8, 6);
        ctx.send_zc(1, buf.data(), buf.size() * 8);
      } else {
        ctx.recv(0, in.data(), in.size() * 8, 5);
        ctx.send(0, buf.data(), buf.size() * 8, 6);
        ctx.recv_zc(0, in.data(), in.size() * 8);
        for (auto v : in) ASSERT_EQ(v, 1u);
      }
    });
    EXPECT_EQ(team->hb_races(), 0u) << team->hb_report();
  }
}

TEST(HbChecker, SharedHeapTrackedAcrossProcesses) {
  // Unsynchronized writes to the same shared-heap line from two rank
  // processes: invisible to TSan, caught by the shared-state checker.
  rt::ProcessTeam team(checked_cfg(2));
  std::byte* p = team.shared_alloc(256);
  EXPECT_THROW(team.run([p](rt::RankCtx& ctx) {
    std::byte local[64];
    std::memset(local, ctx.rank(), sizeof(local));
    copy::t_copy(p, local, sizeof(local));  // both ranks, same line, no sync
  }),
               Error);
  EXPECT_GT(team.hb_races(), 0u);
  EXPECT_NE(team.hb_report().find("shared-heap"), std::string::npos)
      << team.hb_report();
}

TEST(HbChecker, CheckerOffByDefaultCostsNothing) {
  rt::TeamConfig cfg = checked_cfg(2);
  cfg.hb_check = rt::HbMode::off;
  rt::ThreadTeam team(cfg);
  ASSERT_EQ(team.hb_checker(), nullptr);
  // The seeded race runs un-flagged when the checker is off.
  team.run(read_before_publish_body);
  EXPECT_EQ(team.hb_races(), 0u);
}

// ---- satellite: dissemination barrier hardening ---------------------------

TEST(HbChecker, DisseminationInitRejectsOverflow) {
  auto state = std::make_unique<rt::DisseminationBarrierState>();
  EXPECT_THROW(rt::dissemination_init(*state, rt::kMaxBarrierRanks + 1),
               Error);
  EXPECT_THROW(rt::dissemination_init(*state, 0), Error);
  EXPECT_NO_THROW(rt::dissemination_init(*state, rt::kMaxBarrierRanks));
}

// ---- satellite: registry seqlock ------------------------------------------

TEST(HbChecker, RemoteBufferSeqlockNeverTears) {
  // Rank 0 republishes its window as fast as it can with matched
  // (ptr, bytes) pairs; rank 1 snapshots concurrently.  A torn read shows
  // up as a mismatched pair.  (The pre-seqlock code returned half-updated
  // descriptors here.)
  rt::TeamConfig cfg;  // checker off: this test hammers an intentional
  cfg.nranks = 2;      // writer/reader overlap, only snapshots must hold
  cfg.hb_check = rt::HbMode::off;
  rt::ThreadTeam team(cfg);
  const int iters = 20000;
  team.run([&](rt::RankCtx& ctx) {
    std::byte* base = ctx.scratch();
    if (ctx.rank() == 0) {
      for (int i = 1; i <= iters; ++i)
        ctx.publish_buffer(0, base + i, static_cast<std::size_t>(i));
      ctx.flag(0).store(1, std::memory_order_release);
    } else {
      while (ctx.flag(0).load(std::memory_order_acquire) == 0) {
        const rt::RemoteBuf rb = ctx.remote_buffer(0, 0);
        if (rb.ptr == nullptr) continue;  // not yet published
        const auto off = static_cast<const std::byte*>(rb.ptr) - base;
        ASSERT_EQ(static_cast<std::size_t>(off), rb.bytes)
            << "torn seqlock snapshot";
      }
    }
  });
}
