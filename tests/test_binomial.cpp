// Tests for the binomial-tree broadcast and reduce baselines: every root,
// both transports, non-power-of-two rank counts, and agreement with the
// YHCCL collectives.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "yhccl/baselines/baselines.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::base;
using test::cached_team;
using test::check_reduced;
using test::fill_buffer;

namespace {

struct Case {
  int p;
  std::size_t count;
  Transport t;
  std::string name() const {
    return "p" + std::to_string(p) + "_n" + std::to_string(count) +
           (t == Transport::two_copy ? "_twocopy" : "_singlecopy");
  }
};

std::vector<Case> cases() {
  std::vector<Case> cs;
  for (int p : {1, 2, 3, 5, 8})
    for (std::size_t n : {std::size_t{1}, std::size_t{777},
                          std::size_t{40000}})
      for (Transport t : {Transport::two_copy, Transport::single_copy})
        cs.push_back({p, n, t});
  return cs;
}

class BinomialSweep : public ::testing::TestWithParam<Case> {};

TEST_P(BinomialSweep, BroadcastFromEveryRoot) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, 1);
  for (int root = 0; root < c.p; ++root) {
    std::vector<std::vector<double>> buf(c.p,
                                         std::vector<double>(c.count));
    for (int r = 0; r < c.p; ++r)
      fill_buffer(buf[r].data(), c.count, Datatype::f64,
                  r == root ? 42 : r, ReduceOp::sum);
    team.run([&](rt::RankCtx& ctx) {
      binomial_broadcast(ctx, buf[ctx.rank()].data(), c.count, Datatype::f64,
                         root, c.t);
    });
    for (int r = 0; r < c.p; ++r)
      ASSERT_EQ(buf[r], buf[root]) << "root " << root << " rank " << r;
  }
}

TEST_P(BinomialSweep, ReduceToEveryRoot) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, 1);
  std::vector<std::vector<double>> send(c.p), recv(c.p);
  for (int r = 0; r < c.p; ++r) {
    send[r].resize(c.count);
    recv[r].assign(c.count, -1);
    fill_buffer(send[r].data(), c.count, Datatype::f64, r, ReduceOp::sum);
  }
  for (int root = 0; root < c.p; ++root) {
    for (int r = 0; r < c.p; ++r)
      std::fill(recv[r].begin(), recv[r].end(), -1);
    team.run([&](rt::RankCtx& ctx) {
      binomial_reduce(ctx, send[ctx.rank()].data(),
                      ctx.rank() == root ? recv[ctx.rank()].data() : nullptr,
                      c.count, Datatype::f64, ReduceOp::sum, root, c.t);
    });
    EXPECT_TRUE(check_reduced(recv[root].data(), c.count, Datatype::f64,
                              c.p, ReduceOp::sum))
        << "root " << root;
    for (int r = 0; r < c.p; ++r) {
      if (r != root) EXPECT_EQ(recv[r][0], -1) << "rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinomialSweep, ::testing::ValuesIn(cases()),
                         [](const auto& i) { return i.param.name(); });

TEST(Binomial, MaxAndMinOpsToo) {
  const int p = 6;
  auto& team = cached_team(p, 1);
  const std::size_t n = 5000;
  std::vector<std::vector<std::int64_t>> send(p), recv(p);
  for (int r = 0; r < p; ++r) {
    send[r].resize(n);
    recv[r].assign(n, -1);
    fill_buffer(send[r].data(), n, Datatype::i64, r, ReduceOp::max);
  }
  team.run([&](rt::RankCtx& ctx) {
    binomial_reduce(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
                    n, Datatype::i64, ReduceOp::max, 0);
  });
  EXPECT_TRUE(
      check_reduced(recv[0].data(), n, Datatype::i64, p, ReduceOp::max));
}

}  // namespace
