// Ring collectives [Patarasuk & Yuan 2009]: the bandwidth-optimal
// send/recv baseline (paper Tables 1-2, Figs. 9/11/15).
//
// Two transports model the two intra-node MPI paths the paper discusses:
// the eager two-copy shared-memory FIFO and the kernel-assisted
// single-copy pull (CMA/KNEM).  With single-copy, ring reduce-scatter
// costs 5I per rank per step (2I pull + 3I reduce) — the Table 1 entry of
// 5*s*(p-1) per node.
#include <vector>

#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/kernels.hpp"
#include "yhccl/copy/reduce_kernels.hpp"

namespace yhccl::base {

std::byte* tls_buffer(std::size_t bytes) {
  thread_local std::vector<std::byte> buf;
  if (buf.size() < bytes) buf.resize(bytes);
  return buf.data();
}

namespace {

/// sendrecv dispatch on the transport.
void exchange(RankCtx& ctx, int right, const void* sbuf, std::size_t sn,
              int left, void* rbuf, std::size_t rn, Transport t) {
  if (t == Transport::two_copy)
    ctx.sendrecv(right, sbuf, sn, left, rbuf, rn);
  else
    ctx.sendrecv_zc(right, sbuf, sn, left, rbuf, rn);
}

}  // namespace

void ring_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                         std::size_t count, Datatype d, ReduceOp op,
                         Transport t) {
  coll::detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const int r = ctx.rank();
  const std::size_t B = count * dtype_size(d);
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, B);
    return;
  }
  const int right = (r + 1) % p;
  const int left = (r + p - 1) % p;
  std::byte* acc = tls_buffer(2 * B);  // travelling partial
  std::byte* tmp = acc + B;            // incoming partial

  // Block b's partial starts at rank b+1 and travels down the ring; after
  // p-1 hops it completes at its owner b.
  for (int k = 0; k < p - 1; ++k) {
    const int sblk = (r - 1 - k + 2 * p) % p;
    const int rblk = (sblk - 1 + p) % p;
    const std::byte* src = k == 0 ? sb + static_cast<std::size_t>(sblk) * B
                                  : acc;
    exchange(ctx, right, src, B, left, tmp, B, t);
    if (k < p - 2)
      copy::reduce_out(acc, sb + static_cast<std::size_t>(rblk) * B, tmp, B,
                       d, op, /*nt_store=*/false);
    else  // final hop: my own block completes
      copy::reduce_out(rb, sb + static_cast<std::size_t>(rblk) * B, tmp, B,
                       d, op, /*nt_store=*/false);
  }
}

void ring_allgather(RankCtx& ctx, const void* send, void* recv,
                    std::size_t count, Datatype d, Transport t) {
  if (count == 0) return;
  const int p = ctx.nranks();
  const int r = ctx.rank();
  const std::size_t B = count * dtype_size(d);
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  copy::t_copy(rb + static_cast<std::size_t>(r) * B, sb, B);
  if (p == 1) return;
  const int right = (r + 1) % p;
  const int left = (r + p - 1) % p;
  for (int k = 0; k < p - 1; ++k) {
    const int sblk = (r - k + p) % p;
    const int rblk = (sblk - 1 + p) % p;
    exchange(ctx, right, rb + static_cast<std::size_t>(sblk) * B, B, left,
             rb + static_cast<std::size_t>(rblk) * B, B, t);
  }
}

void ring_allreduce(RankCtx& ctx, const void* send, void* recv,
                    std::size_t count, Datatype d, ReduceOp op, Transport t) {
  coll::detail::check_reduction_args(ctx, send, count, d, op);
  if (count == 0) return;
  const int p = ctx.nranks();
  const int r = ctx.rank();
  const std::size_t total = count * dtype_size(d);
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, total);
    return;
  }
  // Ragged cacheline-aligned blocks; partials accumulate in the receive
  // buffer so no extra working copy is needed.
  const std::size_t B = std::max(
      round_up(ceil_div(total, static_cast<std::size_t>(p)), kCacheline),
      kCacheline);
  auto blen = [&](int b) -> std::size_t {
    const std::size_t start = static_cast<std::size_t>(b) * B;
    return start >= total ? 0 : std::min(B, total - start);
  };
  auto boff = [&](int b) { return static_cast<std::size_t>(b) * B; };
  const int right = (r + 1) % p;
  const int left = (r + p - 1) % p;
  std::byte* tmp = tls_buffer(B);

  // Phase 1: ring reduce-scatter (partials live in recv).
  for (int k = 0; k < p - 1; ++k) {
    const int sblk = (r - 1 - k + 2 * p) % p;
    const int rblk = (sblk - 1 + p) % p;
    const std::byte* src = k == 0 ? sb + boff(sblk) : rb + boff(sblk);
    exchange(ctx, right, src, blen(sblk), left, tmp, blen(rblk), t);
    if (blen(rblk) > 0)
      copy::reduce_out(rb + boff(rblk), sb + boff(rblk), tmp, blen(rblk), d,
                       op, /*nt_store=*/false);
  }
  // Phase 2: ring allgather of the completed blocks.
  for (int k = 0; k < p - 1; ++k) {
    const int sblk = (r - k + p) % p;
    const int rblk = (sblk - 1 + p) % p;
    exchange(ctx, right, rb + boff(sblk), blen(sblk), left, rb + boff(rblk),
             blen(rblk), t);
  }
}

}  // namespace yhccl::base
