// Reduction kernels used by every reduction collective.
//
// Two shapes, matching the paper's operations (Fig. 6):
//   A += B          reduce_inplace  — accumulate src into dst (temporal)
//   C  = A (+) B    reduce_out      — fused final reduction; the result
//                    store may use non-temporal streaming stores, which is
//                    what lets the MA algorithms stream the last step
//                    straight into the receive buffer.
//
// Buffers are raw bytes; `n` is a byte count that must be a multiple of the
// element size.  All kernels account DAV (3 bytes moved per payload byte).
#pragma once

#include <cstddef>

#include "yhccl/common/types.hpp"

namespace yhccl::copy {

/// dst[i] = dst[i] op src[i]
void reduce_inplace(void* dst, const void* src, std::size_t n, Datatype d,
                    ReduceOp op) noexcept;

/// out[i] = a[i] op b[i]; streams the stores when nt_store is set.
void reduce_out(void* out, const void* a, const void* b, std::size_t n,
                Datatype d, ReduceOp op, bool nt_store) noexcept;

/// out[i] = op over m buffers:  srcs[0][i] op srcs[1][i] op ...  (m >= 1).
/// Used by the socket-combination stage of the socket-aware MA reduction.
void reduce_out_multi(void* out, const void* const* srcs, int m,
                      std::size_t n, Datatype d, ReduceOp op,
                      bool nt_store);

}  // namespace yhccl::copy
