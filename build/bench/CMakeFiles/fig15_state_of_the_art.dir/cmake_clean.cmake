file(REMOVE_RECURSE
  "CMakeFiles/fig15_state_of_the_art.dir/fig15_state_of_the_art.cpp.o"
  "CMakeFiles/fig15_state_of_the_art.dir/fig15_state_of_the_art.cpp.o.d"
  "fig15_state_of_the_art"
  "fig15_state_of_the_art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_state_of_the_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
