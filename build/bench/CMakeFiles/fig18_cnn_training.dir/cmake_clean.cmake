file(REMOVE_RECURSE
  "CMakeFiles/fig18_cnn_training.dir/fig18_cnn_training.cpp.o"
  "CMakeFiles/fig18_cnn_training.dir/fig18_cnn_training.cpp.o.d"
  "fig18_cnn_training"
  "fig18_cnn_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_cnn_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
