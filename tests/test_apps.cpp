// Tests for the application proxies: the sliced STREAM copy, the Mini-AMR
// refinement dynamics (determinism, block-count evolution, checksum
// agreement across collective providers), and the data-parallel trainer.
#include <gtest/gtest.h>

#include "yhccl/apps/dnn.hpp"
#include "yhccl/apps/miniamr.hpp"
#include "yhccl/apps/stream.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "test_util.hpp"

using namespace yhccl;
using test::cached_team;

namespace {

// ---- stream -----------------------------------------------------------------

TEST(StreamSliceCopy, AllKindsCopyAtPositiveBandwidth) {
  using namespace apps::stream;
  for (CopyKind k : {CopyKind::memmove_libc, CopyKind::memmove_model,
                     CopyKind::temporal, CopyKind::non_temporal,
                     CopyKind::erms}) {
    const auto r = run_sliced_copy(8u << 20, 256u << 10, k, 1);
    EXPECT_GT(r.bandwidth_mbps, 0) << copy_kind_name(k);
  }
}

TEST(StreamSliceCopy, CopiesBytesFaithfully) {
  using namespace apps::stream;
  std::vector<std::byte> src(1u << 20), dst(1u << 20);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::byte>(i % 251);
  sliced_copy(dst.data(), src.data(), src.size(), 64u << 10,
              CopyKind::non_temporal);
  EXPECT_EQ(0, std::memcmp(dst.data(), src.data(), src.size()));
}

// ---- miniamr ------------------------------------------------------------------

apps::miniamr::AllreduceFn yhccl_ar() {
  return [](rt::RankCtx& ctx, const double* in, double* out, std::size_t n) {
    coll::allreduce(ctx, in, out, n, Datatype::f64, ReduceOp::sum);
  };
}

apps::miniamr::AllreduceFn ring_ar() {
  return [](rt::RankCtx& ctx, const double* in, double* out, std::size_t n) {
    base::ring_allreduce(ctx, in, out, n, Datatype::f64, ReduceOp::sum);
  };
}

TEST(MiniAmr, RefinementTracksTheMovingObject) {
  apps::miniamr::Config cfg;
  cfg.tsteps = 6;
  cfg.refine_metric_len = 4096;
  auto& team = cached_team(4, 2);
  std::vector<apps::miniamr::Stats> st(4);
  team.run([&](rt::RankCtx& ctx) {
    st[ctx.rank()] = apps::miniamr::run_rank(ctx, cfg, yhccl_ar());
  });
  const int roots = cfg.domain_blocks * cfg.domain_blocks * cfg.domain_blocks;
  // The sphere forces refinement: more blocks than the root grid, and the
  // level cap bounds the growth.
  EXPECT_GT(st[0].final_blocks, roots);
  EXPECT_LE(st[0].final_blocks, roots * 64 + roots);
  EXPECT_GT(st[0].total_blocks_processed, 0);
  // Global agreement on the mesh.
  for (int r = 1; r < 4; ++r)
    EXPECT_EQ(st[r].final_blocks, st[0].final_blocks);
}

TEST(MiniAmr, ChecksumIdenticalAcrossCollectiveProviders) {
  apps::miniamr::Config cfg;
  cfg.tsteps = 4;
  cfg.refine_metric_len = 2048;
  auto& team = cached_team(4, 2);
  std::vector<double> sums(2);
  std::vector<int> blocks(2);
  int which = 0;
  for (const auto& ar : {yhccl_ar(), ring_ar()}) {
    apps::miniamr::Stats st0;
    team.run([&](rt::RankCtx& ctx) {
      auto st = apps::miniamr::run_rank(ctx, cfg, ar);
      if (ctx.rank() == 0) st0 = st;
    });
    sums[which] = st0.checksum;
    blocks[which] = st0.final_blocks;
    ++which;
  }
  EXPECT_DOUBLE_EQ(sums[0], sums[1]);
  EXPECT_EQ(blocks[0], blocks[1]);
}

TEST(MiniAmr, DeterministicAcrossRuns) {
  apps::miniamr::Config cfg;
  cfg.tsteps = 3;
  cfg.refine_metric_len = 1024;
  auto& team = cached_team(2, 1);
  double first = 0;
  for (int run = 0; run < 2; ++run) {
    double sum = 0;
    team.run([&](rt::RankCtx& ctx) {
      auto st = apps::miniamr::run_rank(ctx, cfg, yhccl_ar());
      if (ctx.rank() == 0) sum = st.checksum;
    });
    if (run == 0)
      first = sum;
    else
      EXPECT_DOUBLE_EQ(sum, first);
  }
}

// ---- dnn -----------------------------------------------------------------------

TEST(DnnModels, ParameterCountsMatchThePaper) {
  EXPECT_NEAR(apps::dnn::resnet50().total_params() / 1e6, 25.6, 0.3);
  EXPECT_NEAR(apps::dnn::vgg16().total_params() / 1e6, 138.4, 0.6);
}

TEST(DnnTrainer, RunsAndAggregatesGradients) {
  apps::dnn::TrainConfig cfg;
  cfg.iterations = 2;
  cfg.batch_per_rank = 2;
  cfg.compute_scale = 0.001;  // keep the test fast
  auto model = apps::dnn::resnet50();
  model.layers.resize(2);  // shrink the gradient buffer for the test
  auto& team = cached_team(4, 2);
  std::vector<apps::dnn::TrainStats> st(4);
  team.run([&](rt::RankCtx& ctx) {
    st[ctx.rank()] = apps::dnn::train_rank(
        ctx, model, cfg,
        [](rt::RankCtx& c, const float* in, float* out, std::size_t n) {
          coll::allreduce(c, in, out, n, Datatype::f32, ReduceOp::sum);
        });
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(st[r].images_per_second, 0);
    // All ranks must agree on the reduced gradients.
    EXPECT_DOUBLE_EQ(st[r].grad_checksum, st[0].grad_checksum);
  }
  EXPECT_GT(st[0].grad_checksum, 0);
}

TEST(DnnTrainer, ThroughputScalesWithComputeSpeed) {
  apps::dnn::TrainConfig slow, fast;
  slow.iterations = fast.iterations = 1;
  slow.batch_per_rank = fast.batch_per_rank = 4;
  slow.compute_scale = 0.02;
  fast.compute_scale = 0.002;
  auto model = apps::dnn::resnet50();
  model.layers.resize(1);
  auto& team = cached_team(2, 1);
  double ips_slow = 0, ips_fast = 0;
  auto ar = [](rt::RankCtx& c, const float* in, float* out, std::size_t n) {
    coll::allreduce(c, in, out, n, Datatype::f32, ReduceOp::sum);
  };
  team.run([&](rt::RankCtx& ctx) {
    auto st = apps::dnn::train_rank(ctx, model, slow, ar);
    if (ctx.rank() == 0) ips_slow = st.images_per_second;
  });
  team.run([&](rt::RankCtx& ctx) {
    auto st = apps::dnn::train_rank(ctx, model, fast, ar);
    if (ctx.rank() == 0) ips_fast = st.images_per_second;
  });
  EXPECT_GT(ips_fast, ips_slow);
}

}  // namespace
