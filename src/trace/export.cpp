#include "yhccl/trace/export.hpp"

#include <algorithm>
#include <map>
#include <string>

namespace yhccl::trace {

Harvest::Harvest(const TraceBuffer& buf)
    : nranks_(buf.nranks()),
      origin_(buf.t_origin()),
      sec_per_tick_(1.0 / buf.ticks_per_second()) {
  rings_.resize(static_cast<std::size_t>(buf.nrings()));
  for (int r = 0; r < buf.nrings(); ++r) {
    const std::uint64_t n = buf.count(r);
    auto& out = rings_[static_cast<std::size_t>(r)];
    out.reserve(static_cast<std::size_t>(n - buf.first_kept(r)));
    for (std::uint64_t i = buf.first_kept(r); i < n; ++i)
      out.push_back(buf.read(r, i));
  }
}

std::size_t Harvest::total_events() const noexcept {
  std::size_t n = 0;
  for (const auto& r : rings_) n += r.size();
  return n;
}

namespace {

const char* isa_tier_name(int tier) noexcept {
  switch (tier) {
    case 0: return "scalar";
    case 1: return "avx2";
    case 2: return "avx512";
    default: return "?";
  }
}

/// Per-phase args object for one record.
bench::Json rec_args(const Rec& rec) {
  bench::Json a = bench::Json::object();
  const auto ph = static_cast<Phase>(rec.phase);
  switch (ph) {
    case Phase::coll:
      a.set("payload_bytes", rec.arg);
      a.set("alg", static_cast<std::int64_t>(rec.variant));
      break;
    case Phase::copy_in:
    case Phase::copy_out:
    case Phase::reduce:
      a.set("bytes", rec.arg);
      a.set("nt", (rec.variant & 1u) != 0);
      a.set("isa", isa_tier_name(rec.variant >> 1));
      break;
    case Phase::barrier:
      a.set("ordinal", rec.arg);
      a.set("scope", rec.variant == 0
                         ? bench::Json("node")
                         : bench::Json("socket" +
                                       std::to_string(rec.variant - 1)));
      break;
    case Phase::flag_wait:
    case Phase::flag_post:
      a.set("value", rec.arg);
      break;
    case Phase::fifo:
    case Phase::rndv:
      a.set("bytes", rec.arg);
      break;
    case Phase::fault:
      a.set("site", site_name(static_cast<Site>(rec.variant)));
      a.set("word", rec.arg);
      break;
    case Phase::recover:
      a.set("epoch", rec.arg);
      break;
    default: break;
  }
  if (rec.coll != 0) a.set("coll", coll_id_name(rec.coll));
  return a;
}

}  // namespace

bench::Json Harvest::chrome_json() const {
  bench::Json root = bench::Json::object();
  root.set("schema", "yhccl-trace/1");
  root.set("displayTimeUnit", "ms");
  bench::Json events = bench::Json::array();
  for (int r = 0; r <= nranks_; ++r) {
    bench::Json meta = bench::Json::object();
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", r);
    meta.set("tid", 0);
    bench::Json args = bench::Json::object();
    args.set("name", r < nranks_ ? "rank " + std::to_string(r)
                                 : std::string("team (parent)"));
    meta.set("args", args);
    events.push_back(std::move(meta));
  }
  for (int r = 0; r <= nranks_; ++r) {
    for (const Rec& rec : rings_[static_cast<std::size_t>(r)]) {
      const auto ph = static_cast<Phase>(rec.phase);
      bench::Json e = bench::Json::object();
      const bool marker = (rec.flags & kFlagMarker) != 0;
      const bool point = marker || (rec.flags & kFlagInstant) != 0;
      e.set("name", marker ? std::string(phase_name(ph)) + "_stall"
                           : std::string(phase_name(ph)));
      if (rec.coll != 0) e.set("cat", coll_id_name(rec.coll));
      e.set("ph", point ? "i" : "X");
      e.set("ts", to_us(rec.t0));
      if (point) {
        e.set("s", "t");  // thread-scoped instant
      } else {
        // A harvested span always has t1 >= t0 (same writer, one TSC).
        e.set("dur", to_us(rec.t1) - to_us(rec.t0));
      }
      e.set("pid", r);
      e.set("tid", 0);
      e.set("args", rec_args(rec));
      events.push_back(std::move(e));
    }
  }
  root.set("traceEvents", std::move(events));
  return root;
}

SkewRollup Harvest::skew() const {
  struct Group {
    std::uint64_t t_min = ~0ull, t_max = 0;
    int stamps = 0;
    std::uint8_t coll = 0;
  };
  std::map<std::uint64_t, Group> by_ordinal;
  for (int r = 0; r < nranks_; ++r) {
    for (const Rec& rec : rings_[static_cast<std::size_t>(r)]) {
      if (rec.phase != static_cast<std::uint8_t>(Phase::barrier)) continue;
      if (rec.flags != 0) continue;    // stall markers carry no arrival pair
      if (rec.variant != 0) continue;  // node scope only: full-team skew
      auto& g = by_ordinal[rec.arg];
      g.t_min = std::min(g.t_min, rec.t0);
      g.t_max = std::max(g.t_max, rec.t0);
      ++g.stamps;
      g.coll = rec.coll;  // identical across ranks (SPMD call sequence)
    }
  }
  SkewRollup roll;
  for (const auto& [ordinal, g] : by_ordinal) {
    (void)ordinal;
    // Require every active rank's stamp: a wrapped ring or an aborted run
    // may retain only some arrivals, and a partial max-min underestimates.
    if (g.stamps != nranks_) continue;
    const double skew =
        static_cast<double>(g.t_max - g.t_min) * sec_per_tick_;
    auto& k = roll.by_coll[g.coll < kMaxCollIds ? g.coll : 0];
    ++k.barriers;
    k.skew_sum += skew;
    k.skew_max = std::max(k.skew_max, skew);
  }
  return roll;
}

bench::Json Harvest::flight_json(const FlightContext& fc,
                                 std::size_t last_n) const {
  bench::Json root = bench::Json::object();
  root.set("schema", "yhccl-flight/1");
  root.set("fault", fc.fault);
  root.set("rank", fc.rank);
  root.set("epoch", fc.epoch);

  // Abort site: prefer the faulting rank's own last Phase::fault record
  // (the injection point pushes one before dying; the shared-memory store
  // survives _exit), else the most recent one any survivor recorded.
  Site site = Site::unknown;
  std::uint64_t site_t = 0;
  bool from_faulting_rank = false;
  for (int r = 0; r < nranks_ && !from_faulting_rank; ++r) {
    for (const Rec& rec : rings_[static_cast<std::size_t>(r)]) {
      if (rec.phase != static_cast<std::uint8_t>(Phase::fault)) continue;
      if (r == fc.rank) {
        site = static_cast<Site>(rec.variant);
        from_faulting_rank = true;
        break;
      }
      if (site_t == 0 || rec.t0 > site_t) {
        site = static_cast<Site>(rec.variant);
        site_t = rec.t0;
      }
    }
  }
  root.set("site", site_name(site));
  root.set("nranks", nranks_);

  auto dump_ring = [&](int r) {
    const auto& ring = rings_[static_cast<std::size_t>(r)];
    const std::size_t n = std::min(last_n, ring.size());
    bench::Json events = bench::Json::array();
    for (std::size_t i = ring.size() - n; i < ring.size(); ++i) {
      const Rec& rec = ring[i];
      const auto ph = static_cast<Phase>(rec.phase);
      bench::Json e = bench::Json::object();
      e.set("t_us", to_us(rec.t0));
      if ((rec.flags & kFlagMarker) != 0)
        e.set("stalled", true);
      else if ((rec.flags & kFlagInstant) == 0)
        e.set("dur_us", to_us(rec.t1) - to_us(rec.t0));
      e.set("phase", phase_name(ph));
      if (rec.coll != 0) e.set("coll", coll_id_name(rec.coll));
      e.set("args", rec_args(rec));
      events.push_back(std::move(e));
    }
    return events;
  };

  bench::Json ranks = bench::Json::array();
  for (int r = 0; r < nranks_; ++r) {
    bench::Json row = bench::Json::object();
    row.set("rank", r);
    row.set("events", dump_ring(r));
    ranks.push_back(std::move(row));
  }
  root.set("ranks", std::move(ranks));
  root.set("team", dump_ring(nranks_));
  return root;
}

// ---------------------------------------------------------------------------
// Schema validation (trace_check / CI)
// ---------------------------------------------------------------------------

namespace {

bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

}  // namespace

bool validate_chrome(const bench::Json& j, std::string* err) {
  if (!j.is_object()) return fail(err, "top level is not an object");
  const bench::Json* events = j.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return fail(err, "missing traceEvents array");
  if (events->size() == 0) return fail(err, "traceEvents is empty");
  std::size_t spans = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const bench::Json& e = events->at(i);
    const std::string at = "traceEvents[" + std::to_string(i) + "]: ";
    if (!e.is_object()) return fail(err, at + "not an object");
    if (!e["name"].is_string()) return fail(err, at + "missing name");
    if (!e["ph"].is_string()) return fail(err, at + "missing ph");
    const std::string& ph = e["ph"].as_string();
    if (ph != "X" && ph != "i" && ph != "M" && ph != "B" && ph != "E")
      return fail(err, at + "unknown ph '" + ph + "'");
    if (!e["pid"].is_number() || e["pid"].as_int() < 0)
      return fail(err, at + "bad pid");
    if (!e["tid"].is_number()) return fail(err, at + "missing tid");
    if (ph == "M") continue;
    if (!e["ts"].is_number()) return fail(err, at + "missing ts");
    if (e["ts"].as_double() < 0) return fail(err, at + "negative ts");
    if (ph == "X") {
      if (!e["dur"].is_number() || e["dur"].as_double() < 0)
        return fail(err, at + "X event without non-negative dur");
      ++spans;
    }
  }
  if (spans == 0) return fail(err, "no complete (X) span events");
  return true;
}

bool validate_flight(const bench::Json& j, std::string* err) {
  if (!j.is_object()) return fail(err, "top level is not an object");
  if (j["schema"].as_string() != "yhccl-flight/1")
    return fail(err, "schema is not yhccl-flight/1");
  for (const char* key : {"fault", "site"})
    if (!j[key].is_string()) return fail(err, std::string(key) + " missing");
  if (!j["epoch"].is_number()) return fail(err, "epoch missing");
  const bench::Json* ranks = j.find("ranks");
  if (ranks == nullptr || !ranks->is_array() || ranks->size() == 0)
    return fail(err, "ranks array missing or empty");
  for (std::size_t r = 0; r < ranks->size(); ++r) {
    const bench::Json& row = ranks->at(r);
    const std::string at = "ranks[" + std::to_string(r) + "]: ";
    if (!row["rank"].is_number()) return fail(err, at + "rank missing");
    const bench::Json* ev = row.find("events");
    if (ev == nullptr || !ev->is_array())
      return fail(err, at + "events missing");
    for (std::size_t i = 0; i < ev->size(); ++i) {
      const bench::Json& e = ev->at(i);
      if (!e["phase"].is_string() || !e["t_us"].is_number())
        return fail(err, at + "event " + std::to_string(i) + " malformed");
    }
  }
  return true;
}

}  // namespace yhccl::trace
