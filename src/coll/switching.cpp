// Algorithm switching (paper §5.1 and Fig. 4): the generic entry points
// route small reductions to the two-level DPML parallel reduction (cheap
// synchronization) and everything else to the socket-aware MA reduction
// (minimal data movement), falling back to flat MA on single-socket teams.
#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/detail.hpp"

namespace yhccl::coll {

Algorithm choose_reduction_algorithm(const RankCtx& ctx,
                                     std::size_t msg_bytes,
                                     const CollOpts& opts) {
  if (opts.algorithm != Algorithm::automatic) return opts.algorithm;
  if (msg_bytes <= opts.small_msg_threshold) return Algorithm::dpml_two_level;
  auto& topo = const_cast<RankCtx&>(ctx).team().topo();
  if (topo.nsockets() > 1 && topo.nranks() % topo.nsockets() == 0)
    return Algorithm::ma_socket_aware;
  return Algorithm::ma_flat;
}

void reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                    std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts) {
  const std::size_t total =
      count * dtype_size(d) * static_cast<std::size_t>(ctx.nranks());
  switch (choose_reduction_algorithm(ctx, total, opts)) {
    case Algorithm::dpml_two_level:
      return dpml_two_level_reduce_scatter(ctx, send, recv, count, d, op,
                                           opts);
    case Algorithm::ma_socket_aware:
      return socket_ma_reduce_scatter(ctx, send, recv, count, d, op, opts);
    default:
      return ma_reduce_scatter(ctx, send, recv, count, d, op, opts);
  }
}

void allreduce(RankCtx& ctx, const void* send, void* recv, std::size_t count,
               Datatype d, ReduceOp op, const CollOpts& opts) {
  const std::size_t total = count * dtype_size(d);
  switch (choose_reduction_algorithm(ctx, total, opts)) {
    case Algorithm::dpml_two_level:
      return dpml_two_level_allreduce(ctx, send, recv, count, d, op, opts);
    case Algorithm::ma_socket_aware:
      return socket_ma_allreduce(ctx, send, recv, count, d, op, opts);
    default:
      return ma_allreduce(ctx, send, recv, count, d, op, opts);
  }
}

void reduce(RankCtx& ctx, const void* send, void* recv, std::size_t count,
            Datatype d, ReduceOp op, int root, const CollOpts& opts) {
  const std::size_t total = count * dtype_size(d);
  switch (choose_reduction_algorithm(ctx, total, opts)) {
    case Algorithm::dpml_two_level:
      return dpml_two_level_reduce(ctx, send, recv, count, d, op, root,
                                   opts);
    case Algorithm::ma_socket_aware:
      return socket_ma_reduce(ctx, send, recv, count, d, op, root, opts);
    default:
      return ma_reduce(ctx, send, recv, count, d, op, root, opts);
  }
}

void broadcast(RankCtx& ctx, void* buf, std::size_t count, Datatype d,
               int root, const CollOpts& opts) {
  pipelined_broadcast(ctx, buf, count, d, root, opts);
}

void allgather(RankCtx& ctx, const void* send, void* recv, std::size_t count,
               Datatype d, const CollOpts& opts) {
  pipelined_allgather(ctx, send, recv, count, d, opts);
}

}  // namespace yhccl::coll
