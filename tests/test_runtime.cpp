// Runtime substrate tests: topology math, shm regions, barriers under
// stress, progress flags, the shared heap, pt2pt FIFO and rendezvous
// transfers, the remote-buffer registry, and the fork()-backed team.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "yhccl/copy/kernels.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "yhccl/runtime/remote_access.hpp"
#include "yhccl/runtime/shm_region.hpp"
#include "yhccl/runtime/thread_team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::rt;

namespace {

TEST(Topology, BlockPartitionIsExhaustiveAndConsistent) {
  for (int p = 1; p <= 17; ++p) {
    for (int m = 1; m <= p; ++m) {
      Topology t(p, m);
      int covered = 0;
      for (int s = 0; s < m; ++s) {
        const int base = t.socket_base(s), size = t.socket_size(s);
        EXPECT_GE(size, 1);
        EXPECT_EQ(base, covered);
        for (int r = base; r < base + size; ++r) {
          EXPECT_EQ(t.socket_of(r), s) << "p=" << p << " m=" << m;
          EXPECT_EQ(t.socket_rank(r), r - base);
        }
        covered += size;
      }
      EXPECT_EQ(covered, p);
    }
  }
}

TEST(Topology, SocketSizesDifferByAtMostOne) {
  Topology t(10, 3);
  EXPECT_EQ(t.socket_size(0), 4);
  EXPECT_EQ(t.socket_size(1), 3);
  EXPECT_EQ(t.socket_size(2), 3);
}

TEST(ShmRegion, AnonymousIsZeroedAndWritable) {
  auto r = ShmRegion::create_anonymous(1 << 20);
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.size(), 1u << 20);
  for (std::size_t i = 0; i < r.size(); i += 4096)
    EXPECT_EQ(std::to_integer<int>(r.data()[i]), 0);
  std::memset(r.data(), 0xab, r.size());
  EXPECT_EQ(std::to_integer<int>(r.data()[12345]), 0xab);
}

TEST(ShmRegion, NamedCreateOpenRoundTrip) {
  const std::string name =
      "/yhccl_test_" + std::to_string(getpid());
  auto a = ShmRegion::create_named(name, 64 << 10);
  std::memset(a.data(), 0x5c, 64 << 10);
  auto b = ShmRegion::open_named(name, 64 << 10);
  EXPECT_EQ(std::to_integer<int>(b.data()[40000]), 0x5c);
}

TEST(ShmRegion, NamedCreateRefusesDuplicates) {
  const std::string name = "/yhccl_dup_" + std::to_string(getpid());
  auto a = ShmRegion::create_named(name, 4096);
  EXPECT_THROW(ShmRegion::create_named(name, 4096), Error);
}

TEST(ThreadTeamBarrier, StressManyIterations) {
  auto& team = test::cached_team(8, 2);
  auto* counter = reinterpret_cast<std::atomic<std::uint64_t>*>(
      team.shared_alloc(sizeof(std::atomic<std::uint64_t>)));
  counter->store(0);
  constexpr int kIters = 2000;
  team.run([&](RankCtx& ctx) {
    for (int i = 0; i < kIters; ++i) {
      // Everyone must observe exactly i*p increments after barrier i.
      counter->fetch_add(1, std::memory_order_relaxed);
      ctx.barrier();
      const auto v = counter->load(std::memory_order_relaxed);
      if (v < static_cast<std::uint64_t>((i + 1) * ctx.nranks()))
        throw Error("barrier violated: saw " + std::to_string(v));
      ctx.barrier();
    }
  });
  EXPECT_EQ(counter->load(), static_cast<std::uint64_t>(kIters) * 8);
}

TEST(ThreadTeamBarrier, SocketBarrierOnlySyncsSocketMembers) {
  auto& team = test::cached_team(6, 2);
  auto* sums = reinterpret_cast<std::atomic<int>*>(
      team.shared_alloc(2 * sizeof(std::atomic<int>)));
  sums[0].store(0);
  sums[1].store(0);
  team.run([&](RankCtx& ctx) {
    sums[ctx.socket()].fetch_add(1);
    ctx.socket_barrier();
    if (sums[ctx.socket()].load() < ctx.socket_size())
      throw Error("socket barrier violated");
    ctx.barrier();
  });
}

TEST(ThreadTeam, StepFlagsEnforceNeighbourOrdering) {
  auto& team = test::cached_team(4, 1);
  constexpr int kSteps = 500;
  team.run([&](RankCtx& ctx) {
    const auto seq = ctx.next_seq();
    const int right = (ctx.rank() + 1) % ctx.nranks();
    for (int k = 0; k < kSteps; ++k) {
      if (k > 0)
        ctx.step_wait(right, RankCtx::step_value(seq, k));
      ctx.step_publish(RankCtx::step_value(seq, k + 1));
    }
    ctx.barrier();
  });
}

TEST(ThreadTeam, RunPropagatesRankExceptions) {
  auto& team = test::cached_team(3, 1);
  EXPECT_THROW(team.run([&](RankCtx& ctx) {
                 if (ctx.rank() == 1) throw Error("rank 1 exploded");
               }),
               Error);
  // The team must remain usable afterwards.
  team.run([](RankCtx& ctx) { ctx.barrier(); });
}

TEST(ThreadTeam, DavAndTimeAreCapturedPerRank) {
  auto& team = test::cached_team(2, 1);
  std::vector<std::uint8_t> a(1 << 16), b(1 << 16);
  team.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) copy::t_copy(b.data(), a.data(), 1 << 16);
  });
  EXPECT_EQ(team.last_dav(0).total(), 2u << 16);
  EXPECT_EQ(team.last_dav(1).total(), 0u);
  EXPECT_EQ(team.total_dav().total(), 2u << 16);
  EXPECT_GT(team.max_time(), 0.0);
}

TEST(SharedHeap, AlignmentAndExhaustion) {
  rt::TeamConfig cfg;
  cfg.nranks = 1;
  cfg.shared_heap_bytes = 1 << 16;
  cfg.scratch_bytes = 1 << 12;
  ThreadTeam team(cfg);
  auto* a = team.shared_alloc(100, 64);
  auto* b = team.shared_alloc(100, 4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 4096, 0u);
  EXPECT_THROW(team.shared_alloc(1 << 20), Error);
}

TEST(Pt2Pt, EagerSendRecvRoundTripAllSizes) {
  auto& team = test::cached_team(2, 1);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{100},
                        std::size_t{8192},   // == chunk
                        std::size_t{8193},   // chunk + 1
                        std::size_t{100000}}) {
    std::vector<std::uint8_t> payload(n);
    for (std::size_t i = 0; i < n; ++i)
      payload[i] = static_cast<std::uint8_t>(i * 7);
    std::vector<std::uint8_t> got(n, 0);
    team.run([&](RankCtx& ctx) {
      if (ctx.rank() == 0)
        ctx.send(1, payload.data(), n, /*tag=*/5);
      else
        ctx.recv(0, got.data(), n, /*tag=*/5);
    });
    EXPECT_EQ(got, payload) << "n=" << n;
  }
}

TEST(Pt2Pt, BidirectionalExchangeDoesNotDeadlock) {
  auto& team = test::cached_team(2, 1);
  const std::size_t n = 200000;  // >> FIFO capacity: exercises pipelining
  std::vector<std::uint8_t> buf0(n, 1), buf1(n, 2), got0(n), got1(n);
  team.run([&](RankCtx& ctx) {
    // Rank 0 sends far more than the FIFO capacity before receiving; the
    // chunked eager protocol must keep making progress.
    if (ctx.rank() == 0) {
      ctx.send(1, buf0.data(), n / 2, 0);
      ctx.recv(1, got0.data(), n / 2, 0);
    } else {
      ctx.recv(0, got1.data(), n / 2, 0);
      ctx.send(0, buf1.data(), n / 2, 0);
    }
  });
  EXPECT_EQ(got1[100], 1);
  EXPECT_EQ(got0[100], 2);
}

TEST(Pt2Pt, RendezvousSingleCopyMovesHalfTheBytes) {
  auto& team = test::cached_team(2, 1);
  const std::size_t n = 1 << 20;
  std::vector<std::uint8_t> src(n, 0x3d), dst(n, 0);
  team.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0)
      ctx.send_zc(1, src.data(), n);
    else
      ctx.recv_zc(0, dst.data(), n);
  });
  EXPECT_EQ(dst, src);
  // Receiver did one copy (2n traffic); sender touched nothing.
  EXPECT_EQ(team.last_dav(1).total(), 2 * n);
  EXPECT_EQ(team.last_dav(0).total(), 0u);
}

TEST(RemoteAccess, RegistryPublishLookup) {
  auto& team = test::cached_team(3, 1);
  std::vector<double> mine(64);
  team.run([&](RankCtx& ctx) {
    std::vector<double> local(16, ctx.rank() + 1.0);
    ctx.publish_buffer(0, local.data(), local.size() * sizeof(double));
    ctx.barrier();
    const int peer = (ctx.rank() + 1) % ctx.nranks();
    auto rb = ctx.remote_buffer(peer, 0);
    std::vector<double> got(16);
    remote_read(got.data(), rb, 0, 16 * sizeof(double), RemoteMode::direct);
    if (got[7] != peer + 1.0) throw Error("remote_read wrong data");
    ctx.barrier();  // keep `local` alive until all reads finish
  });
}

TEST(RemoteAccess, CmaPagewiseMatchesDirectAndCountsSameDav) {
  const std::size_t n = 3 * 4096 + 123;
  std::vector<std::uint8_t> src(n);
  for (std::size_t i = 0; i < n; ++i)
    src[i] = static_cast<std::uint8_t>(i * 13);
  RemoteBuf rb{src.data(), n, getpid()};
  std::vector<std::uint8_t> direct(n), cma(n);
  copy::dav_reset();
  remote_read(direct.data(), rb, 0, n, RemoteMode::direct);
  const auto dav_direct = copy::dav_read();
  copy::dav_reset();
  PageLockTable locks;
  remote_read(cma.data(), rb, 0, n, RemoteMode::cma_pagewise, &locks);
  const auto dav_cma = copy::dav_read();
  EXPECT_EQ(direct, src);
  EXPECT_EQ(cma, src);
  EXPECT_EQ(dav_direct.total(), dav_cma.total());
}

TEST(RemoteAccess, OffsetReadsAndBoundsChecking) {
  std::vector<std::uint8_t> src(8192, 9);
  src[5000] = 77;
  RemoteBuf rb{src.data(), src.size(), getpid()};
  std::uint8_t out = 0;
  remote_read(&out, rb, 5000, 1, RemoteMode::direct);
  EXPECT_EQ(out, 77);
  EXPECT_THROW(remote_read(&out, rb, 8192, 1, RemoteMode::direct), Error);
}

// ---- fork()-backed team ----------------------------------------------------

TEST(ProcessTeam, SpmdOverSharedHeapBuffers) {
  rt::TeamConfig cfg;
  cfg.nranks = 4;
  cfg.nsockets = 2;
  cfg.scratch_bytes = 4 << 20;
  cfg.shared_heap_bytes = 4 << 20;
  ProcessTeam team(cfg);
  auto* out = reinterpret_cast<int*>(team.shared_alloc(4 * sizeof(int)));
  team.run([&](RankCtx& ctx) { out[ctx.rank()] = 100 + ctx.rank(); });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(out[r], 100 + r);
}

TEST(ProcessTeam, BarrierAndPt2PtAcrossProcesses) {
  rt::TeamConfig cfg;
  cfg.nranks = 3;
  cfg.scratch_bytes = 1 << 20;
  cfg.shared_heap_bytes = 1 << 20;
  ProcessTeam team(cfg);
  auto* sink = reinterpret_cast<std::uint8_t*>(team.shared_alloc(1 << 16));
  team.run([&](RankCtx& ctx) {
    std::vector<std::uint8_t> priv(1 << 16, static_cast<std::uint8_t>(42));
    if (ctx.rank() == 0) ctx.send(2, priv.data(), 1 << 16);
    if (ctx.rank() == 2) {
      ctx.recv(0, sink, 1 << 16);
    }
    ctx.barrier();
  });
  EXPECT_EQ(sink[12345], 42);
}

TEST(ProcessTeam, FailedRankSurfacesAsError) {
  rt::TeamConfig cfg;
  cfg.nranks = 2;
  cfg.scratch_bytes = 1 << 20;
  cfg.shared_heap_bytes = 1 << 20;
  ProcessTeam team(cfg);
  EXPECT_THROW(team.run([](RankCtx& ctx) {
                 if (ctx.rank() == 1) throw Error("child failure");
               }),
               Error);
  team.run([](RankCtx&) {});  // usable afterwards
}

}  // namespace
