// Fig. 9 reproduction: reduce-scatter algorithm comparison.
//
// Paper: socket-aware MA vs flat MA vs DPML vs Ring vs Rabenseifner over
// 64 KB - 256 MB on 64/48-core nodes.  Here: the same arms, message sweep
// scaled to this host (see DESIGN.md §3 and bench_util.hpp).  The expected
// shape: the MA variants lead for messages beyond the small-message
// regime, with an average multi-x advantage over DPML/Ring/Rabenseifner.
#include "bench_util.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  const auto sizes = default_sizes();
  const std::size_t hi = sizes.back();
  // `bytes` is the total message; reduce-scatter counts are per rank.
  auto count_of = [p](std::size_t bytes) {
    return std::max<std::size_t>(bytes / 8 / p, 1);
  };

  std::vector<std::pair<std::string, CollArm>> arms = {
      {"Socket-MA",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         coll::socket_ma_reduce_scatter(c, s, r, count_of(b), Datatype::f64,
                                        ReduceOp::sum);
       }},
      {"MA",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         coll::ma_reduce_scatter(c, s, r, count_of(b), Datatype::f64,
                                 ReduceOp::sum);
       }},
      {"DPML",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         base::dpml_reduce_scatter(c, s, r, count_of(b), Datatype::f64,
                                   ReduceOp::sum);
       }},
      {"Ring",
       [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
         base::ring_reduce_scatter(c, s, r, count_of(b), Datatype::f64,
                                   ReduceOp::sum,
                                   base::Transport::single_copy);
       }},
  };
  if ((p & (p - 1)) == 0)  // Rabenseifner needs a power-of-two team
    arms.push_back(
        {"Rabensfnr",
         [&](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
           base::rabenseifner_reduce_scatter(c, s, r, count_of(b),
                                             Datatype::f64, ReduceOp::sum,
                                             base::Transport::single_copy);
         }});

  std::printf("Fig. 9 — reduce-scatter algorithm comparison (p=%d, m=%d)\n",
              p, m);
  Session session("fig09_reduce_scatter");
  sweep(team, "reduce-scatter: relative time overhead vs Socket-MA", arms,
        sizes, hi, hi, &session, "reduce_scatter")
      .print();
  session.write();
  return 0;
}
