// Tests for the extended collectives (scatter, gather, alltoall in its
// three algorithms) plus the Morton encoding underpinning the
// cache-oblivious all-to-all.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "yhccl/coll/extra.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::cached_team;

namespace {

TEST(Morton, EncodeInterleavesBits) {
  EXPECT_EQ(morton_encode(0, 0), 0u);
  EXPECT_EQ(morton_encode(1, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1), 2u);
  EXPECT_EQ(morton_encode(1, 1), 3u);
  EXPECT_EQ(morton_encode(2, 0), 4u);
  EXPECT_EQ(morton_encode(0xffff, 0xffff), 0xffffffffu);
}

TEST(Morton, IsABijectionOverSmallGrids) {
  std::vector<std::uint32_t> seen;
  for (int x = 0; x < 32; ++x)
    for (int y = 0; y < 32; ++y)
      seen.push_back(morton_encode(static_cast<std::uint16_t>(x),
                                   static_cast<std::uint16_t>(y)));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

struct Shape {
  int p, m;
  std::size_t count;
  std::string name() const {
    return "p" + std::to_string(p) + "m" + std::to_string(m) + "_n" +
           std::to_string(count);
  }
};

std::vector<Shape> shapes() {
  std::vector<Shape> v;
  for (auto [p, m] : {std::pair{1, 1}, {2, 1}, {3, 1}, {4, 2}, {8, 2}})
    for (std::size_t n : {std::size_t{1}, std::size_t{100},
                          std::size_t{4096}, std::size_t{50000}})
      v.push_back({p, m, n});
  return v;
}

class ExtraSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ExtraSweep, ScatterDeliversEachBlockToItsOwner) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, c.m);
  const int p = c.p;
  for (int root = 0; root < std::min(p, 2); ++root) {
    std::vector<double> rootbuf(c.count * p);
    for (std::size_t i = 0; i < rootbuf.size(); ++i)
      rootbuf[i] = static_cast<double>(i % 100000);
    std::vector<std::vector<double>> recv(p,
                                          std::vector<double>(c.count, -1));
    team.run([&](rt::RankCtx& ctx) {
      scatter(ctx, ctx.rank() == root ? rootbuf.data() : nullptr,
              recv[ctx.rank()].data(), c.count, Datatype::f64, root);
    });
    for (int r = 0; r < p; ++r)
      ASSERT_EQ(0, std::memcmp(recv[r].data(), rootbuf.data() + r * c.count,
                               c.count * 8))
          << "rank " << r << " root " << root;
  }
}

TEST_P(ExtraSweep, GatherCollectsBlocksInRankOrder) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, c.m);
  const int p = c.p;
  const int root = p - 1;
  std::vector<std::vector<double>> send(p, std::vector<double>(c.count));
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < c.count; ++i)
      send[r][i] = r * 1000.0 + static_cast<double>(i % 997);
  std::vector<double> out(c.count * p, -1);
  team.run([&](rt::RankCtx& ctx) {
    gather(ctx, send[ctx.rank()].data(),
           ctx.rank() == root ? out.data() : nullptr, c.count, Datatype::f64,
           root);
  });
  for (int r = 0; r < p; ++r)
    ASSERT_EQ(0,
              std::memcmp(out.data() + r * c.count, send[r].data(),
                          c.count * 8))
        << "block " << r;
}

TEST_P(ExtraSweep, AlltoallAllAlgorithmsPermuteBlocks) {
  const auto c = GetParam();
  auto& team = cached_team(c.p, c.m);
  const int p = c.p;
  std::vector<std::vector<std::int32_t>> send(p), recv(p);
  for (int r = 0; r < p; ++r) {
    send[r].resize(c.count * p);
    for (int b = 0; b < p; ++b)
      for (std::size_t i = 0; i < c.count; ++i)
        send[r][b * c.count + i] =
            r * 100000 + b * 1000 + static_cast<std::int32_t>(i % 997);
  }
  for (auto algo : {AlltoallAlgo::staged, AlltoallAlgo::direct,
                    AlltoallAlgo::direct_morton}) {
    for (int r = 0; r < p; ++r) recv[r].assign(c.count * p, -1);
    team.run([&](rt::RankCtx& ctx) {
      alltoall(ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
               c.count, Datatype::i32, {}, algo);
    });
    for (int r = 0; r < p; ++r)
      for (int a = 0; a < p; ++a)
        ASSERT_EQ(0, std::memcmp(recv[r].data() + a * c.count,
                                 send[a].data() + r * c.count, c.count * 4))
            << "algo " << static_cast<int>(algo) << " rank " << r
            << " from " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExtraSweep, ::testing::ValuesIn(shapes()),
                         [](const auto& i) { return i.param.name(); });

TEST(ExtraEdge, ZeroCountNoOps) {
  auto& team = cached_team(4, 2);
  team.run([&](rt::RankCtx& ctx) {
    scatter(ctx, nullptr, nullptr, 0, Datatype::f64, 0);
    gather(ctx, nullptr, nullptr, 0, Datatype::f64, 0);
    alltoall(ctx, nullptr, nullptr, 0, Datatype::f64);
    ctx.barrier();
  });
}

TEST(ExtraEdge, AlltoallPoliciesAgree) {
  auto& team = cached_team(4, 2);
  const std::size_t count = 30000;
  std::vector<std::vector<float>> send(4), a(4), b(4);
  for (int r = 0; r < 4; ++r) {
    send[r].resize(count * 4);
    a[r].resize(count * 4);
    b[r].resize(count * 4);
    for (std::size_t i = 0; i < send[r].size(); ++i)
      send[r][i] = static_cast<float>((r * 31 + i) % 1000);
  }
  CollOpts nt, tp;
  nt.policy = copy::CopyPolicy::always_nt;
  tp.policy = copy::CopyPolicy::always_temporal;
  team.run([&](rt::RankCtx& ctx) {
    alltoall(ctx, send[ctx.rank()].data(), a[ctx.rank()].data(), count,
             Datatype::f32, nt);
    alltoall(ctx, send[ctx.rank()].data(), b[ctx.rank()].data(), count,
             Datatype::f32, tp);
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(a[r], b[r]);
}

}  // namespace
