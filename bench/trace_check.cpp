// CLI validator for the phase tracer's exports (docs/observability.md):
//
//   trace_check <file.json>...
//       each file must be a valid "yhccl-trace/1" Chrome trace-event
//       export or a "yhccl-flight/1" flight-recorder dump (auto-detected);
//       exit 1 on the first schema defect.
//
// This is the CI trace leg's gate: a tracing run that emits JSON Chrome
// cannot load (or a flight dump missing its abort site) fails the build
// instead of surfacing as a broken triage session later.
#include <cstdio>
#include <string>

#include "yhccl/bench/harness.hpp"
#include "yhccl/bench/json.hpp"
#include "yhccl/trace/export.hpp"

namespace yb = yhccl::bench;

namespace {

int check_one(const std::string& path) {
  std::string err;
  const yb::Json j = yb::load_json_file(path, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  const yb::Json* schema = j.find("schema");
  const bool is_flight =
      schema != nullptr && schema->is_string() &&
      schema->as_string() == "yhccl-flight/1";
  const bool ok = is_flight ? yhccl::trace::validate_flight(j, &err)
                            : yhccl::trace::validate_chrome(j, &err);
  if (!ok) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  if (is_flight)
    std::printf("%s: valid yhccl-flight/1 dump (fault: %s, site: %s)\n",
                path.c_str(), j["fault"].as_string().c_str(),
                j["site"].as_string().c_str());
  else
    std::printf("%s: valid yhccl-trace/1 chrome trace, %zu events\n",
                path.c_str(), j["traceEvents"].size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_check <trace-or-flight.json>...\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) rc |= check_one(argv[i]);
  return rc;
}
