// Randomized chaos campaign over the resilient execution layer
// (docs/robustness.md §campaign).  Seeded from $YHCCL_CHAOS_SEED, it draws
// a few hundred fault schedules — die / stall / corrupt at randomized
// sites, ranks and iterations — and runs each against a randomly chosen
// collective, message size, socket layout and backend with automatic
// retry enabled.  Every schedule must end in one of three coherent
// outcomes:
//
//   ok_clean   — the fault never intersected the execution path (or was a
//                bounded stall); the result is bit-correct.
//   ok_healed  — the retry engine absorbed the fault (recover + re-issue)
//                and the final result is bit-correct.
//   gaveup     — the run raised a *classified* Error (fault_kind != none)
//                after exhausting the budget, and one manual recover()
//                later the same team produces a bit-correct result.
//
// Anything else — wrong data, an unclassified exception, a hang past the
// per-schedule watchdog — is a violation and fails the campaign (exit 2).
// The aggregate lands in a yhccl-chaos/1 JSON report.
//
//   chaos_campaign [report.json]
//
//   YHCCL_CHAOS_SEED        campaign seed        (default 20260808)
//   YHCCL_CHAOS_SCHEDULES   schedules to draw    (default 240)
//   YHCCL_CHAOS_BUDGET_S    wall-clock cap       (default 300 s)

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "yhccl/coll/coll.hpp"
#include "yhccl/common/time.hpp"
#include "yhccl/runtime/fault.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "yhccl/runtime/resilience.hpp"
#include "yhccl/runtime/thread_team.hpp"

using namespace yhccl;

namespace {

// ---- deterministic schedule stream ------------------------------------------

std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t env_u64(const char* name, std::uint64_t dflt) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return dflt;
  return std::strtoull(e, nullptr, 10);
}

// ---- reference data (integer-valued doubles: order-independent sums) --------

double gen(int rank, std::size_t i) {
  return static_cast<double>(((rank + 3) * 37 +
                              static_cast<std::int64_t>(i % 1009) * 11) %
                             127);
}

double reduce_ref(int p, std::size_t i) {
  double acc = 0;
  for (int r = 0; r < p; ++r) acc += gen(r, i);
  return acc;
}

// ---- one drawn schedule -----------------------------------------------------

enum class Coll { allreduce, reduce, reduce_scatter, broadcast, allgather };

const char* coll_name(Coll c) {
  switch (c) {
    case Coll::allreduce: return "allreduce";
    case Coll::reduce: return "reduce";
    case Coll::reduce_scatter: return "reduce_scatter";
    case Coll::broadcast: return "broadcast";
    case Coll::allgather: return "allgather";
  }
  return "?";
}

struct Schedule {
  int index = 0;
  bool procs = false;
  int p = 2, m = 1;
  Coll coll = Coll::allreduce;
  std::size_t n = 1024;  ///< elements (f64)
  rt::TuneMode tune = rt::TuneMode::prior;
  std::string fault;  ///< YHCCL_FAULT-grammar spec
  std::string policy;

  std::string describe() const {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "#%d %s p=%d m=%d %s n=%zu tune=%s fault=%s", index,
                  procs ? "procs" : "threads", p, m, coll_name(coll), n,
                  tune == rt::TuneMode::online ? "online" : "prior",
                  fault.c_str());
    return buf;
  }
};

Schedule draw(std::uint64_t campaign_seed, int index) {
  std::uint64_t rng = campaign_seed + 0x9e3779b97f4a7c15ull *
                                          static_cast<std::uint64_t>(index + 1);
  Schedule sc;
  sc.index = index;
  sc.procs = (splitmix64(rng) & 1) != 0;

  static const int layouts[][2] = {{2, 1}, {3, 1}, {4, 1}, {4, 2}, {6, 2}};
  const auto& l = layouts[splitmix64(rng) % 5];
  sc.p = l[0];
  sc.m = l[1];

  sc.coll = static_cast<Coll>(splitmix64(rng) % 5);
  static const std::size_t sizes[] = {512, 4096, 32768, 131072};
  sc.n = sizes[splitmix64(rng) % 4];
  sc.tune = (splitmix64(rng) & 1) != 0 ? rt::TuneMode::online
                                       : rt::TuneMode::prior;

  // The faulting rank is never rank 0: roots keep their source data so a
  // post-exclusion re-run stays verifiable on both backends.
  const int victim = 1 + static_cast<int>(splitmix64(rng) %
                                          static_cast<std::uint64_t>(sc.p - 1));
  const std::uint64_t iter = splitmix64(rng) % 2;
  // Weighted toward sites most collectives actually pass, so a healthy
  // fraction of schedules really fires (misses still count as ok_clean).
  static const char* sites[] = {"barrier", "barrier",  "flag",
                                "flag",    "slice",    "slice",
                                "fifo",    "pipeline", "pagelock"};
  const char* site = sites[splitmix64(rng) % 9];
  static const char* sections[] = {"arena", "plans", "fifo"};
  const char* section = sections[splitmix64(rng) % 3];

  char buf[160];
  switch (splitmix64(rng) % 5) {
    case 0:
    case 1:  // transient death (40%)
      std::snprintf(buf, sizeof buf, "die@%s:rank=%d:iter=%" PRIu64 ":once=1",
                    site, victim, iter);
      break;
    case 2:  // bounded stall: a merely-slow rank, run must still complete
      std::snprintf(buf, sizeof buf,
                    "stall@%s:rank=%d:iter=%" PRIu64 ":ms=40:once=1", site,
                    victim, iter);
      break;
    case 3:  // unbounded stall: watchdog timeout -> classified + retried
      std::snprintf(buf, sizeof buf,
                    "stall@%s:rank=%d:iter=%" PRIu64 ":ms=-1:once=1", site,
                    victim, iter);
      break;
    default:  // shared-state corruption in a random section
      std::snprintf(buf, sizeof buf,
                    "corrupt@%s:rank=%d:iter=%" PRIu64 ":off=%" PRIu64
                    ":once=1",
                    section, victim, iter, splitmix64(rng) % 64);
      break;
  }
  sc.fault = buf;

  char pol[96];
  std::snprintf(pol, sizeof pol, "retries=2:backoff=1:cap=8:seed=%" PRIu64,
                campaign_seed + static_cast<std::uint64_t>(index));
  sc.policy = pol;
  return sc;
}

// ---- running one schedule ---------------------------------------------------

struct Buffers {
  std::vector<double*> send, recv;
};

/// Allocate + parent-fill the buffer set for `coll` on `team`'s shared heap.
Buffers prepare(rt::Team& team, const Schedule& sc) {
  Buffers b;
  const int p = sc.p;
  b.send.resize(p);
  b.recv.resize(p);
  const std::size_t pn = sc.n * static_cast<std::size_t>(p);
  for (int r = 0; r < p; ++r) {
    switch (sc.coll) {
      case Coll::allreduce:
      case Coll::reduce:
        b.send[r] = reinterpret_cast<double*>(
            team.shared_alloc(sc.n * sizeof(double)));
        b.recv[r] = reinterpret_cast<double*>(
            team.shared_alloc(sc.n * sizeof(double)));
        for (std::size_t i = 0; i < sc.n; ++i) b.send[r][i] = gen(r, i);
        break;
      case Coll::reduce_scatter:
        b.send[r] =
            reinterpret_cast<double*>(team.shared_alloc(pn * sizeof(double)));
        b.recv[r] = reinterpret_cast<double*>(
            team.shared_alloc(sc.n * sizeof(double)));
        for (std::size_t i = 0; i < pn; ++i) b.send[r][i] = gen(r, i);
        break;
      case Coll::broadcast:
        b.send[r] = reinterpret_cast<double*>(
            team.shared_alloc(sc.n * sizeof(double)));
        b.recv[r] = b.send[r];
        for (std::size_t i = 0; i < sc.n; ++i)
          b.send[r][i] = r == 0 ? gen(0, i) : -1.0;
        break;
      case Coll::allgather:
        b.send[r] = reinterpret_cast<double*>(
            team.shared_alloc(sc.n * sizeof(double)));
        b.recv[r] =
            reinterpret_cast<double*>(team.shared_alloc(pn * sizeof(double)));
        for (std::size_t i = 0; i < sc.n; ++i) b.send[r][i] = gen(r, i);
        break;
    }
  }
  return b;
}

void run_coll(rt::Team& team, const Schedule& sc, Buffers& b) {
  team.run([&](rt::RankCtx& ctx) {
    const int r = ctx.rank();
    switch (sc.coll) {
      case Coll::allreduce:
        coll::allreduce(ctx, b.send[r], b.recv[r], sc.n, Datatype::f64,
                        ReduceOp::sum);
        break;
      case Coll::reduce:
        coll::reduce(ctx, b.send[r], b.recv[r], sc.n, Datatype::f64,
                     ReduceOp::sum, 0);
        break;
      case Coll::reduce_scatter:
        coll::reduce_scatter(ctx, b.send[r], b.recv[r], sc.n, Datatype::f64,
                             ReduceOp::sum);
        break;
      case Coll::broadcast:
        coll::broadcast(ctx, b.send[r], sc.n, Datatype::f64, 0);
        break;
      case Coll::allgather:
        coll::allgather(ctx, b.send[r], b.recv[r], sc.n, Datatype::f64);
        break;
    }
  });
}

/// Bit-exact verification against the sequential reference over the team's
/// *surviving* membership (a process-backend death shrinks the team; the
/// re-issued collective is then over p' ranks and must still be correct).
bool verify(const rt::Team& team, const Schedule& sc, const Buffers& b,
            std::string& why) {
  const int p = team.nranks();
  char msg[160];
  const auto fail = [&](int r, std::size_t i, double got, double want) {
    std::snprintf(msg, sizeof msg, "rank %d elem %zu: got %g want %g", r, i,
                  got, want);
    why = msg;
    return false;
  };
  switch (sc.coll) {
    case Coll::allreduce:
      for (int r = 0; r < p; ++r)
        for (std::size_t i = 0; i < sc.n; ++i)
          if (b.recv[r][i] != reduce_ref(p, i))
            return fail(r, i, b.recv[r][i], reduce_ref(p, i));
      return true;
    case Coll::reduce:
      for (std::size_t i = 0; i < sc.n; ++i)
        if (b.recv[0][i] != reduce_ref(p, i))
          return fail(0, i, b.recv[0][i], reduce_ref(p, i));
      return true;
    case Coll::reduce_scatter:
      for (int r = 0; r < p; ++r)
        for (std::size_t i = 0; i < sc.n; ++i) {
          const std::size_t idx = sc.n * static_cast<std::size_t>(r) + i;
          if (b.recv[r][i] != reduce_ref(p, idx))
            return fail(r, i, b.recv[r][i], reduce_ref(p, idx));
        }
      return true;
    case Coll::broadcast:
      for (int r = 0; r < p; ++r)
        for (std::size_t i = 0; i < sc.n; ++i)
          if (b.send[r][i] != gen(0, i))
            return fail(r, i, b.send[r][i], gen(0, i));
      return true;
    case Coll::allgather:
      for (int r = 0; r < p; ++r)
        for (int a = 0; a < p; ++a)
          for (std::size_t i = 0; i < sc.n; ++i) {
            const std::size_t idx = sc.n * static_cast<std::size_t>(a) + i;
            if (b.recv[r][idx] != gen(a, i))
              return fail(r, idx, b.recv[r][idx], gen(a, i));
          }
      return true;
  }
  return false;
}

struct Tally {
  int ok_clean = 0, ok_healed = 0, gaveup = 0, violations = 0;
  std::uint64_t post_sweep_findings = 0;  ///< latent corruption swept at end
  rt::ResilienceStats stats;  // campaign-wide accumulation
  std::vector<std::string> log;

  void fold(const rt::ResilienceStats& s) { stats += s; }
  void violate(const Schedule& sc, const std::string& why) {
    ++violations;
    if (log.size() < 16) log.push_back(sc.describe() + " -- " + why);
    std::fprintf(stderr, "[chaos] VIOLATION %s -- %s\n",
                 sc.describe().c_str(), why.c_str());
  }
};

void run_schedule(const Schedule& sc, Tally& t) {
  rt::TeamConfig cfg;
  cfg.nranks = sc.p;
  cfg.nsockets = sc.m;
  cfg.scratch_bytes = 32u << 20;
  cfg.shared_heap_bytes = 96u << 20;  // worst draw: p=6 gather at 1 MiB
  cfg.sync_timeout = 2.0;  // fast watchdog: hangs become classified aborts
  cfg.tune = sc.tune;
  cfg.resilience = rt::ResiliencePolicy::parse(sc.policy);
  std::unique_ptr<rt::Team> team;
  if (sc.procs)
    team = std::make_unique<rt::ProcessTeam>(cfg);
  else
    team = std::make_unique<rt::ThreadTeam>(cfg);

  Buffers bufs = prepare(*team, sc);
  team->set_fault_plan(rt::FaultPlan::parse(sc.fault));
  std::string why;
  try {
    run_coll(*team, sc, bufs);
    team->set_fault_plan(rt::FaultPlan{});
    if (!verify(*team, sc, bufs, why)) {
      t.violate(sc, "silent wrong answer: " + why);
    } else if (team->resilience_stats().faults > 0) {
      ++t.ok_healed;
    } else {
      ++t.ok_clean;
    }
  } catch (const Error& e) {
    team->set_fault_plan(rt::FaultPlan{});
    if (e.fault_kind() == FaultKind::none) {
      t.violate(sc, std::string("unclassified error: ") + e.what());
    } else {
      // A coherent give-up must leave a recoverable team behind.
      try {
        team->recover();
        run_coll(*team, sc, bufs);
        if (!verify(*team, sc, bufs, why))
          t.violate(sc, "wrong answer after giveup+recover: " + why);
        else
          ++t.gaveup;
      } catch (const std::exception& e2) {
        t.violate(sc, std::string("team did not heal after giveup: ") +
                          e2.what());
      }
    }
  } catch (const std::exception& e) {
    team->set_fault_plan(rt::FaultPlan{});
    t.violate(sc, std::string("non-yhccl exception: ") + e.what());
  }
  // Closing sweep: corruption planted in a section the schedule never read
  // is latent, not lost — the repairing integrity sweep must still find it.
  const auto report = team->verify_integrity(true);
  t.post_sweep_findings += report.findings.size();
  t.fold(team->resilience_stats());
}

}  // namespace

int main(int argc, char** argv) {
  // Line-buffer stdout: process-backend children inherit the stdio buffer
  // at fork and would replay any unflushed output at exit.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  const std::uint64_t seed = env_u64("YHCCL_CHAOS_SEED", 20260808ull);
  const int schedules =
      static_cast<int>(env_u64("YHCCL_CHAOS_SCHEDULES", 240));
  const double budget_s =
      static_cast<double>(env_u64("YHCCL_CHAOS_BUDGET_S", 300));
  const char* out = argc > 1 ? argv[1] : "CHAOS_campaign.json";

  std::printf("chaos campaign: seed=%" PRIu64 " schedules=%d budget=%.0fs\n",
              seed, schedules, budget_s);
  const double t0 = wall_seconds();
  Tally tally;
  int ran = 0;
  bool truncated = false;
  for (; ran < schedules; ++ran) {
    if (wall_seconds() - t0 > budget_s) {
      truncated = true;
      break;
    }
    const Schedule sc = draw(seed, ran);
    run_schedule(sc, tally);
    if ((ran + 1) % 40 == 0)
      std::printf("  [%d/%d] clean=%d healed=%d gaveup=%d violations=%d\n",
                  ran + 1, schedules, tally.ok_clean, tally.ok_healed,
                  tally.gaveup, tally.violations);
  }
  const double wall = wall_seconds() - t0;

  std::FILE* f = std::fopen(out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "chaos: cannot write %s\n", out);
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"yhccl-chaos/1\",\n");
  std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", seed);
  std::fprintf(f, "  \"schedules_requested\": %d,\n", schedules);
  std::fprintf(f, "  \"schedules_run\": %d,\n", ran);
  std::fprintf(f, "  \"truncated\": %s,\n", truncated ? "true" : "false");
  std::fprintf(f, "  \"wall_s\": %.2f,\n", wall);
  std::fprintf(f,
               "  \"outcomes\": {\"ok_clean\": %d, \"ok_healed\": %d, "
               "\"gaveup_coherent\": %d, \"violations\": %d},\n",
               tally.ok_clean, tally.ok_healed, tally.gaveup,
               tally.violations);
  const auto& s = tally.stats;
  std::fprintf(f,
               "  \"resilience\": {\"faults\": %" PRIu64 ", \"retries\": %" PRIu64
               ", \"recoveries\": %" PRIu64 ", \"heals\": %" PRIu64
               ", \"giveups\": %" PRIu64 ", \"quarantines\": %" PRIu64
               ", \"degrades\": %" PRIu64 ", \"corruptions\": %" PRIu64 "},\n",
               s.faults, s.retries, s.recoveries, s.heals, s.giveups,
               s.quarantines, s.degrades, s.corruptions);
  std::fprintf(f, "  \"post_sweep_findings\": %" PRIu64 ",\n",
               tally.post_sweep_findings);
  std::fprintf(f, "  \"violation_log\": [");
  for (std::size_t i = 0; i < tally.log.size(); ++i) {
    std::fprintf(f, "%s\n    \"", i == 0 ? "" : ",");
    for (const char c : tally.log[i]) {
      if (c == '"' || c == '\\') std::fputc('\\', f);
      std::fputc(c, f);
    }
    std::fputc('"', f);
  }
  std::fprintf(f, "%s]\n}\n", tally.log.empty() ? "" : "\n  ");
  std::fclose(f);

  std::printf(
      "chaos campaign done: %d run (%s), clean=%d healed=%d gaveup=%d "
      "violations=%d, %.1fs -> %s\n",
      ran, truncated ? "TRUNCATED by budget" : "complete", tally.ok_clean,
      tally.ok_healed, tally.gaveup, tally.violations, wall, out);
  return tally.violations > 0 ? 2 : 0;
}
