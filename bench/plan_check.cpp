// CLI over the yhccl-plan/1 persistence layer (docs/tuning.md):
//
//   plan_check warm <bench.json> <plans.json>
//       distill a yhccl-bench/1 report into a plan file: the fastest
//       measured engine per (collective, shape, size-bucket) cell
//       (plan::warm_from_bench).  The output loads via $YHCCL_PLAN_FILE.
//   plan_check check <plans.json>
//       validate a plan file against the schema; exit 1 on any defect.
//   plan_check show <plans.json>
//       print the cached decisions as a table.
#include <cstdio>
#include <string>
#include <vector>

#include "yhccl/bench/harness.hpp"
#include "yhccl/coll/plan.hpp"

namespace yb = yhccl::bench;
namespace plan = yhccl::coll::plan;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: plan_check warm <bench.json> <plans.json>\n"
               "       plan_check check <plans.json>\n"
               "       plan_check show <plans.json>\n");
  return 2;
}

yb::Json load_or_die(const std::string& path, bool* ok) {
  std::string err;
  yb::Json j = yb::load_json_file(path, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "plan_check: %s: %s\n", path.c_str(), err.c_str());
    *ok = false;
  }
  return j;
}

int do_warm(const std::string& bench_path, const std::string& plan_path) {
  bool ok = true;
  const yb::Json bench = load_or_die(bench_path, &ok);
  if (!ok) return 1;
  try {
    const yb::Json plans = plan::warm_from_bench(bench);
    plan::validate_plan_json(plans);
    std::string err;
    if (!yb::write_json_file(plan_path, plans, &err)) {
      std::fprintf(stderr, "plan_check: %s: %s\n", plan_path.c_str(),
                   err.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu plans from %s)\n", plan_path.c_str(),
                plans["plans"].size(), bench_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "plan_check: %s\n", e.what());
    return 1;
  }
}

int do_check(const std::string& path) {
  bool ok = true;
  const yb::Json j = load_or_die(path, &ok);
  if (!ok) return 1;
  try {
    plan::validate_plan_json(j);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("%s: valid %s file, %zu plans\n", path.c_str(),
              plan::kPlanSchema, j["plans"].size());
  return 0;
}

int do_show(const std::string& path) {
  bool ok = true;
  const yb::Json j = load_or_die(path, &ok);
  if (!ok) return 1;
  try {
    plan::validate_plan_json(j);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }
  // Bench-warmed files carry only the cache model in the machine block
  // (their entries may span team shapes); save_plans files add the team's
  // signature and shape.
  const yb::Json& machine = j["machine"];
  const std::string sig = machine["signature"].is_string()
                              ? machine["signature"].as_string()
                              : "-";
  std::printf("machine: signature=%s llc=%llu l2=%llu\n", sig.c_str(),
              static_cast<unsigned long long>(machine["llc_bytes"].as_uint()),
              static_cast<unsigned long long>(
                  machine["l2_per_core"].as_uint()));
  std::printf("%-16s %-6s %-6s %8s %12s %-10s %-8s %-8s\n", "collective",
              "dtype", "op", "bucket", "bytes_hi", "algorithm", "nt",
              "source");
  for (const auto& e : j["plans"].items())
    std::printf("%-16s %-6s %-6s %8lld %12llu %-10s %-8s %-8s\n",
                e["collective"].as_string().c_str(),
                e["dtype"].as_string().c_str(), e["op"].as_string().c_str(),
                static_cast<long long>(e["bucket"].as_int()),
                static_cast<unsigned long long>(e["bytes_hi"].as_uint()),
                e["algorithm"].as_string().c_str(),
                e["nt"].as_string().c_str(),
                e["source"].as_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string& mode = args[0];
  if (mode == "warm" && args.size() == 3) return do_warm(args[1], args[2]);
  if (mode == "check" && args.size() == 2) return do_check(args[1]);
  if (mode == "show" && args.size() == 2) return do_show(args[1]);
  return usage();
}
