file(REMOVE_RECURSE
  "CMakeFiles/yhccl_copy.dir/cache_model.cpp.o"
  "CMakeFiles/yhccl_copy.dir/cache_model.cpp.o.d"
  "CMakeFiles/yhccl_copy.dir/kernels.cpp.o"
  "CMakeFiles/yhccl_copy.dir/kernels.cpp.o.d"
  "CMakeFiles/yhccl_copy.dir/reduce_kernels.cpp.o"
  "CMakeFiles/yhccl_copy.dir/reduce_kernels.cpp.o.d"
  "libyhccl_copy.a"
  "libyhccl_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yhccl_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
