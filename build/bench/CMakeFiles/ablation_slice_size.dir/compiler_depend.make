# Empty compiler generated dependencies file for ablation_slice_size.
# This may be replaced when dependencies are built.
