#include "yhccl/copy/kernels.hpp"

#include <cstdint>
#include <cstring>

#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/dispatch.hpp"

namespace yhccl::copy {

void scalar_copy(void* dst, const void* src, std::size_t n) noexcept {
  std::memcpy(dst, src, n);
  dav_add(n, n);
}

void t_copy(void* dst, const void* src, std::size_t n) noexcept {
  const KernelTable& k = kernels();
  k.copy_t(dst, src, n);
  kernel_count_add(k.tier);
  dav_add(n, n);
}

void nt_copy(void* dst, const void* src, std::size_t n) noexcept {
  const KernelTable& k = kernels();
  k.copy_nt(dst, src, n);
  kernel_count_add(k.tier);
  dav_add(n, n);
}

void erms_copy(void* dst, const void* src, std::size_t n) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  std::size_t cnt = n;
  asm volatile("rep movsb" : "+D"(d), "+S"(s), "+c"(cnt) : : "memory");
#else
  std::memcpy(dst, src, n);
#endif
  dav_add(n, n);
}

void memmove_model_copy(void* dst, const void* src, std::size_t n,
                        std::size_t nt_threshold) noexcept {
  if (n >= nt_threshold)
    nt_copy(dst, src, n);
  else
    t_copy(dst, src, n);
}

}  // namespace yhccl::copy
