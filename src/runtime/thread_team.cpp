#include "yhccl/runtime/thread_team.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "yhccl/runtime/fault.hpp"

namespace yhccl::rt {

void ThreadTeam::run_ranks(const std::function<void(int)>& wrapped) {
  auto& fs = shared().fault;
  const std::uint64_t epoch = fs.team_epoch.load(std::memory_order_acquire);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks()));
  std::exception_ptr first_error;
  std::mutex error_mu;

  for (int r = 0; r < nranks(); ++r) {
    threads.emplace_back([&, r] {
      try {
        wrapped(r);
      } catch (const FaultInjectedDeath& d) {
        // A thread rank cannot kill the process; model its injected death by
        // tombstoning the rank and raising the team abort — survivors then
        // leave exactly as they would for a reaped sibling process.
        fs.hb[d.rank].dead.store(1, std::memory_order_release);
        std::uint64_t expect = 0;
        fs.abort_word.compare_exchange_strong(
            expect,
            FaultState::pack(FaultInfo{FaultKind::peer_dead, d.rank, epoch}),
            std::memory_order_acq_rel, std::memory_order_acquire);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  // A rank died at the very last fault point and no survivor was left
  // waiting on it: still report the abort instead of returning a result
  // computed by a partially-dead team.
  const std::uint64_t w = fs.abort_word.load(std::memory_order_acquire);
  if (w != 0) {
    const FaultInfo f = FaultState::unpack(w);
    if (f.epoch == epoch)
      throw Error("ThreadTeam: " + describe_fault(f), f.kind, f.rank, f.epoch);
  }
}

}  // namespace yhccl::rt
