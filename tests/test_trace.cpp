// Tests for trace record & replay: recording fidelity, CSV round-trip,
// replay correctness under different algorithm arms, and the end-to-end
// workflow of extracting an application's communication kernel.
#include <gtest/gtest.h>

#include <vector>

#include "yhccl/apps/miniamr.hpp"
#include "yhccl/coll/trace.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::cached_team;

namespace {

TEST(Trace, RecordsSequenceInOrderWithDurations) {
  const int p = 4;
  auto& team = cached_team(p, 2);
  std::vector<CollTrace> traces(p);
  const std::size_t n = 4000;
  std::vector<std::vector<double>> send(p, std::vector<double>(n, 1)),
      recv(p, std::vector<double>(n * p));
  team.run([&](rt::RankCtx& ctx) {
    auto& tr = traces[ctx.rank()];
    allreduce(tr, ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(), n,
              Datatype::f64, ReduceOp::sum);
    broadcast(tr, ctx, recv[ctx.rank()].data(), n / 2, Datatype::f64, 1);
    allgather(tr, ctx, send[ctx.rank()].data(), recv[ctx.rank()].data(),
              n / 4, Datatype::f64);
  });
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(traces[r].size(), 3u);
    EXPECT_EQ(traces[r].events()[0].kind, CollKind::allreduce);
    EXPECT_EQ(traces[r].events()[0].count, n);
    EXPECT_EQ(traces[r].events()[1].kind, CollKind::broadcast);
    EXPECT_EQ(traces[r].events()[1].root, 1);
    EXPECT_EQ(traces[r].events()[2].kind, CollKind::allgather);
    EXPECT_GT(traces[r].recorded_seconds(), 0.0);
    // All ranks record the same logical sequence.
    EXPECT_EQ(traces[r].events()[0], traces[0].events()[0]);
  }
}

TEST(Trace, CsvRoundTripPreservesEverything) {
  CollTrace t;
  t.record({CollKind::allreduce, 123456, Datatype::f32, ReduceOp::sum, 0,
            0.0123});
  t.record({CollKind::reduce, 77, Datatype::i64, ReduceOp::max, 3, 0.5});
  t.record({CollKind::broadcast, 1, Datatype::u8, ReduceOp::sum, 2, 1e-7});
  const auto csv = t.to_csv();
  const auto back = CollTrace::from_csv(csv);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.events()[i], t.events()[i]) << i;
    EXPECT_NEAR(back.events()[i].seconds, t.events()[i].seconds, 1e-9);
  }
}

TEST(Trace, FromCsvRejectsGarbage) {
  EXPECT_THROW(CollTrace::from_csv("kind,count,dtype,op,root,seconds\n"
                                   "warpdrive,1,f64,sum,0,0.1\n"),
               Error);
}

/// Expect from_csv to raise and name the offending line in its message.
void expect_csv_error(const std::string& csv, const std::string& needle) {
  try {
    CollTrace::from_csv(csv);
    ADD_FAILURE() << "accepted: " << csv;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(Trace, FromCsvRejectsMalformedInputWithLineNumbers) {
  const std::string hdr = "kind,count,dtype,op,root,seconds\n";
  expect_csv_error("", "missing header");
  expect_csv_error("bogus,header\n", "line 1");
  expect_csv_error(hdr + "allreduce,1,f64,sum,0\n", "expected 6 fields");
  expect_csv_error(hdr + "allreduce,1,f64,sum,0,0.1,extra\n", "got 7");
  expect_csv_error(hdr + "warpdrive,1,f64,sum,0,0.1\n",
                   "unknown collective kind");
  expect_csv_error(hdr + "allreduce,1,f128,sum,0,0.1\n", "unknown dtype");
  expect_csv_error(hdr + "allreduce,1,f64,xor,0,0.1\n", "unknown op");
  expect_csv_error(hdr + "allreduce,12x,f64,sum,0,0.1\n", "bad count");
  expect_csv_error(hdr + "allreduce,-3,f64,sum,0,0.1\n", "bad count");
  expect_csv_error(hdr + "allreduce,1,f64,sum,-1,0.1\n", "out of range");
  expect_csv_error(hdr + "allreduce,1,f64,sum,100000,0.1\n", "out of range");
  expect_csv_error(hdr + "allreduce,1,f64,sum,0,fast\n", "bad seconds");
  expect_csv_error(hdr + "allreduce,1,f64,sum,0,-0.5\n", "negative");
  // The line number counts from the top of the file, header included.
  expect_csv_error(hdr + "allreduce,1,f64,sum,0,0.1\n"
                         "reduce,zz,f64,sum,0,0.1\n",
                   "line 3");
}

TEST(Trace, FromCsvToleratesCrlfAndBlankLines) {
  const auto t = CollTrace::from_csv(
      "kind,count,dtype,op,root,seconds\r\n"
      "allreduce,42,f32,sum,0,0.25\r\n"
      "\r\n"
      "reduce,7,i64,max,3,0.5\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.events()[0].kind, CollKind::allreduce);
  EXPECT_EQ(t.events()[0].count, 42u);
  EXPECT_EQ(t.events()[1].root, 3);
}

TEST(Trace, ReplayExecutesEveryEventUnderAnyArm) {
  const int p = 4;
  auto& team = cached_team(p, 2);
  CollTrace t;
  t.record({CollKind::allreduce, 30000, Datatype::f64, ReduceOp::sum, 0, 0});
  t.record({CollKind::reduce_scatter, 2000, Datatype::f32, ReduceOp::sum, 0,
            0});
  t.record({CollKind::broadcast, 10000, Datatype::i32, ReduceOp::sum, 2, 0});
  t.record({CollKind::allgather, 5000, Datatype::f64, ReduceOp::sum, 0, 0});
  for (auto alg : {Algorithm::automatic, Algorithm::ma_flat,
                   Algorithm::dpml_two_level}) {
    CollOpts o;
    o.algorithm = alg;
    std::vector<ReplayResult> res(p);
    team.run([&](rt::RankCtx& ctx) {
      res[ctx.rank()] = replay(ctx, t, o);
    });
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(res[r].events, 4u);
      EXPECT_GT(res[r].seconds, 0.0);
      EXPECT_EQ(res[r].payload_bytes,
                30000u * 8 + 2000u * 4 + 10000u * 4 + 5000u * 8);
    }
  }
}

TEST(Trace, MiniAmrKernelExtractionWorkflow) {
  // Record the proxy app's collective mix, then replay it standalone —
  // the §5.6 methodology as a library feature.
  const int p = 4;
  auto& team = cached_team(p, 2);
  apps::miniamr::Config cfg;
  cfg.tsteps = 3;
  cfg.refine_metric_len = 8192;
  std::vector<CollTrace> traces(p);
  team.run([&](rt::RankCtx& ctx) {
    auto& tr = traces[ctx.rank()];
    apps::miniamr::run_rank(
        ctx, cfg,
        [&tr](rt::RankCtx& c, const double* in, double* out, std::size_t n) {
          allreduce(tr, c, in, out, n, Datatype::f64, ReduceOp::sum);
        });
  });
  // 3 steps x small all-reduce + refinement episodes' big all-reduces.
  ASSERT_GE(traces[0].size(), 3u);
  const auto csv = traces[0].to_csv();
  const auto kernel = CollTrace::from_csv(csv);
  std::vector<ReplayResult> res(p);
  team.run(
      [&](rt::RankCtx& ctx) { res[ctx.rank()] = replay(ctx, kernel); });
  EXPECT_EQ(res[0].events, traces[0].size());
}

}  // namespace
