// The kernel table behind the runtime ISA dispatch (see isa.hpp).
//
// Each tier TU (kernels_scalar.cpp / kernels_avx2.cpp / kernels_avx512.cpp)
// compiles the same generic implementation (kernel_impl.hpp) under its own
// -m flags and exports one KernelTable.  The public entry points in
// kernels.cpp / reduce_kernels.cpp fetch the active table once per call,
// so the hot loops never branch on the tier.
//
// The m-ary `reduce` entry is the paper-critical kernel: a *single pass*
// that reads all m source slices once, folds them in registers and stores
// the result once — (m+1)·n bytes of traffic instead of the ~3n·(m-1) a
// pairwise chain pays (§3, Thm 3.1 applied to the innermost loop).
#pragma once

#include <cstddef>

#include "yhccl/common/types.hpp"
#include "yhccl/copy/isa.hpp"

namespace yhccl::copy {

struct KernelTable {
  IsaTier tier;

  /// Temporal copy: prefetched loads + regular (write-allocating) stores.
  void (*copy_t)(void* dst, const void* src, std::size_t n);
  /// Streaming copy: non-temporal stores + fence (scalar tier: temporal).
  void (*copy_nt)(void* dst, const void* src, std::size_t n);

  /// Single-pass fused m-ary reduction (m >= 2):
  ///   out[i] = srcs[0][i] op srcs[1][i] op ... op srcs[m-1][i]
  /// `out` may alias srcs[0] exactly (the in-place accumulate shape).
  /// `nt_store` streams the result when the tier supports it.
  void (*reduce)(void* out, const void* const* srcs, int m, std::size_t n,
                 Datatype d, ReduceOp op, bool nt_store);
};

/// The table for active_isa().  Cheap (one atomic load).
const KernelTable& kernels() noexcept;

/// Per-tier tables, for direct comparison in tests and benches.  Tiers the
/// binary was built without fall back to the next lower tier's table.
const KernelTable& kernel_table(IsaTier t) noexcept;

}  // namespace yhccl::copy
