#include "yhccl/bench/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace yhccl::bench {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2;
}

double mad_of(const std::vector<double>& v, double center) {
  if (v.empty()) return 0;
  std::vector<double> dev(v.size());
  std::transform(v.begin(), v.end(), dev.begin(),
                 [center](double x) { return std::abs(x - center); });
  return median_of(std::move(dev));
}

void median_ci_ranks(std::size_t n, std::size_t& lo, std::size_t& hi) {
  if (n == 0) {
    lo = hi = 0;
    return;
  }
  // Binomial(n, 1/2) order-statistic interval, normal approximation with
  // z = 1.96; the interval covers the median with ~95% confidence for any
  // continuous distribution.
  const double half = 1.96 * std::sqrt(static_cast<double>(n)) / 2;
  const double mid = static_cast<double>(n) / 2;
  const double flo = std::floor(mid - half);
  const double fhi = std::ceil(mid + half) - 1;
  lo = flo < 0 ? 0 : static_cast<std::size_t>(flo);
  hi = fhi < 0 ? 0 : static_cast<std::size_t>(fhi);
  if (hi > n - 1) hi = n - 1;
  if (lo > hi) lo = hi;
}

std::vector<double> reject_outliers(const std::vector<double>& v, double k) {
  if (v.size() < 4) return v;
  const double med = median_of(v);
  const double mad = mad_of(v, med);
  std::vector<double> kept;
  kept.reserve(v.size());
  if (mad == 0) {
    // Constant majority: anything different is an outlier.
    for (double x : v)
      if (x == med) kept.push_back(x);
  } else {
    for (double x : v)
      if (std::abs(x - med) <= k * mad) kept.push_back(x);
  }
  if (kept.size() < (v.size() + 1) / 2) return v;
  return kept;
}

Summary summarize(const std::vector<double>& samples, double outlier_k) {
  Summary s;
  if (samples.empty()) return s;
  std::vector<double> kept = reject_outliers(samples, outlier_k);
  std::sort(kept.begin(), kept.end());
  s.reps = kept.size();
  s.rejected = samples.size() - kept.size();
  const std::size_t n = kept.size();
  s.median = n % 2 ? kept[n / 2] : (kept[n / 2 - 1] + kept[n / 2]) / 2;
  s.mad = mad_of(kept, s.median);
  s.mean = std::accumulate(kept.begin(), kept.end(), 0.0) /
           static_cast<double>(n);
  s.min = kept.front();
  s.max = kept.back();
  std::size_t lo = 0, hi = 0;
  median_ci_ranks(n, lo, hi);
  s.ci_low = kept[lo];
  s.ci_high = kept[hi];
  return s;
}

}  // namespace yhccl::bench
