#include "yhccl/copy/reduce_kernels.hpp"

#include "yhccl/analysis/hb.hpp"
#include "yhccl/common/error.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/dispatch.hpp"
#include "yhccl/copy/kernels.hpp"

namespace yhccl::copy {

// All three entry points funnel into the tier table's single-pass m-ary
// kernel, so every (op, dtype, tier, store-type) combination shares one
// code path and one DAV accounting rule: (m+1)·n bytes for m operands.

void reduce_inplace(void* dst, const void* src, std::size_t n, Datatype d,
                    ReduceOp op) noexcept {
  analysis::hb_read(src, n, "reduce_inplace(src)");
  analysis::hb_write(dst, n, "reduce_inplace(dst)");
  const void* srcs[2] = {dst, src};
  const KernelTable& k = kernels();
  k.reduce(dst, srcs, 2, n, d, op, /*nt_store=*/false);
  kernel_count_add(k.tier);
  dav_add(2 * n, n);  // two operand loads, one store
}

void reduce_out(void* out, const void* a, const void* b, std::size_t n,
                Datatype d, ReduceOp op, bool nt_store) noexcept {
  analysis::hb_read(a, n, "reduce_out(a)");
  analysis::hb_read(b, n, "reduce_out(b)");
  analysis::hb_write(out, n, "reduce_out(out)");
  const void* srcs[2] = {a, b};
  const KernelTable& k = kernels();
  k.reduce(out, srcs, 2, n, d, op, nt_store);
  kernel_count_add(k.tier);
  dav_add(2 * n, n);
}

void reduce_out_multi(void* out, const void* const* srcs, int m,
                      std::size_t n, Datatype d, ReduceOp op,
                      bool nt_store) {
  YHCCL_REQUIRE(m >= 1, "reduce_out_multi needs at least one source");
  if (m == 1) {
    // Degenerate "reduction" over one operand: just move the data.  The
    // copy books 2n == (m+1)·n, consistent with the m >= 2 accounting.
    if (nt_store)
      nt_copy(out, srcs[0], n);
    else
      t_copy(out, srcs[0], n);
    return;
  }
  for (int i = 0; i < m; ++i)
    analysis::hb_read(srcs[i], n, "reduce_out_multi(src)");
  analysis::hb_write(out, n, "reduce_out_multi(out)");
  const KernelTable& k = kernels();
  k.reduce(out, srcs, m, n, d, op, nt_store);
  kernel_count_add(k.tier);
  dav_add(static_cast<std::uint64_t>(m) * n, n);  // m loads, one store
}

}  // namespace yhccl::copy
