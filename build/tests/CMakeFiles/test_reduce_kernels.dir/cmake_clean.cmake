file(REMOVE_RECURSE
  "CMakeFiles/test_reduce_kernels.dir/test_reduce_kernels.cpp.o"
  "CMakeFiles/test_reduce_kernels.dir/test_reduce_kernels.cpp.o.d"
  "test_reduce_kernels"
  "test_reduce_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reduce_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
