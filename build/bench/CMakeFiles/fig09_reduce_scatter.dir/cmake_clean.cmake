file(REMOVE_RECURSE
  "CMakeFiles/fig09_reduce_scatter.dir/fig09_reduce_scatter.cpp.o"
  "CMakeFiles/fig09_reduce_scatter.dir/fig09_reduce_scatter.cpp.o.d"
  "fig09_reduce_scatter"
  "fig09_reduce_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_reduce_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
