// Collective profiling (the paper ships a PMPI-based profiling tool with
// YHCCL, §5.1).  Each rank keeps a CollProfiler; wrappers time every
// collective call and attribute its wall time, payload bytes, measured
// data-access volume (DAV) and dispatched ISA kernel tier per collective
// kind.  Per-rank profiles merge
// into a node view whose achieved DAB (DAV / time) can be compared with
// the machine's memory bandwidth — the paper's §5.4 analysis in tool form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "yhccl/bench/json.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/runtime/resilience.hpp"
#include "yhccl/runtime/sync_counts.hpp"
#include "yhccl/trace/export.hpp"

namespace yhccl::coll {

enum class CollKind : int {
  allreduce,
  reduce,
  reduce_scatter,
  broadcast,
  allgather,
  kCount_,
};

constexpr const char* coll_kind_name(CollKind k) noexcept {
  switch (k) {
    case CollKind::allreduce: return "allreduce";
    case CollKind::reduce: return "reduce";
    case CollKind::reduce_scatter: return "reduce_scatter";
    case CollKind::broadcast: return "broadcast";
    case CollKind::allgather: return "allgather";
    default: return "?";
  }
}

class CollProfiler {
 public:
  struct Record {
    std::uint64_t calls = 0;
    std::uint64_t payload_bytes = 0;  ///< message bytes (user-visible)
    double seconds = 0;               ///< wall time inside the collective
    double wait_seconds = 0;          ///< of which: spin-waiting (tracer)
    copy::Dav dav;                    ///< measured memory traffic
    copy::KernelCounts kernels;       ///< dispatched kernel calls per ISA tier
    rt::SyncCounts sync;              ///< barrier / progress-flag operations
    std::uint64_t skew_barriers = 0;  ///< node barriers with full-team stamps
    double skew_sum = 0;              ///< sum of per-barrier max-min arrival
    double skew_max = 0;              ///< worst single-barrier arrival skew

    /// Achieved data-access bandwidth, bytes/s.
    double dab() const noexcept {
      return seconds > 0 ? static_cast<double>(dav.total()) / seconds : 0;
    }
    /// Wall time minus attributed spin-wait time (clamped at 0: the two
    /// come from different clocks, so tiny payloads can jitter negative).
    double work_seconds() const noexcept {
      const double w = seconds - wait_seconds;
      return w > 0 ? w : 0;
    }
    /// Mean per-barrier arrival skew, seconds.
    double skew_mean() const noexcept {
      return skew_barriers > 0 ? skew_sum / static_cast<double>(skew_barriers)
                               : 0;
    }
  };

  void add(CollKind k, std::size_t payload, double seconds,
           const copy::Dav& dav, const copy::KernelCounts& kernels = {},
           const rt::SyncCounts& sync = {},
           double wait_seconds = 0) noexcept;
  /// Fold a harvested per-barrier skew rollup (max-minus-min rank arrival,
  /// from the phase tracer) into the per-kind records.
  void add_skew(CollKind k, std::uint64_t barriers, double skew_sum,
                double skew_max) noexcept;
  /// Fold the team's retry/degrade/quarantine counters (parent-side — the
  /// retry engine runs outside any rank, so these are per-team, not
  /// per-kind).  Snapshot-merge: pass the *delta* since the last fold.
  void add_resilience(const rt::ResilienceStats& s) noexcept {
    resilience_ += s;
  }
  const rt::ResilienceStats& resilience() const noexcept {
    return resilience_;
  }
  const Record& get(CollKind k) const noexcept;
  Record total() const noexcept;

  /// Merge another rank's profile into this one (times are summed; the
  /// node-level DAB then reflects aggregate traffic over summed time).
  CollProfiler& operator+=(const CollProfiler& o) noexcept;

  void reset() noexcept { *this = CollProfiler{}; }

  /// Human-readable per-kind table.
  std::string report() const;

  /// Machine-readable profile (schema "yhccl-profiler/1"); round-trips
  /// through from_json exactly (integers are exact, doubles via %.17g).
  bench::Json report_json() const;
  static CollProfiler from_json(const bench::Json& j);

 private:
  Record records_[static_cast<int>(CollKind::kCount_)];
  rt::ResilienceStats resilience_;
};

/// Merge a tracer barrier-skew rollup (trace::Harvest::skew()) into the
/// profiler: rollup slot 1+k holds CollKind k (slot 0 = outside any
/// collective, dropped).
void merge_trace_skew(CollProfiler& prof,
                      const trace::SkewRollup& rollup) noexcept;

// ---- profiled wrappers -------------------------------------------------------
// Identical signatures to yhccl::coll with a leading per-rank profiler.

void allreduce(CollProfiler& prof, RankCtx& ctx, const void* send,
               void* recv, std::size_t count, Datatype d, ReduceOp op,
               const CollOpts& opts = {});
void reduce(CollProfiler& prof, RankCtx& ctx, const void* send, void* recv,
            std::size_t count, Datatype d, ReduceOp op, int root,
            const CollOpts& opts = {});
void reduce_scatter(CollProfiler& prof, RankCtx& ctx, const void* send,
                    void* recv, std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts = {});
void broadcast(CollProfiler& prof, RankCtx& ctx, void* buf,
               std::size_t count, Datatype d, int root,
               const CollOpts& opts = {});
void allgather(CollProfiler& prof, RankCtx& ctx, const void* send,
               void* recv, std::size_t count, Datatype d,
               const CollOpts& opts = {});

}  // namespace yhccl::coll
