// fork()-backed rank team: the paper's real setting of multiple MPI
// processes on one shared-memory node.
//
// The team's shared mapping is created MAP_SHARED|MAP_ANONYMOUS *before*
// forking, so every rank sees it at the same address; collective code is
// identical to the thread backend.  Rank-private buffers really are
// private, so the XPMEM-style direct baselines are unavailable here unless
// the kernel permits process_vm_readv between the siblings.
//
// Caveat: run() forks, so the calling process must not hold locks in other
// threads (standard fork() hygiene — tests call it from the main thread).
#pragma once

#include "yhccl/runtime/team.hpp"

namespace yhccl::rt {

class ProcessTeam final : public Team {
 public:
  explicit ProcessTeam(TeamConfig cfg) : Team(cfg) {}

 protected:
  void run_ranks(const std::function<void(int)>& wrapped) override;
  /// Ranks are processes: enables pid probing, reap bookkeeping, and
  /// _exit-based `die` injection; recover() shrinks the active-rank map.
  bool forked_ranks() const noexcept override { return true; }
};

}  // namespace yhccl::rt
