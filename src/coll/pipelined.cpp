// Pipelined shared-memory broadcast and all-gather with adaptive
// non-temporal stores (paper §4.3, Algorithms 3 and 4).
//
// Classic double-buffered pipeline: while producers fill one I-sized slot,
// consumers drain the other; one node barrier per slice.  The copy into
// shared memory is temporal (read again immediately); the copy into the
// receive buffers is non-temporal whenever the collective's working set
// exceeds the available cache.
#include <cstdint>

#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/copy/isa.hpp"
#include "yhccl/copy/policy.hpp"
#include "yhccl/trace/trace.hpp"

namespace yhccl::coll {

namespace {

std::size_t pipeline_slice(std::size_t total, const CollOpts& opts) {
  const std::size_t imax =
      std::max(round_up(opts.slice_max, kCacheline), kCacheline);
  const std::size_t want = round_up(std::max<std::size_t>(total, 1),
                                    kCacheline);
  return std::min(want, imax);
}

}  // namespace

void pipelined_broadcast(RankCtx& ctx, void* buf, std::size_t count,
                         Datatype d, int root, const CollOpts& opts) {
  trace::CollScope coll_scope(detail::trace_coll_id(CollKind::broadcast),
                              count * dtype_size(d),
                              detail::trace_alg_id(Algorithm::pipelined));
  if (count == 0 || ctx.nranks() == 1) return;
  const int p = ctx.nranks();
  const std::size_t s = count * dtype_size(d);
  const std::size_t I = pipeline_slice(s, opts);
  const std::size_t nsl = ceil_div(s, I);
  detail::ScratchCarver carve(ctx);
  std::byte* shm = carve.take(2 * I);
  auto* b = static_cast<std::byte*>(buf);
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = detail::WorkSet::broadcast(s, p, I);

  auto slice_len = [&](std::size_t k) { return std::min(I, s - k * I); };

  for (std::size_t k = 0; k < nsl; ++k) {
    // One abort/injection check per pipeline stage (slot-copy granularity).
    rt::fault_point("pipeline");
    if (ctx.rank() == root) {
      // Producer side: the slot is consumed right away -> temporal.
      trace::Span sp(trace::Phase::copy_in, slice_len(k));
      if (sp.active())
        sp.set_variant(trace::copy_variant(
            copy::use_nt_store(opts.policy, true, C, W, slice_len(k)),
            static_cast<int>(copy::active_isa())));
      copy::dispatch_copy(opts.policy, shm + (k % 2) * I, b + k * I,
                          slice_len(k), /*temporal_hint=*/true, C, W);
    } else if (k >= 1) {
      // Consumer side: receive buffers are used only after the collective.
      trace::Span sp(trace::Phase::copy_out, slice_len(k - 1));
      if (sp.active())
        sp.set_variant(trace::copy_variant(
            copy::use_nt_store(opts.policy, false, C, W, slice_len(k - 1)),
            static_cast<int>(copy::active_isa())));
      copy::dispatch_copy(opts.policy, b + (k - 1) * I,
                          shm + ((k - 1) % 2) * I, slice_len(k - 1),
                          /*temporal_hint=*/false, C, W);
    }
    ctx.barrier();
  }
  if (ctx.rank() != root) {
    trace::Span sp(trace::Phase::copy_out, slice_len(nsl - 1));
    if (sp.active())
      sp.set_variant(trace::copy_variant(
          copy::use_nt_store(opts.policy, false, C, W, slice_len(nsl - 1)),
          static_cast<int>(copy::active_isa())));
    copy::dispatch_copy(opts.policy, b + (nsl - 1) * I,
                        shm + ((nsl - 1) % 2) * I, slice_len(nsl - 1),
                        /*temporal_hint=*/false, C, W);
  }
  ctx.barrier();  // protect slot reuse by the next collective
}

void pipelined_allgather(RankCtx& ctx, const void* send, void* recv,
                         std::size_t count, Datatype d,
                         const CollOpts& opts) {
  trace::CollScope coll_scope(detail::trace_coll_id(CollKind::allgather),
                              count * dtype_size(d),
                              detail::trace_alg_id(Algorithm::pipelined));
  if (count == 0) return;
  const int p = ctx.nranks();
  const std::size_t s = count * dtype_size(d);
  const auto* sb = static_cast<const std::byte*>(send);
  auto* rb = static_cast<std::byte*>(recv);
  if (p == 1) {
    copy::t_copy(rb, sb, s);
    return;
  }
  const std::size_t I = pipeline_slice(s, opts);
  const std::size_t nsl = ceil_div(s, I);
  detail::ScratchCarver carve(ctx);
  std::byte* shm =
      carve.take(2 * static_cast<std::size_t>(p) * I);  // p double buffers
  auto slot = [&](int rank, std::size_t k) {
    return shm + (static_cast<std::size_t>(rank) * 2 + k % 2) * I;
  };
  const std::size_t C = ctx.cache().available(p);
  const std::size_t W = detail::WorkSet::allgather(s, p, I);
  auto slice_len = [&](std::size_t k) { return std::min(I, s - k * I); };

  for (std::size_t k = 0; k < nsl; ++k) {
    rt::fault_point("pipeline");
    {
      trace::Span sp(trace::Phase::copy_in, slice_len(k));
      if (sp.active())
        sp.set_variant(trace::copy_variant(
            copy::use_nt_store(opts.policy, true, C, W, slice_len(k)),
            static_cast<int>(copy::active_isa())));
      copy::dispatch_copy(opts.policy, slot(ctx.rank(), k), sb + k * I,
                          slice_len(k), /*temporal_hint=*/true, C, W);
    }
    if (k >= 1) {
      const std::size_t lp = slice_len(k - 1);
      trace::Span sp(trace::Phase::copy_out);
      if (sp.active())
        sp.set_variant(trace::copy_variant(
            copy::use_nt_store(opts.policy, false, C, W, lp),
            static_cast<int>(copy::active_isa())));
      for (int a = 0; a < p; ++a) {
        sp.add_bytes(lp);
        copy::dispatch_copy(opts.policy,
                            rb + static_cast<std::size_t>(a) * s + (k - 1) * I,
                            slot(a, k - 1), lp, /*temporal_hint=*/false, C,
                            W);
      }
    }
    ctx.barrier();
  }
  const std::size_t lp = slice_len(nsl - 1);
  {
    trace::Span sp(trace::Phase::copy_out);
    if (sp.active())
      sp.set_variant(trace::copy_variant(
          copy::use_nt_store(opts.policy, false, C, W, lp),
          static_cast<int>(copy::active_isa())));
    for (int a = 0; a < p; ++a) {
      sp.add_bytes(lp);
      copy::dispatch_copy(opts.policy,
                          rb + static_cast<std::size_t>(a) * s + (nsl - 1) * I,
                          slot(a, nsl - 1), lp, /*temporal_hint=*/false, C, W);
    }
  }
  ctx.barrier();
}

}  // namespace yhccl::coll
