// Algorithm switching (paper §5.1 and Fig. 4), routed through the plan
// cache (docs/tuning.md): the generic entry points resolve a cached plan
// for (collective, size bucket, shape) and dispatch on its algorithm.
// With the tuner at its default (prior mode) the served plans reproduce
// the paper's static rules bit for bit — small reductions go to the
// two-level DPML parallel reduction (cheap synchronization), everything
// else to the socket-aware MA reduction (minimal data movement), falling
// back to flat MA on single-socket teams — while warmed or online-refined
// plans can override the choice per size class.  Callers forcing an
// explicit opts.algorithm bypass the tuner entirely.
#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/detail.hpp"
#include "yhccl/coll/plan.hpp"
#include "yhccl/metrics/metrics.hpp"

namespace yhccl::coll {

Algorithm choose_reduction_algorithm(const RankCtx& ctx,
                                     std::size_t msg_bytes,
                                     const CollOpts& opts) {
  return plan::choose_reduction_algorithm(ctx.team().topo(), msg_bytes, opts);
}

namespace {

/// Decision for one reduction call: the tuned plan when the tuner is
/// active, the static §5.1 rule otherwise (tuner off / explicit arm).
Algorithm reduction_algorithm(const plan::TunedCall& tc, RankCtx& ctx,
                              std::size_t total, const CollOpts& opts) {
  const Algorithm a = tc.active()
                          ? tc.plan().algorithm
                          : choose_reduction_algorithm(ctx, total, opts);
  YHCCL_REQUIRE(a != Algorithm::pipelined,
                "the pipelined algorithm serves broadcast/allgather only");
  return a;
}

}  // namespace

void reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                    std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts) {
  // §5.1 sizes reduce-scatter by its total input vector.
  const std::size_t total =
      count * dtype_size(d) * static_cast<std::size_t>(ctx.nranks());
  plan::TunedCall tc(ctx, CollKind::reduce_scatter, total, d, op, opts);
  const CollOpts& o = tc.active() ? tc.opts() : opts;
  const Algorithm a = reduction_algorithm(tc, ctx, total, opts);
  metrics::CollSample ms(1 + static_cast<int>(CollKind::reduce_scatter),
                         total);
  ms.set_alg(1 + static_cast<int>(a));
  switch (a) {
    case Algorithm::dpml_two_level:
      dpml_two_level_reduce_scatter(ctx, send, recv, count, d, op, o);
      break;
    case Algorithm::ma_socket_aware:
      socket_ma_reduce_scatter(ctx, send, recv, count, d, op, o);
      break;
    default:
      ma_reduce_scatter(ctx, send, recv, count, d, op, o);
      break;
  }
  tc.finish(ctx);
}

void allreduce(RankCtx& ctx, const void* send, void* recv, std::size_t count,
               Datatype d, ReduceOp op, const CollOpts& opts) {
  const std::size_t total = count * dtype_size(d);
  plan::TunedCall tc(ctx, CollKind::allreduce, total, d, op, opts);
  const CollOpts& o = tc.active() ? tc.opts() : opts;
  const Algorithm a = reduction_algorithm(tc, ctx, total, opts);
  metrics::CollSample ms(1 + static_cast<int>(CollKind::allreduce), total);
  ms.set_alg(1 + static_cast<int>(a));
  switch (a) {
    case Algorithm::dpml_two_level:
      dpml_two_level_allreduce(ctx, send, recv, count, d, op, o);
      break;
    case Algorithm::ma_socket_aware:
      socket_ma_allreduce(ctx, send, recv, count, d, op, o);
      break;
    default:
      ma_allreduce(ctx, send, recv, count, d, op, o);
      break;
  }
  tc.finish(ctx);
}

void reduce(RankCtx& ctx, const void* send, void* recv, std::size_t count,
            Datatype d, ReduceOp op, int root, const CollOpts& opts) {
  const std::size_t total = count * dtype_size(d);
  plan::TunedCall tc(ctx, CollKind::reduce, total, d, op, opts);
  const CollOpts& o = tc.active() ? tc.opts() : opts;
  const Algorithm a = reduction_algorithm(tc, ctx, total, opts);
  metrics::CollSample ms(1 + static_cast<int>(CollKind::reduce), total);
  ms.set_alg(1 + static_cast<int>(a));
  switch (a) {
    case Algorithm::dpml_two_level:
      dpml_two_level_reduce(ctx, send, recv, count, d, op, root, o);
      break;
    case Algorithm::ma_socket_aware:
      socket_ma_reduce(ctx, send, recv, count, d, op, root, o);
      break;
    default:
      ma_reduce(ctx, send, recv, count, d, op, root, o);
      break;
  }
  tc.finish(ctx);
}

// Broadcast and allgather have a single implementation (the §3.4 sliced
// pipeline), so any explicit opts.algorithm — Algorithm::pipelined to name
// it, or a reduction arm when one CollOpts drives a mixed trace replay —
// simply bypasses the tuner and runs the pipeline with the caller's
// schedule; Algorithm::automatic routes through the plan cache, which can
// tune the pipeline slice size per size class.

void broadcast(RankCtx& ctx, void* buf, std::size_t count, Datatype d,
               int root, const CollOpts& opts) {
  plan::TunedCall tc(ctx, CollKind::broadcast, count * dtype_size(d), d,
                     ReduceOp::sum, opts);
  metrics::CollSample ms(1 + static_cast<int>(CollKind::broadcast),
                         count * dtype_size(d));
  ms.set_alg(1 + static_cast<int>(Algorithm::pipelined));
  pipelined_broadcast(ctx, buf, count, d, root,
                      tc.active() ? tc.opts() : opts);
  tc.finish(ctx);
}

void allgather(RankCtx& ctx, const void* send, void* recv, std::size_t count,
               Datatype d, const CollOpts& opts) {
  plan::TunedCall tc(ctx, CollKind::allgather, count * dtype_size(d), d,
                     ReduceOp::sum, opts);
  metrics::CollSample ms(1 + static_cast<int>(CollKind::allgather),
                         count * dtype_size(d));
  ms.set_alg(1 + static_cast<int>(Algorithm::pipelined));
  pipelined_allgather(ctx, send, recv, count, d,
                      tc.active() ? tc.opts() : opts);
  tc.finish(ctx);
}

}  // namespace yhccl::coll
