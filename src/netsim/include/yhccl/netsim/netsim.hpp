// Cluster network simulator for the multi-node experiments (Figs. 16b, 17,
// 18).
//
// The reproduction host is a single small VM, so cluster-scale runs are
// substituted by a calibrated simulation (DESIGN.md §3): intra-node
// collective costs come from the DAV models driven by a *measured* node
// memory bandwidth plus per-synchronization overhead, and inter-node
// transfers follow a LogGP cost model with serialized per-node NIC
// resources (so lane contention and tree hot-spots emerge naturally from
// the event recurrences rather than closed-form guesses).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace yhccl::net {

/// LogGP network parameters (seconds, seconds/byte).
struct LogGP {
  double L = 1.5e-6;        ///< wire latency
  double o = 0.7e-6;        ///< per-message CPU overhead (each side)
  double g = 0.3e-6;        ///< per-message gap
  double G = 1.0 / 12.5e9;  ///< per-byte gap (100 Gb/s InfiniBand-class)

  double message_time(std::size_t bytes) const {
    return L + 2 * o + g + static_cast<double>(bytes) * G;
  }

  static LogGP infiniband_edr() { return {}; }
  /// ClusterC-era FDR fabric (56 Gb/s, higher latency).
  static LogGP infiniband_fdr() {
    return {2.0e-6, 1.0e-6, 0.4e-6, 1.0 / 7.0e9};
  }
};

/// A serialized resource (a NIC direction, a shared link): requests are
/// granted in arrival order, each occupying the resource for `dur`.
class Resource {
 public:
  /// Returns the completion time of a request arriving at `t`.
  double acquire(double t, double dur) {
    const double start = t > free_at_ ? t : free_at_;
    free_at_ = start + dur;
    return free_at_;
  }
  double free_at() const { return free_at_; }
  void reset() { free_at_ = 0; }

 private:
  double free_at_ = 0;
};

/// Intra-node collective time model: DAV / DAB + synchronization count.
/// `dab` should be calibrated with a measured node bandwidth (the benches
/// measure it with the STREAM-slice workload).
struct IntraNodeModel {
  int ranks_per_node = 64;
  int sockets = 2;
  double dab = 200e9;        ///< node memory bandwidth, bytes/s
  double sync_cost = 1.2e-6; ///< one flag-wait / barrier episode
  std::size_t slice_max = 256u << 10;

  // Times (seconds) for message size s bytes.
  double ma_reduce_scatter(std::size_t s) const;
  double ma_allgather(std::size_t s) const;   ///< pipelined all-gather
  double ma_allreduce(std::size_t s) const;
  double two_copy_ring_allreduce(std::size_t s) const;  ///< Open MPI model
  double dpml_allreduce(std::size_t s) const;
};

/// Inter-node ring all-reduce over `nnodes` nodes with `lanes` concurrent
/// per-node communication lanes (the paper's multi-process inter-node
/// communication, §5.5).  Simulated step-by-step over the NIC resources;
/// returns seconds.
double ring_allreduce_internode(int nnodes, std::size_t bytes_per_node,
                                const LogGP& net, int lanes);

/// Inter-node recursive-doubling all-reduce on one leader per node (the
/// tree strategy of MVAPICH2 / hcoll): log2(nnodes) rounds of full-size
/// exchanges (+ reduction assumed overlapped in the NIC time).
double tree_allreduce_internode(int nnodes, std::size_t bytes,
                                const LogGP& net);

/// Which multi-node all-reduce composition to simulate.
enum class MultiNodeAlgo {
  yhccl,       ///< intra MA reduce-scatter -> multi-lane inter ring -> intra allgather
  openmpi,     ///< two-copy intra ring + single-lane inter ring
  tree_hcoll,  ///< intra reduce + leader recursive doubling + intra bcast
};

struct MultiNodeResult {
  double seconds;
  double intra_seconds;
  double inter_seconds;
};

/// End-to-end multi-node all-reduce estimate for `s` bytes per rank.
MultiNodeResult multinode_allreduce(MultiNodeAlgo algo, std::size_t s,
                                    int nnodes, const IntraNodeModel& node,
                                    const LogGP& net, int lanes = 8);

const char* multinode_algo_name(MultiNodeAlgo a);

}  // namespace yhccl::net
