#include "yhccl/runtime/plan_registry.hpp"

#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>

#include "yhccl/common/error.hpp"

namespace yhccl::rt {

TuneMode resolve_tune_mode(TuneMode cfg) {
  if (cfg != TuneMode::env) return cfg;
  const char* e = std::getenv("YHCCL_TUNE");
  if (e == nullptr || *e == '\0') return TuneMode::prior;
  if (std::strcmp(e, "off") == 0) return TuneMode::off;
  if (std::strcmp(e, "prior") == 0) return TuneMode::prior;
  if (std::strcmp(e, "online") == 0) return TuneMode::online;
  raise(std::string("YHCCL_TUNE: unknown mode '") + e +
        "' (off|prior|online)");
}

const char* tune_mode_name(TuneMode m) noexcept {
  switch (m) {
    case TuneMode::env: return "env";
    case TuneMode::off: return "off";
    case TuneMode::prior: return "prior";
    case TuneMode::online: return "online";
  }
  return "?";
}

std::uint32_t tune_eps_mille_from_env() {
  const char* e = std::getenv("YHCCL_TUNE_EPS");
  if (e == nullptr || *e == '\0') return 100;  // 10%
  char* end = nullptr;
  errno = 0;
  const double eps = std::strtod(e, &end);
  YHCCL_REQUIRE(end != nullptr && *end == '\0' && errno == 0 && eps >= 0 &&
                    eps <= 1,
                "YHCCL_TUNE_EPS must be a probability in [0, 1]");
  return static_cast<std::uint32_t>(eps * 1000.0 + 0.5);
}

std::uint64_t plan_signature(const Topology& topo,
                             const copy::CacheConfig& cache) noexcept {
  std::uint64_t h = plan_mix64(topo.signature());
  const auto fold = [&h](std::uint64_t v) {
    h = plan_mix64(h ^ plan_mix64(v));
  };
  fold(cache.llc_bytes);
  fold(cache.l2_per_core);
  fold(cache.llc_inclusive ? 1 : 0);
  return h != 0 ? h : 1;
}

double PlanSlot::ewma_seconds(int arm) const noexcept {
  return std::bit_cast<double>(
      arm_ewma[arm].load(std::memory_order_relaxed));
}

void PlanSlot::update_arm(int arm, double seconds) noexcept {
  const double old = ewma_seconds(arm);
  const double next = old == 0 ? seconds : 0.75 * old + 0.25 * seconds;
  arm_ewma[arm].store(std::bit_cast<std::uint64_t>(next),
                      std::memory_order_relaxed);
  arm_n[arm].fetch_add(1, std::memory_order_relaxed);
}

std::size_t PlanRegistry::required_bytes(std::uint32_t slots) {
  return checked_add(round_up(sizeof(PlanRegistry), kCacheline),
                     checked_mul(static_cast<std::size_t>(slots),
                                 sizeof(PlanSlot), "plan slot table"),
                     "plan registry segment");
}

PlanRegistry* PlanRegistry::create(void* mem, std::size_t bytes,
                                   std::uint32_t slots,
                                   std::uint32_t eps_mille) {
  YHCCL_REQUIRE(slots >= kProbe && (slots & (slots - 1)) == 0,
                "plan registry: slot count must be a power of two");
  YHCCL_REQUIRE(bytes >= required_bytes(slots),
                "plan registry: segment too small");
  auto* reg = new (mem) PlanRegistry(slots, eps_mille);
  auto* sl = reg->slots_begin();
  for (std::uint32_t i = 0; i < slots; ++i) new (sl + i) PlanSlot();
  return reg;
}

PlanSlot* PlanRegistry::find(std::uint64_t hash) noexcept {
  const std::uint32_t mask = slots_ - 1;
  for (std::uint32_t k = 0; k < kProbe; ++k) {
    auto& s = slots_begin()[(static_cast<std::uint32_t>(hash) + k) & mask];
    const std::uint64_t h = s.hash.load(std::memory_order_acquire);
    if (h == hash) return &s;
    if (h == 0) return nullptr;
  }
  return nullptr;
}

const PlanSlot* PlanRegistry::find(std::uint64_t hash) const noexcept {
  return const_cast<PlanRegistry*>(this)->find(hash);
}

PlanSlot* PlanRegistry::acquire(std::uint64_t hash, std::uint64_t fields,
                                bool* inserted) noexcept {
  if (inserted != nullptr) *inserted = false;
  const std::uint32_t mask = slots_ - 1;
  for (std::uint32_t k = 0; k < kProbe; ++k) {
    auto& s = slots_begin()[(static_cast<std::uint32_t>(hash) + k) & mask];
    std::uint64_t h = s.hash.load(std::memory_order_acquire);
    if (h == 0) {
      // Publish the fields first: a racer that wins the same CAS writes the
      // identical value, and a reader that sees `hash` also sees `fields`.
      s.fields.store(fields, std::memory_order_release);
      if (s.hash.compare_exchange_strong(
              h, hash,
              YHCCL_MC_ORDER(plan_claim_release,
                             std::memory_order_acq_rel))) {
        inserts_.fetch_add(1, std::memory_order_relaxed);
        if (inserted != nullptr) *inserted = true;
        return &s;
      }
      // Lost the race; h now holds the winner's hash.
    }
    if (h == hash) return &s;
  }
  return nullptr;  // probe window exhausted; caller serves the prior
}

bool PlanRegistry::quarantine(std::uint64_t hash,
                              std::uint64_t until_epoch) noexcept {
  PlanSlot* s = find(hash);
  if (s == nullptr) return false;
  // Clear the committed word *before* publishing the mark: the release CAS
  // below orders the clear ahead of the mark, so a rank that acquires the
  // mark can never serve the stale (failing) plan word.  Model-checked as
  // protocol "quarantine"; weakening this order is mutation-caught.
  s->plan.store(0, std::memory_order_relaxed);
  std::uint64_t cur = s->quar.load(std::memory_order_relaxed);
  while (cur < until_epoch) {
    if (s->quar.compare_exchange_weak(
            cur, until_epoch,
            YHCCL_MC_ORDER(quar_publish_release, std::memory_order_acq_rel),
            std::memory_order_relaxed)) {
      quarantines_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  return true;
}

PlanRegistryStats PlanRegistry::stats() const noexcept {
  PlanRegistryStats st;
  st.lookups = lookups_.load(std::memory_order_relaxed);
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.inserts = inserts_.load(std::memory_order_relaxed);
  st.explores = explores_.load(std::memory_order_relaxed);
  st.commits = commits_.load(std::memory_order_relaxed);
  st.loaded = loaded_.load(std::memory_order_relaxed);
  st.quarantines = quarantines_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < slots_; ++i)
    if (slot(i).hash.load(std::memory_order_relaxed) != 0) ++st.entries;
  return st;
}

double PlanRegistry::class_wait(int cls) const noexcept {
  if (cls < 0 || cls >= kPlanClasses) return 0;
  return std::bit_cast<double>(
      class_wait_bits_[cls].load(std::memory_order_relaxed));
}

void PlanRegistry::fold_class_wait(int cls, double wait_fraction) noexcept {
  if (cls < 0 || cls >= kPlanClasses) return;
  const double old = class_wait(cls);
  const double next =
      old == 0 ? wait_fraction : 0.5 * old + 0.5 * wait_fraction;
  class_wait_bits_[cls].store(std::bit_cast<std::uint64_t>(next),
                              std::memory_order_relaxed);
}

}  // namespace yhccl::rt
