// Ablation (ours): all-to-all algorithm comparison — shared-memory staged
// exchange vs XPMEM-style direct pulls vs the cache-oblivious Morton-order
// cooperative transpose of Li et al. [41] (cited in the paper's related
// work).  The Morton walk helps when blocks are small enough that many
// (src, dst) tiles share cache; direct pulls win for large blocks where
// staging is pure overhead.
#include "bench_util.hpp"
#include "yhccl/coll/extra.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  const auto sizes = default_sizes(1u << 10, 2u << 20);  // per-dest block
  const std::size_t hi = sizes.back();
  auto cnt = [](std::size_t b) { return std::max<std::size_t>(b / 8, 1); };

  auto arm = [cnt](coll::AlltoallAlgo algo) {
    return [cnt, algo](rt::RankCtx& c, const void* s, void* r,
                       std::size_t b) {
      coll::alltoall(c, s, r, cnt(b), Datatype::f64, {}, algo);
    };
  };

  const std::vector<std::pair<std::string, CollArm>> arms = {
      {"staged", arm(coll::AlltoallAlgo::staged)},
      {"direct", arm(coll::AlltoallAlgo::direct)},
      {"morton", arm(coll::AlltoallAlgo::direct_morton)},
  };

  std::printf("Ablation — alltoall algorithms (p=%d, m=%d; MsgSz = "
              "per-destination block)\n",
              p, m);
  Session session("ablation_alltoall");
  sweep(team, "alltoall (relative to staged)", arms, sizes,
        hi * static_cast<std::size_t>(p), hi * static_cast<std::size_t>(p),
        &session, "alltoall")
      .print();
  session.write();
  return 0;
}
