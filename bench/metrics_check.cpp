// CLI validator for the metrics exports (docs/observability.md §6):
//
//   metrics_check <file>...
//       each file must be a valid "yhccl-metrics/1" JSON snapshot or a
//       Prometheus text exposition (auto-detected: *.prom / leading '#'
//       or bare-sample lines are Prometheus, everything else JSON);
//       exit 1 on the first violation.
//
//   metrics_check merge <out.json> <in.json>...
//       fold per-process snapshots into one artifact (counters/cells sum,
//       gauges take the max) and validate the result — how
//       run_collectives.sh builds the campaign-wide metrics artifact.
//
// This is the CI metrics leg's gate: an exporter change that breaks the
// schema (or emits non-monotone histogram series Prometheus would reject
// at scrape time) fails the build, not the dashboard.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "yhccl/bench/harness.hpp"
#include "yhccl/bench/json.hpp"
#include "yhccl/metrics/export.hpp"

namespace yb = yhccl::bench;
namespace ym = yhccl::metrics;

namespace {

bool read_text(const std::string& path, std::string* out, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    *err = "cannot open";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool looks_prometheus(const std::string& path, const std::string& text) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0)
    return true;
  // A JSON document opens with '{'; an exposition opens with '#' or a
  // sample line.  Skip leading whitespace and peek.
  for (char ch : text) {
    if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') continue;
    return ch != '{';
  }
  return false;
}

int check_one(const std::string& path) {
  std::string text, err;
  if (!read_text(path, &text, &err)) {
    std::fprintf(stderr, "metrics_check: %s: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  if (looks_prometheus(path, text)) {
    if (!ym::validate_prometheus(text, &err)) {
      std::fprintf(stderr, "metrics_check: %s: %s\n", path.c_str(),
                   err.c_str());
      return 1;
    }
    std::printf("%s: valid Prometheus exposition\n", path.c_str());
    return 0;
  }
  const yb::Json j = yb::Json::parse(text, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "metrics_check: %s: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  if (!ym::validate_metrics_json(j, &err)) {
    std::fprintf(stderr, "metrics_check: %s: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  std::printf("%s: valid %s snapshot, %zu ranks\n", path.c_str(),
              ym::kMetricsSchema, j["ranks"].size());
  return 0;
}

int merge_cmd(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: metrics_check merge <out.json> <in.json>...\n");
    return 2;
  }
  ym::Snapshot merged;
  bool first = true;
  for (int i = 3; i <= argc; ++i) {
    if (i == argc) break;
    const std::string path = argv[i];
    std::string err;
    const yb::Json j = yb::load_json_file(path, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "metrics_check: %s: %s\n", path.c_str(),
                   err.c_str());
      return 1;
    }
    if (!ym::validate_metrics_json(j, &err)) {
      std::fprintf(stderr, "metrics_check: %s: %s\n", path.c_str(),
                   err.c_str());
      return 1;
    }
    const ym::Snapshot s = ym::Snapshot::from_json(j);
    if (first) {
      merged = s;
      first = false;
    } else {
      merged.merge(s);
    }
  }
  std::string err;
  const yb::Json out = merged.to_json();
  if (!ym::validate_metrics_json(out, &err)) {
    std::fprintf(stderr, "metrics_check: merged snapshot invalid: %s\n",
                 err.c_str());
    return 1;
  }
  if (!yb::write_json_file(argv[2], out, &err)) {
    std::fprintf(stderr, "metrics_check: %s: %s\n", argv[2], err.c_str());
    return 1;
  }
  std::printf("%s: merged %d snapshot(s), %d ranks\n", argv[2], argc - 3,
              merged.nranks);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "merge") == 0)
    return merge_cmd(argc, argv);
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: metrics_check <snapshot.json|exposition.prom>...\n"
                 "       metrics_check merge <out.json> <in.json>...\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) rc |= check_one(argv[i]);
  return rc;
}
