// Plan keys, packing, the analytic prior and the candidate-arm tables
// (docs/tuning.md).  Everything here is a pure function of its arguments:
// the agreement argument in plan.hpp leans on that.
#include <algorithm>
#include <bit>

#include "yhccl/coll/detail.hpp"
#include "yhccl/coll/plan.hpp"

namespace yhccl::coll::plan {

namespace {

bool is_reduction(CollKind k) noexcept {
  return k == CollKind::allreduce || k == CollKind::reduce ||
         k == CollKind::reduce_scatter;
}

bool socket_topology(const rt::Topology& topo) noexcept {
  return topo.nsockets() > 1 && topo.nranks() % topo.nsockets() == 0;
}

}  // namespace

// ---- key packing ------------------------------------------------------------
// fields: kind 0-3 | dtype 4-7 | op 8-11 | bucket 12-19 | ranks 20-31 |
// sockets 32-39.  kMaxRanks = 256 and kMaxSockets = 16 fit with room.

std::uint64_t PlanKey::packed_fields() const noexcept {
  std::uint64_t f = static_cast<std::uint64_t>(kind) & 0xf;
  f |= (static_cast<std::uint64_t>(dtype) & 0xf) << 4;
  f |= (static_cast<std::uint64_t>(op) & 0xf) << 8;
  f |= static_cast<std::uint64_t>(bucket) << 12;
  f |= (static_cast<std::uint64_t>(ranks) & 0xfff) << 20;
  f |= (static_cast<std::uint64_t>(sockets) & 0xff) << 32;
  return f;
}

PlanKey PlanKey::from_fields(std::uint64_t f) noexcept {
  PlanKey k;
  k.kind = static_cast<CollKind>(f & 0xf);
  k.dtype = static_cast<Datatype>((f >> 4) & 0xf);
  k.op = static_cast<ReduceOp>((f >> 8) & 0xf);
  k.bucket = static_cast<std::uint8_t>((f >> 12) & 0xff);
  k.ranks = static_cast<int>((f >> 20) & 0xfff);
  k.sockets = static_cast<int>((f >> 32) & 0xff);
  return k;
}

std::uint64_t PlanKey::hash(std::uint64_t team_sig,
                            std::uint64_t opts_sig) const noexcept {
  std::uint64_t h = rt::plan_mix64(packed_fields());
  h = rt::plan_mix64(h ^ team_sig);
  h = rt::plan_mix64(h ^ opts_sig);
  return h != 0 ? h : 1;
}

std::uint64_t opts_signature(const CollOpts& opts) noexcept {
  std::uint64_t h = 0;
  const auto fold = [&h](std::uint64_t v) {
    h = rt::plan_mix64(h ^ rt::plan_mix64(v));
  };
  fold(static_cast<std::uint64_t>(opts.policy));
  fold(opts.slice_max);
  fold(opts.slice_min);
  fold(opts.small_msg_threshold);
  fold(opts.dpml_chunk);
  fold(opts.dpml_flat ? 1 : 0);
  return h;
}

// ---- size buckets -----------------------------------------------------------

std::uint8_t bucket_of(CollKind kind, std::size_t msg_bytes,
                       const CollOpts& opts) noexcept {
  if (msg_bytes == 0) return 0;
  auto b = static_cast<std::uint8_t>(std::bit_width(msg_bytes - 1));
  // The §5.1 threshold may land inside a power-of-two bucket; splitting on
  // it keeps the static decision constant within every (bucket, side) class
  // for arbitrary thresholds, so the prior is exact, never approximate.
  if (is_reduction(kind) && msg_bytes > opts.small_msg_threshold) b |= 0x40;
  return b;
}

std::size_t bucket_rep_bytes(CollKind kind, std::uint8_t bucket,
                             const CollOpts& opts) noexcept {
  const std::size_t hi = std::size_t{1} << (bucket & 0x3f);
  if (is_reduction(kind) && (bucket & 0x40) == 0)
    return std::min(hi, opts.small_msg_threshold);
  return hi;
}

PlanKey make_key(CollKind kind, std::size_t msg_bytes, Datatype d,
                 ReduceOp op, const rt::Topology& topo,
                 const CollOpts& opts) noexcept {
  PlanKey k;
  k.kind = kind;
  k.dtype = d;
  k.op = is_reduction(kind) ? op : ReduceOp::sum;
  k.bucket = bucket_of(kind, msg_bytes, opts);
  k.ranks = topo.nranks();
  k.sockets = topo.nsockets();
  return k;
}

// ---- structural contract ----------------------------------------------------
// The runtime's integrity sweep validates stored words against the
// reserved-bit masks in rt/plan_registry.hpp without unpacking them.  These
// asserts pin this file's packing to that contract: the used bits and the
// reserved mask must partition the word exactly, so *any* flipped byte of a
// committed word lands on a reserved bit or clears the valid bit.

namespace {

constexpr std::uint64_t kWordUsedBits =
    (std::uint64_t{1} << 63) |  // valid
    0xfull |                    // algorithm 0-3
    (0x3ull << 4) |             // nt 4-5
    (0x3full << 8) |            // slice_log2 8-13
    (0x3full << 16) |           // chunk_log2 16-21
    (1ull << 24) |              // nt_prior 24
    (0x3ull << 25) |            // source 25-26
    (0xfull << 28);             // arm 28-31
static_assert((kWordUsedBits & rt::kPlanWordValidBit) != 0,
              "plan word must carry the contracted valid bit");
static_assert((kWordUsedBits & rt::kPlanWordReservedMask) == 0,
              "plan packing writes into contracted reserved bits");
static_assert((kWordUsedBits | rt::kPlanWordReservedMask) == ~0ull,
              "plan word bits unaccounted for by the structural contract");

constexpr std::uint64_t kFieldsUsedBits =
    0xfull |            // kind 0-3
    (0xfull << 4) |     // dtype 4-7
    (0xfull << 8) |     // op 8-11
    (0xffull << 12) |   // bucket 12-19
    (0xfffull << 20) |  // ranks 20-31
    (0xffull << 32);    // sockets 32-39
static_assert((kFieldsUsedBits & rt::kPlanFieldsReservedMask) == 0,
              "key packing writes into contracted reserved bits");
static_assert((kFieldsUsedBits | rt::kPlanFieldsReservedMask) == ~0ull,
              "key field bits unaccounted for by the structural contract");

}  // namespace

// ---- plan packing -----------------------------------------------------------
// word: valid 63 | algorithm 0-3 | nt 4-5 | slice_log2 8-13 |
// chunk_log2 16-21 | nt_prior 24 | source 25-26 | arm 28-31.

std::uint64_t Plan::pack() const noexcept {
  std::uint64_t w = std::uint64_t{1} << 63;
  w |= static_cast<std::uint64_t>(algorithm) & 0xf;
  w |= (static_cast<std::uint64_t>(nt) & 0x3) << 4;
  w |= static_cast<std::uint64_t>(slice_log2 & 0x3f) << 8;
  w |= static_cast<std::uint64_t>(chunk_log2 & 0x3f) << 16;
  if (nt_prior) w |= std::uint64_t{1} << 24;
  w |= (static_cast<std::uint64_t>(source) & 0x3) << 25;
  w |= static_cast<std::uint64_t>(arm & 0xf) << 28;
  return w;
}

Plan Plan::unpack(std::uint64_t w) noexcept {
  Plan p;
  p.algorithm = static_cast<Algorithm>(w & 0xf);
  p.nt = static_cast<NtChoice>((w >> 4) & 0x3);
  p.slice_log2 = static_cast<std::uint8_t>((w >> 8) & 0x3f);
  p.chunk_log2 = static_cast<std::uint8_t>((w >> 16) & 0x3f);
  p.nt_prior = ((w >> 24) & 1) != 0;
  p.source = static_cast<PlanSource>((w >> 25) & 0x3);
  p.arm = static_cast<std::uint8_t>((w >> 28) & 0xf);
  return p;
}

void Plan::apply(CollOpts& o) const noexcept {
  const CollOpts defaults{};
  if (o.policy == copy::CopyPolicy::adaptive) {
    if (nt == NtChoice::temporal) o.policy = copy::CopyPolicy::always_temporal;
    if (nt == NtChoice::stream) o.policy = copy::CopyPolicy::always_nt;
  }
  if (slice_log2 != 0 && o.slice_max == defaults.slice_max)
    o.slice_max = std::size_t{1} << slice_log2;
  if (chunk_log2 != 0 && o.dpml_chunk == defaults.dpml_chunk)
    o.dpml_chunk = std::size_t{1} << chunk_log2;
}

// ---- analytic prior ---------------------------------------------------------

Algorithm choose_reduction_algorithm(const rt::Topology& topo,
                                     std::size_t msg_bytes,
                                     const CollOpts& opts) noexcept {
  if (opts.algorithm != Algorithm::automatic) return opts.algorithm;
  if (msg_bytes <= opts.small_msg_threshold) return Algorithm::dpml_two_level;
  if (socket_topology(topo)) return Algorithm::ma_socket_aware;
  return Algorithm::ma_flat;
}

bool prior_nt(CollKind kind, std::size_t msg_bytes, int p, int m,
              const copy::CacheConfig& cache,
              std::size_t slice_max) noexcept {
  const std::size_t I =
      std::max(round_up(slice_max, kCacheline), kCacheline);
  const std::size_t s = msg_bytes;
  std::size_t w = 0;
  switch (kind) {
    case CollKind::reduce_scatter:
      w = detail::WorkSet::reduce_scatter(s, p, I);
      break;
    case CollKind::allreduce:
      // W = 2sp + m*p*I > C  <=>  s > (C - m*p*I)/(2p): exactly the §5.4
      // switch point model::nt_switch_point_allreduce computes.
      w = detail::WorkSet::allreduce(s, p, m, I);
      break;
    case CollKind::reduce:
      w = detail::WorkSet::reduce(s, p, m, I);
      break;
    case CollKind::broadcast:
      w = detail::WorkSet::broadcast(s, p, I);
      break;
    case CollKind::allgather:
      w = detail::WorkSet::allgather(s, p, I);
      break;
    default:
      break;
  }
  return w > cache.available(p);
}

Plan prior_plan(const PlanKey& key, const CollOpts& opts,
                const rt::Topology& topo,
                const copy::CacheConfig& cache) noexcept {
  Plan p;
  const std::size_t rep = bucket_rep_bytes(key.kind, key.bucket, opts);
  p.algorithm = is_reduction(key.kind)
                    ? choose_reduction_algorithm(topo, rep, opts)
                    : Algorithm::pipelined;
  p.nt = NtChoice::adaptive;  // per-slice Algorithm 1 — the legacy behavior
  p.nt_prior = prior_nt(key.kind, rep, topo.nranks(), topo.nsockets(), cache,
                        opts.slice_max);
  p.source = PlanSource::prior;
  p.arm = 0;
  return p;
}

// ---- candidate arms ---------------------------------------------------------

namespace {

int build_arms(const PlanKey& key, const CollOpts& opts,
               const rt::Topology& topo, const copy::CacheConfig& cache,
               Plan out[rt::kPlanMaxArms]) noexcept {
  const Plan prior = prior_plan(key, opts, topo, cache);
  int n = 0;
  out[n++] = prior;
  if (is_reduction(key.kind)) {
    const Algorithm alts[] = {Algorithm::dpml_two_level, Algorithm::ma_flat,
                              Algorithm::ma_socket_aware};
    for (const Algorithm a : alts) {
      if (a == prior.algorithm) continue;
      if (a == Algorithm::ma_socket_aware && !socket_topology(topo)) continue;
      Plan p = prior;
      p.algorithm = a;
      out[n++] = p;
    }
  } else if (opts.slice_max == CollOpts{}.slice_max) {
    // Alternative pipeline depths around the paper's Imax = 256 KB; apply()
    // honors them only when the caller kept the default, so these arms are
    // meaningful exactly when they are enumerated.
    for (const std::uint8_t lg : {std::uint8_t{16}, std::uint8_t{20}}) {
      Plan p = prior;
      p.slice_log2 = lg;
      out[n++] = p;
    }
  }
  if (opts.policy == copy::CopyPolicy::adaptive &&
      n + 2 <= rt::kPlanMaxArms) {
    Plan p = prior;
    p.nt = NtChoice::stream;
    out[n++] = p;
    p = prior;
    p.nt = NtChoice::temporal;
    out[n++] = p;
  }
  for (int i = 0; i < n; ++i) {
    out[i].arm = static_cast<std::uint8_t>(i);
    if (i != 0) out[i].source = PlanSource::online;
  }
  return n;
}

}  // namespace

int arm_count(const PlanKey& key, const CollOpts& opts,
              const rt::Topology& topo) noexcept {
  Plan arms[rt::kPlanMaxArms];
  return build_arms(key, opts, topo, copy::CacheConfig{}, arms);
}

Plan arm_plan(int arm, const PlanKey& key, const CollOpts& opts,
              const rt::Topology& topo,
              const copy::CacheConfig& cache) noexcept {
  Plan arms[rt::kPlanMaxArms];
  const int n = build_arms(key, opts, topo, cache, arms);
  return arms[arm >= 0 && arm < n ? arm : 0];
}

}  // namespace yhccl::coll::plan
