// Table 4 reproduction: sliced-copy bandwidth of memmove vs t-copy vs
// nt-copy (STREAM COPY convention: 2 bytes of traffic per payload byte).
//
// Paper (NodeA, 16 GB array): nt-copy ~236 GB/s vs t-copy ~152 GB/s at
// 512 KB/1 MB slices (~50% better), and memmove catching up only at 2 MB
// slices where its internal threshold flips to NT stores.  Absolute
// numbers here reflect this VM; the *ordering* is the reproduction target.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "yhccl/apps/stream.hpp"

using namespace yhccl;
using namespace yhccl::apps::stream;

namespace {

void run_kind(benchmark::State& state, CopyKind kind) {
  const std::size_t slice = static_cast<std::size_t>(state.range(0));
  const std::size_t total = static_cast<std::size_t>(
      (256u << 20) * yhccl::bench::bench_scale());
  for (auto _ : state) {
    const auto r = run_sliced_copy(total, slice, kind, 1);
    state.SetIterationTime(r.seconds);
    state.counters["MB_per_s"] = r.bandwidth_mbps;
  }
  state.counters["slice_KB"] = static_cast<double>(slice >> 10);
}

void BM_Memmove(benchmark::State& s) { run_kind(s, CopyKind::memmove_libc); }
void BM_TCopy(benchmark::State& s) { run_kind(s, CopyKind::temporal); }
void BM_NTCopy(benchmark::State& s) { run_kind(s, CopyKind::non_temporal); }
void BM_Erms(benchmark::State& s) { run_kind(s, CopyKind::erms); }

}  // namespace

BENCHMARK(BM_Memmove)->Arg(512 << 10)->Arg(1 << 20)->Arg(2 << 20)->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TCopy)->Arg(512 << 10)->Arg(1 << 20)->Arg(2 << 20)->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NTCopy)->Arg(512 << 10)->Arg(1 << 20)->Arg(2 << 20)->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Erms)->Arg(512 << 10)->Arg(1 << 20)->Arg(2 << 20)->UseManualTime()->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
