// DPML [Bayatpour et al. 2017] — data-partitioning multi-leader parallel
// reduction.  Every rank copies its full sending buffer into shared
// memory, then the ranks reduce disjoint partitions in parallel.  This is
// the redundant copy-in the MA algorithms eliminate (paper Fig. 1b / 2a).
//
// Implemented as the flat (single-level) configuration of the generic
// hierarchical parallel reduction in yhccl::coll.
#include "yhccl/baselines/baselines.hpp"

namespace yhccl::base {

namespace {
CollOpts flat(const CollOpts& opts) {
  CollOpts o = opts;
  o.dpml_flat = true;
  return o;
}
}  // namespace

void dpml_reduce_scatter(RankCtx& ctx, const void* send, void* recv,
                         std::size_t count, Datatype d, ReduceOp op,
                         const CollOpts& opts) {
  coll::dpml_two_level_reduce_scatter(ctx, send, recv, count, d, op,
                                      flat(opts));
}

void dpml_allreduce(RankCtx& ctx, const void* send, void* recv,
                    std::size_t count, Datatype d, ReduceOp op,
                    const CollOpts& opts) {
  coll::dpml_two_level_allreduce(ctx, send, recv, count, d, op, flat(opts));
}

void dpml_reduce(RankCtx& ctx, const void* send, void* recv,
                 std::size_t count, Datatype d, ReduceOp op, int root,
                 const CollOpts& opts) {
  coll::dpml_two_level_reduce(ctx, send, recv, count, d, op, root,
                              flat(opts));
}

}  // namespace yhccl::base
