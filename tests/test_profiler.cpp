// Tests for the collective profiler (the paper's PMPI tool analogue):
// attribution per collective kind, payload accounting, DAV capture that
// matches the Tables 1-3 models, merging, and report formatting.
#include <gtest/gtest.h>

#include <vector>

#include "yhccl/coll/profiler.hpp"
#include "yhccl/model/dav_model.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::cached_team;
using test::fill_buffer;

namespace {

TEST(Profiler, AttributesCallsAndPayloadPerKind) {
  const int p = 4;
  auto& team = cached_team(p, 2);
  const std::size_t count = 10000;
  std::vector<std::vector<double>> send(p, std::vector<double>(count)),
      recv(p, std::vector<double>(count * p));
  std::vector<CollProfiler> prof(p);
  team.run([&](rt::RankCtx& ctx) {
    const int r = ctx.rank();
    auto& pr = prof[r];
    allreduce(pr, ctx, send[r].data(), recv[r].data(), count, Datatype::f64,
              ReduceOp::sum);
    allreduce(pr, ctx, send[r].data(), recv[r].data(), count, Datatype::f64,
              ReduceOp::sum);
    broadcast(pr, ctx, recv[r].data(), count, Datatype::f64, 0);
    allgather(pr, ctx, send[r].data(), recv[r].data(), count / p,
              Datatype::f64);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(prof[r].get(CollKind::allreduce).calls, 2u);
    EXPECT_EQ(prof[r].get(CollKind::allreduce).payload_bytes,
              2 * count * 8);
    EXPECT_EQ(prof[r].get(CollKind::broadcast).calls, 1u);
    EXPECT_EQ(prof[r].get(CollKind::allgather).calls, 1u);
    EXPECT_EQ(prof[r].get(CollKind::reduce).calls, 0u);
    EXPECT_GT(prof[r].get(CollKind::allreduce).seconds, 0.0);
    EXPECT_EQ(prof[r].total().calls, 4u);
  }
}

TEST(Profiler, MergedDavMatchesTable2Model) {
  const int p = 4;
  auto& team = cached_team(p, 1);
  const std::size_t count = 8192 * p;  // divisible geometry -> exact model
  std::vector<std::vector<double>> send(p, std::vector<double>(count)),
      recv(p, std::vector<double>(count));
  for (int r = 0; r < p; ++r)
    fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
  std::vector<CollProfiler> prof(p);
  CollOpts o;
  o.algorithm = Algorithm::ma_flat;
  o.slice_max = 16u << 10;
  team.run([&](rt::RankCtx& ctx) {
    allreduce(prof[ctx.rank()], ctx, send[ctx.rank()].data(),
              recv[ctx.rank()].data(), count, Datatype::f64, ReduceOp::sum,
              o);
  });
  CollProfiler node;
  for (auto& pr : prof) node += pr;
  EXPECT_EQ(node.get(CollKind::allreduce).dav.total(),
            model::impl::ma_allreduce(count * 8, p));
  EXPECT_GT(node.get(CollKind::allreduce).dab(), 0.0);
}

TEST(Profiler, ReportListsActiveKindsAndTotal) {
  CollProfiler prof;
  prof.add(CollKind::allreduce, 1 << 20, 0.5, copy::Dav{1000, 500});
  prof.add(CollKind::reduce_scatter, 2 << 20, 0.25, copy::Dav{400, 200});
  const auto rep = prof.report();
  EXPECT_NE(rep.find("allreduce"), std::string::npos);
  EXPECT_NE(rep.find("reduce_scatter"), std::string::npos);
  EXPECT_EQ(rep.find("broadcast"), std::string::npos);  // inactive: hidden
  EXPECT_NE(rep.find("TOTAL"), std::string::npos);
}

TEST(Profiler, RecordsDispatchedKernelTier) {
  const int p = 4;
  auto& team = cached_team(p, 1);
  const std::size_t count = 8192 * p;
  std::vector<std::vector<double>> send(p, std::vector<double>(count)),
      recv(p, std::vector<double>(count));
  for (int r = 0; r < p; ++r)
    fill_buffer(send[r].data(), count, Datatype::f64, r, ReduceOp::sum);
  std::vector<CollProfiler> prof(p);
  team.run([&](rt::RankCtx& ctx) {
    allreduce(prof[ctx.rank()], ctx, send[ctx.rank()].data(),
              recv[ctx.rank()].data(), count, Datatype::f64, ReduceOp::sum);
  });
  CollProfiler node;
  for (auto& pr : prof) node += pr;
  const auto& r = node.get(CollKind::allreduce);
  EXPECT_GT(r.kernels.total(), 0u);
  EXPECT_EQ(r.kernels.dominant(), copy::active_isa());
  EXPECT_NE(node.report().find(copy::isa_name(copy::active_isa())),
            std::string::npos);
}

TEST(Profiler, JsonReportRoundTripsExactly) {
  CollProfiler prof;
  copy::KernelCounts kc;
  kc.calls[0] = 7;
  rt::SyncCounts sc{12, 34, 56};
  prof.add(CollKind::allreduce, 1 << 20, 0.5, copy::Dav{1000, 500}, kc, sc,
           /*wait_seconds=*/0.125);
  prof.add(CollKind::reduce_scatter, 2 << 20, 0.25, copy::Dav{400, 200});
  prof.add_skew(CollKind::allreduce, 9, 1.5e-3, 4.0e-4);

  const bench::Json j = prof.report_json();
  EXPECT_EQ(j["schema"].as_string(), "yhccl-profiler/1");
  // Round-trip through the serialized text, not just the value tree.
  std::string perr;
  const bench::Json back_j = bench::Json::parse(j.dump(2), &perr);
  ASSERT_TRUE(perr.empty()) << perr;
  const CollProfiler back = CollProfiler::from_json(back_j);

  for (int k = 0; k < static_cast<int>(CollKind::kCount_); ++k) {
    const auto& a = prof.get(static_cast<CollKind>(k));
    const auto& b = back.get(static_cast<CollKind>(k));
    EXPECT_EQ(a.calls, b.calls) << k;
    EXPECT_EQ(a.payload_bytes, b.payload_bytes) << k;
    EXPECT_EQ(a.seconds, b.seconds) << k;
    EXPECT_EQ(a.wait_seconds, b.wait_seconds) << k;
    EXPECT_EQ(a.dav, b.dav) << k;
    EXPECT_EQ(a.kernels, b.kernels) << k;
    EXPECT_EQ(a.sync, b.sync) << k;
    EXPECT_EQ(a.skew_barriers, b.skew_barriers) << k;
    EXPECT_EQ(a.skew_sum, b.skew_sum) << k;
    EXPECT_EQ(a.skew_max, b.skew_max) << k;
  }
  EXPECT_EQ(back.get(CollKind::allreduce).work_seconds(), 0.5 - 0.125);
  EXPECT_THROW(CollProfiler::from_json(bench::Json::object()), Error);
}

TEST(Profiler, WaitWorkSplitIsSane) {
  CollProfiler prof;
  prof.add(CollKind::reduce, 64, 0.1, copy::Dav{}, {}, {}, 0.04);
  const auto& r = prof.get(CollKind::reduce);
  EXPECT_DOUBLE_EQ(r.work_seconds(), 0.06);
  // The tracer's TSC clock can jitter past the wall clock on tiny calls:
  // work time clamps at zero instead of going negative.
  CollProfiler over;
  over.add(CollKind::reduce, 64, 0.1, copy::Dav{}, {}, {}, 0.11);
  EXPECT_EQ(over.get(CollKind::reduce).work_seconds(), 0.0);
  const auto rep = over.report();
  EXPECT_NE(rep.find("wait(s)"), std::string::npos);
}

TEST(Profiler, ResetClearsEverything) {
  CollProfiler prof;
  prof.add(CollKind::broadcast, 123, 1.0, copy::Dav{9, 9});
  prof.reset();
  EXPECT_EQ(prof.total().calls, 0u);
  EXPECT_EQ(prof.total().dav.total(), 0u);
}

}  // namespace
