#include "yhccl/bench/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "yhccl/common/time.hpp"
#include "yhccl/copy/cache_model.hpp"

namespace yhccl::bench {

namespace {

int env_int(const char* name, int fallback) {
  if (const char* e = std::getenv(name)) {
    const int v = std::atoi(e);
    if (v > 0) return v;
  }
  return fallback;
}

double env_double(const char* name, double fallback) {
  if (const char* e = std::getenv(name)) {
    const double v = std::atof(e);
    if (v > 0) return v;
  }
  return fallback;
}

Json summary_to_json(const Summary& s) {
  Json j = Json::object();
  j.set("reps", s.reps);
  j.set("rejected", s.rejected);
  j.set("median_s", s.median);
  j.set("mad_s", s.mad);
  j.set("mean_s", s.mean);
  j.set("min_s", s.min);
  j.set("max_s", s.max);
  j.set("ci_low_s", s.ci_low);
  j.set("ci_high_s", s.ci_high);
  return j;
}

Summary summary_from_json(const Json& j) {
  Summary s;
  s.reps = j["reps"].as_uint();
  s.rejected = j["rejected"].as_uint();
  s.median = j["median_s"].as_double();
  s.mad = j["mad_s"].as_double();
  s.mean = j["mean_s"].as_double();
  s.min = j["min_s"].as_double();
  s.max = j["max_s"].as_double();
  s.ci_low = j["ci_low_s"].as_double();
  s.ci_high = j["ci_high_s"].as_double();
  return s;
}

}  // namespace

// ---- RunPolicy ---------------------------------------------------------------

RunPolicy RunPolicy::from_env() {
  RunPolicy p;
  p.warmup = env_int("YHCCL_BENCH_WARMUP", p.warmup);
  p.min_reps = env_int("YHCCL_BENCH_MIN_REPS", p.min_reps);
  p.max_reps = env_int("YHCCL_BENCH_REPS", p.max_reps);
  p.target_rel_ci = env_double("YHCCL_BENCH_CI", p.target_rel_ci);
  p.budget_s = env_double("YHCCL_BENCH_BUDGET", p.budget_s);
  if (p.max_reps < p.min_reps) p.max_reps = p.min_reps;
  return p;
}

Json RunPolicy::to_json() const {
  Json j = Json::object();
  j.set("warmup", warmup);
  j.set("min_reps", min_reps);
  j.set("max_reps", max_reps);
  j.set("target_rel_ci", target_rel_ci);
  j.set("budget_s", budget_s);
  j.set("outlier_k", outlier_k);
  return j;
}

// ---- MachineInfo -------------------------------------------------------------

MachineInfo MachineInfo::detect() {
  MachineInfo m;
  m.isa = copy::isa_name(copy::active_isa());
  m.detected_isa = copy::isa_name(copy::detected_isa());
  m.hw_threads = static_cast<int>(std::thread::hardware_concurrency());
  const copy::CacheConfig c = copy::CacheConfig::detect();
  m.llc_bytes = c.llc_bytes;
  m.l2_per_core = c.l2_per_core;
  m.llc_inclusive = c.llc_inclusive;
  m.cache = c.describe();
  return m;
}

Json MachineInfo::to_json() const {
  Json j = Json::object();
  j.set("isa", isa);
  j.set("detected_isa", detected_isa);
  j.set("hw_threads", hw_threads);
  j.set("llc_bytes", llc_bytes);
  j.set("l2_per_core", l2_per_core);
  j.set("llc_inclusive", llc_inclusive);
  j.set("cache", cache);
  return j;
}

// ---- Counters ----------------------------------------------------------------

Json Counters::to_json() const {
  Json j = Json::object();
  j.set("dav_loads", dav.loads);
  j.set("dav_stores", dav.stores);
  j.set("kernels_scalar",
        kernels.calls[static_cast<int>(copy::IsaTier::scalar)]);
  j.set("kernels_avx2", kernels.calls[static_cast<int>(copy::IsaTier::avx2)]);
  j.set("kernels_avx512",
        kernels.calls[static_cast<int>(copy::IsaTier::avx512)]);
  j.set("barriers", sync.barriers);
  j.set("flag_posts", sync.flag_posts);
  j.set("flag_waits", sync.flag_waits);
  return j;
}

Counters Counters::from_json(const Json& j) {
  Counters c;
  c.dav.loads = j["dav_loads"].as_uint();
  c.dav.stores = j["dav_stores"].as_uint();
  c.kernels.calls[static_cast<int>(copy::IsaTier::scalar)] =
      j["kernels_scalar"].as_uint();
  c.kernels.calls[static_cast<int>(copy::IsaTier::avx2)] =
      j["kernels_avx2"].as_uint();
  c.kernels.calls[static_cast<int>(copy::IsaTier::avx512)] =
      j["kernels_avx512"].as_uint();
  c.sync.barriers = j["barriers"].as_uint();
  c.sync.flag_posts = j["flag_posts"].as_uint();
  c.sync.flag_waits = j["flag_waits"].as_uint();
  return c;
}

// ---- Series ------------------------------------------------------------------

std::string Series::key() const {
  std::ostringstream os;
  os << bench << '/' << collective << '/' << algorithm << "/p" << ranks
     << "m" << sockets << '/' << bytes << 'B';
  return os.str();
}

Json Series::to_json() const {
  Json j = Json::object();
  j.set("bench", bench);
  j.set("collective", collective);
  j.set("algorithm", algorithm);
  j.set("ranks", ranks);
  j.set("sockets", sockets);
  j.set("bytes", bytes);
  j.set("time", summary_to_json(time));
  j.set("dab_bytes_per_s", dab);
  j.set("counters", counters.to_json());
  j.set("isa", isa);
  return j;
}

Series Series::from_json(const Json& j) {
  Series s;
  s.bench = j["bench"].as_string();
  s.collective = j["collective"].as_string();
  s.algorithm = j["algorithm"].as_string();
  s.ranks = static_cast<int>(j["ranks"].as_int());
  s.sockets = static_cast<int>(j["sockets"].as_int());
  s.bytes = static_cast<std::size_t>(j["bytes"].as_int());
  s.time = summary_from_json(j["time"]);
  s.dab = j["dab_bytes_per_s"].as_double();
  s.counters = Counters::from_json(j["counters"]);
  s.isa = j["isa"].as_string();
  return s;
}

// ---- measurement -------------------------------------------------------------

Summary timed_run(rt::Team& team, const RankFn& fn, const RunPolicy& policy,
                  const IterHook& between_iters) {
  // Per-rank timing slots must live in the shared mapping so fork()ed
  // ranks can report through them; one bump allocation per cell (2 KB)
  // for the lifetime of the team.
  auto* slot = reinterpret_cast<double*>(
      team.shared_alloc(sizeof(double) * rt::kMaxRanks, alignof(double)));
  const int warm = std::max(policy.warmup, 0);
  const int min_reps = std::max(policy.min_reps, 1);
  const int max_reps = std::max(policy.max_reps, min_reps);

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(max_reps));
  double spent = 0;
  for (int it = 0; it < warm + max_reps; ++it) {
    if (between_iters) between_iters(static_cast<unsigned>(it));
    team.run([&](rt::RankCtx& ctx) {
      // Align ranks before starting the clock: thread/process spawn skew
      // otherwise dominates small-message samples.
      ctx.barrier();
      const Timer t;
      fn(ctx);
      slot[ctx.rank()] = t.elapsed();
    });
    double worst = 0;
    for (int r = 0; r < team.nranks(); ++r) worst = std::max(worst, slot[r]);
    if (it < warm) continue;
    samples.push_back(worst);
    spent += worst;
    if (static_cast<int>(samples.size()) >= min_reps) {
      const Summary s = summarize(samples, policy.outlier_k);
      if (s.rel_ci() <= policy.target_rel_ci || spent > policy.budget_s)
        return s;
    }
  }
  return summarize(samples, policy.outlier_k);
}

Counters measure_counters(rt::Team& team, const RankFn& fn) {
  // Deliberately no harness barrier and no timing inside the run: the
  // captured totals must match the model::impl:: simulators operation for
  // operation.
  team.run(fn);
  Counters c;
  c.dav = team.total_dav();
  c.kernels = team.total_kernels();
  c.sync = team.total_sync();
  return c;
}

Series measure_series(rt::Team& team, Series meta, const RankFn& fn,
                      const RunPolicy& policy, const IterHook& between_iters) {
  meta.ranks = team.nranks();
  meta.sockets = team.topo().nsockets();
  meta.counters = measure_counters(team, fn);
  meta.isa = meta.counters.kernels.total()
                 ? copy::isa_name(meta.counters.kernels.dominant())
                 : "-";
  meta.time = timed_run(team, fn, policy, between_iters);
  meta.dab = meta.time.median > 0
                 ? static_cast<double>(meta.counters.dav.total()) /
                       meta.time.median
                 : 0;
  return meta;
}

// ---- Session -----------------------------------------------------------------

Session::Session(std::string name)
    : Session(std::move(name), RunPolicy::from_env()) {}

Session::Session(std::string name, RunPolicy policy)
    : name_(std::move(name)),
      policy_(policy),
      machine_(MachineInfo::detect()) {}

Json Session::to_json() const {
  Json j = Json::object();
  j.set("schema", kSchemaVersion);
  j.set("name", name_);
  j.set("machine", machine_.to_json());
  j.set("policy", policy_.to_json());
  Json arr = Json::array();
  for (const auto& s : series_) arr.push_back(s.to_json());
  j.set("series", std::move(arr));
  return j;
}

std::string Session::write() const {
  const char* dir = std::getenv("YHCCL_BENCH_JSON");
  if (!dir || !*dir) return {};
  std::string path = dir;
  if (path.back() != '/') path += '/';
  path += "BENCH_" + name_ + ".json";
  std::string err;
  if (!write_json_file(path, to_json(), &err)) {
    std::fprintf(stderr, "yhccl-bench: cannot write %s: %s\n", path.c_str(),
                 err.c_str());
    return {};
  }
  std::printf("yhccl-bench: wrote %s (%zu series)\n", path.c_str(),
              series_.size());
  return path;
}

// ---- file helpers ------------------------------------------------------------

Json load_json_file(const std::string& path, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (err) *err = "cannot open " + path;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::string perr;
  Json j = Json::parse(text, &perr);
  if (!perr.empty()) {
    if (err) *err = path + ": " + perr;
    return {};
  }
  if (err) err->clear();
  return j;
}

bool write_json_file(const std::string& path, const Json& j,
                     std::string* err) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (err) *err = "cannot open for writing";
    return false;
  }
  out << j.dump(2) << '\n';
  out.flush();
  if (!out) {
    if (err) *err = "write failed";
    return false;
  }
  return true;
}

}  // namespace yhccl::bench
