// Plan-caching auto-tuner for the collective switching layer
// (docs/tuning.md).
//
// The paper picks algorithms with one static size threshold (§5.1) and a
// fixed analytic NT-store switch point (§5.4), but the real crossovers
// move with p, topology and message size.  This engine replaces the lone
// threshold with cached *plans*: a PlanKey (collective, dtype/op, size
// bucket, rank/socket shape, machine signature) maps to an immutable Plan
// holding the algorithm choice, the slice/pipeline schedule and the
// NT-store decision.  Plans live in the team's shared PlanRegistry
// (runtime/plan_registry.hpp), so all ranks — thread- and fork-backed
// alike — deterministically agree, and a warm repeat call is a single
// lock-free lookup with no per-call allocation.
//
// Plans are seeded from three layered sources:
//   prior   — the paper's rules evaluated analytically: §5.1 switching for
//             the algorithm, the §5.4 work-set model for the NT advisory.
//   bench   — offline warming from yhccl-bench/1 reports (PR-4 campaign),
//             persisted in the exact-JSON "yhccl-plan/1" format and loaded
//             via $YHCCL_PLAN_FILE.
//   online  — epsilon-greedy exploration refined from measured call times
//             and profiler wait feedback ($YHCCL_TUNE=online).
//
// Cross-rank agreement is the load-bearing invariant (ranks running
// different algorithms for the same collective deadlock).  It holds by
// construction: the prior and the explore schedule are pure functions of
// (key, per-rank tune_seq) — identical everywhere — and the committed plan
// word is rewritten only by rank 0 after the collective's trailing
// barrier, then read by every rank after the next call's leading barrier,
// so the barrier's release/acquire edge orders every write against every
// read (both barriers exist only in online mode; prior mode's registry is
// read-only after warming and needs no synchronization at all).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "yhccl/bench/json.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/coll/profiler.hpp"
#include "yhccl/runtime/plan_registry.hpp"

namespace yhccl::coll::plan {

inline constexpr const char* kPlanSchema = "yhccl-plan/1";

/// NT-store stance of a plan: keep the per-slice adaptive policy (§4.2
/// Algorithm 1), or pin the whole collective temporal / streaming.
enum class NtChoice : std::uint8_t { adaptive, temporal, stream };
constexpr const char* nt_choice_name(NtChoice n) noexcept {
  switch (n) {
    case NtChoice::adaptive: return "adaptive";
    case NtChoice::temporal: return "temporal";
    case NtChoice::stream: return "stream";
  }
  return "?";
}

enum class PlanSource : std::uint8_t { prior, bench, online };
constexpr const char* plan_source_name(PlanSource s) noexcept {
  switch (s) {
    case PlanSource::prior: return "prior";
    case PlanSource::bench: return "bench";
    case PlanSource::online: return "online";
  }
  return "?";
}

/// Identity of one cached decision.  `bucket` is a power-of-two size class
/// over the switching-rule message size — bucket b covers (2^(b-1), 2^b]
/// bytes — with bit 6 marking the above-threshold side when the caller's
/// small_msg_threshold splits a bucket, so the §5.1 decision is constant
/// within every bucket for *any* threshold, not just power-of-two ones.
struct PlanKey {
  CollKind kind = CollKind::allreduce;
  Datatype dtype = Datatype::f64;
  ReduceOp op = ReduceOp::sum;
  std::uint8_t bucket = 0;
  int ranks = 1;
  int sockets = 1;

  std::uint64_t packed_fields() const noexcept;
  static PlanKey from_fields(std::uint64_t fields) noexcept;
  /// Probe hash: mixes the fields with the team's machine/topology
  /// signature and the tuning-relevant option fingerprint.  Never zero.
  std::uint64_t hash(std::uint64_t team_sig,
                     std::uint64_t opts_sig) const noexcept;
};

/// Tuning-relevant CollOpts fingerprint.  Calls with non-default slicing,
/// thresholds or copy policy tune in their own key space; persisted plans
/// are stored for (and only ever served to) default-option calls.
std::uint64_t opts_signature(const CollOpts& opts) noexcept;

/// Size bucket + representative size of the switching-rule message size
/// `msg_bytes` (total input for reduce_scatter, per-rank bytes otherwise).
std::uint8_t bucket_of(CollKind kind, std::size_t msg_bytes,
                       const CollOpts& opts) noexcept;
std::size_t bucket_rep_bytes(CollKind kind, std::uint8_t bucket,
                             const CollOpts& opts) noexcept;

/// Key of a concrete call (op is normalized to `sum` for the
/// non-reduction collectives, which take no operator).
PlanKey make_key(CollKind kind, std::size_t msg_bytes, Datatype d,
                 ReduceOp op, const rt::Topology& topo,
                 const CollOpts& opts) noexcept;

/// One immutable tuning decision.  Packs into a single 64-bit word (bit 63
/// = valid) so registry reads/writes are tear-free single atomics.
struct Plan {
  Algorithm algorithm = Algorithm::automatic;
  NtChoice nt = NtChoice::adaptive;
  std::uint8_t slice_log2 = 0;  ///< 0 = keep the caller's slice_max
  std::uint8_t chunk_log2 = 0;  ///< 0 = keep the caller's dpml_chunk
  bool nt_prior = false;        ///< §5.4 analytic NT prediction (advisory)
  PlanSource source = PlanSource::prior;
  std::uint8_t arm = 0;         ///< index into the key's arm table

  std::uint64_t pack() const noexcept;
  static Plan unpack(std::uint64_t word) noexcept;

  /// Fold the plan into the caller's options.  Only fields the caller left
  /// at their defaults are overridden: an explicit policy or slice request
  /// always wins over the tuner.
  void apply(CollOpts& o) const noexcept;
};

// ---- analytic prior ---------------------------------------------------------

/// Pure §5.1 switching rule over a topology (no RankCtx needed, so the
/// prior is computable parent-side and in offline tools).
Algorithm choose_reduction_algorithm(const rt::Topology& topo,
                                     std::size_t msg_bytes,
                                     const CollOpts& opts) noexcept;

/// §5.4 NT prediction: does the collective's work-data-set W (§4.3
/// formulas) exceed the cache capacity available to p cores?  For
/// allreduce this reproduces model::nt_switch_point_allreduce exactly.
bool prior_nt(CollKind kind, std::size_t msg_bytes, int p, int m,
              const copy::CacheConfig& cache, std::size_t slice_max) noexcept;

/// The full analytic prior for a key: §5.1 algorithm + §5.4 NT advisory,
/// caller's slice schedule untouched.  Deterministic, allocation-free.
Plan prior_plan(const PlanKey& key, const CollOpts& opts,
                const rt::Topology& topo,
                const copy::CacheConfig& cache) noexcept;

// ---- candidate arms ---------------------------------------------------------

/// Candidate schedules the online mode explores for a key: for reductions
/// the three algorithm arms (socket-aware only on valid topologies) plus
/// pinned-NT variants of the prior's choice; for broadcast/allgather
/// alternative pipeline slice sizes plus pinned-NT variants.  Arm 0 is
/// always the analytic prior.  Pure function of (key, opts, topo), so all
/// ranks enumerate identical tables.
int arm_count(const PlanKey& key, const CollOpts& opts,
              const rt::Topology& topo) noexcept;
Plan arm_plan(int arm, const PlanKey& key, const CollOpts& opts,
              const rt::Topology& topo,
              const copy::CacheConfig& cache) noexcept;

// ---- the per-call engine ----------------------------------------------------

/// Resolves a plan at collective entry and (online mode) feeds the
/// measured call time back at exit.  Usage in the switching layer:
///
///   TunedCall tc(ctx, CollKind::allreduce, total, d, op, opts);
///   ... dispatch on tc.plan().algorithm with tc.opts() ...
///   tc.finish(ctx);   // success path only: never from unwinding
///
/// finish() is deliberately not run by the destructor: it arrives at a
/// barrier, which must not happen while peers are aborting.
class TunedCall {
 public:
  TunedCall(rt::RankCtx& ctx, CollKind kind, std::size_t msg_bytes,
            Datatype d, ReduceOp op, const CollOpts& opts);

  /// Caller options with the plan folded in (slice/policy overrides).
  const CollOpts& opts() const noexcept { return opts_; }
  const Plan& plan() const noexcept { return plan_; }
  /// False when the tuner is bypassed (mode off, explicit algorithm,
  /// empty payload): the caller should run the legacy static path.
  bool active() const noexcept { return active_; }

  void finish(rt::RankCtx& ctx);

 private:
  CollOpts opts_;       ///< caller's options with the plan applied
  CollOpts base_opts_;  ///< caller's options verbatim (arm tables key on it)
  Plan plan_;
  PlanKey key_;
  rt::PlanSlot* slot_ = nullptr;
  double t0_ = 0;
  int narms_ = 1;
  bool active_ = false;
  bool online_ = false;
  bool finished_ = true;
  bool degraded_ = false;     ///< retry engine pinned the conservative lane
  bool quarantined_ = false;  ///< this key is pinned out of rotation
};

/// Packed plan word of the last TunedCall resolved on this thread (0 when
/// none yet).  Thread-local: observability for tests and tools.
std::uint64_t last_plan_word() noexcept;

// ---- parent-side queries ----------------------------------------------------

/// The plan a call with these arguments would serve right now (cached word
/// if present, else the analytic prior).  No side effects; callable from
/// the parent of either backend.
Plan query(const rt::Team& team, CollKind kind, std::size_t msg_bytes,
           Datatype d, ReduceOp op, const CollOpts& opts = {});

rt::PlanRegistryStats tune_stats(const rt::Team& team);

// ---- persistence (yhccl-plan/1) ---------------------------------------------

/// Serialize every plan cached for this team's signature and default
/// options into a "yhccl-plan/1" document.  Save -> load round-trips to
/// identical decisions (and identical JSON).
bench::Json save_plans(const rt::Team& team);
void save_plans_file(const rt::Team& team, const std::string& path);

/// Install plans whose signature/shape match `team`; returns the number
/// installed.  Parent-side only (team quiesced).  Marks the registry warm,
/// so a later $YHCCL_PLAN_FILE does not overwrite the installed plans.
int load_plans(rt::Team& team, const bench::Json& doc);
int load_plans_file(rt::Team& team, const std::string& path);

/// Run the lazy $YHCCL_PLAN_FILE warm-up now, from the parent (the same
/// handshake the first in-run resolve would perform).
void warm_now(rt::Team& team);

/// Throws yhccl::Error unless `doc` is a well-formed yhccl-plan/1 file.
void validate_plan_json(const bench::Json& doc);

/// Offline warming: pick the fastest measured algorithm arm per
/// (collective, shape, size bucket) from a merged yhccl-bench/1 report and
/// emit a plan document (source "bench").  Series whose arm name does not
/// map to a schedulable algorithm (baselines, "auto") are skipped.
bench::Json warm_from_bench(const bench::Json& bench_report);

// ---- profiler feedback ------------------------------------------------------

/// Fold a CollProfiler's wait/work split into the registry's per-kind
/// feedback channels (parent-side, between runs).  Online mode explores
/// sync-bound collective kinds (wait fraction > 1/2) twice as eagerly.
void note_profile(rt::Team& team, const CollProfiler& prof);

}  // namespace yhccl::coll::plan
