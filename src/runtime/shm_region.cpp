#include "yhccl/runtime/shm_region.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

#include "yhccl/common/error.hpp"

namespace yhccl::rt {

ShmRegion::ShmRegion(ShmRegion&& o) noexcept
    : addr_(std::exchange(o.addr_, nullptr)),
      bytes_(std::exchange(o.bytes_, 0)),
      name_(std::exchange(o.name_, {})),
      owner_(std::exchange(o.owner_, false)) {}

ShmRegion& ShmRegion::operator=(ShmRegion&& o) noexcept {
  if (this != &o) {
    this->~ShmRegion();
    new (this) ShmRegion(std::move(o));
  }
  return *this;
}

ShmRegion::~ShmRegion() {
  if (addr_ != nullptr) munmap(addr_, bytes_);
  if (owner_ && !name_.empty()) shm_unlink(name_.c_str());
}

ShmRegion ShmRegion::create_anonymous(std::size_t bytes) {
  void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) raise_errno("mmap(MAP_SHARED|MAP_ANONYMOUS)");
  ShmRegion r;
  r.addr_ = p;
  r.bytes_ = bytes;
  return r;
}

ShmRegion ShmRegion::create_named(const std::string& name, std::size_t bytes) {
  const int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) raise_errno("shm_open(create " + name + ")");
  if (ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    close(fd);
    shm_unlink(name.c_str());
    raise_errno("ftruncate(" + name + ")");
  }
  void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (p == MAP_FAILED) {
    shm_unlink(name.c_str());
    raise_errno("mmap(" + name + ")");
  }
  ShmRegion r;
  r.addr_ = p;
  r.bytes_ = bytes;
  r.name_ = name;
  r.owner_ = true;
  return r;
}

ShmRegion ShmRegion::open_named(const std::string& name, std::size_t bytes) {
  const int fd = shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) raise_errno("shm_open(open " + name + ")");
  void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (p == MAP_FAILED) raise_errno("mmap(" + name + ")");
  ShmRegion r;
  r.addr_ = p;
  r.bytes_ = bytes;
  r.name_ = name;
  r.owner_ = false;
  return r;
}

}  // namespace yhccl::rt
