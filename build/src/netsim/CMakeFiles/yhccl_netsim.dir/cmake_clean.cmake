file(REMOVE_RECURSE
  "CMakeFiles/yhccl_netsim.dir/netsim.cpp.o"
  "CMakeFiles/yhccl_netsim.dir/netsim.cpp.o.d"
  "libyhccl_netsim.a"
  "libyhccl_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yhccl_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
