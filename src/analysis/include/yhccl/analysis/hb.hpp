// Vector-clock happens-before checker for the shared-memory protocols.
//
// TSan cannot see across fork(): its shadow state is process-private, so a
// ProcessTeam (the paper's real deployment model) gets zero race coverage
// from it.  This checker closes that gap: every byte of its state lives in
// the team's shared mapping, so release/acquire edges established by one
// rank *process* are visible to the others exactly like the protocol data
// they guard.
//
// The model is classic FastTrack-style vector clocks:
//   * every rank r owns a vector clock C_r; C_r[r] is its current epoch,
//   * a release on sync object o joins C_r into o's clock L_o and bumps
//     C_r[r]; an acquire joins L_o into C_r; an acq_rel RMW does both
//     (matching the release-sequence semantics of fetch_add),
//   * tracked data regions (the collective scratch arena and the shared
//     heap) carry region-level shadow cells: each cell remembers the last
//     write epoch and, per rank, the last read epoch, plus the byte range
//     inside the cell each access touched.  A new access races iff it
//     byte-overlaps a recorded conflicting access whose epoch is NOT
//     ordered before the accessor's clock.
//
// Everything is a deliberate over-approximation in the sound direction
// where it matters for this codebase: sync-object clocks only accumulate
// (extra happens-before edges are never invented — a joined edge always
// corresponds to a real release/acquire pair on that object), while shadow
// cells keep only the most recent write and one read per rank (older
// accesses can be forgotten → missed races, never false alarms).
//
// Enabling: set YHCCL_CHECK=hb in the environment (read at Team
// construction) or force TeamConfig::hb_check.  Disabled, every hook is a
// single thread-local load + predicted-not-taken branch — nothing else.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "yhccl/mc/atomic.hpp"

namespace yhccl::analysis {

class HbChecker;

namespace detail {
/// Per-thread (and, post-fork, per-process) checker context installed by
/// Team::run for the duration of the SPMD function.  Null ⇒ every hook is
/// a no-op.
struct HbContext {
  HbChecker* chk = nullptr;
  int rank = 0;
};
extern thread_local HbContext tl_hb;
}  // namespace detail

/// Shared-memory happens-before checker.  Placement-constructed by Team
/// inside the team mapping via create(); never instantiated directly.
class HbChecker {
 public:
  /// Ranks the checker can model.  Teams larger than this run with the
  /// checker disabled (a one-line warning is printed).
  static constexpr int kMaxHbRanks = 32;
  /// Cap on shadow cells per tracked region; granularity widens above it.
  static constexpr std::size_t kMaxCellsPerRegion = std::size_t{1} << 18;
  static constexpr std::size_t kMaxRegions = 8;
  static constexpr std::size_t kSyncSlots = 4096;

  // ---- sizing (all callable before construction) --------------------------
  static std::size_t cell_shift_for(std::size_t region_bytes) noexcept;
  static std::size_t ncells_for(std::size_t region_bytes) noexcept;
  /// Throws yhccl::Error when the cell table would overflow std::size_t.
  static std::size_t required_bytes(std::size_t total_cells);

  /// Placement-construct a checker in `mem` (inside a MAP_SHARED mapping,
  /// before fork) with room for `total_cells` shadow cells.
  static HbChecker* create(void* mem, std::size_t bytes, int nranks,
                           std::size_t total_cells);

  /// Register a data region for shadow tracking.  Silently ignored (with a
  /// warning) once kMaxRegions or the cell arena is exhausted.
  void add_region(const void* base, std::size_t len, const char* name);

  // ---- event hooks (called via the free functions below) -------------------
  void on_release(int rank, const void* obj);
  void on_acquire(int rank, const void* obj);
  void on_acq_rel(int rank, const void* obj);
  void on_access(int rank, const void* p, std::size_t n, bool is_write,
                 const char* site);

  /// Total races recorded since construction (monotone, cross-process).
  std::uint64_t races() const noexcept {
    return race_count_.load(std::memory_order_acquire);
  }
  /// Human-readable report of the first race (empty if none).
  std::string first_report() const;

  /// Model a Team::recover(): the quiesced survivors' next accesses all
  /// happen-after everything that preceded the recovery.  Joining every
  /// rank's clock and handing the join back (plus one own-component tick)
  /// inserts exactly that edge, so stale shadow cells can never produce a
  /// false race against post-recovery accesses.  Only call on a quiesced
  /// team (no rank inside the SPMD function).
  void on_recover() noexcept;

  int nranks() const noexcept { return nranks_; }

 private:
  HbChecker(int nranks, std::size_t total_cells);

  struct VectorClock {
    std::uint32_t c[kMaxHbRanks];
  };

  /// (rank, clock) pair identifying one access.  clk == 0 ⇒ empty.
  struct Epoch {
    std::uint32_t rank;
    std::uint32_t clk;
  };

  /// Last-read record for one rank inside one cell.
  struct ReadRec {
    std::uint32_t clk;  // 0 ⇒ none
    std::uint16_t lo, hi;
  };

  /// Shadow state for one cell (2^shift bytes) of a tracked region.
  struct ShadowCell {
    Epoch write;             // last write
    std::uint16_t wlo, whi;  // byte range of that write within the cell
    const char* wsite;
    const char* rsite;  // site of the most recent read (any rank)
    ReadRec reads[kMaxHbRanks];
  };

  /// Open-addressed clock table entry for one sync object (keyed by its
  /// address — stable across fork because the mapping precedes it).
  struct SyncClock {
    std::atomic<std::uintptr_t> key{0};
    std::atomic<std::uint32_t> lock{0};
    VectorClock vc{};
  };

  struct Region {
    const std::byte* base = nullptr;
    std::size_t len = 0;
    std::uint32_t shift = 0;
    std::size_t first_cell = 0;  // index into the cell arena
    std::size_t ncells = 0;
    char name[24] = {};
  };

  static void vc_join(VectorClock& into, const VectorClock& from,
                      int n) noexcept;

  SyncClock* sync_slot(const void* obj);
  const Region* find_region(const void* p) const noexcept;
  void report_race(const Region& reg, std::size_t cell_index, int rank,
                   std::uint32_t clk, const char* site, bool cur_is_write,
                   Epoch prev, bool prev_is_write, const char* prev_site,
                   std::size_t lo, std::size_t hi);

  class SpinLockGuard;

  int nranks_ = 0;
  std::size_t total_cells_ = 0;
  std::size_t cells_used_ = 0;
  std::size_t nregions_ = 0;
  std::atomic<bool> degraded_{false};  ///< sync table full: stop reporting
  std::atomic<std::uint64_t> race_count_{0};
  std::atomic<std::uint32_t> report_lock_{0};
  char report_[1024] = {};

  alignas(64) VectorClock rank_vc_[kMaxHbRanks];
  Region regions_[kMaxRegions];
  SyncClock sync_[kSyncSlots];
  static constexpr std::size_t kStripes = 1024;
  std::atomic<std::uint32_t> cell_locks_[kStripes];
  // Flexible tail: total_cells_ ShadowCells follow the struct.
  ShadowCell* cells() noexcept { return reinterpret_cast<ShadowCell*>(this + 1); }
};

/// Install/clear the calling thread's checker context (Team::run does this
/// around the SPMD function; tests may use it directly).
void hb_set_context(HbChecker* chk, int rank) noexcept;

// ---- instrumentation entry points -----------------------------------------
// One thread-local load + branch when the checker is off; safe to call from
// noexcept code (race reports are recorded, never thrown from here).

inline void hb_release(const void* obj) noexcept {
  auto& t = detail::tl_hb;
  if (t.chk != nullptr) t.chk->on_release(t.rank, obj);
}

inline void hb_acquire(const void* obj) noexcept {
  auto& t = detail::tl_hb;
  if (t.chk != nullptr) t.chk->on_acquire(t.rank, obj);
}

/// For fetch_add-style RMWs with acq_rel ordering (joins both ways).
inline void hb_acq_rel(const void* obj) noexcept {
  auto& t = detail::tl_hb;
  if (t.chk != nullptr) t.chk->on_acq_rel(t.rank, obj);
}

inline void hb_read(const void* p, std::size_t n, const char* site) noexcept {
#ifdef YHCCL_MC
  // Under a model-checking session the same instrumentation feeds the
  // checker's exact (vector-clock-per-interleaving) race detector instead.
  if (mc::session_active()) {
    mc::detail::sess_data(p, n, /*write=*/false, site);
    return;
  }
#endif
  auto& t = detail::tl_hb;
  if (t.chk != nullptr) t.chk->on_access(t.rank, p, n, /*is_write=*/false, site);
}

inline void hb_write(const void* p, std::size_t n, const char* site) noexcept {
#ifdef YHCCL_MC
  if (mc::session_active()) {
    mc::detail::sess_data(p, n, /*write=*/true, site);
    return;
  }
#endif
  auto& t = detail::tl_hb;
  if (t.chk != nullptr) t.chk->on_access(t.rank, p, n, /*is_write=*/true, site);
}

/// Does the process environment ask for the checker (YHCCL_CHECK contains
/// "hb")?  Re-read on every call so tests can setenv() between teams.
bool hb_env_enabled() noexcept;

}  // namespace yhccl::analysis
