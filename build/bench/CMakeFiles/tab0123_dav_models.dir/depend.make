# Empty dependencies file for tab0123_dav_models.
# This may be replaced when dependencies are built.
