file(REMOVE_RECURSE
  "CMakeFiles/test_coll_process.dir/test_coll_process.cpp.o"
  "CMakeFiles/test_coll_process.dir/test_coll_process.cpp.o.d"
  "test_coll_process"
  "test_coll_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
