#include "yhccl/copy/reduce_kernels.hpp"

#include <immintrin.h>

#include <cstdint>
#include <type_traits>

#include "yhccl/common/error.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/kernels.hpp"

namespace yhccl::copy {

namespace {

template <typename T>
inline T apply(ReduceOp op, T a, T b) noexcept {
  switch (op) {
    case ReduceOp::sum: return static_cast<T>(a + b);
    case ReduceOp::prod: return static_cast<T>(a * b);
    case ReduceOp::max: return a > b ? a : b;
    case ReduceOp::min: return a < b ? a : b;
    case ReduceOp::band:
      if constexpr (std::is_integral_v<T>) return static_cast<T>(a & b);
      break;
    case ReduceOp::bor:
      if constexpr (std::is_integral_v<T>) return static_cast<T>(a | b);
      break;
  }
  return a;  // unreachable: validated by op_valid_for at the API boundary
}

// Simple per-op loops; gcc auto-vectorizes these with -mavx2.
template <typename T>
void rin(T* dst, const T* src, std::size_t cnt, ReduceOp op) noexcept {
  switch (op) {
    case ReduceOp::sum:
      for (std::size_t i = 0; i < cnt; ++i) dst[i] += src[i];
      break;
    case ReduceOp::prod:
      for (std::size_t i = 0; i < cnt; ++i) dst[i] *= src[i];
      break;
    case ReduceOp::max:
      for (std::size_t i = 0; i < cnt; ++i)
        dst[i] = dst[i] > src[i] ? dst[i] : src[i];
      break;
    case ReduceOp::min:
      for (std::size_t i = 0; i < cnt; ++i)
        dst[i] = dst[i] < src[i] ? dst[i] : src[i];
      break;
    default:
      for (std::size_t i = 0; i < cnt; ++i) dst[i] = apply(op, dst[i], src[i]);
      break;
  }
}

template <typename T>
void rout(T* out, const T* a, const T* b, std::size_t cnt,
          ReduceOp op) noexcept {
  switch (op) {
    case ReduceOp::sum:
      for (std::size_t i = 0; i < cnt; ++i) out[i] = a[i] + b[i];
      break;
    case ReduceOp::prod:
      for (std::size_t i = 0; i < cnt; ++i) out[i] = a[i] * b[i];
      break;
    case ReduceOp::max:
      for (std::size_t i = 0; i < cnt; ++i)
        out[i] = a[i] > b[i] ? a[i] : b[i];
      break;
    case ReduceOp::min:
      for (std::size_t i = 0; i < cnt; ++i)
        out[i] = a[i] < b[i] ? a[i] : b[i];
      break;
    default:
      for (std::size_t i = 0; i < cnt; ++i) out[i] = apply(op, a[i], b[i]);
      break;
  }
}

// ---- Non-temporal fused "out = a (+) b" kernels ---------------------------
//
// AVX2 traits per element type.  Only ReduceOp::sum gets a streaming-store
// fast path (the hot case for all-reduce benchmarks); the other ops fall
// back to temporal stores, which is what production libraries do as well.

struct TraitsF32 {
  using T = float;
  using V = __m256;
  static constexpr std::size_t W = 8;
  static V load(const T* p) noexcept { return _mm256_loadu_ps(p); }
  static V add(V a, V b) noexcept { return _mm256_add_ps(a, b); }
  static void stream(T* p, V v) noexcept { _mm256_stream_ps(p, v); }
};
struct TraitsF64 {
  using T = double;
  using V = __m256d;
  static constexpr std::size_t W = 4;
  static V load(const T* p) noexcept { return _mm256_loadu_pd(p); }
  static V add(V a, V b) noexcept { return _mm256_add_pd(a, b); }
  static void stream(T* p, V v) noexcept { _mm256_stream_pd(p, v); }
};
struct TraitsI32 {
  using T = std::int32_t;
  using V = __m256i;
  static constexpr std::size_t W = 8;
  static V load(const T* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static V add(V a, V b) noexcept { return _mm256_add_epi32(a, b); }
  static void stream(T* p, V v) noexcept {
    _mm256_stream_si256(reinterpret_cast<__m256i*>(p), v);
  }
};
struct TraitsI64 {
  using T = std::int64_t;
  using V = __m256i;
  static constexpr std::size_t W = 4;
  static V load(const T* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static V add(V a, V b) noexcept { return _mm256_add_epi64(a, b); }
  static void stream(T* p, V v) noexcept {
    _mm256_stream_si256(reinterpret_cast<__m256i*>(p), v);
  }
};

template <class Tr>
void sum_out_nt(typename Tr::T* out, const typename Tr::T* a,
                const typename Tr::T* b, std::size_t cnt) noexcept {
  std::size_t i = 0;
  // Peel until `out` is 32-byte aligned (streaming stores require it).
  while (i < cnt &&
         (reinterpret_cast<std::uintptr_t>(out + i) & 31u) != 0) {
    out[i] = a[i] + b[i];
    ++i;
  }
  for (; i + Tr::W <= cnt; i += Tr::W)
    Tr::stream(out + i, Tr::add(Tr::load(a + i), Tr::load(b + i)));
  for (; i < cnt; ++i) out[i] = a[i] + b[i];
  _mm_sfence();
}

template <typename T>
void rout_dispatch(void* out, const void* a, const void* b, std::size_t n,
                   ReduceOp op, bool nt_store) noexcept {
  const std::size_t cnt = n / sizeof(T);
  auto* o = static_cast<T*>(out);
  const auto* pa = static_cast<const T*>(a);
  const auto* pb = static_cast<const T*>(b);
  if (nt_store && op == ReduceOp::sum) {
    if constexpr (std::is_same_v<T, float>)
      return sum_out_nt<TraitsF32>(o, pa, pb, cnt);
    else if constexpr (std::is_same_v<T, double>)
      return sum_out_nt<TraitsF64>(o, pa, pb, cnt);
    else if constexpr (std::is_same_v<T, std::int32_t>)
      return sum_out_nt<TraitsI32>(o, pa, pb, cnt);
    else if constexpr (std::is_same_v<T, std::int64_t>)
      return sum_out_nt<TraitsI64>(o, pa, pb, cnt);
  }
  rout(o, pa, pb, cnt, op);
}

template <typename T>
void rin_dispatch(void* dst, const void* src, std::size_t n,
                  ReduceOp op) noexcept {
  rin(static_cast<T*>(dst), static_cast<const T*>(src), n / sizeof(T), op);
}

}  // namespace

void reduce_inplace(void* dst, const void* src, std::size_t n, Datatype d,
                    ReduceOp op) noexcept {
  switch (d) {
    case Datatype::u8: rin_dispatch<std::uint8_t>(dst, src, n, op); break;
    case Datatype::i32: rin_dispatch<std::int32_t>(dst, src, n, op); break;
    case Datatype::i64: rin_dispatch<std::int64_t>(dst, src, n, op); break;
    case Datatype::f32: rin_dispatch<float>(dst, src, n, op); break;
    case Datatype::f64: rin_dispatch<double>(dst, src, n, op); break;
  }
  dav_add(2 * n, n);  // two operand loads, one store
}

void reduce_out(void* out, const void* a, const void* b, std::size_t n,
                Datatype d, ReduceOp op, bool nt_store) noexcept {
  switch (d) {
    case Datatype::u8:
      rout(static_cast<std::uint8_t*>(out), static_cast<const std::uint8_t*>(a),
           static_cast<const std::uint8_t*>(b), n, op);
      break;
    case Datatype::i32: rout_dispatch<std::int32_t>(out, a, b, n, op, nt_store); break;
    case Datatype::i64: rout_dispatch<std::int64_t>(out, a, b, n, op, nt_store); break;
    case Datatype::f32: rout_dispatch<float>(out, a, b, n, op, nt_store); break;
    case Datatype::f64: rout_dispatch<double>(out, a, b, n, op, nt_store); break;
  }
  dav_add(2 * n, n);
}

void reduce_out_multi(void* out, const void* const* srcs, int m,
                      std::size_t n, Datatype d, ReduceOp op,
                      bool nt_store) {
  YHCCL_REQUIRE(m >= 1, "reduce_out_multi needs at least one source");
  if (m == 1) {
    // Degenerate "reduction" over one socket: just move the data.
    if (nt_store)
      nt_copy(out, srcs[0], n);
    else
      t_copy(out, srcs[0], n);
    return;
  }
  if (m == 2) {
    reduce_out(out, srcs[0], srcs[1], n, d, op, nt_store);
    return;
  }
  // Pairwise chain: matches the paper's DAV accounting of (m-1) two-operand
  // reductions (3*n bytes each).  Only the last one may stream.
  reduce_out(out, srcs[0], srcs[1], n, d, op, /*nt_store=*/false);
  for (int k = 2; k < m - 1; ++k) reduce_inplace(out, srcs[k], n, d, op);
  reduce_out(out, out, srcs[m - 1], n, d, op, nt_store);
}

}  // namespace yhccl::copy
