# Empty compiler generated dependencies file for test_reduce_kernels.
# This may be replaced when dependencies are built.
