file(REMOVE_RECURSE
  "CMakeFiles/ablation_switching.dir/ablation_switching.cpp.o"
  "CMakeFiles/ablation_switching.dir/ablation_switching.cpp.o.d"
  "ablation_switching"
  "ablation_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
