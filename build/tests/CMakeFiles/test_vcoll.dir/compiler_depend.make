# Empty compiler generated dependencies file for test_vcoll.
# This may be replaced when dependencies are built.
