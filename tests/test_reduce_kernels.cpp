// Unit tests for the reduction kernels: every (datatype, op) combination,
// the streaming-store fast path, the multi-operand chain, and DAV
// accounting (3 bytes of traffic per payload byte).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "yhccl/common/error.hpp"
#include "yhccl/copy/dav.hpp"
#include "yhccl/copy/reduce_kernels.hpp"

using yhccl::Datatype;
using yhccl::ReduceOp;
namespace yc = yhccl::copy;

namespace {

struct Combo {
  Datatype d;
  ReduceOp op;
};

class ReduceKernel : public ::testing::TestWithParam<Combo> {};

template <typename T>
void run_combo(ReduceOp op, Datatype d) {
  for (std::size_t cnt :
       {std::size_t{1}, std::size_t{7}, std::size_t{16}, std::size_t{255},
        std::size_t{4096}, std::size_t{100003}}) {
    std::vector<T> a(cnt), b(cnt), out(cnt, T{});
    for (std::size_t i = 0; i < cnt; ++i) {
      a[i] = static_cast<T>(1 + (i % 5));
      b[i] = static_cast<T>(2 + (i % 3));
    }
    auto expect = [&](std::size_t i) -> T {
      switch (op) {
        case ReduceOp::sum: return static_cast<T>(a[i] + b[i]);
        case ReduceOp::prod: return static_cast<T>(a[i] * b[i]);
        case ReduceOp::max: return a[i] > b[i] ? a[i] : b[i];
        case ReduceOp::min: return a[i] < b[i] ? a[i] : b[i];
        case ReduceOp::band:
          return static_cast<T>(static_cast<std::int64_t>(a[i]) &
                                static_cast<std::int64_t>(b[i]));
        case ReduceOp::bor:
          return static_cast<T>(static_cast<std::int64_t>(a[i]) |
                                static_cast<std::int64_t>(b[i]));
      }
      return T{};
    };
    // reduce_out, temporal stores
    yc::reduce_out(out.data(), a.data(), b.data(), cnt * sizeof(T), d, op,
                   /*nt_store=*/false);
    for (std::size_t i = 0; i < cnt; ++i)
      ASSERT_EQ(out[i], expect(i)) << "out i=" << i << " cnt=" << cnt;
    // reduce_out, streaming stores (falls back for unsupported combos)
    std::fill(out.begin(), out.end(), T{});
    yc::reduce_out(out.data(), a.data(), b.data(), cnt * sizeof(T), d, op,
                   /*nt_store=*/true);
    for (std::size_t i = 0; i < cnt; ++i)
      ASSERT_EQ(out[i], expect(i)) << "nt out i=" << i << " cnt=" << cnt;
    // reduce_inplace
    auto acc = a;
    yc::reduce_inplace(acc.data(), b.data(), cnt * sizeof(T), d, op);
    for (std::size_t i = 0; i < cnt; ++i)
      ASSERT_EQ(acc[i], expect(i)) << "inplace i=" << i << " cnt=" << cnt;
  }
}

TEST_P(ReduceKernel, AllShapesProduceElementwiseResults) {
  const auto [d, op] = GetParam();
  switch (d) {
    case Datatype::u8: run_combo<std::uint8_t>(op, d); break;
    case Datatype::i32: run_combo<std::int32_t>(op, d); break;
    case Datatype::i64: run_combo<std::int64_t>(op, d); break;
    case Datatype::f32: run_combo<float>(op, d); break;
    case Datatype::f64: run_combo<double>(op, d); break;
  }
}

std::vector<Combo> all_combos() {
  std::vector<Combo> cs;
  for (Datatype d : {Datatype::u8, Datatype::i32, Datatype::i64, Datatype::f32,
                     Datatype::f64})
    for (ReduceOp op : {ReduceOp::sum, ReduceOp::prod, ReduceOp::max,
                        ReduceOp::min, ReduceOp::band, ReduceOp::bor})
      if (op_valid_for(op, d)) cs.push_back({d, op});
  return cs;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, ReduceKernel,
                         ::testing::ValuesIn(all_combos()),
                         [](const auto& info) {
                           return std::string(dtype_name(info.param.d)) + "_" +
                                  std::string(op_name(info.param.op));
                         });

TEST(ReduceKernelDav, ThreeBytesPerPayloadByte) {
  const std::size_t n = 64 * 1024;
  std::vector<float> a(n / 4), b(n / 4), out(n / 4);
  yc::DavScope s1;
  yc::reduce_inplace(a.data(), b.data(), n, Datatype::f32, ReduceOp::sum);
  EXPECT_EQ(s1.delta().loads, 2 * n);
  EXPECT_EQ(s1.delta().stores, n);
  yc::DavScope s2;
  yc::reduce_out(out.data(), a.data(), b.data(), n, Datatype::f32,
                 ReduceOp::sum, true);
  EXPECT_EQ(s2.delta().total(), 3 * n);
}

TEST(ReduceOutMulti, MatchesSequentialChainForEveryFanIn) {
  const std::size_t cnt = 10007;
  constexpr int kMaxM = 7;
  std::vector<std::vector<double>> bufs(kMaxM, std::vector<double>(cnt));
  for (int m = 0; m < kMaxM; ++m)
    for (std::size_t i = 0; i < cnt; ++i)
      bufs[m][i] = static_cast<double>((m + 1) * 3 + i % 11);
  for (int m = 1; m <= kMaxM; ++m) {
    std::vector<const void*> srcs;
    for (int x = 0; x < m; ++x) srcs.push_back(bufs[x].data());
    std::vector<double> out(cnt, -1);
    yc::reduce_out_multi(out.data(), srcs.data(), m, cnt * sizeof(double),
                         Datatype::f64, ReduceOp::sum, m % 2 == 0);
    for (std::size_t i = 0; i < cnt; ++i) {
      double expect = 0;
      for (int x = 0; x < m; ++x) expect += bufs[x][i];
      ASSERT_DOUBLE_EQ(out[i], expect) << "m=" << m << " i=" << i;
    }
  }
}

TEST(ReduceOutMulti, InPlaceFirstOperandIsSupported) {
  // The socket stage writes its result over srcs[0]; this must be exact.
  const std::size_t cnt = 4099;
  std::vector<float> s0(cnt, 1.0f), s1(cnt, 2.0f), s2(cnt, 4.0f);
  const void* srcs[] = {s0.data(), s1.data(), s2.data()};
  yc::reduce_out_multi(s0.data(), srcs, 3, cnt * sizeof(float), Datatype::f32,
                       ReduceOp::sum, false);
  for (std::size_t i = 0; i < cnt; ++i) ASSERT_EQ(s0[i], 7.0f);
}

TEST(ReduceOutMulti, PairwiseChainDavMatchesPaperAccounting) {
  // (m-1) two-operand reductions of 3 bytes per payload byte each.
  const std::size_t n = 256 * 1024;
  std::vector<float> b0(n / 4), b1(n / 4), b2(n / 4), b3(n / 4), out(n / 4);
  const void* srcs[] = {b0.data(), b1.data(), b2.data(), b3.data()};
  yc::DavScope scope;
  yc::reduce_out_multi(out.data(), srcs, 4, n, Datatype::f32, ReduceOp::sum,
                       false);
  EXPECT_EQ(scope.delta().total(), 3 * n * 3);
}

TEST(ReduceOutMulti, SingleSourceDegeneratesToCopy) {
  std::vector<std::int32_t> src(1000, 42), out(1000, 0);
  const void* srcs[] = {src.data()};
  yc::reduce_out_multi(out.data(), srcs, 1, 4000, Datatype::i32,
                       ReduceOp::sum, true);
  EXPECT_EQ(out, src);
}

}  // namespace
