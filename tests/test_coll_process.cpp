// Integration tests: the YHCCL collectives on fork()-backed rank
// *processes* — the paper's real deployment model.  Buffers the parent
// validates live in the team's shared heap; rank-private buffers live in
// each child's own address space, so these tests also prove the
// collectives never dereference another rank's private memory (the bug
// class the shared-memory design must avoid).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/runtime/process_team.hpp"
#include "test_util.hpp"

using namespace yhccl;
using test::fill_buffer;
using test::check_reduced;

namespace {

rt::ProcessTeam& process_team(int p, int m) {
  static std::map<std::pair<int, int>, std::unique_ptr<rt::ProcessTeam>>
      cache;
  auto key = std::make_pair(p, m);
  auto it = cache.find(key);
  if (it == cache.end()) {
    rt::TeamConfig cfg;
    cfg.nranks = p;
    cfg.nsockets = m;
    cfg.scratch_bytes = 16u << 20;
    cfg.shared_heap_bytes = 32u << 20;
    it = cache.emplace(key, std::make_unique<rt::ProcessTeam>(cfg)).first;
  }
  return *it->second;
}

TEST(ProcessColl, AllreduceWithPrivateBuffers) {
  for (auto [p, m] : {std::pair{2, 1}, {4, 2}, {6, 3}}) {
    auto& team = process_team(p, m);
    const std::size_t count = 40000;
    auto* out = reinterpret_cast<double*>(
        team.shared_alloc(static_cast<std::size_t>(p) * count * 8));
    team.run([&](rt::RankCtx& ctx) {
      std::vector<double> send(count), recv(count);
      fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                  ReduceOp::sum);
      coll::allreduce(ctx, send.data(), recv.data(), count, Datatype::f64,
                      ReduceOp::sum);
      std::memcpy(out + ctx.rank() * count, recv.data(), count * 8);
      ctx.barrier();
    });
    for (int r = 0; r < p; ++r)
      EXPECT_TRUE(check_reduced(out + r * count, count, Datatype::f64, p,
                                ReduceOp::sum))
          << "p=" << p << " rank " << r;
  }
}

TEST(ProcessColl, EveryAlgorithmArmAcrossProcesses) {
  auto& team = process_team(4, 2);
  const std::size_t count = 30000;
  auto* out =
      reinterpret_cast<float*>(team.shared_alloc(4u * count * 4));
  for (auto alg : {coll::Algorithm::ma_flat, coll::Algorithm::ma_socket_aware,
                   coll::Algorithm::dpml_two_level}) {
    coll::CollOpts o;
    o.algorithm = alg;
    o.slice_max = 8u << 10;
    team.run([&](rt::RankCtx& ctx) {
      std::vector<float> send(count), recv(count);
      fill_buffer(send.data(), count, Datatype::f32, ctx.rank(),
                  ReduceOp::sum);
      coll::allreduce(ctx, send.data(), recv.data(), count, Datatype::f32,
                      ReduceOp::sum, o);
      std::memcpy(out + ctx.rank() * count, recv.data(), count * 4);
      ctx.barrier();
    });
    for (int r = 0; r < 4; ++r)
      EXPECT_TRUE(check_reduced(out + r * count, count, Datatype::f32, 4,
                                ReduceOp::sum))
          << algorithm_name(alg) << " rank " << r;
  }
}

// Regression: 3 ranks over 2 sockets leaves rank 2 alone on its socket.
// The DPML stage-1 barrier used to be entered only by multi-rank sockets,
// so the singleton rank ran one barrier ahead and the team deadlocked
// (small messages pick dpml_two_level, so plain allreduce() hit it).
TEST(ProcessColl, SingletonSocketSmallMessageAllreduce) {
  auto& team = process_team(3, 2);
  const std::size_t count = 1024;
  auto* out = reinterpret_cast<double*>(team.shared_alloc(3u * count * 8));
  team.run([&](rt::RankCtx& ctx) {
    std::vector<double> send(count), recv(count);
    fill_buffer(send.data(), count, Datatype::f64, ctx.rank(), ReduceOp::sum);
    coll::allreduce(ctx, send.data(), recv.data(), count, Datatype::f64,
                    ReduceOp::sum);
    std::memcpy(out + ctx.rank() * count, recv.data(), count * 8);
    ctx.barrier();
  });
  for (int r = 0; r < 3; ++r)
    EXPECT_TRUE(check_reduced(out + r * count, count, Datatype::f64, 3,
                              ReduceOp::sum))
        << "rank " << r;
}

TEST(ProcessColl, ReduceScatterBroadcastAllgather) {
  auto& team = process_team(4, 2);
  const std::size_t count = 20000;  // per-rank block
  auto* rs_out = reinterpret_cast<double*>(
      team.shared_alloc(4u * count * 8));
  auto* bc_out = reinterpret_cast<double*>(
      team.shared_alloc(4u * count * 8));
  auto* ag_out = reinterpret_cast<double*>(
      team.shared_alloc(4u * 4u * count * 8));
  team.run([&](rt::RankCtx& ctx) {
    const int r = ctx.rank();
    std::vector<double> send(count * 4), recv(count);
    fill_buffer(send.data(), count * 4, Datatype::f64, r, ReduceOp::sum);
    coll::reduce_scatter(ctx, send.data(), recv.data(), count, Datatype::f64,
                         ReduceOp::sum);
    std::memcpy(rs_out + r * count, recv.data(), count * 8);

    std::vector<double> bbuf(count, r == 2 ? 7.25 : -1.0);
    coll::broadcast(ctx, bbuf.data(), count, Datatype::f64, /*root=*/2);
    std::memcpy(bc_out + r * count, bbuf.data(), count * 8);

    std::vector<double> mine(count, 100.0 + r), gathered(count * 4);
    coll::allgather(ctx, mine.data(), gathered.data(), count, Datatype::f64);
    std::memcpy(ag_out + r * 4 * count, gathered.data(), 4 * count * 8);
    ctx.barrier();
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(check_reduced(rs_out + r * count, count, Datatype::f64, 4,
                              ReduceOp::sum, count * r))
        << "rs rank " << r;
    for (std::size_t i = 0; i < count; i += 999)
      ASSERT_EQ(bc_out[r * count + i], 7.25) << "bcast rank " << r;
    for (int a = 0; a < 4; ++a)
      for (std::size_t i = 0; i < count; i += 1111)
        ASSERT_EQ(ag_out[(r * 4 + a) * count + i], 100.0 + a)
            << "ag rank " << r << " block " << a;
  }
}

TEST(ProcessColl, TwoCopyRingWorksAcrossProcesses) {
  auto& team = process_team(3, 1);
  const std::size_t count = 25000;
  auto* out = reinterpret_cast<double*>(team.shared_alloc(3u * count * 8));
  team.run([&](rt::RankCtx& ctx) {
    std::vector<double> send(count), recv(count);
    fill_buffer(send.data(), count, Datatype::f64, ctx.rank(),
                ReduceOp::sum);
    base::ring_allreduce(ctx, send.data(), recv.data(), count, Datatype::f64,
                         ReduceOp::sum, base::Transport::two_copy);
    std::memcpy(out + ctx.rank() * count, recv.data(), count * 8);
    ctx.barrier();
  });
  for (int r = 0; r < 3; ++r)
    EXPECT_TRUE(check_reduced(out + r * count, count, Datatype::f64, 3,
                              ReduceOp::sum));
}

TEST(ProcessColl, CmaTransportIfKernelAllows) {
  if (!rt::cma_available())
    GTEST_SKIP() << "process_vm_readv not permitted in this environment";
  auto& team = process_team(2, 1);
  const std::size_t n = 1 << 16;
  auto* out = reinterpret_cast<std::uint8_t*>(team.shared_alloc(n));
  team.run([&](rt::RankCtx& ctx) {
    std::vector<std::uint8_t> priv(n, static_cast<std::uint8_t>(0x77));
    if (ctx.rank() == 0) {
      ctx.send_zc(1, priv.data(), n);
    } else {
      std::vector<std::uint8_t> got(n, 0);
      ctx.recv_zc(0, got.data(), n, rt::RemoteMode::cma_pagewise);
      std::memcpy(out, got.data(), n);
    }
    ctx.barrier();
  });
  EXPECT_EQ(out[n - 1], 0x77);
}

}  // namespace
