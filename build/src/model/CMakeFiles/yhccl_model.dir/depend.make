# Empty dependencies file for yhccl_model.
# This may be replaced when dependencies are built.
