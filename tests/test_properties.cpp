// Property-based tests: algebraic invariants that must hold for every
// collective implementation, checked over randomized sizes/seeds with
// parameterized sweeps.
//
//  * composition: allreduce == reduce-scatter ∘ allgather == reduce ∘ bcast
//  * input-permutation invariance for commutative ops
//  * result independence from tuning knobs (slice size, copy policy,
//    algorithm arm, socket count)
//  * all arms agree with each other bit-for-bit on integer data
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "test_util.hpp"

using namespace yhccl;
using namespace yhccl::coll;
using test::cached_team;

namespace {

class PropertySweep : public ::testing::TestWithParam<unsigned> {};

/// Randomized case geometry from the seed.
struct Geometry {
  int p, m;
  std::size_t count;
  explicit Geometry(unsigned seed) {
    std::mt19937 rng(seed);
    const std::pair<int, int> shapes[] = {{2, 1}, {3, 1}, {4, 2},
                                          {6, 2}, {8, 2}, {8, 4}};
    auto [pp, mm] = shapes[rng() % std::size(shapes)];
    p = pp;
    m = mm;
    count = 1 + rng() % 60000;
  }
};

std::vector<std::vector<std::int64_t>> random_inputs(int p,
                                                     std::size_t count,
                                                     unsigned seed) {
  std::mt19937 rng(seed * 7919 + 13);
  std::vector<std::vector<std::int64_t>> v(p);
  for (auto& b : v) {
    b.resize(count);
    for (auto& x : b) x = static_cast<std::int64_t>(rng() % 1000);
  }
  return v;
}

TEST_P(PropertySweep, AllreduceEqualsReduceScatterPlusAllgather) {
  const Geometry g(GetParam());
  // reduce_scatter needs count divisible into blocks: use per-rank blocks.
  const std::size_t block = 1 + g.count / static_cast<std::size_t>(g.p);
  const std::size_t total = block * static_cast<std::size_t>(g.p);
  auto& team = cached_team(g.p, g.m);
  auto inputs = random_inputs(g.p, total, GetParam());

  std::vector<std::vector<std::int64_t>> direct(g.p), composed(g.p);
  for (int r = 0; r < g.p; ++r) {
    direct[r].assign(total, -1);
    composed[r].assign(total, -2);
  }
  team.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    allreduce(ctx, inputs[r].data(), direct[r].data(), total, Datatype::i64,
              ReduceOp::sum);
    std::vector<std::int64_t> block_out(block);
    reduce_scatter(ctx, inputs[r].data(), block_out.data(), block,
                   Datatype::i64, ReduceOp::sum);
    allgather(ctx, block_out.data(), composed[r].data(), block,
              Datatype::i64);
  });
  for (int r = 0; r < g.p; ++r)
    EXPECT_EQ(direct[r], composed[r]) << "rank " << r;
}

TEST_P(PropertySweep, AllreduceEqualsReducePlusBroadcast) {
  const Geometry g(GetParam());
  auto& team = cached_team(g.p, g.m);
  auto inputs = random_inputs(g.p, g.count, GetParam());
  std::vector<std::vector<std::int64_t>> direct(g.p), composed(g.p);
  for (int r = 0; r < g.p; ++r) {
    direct[r].assign(g.count, -1);
    composed[r].assign(g.count, -2);
  }
  const int root = static_cast<int>(GetParam()) % g.p;
  team.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    allreduce(ctx, inputs[r].data(), direct[r].data(), g.count,
              Datatype::i64, ReduceOp::sum);
    reduce(ctx, inputs[r].data(), composed[r].data(), g.count, Datatype::i64,
           ReduceOp::sum, root);
    if (r != root) composed[r] = std::vector<std::int64_t>(g.count, 0);
    // Broadcast the root's reduction to everyone.
    if (r != root) composed[r].assign(g.count, 0);
    broadcast(ctx, r == root ? composed[r].data() : composed[r].data(),
              g.count, Datatype::i64, root);
  });
  for (int r = 0; r < g.p; ++r)
    EXPECT_EQ(direct[r], composed[r]) << "rank " << r;
}

TEST_P(PropertySweep, PermutingRankInputsLeavesSumUnchanged) {
  const Geometry g(GetParam());
  if (g.p < 2) GTEST_SKIP();
  auto& team = cached_team(g.p, g.m);
  auto inputs = random_inputs(g.p, g.count, GetParam());
  std::vector<std::int64_t> first, second;
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<std::vector<std::int64_t>> recv(
        g.p, std::vector<std::int64_t>(g.count));
    team.run([&](RankCtx& ctx) {
      // Second pass: rank r uses rank (r+1)'s input — a permutation.
      const auto& in =
          inputs[(ctx.rank() + pass) % static_cast<std::size_t>(g.p)];
      allreduce(ctx, in.data(), recv[ctx.rank()].data(), g.count,
                Datatype::i64, ReduceOp::sum);
    });
    (pass == 0 ? first : second) = recv[0];
  }
  EXPECT_EQ(first, second);
}

TEST_P(PropertySweep, ResultIndependentOfSliceSizeAndPolicy) {
  const Geometry g(GetParam());
  auto& team = cached_team(g.p, g.m);
  auto inputs = random_inputs(g.p, g.count, GetParam());
  std::vector<std::int64_t> reference;
  const std::size_t slices[] = {64, 4096, 64u << 10, 1u << 20};
  const copy::CopyPolicy policies[] = {
      copy::CopyPolicy::adaptive, copy::CopyPolicy::always_nt,
      copy::CopyPolicy::always_temporal, copy::CopyPolicy::memmove_model};
  for (std::size_t si = 0; si < std::size(slices); ++si) {
    CollOpts o;
    o.slice_max = slices[si];
    o.policy = policies[si % std::size(policies)];
    std::vector<std::vector<std::int64_t>> recv(
        g.p, std::vector<std::int64_t>(g.count));
    team.run([&](RankCtx& ctx) {
      allreduce(ctx, inputs[ctx.rank()].data(), recv[ctx.rank()].data(),
                g.count, Datatype::i64, ReduceOp::sum, o);
    });
    if (si == 0)
      reference = recv[0];
    else
      EXPECT_EQ(recv[0], reference) << "slice_max=" << slices[si];
    for (int r = 1; r < g.p; ++r) EXPECT_EQ(recv[r], recv[0]);
  }
}

TEST_P(PropertySweep, AllArmsAgreeBitForBit) {
  const Geometry g(GetParam());
  auto& team = cached_team(g.p, g.m);
  auto inputs = random_inputs(g.p, g.count, GetParam());
  std::vector<std::int64_t> reference;
  using Arm = std::function<void(RankCtx&, const std::int64_t*,
                                 std::int64_t*, std::size_t)>;
  std::vector<std::pair<const char*, Arm>> arms = {
      {"ma", [](RankCtx& c, const std::int64_t* i, std::int64_t* o,
                std::size_t n) {
         ma_allreduce(c, i, o, n, Datatype::i64, ReduceOp::sum);
       }},
      {"socket",
       [](RankCtx& c, const std::int64_t* i, std::int64_t* o, std::size_t n) {
         socket_ma_allreduce(c, i, o, n, Datatype::i64, ReduceOp::sum);
       }},
      {"dpml2l",
       [](RankCtx& c, const std::int64_t* i, std::int64_t* o, std::size_t n) {
         dpml_two_level_allreduce(c, i, o, n, Datatype::i64, ReduceOp::sum);
       }},
      {"ring",
       [](RankCtx& c, const std::int64_t* i, std::int64_t* o, std::size_t n) {
         base::ring_allreduce(c, i, o, n, Datatype::i64, ReduceOp::sum);
       }},
      {"rg",
       [](RankCtx& c, const std::int64_t* i, std::int64_t* o, std::size_t n) {
         base::rg_allreduce(c, i, o, n, Datatype::i64, ReduceOp::sum);
       }},
      {"xpmem",
       [](RankCtx& c, const std::int64_t* i, std::int64_t* o, std::size_t n) {
         base::xpmem_allreduce(c, i, o, n, Datatype::i64, ReduceOp::sum);
       }},
  };
  for (const auto& [name, arm] : arms) {
    std::vector<std::vector<std::int64_t>> recv(
        g.p, std::vector<std::int64_t>(g.count));
    team.run([&](RankCtx& ctx) {
      arm(ctx, inputs[ctx.rank()].data(), recv[ctx.rank()].data(), g.count);
    });
    if (reference.empty())
      reference = recv[0];
    else
      EXPECT_EQ(recv[0], reference) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range(1u, 13u));

}  // namespace
