// Policy-driven resilient execution (docs/robustness.md §resume).
//
// PR 3 made faults *detectable* (classified, epoch-stamped, coherent across
// survivors) and *recoverable* (Team::recover()); this layer closes the loop
// by making Team::run() retry on the caller's behalf.  A ResiliencePolicy
// attached to the team (TeamConfig::resilience, or $YHCCL_RESILIENCE) turns
// every run() into
//
//   attempt -> classified fault -> verify_integrity + recover ->
//   bounded backoff with deterministic jitter -> re-issue
//
// degrading to conservative collective plans once retries on the preferred
// plan keep failing, and quarantining a cached plan that faulted repeatedly
// (PlanRegistry::quarantine) so the tuner stops re-selecting it for a few
// team epochs.  The default policy is 0 retries: run() is then byte-for-byte
// the pre-resilience fast path (tests assert zero extra allocations and
// barriers on it).
#pragma once

#include <cstdint>
#include <string>

namespace yhccl::rt {

/// How Team::run() reacts to a classified fault.  The default-constructed
/// policy defers to $YHCCL_RESILIENCE (unset: 0 retries, legacy behavior).
struct ResiliencePolicy {
  /// Automatic re-issues after a classified fault.  0 = rethrow immediately
  /// (legacy); -1 = resolve from $YHCCL_RESILIENCE at team construction.
  int max_retries = -1;
  /// Base backoff before the first re-issue; doubles per attempt.
  double backoff_ms = 2.0;
  /// Upper bound on any single backoff sleep.
  double backoff_cap_ms = 200.0;
  /// Seed for the jitter PRNG — same seed, same backoff schedule, so fault
  /// tests and the chaos campaign replay deterministically.
  std::uint64_t seed = 1;
  /// Attempt index (1-based) from which re-issues run in the degraded
  /// algorithm lane (conservative plans, no exploration).
  int degrade_after = 2;
  /// Team epochs a repeatedly-faulting cached plan stays quarantined for.
  std::uint64_t quarantine_epochs = 8;

  bool enabled() const noexcept { return max_retries > 0; }

  /// Parse `retries=N[:backoff=MS][:cap=MS][:seed=S][:degrade=K]
  /// [:quarantine=E]`; throws yhccl::Error on grammar errors.
  static ResiliencePolicy parse(const std::string& spec);
  /// Parse $YHCCL_RESILIENCE (0-retry policy when unset).
  static ResiliencePolicy from_env();
  /// this, with max_retries < 0 replaced by the environment's answer.
  ResiliencePolicy resolved() const;
};

/// Counters the retry loop maintains (parent-side, per team).  Folded into
/// CollProfiler reports and the yhccl-chaos/1 campaign schema.
struct ResilienceStats {
  std::uint64_t faults = 0;       ///< classified faults caught by run()
  std::uint64_t retries = 0;      ///< re-issues after recover()
  std::uint64_t recoveries = 0;   ///< successful Team::recover() sweeps
  std::uint64_t degrades = 0;     ///< attempts served from the degraded lane
  std::uint64_t quarantines = 0;  ///< plans pinned out of rotation
  std::uint64_t corruptions = 0;  ///< integrity findings detected/repaired
  std::uint64_t giveups = 0;      ///< faults rethrown with retries exhausted
  std::uint64_t heals = 0;        ///< runs that succeeded after >= 1 retry

  ResilienceStats& operator+=(const ResilienceStats& o) noexcept {
    faults += o.faults;
    retries += o.retries;
    recoveries += o.recoveries;
    degrades += o.degrades;
    quarantines += o.quarantines;
    corruptions += o.corruptions;
    giveups += o.giveups;
    heals += o.heals;
    return *this;
  }
};

/// Backoff before re-issue `attempt` (0-based): min(cap, base * 2^attempt)
/// scaled into [50%, 100%] by splitmix64(seed ^ attempt) jitter.  Pure —
/// tests pin exact schedules without sleeping them.
double resilience_backoff_ms(const ResiliencePolicy& p, int attempt) noexcept;

/// nanosleep for resilience_backoff_ms(p, attempt).
void resilience_backoff_sleep(const ResiliencePolicy& p, int attempt) noexcept;

}  // namespace yhccl::rt
