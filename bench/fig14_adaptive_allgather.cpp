// Fig. 14 reproduction: pipelined all-gather under the four copy
// policies.  `MsgSz` is the per-rank contribution (the paper sweeps
// 8 KB - 8 MB; aggregated data is p x larger).
#include "bench_util.hpp"
#include "yhccl/coll/coll.hpp"

using namespace yhccl;
using namespace yhccl::bench;

int main() {
  const int p = bench_ranks(), m = bench_sockets();
  auto& team = bench_team(p, m);
  const auto sizes = default_sizes(8u << 10, 4u << 20);
  const std::size_t hi = sizes.back();

  auto arm = [](copy::CopyPolicy pol) {
    return [pol](rt::RankCtx& c, const void* s, void* r, std::size_t b) {
      coll::CollOpts o;
      o.policy = pol;
      o.slice_max = 1u << 20;
      coll::pipelined_allgather(c, s, r, std::max<std::size_t>(b / 8, 1),
                                Datatype::f64, o);
    };
  };

  const std::vector<std::pair<std::string, CollArm>> arms = {
      {"YHCCL", arm(copy::CopyPolicy::adaptive)},
      {"t-copy", arm(copy::CopyPolicy::always_temporal)},
      {"nt-copy", arm(copy::CopyPolicy::always_nt)},
      {"memmove", arm(copy::CopyPolicy::memmove_model)},
  };

  std::printf("Fig. 14 — adaptive pipelined all-gather (p=%d, m=%d)\n", p,
              m);
  Session session("fig14_adaptive_allgather");
  sweep(team, "all-gather copy-policy sweep (relative to adaptive)", arms,
        sizes, hi, hi * static_cast<std::size_t>(p), &session, "allgather")
      .print();
  session.write();
  return 0;
}
