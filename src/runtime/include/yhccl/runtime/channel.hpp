// Point-to-point protocol engines: the eager FIFO and the rendezvous
// (single-copy) exchange, factored out of RankCtx as free functions over a
// bare FifoChannel.
//
// Two reasons for the split:
//  * RankCtx::send/recv/sendrecv deal in messages (chunk loops, tracing,
//    fault points); the functions here deal in the one-chunk protocol steps
//    those loops are made of.
//  * The model checker (yhccl/mc/checker.hpp) drives these engines directly
//    with 2-4 model ranks and a standalone FifoChannel — no Team, no shared
//    mapping — so the protocol under verification is byte-for-byte the one
//    the collectives run.
#pragma once

#include <cstddef>
#include <cstdint>

#include "yhccl/common/types.hpp"
#include "yhccl/mc/atomic.hpp"
#include "yhccl/runtime/remote_access.hpp"

namespace yhccl::rt {

/// Eager FIFO + rendezvous descriptor for one directed rank pair.
struct FifoChannel {
  static constexpr std::uint64_t kSlots = 2;
  struct SlotMeta {
    std::uint32_t bytes;
    std::int32_t tag;
  };
  alignas(kCacheline) mc::atomic<std::uint64_t> head{0};  // consumer
  alignas(kCacheline) mc::atomic<std::uint64_t> tail{0};  // producer
  SlotMeta meta[kSlots]{};
  // Rendezvous (single-copy) protocol state.
  alignas(kCacheline) mc::atomic<std::uint64_t> rndv_posted{0};
  alignas(kCacheline) mc::atomic<std::uint64_t> rndv_done{0};
  const void* rndv_ptr = nullptr;
  std::size_t rndv_bytes = 0;
  int rndv_pid = 0;
};

// ---- eager FIFO (two-copy) --------------------------------------------------
// `data` is the channel's slot arena (kSlots x chunk bytes); `len <= chunk`.
// The slot payload and meta are plain data guarded by the head/tail counters:
// the tail release publishes a filled slot, the head release returns it.

/// Blocking push of one chunk (spins while the ring is full).
void fifo_push_chunk(FifoChannel& ch, std::byte* data, std::size_t chunk,
                     const void* src, std::size_t len, int tag);

/// Non-blocking push; false when the ring is full (sendrecv progress engine).
bool fifo_try_push_chunk(FifoChannel& ch, std::byte* data, std::size_t chunk,
                         const void* src, std::size_t len, int tag);

/// Blocking pop of one chunk into `dst` (capacity `cap`); returns its length.
std::size_t fifo_pop_chunk(FifoChannel& ch, const std::byte* data,
                           std::size_t chunk, void* dst, std::size_t cap,
                           int tag);

/// Non-blocking pop; false when the ring is empty.
bool fifo_try_pop_chunk(FifoChannel& ch, const std::byte* data,
                        std::size_t chunk, void* dst, std::size_t cap, int tag,
                        std::size_t* len_out);

// ---- rendezvous (single-copy) -----------------------------------------------
// The sender posts its buffer descriptor and waits for the receiver to drain
// it; the receiver pulls straight from the sender's memory.  Descriptor
// fields are plain data published by the rndv_posted release and retired by
// the rndv_done release.

/// Post my buffer on the channel; returns the ticket to wait on.
std::uint64_t rndv_post(FifoChannel& ch, const void* p, std::size_t n,
                        int pid);

/// Wait until the receiver retired ticket `s` (my buffer is reusable).
void rndv_wait_drained(FifoChannel& ch, std::uint64_t s);

/// Wait for the next posted descriptor, pull `n` bytes into `p`, retire it.
void rndv_pull(FifoChannel& ch, void* p, std::size_t n, RemoteMode mode,
               PageLockTable* locks = nullptr);

}  // namespace yhccl::rt
