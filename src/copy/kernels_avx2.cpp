// AVX2 kernel tier.  This TU (and only this TU) is compiled with -mavx2,
// so the generic loops in kernel_impl.hpp auto-vectorize to 256-bit code
// and the stream policy uses vmovntdq.  Never called unless cpuid reports
// AVX2 (see isa.cpp).
#include <immintrin.h>

#include "kernel_impl.hpp"

namespace yhccl::copy {

namespace {

struct Avx2Stream {
  static constexpr bool kHasStream = true;
  static void stream_line(void* dst, const void* src) noexcept {
    const __m256i lo =
        _mm256_loadu_si256(static_cast<const __m256i*>(src));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(static_cast<const char*>(src) + 32));
    _mm256_stream_si256(static_cast<__m256i*>(dst), lo);
    _mm256_stream_si256(
        reinterpret_cast<__m256i*>(static_cast<char*>(dst) + 32), hi);
  }
  static void fence() noexcept { _mm_sfence(); }
};

}  // namespace

const KernelTable& avx2_table() noexcept {
  static const KernelTable t = kimpl::make_table<Avx2Stream>(IsaTier::avx2);
  return t;
}

}  // namespace yhccl::copy
