// STREAM-style sliced-copy workloads (paper §2.2 Fig. 3 and §4.1 Table 4):
// a large array is copied slice by slice, which is exactly the access
// pattern of pipelined collectives.  Comparing memmove-style, temporal and
// non-temporal kernels at different slice sizes exposes the RFO overhead
// the adaptive policy avoids.
#pragma once

#include <cstddef>

namespace yhccl::apps::stream {

enum class CopyKind {
  memmove_libc,   ///< the actual C library memmove
  memmove_model,  ///< our size-threshold model of it
  temporal,       ///< t-copy: prefetch + regular stores
  non_temporal,   ///< nt-copy: streaming stores
  erms,           ///< rep movsb fast-string copy
};

const char* copy_kind_name(CopyKind k);

struct SliceCopyResult {
  double seconds = 0;
  /// STREAM convention: 2 bytes of traffic per payload byte.
  double bandwidth_mbps = 0;
};

/// Copy `total` bytes from src to dst in `slice`-sized pieces.
SliceCopyResult sliced_copy(void* dst, const void* src, std::size_t total,
                            std::size_t slice, CopyKind kind);

/// Allocate working buffers, run `repeats` sliced copies, report the best
/// bandwidth (classic STREAM methodology).
SliceCopyResult run_sliced_copy(std::size_t total, std::size_t slice,
                                CopyKind kind, int repeats = 3);

}  // namespace yhccl::apps::stream
