// Team-wide fault detection, coherent abort propagation, and deterministic
// fault injection (docs/robustness.md).
//
// Three cooperating pieces, all living in the team's MAP_SHARED mapping so
// they work identically for thread- and fork()-backed ranks:
//
//  * Liveness slots — one cacheline per rank: a heartbeat counter bumped on
//    every backoff step / fault point, the rank's current collective
//    sequence number, its pid, and two tombstones (`left`: the rank exited
//    the SPMD function; `dead`: its process died — written by the parent's
//    reaped-child bookkeeping or by the injector).  Watchdog expiries are
//    classified against these slots into PeerDead / PeerDiverged / Timeout
//    instead of one generic "sync timeout" error.
//
//  * The abort word — a single epoch-stamped word the *first* detecting
//    rank CASes from 0.  Every spin loop polls it, so all survivors leave
//    the collective within milliseconds of first detection (instead of each
//    serially burning its own full watchdog) and all throw a yhccl::Error
//    naming the same faulting rank and team epoch.  Stale aborts from a
//    previous team epoch are ignored; Team::recover() clears the word and
//    bumps the epoch.
//
//  * Deterministic injection — YHCCL_FAULT=action@site[:rank=R][:iter=N]
//    [:ms=M] (e.g. `die@barrier:rank=2:iter=3`, `stall@flag:rank=1:ms=50`)
//    makes the R-th rank die or stall at the N-th time it passes the named
//    fault point within one Team::run.  Sites are threaded through the sync
//    primitives (`barrier`, `flag`, `fifo`, `rndv`, `pagelock`) and the
//    collective slice loops (`slice`, `pipeline`), replacing the ad-hoc
//    early-return kill logic the failure tests used to hand-roll.
#pragma once

#include <cstdint>
#include <string>

#include "yhccl/common/error.hpp"
#include "yhccl/common/types.hpp"
#include "yhccl/mc/atomic.hpp"

namespace yhccl::rt {

/// Mirrors rt::kMaxRanks (team.hpp static_asserts they stay compatible;
/// kept separate to avoid a header cycle, like kMaxBarrierRanks).
inline constexpr int kMaxFaultRanks = 256;

/// Exit code a fork()-backed rank dies with under `die@...` injection;
/// the parent's reap bookkeeping treats it like a signal death.
inline constexpr int kDieExitCode = 86;

/// What one aborted collective reports — identical on every survivor.
struct FaultInfo {
  FaultKind kind = FaultKind::none;
  int rank = -1;            ///< faulting rank (-1 unknown)
  std::uint64_t epoch = 0;  ///< team epoch the fault was raised in
};

/// One-line human description ("rank 2 died (team epoch 1)").
std::string describe_fault(const FaultInfo& f);

/// Per-rank liveness slot (shared mapping).
struct alignas(kCacheline) HeartbeatSlot {
  mc::atomic<std::uint64_t> beat{0};  ///< bumps while the rank makes progress
  mc::atomic<std::uint64_t> seq{0};   ///< last collective sequence entered
  mc::atomic<std::uint64_t> epoch{0}; ///< team epoch the rank runs under
  mc::atomic<int> pid{0};             ///< rank pid (== parent for threads)
  mc::atomic<std::uint8_t> left{0};   ///< rank exited the SPMD function
  mc::atomic<std::uint8_t> dead{0};   ///< rank process died (reap/probe)
};

/// Fault-detection state embedded in TeamShared.
struct FaultState {
  /// Packed abort word: (epoch << 32) | ((rank + 1) << 8) | kind.
  /// 0 ⇔ no abort raised.  First CAS from 0 wins; later detectors adopt
  /// the winner's verdict so every survivor reports the same fault.
  alignas(kCacheline) mc::atomic<std::uint64_t> abort_word{0};
  /// Bumped by Team::recover(); stale ranks (and stale abort words) from
  /// earlier epochs are fenced out by comparing against it.
  alignas(kCacheline) mc::atomic<std::uint64_t> team_epoch{1};
  /// Number of times the injection plan fired, across runs and retries.
  /// `:once=1` plans consult it so a self-healing retry is not re-killed.
  alignas(kCacheline) mc::atomic<std::uint64_t> inject_fired{0};
  HeartbeatSlot hb[kMaxFaultRanks];

  static std::uint64_t pack(const FaultInfo& f) noexcept {
    return (f.epoch << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.rank + 1) &
                                       0xffffffu)
            << 8) |
           static_cast<std::uint64_t>(f.kind);
  }
  static FaultInfo unpack(std::uint64_t w) noexcept {
    if (w == 0) return {};
    FaultInfo f;
    f.kind = static_cast<FaultKind>(w & 0xff);
    f.rank = static_cast<int>((w >> 8) & 0xffffffu) - 1;
    f.epoch = w >> 32;
    return f;
  }
};

/// Deterministic fault-injection plan, parsed from the YHCCL_FAULT grammar
///   action '@' site (':' key '=' value)*
/// with action ∈ {die, stall, corrupt}, keys rank (default: any rank), iter
/// (default 0: the first matching hit), ms (stall bound; default: stall
/// until the team aborts, capped at a few multiples of the watchdog), off
/// (corrupt: byte offset into the target section, default 0) and once
/// (fire at most once per team lifetime — across runs and resilient
/// retries — so a self-healing retry is not re-injected).
///
/// For die/stall, `site` names a call site threaded through the sync
/// primitives (`barrier`, `flag`, `fifo`, `rndv`, `pagelock`, `slice`,
/// `pipeline`).  For corrupt, `site` instead names a *shared section* to
/// damage (`plans`, `fifo`, `arena`): the plan fires at the iter-th fault
/// point the matching rank passes, whatever its call site, and flips one
/// byte of the section's validated control words — exercising exactly the
/// integrity checks docs/robustness.md documents.
struct FaultPlan {
  enum class Action : std::uint8_t { none = 0, die, stall, corrupt };
  Action action = Action::none;
  std::string site;
  int rank = -1;           ///< -1: any rank
  std::uint64_t iter = 0;  ///< trigger on the iter-th matching hit (per run)
  double stall_ms = -1;    ///< <0: stall until aborted (bounded)
  std::uint64_t corrupt_off = 0;  ///< corrupt: byte offset into the section
  bool once = false;       ///< fire at most once per team lifetime

  bool active() const noexcept { return action != Action::none; }
  /// Parse a spec; throws yhccl::Error on grammar errors.
  static FaultPlan parse(const std::string& spec);
  /// Parse $YHCCL_FAULT (inactive plan when unset).
  static FaultPlan from_env();
};

/// Thrown by a `die` injection on thread-backed ranks.  Deliberately NOT
/// derived from std::exception so it unwinds through user catch blocks and
/// reaches the team backend, which treats it as the rank's death (thread
/// teams swallow it; fork()-backed ranks _exit(kDieExitCode) at the
/// injection point without unwinding at all, like a real crash).
struct FaultInjectedDeath {
  int rank = -1;
  const char* site = nullptr;
};

/// One corruptible shared section a `corrupt@<name>` plan can target: the
/// team installs pointers to each section's *validated* control words (plan
/// slot headers, FIFO head/tail counters, the arena section directory), so
/// a flipped byte always lands on state some integrity check covers.
struct CorruptTarget {
  const char* name = nullptr;
  unsigned char* base = nullptr;
  std::size_t bytes = 0;
};

inline constexpr int kMaxCorruptTargets = 8;

namespace detail {
/// Per-thread (post-fork: per-process) fault context installed by Team::run
/// for the duration of one SPMD function.  Null st ⇒ every hook is a no-op.
struct FaultCtx {
  FaultState* st = nullptr;
  const FaultPlan* plan = nullptr;
  int rank = 0;
  int nranks = 0;
  std::uint64_t epoch = 0;  ///< team epoch this run started under
  bool forked = false;      ///< ranks are processes (enables pid probing)
  std::uint64_t hits = 0;   ///< matching fault-point hits so far this run
  const CorruptTarget* targets = nullptr;  ///< corrupt@ section table
  int ntargets = 0;
};
extern thread_local FaultCtx tl_fault;

/// Bump my heartbeat (called from every backoff step).
inline void fault_heartbeat() noexcept {
  auto& c = tl_fault;
  if (c.st != nullptr)
    c.st->hb[c.rank].beat.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

/// RAII context installer used by Team::run.  The destructor marks the
/// rank's `left` tombstone: a rank that exited the SPMD function (normally
/// or by exception) will never arrive at a peer's barrier again, which is
/// what the PeerDead classification keys on for thread-backed teams.
class FaultRunScope {
 public:
  FaultRunScope(FaultState& st, const FaultPlan& plan, int rank, int nranks,
                std::uint64_t epoch, bool forked,
                const CorruptTarget* targets = nullptr,
                int ntargets = 0) noexcept;
  ~FaultRunScope();
  FaultRunScope(const FaultRunScope&) = delete;
  FaultRunScope& operator=(const FaultRunScope&) = delete;
};

// ---- hooks threaded through the runtime and collectives --------------------

/// Throw if the team's abort word is raised for my epoch.  No-op without an
/// installed context.  Every spin loop's backoff calls this; collectives
/// also call it at slice granularity so compute-heavy phases abort promptly.
void fault_poll_abort();

/// Named injection + liveness point: bumps my heartbeat, fences out stale
/// epochs, polls the abort word, and fires the fault plan when (site, rank,
/// iter) match.  Cheap no-op without an installed context.
void fault_point(const char* site);

/// Scan peers' `dead` tombstones (written by the parent's reap loop the
/// moment a child exits abnormally); classify + raise on the first hit so a
/// real process death is detected at reap latency, not watchdog latency.
void fault_check_dead();

/// Watchdog expiry: classify the failure against the liveness slots, CAS
/// the abort word (first detector wins; losers adopt the winner's verdict)
/// and throw.  Falls back to a generic timeout error without a context.
[[noreturn]] void fault_timeout(const char* what);

/// A read-side integrity check tripped: raise a team-wide abort classified
/// as FaultKind::corruption (blaming the detecting rank's epoch; the
/// corruption itself has no attributable rank) and throw.  Falls back to a
/// plain corruption error without an installed context, so standalone
/// validators (verify_integrity, protocol engines under the model checker)
/// can use the same entry point.
[[noreturn]] void fault_raise_corruption(const char* what);

}  // namespace yhccl::rt
