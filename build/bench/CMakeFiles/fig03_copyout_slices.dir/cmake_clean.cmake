file(REMOVE_RECURSE
  "CMakeFiles/fig03_copyout_slices.dir/fig03_copyout_slices.cpp.o"
  "CMakeFiles/fig03_copyout_slices.dir/fig03_copyout_slices.cpp.o.d"
  "fig03_copyout_slices"
  "fig03_copyout_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_copyout_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
