file(REMOVE_RECURSE
  "CMakeFiles/tab0123_dav_models.dir/tab0123_dav_models.cpp.o"
  "CMakeFiles/tab0123_dav_models.dir/tab0123_dav_models.cpp.o.d"
  "tab0123_dav_models"
  "tab0123_dav_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab0123_dav_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
