// Fig. 16b reproduction: multi-node all-reduce at 1024 processes
// (16 nodes x 64 ranks), YHCCL's hierarchical composition vs ring- and
// tree-based MPI configurations.
//
// Cluster-scale runs are impossible on this host, so the comparison runs
// on the calibrated simulator (DESIGN.md §3): intra-node costs from the
// DAV models driven by a *measured* node copy bandwidth, inter-node
// transfers over LogGP links with serialized NICs.  Expected shape: trees
// win small messages (logarithmic latency), YHCCL wins large ones
// (1.4-8.8x in the paper) thanks to the MA intra-node phases and
// multi-lane fabric use.
#include "bench_util.hpp"
#include "yhccl/apps/stream.hpp"
#include "yhccl/netsim/netsim.hpp"

using namespace yhccl;
using namespace yhccl::bench;
using namespace yhccl::net;

int main() {
  // Calibrate the intra-node model with a measured copy bandwidth.
  const auto cal = apps::stream::run_sliced_copy(
      64u << 20, 1u << 20, apps::stream::CopyKind::temporal, 2);
  IntraNodeModel node;
  node.ranks_per_node = 64;
  node.sockets = 2;
  // The simulated nodes are NodeA-class (16 DDR4-3200 channels, ~300 GB/s
  // aggregate copy bandwidth); this VM's measured bandwidth is printed for
  // reference but would misrepresent a 64-core node.
  node.dab = 300e9;
  const LogGP net = LogGP::infiniband_edr();
  const int nnodes = 16;

  std::printf(
      "Fig. 16b — multi-node all-reduce, %d nodes x %d ranks = %d procs\n",
      nnodes, node.ranks_per_node, nnodes * node.ranks_per_node);
  std::printf("node DAB: %.1f GB/s (NodeA-class; this VM measured %.1f "
              "GB/s); fabric: 100 Gb/s LogGP\n\n",
              node.dab / 1e9, cal.bandwidth_mbps / 1e3);
  std::printf("%-10s %14s %14s %14s %10s %10s\n", "MsgSz", "YHCCL(us)",
              "OMPI-ring(x)", "Tree-hcoll(x)", "intra%", "inter%");

  Session session("fig16b_multinode");
  const auto record = [&](const char* algo, std::size_t bytes,
                          double seconds) {
    // Simulator output: a single deterministic sample, no counters.
    Series se;
    se.bench = session.name();
    se.collective = "multinode_allreduce";
    se.algorithm = algo;
    se.ranks = nnodes * node.ranks_per_node;
    se.sockets = node.sockets;
    se.bytes = bytes;
    se.time = summarize({seconds});
    se.isa = "-";
    session.add(se);
  };
  for (std::size_t s = 16u << 10; s <= 256u << 20; s *= 4) {
    const auto y =
        multinode_allreduce(MultiNodeAlgo::yhccl, s, nnodes, node, net);
    const auto o =
        multinode_allreduce(MultiNodeAlgo::openmpi, s, nnodes, node, net);
    const auto t =
        multinode_allreduce(MultiNodeAlgo::tree_hcoll, s, nnodes, node, net);
    record("YHCCL", s, y.seconds);
    record("OMPI-ring", s, o.seconds);
    record("Tree-hcoll", s, t.seconds);
    std::printf("%-10s %14.1f %14.2f %14.2f %9.0f%% %9.0f%%\n",
                human_size(s).c_str(), y.seconds * 1e6,
                o.seconds / y.seconds, t.seconds / y.seconds,
                100 * y.intra_seconds / y.seconds,
                100 * y.inter_seconds / y.seconds);
  }
  session.write();
  return 0;
}
