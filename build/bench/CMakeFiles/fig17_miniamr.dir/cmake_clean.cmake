file(REMOVE_RECURSE
  "CMakeFiles/fig17_miniamr.dir/fig17_miniamr.cpp.o"
  "CMakeFiles/fig17_miniamr.dir/fig17_miniamr.cpp.o.d"
  "fig17_miniamr"
  "fig17_miniamr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_miniamr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
