// Tables 1-3 reproduction: the analytical DAV comparison, printed for the
// paper's configurations (p = 64, m = 2, k = 2) and for this host's bench
// team, next to the *measured* DAV of our instrumented implementations.
#include "bench_util.hpp"
#include "yhccl/baselines/baselines.hpp"
#include "yhccl/coll/coll.hpp"
#include "yhccl/model/dav_model.hpp"

using namespace yhccl;
using namespace yhccl::bench;
namespace md = yhccl::model;

namespace {

void print_tables(int p, int m) {
  const std::size_t s = 1;  // per-byte factors
  std::printf("\nDAV per message byte, p=%d, m=%d, k=2:\n", p, m);
  std::printf("%-28s %10s %10s %10s\n", "algorithm", "r-scatter",
              "all-reduce", "reduce");
  auto row = [](const char* name, double a, double b, double c) {
    std::printf("%-28s %10.1f %10.1f %10.1f\n", name, a, b, c);
  };
  row("Ring [45]", md::paper::ring_reduce_scatter(s, p),
      md::paper::ring_allreduce(s, p), 0);
  row("Rabenseifner [50]", md::paper::rabenseifner_reduce_scatter(s, p),
      md::paper::rabenseifner_allreduce(s, p), 0);
  row("DPML [13]", md::paper::dpml_reduce_scatter(s, p),
      md::paper::dpml_allreduce(s, p), md::paper::dpml_reduce(s, p));
  row("RG [34] (k=2)", 0, md::paper::rg_allreduce(s, p, 2),
      md::paper::rg_reduce(s, p, 2));
  row("YHCCL MA", md::paper::ma_reduce_scatter(s, p),
      md::paper::ma_allreduce(s, p), md::paper::ma_reduce(s, p));
  row("YHCCL socket-aware MA", md::paper::socket_ma_reduce_scatter(s, p, m),
      md::paper::socket_ma_allreduce(s, p, m),
      md::paper::socket_ma_reduce(s, p, m));
}

}  // namespace

int main() {
  std::printf("Tables 1-3 — analytical data access volume models\n");
  print_tables(64, 2);  // the paper's NodeA
  const int p = bench_ranks(), m = bench_sockets();
  print_tables(p, m);

  // Measured-vs-model cross-check on this host: every deterministic
  // counter (DAV, kernel dispatches, barrier/flag ops) must match the
  // operation-count simulator exactly, not just the closed-form bytes.
  auto& team = bench_team(p, m);
  const std::size_t count = 8192;  // per-rank f64 block
  const std::size_t total = count * 8 * static_cast<std::size_t>(p);
  RankBuffers bufs(p, total, total);
  coll::CollOpts o;
  o.slice_max = 16u << 10;
  Session session("tab0123_dav_models");
  const Series s = measure_arm(
      team, session, "reduce_scatter", "Socket-MA", bufs,
      [&](rt::RankCtx& c, const void* sp, void* r, std::size_t) {
        coll::socket_ma_reduce_scatter(c, sp, r, count, Datatype::f64,
                                       ReduceOp::sum, o);
      },
      total);
  md::impl::OpGeometry g;
  g.p = p;
  g.m = m;
  g.slice_max = o.slice_max;
  const auto want = md::impl::socket_ma_reduce_scatter_ops(total, g);
  const bool ok = s.counters.dav.loads == want.loads &&
                  s.counters.dav.stores == want.stores &&
                  s.counters.kernels.total() == want.kernel_calls &&
                  s.counters.sync.barriers == want.barriers &&
                  s.counters.sync.flag_posts == want.flag_posts &&
                  s.counters.sync.flag_waits == want.flag_waits;
  std::printf("\nmeasured vs model (socket-MA reduce-scatter, %s): "
              "DAV %llu vs %llu bytes, %llu vs %llu kernel calls, "
              "%llu vs %llu sync ops — %s\n",
              human_size(total).c_str(),
              static_cast<unsigned long long>(s.counters.dav.total()),
              static_cast<unsigned long long>(want.dav()),
              static_cast<unsigned long long>(s.counters.kernels.total()),
              static_cast<unsigned long long>(want.kernel_calls),
              static_cast<unsigned long long>(s.counters.sync.total()),
              static_cast<unsigned long long>(want.sync()),
              ok ? "EXACT MATCH" : "MISMATCH");
  session.write();
  return ok ? 0 : 1;
}
