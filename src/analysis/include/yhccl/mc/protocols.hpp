// Model-checked protocol harnesses (docs/analysis.md §MC).
//
// Each harness drives one of the runtime's production sync protocols —
// the primitives themselves, not a re-model — with 2..4 model ranks and
// asserts its contract (mc::require + the checker's built-in race /
// lost-wakeup detection):
//
//   flags          step_publish / spin_wait_ge payload visibility
//   barrier        central sense-reversing barrier separation (2 episodes)
//   dissemination  dissemination barrier separation (2 episodes)
//   fifo           eager FIFO: payload/meta publication + slot reuse
//   rndv           rendezvous: descriptor publication + buffer reuse
//   pagelock       page-lock mutual exclusion edges (CMA emulation)
//   seqlock        RemoteWindow snapshot consistency (no torn descriptor)
//   plan           plan-registry claim visibility + commit-after-barrier
//   ring           trace-ring push/harvest publication
//
// The mutation table seeds one memory-order weakening (WeakPoint) at a time
// into the production code path; tests/test_model_check.cpp asserts the
// checker catches every entry and that the unmutated protocols verify clean.
#pragma once

#ifdef YHCCL_MC

#include <string>
#include <vector>

#include "yhccl/mc/checker.hpp"

namespace yhccl::mc {

/// Names of the checkable protocols, in a stable order.
const std::vector<std::string>& protocol_names();

/// Does `name` support an `nthreads`-rank instance?
bool protocol_supports(const std::string& name, int nthreads);

/// Build the Spec for one protocol instance (throws yhccl::Error on an
/// unknown name / unsupported rank count).  The spec owns its shared state.
Spec protocol_spec(const std::string& name, int nthreads);

/// Explore one protocol instance.
Result check_protocol(const std::string& name, int nthreads,
                      const Options& opt);

/// One seeded weakening: demote `point` to relaxed while checking
/// `protocol` at `nthreads` ranks.  The checker must catch every entry.
struct Mutation {
  WeakPoint point;
  const char* protocol;
  int nthreads;
};

/// One entry per WeakPoint (except none), each paired with the smallest
/// harness that provably exposes it.
const std::vector<Mutation>& mutation_table();

/// Run one mutation under `opt` (the mutation field is overwritten).
Result check_mutation(const Mutation& m, Options opt);

/// Re-execute a counterexample schedule with a flight recorder attached:
/// per-model-rank trace rings capture what each rank was doing along the
/// violating interleaving (the PR-5 flight machinery, fed by the checker).
/// The ring memory is exempted from interception so recording cannot
/// perturb the replay.  Pass the mutation the schedule was found under
/// (WeakPoint::none for an unmutated counterexample) so the replay
/// executes the same weakened protocol.  Returns the flight-dump JSON.
std::string counterexample_flight(const std::string& protocol, int nthreads,
                                  const std::string& schedule,
                                  WeakPoint mutation = WeakPoint::none);

}  // namespace yhccl::mc

#endif  // YHCCL_MC
