// Cache capacity model (paper §4.2).
//
// The adaptive-copy heuristic needs the cache capacity available to a
// collective running on p cores.  On a non-inclusive last-level cache the
// usable capacity is C = c' + p * c'' (LLC plus the per-core second-last
// level), on an inclusive LLC it is just C = c'.
#pragma once

#include <cstddef>
#include <string>

namespace yhccl::copy {

struct CacheConfig {
  std::size_t llc_bytes = 8u << 20;      ///< c': last-level cache capacity
  std::size_t l2_per_core = 512u << 10;  ///< c'': second-last level, per core
  bool llc_inclusive = false;            ///< inclusive LLC? (then C = c')
  std::size_t cacheline = 64;

  /// Capacity available to a collective using `p` cores: the paper's
  /// C = c' + p*c'' (non-inclusive) or C = c' (inclusive).
  std::size_t available(int p) const noexcept {
    return llc_inclusive
               ? llc_bytes
               : llc_bytes + static_cast<std::size_t>(p) * l2_per_core;
  }

  // --- Presets for the paper's three evaluation platforms -----------------

  /// NodeA: 2x AMD EPYC 7452 — 256 MB non-inclusive L3 per CPU (the paper
  /// uses the full-node figure in §5.4), 512 KB inclusive L2 per core.
  static CacheConfig node_a() {
    return {.llc_bytes = 256u << 20,
            .l2_per_core = 512u << 10,
            .llc_inclusive = false};
  }

  /// NodeB: 2x Intel Xeon Platinum 8163 — 66 MB non-inclusive L3, 1 MB L2.
  static CacheConfig node_b() {
    return {.llc_bytes = 66u << 20,
            .l2_per_core = 1u << 20,
            .llc_inclusive = false};
  }

  /// ClusterC: 2x Intel Xeon E5-2692 v2 — 60 MB inclusive L3.
  static CacheConfig cluster_c() {
    return {.llc_bytes = 60u << 20,
            .l2_per_core = 256u << 10,
            .llc_inclusive = true};
  }

  /// Best-effort detection from /sys; falls back to a small generic
  /// configuration when sysfs is unavailable (e.g. in containers).
  static CacheConfig detect();

  std::string describe() const;
};

}  // namespace yhccl::copy
