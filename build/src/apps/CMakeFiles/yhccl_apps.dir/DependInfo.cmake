
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dnn.cpp" "src/apps/CMakeFiles/yhccl_apps.dir/dnn.cpp.o" "gcc" "src/apps/CMakeFiles/yhccl_apps.dir/dnn.cpp.o.d"
  "/root/repo/src/apps/miniamr.cpp" "src/apps/CMakeFiles/yhccl_apps.dir/miniamr.cpp.o" "gcc" "src/apps/CMakeFiles/yhccl_apps.dir/miniamr.cpp.o.d"
  "/root/repo/src/apps/stream.cpp" "src/apps/CMakeFiles/yhccl_apps.dir/stream.cpp.o" "gcc" "src/apps/CMakeFiles/yhccl_apps.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/yhccl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/copy/CMakeFiles/yhccl_copy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
