file(REMOVE_RECURSE
  "CMakeFiles/test_dav_models.dir/test_dav_models.cpp.o"
  "CMakeFiles/test_dav_models.dir/test_dav_models.cpp.o.d"
  "test_dav_models"
  "test_dav_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dav_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
