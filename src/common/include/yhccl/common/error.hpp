// Error handling used across YHCCL: a single exception type plus
// check macros for invariants and syscalls.
#pragma once

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace yhccl {

/// All YHCCL failures surface as this exception.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& msg) { throw Error(msg); }

[[noreturn]] inline void raise_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace yhccl

/// Invariant check that stays on in release builds (collective protocols are
/// too easy to silently corrupt for asserts to be compiled out).
#define YHCCL_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::yhccl::raise(std::string("requirement failed: ") +     \
                                (msg) + " [" #cond "] at " __FILE__ ":" + \
                                std::to_string(__LINE__));                \
  } while (0)

#define YHCCL_CHECK_SYS(expr, what) \
  do {                              \
    if ((expr) < 0) ::yhccl::raise_errno(what); \
  } while (0)
